// topobench_lint engine: repo-specific determinism rules as a library.
//
// The paper reproduction's headline contract is bitwise reproducibility:
// every CSV byte a driver emits is a pure function of (code, seed, grid).
// PR 5 (deterministic parallel solves) and PR 6 (byte-identical shard
// merge) re-established that contract by hand; this checker machine-checks
// the hazards that historically break it before code merges:
//
//   unordered-container   std::unordered_{map,set} anywhere in scanned
//                         code — iteration order is implementation- and
//                         hash-seed-defined and must not reach results.
//   banned-random         std::rand / std::random_device / std engines
//                         and distributions — not reproducible across
//                         standard libraries; use tb::Rng (util/rng.h).
//   wall-clock            clock reads (time(), ::now(), <ctime>) outside
//                         util/timer.h — timing must flow through
//                         tb::Timer and never into result values.
//   par-policy            std::execution::par / par_unseq / unseq —
//                         parallel STL reduces in nondeterministic order;
//                         use ThreadPool with ordered reductions.
//   seed-arith            ad-hoc arithmetic on seed-named values — seed
//                         streams are derived with tb::mix_seed only.
//   unordered-reduction   std::reduce / std::transform_reduce, and
//                         std::atomic<float/double> in ThreadPool-using
//                         files — floating-point accumulation must use
//                         the PR-5 ordered-reduction idioms.
//
// Escape hatch: a finding is suppressed by a marker comment on the same
// line or the immediately preceding line, written as the marker prefix
// (kMarkerPrefix) followed by "allow(rule-id)" and a non-empty
// justification. Every exception is therefore visible and greppable.
// A marker that fails to parse, names an unknown rule, or lacks a
// justification is itself reported (rule "bad-marker"); a well-formed
// marker that suppresses nothing is reported as "unused-allow" so stale
// exceptions cannot accumulate.
//
// Matching runs on comment- and string-stripped source text, so prose and
// string literals (e.g. /*seed=*/ argument comments) never trip rules;
// markers, conversely, are only recognized inside comments.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace tb::lint {

inline constexpr std::string_view kVersion = "1.0.0";

/// The comment token that introduces an allow marker.
inline constexpr std::string_view kMarkerPrefix = "topobench-lint:";

enum class Severity { kWarning, kError };

/// Stable string form ("warning" / "error") used in reports.
std::string_view severity_name(Severity severity);

struct Finding {
  // `file` is the path as given to the linter; `line` is 1-based; `rule`
  // is an id from rule_catalogue() or a reserved marker diagnostic.
  std::string file;
  std::size_t line = 0;
  std::string rule;
  Severity severity = Severity::kError;
  std::string message;
};

struct RuleInfo {
  std::string_view id;
  std::string_view summary;
};

/// The enforced rules, in report order. Ids are the vocabulary of
/// allow(...) markers; "bad-marker" / "unused-allow" are reserved
/// diagnostics about markers themselves and cannot be allowed.
const std::vector<RuleInfo>& rule_catalogue();

/// True when `id` names a rule that an allow(...) marker may reference.
bool is_allowable_rule(std::string_view id);

/// Lint one source file's contents. `path` is used only for labeling.
/// Findings are sorted by (line, rule).
std::vector<Finding> lint_source(std::string_view path, std::string_view text);

/// Lint files and/or directories (directories recurse into *.h, *.hpp,
/// *.cc, *.cpp, *.cxx; explicit files are scanned regardless of
/// extension). Findings are sorted by (file, line, rule). Throws
/// std::runtime_error for a path that does not exist or cannot be read.
std::vector<Finding> lint_paths(const std::vector<std::string>& paths);

/// One "file:line: severity: [rule] message" line per finding.
std::string render_text(const std::vector<Finding>& findings);

/// JSON array of {file, line, rule, severity, message} objects.
std::string render_json(const std::vector<Finding>& findings);

}  // namespace tb::lint
