#include "lint_core.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <tuple>

namespace tb::lint {
namespace {

// ---------------------------------------------------------------------------
// Source classification: split a translation unit into code-only and
// comment-only views of identical shape (byte i of each view is either the
// original byte or a space; newlines survive in both). Rules match against
// the code view so string literals and prose cannot trip them; markers are
// parsed from the comment view so nothing outside a comment is a marker.

struct SplitSource {
  std::string code;
  std::string comments;
};

SplitSource split_source(std::string_view text) {
  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  SplitSource out;
  out.code.assign(text.size(), ' ');
  out.comments.assign(text.size(), ' ');
  State state = State::kCode;
  std::string raw_end;  // ")delim\"" terminator of an open raw string
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {  // line structure survives in both views
      out.code[i] = '\n';
      out.comments[i] = '\n';
      if (state == State::kLine) state = State::kCode;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out.comments[i] = c;
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out.comments[i] = c;
        } else if (c == '"') {
          if (i > 0 && text[i - 1] == 'R') {
            // R"delim( ... )delim" — find the open paren, remember the
            // exact terminator.
            std::size_t paren = text.find('(', i + 1);
            if (paren == std::string_view::npos) paren = text.size() - 1;
            raw_end = ")";
            raw_end.append(text.substr(i + 1, paren - i - 1));
            raw_end.push_back('"');
            state = State::kRaw;
          } else {
            state = State::kString;
          }
        } else if (c == '\'') {
          // A quote right after a digit is a numeric separator (1'000'000),
          // not a character literal.
          const bool after_digit =
              i > 0 && std::isdigit(static_cast<unsigned char>(text[i - 1]));
          if (!after_digit) {
            state = State::kChar;
          } else {
            out.code[i] = c;
          }
        } else {
          out.code[i] = c;
        }
        break;
      case State::kLine:
      case State::kBlock:
        out.comments[i] = c;
        if (state == State::kBlock && c == '*' && next == '/') {
          out.comments[i + 1] = '/';
          ++i;
          state = State::kCode;
        }
        break;
      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        if (c == '\\') {
          ++i;  // the escaped byte stays blank in both views
        } else if (c == quote) {
          state = State::kCode;
        }
        break;
      }
      case State::kRaw:
        if (text.compare(i, raw_end.size(), raw_end) == 0) {
          i += raw_end.size() - 1;
          state = State::kCode;
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.emplace_back(text.substr(start));
      break;
    }
    lines.emplace_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

// ---------------------------------------------------------------------------
// Rule table. Every pattern matches one stripped-code line at a time, so
// multi-line constructs are caught at the line that names the hazard.

struct Rule {
  std::string_view id;
  std::string_view summary;
  std::string_view message;
  std::vector<std::regex> patterns;
  /// When set, `patterns` only apply in files whose code contains this
  /// token (e.g. reductions are only hazardous next to a thread pool).
  std::string_view file_precondition;
};

std::regex rx(const char* pattern) {
  return std::regex(pattern, std::regex::ECMAScript | std::regex::optimize);
}

const std::vector<Rule>& rules() {
  static const std::vector<Rule> kRules = [] {
    std::vector<Rule> r;
    r.push_back(Rule{
        "unordered-container",
        "std::unordered_{map,set}: iteration order may leak into results",
        "unordered container: iteration order is implementation-defined; "
        "use an ordered container, or justify lookup-only use with an "
        "allow marker",
        {rx(R"(std::unordered_(map|set|multimap|multiset)\b)"),
         rx(R"(#\s*include\s*<unordered_(map|set)>)")},
        {}});
    r.push_back(Rule{
        "banned-random",
        "std random sources/engines: not reproducible across stdlibs",
        "banned randomness source: draw from tb::Rng with an explicit "
        "seed (util/rng.h) so results reproduce across standard "
        "libraries",
        {rx(R"(\bstd\s*::\s*s?rand\b)"), rx(R"(\bs?rand\s*\()"),
         rx(R"(\brandom_device\b)"),
         rx(R"(\b(mt19937(_64)?|minstd_rand0?|default_random_engine)\b)"),
         rx(R"(\b(knuth_b|ranlux(24|48)(_base)?)\b)"),
         rx(R"(\b[A-Za-z_]*_distribution\s*<)"),
         rx(R"(#\s*include\s*<random>)")},
        {}});
    r.push_back(Rule{
        "wall-clock",
        "clock reads outside util/timer.h: time must not reach results",
        "wall-clock read: route timing through tb::Timer (util/timer.h) "
        "and keep clock values out of result-affecting state",
        {rx(R"(\b(system_clock|steady_clock|high_resolution_clock)\b)"),
         rx(R"(::\s*now\s*\()"), rx(R"(\btime\s*\(\s*(nullptr|NULL|0)\s*\))"),
         rx(R"(\bstd\s*::\s*time\b)"),
         rx(R"(\b(gettimeofday|clock_gettime|timespec_get)\b)"),
         rx(R"(\bclock\s*\(\s*\))"), rx(R"(#\s*include\s*<ctime>)"),
         rx(R"(#\s*include\s*<sys/time\.h>)")},
        {}});
    r.push_back(Rule{
        "par-policy",
        "std::execution parallel policies: unordered STL reductions",
        "parallel STL execution policy: reduction order is "
        "nondeterministic; use ThreadPool::parallel_for with an ordered "
        "post-barrier reduction instead",
        {rx(R"(\bexecution\s*::\s*(par_unseq|par|unseq)\b)"),
         rx(R"(#\s*include\s*<execution>)")},
        {}});
    r.push_back(Rule{
        "unordered-reduction",
        "std::reduce / atomic<float/double> near ThreadPool: unordered "
        "float accumulation",
        "unordered floating-point reduction: accumulate per-slot and "
        "reduce in fixed index order after the barrier (see the PR-5 "
        "idioms in mcf/garg_konemann.cpp and lp/simplex.cpp)",
        {rx(R"(\bstd\s*::\s*(transform_)?reduce\s*\()")},
        {}});
    // The atomic<float/double> half only bites where a thread pool is in
    // scope; a serial atomic double is odd but not a determinism hazard.
    r.push_back(Rule{
        "unordered-reduction",
        {},  // second pattern set of the same rule; catalogue lists one
        "unordered floating-point reduction: atomic float accumulation "
        "commits in scheduling order; accumulate per-slot and reduce in "
        "fixed index order after the barrier",
        {rx(R"(\bstd\s*::\s*atomic\s*<\s*(float|double|long\s+double)\s*>)")},
        "ThreadPool"});
    return r;
  }();
  return kRules;
}

// seed-arith is matched procedurally (token adjacency), not by a single
// regex; its catalogue entry lives in rule_catalogue() alongside the rest.
constexpr std::string_view kSeedArithId = "seed-arith";
constexpr std::string_view kSeedArithMessage =
    "raw seed arithmetic: derive seed streams with tb::mix_seed "
    "(util/rng.h), never with ad-hoc +/*/^/++ on seed values";

bool is_seed_identifier(std::string_view token) {
  const auto ends_with = [&](std::string_view suffix) {
    return token.size() >= suffix.size() &&
           token.substr(token.size() - suffix.size()) == suffix;
  };
  return token == "seed" || token == "seed_" || ends_with("_seed") ||
         ends_with("_seed_");
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool is_arith_char(char c) {
  return c == '+' || c == '-' || c == '*' || c == '/' || c == '%' || c == '^';
}

/// True when the line derives a seed value through raw arithmetic: a
/// seed-named identifier directly adjacent to an arithmetic operator
/// (seed++, seed + 99, base ^ seed), or an assignment to a seed-named
/// lvalue whose right-hand side computes with arithmetic. Lines that
/// already call mix_seed/splitmix64 are the sanctioned derivations.
bool line_has_seed_arith(const std::string& line) {
  if (line.find("mix_seed") != std::string::npos ||
      line.find("splitmix64") != std::string::npos) {
    return false;
  }
  std::size_t i = 0;
  while (i < line.size()) {
    if (!is_ident_char(line[i])) {
      ++i;
      continue;
    }
    std::size_t b = i;
    while (i < line.size() && is_ident_char(line[i])) ++i;
    if (!is_seed_identifier(std::string_view(line).substr(b, i - b))) continue;
    // Adjacent operator on either side (skipping spaces)?
    std::size_t l = b;
    while (l > 0 && line[l - 1] == ' ') --l;
    if (l > 0 && is_arith_char(line[l - 1]) &&
        !(line[l - 1] == '/' && l > 1 && line[l - 2] == '/')) {
      return true;
    }
    std::size_t rpos = i;
    while (rpos < line.size() && line[rpos] == ' ') ++rpos;
    if (rpos < line.size() && is_arith_char(line[rpos])) {
      // `seed->member` is access, not subtraction.
      if (!(line[rpos] == '-' && rpos + 1 < line.size() &&
            line[rpos + 1] == '>')) {
        return true;
      }
    }
    // Assignment with an arithmetic right-hand side: seed = 6000 + q.
    if (rpos < line.size() && line[rpos] == '=' &&
        (rpos + 1 >= line.size() || line[rpos + 1] != '=')) {
      static const std::regex kRhsArith(
          R"([\w)\]]\s*(\+|-|\*|/|%|\^|<<|>>)\s*[\w(])");
      if (std::regex_search(line.begin() + static_cast<std::ptrdiff_t>(rpos),
                            line.end(), kRhsArith)) {
        return true;
      }
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Allow markers.

struct Marker {
  std::size_t line = 0;  // 1-based
  std::vector<std::string> rules;
  bool used = false;
};

/// Parses the markers of one file from its comment view. Malformed markers
/// become findings immediately.
std::vector<Marker> parse_markers(std::string_view path,
                                  const std::vector<std::string>& comment_lines,
                                  std::vector<Finding>& findings) {
  std::vector<Marker> markers;
  for (std::size_t n = 0; n < comment_lines.size(); ++n) {
    const std::string& raw = comment_lines[n];
    const std::size_t at = raw.find(kMarkerPrefix);
    if (at == std::string::npos) continue;
    const std::size_t line_no = n + 1;
    const auto bad = [&](std::string_view why) {
      findings.push_back(Finding{std::string(path), line_no, "bad-marker",
                                 Severity::kError,
                                 "malformed lint marker: " + std::string(why)});
    };
    std::string_view rest =
        trim(std::string_view(raw).substr(at + kMarkerPrefix.size()));
    constexpr std::string_view kAllow = "allow(";
    if (rest.substr(0, kAllow.size()) != kAllow) {
      bad("expected allow(rule-id) after the marker prefix");
      continue;
    }
    const std::size_t close = rest.find(')');
    if (close == std::string_view::npos) {
      bad("unterminated allow( list");
      continue;
    }
    Marker marker;
    marker.line = line_no;
    std::string_view ids = rest.substr(kAllow.size(), close - kAllow.size());
    bool ok = !trim(ids).empty();
    while (ok && !ids.empty()) {
      const std::size_t comma = ids.find(',');
      const std::string_view id = trim(ids.substr(0, comma));
      if (!is_allowable_rule(id)) {
        bad("unknown rule id '" + std::string(id) + "'");
        ok = false;
        break;
      }
      marker.rules.emplace_back(id);
      if (comma == std::string_view::npos) break;
      ids.remove_prefix(comma + 1);
    }
    if (!ok) continue;
    if (trim(rest.substr(close + 1)).empty()) {
      bad("missing justification after allow(...)");
      continue;
    }
    markers.push_back(std::move(marker));
  }
  return markers;
}

void sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string_view severity_name(Severity severity) {
  return severity == Severity::kError ? "error" : "warning";
}

const std::vector<RuleInfo>& rule_catalogue() {
  static const std::vector<RuleInfo> kCatalogue = [] {
    std::vector<RuleInfo> list;
    std::set<std::string_view> seen;
    for (const Rule& rule : rules()) {
      if (seen.insert(rule.id).second) {
        list.push_back(RuleInfo{rule.id, rule.summary});
      }
    }
    list.push_back(RuleInfo{
        kSeedArithId,
        "ad-hoc seed arithmetic: derive streams with tb::mix_seed"});
    return list;
  }();
  return kCatalogue;
}

bool is_allowable_rule(std::string_view id) {
  for (const RuleInfo& info : rule_catalogue()) {
    if (info.id == id) return true;
  }
  return false;
}

std::vector<Finding> lint_source(std::string_view path,
                                 std::string_view text) {
  const SplitSource views = split_source(text);
  const std::vector<std::string> code_lines = split_lines(views.code);
  const std::vector<std::string> comment_lines = split_lines(views.comments);

  std::vector<Finding> findings;
  std::vector<Marker> markers = parse_markers(path, comment_lines, findings);

  // Collect raw rule hits, deduplicated per (line, rule).
  std::map<std::pair<std::size_t, std::string_view>, std::string_view> hits;
  for (const Rule& rule : rules()) {
    if (!rule.file_precondition.empty() &&
        views.code.find(rule.file_precondition) == std::string::npos) {
      continue;
    }
    for (std::size_t n = 0; n < code_lines.size(); ++n) {
      for (const std::regex& pattern : rule.patterns) {
        if (std::regex_search(code_lines[n], pattern)) {
          hits.emplace(std::make_pair(n + 1, rule.id), rule.message);
          break;
        }
      }
    }
  }
  for (std::size_t n = 0; n < code_lines.size(); ++n) {
    if (line_has_seed_arith(code_lines[n])) {
      hits.emplace(std::make_pair(n + 1, kSeedArithId), kSeedArithMessage);
    }
  }

  // Apply markers: a marker covers its own line and the next one.
  for (const auto& [key, message] : hits) {
    const auto [line_no, rule_id] = key;
    bool allowed = false;
    for (Marker& marker : markers) {
      if (marker.line != line_no && marker.line + 1 != line_no) continue;
      if (std::find(marker.rules.begin(), marker.rules.end(), rule_id) ==
          marker.rules.end()) {
        continue;
      }
      marker.used = true;
      allowed = true;
    }
    if (!allowed) {
      findings.push_back(Finding{std::string(path), line_no,
                                 std::string(rule_id), Severity::kError,
                                 std::string(message)});
    }
  }
  for (const Marker& marker : markers) {
    if (!marker.used) {
      findings.push_back(
          Finding{std::string(path), marker.line, "unused-allow",
                  Severity::kWarning,
                  "allow marker suppresses nothing on this or the next "
                  "line; remove it so exceptions stay meaningful"});
    }
  }
  sort_findings(findings);
  return findings;
}

std::vector<Finding> lint_paths(const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  static const std::set<std::string> kExtensions = {".h", ".hpp", ".cc",
                                                    ".cpp", ".cxx"};
  std::vector<std::string> files;
  for (const std::string& path : paths) {
    std::error_code ec;
    const fs::file_status status = fs::status(path, ec);
    if (ec || status.type() == fs::file_type::not_found) {
      throw std::runtime_error("no such file or directory: " + path);
    }
    if (fs::is_directory(status)) {
      for (const auto& entry : fs::recursive_directory_iterator(path)) {
        if (entry.is_regular_file() &&
            kExtensions.count(entry.path().extension().string()) > 0) {
          files.push_back(entry.path().generic_string());
        }
      }
    } else {
      files.push_back(fs::path(path).generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<Finding> findings;
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) throw std::runtime_error("cannot read " + file);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::vector<Finding> file_findings = lint_source(file, buffer.str());
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  sort_findings(findings);
  return findings;
}

std::string render_text(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const Finding& f : findings) {
    out << f.file << ':' << f.line << ": " << severity_name(f.severity)
        << ": [" << f.rule << "] " << f.message << '\n';
  }
  return out.str();
}

std::string render_json(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "[\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << "  {\"file\": \"" << json_escape(f.file)
        << "\", \"line\": " << f.line << ", \"rule\": \""
        << json_escape(f.rule) << "\", \"severity\": \""
        << severity_name(f.severity) << "\", \"message\": \""
        << json_escape(f.message) << "\"}";
    if (i + 1 < findings.size()) out << ',';
    out << '\n';
  }
  out << "]\n";
  return out.str();
}

}  // namespace tb::lint
