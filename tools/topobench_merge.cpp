// topobench_merge: reassemble sharded sweep slices into the unsharded CSV.
//
// Usage:
//   topobench_merge slice0.csv slice1.csv ...   # slices as files
//   cat shard_*.csv | topobench_merge           # slices on stdin
//
// Slices may arrive in any order. The merged output on stdout is
// byte-identical to what the unsharded run would have emitted; any
// violation of the merge contract — overlapping or missing cell ranges,
// mismatched grid fingerprints / captions / CSV headers, rows that
// disagree with their slice's declared range — is a hard error on stderr
// with exit status 1 (see src/exp/shard.h for the format and contract).
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "exp/shard.h"

int main(int argc, char** argv) {
  std::ostringstream input;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      const std::string path = argv[i];
      if (path == "-h" || path == "--help") {
        std::cout << "usage: topobench_merge [slice.csv ...] "
                     "(reads stdin when no files are given)\n";
        return 0;
      }
      std::ifstream file(path, std::ios::binary);
      if (!file) {
        std::cerr << "topobench_merge: cannot open " << path << '\n';
        return 1;
      }
      input << file.rdbuf();
    }
  } else {
    input << std::cin.rdbuf();
  }

  try {
    std::istringstream in(input.str());
    std::cout << tb::exp::merge_slices(in);
  } catch (const std::exception& e) {
    std::cerr << "topobench_merge: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
