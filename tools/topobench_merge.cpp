// topobench_merge: reassemble sharded sweep slices into the unsharded CSV.
//
// Usage:
//   topobench_merge slice0.csv slice1.csv ...   # slices as files
//   cat shard_*.csv | topobench_merge           # slices on stdin
//
// Slices may arrive in any order. The merged output on stdout is
// byte-identical to what the unsharded run would have emitted; any
// violation of the merge contract — overlapping or missing cell ranges,
// mismatched grid fingerprints / captions / CSV headers, rows that
// disagree with their slice's declared range — is a hard error on stderr
// (see src/exp/shard.h for the format and contract).
//
// Exit status: 0 on a successful merge, 1 when the slices violate the
// merge contract, 2 on usage or environment errors (unknown option,
// unreadable input file).
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "exp/shard.h"

namespace {

constexpr int kExitOk = 0;
constexpr int kExitMergeFailure = 1;
constexpr int kExitUsage = 2;

constexpr const char* kVersion = "1.0.0";

void print_usage(std::ostream& os) {
  os << "usage: topobench_merge [options] [slice.csv ...]\n"
        "\n"
        "Merges sharded sweep slices (in any order) into the CSV the\n"
        "unsharded run would have emitted, byte for byte. Reads stdin\n"
        "when no files are given.\n"
        "\n"
        "options:\n"
        "  -h, --help     print this help and exit\n"
        "  --version      print the version and exit\n"
        "\n"
        "exit status: 0 merged, 1 merge-contract violation, 2 usage "
        "error\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::ostringstream input;
  bool have_files = false;
  bool options_done = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!options_done && !arg.empty() && arg[0] == '-') {
      if (arg == "--") {
        options_done = true;
        continue;
      }
      if (arg == "-h" || arg == "--help") {
        print_usage(std::cout);
        return kExitOk;
      }
      if (arg == "--version") {
        std::cout << "topobench_merge " << kVersion << '\n';
        return kExitOk;
      }
      std::cerr << "topobench_merge: unknown option '" << arg << "'\n";
      print_usage(std::cerr);
      return kExitUsage;
    }
    std::ifstream file(arg, std::ios::binary);
    if (!file) {
      std::cerr << "topobench_merge: cannot open " << arg << '\n';
      return kExitUsage;
    }
    input << file.rdbuf();
    have_files = true;
  }
  if (!have_files) input << std::cin.rdbuf();

  try {
    std::istringstream in(input.str());
    std::cout << tb::exp::merge_slices(in);
  } catch (const std::exception& e) {
    std::cerr << "topobench_merge: " << e.what() << '\n';
    return kExitMergeFailure;
  }
  return kExitOk;
}
