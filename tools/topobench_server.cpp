// topobench_server: long-running throughput-query daemon.
//
// Speaks a versioned line-delimited JSON protocol (version 1) over
// stdin/stdout: one request object per line, one response object per line,
// answered strictly in arrival order. Each batch still fans out across the
// shared thread pool inside the engine, and repeat queries are answered
// from the in-process cache or the on-disk result store in O(lookup)
// (see src/store/result_store.h and docs/ARCHITECTURE.md for the wire and
// store formats).
//
// Requests ("id" is optional and echoed back verbatim):
//   {"op": "hello"}                               protocol/version handshake
//   {"op": "query", "topology": {"family": "hypercube", "servers": 16,
//        "seed": 1}, "tm": "a2a", "solver": "auto", "epsilon": 0.03,
//        "trials": 0, "cut_bounds": false, "scenario": "fail(f=0.1)",
//        "seed": 1}                               one cell
//   {"op": "sweep", "topologies": [<topology>...], "tms": ["a2a", ...],
//        "scenarios": ["degrade(c=0.9)", ...], "warm_start": false, ...}
//                                                 a grid, one batch
//   {"op": "stats"}                               cumulative tier counters
//   {"op": "shutdown"}                            acknowledge and exit
//
// Responses: {"ok": true, ...} with deterministic key order and %.17g
// numbers — replaying a request script yields byte-identical transcripts
// (the `source` field is the one execution-dependent value: solved /
// memory / store). Failures are in-band {"ok": false, "error": ...}; the
// daemon keeps serving.
//
// Exit status: 0 on clean shutdown (EOF or shutdown op) with every request
// answered ok, 1 when any request failed, 2 on usage or environment
// errors (unknown option, store open failure).
#include <exception>
#include <iostream>
#include <memory>
#include <string>

#include "api/topobench.h"
#include "store/result_store.h"
#include "util/json.h"

namespace {

constexpr int kExitOk = 0;
constexpr int kExitRequestErrors = 1;
constexpr int kExitUsage = 2;

constexpr const char* kServerVersion = "1.0.0";

using tb::json::Value;

void print_usage(std::ostream& os) {
  os << "usage: topobench_server [options]\n"
        "\n"
        "Serves throughput queries over a line-delimited JSON protocol\n"
        "(version 1) on stdin/stdout; see docs/ARCHITECTURE.md. Repeat\n"
        "queries are answered from the on-disk result store when one is\n"
        "attached.\n"
        "\n"
        "options:\n"
        "  -h, --help       print this help and exit\n"
        "  --version        print the version and exit\n"
        "  --store PATH     attach the result store at PATH (overrides\n"
        "                   TOPOBENCH_STORE; created if absent)\n"
        "  --read-only      open the store read-only (overrides\n"
        "                   TOPOBENCH_STORE_RO)\n"
        "\n"
        "exit status: 0 clean shutdown, 1 when any request failed,\n"
        "2 usage/environment error\n";
}

tb::api::Solver parse_solver(const std::string& name) {
  if (name == "auto") return tb::api::Solver::Auto;
  if (name == "exact-lp") return tb::api::Solver::ExactLP;
  if (name == "gk") return tb::api::Solver::GargKonemann;
  throw std::invalid_argument("solver must be one of auto, exact-lp, gk");
}

tb::api::Topology parse_topology(const Value& v) {
  const Value* family = v.find("family");
  if (family == nullptr) {
    throw std::invalid_argument(
        "topology must be {\"family\": ..., \"servers\": ...}");
  }
  const Value* servers = v.find("servers");
  if (servers == nullptr) {
    throw std::invalid_argument("topology needs a \"servers\" field");
  }
  const Value* seed_field = v.find("seed");
  return tb::api::build_topology(
      family->as_string("topology.family"),
      static_cast<int>(servers->as_int("topology.servers", 1, 1000000)),
      seed_field != nullptr
          ? static_cast<std::uint64_t>(seed_field->as_int("topology.seed", 0,
                                                    1000000000L))
          : 1);
}

/// The uniform result record as a JSON object — field set and order match
/// ResultSet::to_json; NaN and empty-string sentinels publish as null. The
/// per-cell seed is a full 64-bit value, which a JSON number (a double)
/// cannot hold exactly, so it publishes as a decimal string.
Value record_json(const tb::api::Result& r) {
  Value o = Value::object();
  const auto opt_str = [](const std::string& s) {
    return s.empty() ? Value::null() : Value::string_v(s);
  };
  o.set("cell", Value::number_v(static_cast<double>(r.cell)));
  o.set("topology", Value::string_v(r.topology));
  o.set("servers", Value::number_v(r.servers));
  o.set("switches", Value::number_v(r.switches));
  o.set("tm", Value::string_v(r.tm));
  o.set("seed", Value::string_v(std::to_string(r.seed)));
  o.set("solver", Value::string_v(r.solver));
  o.set("trials", Value::number_v(r.trials));
  o.set("throughput", Value::number_v(r.throughput));
  o.set("random_mean", Value::number_v(r.random_mean));
  o.set("random_ci95", Value::number_v(r.random_ci95));
  o.set("relative", Value::number_v(r.relative));
  o.set("relative_ci95", Value::number_v(r.relative_ci95));
  o.set("cut_bound", Value::number_v(r.cut_bound));
  o.set("cut_gap", Value::number_v(r.cut_gap));
  o.set("cut_method", opt_str(r.cut_method));
  o.set("scenario", opt_str(r.scenario));
  o.set("failed_links", r.failed_links < 0
                            ? Value::null()
                            : Value::number_v(r.failed_links));
  o.set("throughput_drop", Value::number_v(r.throughput_drop));
  o.set("risk_group", r.risk_group < 0 ? Value::null()
                                       : Value::number_v(r.risk_group));
  o.set("tm_scale", Value::number_v(r.tm_scale));
  o.set("growth_step", r.growth_step < 0 ? Value::null()
                                         : Value::number_v(r.growth_step));
  o.set("pivots", Value::number_v(static_cast<double>(r.pivots)));
  o.set("phases", Value::number_v(static_cast<double>(r.phases)));
  o.set("dijkstras", Value::number_v(static_cast<double>(r.dijkstras)));
  o.set("pushes", Value::number_v(static_cast<double>(r.pushes)));
  o.set("relabels", Value::number_v(static_cast<double>(r.relabels)));
  o.set("global_relabels",
        Value::number_v(static_cast<double>(r.global_relabels)));
  o.set("warm", Value::number_v(r.warm));
  o.set("solver_threads", Value::number_v(r.solver_threads));
  return o;
}

class Server {
 public:
  explicit Server(tb::api::ServiceConfig cfg) : service_(std::move(cfg)) {}

  /// Serve until EOF or a shutdown request; returns the exit status.
  int serve(std::istream& in, std::ostream& out) {
    std::string line;
    bool any_failed = false;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      bool shutdown = false;
      const Value response = handle_line(line, shutdown, any_failed);
      out << tb::json::dump(response) << '\n' << std::flush;
      if (shutdown) break;
    }
    return any_failed ? kExitRequestErrors : kExitOk;
  }

 private:
  Value handle_line(const std::string& line, bool& shutdown,
                    bool& any_failed) {
    Value id = Value::null();
    bool have_id = false;
    try {
      const Value req = tb::json::parse(line);
      if (const Value* rid = req.find("id")) {
        id = *rid;
        have_id = true;
      }
      const Value* op = req.find("op");
      if (op == nullptr) throw std::invalid_argument("request needs an \"op\"");
      const std::string& name = op->as_string("op");
      Value resp = Value::object();
      resp.set("ok", Value::boolean_v(true));
      if (have_id) resp.set("id", id);
      resp.set("op", Value::string_v(name));
      if (name == "hello") {
        handle_hello(resp);
      } else if (name == "query") {
        handle_query(req, resp);
      } else if (name == "sweep") {
        handle_sweep(req, resp);
      } else if (name == "stats") {
        handle_stats(resp);
      } else if (name == "shutdown") {
        shutdown = true;
      } else {
        throw std::invalid_argument("unknown op \"" + name + "\"");
      }
      return resp;
    } catch (const std::exception& e) {
      any_failed = true;
      Value resp = Value::object();
      resp.set("ok", Value::boolean_v(false));
      if (have_id) resp.set("id", id);
      resp.set("error", Value::string_v(e.what()));
      return resp;
    }
  }

  void handle_hello(Value& resp) {
    const tb::api::ServiceConfig& cfg = service_.config();
    resp.set("server", Value::string_v("topobench_server"));
    resp.set("version", Value::string_v(kServerVersion));
    resp.set("protocol", Value::number_v(tb::api::kProtocolVersion));
    resp.set("api_version", Value::string_v(tb::api::kApiVersion));
    resp.set("store_format", Value::number_v(tb::store::kStoreFormatVersion));
    resp.set("store", cfg.store_path.empty()
                          ? Value::null()
                          : Value::string_v(cfg.store_path));
    resp.set("store_read_only", Value::boolean_v(cfg.store_read_only));
    resp.set("store_entries",
             Value::number_v(static_cast<double>(service_.stats().store_entries)));
  }

  tb::api::Query parse_query(const Value& req) {
    tb::api::Query q;
    const Value* topology = req.find("topology");
    if (topology == nullptr) {
      throw std::invalid_argument("query needs a \"topology\"");
    }
    q.topology = parse_topology(*topology);
    const Value* tm = req.find("tm");
    if (tm == nullptr) throw std::invalid_argument("query needs a \"tm\"");
    q.tm = tb::api::build_tm(tm->as_string("tm"));
    if (const Value* solver = req.find("solver")) {
      q.solver = parse_solver(solver->as_string("solver"));
    }
    if (const Value* eps = req.find("epsilon")) {
      const double e = eps->as_number("epsilon");
      if (!(e > 0.0) || e > 1.0) {
        throw std::invalid_argument("epsilon must be in (0, 1]");
      }
      q.epsilon = e;
    }
    if (const Value* trials = req.find("trials")) {
      q.trials = static_cast<int>(trials->as_int("trials", 0, 100));
    }
    if (const Value* cb = req.find("cut_bounds")) {
      q.cut_bounds = cb->as_bool("cut_bounds");
    }
    if (const Value* scenario = req.find("scenario")) {
      q.scenario = tb::api::build_scenario(scenario->as_string("scenario"));
    }
    if (const Value* seed_field = req.find("seed")) {
      q.seed = static_cast<std::uint64_t>(seed_field->as_int("seed", 0, 1000000000L));
    }
    return q;
  }

  void handle_query(const Value& req, Value& resp) {
    const tb::api::QueryResult r = service_.query(parse_query(req));
    resp.set("source", Value::string_v(tb::api::to_string(r.source)));
    resp.set("result", record_json(r.record));
  }

  void handle_sweep(const Value& req, Value& resp) {
    tb::api::SweepQuery q;
    const Value* topologies = req.find("topologies");
    if (topologies == nullptr || topologies->kind != tb::json::Kind::Array ||
        topologies->items.empty()) {
      throw std::invalid_argument(
          "sweep needs a non-empty \"topologies\" array");
    }
    for (const Value& t : topologies->items) {
      q.topologies.push_back(parse_topology(t));
    }
    const Value* tms = req.find("tms");
    if (tms == nullptr || tms->kind != tb::json::Kind::Array ||
        tms->items.empty()) {
      throw std::invalid_argument("sweep needs a non-empty \"tms\" array");
    }
    for (const Value& t : tms->items) {
      q.tms.push_back(tb::api::build_tm(t.as_string("tms[]")));
    }
    if (const Value* solver = req.find("solver")) {
      q.solver = parse_solver(solver->as_string("solver"));
    }
    if (const Value* eps = req.find("epsilon")) {
      const double e = eps->as_number("epsilon");
      if (!(e > 0.0) || e > 1.0) {
        throw std::invalid_argument("epsilon must be in (0, 1]");
      }
      q.epsilon = e;
    }
    if (const Value* trials = req.find("trials")) {
      q.trials = static_cast<int>(trials->as_int("trials", 0, 100));
    }
    if (const Value* cb = req.find("cut_bounds")) {
      q.cut_bounds = cb->as_bool("cut_bounds");
    }
    if (const Value* scenarios = req.find("scenarios")) {
      if (scenarios->kind != tb::json::Kind::Array) {
        throw std::invalid_argument("\"scenarios\" must be an array");
      }
      for (const Value& s : scenarios->items) {
        q.scenarios.push_back(
            tb::api::build_scenario(s.as_string("scenarios[]")));
      }
    }
    if (const Value* warm = req.find("warm_start")) {
      q.warm_start = warm->as_bool("warm_start");
    }
    if (const Value* seed_field = req.find("seed")) {
      q.seed = static_cast<std::uint64_t>(seed_field->as_int("seed", 0, 1000000000L));
    }
    const tb::api::SweepResult r = service_.sweep(q);
    resp.set("cells", Value::number_v(static_cast<double>(r.results.size())));
    resp.set("memory_hits",
             Value::number_v(static_cast<double>(r.stats.memory_hits)));
    resp.set("disk_hits",
             Value::number_v(static_cast<double>(r.stats.disk_hits)));
    resp.set("solved", Value::number_v(static_cast<double>(r.stats.solved)));
    Value rows = Value::array();
    for (const tb::api::Result& rec : r.results.rows()) {
      rows.items.push_back(record_json(rec));
    }
    resp.set("results", std::move(rows));
  }

  void handle_stats(Value& resp) {
    const tb::api::ServiceStats s = service_.stats();
    resp.set("queries", Value::number_v(static_cast<double>(s.queries)));
    resp.set("cells", Value::number_v(static_cast<double>(s.cells)));
    resp.set("memory_hits",
             Value::number_v(static_cast<double>(s.memory_hits)));
    resp.set("disk_hits", Value::number_v(static_cast<double>(s.disk_hits)));
    resp.set("misses", Value::number_v(static_cast<double>(s.misses)));
    resp.set("store_entries",
             Value::number_v(static_cast<double>(s.store_entries)));
  }

  tb::api::Service service_;
};

}  // namespace

int main(int argc, char** argv) {
  std::string store_override;
  bool have_store_override = false;
  bool read_only_override = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      print_usage(std::cout);
      return kExitOk;
    }
    if (arg == "--version") {
      std::cout << "topobench_server " << kServerVersion << " (protocol "
                << tb::api::kProtocolVersion << ", api "
                << tb::api::kApiVersion << ", store format "
                << tb::store::kStoreFormatVersion << ")\n";
      return kExitOk;
    }
    if (arg == "--store") {
      if (i + 1 >= argc) {
        std::cerr << "topobench_server: --store needs a path\n";
        print_usage(std::cerr);
        return kExitUsage;
      }
      store_override = argv[++i];
      have_store_override = true;
      continue;
    }
    if (arg == "--read-only") {
      read_only_override = true;
      continue;
    }
    std::cerr << "topobench_server: unknown option '" << arg << "'\n";
    print_usage(std::cerr);
    return kExitUsage;
  }

  try {
    tb::api::ServiceConfig cfg = tb::api::ServiceConfig::from_env();
    if (have_store_override) cfg.store_path = store_override;
    if (read_only_override) cfg.store_read_only = true;
    Server server(std::move(cfg));
    return server.serve(std::cin, std::cout);
  } catch (const std::exception& e) {
    // Configuration failures (malformed env knob, unopenable or corrupt
    // store, second writer) are environment errors: nothing was served.
    std::cerr << "topobench_server: " << e.what() << '\n';
    return kExitUsage;
  }
}
