// topobench_lint: repo-specific determinism static checker.
//
// Scans C++ sources for the hazards that break topobench's bitwise-
// reproducibility contract (see tools/lint_core.h for the rule catalogue
// and the allow-marker escape hatch).
//
// Usage:
//   topobench_lint [options] [path ...]
//
// Paths may be files or directories (directories recurse into *.h,
// *.hpp, *.cc, *.cpp, *.cxx). With no paths, scans the src, tools,
// bench, and examples trees under --root (default: the current
// directory) — the repo's result-affecting code.
//
// Options:
//   --root <dir>   base directory for the default path set
//   --json         emit findings as a JSON array instead of text lines
//   --list-rules   print the rule catalogue and exit
//   -h, --help     print this help and exit
//   --version      print the version and exit
//
// Exit status: 0 when the scan is clean, 1 when there are findings,
// 2 on usage or environment errors (unknown option, unreadable path).
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "lint_core.h"

namespace {

constexpr int kExitClean = 0;
constexpr int kExitFindings = 1;
constexpr int kExitUsage = 2;

void print_usage(std::ostream& os) {
  os << "usage: topobench_lint [options] [path ...]\n"
        "\n"
        "Scans C++ sources for topobench determinism hazards. Paths may\n"
        "be files or directories; with no paths, scans src tools bench\n"
        "examples under --root (default: .).\n"
        "\n"
        "options:\n"
        "  --root <dir>   base directory for the default path set\n"
        "  --json         emit findings as a JSON array\n"
        "  --list-rules   print the rule catalogue and exit\n"
        "  -h, --help     print this help and exit\n"
        "  --version      print the version and exit\n"
        "\n"
        "Suppress a finding with a comment marker on the same or the\n"
        "preceding line: \"topobench-lint: allow(<rule-id>) <why>\".\n"
        "\n"
        "exit status: 0 clean, 1 findings, 2 usage error\n";
}

int usage_error(const std::string& what) {
  std::cerr << "topobench_lint: " << what << '\n';
  print_usage(std::cerr);
  return kExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  bool json = false;
  std::string root = ".";
  std::vector<std::string> paths;
  bool options_done = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (options_done || arg.empty() || arg[0] != '-') {
      paths.push_back(arg);
    } else if (arg == "--") {
      options_done = true;
    } else if (arg == "-h" || arg == "--help") {
      print_usage(std::cout);
      return kExitClean;
    } else if (arg == "--version") {
      std::cout << "topobench_lint " << tb::lint::kVersion << '\n';
      return kExitClean;
    } else if (arg == "--list-rules") {
      for (const tb::lint::RuleInfo& rule : tb::lint::rule_catalogue()) {
        std::cout << rule.id << ": " << rule.summary << '\n';
      }
      return kExitClean;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--root") {
      if (i + 1 >= argc) return usage_error("--root needs a directory");
      root = argv[++i];
    } else {
      return usage_error("unknown option '" + arg + "'");
    }
  }

  if (paths.empty()) {
    for (const char* dir : {"src", "tools", "bench", "examples"}) {
      const fs::path candidate = fs::path(root) / dir;
      if (fs::is_directory(candidate)) {
        paths.push_back(candidate.generic_string());
      }
    }
    if (paths.empty()) {
      return usage_error("no src/tools/bench/examples trees under '" + root +
                         "' (pass explicit paths or --root)");
    }
  }

  std::vector<tb::lint::Finding> findings;
  try {
    findings = tb::lint::lint_paths(paths);
  } catch (const std::exception& e) {
    std::cerr << "topobench_lint: " << e.what() << '\n';
    return kExitUsage;
  }

  std::cout << (json ? tb::lint::render_json(findings)
                     : tb::lint::render_text(findings));
  if (findings.empty()) return kExitClean;
  std::cerr << "topobench_lint: " << findings.size() << " finding"
            << (findings.size() == 1 ? "" : "s") << '\n';
  return kExitFindings;
}
