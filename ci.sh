#!/usr/bin/env bash
# Tier-1 verification, runnable locally or from CI: configure, build
# everything, run the full CTest suite. Mirrors the command in ROADMAP.md.
set -euo pipefail
cd "$(dirname "$0")"

# Optional format check — soft-skipped where clang-format isn't installed.
# The CI `format` job runs the same file set fatally with a pinned
# clang-format major; this local pass stays advisory.
if command -v clang-format >/dev/null 2>&1; then
  if ! clang-format --dry-run --Werror \
      src/*/*.h src/*/*.cpp tests/*.h tests/*.cpp bench/*.h bench/*.cpp \
      examples/*.cpp tools/*.cpp; then
    echo "warning: clang-format found style drift (non-fatal)" >&2
  fi
fi

cmake -B build -S .
cmake --build build -j"$(nproc)"
# The suite includes runner_csv_determinism, which runs a runner-ported
# bench driver at a tiny size in serial and parallel modes and diffs the
# emitted CSVs (see tests/runner_determinism.cmake).
cd build && ctest --output-on-failure -j"$(nproc)"
