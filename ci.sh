#!/usr/bin/env bash
# Tier-1 verification, runnable locally or from CI: configure, build
# everything, run the full CTest suite. Mirrors the command in ROADMAP.md.
set -euo pipefail
cd "$(dirname "$0")"

# Optional format check — soft-skipped where clang-format isn't installed.
# The CI `format` job runs the same file set fatally with a pinned
# clang-format major; this local pass stays advisory.
if command -v clang-format >/dev/null 2>&1; then
  if ! clang-format --dry-run --Werror \
      src/*/*.h src/*/*.cpp tests/*.h tests/*.cpp bench/*.h bench/*.cpp \
      examples/*.cpp tools/*.h tools/*.cpp; then
    echo "warning: clang-format found style drift (non-fatal)" >&2
  fi
fi

cmake -B build -S .
cmake --build build -j"$(nproc)"

# Determinism lint, fatal: the repo-specific checker must come back clean
# over all result-affecting code (the lint_tree CTest entry repeats this,
# but running it up front gives a readable report before the suite).
./build/tools/topobench_lint --root .

# clang-tidy is advisory here (soft-skipped when not installed); the CI
# `lint` job runs the same .clang-tidy set fatally with a pinned major.
if command -v run-clang-tidy >/dev/null 2>&1; then
  if ! run-clang-tidy -quiet -p build \
      -extra-arg=-Wno-unknown-warning-option \
      '(src|tools|bench|examples|tests)/.*\.(cpp|cc)$'; then
    echo "warning: clang-tidy found issues (non-fatal locally)" >&2
  fi
fi
# The suite includes runner_csv_determinism, which runs a runner-ported
# bench driver at a tiny size in serial and parallel modes and diffs the
# emitted CSVs (see tests/runner_determinism.cmake).
cd build && ctest --output-on-failure -j"$(nproc)"
