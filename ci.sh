#!/usr/bin/env bash
# Tier-1 verification, runnable locally or from CI: configure, build
# everything, run the full CTest suite. Mirrors the command in ROADMAP.md.
set -euo pipefail
cd "$(dirname "$0")"

# Optional format check — soft-skipped where clang-format isn't installed.
if command -v clang-format >/dev/null 2>&1; then
  if ! clang-format --dry-run --Werror \
      src/*/*.h src/*/*.cpp tests/*.cpp bench/*.h bench/*.cpp \
      examples/*.cpp; then
    echo "warning: clang-format found style drift (non-fatal)" >&2
  fi
fi

cmake -B build -S .
cmake --build build -j"$(nproc)"
cd build && ctest --output-on-failure -j"$(nproc)"
