#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "matching/hungarian.h"
#include "util/rng.h"

namespace tb {
namespace {

bool is_permutation(const std::vector<int>& match, int n) {
  std::set<int> seen(match.begin(), match.end());
  return static_cast<int>(seen.size()) == n && *seen.begin() == 0 &&
         *seen.rbegin() == n - 1;
}

TEST(Hungarian, TrivialSizes) {
  EXPECT_TRUE(max_weight_perfect_matching({}, 0).empty());
  const std::vector<double> w1{42.0};
  const std::vector<int> m1 = max_weight_perfect_matching(w1, 1);
  ASSERT_EQ(m1.size(), 1u);
  EXPECT_EQ(m1[0], 0);
}

TEST(Hungarian, KnownSmallInstance) {
  // Classic 3x3: max assignment picks the anti-diagonal-ish optimum.
  const std::vector<double> w{
      7, 4, 3,
      3, 1, 2,
      3, 0, 0,
  };
  const std::vector<int> m = max_weight_perfect_matching(w, 3);
  EXPECT_NEAR(assignment_weight(w, 3, m), 7 + 2 + 0, 1e-12);
  EXPECT_TRUE(is_permutation(m, 3));
}

TEST(Hungarian, MinVersionComplementsMax) {
  const std::vector<double> w{
      1, 9,
      9, 1,
  };
  const std::vector<int> mn = min_weight_perfect_matching(w, 2);
  EXPECT_NEAR(assignment_weight(w, 2, mn), 2.0, 1e-12);
  const std::vector<int> mx = max_weight_perfect_matching(w, 2);
  EXPECT_NEAR(assignment_weight(w, 2, mx), 18.0, 1e-12);
}

TEST(Hungarian, MatchesBruteForceOnRandomInstances) {
  Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 2 + static_cast<int>(rng.next_u64(6));  // 2..7
    std::vector<double> w(static_cast<std::size_t>(n) *
                          static_cast<std::size_t>(n));
    for (double& x : w) x = rng.next_double(-10.0, 10.0);
    const std::vector<int> hung = max_weight_perfect_matching(w, n);
    const std::vector<int> brute = brute_force_matching(w, n, true);
    EXPECT_TRUE(is_permutation(hung, n));
    EXPECT_NEAR(assignment_weight(w, n, hung),
                assignment_weight(w, n, brute), 1e-9)
        << "trial " << trial << " n=" << n;
  }
}

TEST(Hungarian, HandlesLargeForbiddenDiagonal) {
  // Diagonal strongly penalized: result must be a derangement.
  const int n = 6;
  Rng rng(5);
  std::vector<double> w(static_cast<std::size_t>(n) * n);
  for (double& x : w) x = rng.next_double(0.0, 5.0);
  for (int i = 0; i < n; ++i) {
    w[static_cast<std::size_t>(i) * n + static_cast<std::size_t>(i)] = -1e9;
  }
  const std::vector<int> m = max_weight_perfect_matching(w, n);
  for (int i = 0; i < n; ++i) EXPECT_NE(m[static_cast<std::size_t>(i)], i);
}

TEST(Greedy, IsValidAssignmentAndNotWorseThanHalf) {
  Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 3 + static_cast<int>(rng.next_u64(5));
    std::vector<double> w(static_cast<std::size_t>(n) * n);
    for (double& x : w) x = rng.next_double(0.0, 10.0);
    const std::vector<int> greedy = greedy_matching(w, n, true);
    const std::vector<int> opt = max_weight_perfect_matching(w, n);
    EXPECT_TRUE(is_permutation(greedy, n));
    // Greedy is a 1/2-approximation for max weight matching.
    EXPECT_GE(assignment_weight(w, n, greedy) + 1e-9,
              0.5 * assignment_weight(w, n, opt));
  }
}

TEST(BruteForce, RejectsLargeN) {
  std::vector<double> w(121, 0.0);
  EXPECT_THROW(brute_force_matching(w, 11, true), std::invalid_argument);
}

TEST(Hungarian, ScalesToMidSizeInstances) {
  const int n = 200;
  Rng rng(77);
  std::vector<double> w(static_cast<std::size_t>(n) * n);
  for (double& x : w) x = rng.next_double(0.0, 100.0);
  const std::vector<int> m = max_weight_perfect_matching(w, n);
  EXPECT_TRUE(is_permutation(m, n));
  // Sanity: optimal is at least the identity assignment's weight.
  double identity = 0.0;
  for (int i = 0; i < n; ++i) {
    identity += w[static_cast<std::size_t>(i) * n + static_cast<std::size_t>(i)];
  }
  EXPECT_GE(assignment_weight(w, n, m), identity);
}

}  // namespace
}  // namespace tb
