#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "graph/algorithms.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "graph/spectral.h"

namespace tb {
namespace {

Graph ring(int n) {
  Graph g(n);
  for (int v = 0; v < n; ++v) g.add_edge(v, (v + 1) % n);
  g.finalize();
  return g;
}

Graph complete(int n) {
  Graph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) g.add_edge(u, v);
  }
  g.finalize();
  return g;
}

TEST(Graph, ArcPairingConvention) {
  Graph g(3);
  const int e = g.add_edge(1, 2, 2.5);
  g.finalize();
  EXPECT_EQ(g.arc_from(2 * e), 1);
  EXPECT_EQ(g.arc_to(2 * e), 2);
  EXPECT_EQ(g.arc_from(2 * e + 1), 2);
  EXPECT_EQ(g.arc_to(2 * e + 1), 1);
  EXPECT_DOUBLE_EQ(g.arc_cap(2 * e), 2.5);
  EXPECT_EQ(Graph::reverse_arc(2 * e), 2 * e + 1);
  EXPECT_EQ(Graph::reverse_arc(2 * e + 1), 2 * e);
}

TEST(Graph, RejectsSelfLoopAndBadIds) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 5), std::out_of_range);
  EXPECT_THROW(g.add_edge(0, 1, -1.0), std::invalid_argument);
}

TEST(Graph, DegreeAndAdjacency) {
  Graph g = complete(5);
  for (int v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 4);
  EXPECT_TRUE(g.has_edge(0, 4));
  EXPECT_TRUE(g.has_edge(4, 0));
  EXPECT_EQ(g.num_edges(), 10);
  EXPECT_EQ(g.num_arcs(), 20);
  EXPECT_DOUBLE_EQ(g.total_capacity(), 20.0);
}

TEST(Graph, MultigraphDegrees) {
  Graph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  g.finalize();
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.num_edges(), 2);
}

TEST(Algorithms, BfsDistancesOnRing) {
  Graph g = ring(8);
  const std::vector<int> d = bfs_distances(g, 0);
  EXPECT_EQ(d[0], 0);
  EXPECT_EQ(d[1], 1);
  EXPECT_EQ(d[4], 4);
  EXPECT_EQ(d[7], 1);
}

TEST(Algorithms, DiameterAndConnectivity) {
  EXPECT_EQ(diameter(ring(10)), 5);
  EXPECT_EQ(diameter(complete(6)), 1);
  EXPECT_TRUE(is_connected(ring(5)));
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.finalize();
  EXPECT_FALSE(is_connected(g));
  EXPECT_EQ(diameter(g), kUnreachable);
}

TEST(Algorithms, ConnectedComponents) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  g.finalize();
  int count = 0;
  const std::vector<int> comp = connected_components(g, &count);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(comp[0], comp[2]);
  EXPECT_NE(comp[0], comp[3]);
}

TEST(Algorithms, AllPairsMatchesBfs) {
  Graph g = ring(9);
  const std::vector<int> all = all_pairs_distances(g);
  for (int s = 0; s < 9; ++s) {
    const std::vector<int> d = bfs_distances(g, s);
    for (int t = 0; t < 9; ++t) {
      EXPECT_EQ(apd_at(all, 9, s, t), d[static_cast<std::size_t>(t)]);
    }
  }
}

TEST(Algorithms, AveragePathLengthCompleteGraph) {
  EXPECT_DOUBLE_EQ(average_shortest_path_length(complete(7)), 1.0);
}

TEST(Algorithms, DijkstraRespectsWeights) {
  // Triangle where the direct hop is longer than the two-hop detour.
  Graph g(3);
  const int e01 = g.add_edge(0, 1);
  const int e12 = g.add_edge(1, 2);
  const int e02 = g.add_edge(0, 2);
  g.finalize();
  std::vector<double> len(static_cast<std::size_t>(g.num_arcs()), 1.0);
  len[static_cast<std::size_t>(2 * e02)] = 5.0;
  len[static_cast<std::size_t>(2 * e02 + 1)] = 5.0;
  std::vector<double> dist;
  std::vector<int> parent;
  dijkstra(g, 0, len, dist, parent);
  EXPECT_DOUBLE_EQ(dist[2], 2.0);
  // Parent of 2 is the arc from 1.
  EXPECT_EQ(g.arc_from(parent[2]), 1);
  (void)e01;
  (void)e12;
}

TEST(Spectral, RingEigenvalueMatchesClosedForm) {
  // lambda_2 of the normalized Laplacian of a cycle C_n is 1 - cos(2*pi/n).
  const int n = 16;
  const SpectralResult r = fiedler_vector(ring(n));
  EXPECT_NEAR(r.eigenvalue, 1.0 - std::cos(2.0 * M_PI / n), 1e-6);
}

TEST(Spectral, CompleteGraphGap) {
  // K_n normalized Laplacian has lambda_2 = n/(n-1).
  const int n = 8;
  const SpectralResult r = fiedler_vector(complete(n));
  EXPECT_NEAR(r.eigenvalue, static_cast<double>(n) / (n - 1), 1e-6);
}

TEST(Spectral, FiedlerSeparatesBarbell) {
  // Two K_5 joined by one edge: the Fiedler vector signs the two cliques.
  Graph g(10);
  for (int u = 0; u < 5; ++u) {
    for (int v = u + 1; v < 5; ++v) {
      g.add_edge(u, v);
      g.add_edge(5 + u, 5 + v);
    }
  }
  g.add_edge(0, 5);
  g.finalize();
  const SpectralResult r = fiedler_vector(g);
  for (int v = 1; v < 5; ++v) {
    EXPECT_GT(r.vector[static_cast<std::size_t>(v)] * r.vector[1], 0.0);
    EXPECT_GT(r.vector[static_cast<std::size_t>(5 + v)] * r.vector[6], 0.0);
  }
  EXPECT_LT(r.vector[1] * r.vector[6], 0.0);
}

TEST(Partition, CutCapacityCounts) {
  Graph g = complete(4);
  std::vector<std::uint8_t> side{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(cut_capacity(g, side), 4.0);
}

TEST(Partition, BarbellBisectionFindsBridge) {
  Graph g(8);
  for (int u = 0; u < 4; ++u) {
    for (int v = u + 1; v < 4; ++v) {
      g.add_edge(u, v);
      g.add_edge(4 + u, 4 + v);
    }
  }
  g.add_edge(0, 4);
  g.finalize();
  const BipartitionResult r = min_bisection(g, 8, 3);
  EXPECT_DOUBLE_EQ(r.cut_capacity, 1.0);
  int side1 = 0;
  for (const auto s : r.side) side1 += s;
  EXPECT_EQ(side1, 4);
}

TEST(Partition, HypercubeBisectionIsHalfEdges) {
  // 3-cube: min bisection cut = 4 (n/2 links for n = 8).
  Graph g(8);
  for (int u = 0; u < 8; ++u) {
    for (int b = 0; b < 3; ++b) {
      const int v = u ^ (1 << b);
      if (u < v) g.add_edge(u, v);
    }
  }
  g.finalize();
  const BipartitionResult r = min_bisection(g, 16, 5);
  EXPECT_DOUBLE_EQ(r.cut_capacity, 4.0);
}

}  // namespace
}  // namespace tb
