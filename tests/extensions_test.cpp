#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "graph/algorithms.h"
#include "topo/butterfly.h"
#include "topo/hypercube.h"
#include "topo/io.h"
#include "topo/torus.h"
#include "topo/xpander.h"

namespace tb {
namespace {

TEST(Xpander, RegularAndConnected) {
  for (const int d : {3, 5, 8}) {
    for (const int lift : {4, 8}) {
      const Network net = make_xpander(d, lift, 1, 7);
      net.validate();
      EXPECT_EQ(net.graph.num_nodes(), (d + 1) * lift);
      for (int v = 0; v < net.graph.num_nodes(); ++v) {
        EXPECT_EQ(net.graph.degree(v), d) << "d=" << d << " lift=" << lift;
      }
    }
  }
}

TEST(Xpander, NoIntraBlockEdges) {
  const int d = 4;
  const int lift = 6;
  const Network net = make_xpander(d, lift, 1, 9);
  for (int e = 0; e < net.graph.num_edges(); ++e) {
    EXPECT_NE(net.graph.edge_u(e) / lift, net.graph.edge_v(e) / lift);
  }
}

TEST(Xpander, DeterministicPerSeed) {
  const Network a = make_xpander(3, 8, 1, 5);
  const Network b = make_xpander(3, 8, 1, 5);
  ASSERT_EQ(a.graph.num_edges(), b.graph.num_edges());
  for (int e = 0; e < a.graph.num_edges(); ++e) {
    EXPECT_EQ(a.graph.edge_u(e), b.graph.edge_u(e));
    EXPECT_EQ(a.graph.edge_v(e), b.graph.edge_v(e));
  }
}

TEST(Torus, RingIsOneDimensionalTorus) {
  const Network net = make_torus({8}, 1);
  net.validate();
  EXPECT_EQ(net.graph.num_nodes(), 8);
  EXPECT_EQ(net.graph.num_edges(), 8);
  EXPECT_EQ(diameter(net.graph), 4);
}

TEST(Torus, TwoDimensionalDegreesAndDiameter) {
  const Network net = make_torus({4, 4}, 1);
  net.validate();
  EXPECT_EQ(net.graph.num_nodes(), 16);
  for (int v = 0; v < 16; ++v) EXPECT_EQ(net.graph.degree(v), 4);
  EXPECT_EQ(diameter(net.graph), 4);  // 2 + 2
}

TEST(Torus, MeshHasLowerEdgeCountAndBiggerDiameter) {
  const Network torus = make_torus({5, 5}, 1, /*wrap=*/true);
  const Network mesh = make_torus({5, 5}, 1, /*wrap=*/false);
  EXPECT_GT(torus.graph.num_edges(), mesh.graph.num_edges());
  EXPECT_LT(diameter(torus.graph), diameter(mesh.graph));
}

TEST(Torus, Size2DimensionsAvoidParallelEdges) {
  const Network net = make_torus({2, 2, 2}, 1);
  const Network hc = make_hypercube(3);
  EXPECT_EQ(net.graph.num_edges(), hc.graph.num_edges());
}

TEST(Butterfly, StructureAndServerPlacement) {
  const int k = 2;
  const int stages = 4;
  const Network net = make_butterfly(k, stages);
  net.validate();
  const int per_stage = 8;  // k^(stages-1)
  EXPECT_EQ(net.graph.num_nodes(), per_stage * stages);
  EXPECT_EQ(net.total_servers(), 2 * per_stage * k);
  // First/last stages have degree k (one direction), middle 2k.
  for (int r = 0; r < per_stage; ++r) {
    EXPECT_EQ(net.graph.degree(r), k);
    EXPECT_EQ(net.graph.degree((stages - 1) * per_stage + r), k);
    EXPECT_EQ(net.graph.degree(per_stage + r), 2 * k);
  }
}

TEST(Butterfly, UnflattenedMatchesPaperNaming) {
  // 5-ary 3-stage butterfly: 25 switches per stage, 3 stages.
  const Network net = make_butterfly(5, 3);
  EXPECT_EQ(net.graph.num_nodes(), 75);
  EXPECT_EQ(net.total_servers(), 2 * 25 * 5);
}

TEST(IO, EdgeListRoundTrip) {
  const Network net = make_torus({3, 3}, 2);
  const std::string text = to_edge_list(net);
  const Network back = parse_edge_list(text, net.name);
  back.validate();
  EXPECT_EQ(back.graph.num_nodes(), net.graph.num_nodes());
  EXPECT_EQ(back.graph.num_edges(), net.graph.num_edges());
  EXPECT_EQ(back.servers, net.servers);
  for (int e = 0; e < net.graph.num_edges(); ++e) {
    EXPECT_EQ(back.graph.edge_u(e), net.graph.edge_u(e));
    EXPECT_EQ(back.graph.edge_v(e), net.graph.edge_v(e));
    EXPECT_DOUBLE_EQ(back.graph.edge_cap(e), net.graph.edge_cap(e));
  }
}

TEST(IO, RejectsMalformedInput) {
  EXPECT_THROW(parse_edge_list("edge 0 1 1.0\n"), std::runtime_error);
  EXPECT_THROW(parse_edge_list("nodes 2\nedge 0 5 1.0\n"), std::runtime_error);
  EXPECT_THROW(parse_edge_list("nodes 2\nbogus\n"), std::runtime_error);
  EXPECT_THROW(parse_edge_list(""), std::runtime_error);
  EXPECT_THROW(parse_edge_list("nodes 3\nservers 9 1\n"), std::runtime_error);
}

TEST(IO, CommentsAndBlankLinesIgnored) {
  const Network net = parse_edge_list(
      "# header\n\nnodes 2\n# mid\nservers 0 1\nservers 1 1\nedge 0 1 2.5\n");
  EXPECT_EQ(net.graph.num_nodes(), 2);
  EXPECT_DOUBLE_EQ(net.graph.edge_cap(0), 2.5);
}

TEST(IO, DotContainsNodesAndEdges) {
  const Network net = make_torus({3}, 1);
  const std::string dot = to_dot(net);
  EXPECT_NE(dot.find("graph"), std::string::npos);
  EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(dot.find("(1 srv)"), std::string::npos);
}

}  // namespace
}  // namespace tb
