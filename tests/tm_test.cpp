#include <gtest/gtest.h>

#include <map>
#include <set>

#include "graph/algorithms.h"
#include "tm/facebook.h"
#include "tm/synthetic.h"
#include "tm/traffic_matrix.h"
#include "topo/fattree.h"
#include "topo/hypercube.h"
#include "topo/jellyfish.h"

namespace tb {
namespace {

double out_sum(const TrafficMatrix& tm, int node) {
  double s = 0.0;
  for (const Demand& d : tm.demands) {
    if (d.src == node) s += d.amount;
  }
  return s;
}

double in_sum(const TrafficMatrix& tm, int node) {
  double s = 0.0;
  for (const Demand& d : tm.demands) {
    if (d.dst == node) s += d.amount;
  }
  return s;
}

TEST(TrafficMatrix, CanonicalizeMergesAndDropsSelf) {
  TrafficMatrix tm;
  tm.demands = {{0, 1, 0.5}, {0, 1, 0.25}, {2, 2, 3.0}, {1, 0, 1.0}};
  tm.canonicalize();
  ASSERT_EQ(tm.num_flows(), 2u);
  EXPECT_DOUBLE_EQ(tm.demands[0].amount, 0.75);
}

TEST(TrafficMatrix, HoseNormalizeScalesToUnitRow) {
  TrafficMatrix tm;
  tm.demands = {{0, 1, 2.0}, {0, 2, 2.0}, {1, 2, 1.0}};
  hose_normalize(tm, 3);
  EXPECT_NEAR(tm.max_row_sum(3), 1.0, 1e-12);
}

TEST(TrafficMatrix, ValidateRejectsNonHosts) {
  const Network ft = make_fat_tree(4);
  TrafficMatrix tm;
  const FatTreeInfo info = fat_tree_info(4);
  tm.demands = {{info.first_core, info.first_edge, 0.5}};  // core has no servers
  EXPECT_THROW(validate_tm(tm, ft), std::logic_error);
}

TEST(AllToAll, HoseRowSumsAndFlowCount) {
  const Network hc = make_hypercube(4);
  const TrafficMatrix tm = all_to_all(hc);
  const int h = 16;
  EXPECT_EQ(tm.num_flows(), static_cast<std::size_t>(h * (h - 1)));
  for (int v = 0; v < h; ++v) {
    EXPECT_NEAR(out_sum(tm, v), (h - 1) / static_cast<double>(h), 1e-12);
    EXPECT_NEAR(in_sum(tm, v), (h - 1) / static_cast<double>(h), 1e-12);
  }
  validate_tm(tm, hc);
}

TEST(AllToAll, FatTreeUsesOnlyEdgeSwitches) {
  const Network ft = make_fat_tree(4);
  const TrafficMatrix tm = all_to_all(ft);
  const FatTreeInfo info = fat_tree_info(4);
  for (const Demand& d : tm.demands) {
    EXPECT_LT(d.src, info.num_edge);
    EXPECT_LT(d.dst, info.num_edge);
  }
}

TEST(RandomMatching, OneFlowPerHostEachRound) {
  const Network hc = make_hypercube(5);
  for (const int k : {1, 2, 5}) {
    const TrafficMatrix tm = random_matching(hc, k, 77);
    validate_tm(tm, hc);
    for (int v = 0; v < 32; ++v) {
      EXPECT_NEAR(out_sum(tm, v), 1.0, 1e-12) << "k=" << k;
      EXPECT_NEAR(in_sum(tm, v), 1.0, 1e-12) << "k=" << k;
    }
    // k rounds of weight 1/k each: no flow exceeds 1, at most k per host.
    for (const Demand& d : tm.demands) {
      EXPECT_LE(d.amount, 1.0 + 1e-12);
      EXPECT_NE(d.src, d.dst);
    }
  }
}

TEST(RandomMatching, DeterministicPerSeed) {
  const Network hc = make_hypercube(4);
  const TrafficMatrix a = random_matching(hc, 2, 5);
  const TrafficMatrix b = random_matching(hc, 2, 5);
  ASSERT_EQ(a.num_flows(), b.num_flows());
  for (std::size_t i = 0; i < a.num_flows(); ++i) {
    EXPECT_EQ(a.demands[i].src, b.demands[i].src);
    EXPECT_EQ(a.demands[i].dst, b.demands[i].dst);
  }
}

TEST(LongestMatching, IsPermutationWithUnitDemands) {
  const Network hc = make_hypercube(5);
  const TrafficMatrix tm = longest_matching(hc);
  validate_tm(tm, hc);
  EXPECT_EQ(tm.num_flows(), 32u);
  std::set<int> srcs;
  std::set<int> dsts;
  for (const Demand& d : tm.demands) {
    EXPECT_DOUBLE_EQ(d.amount, 1.0);
    EXPECT_TRUE(srcs.insert(d.src).second);
    EXPECT_TRUE(dsts.insert(d.dst).second);
  }
}

TEST(LongestMatching, HypercubePairsAntipodes) {
  // On the hypercube the longest matching pairs each node with its
  // bitwise complement (distance d, the diameter).
  const int d = 4;
  const Network hc = make_hypercube(d);
  const TrafficMatrix tm = longest_matching(hc);
  const std::vector<int> all = all_pairs_distances(hc.graph);
  double total = 0.0;
  for (const Demand& dem : tm.demands) {
    total += apd_at(all, 16, dem.src, dem.dst);
  }
  EXPECT_DOUBLE_EQ(total, 16.0 * d);  // every pair at distance d
}

TEST(LongestMatching, BeatsOrMatchesGreedyAndRandom) {
  const Network jf = make_jellyfish(24, 4, 1, 3);
  const std::vector<int> all = all_pairs_distances(jf.graph);
  const auto tm_len = [&](const TrafficMatrix& tm) {
    double s = 0.0;
    for (const Demand& d : tm.demands) s += apd_at(all, 24, d.src, d.dst);
    return s;
  };
  const double lm = tm_len(longest_matching(jf));
  const double greedy = tm_len(longest_matching_greedy(jf));
  const double rm = tm_len(random_matching(jf, 1, 5));
  EXPECT_GE(lm + 1e-9, greedy);
  EXPECT_GE(lm + 1e-9, rm);
}

TEST(Kodialam, MatchesLongestMatchingObjectiveOnHypercube) {
  // With equal unit supplies the transportation LP's optimum equals the
  // max-weight matching value (Birkhoff): total path length = n * d.
  const int d = 3;
  const Network hc = make_hypercube(d);
  const TrafficMatrix ktm = kodialam_tm(hc);
  validate_tm(ktm, hc);
  const std::vector<int> all = all_pairs_distances(hc.graph);
  double total = 0.0;
  for (const Demand& dem : ktm.demands) {
    total += dem.amount * apd_at(all, 8, dem.src, dem.dst);
  }
  EXPECT_NEAR(total, 8.0 * d, 1e-6);
}

TEST(Elephants, WeightsAreTenAndOne) {
  const Network hc = make_hypercube(5);
  const TrafficMatrix base = longest_matching(hc);
  const TrafficMatrix tm = with_elephants(base, 0.25, 10.0, 9);
  int big = 0;
  int small = 0;
  for (const Demand& d : tm.demands) {
    if (d.amount == 10.0) {
      ++big;
    } else {
      EXPECT_DOUBLE_EQ(d.amount, 1.0);
      ++small;
    }
  }
  EXPECT_EQ(big, 8);  // 25% of 32
  EXPECT_EQ(small, 24);
}

TEST(Elephants, FractionZeroAndOneAreUniform) {
  const Network hc = make_hypercube(4);
  const TrafficMatrix base = longest_matching(hc);
  for (const double frac : {0.0, 1.0}) {
    const TrafficMatrix tm = with_elephants(base, frac, 10.0, 9);
    std::set<double> weights;
    for (const Demand& d : tm.demands) weights.insert(d.amount);
    EXPECT_EQ(weights.size(), 1u);
  }
}

TEST(RandomMatchingServers, EmitsOneUnitPerServer) {
  // Fat tree k=4: each edge switch has 2 servers -> out-demand 2 (up to
  // the rare derangement collision folded into another switch's row).
  const Network ft = make_fat_tree(4);
  const TrafficMatrix tm = random_matching_servers(ft, 3);
  validate_tm(tm, ft, /*check_hose=*/false);
  double total = 0.0;
  for (const Demand& d : tm.demands) total += d.amount;
  // Every server sends one unit; only same-switch pairs are dropped.
  EXPECT_GE(total, ft.total_servers() - 4);
  EXPECT_LE(total, ft.total_servers());
}

TEST(Facebook, MapUsesFirstRacksWhenHostsExceedRacks) {
  const Network hc = make_hypercube(7);  // 128 hosts > 64 racks
  const std::vector<double> rack = synth_tm_hadoop(64, 1);
  const TrafficMatrix tm = map_rack_tm(hc, rack, 64, 0);
  EXPECT_EQ(tm.num_flows(), 64u * 63u);
  for (const Demand& d : tm.demands) {
    EXPECT_LT(d.src, 64);
    EXPECT_LT(d.dst, 64);
  }
}

TEST(Facebook, HadoopIsNearUniform) {
  const std::vector<double> tm = synth_tm_hadoop(64, 1);
  double lo = 1e18;
  double hi = 0.0;
  for (int i = 0; i < 64; ++i) {
    for (int j = 0; j < 64; ++j) {
      if (i == j) continue;
      const double w = tm[static_cast<std::size_t>(i) * 64 + j];
      lo = std::min(lo, w);
      hi = std::max(hi, w);
    }
  }
  EXPECT_LT(hi / lo, 2.5);  // well under one decade of spread
}

TEST(Facebook, FrontendIsSkewed) {
  const std::vector<double> tm = synth_tm_frontend(64, 1);
  double lo = 1e18;
  double hi = 0.0;
  for (int i = 0; i < 64; ++i) {
    for (int j = 0; j < 64; ++j) {
      if (i == j) continue;
      const double w = tm[static_cast<std::size_t>(i) * 64 + j];
      lo = std::min(lo, w);
      hi = std::max(hi, w);
    }
  }
  EXPECT_GT(hi / lo, 30.0);  // order-of-magnitude cache skew
}

TEST(Facebook, MapDownsamplesAndNormalizes) {
  const Network hc = make_hypercube(5);  // 32 hosts < 64 racks
  const std::vector<double> rack = synth_tm_frontend(64, 1);
  const TrafficMatrix tm = map_rack_tm(hc, rack, 64, 0);
  validate_tm(tm, hc);
  EXPECT_NEAR(tm.max_row_sum(32), 1.0, 1e-9);
  EXPECT_EQ(tm.num_flows(), 32u * 31u);
}

TEST(Facebook, ShuffleChangesPlacementNotWeightMultiset) {
  const Network hc = make_hypercube(6);  // 64 hosts
  const std::vector<double> rack = synth_tm_frontend(64, 1);
  const TrafficMatrix sampled = map_rack_tm(hc, rack, 64, 0);
  const TrafficMatrix shuffled = map_rack_tm(hc, rack, 64, 123);
  EXPECT_EQ(sampled.num_flows(), shuffled.num_flows());
  double sum_a = 0.0;
  double sum_b = 0.0;
  for (const Demand& d : sampled.demands) sum_a += d.amount;
  for (const Demand& d : shuffled.demands) sum_b += d.amount;
  EXPECT_NEAR(sum_a, sum_b, sum_a * 1e-6);
  bool moved = false;
  std::map<std::pair<int, int>, double> a;
  for (const Demand& d : sampled.demands) a[{d.src, d.dst}] = d.amount;
  for (const Demand& d : shuffled.demands) {
    if (std::abs(a[{d.src, d.dst}] - d.amount) > 1e-12) moved = true;
  }
  EXPECT_TRUE(moved);
}

}  // namespace
}  // namespace tb
