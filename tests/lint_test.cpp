// Tests for tools/topobench_lint's engine (tools/lint_core.h): every rule
// is exercised by a positive fixture (each expected hit pinned to its
// line) and a negative fixture full of lookalikes that must stay clean,
// plus the allow-marker escape hatch — suppression, malformed markers,
// unused markers — and the renderers. Fixture snippets live in
// tests/lint_fixtures/ and are never compiled; the path arrives through
// the TOPOBENCH_LINT_FIXTURES compile definition. A rule regression here
// fails CTest directly, not just the CI lint job.
#include <gtest/gtest.h>

#include <cstddef>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "lint_core.h"

namespace tb::lint {
namespace {

std::string fixture(const std::string& name) {
  return std::string(TOPOBENCH_LINT_FIXTURES "/") + name;
}

// Renders one fixture's findings as "line:rule line:rule ..." (sorted by
// line, then rule — the engine's own order), so each expectation is a
// single readable string and a mismatch prints both sides whole.
std::string hits(const std::string& name) {
  std::string out;
  for (const Finding& f : lint_paths({fixture(name)})) {
    if (!out.empty()) out += ' ';
    out += std::to_string(f.line) + ':' + f.rule;
  }
  return out;
}

TEST(LintCatalogue, ListsEveryRuleExactlyOnce) {
  std::set<std::string> ids;
  for (const RuleInfo& info : rule_catalogue()) {
    EXPECT_TRUE(ids.insert(std::string(info.id)).second) << info.id;
    EXPECT_FALSE(info.summary.empty()) << info.id;
  }
  EXPECT_EQ(ids.size(), 6u);
  EXPECT_EQ(ids.count("unordered-container"), 1u);
  EXPECT_EQ(ids.count("banned-random"), 1u);
  EXPECT_EQ(ids.count("wall-clock"), 1u);
  EXPECT_EQ(ids.count("par-policy"), 1u);
  EXPECT_EQ(ids.count("unordered-reduction"), 1u);
  EXPECT_EQ(ids.count("seed-arith"), 1u);
}

TEST(LintCatalogue, MarkerDiagnosticsAreNotAllowable) {
  for (const RuleInfo& info : rule_catalogue()) {
    EXPECT_TRUE(is_allowable_rule(info.id)) << info.id;
  }
  EXPECT_FALSE(is_allowable_rule("bad-marker"));
  EXPECT_FALSE(is_allowable_rule("unused-allow"));
  EXPECT_FALSE(is_allowable_rule("no-such-rule"));
}

TEST(LintRules, UnorderedContainerPositive) {
  EXPECT_EQ(hits("unordered_pos.cpp"),
            "3:unordered-container 4:unordered-container "
            "6:unordered-container 14:unordered-container");
}

TEST(LintRules, UnorderedContainerNegative) {
  EXPECT_EQ(hits("unordered_neg.cpp"), "");
}

TEST(LintRules, BannedRandomPositive) {
  EXPECT_EQ(hits("banned_random_pos.cpp"),
            "3:banned-random 6:banned-random 7:banned-random "
            "8:banned-random 9:banned-random");
}

TEST(LintRules, BannedRandomNegative) {
  EXPECT_EQ(hits("banned_random_neg.cpp"), "");
}

TEST(LintRules, WallClockPositive) {
  EXPECT_EQ(hits("wall_clock_pos.cpp"),
            "3:wall-clock 6:wall-clock 10:wall-clock 14:wall-clock");
}

TEST(LintRules, WallClockNegative) {
  EXPECT_EQ(hits("wall_clock_neg.cpp"), "");
}

TEST(LintRules, ParPolicyPositive) {
  EXPECT_EQ(hits("par_policy_pos.cpp"),
            "3:par-policy 7:par-policy 8:par-policy");
}

TEST(LintRules, ParPolicyNegative) {
  EXPECT_EQ(hits("par_policy_neg.cpp"), "");
}

TEST(LintRules, SeedArithPositive) {
  EXPECT_EQ(hits("seed_arith_pos.cpp"),
            "5:seed-arith 6:seed-arith 8:seed-arith 9:seed-arith "
            "17:seed-arith");
}

TEST(LintRules, SeedArithNegative) {
  EXPECT_EQ(hits("seed_arith_neg.cpp"), "");
}

TEST(LintRules, UnorderedReductionPositive) {
  EXPECT_EQ(hits("unordered_reduction_pos.cpp"),
            "13:unordered-reduction 15:unordered-reduction");
}

TEST(LintRules, UnorderedReductionNegative) {
  EXPECT_EQ(hits("unordered_reduction_neg.cpp"), "");
}

TEST(LintRules, AtomicFloatNeedsThreadPoolInScope) {
  // The same atomic<double> is only a finding when the file names a
  // thread pool; a serial atomic double is odd but not a hazard.
  const std::string snippet = "#include <atomic>\nstd::atomic<double> a;\n";
  EXPECT_TRUE(lint_source("serial.cpp", snippet).empty());
  const std::vector<Finding> pooled =
      lint_source("pooled.cpp", snippet + "tb::ThreadPool* pool;\n");
  ASSERT_EQ(pooled.size(), 1u);
  EXPECT_EQ(pooled[0].rule, "unordered-reduction");
  EXPECT_EQ(pooled[0].line, 2u);
}

TEST(LintMarkers, WellFormedMarkersSuppress) {
  EXPECT_EQ(hits("allow_marker_ok.cpp"), "");
}

TEST(LintMarkers, MalformedMarkersAreFindingsAndSuppressNothing) {
  EXPECT_EQ(hits("allow_marker_bad.cpp"),
            "5:bad-marker 6:seed-arith 8:bad-marker 9:seed-arith "
            "11:bad-marker 12:seed-arith");
}

TEST(LintMarkers, UnusedMarkerIsReported) {
  const std::vector<Finding> findings =
      lint_paths({fixture("allow_marker_unused.cpp")});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unused-allow");
  EXPECT_EQ(findings[0].line, 5u);
  EXPECT_EQ(findings[0].severity, Severity::kWarning);
}

TEST(LintStripping, CommentsAndStringsNeverTripRules) {
  EXPECT_TRUE(lint_source("f.cpp", "// std::rand() in prose\n").empty());
  EXPECT_TRUE(lint_source("f.cpp", "/* time(nullptr) */ int x;\n").empty());
  EXPECT_TRUE(
      lint_source("f.cpp", "const char* s = \"std::rand()\";\n").empty());
  EXPECT_TRUE(
      lint_source("f.cpp", "auto r = R\"(std::random_device)\";\n").empty());
  // The /*seed=*/ argument-comment idiom must not read as seed arithmetic.
  EXPECT_TRUE(lint_source("f.cpp", "make(n, /*seed=*/1 + 2);\n").empty());
}

TEST(LintStripping, MarkerTextInsideStringIsNotAMarker) {
  // A string literal spelling the marker prefix is documentation, not a
  // marker: it neither suppresses nor reports.
  const std::string src =
      "const char* kDoc = \"topobench-lint: allow(junk)\";\n";
  EXPECT_TRUE(lint_source("f.cpp", src).empty());
}

TEST(LintReport, TextAndJsonCarryFileLineRuleSeverity) {
  const std::vector<Finding> findings =
      lint_source("dir/file.cpp", "std::random_device rd;\n");
  ASSERT_EQ(findings.size(), 1u);
  const std::string text = render_text(findings);
  EXPECT_NE(text.find("dir/file.cpp:1: error: [banned-random]"),
            std::string::npos)
      << text;
  const std::string json = render_json(findings);
  EXPECT_NE(json.find("\"file\": \"dir/file.cpp\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"banned-random\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\": \"error\""), std::string::npos);
}

TEST(LintReport, FindingsAreSortedByFileLineRule) {
  const std::string src =
      "std::random_device rd;\nstd::unordered_map<int, int> m;\n";
  const std::vector<Finding> findings = lint_source("f.cpp", src);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_LT(findings[0].line, findings[1].line);
}

TEST(LintPaths, MissingPathThrows) {
  EXPECT_THROW(lint_paths({fixture("no_such_fixture.cpp")}),
               std::runtime_error);
}

TEST(LintPaths, DirectoryScanCoversEveryFixture) {
  // Scanning the fixture directory must surface findings from several
  // files, sorted by file path first.
  const std::vector<Finding> findings =
      lint_paths({std::string(TOPOBENCH_LINT_FIXTURES)});
  std::set<std::string> files;
  for (const Finding& f : findings) {
    files.insert(f.file);
  }
  EXPECT_GE(files.size(), 6u);
  for (std::size_t i = 1; i < findings.size(); ++i) {
    EXPECT_LE(findings[i - 1].file, findings[i].file);
  }
}

}  // namespace
}  // namespace tb::lint
