// Shared policy for test binaries whose serial-vs-parallel assertions
// would be vacuous on a single-worker pool: force TOPOBENCH_THREADS=4
// from a file-scope initializer, BEFORE anything instantiates
// ThreadPool::shared(). An explicit TOPOBENCH_THREADS from the
// environment still wins; the affected tests then skip loudly instead of
// passing without exercising the parallel path.
#pragma once

#include <cstdlib>

namespace tb::test_env {

inline int force_pool_threads() {
  setenv("TOPOBENCH_THREADS", "4", /*overwrite=*/0);
  return 4;
}

}  // namespace tb::test_env
