#include <gtest/gtest.h>

#include <cmath>

#include "mcf/garg_konemann.h"
#include "mcf/paths.h"
#include "mcf/throughput.h"
#include "tm/synthetic.h"
#include "topo/fattree.h"
#include "topo/hypercube.h"
#include "topo/jellyfish.h"

namespace tb {
namespace {

Graph ring(int n) {
  Graph g(n);
  for (int v = 0; v < n; ++v) g.add_edge(v, (v + 1) % n);
  g.finalize();
  return g;
}

TrafficMatrix single_flow(int s, int t, double amount = 1.0) {
  TrafficMatrix tm;
  tm.name = "single";
  tm.demands = {{s, t, amount}};
  return tm;
}

TEST(ExactLp, SingleFlowOnRingUsesBothDirections) {
  // Ring of 6, flow 0 -> 3: two arc-disjoint 3-hop paths, capacity 1 each
  // => throughput 2.
  const Graph g = ring(6);
  const auto r = mcf::throughput_exact_lp(g, single_flow(0, 3));
  EXPECT_NEAR(r.throughput, 2.0, 1e-7);
}

TEST(ExactLp, TwoOpposingFlowsShareCapacity) {
  const Graph g = ring(4);
  TrafficMatrix tm;
  tm.demands = {{0, 2, 1.0}, {2, 0, 1.0}};
  // Directed arcs: each direction has its own capacity, so both flows get 2.
  const auto r = mcf::throughput_exact_lp(g, tm);
  EXPECT_NEAR(r.throughput, 2.0, 1e-7);
}

TEST(ExactLp, BottleneckLimitsThroughput) {
  // Path graph 0-1-2: A2A-ish demands across the middle edge.
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.finalize();
  TrafficMatrix tm;
  tm.demands = {{0, 2, 1.0}, {1, 2, 1.0}};
  // Arc 1->2 carries both flows: t * 2 <= 1 => t = 0.5.
  const auto r = mcf::throughput_exact_lp(g, tm);
  EXPECT_NEAR(r.throughput, 0.5, 1e-7);
}

TEST(ExactLp, RespectsCapacities) {
  Graph g(2);
  g.add_edge(0, 1, 3.5);
  g.finalize();
  const auto r = mcf::throughput_exact_lp(g, single_flow(0, 1));
  EXPECT_NEAR(r.throughput, 3.5, 1e-7);
}

TEST(ExactLp, HypercubeAllToAllClosedForm) {
  // d-cube, A2A with per-node egress (n-1)/n: by symmetry & edge-
  // transitivity every arc is equally loaded; total volume per unit t is
  // sum of demand*distance = n * avg_dist * (n-1)/n ... the LP should hit
  // the volumetric bound exactly (hypercube A2A saturates all links).
  const Network hc = make_hypercube(3);
  const TrafficMatrix tm = all_to_all(hc);
  const auto r = mcf::throughput_exact_lp(hc.graph, tm);
  const double vol = mcf::volumetric_upper_bound(hc.graph, tm);
  EXPECT_NEAR(r.throughput, vol, 1e-6);
  EXPECT_GT(r.throughput, 0.0);
}

TEST(ExactLp, FatTreeIsNonBlocking) {
  // k=4 fat tree, per-ToR hose units: every ToR has k/2 = 2 uplinks, and
  // the Clos fabric is nonblocking, so a unit-row TM (LM) achieves exactly
  // t = 2, and A2A (row sum (H-1)/H) achieves 2 * H/(H-1).
  const Network ft = make_fat_tree(4);
  const TrafficMatrix a2a = all_to_all(ft);
  const auto r = mcf::throughput_exact_lp(ft.graph, a2a);
  const double h = 8.0;  // edge switches
  EXPECT_NEAR(r.throughput, 2.0 * h / (h - 1.0), 1e-6);

  const TrafficMatrix lm = longest_matching(ft);
  const auto rlm = mcf::throughput_exact_lp(ft.graph, lm);
  EXPECT_NEAR(rlm.throughput, 2.0, 1e-6);
}

TEST(GargKonemann, MatchesExactOnSmallInstances) {
  const Network hc = make_hypercube(3);
  for (const auto* tm_name : {"a2a", "rm", "lm"}) {
    TrafficMatrix tm;
    if (std::string(tm_name) == "a2a") {
      tm = all_to_all(hc);
    } else if (std::string(tm_name) == "rm") {
      tm = random_matching(hc, 1, 3);
    } else {
      tm = longest_matching(hc);
    }
    const double exact = mcf::throughput_exact_lp(hc.graph, tm).throughput;
    mcf::GkOptions opts;
    opts.plateau_guard = false;  // strict-epsilon certificate test
    opts.epsilon = 0.02;
    const mcf::GkResult gk = mcf::max_concurrent_flow(hc.graph, tm, opts);
    EXPECT_GE(gk.throughput, exact * (1.0 - 0.025)) << tm_name;
    EXPECT_LE(gk.throughput, exact * (1.0 + 1e-6)) << tm_name;
    EXPECT_GE(gk.upper_bound, exact * (1.0 - 1e-6)) << tm_name;
  }
}

TEST(GargKonemann, CertifiedGapHolds) {
  const Network jf = make_jellyfish(40, 5, 1, 11);
  const TrafficMatrix tm = longest_matching(jf);
  mcf::GkOptions opts;
  opts.plateau_guard = false;  // strict-epsilon certificate tests
  opts.epsilon = 0.05;
  const mcf::GkResult r = mcf::max_concurrent_flow(jf.graph, tm, opts);
  EXPECT_GT(r.throughput, 0.0);
  EXPECT_LE(r.throughput, r.upper_bound * (1.0 + 1e-9));
  EXPECT_LE(r.upper_bound, r.throughput * (1.0 + opts.epsilon + 1e-9));
}

TEST(GargKonemann, FlowIsFeasible) {
  const Network jf = make_jellyfish(24, 4, 1, 5);
  const TrafficMatrix tm = random_matching(jf, 2, 7);
  const mcf::GkResult r = mcf::max_concurrent_flow(jf.graph, tm);
  for (int a = 0; a < jf.graph.num_arcs(); ++a) {
    EXPECT_LE(r.arc_flow[static_cast<std::size_t>(a)],
              jf.graph.arc_cap(a) * (1.0 + 1e-9));
  }
}

TEST(GargKonemann, ParallelAndSerialAgree) {
  const Network jf = make_jellyfish(32, 4, 1, 9);
  const TrafficMatrix tm = all_to_all(jf);
  mcf::GkOptions serial;
  serial.parallel = false;
  serial.epsilon = 0.05;
  mcf::GkOptions parallel;
  parallel.parallel = true;
  parallel.epsilon = 0.05;
  const double a = mcf::max_concurrent_flow(jf.graph, tm, serial).throughput;
  const double b = mcf::max_concurrent_flow(jf.graph, tm, parallel).throughput;
  // Identical: the block structure, not the thread count, defines routing.
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(GargKonemann, DemandScalingIsLinear) {
  // Throughput of c*TM must be throughput(TM)/c.
  const Network hc = make_hypercube(4);
  TrafficMatrix tm = longest_matching(hc);
  const double base = mcf::max_concurrent_flow(hc.graph, tm).throughput;
  tm.scale(4.0);
  const double quarter = mcf::max_concurrent_flow(hc.graph, tm).throughput;
  EXPECT_NEAR(quarter, base / 4.0, base * 0.02);
}

TEST(Throughput, AutoDispatchesBySize) {
  const Network small = make_hypercube(3);
  const auto rs = mcf::compute_throughput(small, all_to_all(small));
  EXPECT_EQ(rs.solver, "exact-lp");
  const Network big = make_jellyfish(64, 5, 1, 2);
  const auto rb = mcf::compute_throughput(big, longest_matching(big));
  EXPECT_EQ(rb.solver, "garg-konemann");
}

TEST(Throughput, SolverStatsSplitPivotsFromPhases) {
  // The two engines do different work: an ExactLP solve reports simplex
  // pivots and no GK counters; a GK solve reports phases and Dijkstra
  // counts and no pivots. Cold one-shot solves are never warm-started.
  const Network small = make_hypercube(3);
  const auto lp = mcf::compute_throughput(small, all_to_all(small));
  EXPECT_GT(lp.stats.pivots, 0);
  EXPECT_EQ(lp.stats.phases, 0);
  EXPECT_EQ(lp.stats.dijkstras, 0);
  EXPECT_FALSE(lp.stats.warm_start);

  const Network big = make_jellyfish(64, 5, 1, 2);
  const auto gk = mcf::compute_throughput(big, longest_matching(big));
  EXPECT_EQ(gk.stats.pivots, 0);
  EXPECT_GT(gk.stats.phases, 0);
  EXPECT_GT(gk.stats.dijkstras, gk.stats.phases);  // >= one per source/phase
  EXPECT_FALSE(gk.stats.warm_start);
}

TEST(Throughput, VolumetricBoundDominates) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const Network jf = make_jellyfish(20, 4, 1, seed);
    const TrafficMatrix tm = longest_matching(jf);
    const auto r = mcf::compute_throughput(jf, tm);
    EXPECT_LE(r.throughput,
              mcf::volumetric_upper_bound(jf.graph, tm) * (1.0 + 1e-9));
  }
}

TEST(Throughput, Theorem2LowerBoundHolds) {
  // Any hose TM achieves >= T_A2A / 2: check LM against it.
  for (const std::uint64_t seed : {4ULL, 9ULL}) {
    const Network jf = make_jellyfish(16, 4, 1, seed);
    const double a2a = mcf::compute_throughput(jf, all_to_all(jf)).throughput;
    const double lm =
        mcf::compute_throughput(jf, longest_matching(jf)).throughput;
    EXPECT_GE(lm, a2a / 2.0 * (1.0 - 1e-6));
  }
}

TEST(Throughput, TmOrderingA2aRmLm) {
  // Paper Fig 4: T_A2A >= T_RM >= T_LM for every network.
  const Network jf = make_jellyfish(24, 5, 1, 21);
  const double a2a = mcf::compute_throughput(jf, all_to_all(jf)).throughput;
  const double rm =
      mcf::compute_throughput(jf, random_matching(jf, 1, 3)).throughput;
  const double lm =
      mcf::compute_throughput(jf, longest_matching(jf)).throughput;
  EXPECT_GE(a2a * (1.0 + 0.05), rm);
  EXPECT_GE(rm * (1.0 + 0.05), lm);
}

TEST(Paths, KShortestOnRing) {
  // A ring has exactly two loopless paths between any pair; asking for 3
  // must return only those two, shortest first.
  const Graph g = ring(6);
  const auto paths = mcf::k_shortest_paths(g, 0, 2, 3);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0].size(), 2u);  // 0-1-2
  EXPECT_EQ(paths[1].size(), 4u);  // 0-5-4-3-2
}

TEST(Paths, PathsAreValidAndLoopless) {
  const Network jf = make_jellyfish(16, 4, 1, 13);
  const auto paths = mcf::k_shortest_paths(jf.graph, 0, 9, 6);
  ASSERT_FALSE(paths.empty());
  for (const auto& p : paths) {
    int at = 0;
    std::set<int> visited{0};
    for (const int a : p) {
      EXPECT_EQ(jf.graph.arc_from(a), at);
      at = jf.graph.arc_to(a);
      EXPECT_TRUE(visited.insert(at).second) << "loop in path";
    }
    EXPECT_EQ(at, 9);
  }
}

TEST(Paths, RestrictedLpNeverExceedsUnrestricted) {
  const Network hc = make_hypercube(3);
  const TrafficMatrix tm = random_matching(hc, 1, 17);
  const double full = mcf::throughput_exact_lp(hc.graph, tm).throughput;
  for (const int k : {1, 2, 4}) {
    const auto sets = mcf::build_path_sets(hc.graph, tm, k);
    const double restricted = mcf::path_restricted_throughput(hc.graph, sets);
    EXPECT_LE(restricted, full * (1.0 + 1e-7)) << "k=" << k;
    if (k >= 4) {
      // With enough paths the restriction should nearly close the gap.
      EXPECT_GE(restricted, full * 0.7);
    }
  }
}

TEST(Throughput, AutoDispatchSizeGuardDoesNotOverflow) {
  // Regression: num_sources * num_arcs used to be formed in `long` x `int`
  // arithmetic, which wraps on ILP32 targets for paper-scale instances and
  // silently selected ExactLP. Synthetic large counts: 70k sources x 70k
  // arcs is ~4.9e9, which wraps to a small positive value in 32 bits.
  EXPECT_FALSE(mcf::lp_size_within(70'000, 70'000, 4096));
  // 2^16 x 2^16 = 2^32 wraps to exactly 0 in 32-bit arithmetic.
  EXPECT_FALSE(mcf::lp_size_within(65'536, 65'536, 4096));
  // Genuinely small instances still pass.
  EXPECT_TRUE(mcf::lp_size_within(8, 512, 4096));
  EXPECT_FALSE(mcf::lp_size_within(9, 512, 4096));
}

TEST(Paths, CountingEstimateUnderestimatesLp) {
  // The Yuan-style counting estimate is pessimistic vs the exact LP on the
  // same path set (the Fig 15 methodological point).
  const Network jf = make_jellyfish(20, 4, 1, 23);
  const TrafficMatrix tm = random_matching(jf, 1, 29);
  const auto sets = mcf::build_path_sets(jf.graph, tm, 4);
  const double lp = mcf::path_restricted_throughput(jf.graph, sets);
  const auto est = mcf::counting_throughput(jf.graph, sets);
  EXPECT_LE(est.minimum, lp * (1.0 + 1e-7));
}

}  // namespace
}  // namespace tb
