#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/evaluator.h"
#include "mcf/engine.h"
#include "mcf/throughput.h"
#include "pool_test_env.h"
#include "tm/synthetic.h"
#include "topo/fattree.h"
#include "topo/hypercube.h"
#include "topo/jellyfish.h"

namespace tb {
namespace {

[[maybe_unused]] const int kForcePoolThreads = test_env::force_pool_threads();

mcf::SolveOptions gk_opts(double eps = 0.05) {
  mcf::SolveOptions o;
  o.kind = mcf::SolverKind::GargKonemann;
  o.epsilon = eps;
  return o;
}

TEST(Engine, ColdSolveMatchesFreeFunctionBitwise) {
  // compute_throughput is a thin wrapper over a one-shot engine; an
  // explicit engine's cold solve must agree bitwise on both solver paths.
  const Network jf = make_jellyfish(24, 5, 1, 21);
  const TrafficMatrix tm = longest_matching(jf);
  mcf::ThroughputEngine engine(jf);
  const auto direct = mcf::compute_throughput(jf, tm, gk_opts());
  const auto viaEngine = engine.solve(tm, gk_opts());
  EXPECT_EQ(direct.throughput, viaEngine.throughput);
  EXPECT_EQ(direct.upper_bound, viaEngine.upper_bound);
  EXPECT_EQ(direct.stats.phases, viaEngine.stats.phases);
  EXPECT_EQ(direct.stats.dijkstras, viaEngine.stats.dijkstras);

  const Network hc = make_hypercube(3);
  const TrafficMatrix a2a = all_to_all(hc);
  mcf::ThroughputEngine lp_engine(hc);
  const auto lp_direct = mcf::compute_throughput(hc, a2a);
  const auto lp_engine_res = lp_engine.solve(a2a);
  EXPECT_EQ(lp_direct.solver, "exact-lp");
  EXPECT_EQ(lp_direct.throughput, lp_engine_res.throughput);
  EXPECT_EQ(lp_direct.stats.pivots, lp_engine_res.stats.pivots);
}

TEST(Engine, WarmSolveWithinCertifiedGapOfCold) {
  // The engine's contract: a warm (session-mode) solve certifies the same
  // instance, so its certified interval must overlap the cold one —
  // feasible values never exceed the other run's certified upper bound.
  const Network jf = make_jellyfish(24, 5, 1, 7);
  const double eps = 0.05;
  mcf::ThroughputEngine engine(jf);
  const TrafficMatrix tms[] = {all_to_all(jf), random_matching(jf, 1, 3),
                               longest_matching(jf)};
  mcf::ThroughputResult prev = engine.solve(tms[0], gk_opts(eps));
  for (const TrafficMatrix& tm : {tms[1], tms[2]}) {
    const auto warm = engine.warm_solve(tm, gk_opts(eps));
    const auto cold = mcf::compute_throughput(jf, tm, gk_opts(eps));
    EXPECT_TRUE(warm.stats.warm_start);
    EXPECT_GT(warm.throughput, 0.0);
    // Certified feasibility/upper-bound crosschecks.
    EXPECT_LE(warm.throughput, warm.upper_bound * (1.0 + 1e-9));
    EXPECT_LE(warm.throughput, cold.upper_bound * (1.0 + 1e-9));
    EXPECT_LE(cold.throughput, warm.upper_bound * (1.0 + 1e-9));
    // And the values agree within the combined certified gaps.
    EXPECT_NEAR(warm.throughput / cold.throughput, 1.0, 2.5 * eps);
    prev = warm;
  }
}

TEST(Engine, WarmSolveIsDeterministic) {
  const Network jf = make_jellyfish(20, 4, 1, 5);
  const auto chain = [&jf] {
    mcf::ThroughputEngine engine(jf);
    (void)engine.solve(all_to_all(jf), gk_opts());
    return engine.warm_solve(longest_matching(jf), gk_opts());
  };
  const auto a = chain();
  const auto b = chain();
  EXPECT_EQ(a.throughput, b.throughput);
  EXPECT_EQ(a.upper_bound, b.upper_bound);
  EXPECT_EQ(a.stats.phases, b.stats.phases);
  EXPECT_EQ(a.stats.dijkstras, b.stats.dijkstras);
}

TEST(Engine, ExactLpWarmBasisReusesSolution) {
  // Re-solving the same small instance warm must stay exact and start
  // from the previous optimal basis (0 extra pivots for an unchanged LP).
  const Network hc = make_hypercube(3);
  const TrafficMatrix tm = all_to_all(hc);
  mcf::ThroughputEngine engine(hc);
  const auto cold = engine.solve(tm);
  ASSERT_EQ(cold.solver, "exact-lp");
  const auto warm = engine.warm_solve(tm);
  EXPECT_TRUE(warm.stats.warm_start);
  EXPECT_NEAR(warm.throughput, cold.throughput, 1e-9);
  EXPECT_EQ(warm.stats.pivots, 0);
}

TEST(Engine, ScenarioFailedEdgesReduceThroughputAndRevertExactly) {
  const Network jf = make_jellyfish(20, 4, 1, 33);
  const TrafficMatrix tm = random_matching(jf, 1, 5);
  mcf::ThroughputEngine engine(jf);
  const auto base = engine.solve(tm, gk_opts(0.03));

  mcf::ScenarioSpec spec;
  spec.failed_edges = {0, 1, 2};
  engine.apply_scenario(spec);
  EXPECT_TRUE(engine.scenario_active());
  EXPECT_EQ(engine.failed_edge_count(), 3);
  const auto degraded = engine.solve(tm, gk_opts(0.03));
  // Removing capacity can only hurt (up to the certified gap).
  EXPECT_LE(degraded.throughput, base.throughput * (1.0 + 0.07));

  // O(affected-arcs) repair: a cold solve after clearing must be bitwise
  // identical to the original cold solve — no scenario state may linger.
  engine.clear_scenario();
  EXPECT_FALSE(engine.scenario_active());
  EXPECT_EQ(engine.failed_edge_count(), 0);
  const auto restored = engine.solve(tm, gk_opts(0.03));
  EXPECT_EQ(restored.throughput, base.throughput);
  EXPECT_EQ(restored.upper_bound, base.upper_bound);
  EXPECT_EQ(restored.stats.phases, base.stats.phases);
}

TEST(Engine, ScenarioDisconnectionYieldsZero) {
  // A path network cut in the middle: demands across the cut make the
  // concurrent-flow optimum exactly 0, reported as "disconnected".
  Network net;
  net.name = "path4";
  Graph g(4);
  g.add_edge(0, 1);
  const int mid = g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.finalize();
  net.graph = std::move(g);
  attach_servers_uniform(net, 1);
  TrafficMatrix tm;
  tm.name = "cross";
  tm.demands = {{0, 3, 1.0}, {3, 0, 1.0}};

  mcf::ThroughputEngine engine(net);
  EXPECT_GT(engine.solve(tm).throughput, 0.0);
  mcf::ScenarioSpec spec;
  spec.failed_edges = {mid};
  engine.apply_scenario(spec);
  const auto cut = engine.solve(tm);
  EXPECT_EQ(cut.throughput, 0.0);
  EXPECT_EQ(cut.upper_bound, 0.0);
  EXPECT_EQ(cut.solver, "disconnected");
}

TEST(Engine, NodeFailureDropsItsDemandsWhenRequested) {
  const Network hc = make_hypercube(3);
  const TrafficMatrix tm = all_to_all(hc);
  mcf::ThroughputEngine engine(hc);

  mcf::ScenarioSpec spec;
  spec.failed_nodes = {0};
  engine.apply_scenario(spec);
  // Default: demands touching node 0 are dropped; the rest still flow.
  EXPECT_EQ(engine.failed_edge_count(), 3);  // hypercube degree 3
  const auto dropped = engine.solve(tm);
  EXPECT_GT(dropped.throughput, 0.0);
  EXPECT_NE(dropped.solver, "disconnected");

  // Keeping unservable demands forces the optimum to 0.
  spec.drop_failed_node_demands = false;
  engine.apply_scenario(spec);
  const auto kept = engine.solve(tm);
  EXPECT_EQ(kept.throughput, 0.0);
  EXPECT_EQ(kept.solver, "disconnected");
}

TEST(Engine, RandomFailureSamplingIsSeededAndValidated) {
  const Network jf = make_jellyfish(20, 4, 1, 9);
  const int num_edges = jf.graph.num_edges();
  mcf::ThroughputEngine engine(jf);
  mcf::ScenarioSpec spec;
  spec.random_edge_fraction = 0.25;
  spec.seed = 4242;
  engine.apply_scenario(spec);
  const int failed_a = engine.failed_edge_count();
  EXPECT_EQ(failed_a, static_cast<int>(std::llround(0.25 * num_edges)));
  engine.apply_scenario(spec);  // reapplying replaces, same seed same draw
  EXPECT_EQ(engine.failed_edge_count(), failed_a);

  mcf::ScenarioSpec bad;
  bad.capacity_factor = 0.0;
  EXPECT_THROW(engine.apply_scenario(bad), std::invalid_argument);
  bad = {};
  bad.random_edge_fraction = 1.5;
  EXPECT_THROW(engine.apply_scenario(bad), std::invalid_argument);
  bad = {};
  bad.failed_edges = {num_edges};
  EXPECT_THROW(engine.apply_scenario(bad), std::out_of_range);
  bad = {};
  bad.failed_nodes = {-1};
  EXPECT_THROW(engine.apply_scenario(bad), std::out_of_range);
}

TEST(Engine, CapacityDegradationScalesLpThroughputExactly) {
  // The LP optimum is linear in uniform capacity scaling; the engine's
  // degraded solve must reproduce that exactly on the ExactLP path.
  const Network hc = make_hypercube(3);
  const TrafficMatrix tm = all_to_all(hc);
  mcf::ThroughputEngine engine(hc);
  const auto base = engine.solve(tm);
  ASSERT_EQ(base.solver, "exact-lp");
  mcf::ScenarioSpec spec;
  spec.capacity_factor = 0.5;
  engine.apply_scenario(spec);
  EXPECT_EQ(engine.failed_edge_count(), 0);
  const auto half = engine.solve(tm);
  EXPECT_NEAR(half.throughput, base.throughput / 2.0, 1e-9);
}

TEST(Evaluator, DegradedThroughputReportsDropAndStats) {
  const Network jf = make_jellyfish(20, 4, 1, 11);
  const TrafficMatrix tm = all_to_all(jf);
  mcf::ScenarioSpec spec;
  spec.random_edge_fraction = 0.1;
  spec.seed = 99;
  mcf::SolveOptions solve = gk_opts(0.05);
  const DegradedResult res = degraded_throughput(jf, tm, spec, solve);
  EXPECT_GT(res.baseline, 0.0);
  EXPECT_GT(res.failed_links, 0);
  EXPECT_LE(res.degraded, res.baseline * (1.0 + 0.11));
  EXPECT_NEAR(res.drop, 1.0 - res.degraded / res.baseline, 1e-12);
  EXPECT_TRUE(res.stats.warm_start);  // degraded solve seeds from baseline
  EXPECT_GT(res.stats.phases, 0);

  // Disconnecting scenario: every link of a node fails with demands kept
  // via drop=false semantics exercised above; here drop the whole graph's
  // connectivity instead.
  mcf::ScenarioSpec all_fail;
  all_fail.random_edge_fraction = 1.0;
  const DegradedResult dead = degraded_throughput(jf, tm, all_fail, solve);
  EXPECT_EQ(dead.degraded, 0.0);
  EXPECT_NEAR(dead.drop, 1.0, 1e-12);
}

}  // namespace
}  // namespace tb
