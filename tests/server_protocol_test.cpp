// topobench_server wire-protocol test: drives the real daemon binary
// (TOPOBENCH_SERVER_BIN, injected by CMake) over a shell pipe and pins the
// protocol — hello handshake fields, deterministic response transcripts
// across replays, the store-hit answer path across daemon restarts, and
// in-band error handling with the documented exit codes.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "api/topobench.h"
#include "store/result_store.h"
#include "util/json.h"

namespace tb {
namespace {

std::string work_path(const std::string& name, const std::string& ext) {
  return testing::TempDir() + "topobench_server_test_" + name + "_" +
         std::to_string(::getpid()) + ext;
}

/// Run the daemon with `requests` on stdin; returns stdout and stores the
/// exit code. Requests and responses are line-delimited, so the transcript
/// comparison is plain string equality.
std::string run_server(const std::string& name,
                       const std::vector<std::string>& requests,
                       int* exit_code, const std::string& extra_args = "") {
  const std::string in_path = work_path(name, ".in");
  const std::string out_path = work_path(name, ".out");
  {
    std::ofstream in(in_path);
    for (const std::string& r : requests) in << r << '\n';
  }
  const std::string cmd = std::string(TOPOBENCH_SERVER_BIN) + " " +
                          extra_args + " < " + in_path + " > " + out_path;
  const int status = std::system(cmd.c_str());
  *exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  std::ifstream out(out_path);
  std::stringstream ss;
  ss << out.rdbuf();
  std::remove(in_path.c_str());
  std::remove(out_path.c_str());
  return ss.str();
}

TEST(ServerProtocolTest, HelloReportsVersionsAndStoreState) {
  int rc = -1;
  const std::string out = run_server("hello", {R"({"op": "hello"})"}, &rc);
  EXPECT_EQ(rc, 0);
  const json::Value v = json::parse(out);
  EXPECT_TRUE(v.find("ok")->as_bool("ok"));
  EXPECT_EQ(v.find("server")->as_string("server"), "topobench_server");
  EXPECT_EQ(v.find("protocol")->as_int("protocol", 0, 100),
            api::kProtocolVersion);
  EXPECT_EQ(v.find("api_version")->as_string("api_version"), api::kApiVersion);
  EXPECT_EQ(v.find("store_format")->as_int("store_format", 0, 100),
            store::kStoreFormatVersion);
  EXPECT_EQ(v.find("store")->kind, json::Kind::Null);  // none attached
}

TEST(ServerProtocolTest, ReplayedScriptYieldsByteIdenticalTranscript) {
  const std::vector<std::string> script = {
      R"({"op": "hello", "id": 1})",
      R"({"op": "query", "id": 2, "topology": {"family": "hypercube", "servers": 16}, "tm": "a2a", "epsilon": 0.1})",
      R"x({"op": "query", "id": 3, "topology": {"family": "hypercube", "servers": 16}, "tm": "rm(2)", "epsilon": 0.1, "seed": 5})x",
      R"({"op": "stats", "id": 4})",
      R"({"op": "shutdown", "id": 5})",
  };
  int rc1 = -1;
  int rc2 = -1;
  const std::string first = run_server("replay", script, &rc1);
  const std::string second = run_server("replay", script, &rc2);
  EXPECT_EQ(rc1, 0);
  EXPECT_EQ(rc2, 0);
  EXPECT_EQ(first, second);  // the whole transcript is deterministic
  EXPECT_NE(first.find("\"source\": \"solved\""), std::string::npos);
}

TEST(ServerProtocolTest, SecondDaemonAnswersFromStoreWithIdenticalBytes) {
  const std::string store = work_path("storehit", ".store");
  std::remove(store.c_str());
  const std::vector<std::string> script = {
      R"({"op": "query", "topology": {"family": "fattree", "servers": 16}, "tm": "a2a", "epsilon": 0.1})",
      R"({"op": "stats"})",
  };
  int rc1 = -1;
  int rc2 = -1;
  const std::string first =
      run_server("storehit", script, &rc1, "--store " + store);
  const std::string second =
      run_server("storehit", script, &rc2, "--store " + store);
  std::remove(store.c_str());
  EXPECT_EQ(rc1, 0);
  EXPECT_EQ(rc2, 0);
  EXPECT_NE(first.find("\"source\": \"solved\""), std::string::npos);
  EXPECT_NE(second.find("\"source\": \"store\""), std::string::npos);
  // Everything except the answering tier is byte-identical.
  std::string normalized_first = first;
  std::string normalized_second = second;
  const auto strip = [](std::string* s, const std::string& from) {
    const std::size_t pos = s->find(from);
    ASSERT_NE(pos, std::string::npos);
    s->erase(pos, from.size());
  };
  strip(&normalized_first, "\"source\": \"solved\", ");
  strip(&normalized_second, "\"source\": \"store\", ");
  // The stats lines differ by design (misses vs disk_hits): drop them.
  normalized_first = normalized_first.substr(0, normalized_first.find('\n'));
  normalized_second = normalized_second.substr(0, normalized_second.find('\n'));
  EXPECT_EQ(normalized_first, normalized_second);
  // And the second daemon's stats pin the acceptance shape: all disk hits.
  const std::size_t stats_pos = second.find('\n');
  const json::Value stats = json::parse(second.substr(stats_pos + 1));
  EXPECT_EQ(stats.find("disk_hits")->as_int("disk_hits", 0, 1 << 20), 1);
  EXPECT_EQ(stats.find("misses")->as_int("misses", 0, 1 << 20), 0);
}

TEST(ServerProtocolTest, SweepBatchesAndCountsTiers) {
  const std::vector<std::string> script = {
      R"({"op": "sweep", "topologies": [{"family": "hypercube", "servers": 16}], "tms": ["a2a", "lm"], "epsilon": 0.1})",
      R"({"op": "sweep", "topologies": [{"family": "hypercube", "servers": 16}], "tms": ["a2a", "lm"], "epsilon": 0.1})",
  };
  int rc = -1;
  const std::string out = run_server("sweep", script, &rc);
  EXPECT_EQ(rc, 0);
  std::stringstream lines(out);
  std::string first_line;
  std::string second_line;
  ASSERT_TRUE(std::getline(lines, first_line));
  ASSERT_TRUE(std::getline(lines, second_line));
  const json::Value first = json::parse(first_line);
  const json::Value second = json::parse(second_line);
  EXPECT_EQ(first.find("cells")->as_int("cells", 0, 100), 2);
  EXPECT_EQ(first.find("solved")->as_int("solved", 0, 100), 2);
  EXPECT_EQ(second.find("solved")->as_int("solved", 0, 100), 0);
  EXPECT_EQ(second.find("memory_hits")->as_int("memory_hits", 0, 100), 2);
  EXPECT_EQ(json::dump(*first.find("results")),
            json::dump(*second.find("results")));
}

TEST(ServerProtocolTest, MalformedRequestsAnswerInBandAndExitNonzero) {
  const std::vector<std::string> script = {
      "this is not json",
      R"({"op": "no-such-op"})",
      R"({"op": "query", "id": "q7"})",
      R"({"op": "hello"})",
  };
  int rc = -1;
  const std::string out = run_server("errors", script, &rc);
  EXPECT_EQ(rc, 1);  // served everything, but some requests failed
  std::stringstream lines(out);
  std::string line;
  int ok_count = 0;
  int err_count = 0;
  while (std::getline(lines, line)) {
    const json::Value v = json::parse(line);
    if (v.find("ok")->as_bool("ok")) {
      ++ok_count;
    } else {
      ++err_count;
      EXPECT_NE(v.find("error"), nullptr);
    }
  }
  EXPECT_EQ(ok_count, 1);  // the trailing hello still answered
  EXPECT_EQ(err_count, 3);
  // The id of a failed request is echoed for correlation.
  EXPECT_NE(out.find("\"id\": \"q7\""), std::string::npos);
}

}  // namespace
}  // namespace tb
