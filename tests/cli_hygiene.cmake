# CLI hygiene for the operational binaries (topobench_merge,
# topobench_lint, topobench_server): --help/--version succeed and identify
# the tool, unknown options and unreadable inputs exit 2 (usage/environment
# error), and contract/lint/request findings exit 1 — so shell pipelines
# and CI jobs can tell "you invoked me wrong" from "your inputs are wrong".
# Invoked by the cli_hygiene CTest entry with -DMERGE_BIN, -DLINT_BIN,
# -DSERVER_BIN, -DFIXTURES, -DWORK_DIR.
foreach(var MERGE_BIN LINT_BIN SERVER_BIN FIXTURES WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "cli_hygiene.cmake needs -D${var}")
  endif()
endforeach()

# Runs COMMAND (with optional INPUT file on stdin), requires exit code
# EXPECT_RC, and when MATCH is given requires it as a substring of the
# combined stdout+stderr.
function(check)
  cmake_parse_arguments(CHK "" "NAME;EXPECT_RC;INPUT;MATCH" "COMMAND" ${ARGN})
  set(input_arg "")
  if(CHK_INPUT)
    set(input_arg INPUT_FILE ${CHK_INPUT})
  endif()
  execute_process(
    COMMAND ${CHK_COMMAND}
    ${input_arg}
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL ${CHK_EXPECT_RC})
    message(FATAL_ERROR
      "${CHK_NAME}: expected exit ${CHK_EXPECT_RC}, got ${rc}\n${out}${err}")
  endif()
  if(CHK_MATCH)
    string(FIND "${out}${err}" "${CHK_MATCH}" found)
    if(found EQUAL -1)
      message(FATAL_ERROR
        "${CHK_NAME}: output lacks \"${CHK_MATCH}\"\n${out}${err}")
    endif()
  endif()
endfunction()

# --- topobench_merge ---------------------------------------------------
check(NAME merge_help EXPECT_RC 0 MATCH "usage: topobench_merge"
  COMMAND ${MERGE_BIN} --help)
check(NAME merge_version EXPECT_RC 0 MATCH "topobench_merge "
  COMMAND ${MERGE_BIN} --version)
check(NAME merge_unknown_option EXPECT_RC 2 MATCH "unknown option"
  COMMAND ${MERGE_BIN} --definitely-not-an-option)
check(NAME merge_unreadable_file EXPECT_RC 2 MATCH "cannot open"
  COMMAND ${MERGE_BIN} ${WORK_DIR}/no_such_slice.csv)

# Garbage on stdin is a merge-contract violation (exit 1), not a usage
# error: the invocation was fine, the slices were not.
file(WRITE ${WORK_DIR}/cli_hygiene_garbage.csv "this is not a slice\n")
check(NAME merge_contract_violation EXPECT_RC 1 MATCH "topobench_merge:"
  INPUT ${WORK_DIR}/cli_hygiene_garbage.csv
  COMMAND ${MERGE_BIN})

# --- topobench_lint ----------------------------------------------------
check(NAME lint_help EXPECT_RC 0 MATCH "usage: topobench_lint"
  COMMAND ${LINT_BIN} --help)
check(NAME lint_version EXPECT_RC 0 MATCH "topobench_lint "
  COMMAND ${LINT_BIN} --version)
check(NAME lint_list_rules EXPECT_RC 0 MATCH "seed-arith"
  COMMAND ${LINT_BIN} --list-rules)
check(NAME lint_unknown_option EXPECT_RC 2 MATCH "unknown option"
  COMMAND ${LINT_BIN} --definitely-not-an-option)
check(NAME lint_root_missing_value EXPECT_RC 2 MATCH "--root needs"
  COMMAND ${LINT_BIN} --root)
check(NAME lint_bad_root EXPECT_RC 2 MATCH "no src/tools/bench/examples"
  COMMAND ${LINT_BIN} --root ${WORK_DIR}/no_such_root)
check(NAME lint_unreadable_path EXPECT_RC 2
  COMMAND ${LINT_BIN} ${WORK_DIR}/no_such_file.cpp)
check(NAME lint_findings_exit_1 EXPECT_RC 1 MATCH "seed-arith"
  COMMAND ${LINT_BIN} ${FIXTURES}/seed_arith_pos.cpp)
check(NAME lint_json_findings EXPECT_RC 1 MATCH "\"rule\": \"seed-arith\""
  COMMAND ${LINT_BIN} --json ${FIXTURES}/seed_arith_pos.cpp)
check(NAME lint_clean_exit_0 EXPECT_RC 0
  COMMAND ${LINT_BIN} ${FIXTURES}/seed_arith_neg.cpp)

# --- topobench_server --------------------------------------------------
check(NAME server_help EXPECT_RC 0 MATCH "usage: topobench_server"
  COMMAND ${SERVER_BIN} --help)
check(NAME server_version EXPECT_RC 0 MATCH "topobench_server "
  COMMAND ${SERVER_BIN} --version)
check(NAME server_unknown_option EXPECT_RC 2 MATCH "unknown option"
  COMMAND ${SERVER_BIN} --definitely-not-an-option)
check(NAME server_store_missing_value EXPECT_RC 2 MATCH "--store needs"
  COMMAND ${SERVER_BIN} --store)
file(WRITE ${WORK_DIR}/cli_hygiene_empty.txt "")
check(NAME server_bad_store_dir EXPECT_RC 2 MATCH "open failed"
  INPUT ${WORK_DIR}/cli_hygiene_empty.txt
  COMMAND ${SERVER_BIN} --store ${WORK_DIR}/no_such_dir/x.store)

# --- worst_case_tm (optional: only when examples are built) ------------
# The adversarial-search example carries the same hygiene contract; its
# analysis runs are too slow for this entry, so only the argv contract is
# pinned (strict target parsing is the regression this guards: the old
# std::atoi accepted garbage like "64abc" silently).
if(DEFINED WORST_BIN)
  check(NAME worst_help EXPECT_RC 0 MATCH "usage: worst_case_tm"
    COMMAND ${WORST_BIN} --help)
  check(NAME worst_version EXPECT_RC 0 MATCH "worst_case_tm "
    COMMAND ${WORST_BIN} --version)
  check(NAME worst_unknown_option EXPECT_RC 2 MATCH "unknown option"
    COMMAND ${WORST_BIN} --definitely-not-an-option)
  check(NAME worst_unknown_family EXPECT_RC 2 MATCH "unknown family"
    COMMAND ${WORST_BIN} definitely-not-a-family)
  check(NAME worst_garbage_target EXPECT_RC 2 MATCH "target_servers"
    COMMAND ${WORST_BIN} hypercube 64abc)
  check(NAME worst_out_of_range_target EXPECT_RC 2 MATCH "target_servers"
    COMMAND ${WORST_BIN} hypercube 100001)
  check(NAME worst_iterations_missing_value EXPECT_RC 2 MATCH "needs a value"
    COMMAND ${WORST_BIN} --iterations)
endif()

# The hello handshake answers on clean EOF with protocol/version fields.
file(WRITE ${WORK_DIR}/cli_hygiene_hello.jsonl "{\"op\": \"hello\"}\n")
check(NAME server_hello EXPECT_RC 0 MATCH "\"protocol\": 1"
  INPUT ${WORK_DIR}/cli_hygiene_hello.jsonl
  COMMAND ${SERVER_BIN})

# A malformed request is answered in-band and turns the exit code to 1 —
# the invocation was fine, the request was not.
file(WRITE ${WORK_DIR}/cli_hygiene_garbage.jsonl "definitely not json\n")
check(NAME server_bad_request EXPECT_RC 1 MATCH "\"ok\": false"
  INPUT ${WORK_DIR}/cli_hygiene_garbage.jsonl
  COMMAND ${SERVER_BIN})
