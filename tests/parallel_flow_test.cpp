// The flow-level half of the PR-5 determinism contract: the CutBattery and
// the parallel-discharge max-flow engine must be BITWISE identical to their
// serial counterparts at every thread count. Every assertion here compares
// exact doubles (EXPECT_EQ, never _NEAR) — "close" would hide a scheduling
// leak. Suites are named ParallelFlow* so the tsan preset picks them up.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "core/evaluator.h"
#include "core/registry.h"
#include "cuts/bisection.h"
#include "cuts/exact_cuts.h"
#include "cuts/sparsest_cut.h"
#include "flow/cut_battery.h"
#include "flow/flow_network.h"
#include "flow/max_flow.h"
#include "flow/min_cut.h"
#include "pool_test_env.h"
#include "tm/synthetic.h"
#include "util/rng.h"

namespace tb {
namespace {

using flow::CutBattery;
using flow::FlowAlgo;
using flow::FlowNetwork;
using flow::FlowOptions;
using flow::MaxFlowStats;
using flow::StCut;

// Make the shared pool genuinely parallel before anything touches it.
[[maybe_unused]] const int kForcePoolThreads = test_env::force_pool_threads();

/// Connected random multigraph: a path backbone plus `extra` random edges
/// with capacities in [0.25, 2).
Graph random_graph(int n, int extra, std::uint64_t seed) {
  Rng rng(seed);
  Graph g(n);
  for (int v = 0; v + 1 < n; ++v) {
    g.add_edge(v, v + 1, 0.25 + 1.75 * rng.next_double());
  }
  for (int e = 0; e < extra; ++e) {
    const int u = static_cast<int>(rng.next_u64(static_cast<std::uint64_t>(n)));
    int v = static_cast<int>(rng.next_u64(static_cast<std::uint64_t>(n)));
    if (u == v) v = (v + 1) % n;
    g.add_edge(u, v, 0.25 + 1.75 * rng.next_double());
  }
  g.finalize();
  return g;
}

void expect_stats_eq(const MaxFlowStats& a, const MaxFlowStats& b,
                     const std::string& what) {
  EXPECT_EQ(a.pushes, b.pushes) << what;
  EXPECT_EQ(a.relabels, b.relabels) << what;
  EXPECT_EQ(a.global_relabels, b.global_relabels) << what;
  EXPECT_EQ(a.gap_jumps, b.gap_jumps) << what;
  EXPECT_EQ(a.augmenting_paths, b.augmenting_paths) << what;
}

void expect_cut_eq(const StCut& a, const StCut& b, const std::string& what) {
  EXPECT_EQ(a.value, b.value) << what;  // exact, not near
  EXPECT_EQ(a.cut_capacity, b.cut_capacity) << what;
  EXPECT_EQ(a.source_side, b.source_side) << what;
  EXPECT_EQ(a.cut_edges, b.cut_edges) << what;
  expect_stats_eq(a.stats, b.stats, what);
}

/// The thread configurations every equivalence below must agree across:
/// serial, the shared pool, and dedicated pools of 2 and 4 workers.
std::vector<int> thread_ladder() { return {1, 0, 2, 4}; }

TEST(ParallelFlow, StMinCutBitwiseAcrossThreadCounts) {
  for (const Family f : all_families()) {
    const Network net = family_representative(f, 16, /*seed=*/7);
    const Graph& g = net.graph;
    const int s = 0;
    const int t = g.num_nodes() - 1;
    const StCut serial = flow::st_min_cut(g, s, t);
    for (const int threads : thread_ladder()) {
      FlowOptions fo;
      fo.algo = FlowAlgo::HighestLabel;
      fo.threads = threads;
      expect_cut_eq(flow::st_min_cut(g, s, t, fo), serial,
                    family_name(f) + " threads=" + std::to_string(threads));
    }
  }
}

TEST(ParallelFlow, GlobalMinCutBitwiseAcrossThreadCounts) {
  for (const Family f : all_families()) {
    const Network net = family_representative(f, 16, /*seed=*/7);
    const Graph& g = net.graph;
    const StCut legacy = flow::global_min_cut(g);
    for (const int threads : thread_ladder()) {
      FlowOptions fo;
      fo.algo = FlowAlgo::HighestLabel;
      fo.threads = threads;
      // The battery solves every pair the legacy loop may have skipped
      // after an early zero-cut break, but the selected cut (stats
      // included) must be the identical first minimum.
      expect_cut_eq(flow::global_min_cut(g, fo), legacy,
                    family_name(f) + " threads=" + std::to_string(threads));
    }
  }
}

TEST(ParallelFlow, BestSparseCutBitwiseAcrossThreadCounts) {
  for (const Family f : all_families()) {
    const Network net = family_representative(f, 16, /*seed=*/7);
    const TrafficMatrix tm = all_to_all(net);
    const cuts::SparseCutSurvey serial =
        cuts::best_sparse_cut(net.graph, tm, 2'000, 6, 1);
    for (const int threads : thread_ladder()) {
      FlowOptions fo;
      fo.threads = threads;
      const cuts::SparseCutSurvey survey =
          cuts::best_sparse_cut(net.graph, tm, 2'000, 6, 1, fo);
      const std::string what =
          family_name(f) + " threads=" + std::to_string(threads);
      EXPECT_EQ(survey.best.sparsity, serial.best.sparsity) << what;
      EXPECT_EQ(survey.best.side, serial.best.side) << what;
      EXPECT_EQ(survey.best.method, serial.best.method) << what;
      EXPECT_EQ(survey.best.bound, serial.best.bound) << what;
      EXPECT_EQ(survey.per_method, serial.per_method) << what;
      EXPECT_EQ(survey.winners, serial.winners) << what;
      expect_stats_eq(survey.flow_stats, serial.flow_stats, what);
    }
  }
}

TEST(ParallelFlow, BisectionBitwiseAcrossThreadCounts) {
  const Network net = family_representative(Family::Jellyfish, 48, /*seed=*/3);
  const TrafficMatrix tm = all_to_all(net);
  ASSERT_GT(net.graph.num_nodes(), 18);  // KL + st-seeded path, not exact
  const cuts::CutResult serial = cuts::bisection_sparsity(net.graph, tm);
  for (const int threads : thread_ladder()) {
    FlowOptions fo;
    fo.threads = threads;
    const cuts::CutResult r =
        cuts::bisection_sparsity(net.graph, tm, 18, 8, 1, 4, fo);
    const std::string what = "threads=" + std::to_string(threads);
    EXPECT_EQ(r.sparsity, serial.sparsity) << what;
    EXPECT_EQ(r.side, serial.side) << what;
    EXPECT_EQ(r.bound, serial.bound) << what;
  }
}

TEST(ParallelFlow, BatteryMatchesSerialLoop) {
  const Graph g = random_graph(36, 90, /*seed=*/11);
  Rng rng(99);
  std::vector<std::pair<int, int>> pairs;
  for (int i = 0; i < 23; ++i) {  // deliberately not a multiple of a block
    const int s = static_cast<int>(rng.next_u64(36));
    int t = static_cast<int>(rng.next_u64(36));
    if (s == t) t = (t + 1) % 36;
    pairs.emplace_back(s, t);
  }
  // Reference: the pre-battery idiom — one reused network, serial loop.
  FlowNetwork net = FlowNetwork::from_graph(g);
  std::vector<StCut> loop;
  for (const auto& [s, t] : pairs) {
    loop.push_back(flow::st_min_cut(g, net, s, t));
  }
  for (const int threads : thread_ladder()) {
    FlowOptions fo;
    fo.algo = FlowAlgo::HighestLabel;
    fo.threads = threads;
    const std::vector<StCut> cuts = CutBattery(g, fo).solve(pairs);
    ASSERT_EQ(cuts.size(), loop.size());
    for (std::size_t i = 0; i < cuts.size(); ++i) {
      expect_cut_eq(cuts[i], loop[i],
                    "pair " + std::to_string(i) + " threads=" +
                        std::to_string(threads));
    }
  }
}

TEST(ParallelFlow, BestIndexMatchesSerialSelection) {
  const Graph g = random_graph(20, 40, /*seed=*/5);
  std::vector<std::pair<int, int>> pairs;
  for (int t = 1; t < g.num_nodes(); ++t) pairs.emplace_back(0, t);
  const CutBattery battery(g);
  const std::vector<StCut> cuts = battery.solve(pairs);
  const int best = CutBattery::best_index(cuts, battery.tolerance());
  ASSERT_GE(best, 0);
  // First strict minimum: nothing before it is as small.
  for (int i = 0; i < best; ++i) {
    EXPECT_GT(cuts[static_cast<std::size_t>(i)].value,
              cuts[static_cast<std::size_t>(best)].value);
  }
  expect_cut_eq(cuts[static_cast<std::size_t>(best)], flow::global_min_cut(g),
                "best_index vs legacy global_min_cut");
  EXPECT_EQ(CutBattery::best_index({}, battery.tolerance()), -1);
}

TEST(ParallelFlow, TouchedArcResetRestoresCapacitiesExactly) {
  const Graph g = random_graph(30, 80, /*seed=*/21);
  FlowNetwork net = FlowNetwork::from_graph(g);
  (void)flow::max_flow(net, 0, g.num_nodes() - 1);
  net.reset();
  for (int a = 0; a < net.num_arcs(); ++a) {
    EXPECT_EQ(net.residual(a), net.capacity(a)) << "arc " << a;
  }
  // A reused (reset) network must be indistinguishable from a fresh one.
  FlowNetwork fresh = FlowNetwork::from_graph(g);
  MaxFlowStats reused_stats;
  MaxFlowStats fresh_stats;
  const double reused = flow::max_flow(net, 1, 7, FlowAlgo::HighestLabel,
                                       &reused_stats);
  const double first = flow::max_flow(fresh, 1, 7, FlowAlgo::HighestLabel,
                                      &fresh_stats);
  EXPECT_EQ(reused, first);
  expect_stats_eq(reused_stats, fresh_stats, "reused vs fresh");
  for (int a = 0; a < net.num_arcs(); ++a) {
    EXPECT_EQ(net.residual(a), fresh.residual(a)) << "arc " << a;
  }
}

TEST(ParallelFlow, ParallelDischargeBitwiseAcrossThreadCounts) {
  for (const std::uint64_t seed : {3u, 17u, 91u}) {
    const Graph g = random_graph(48, 160, seed);
    const int s = 0;
    const int t = g.num_nodes() - 1;
    FlowOptions serial_opts;
    serial_opts.algo = FlowAlgo::ParallelDischarge;
    serial_opts.threads = 1;
    FlowNetwork ref = FlowNetwork::from_graph(g);
    MaxFlowStats ref_stats;
    const double ref_value = flow::max_flow(ref, s, t, serial_opts, &ref_stats);
    for (const int threads : thread_ladder()) {
      FlowOptions fo = serial_opts;
      fo.threads = threads;
      FlowNetwork net = FlowNetwork::from_graph(g);
      MaxFlowStats stats;
      const double value = flow::max_flow(net, s, t, fo, &stats);
      const std::string what =
          "seed=" + std::to_string(seed) + " threads=" + std::to_string(threads);
      EXPECT_EQ(value, ref_value) << what;
      expect_stats_eq(stats, ref_stats, what);
      for (int a = 0; a < net.num_arcs(); ++a) {
        ASSERT_EQ(net.residual(a), ref.residual(a)) << what << " arc " << a;
      }
    }
  }
}

TEST(ParallelFlow, ParallelDischargeAgreesWithReferenceEngines) {
  for (const std::uint64_t seed : {2u, 23u, 57u}) {
    const Graph g = random_graph(32, 100, seed);
    const int s = 0;
    const int t = g.num_nodes() - 1;
    FlowNetwork pd_net = FlowNetwork::from_graph(g);
    FlowNetwork hl_net = FlowNetwork::from_graph(g);
    FlowNetwork di_net = FlowNetwork::from_graph(g);
    FlowOptions pd;
    pd.algo = FlowAlgo::ParallelDischarge;
    const double pd_value = flow::max_flow(pd_net, s, t, pd, nullptr);
    const double hl_value =
        flow::max_flow(hl_net, s, t, FlowAlgo::HighestLabel);
    const double di_value = flow::max_flow(di_net, s, t, FlowAlgo::Dinic);
    EXPECT_NEAR(pd_value, hl_value, 1e-9) << "seed " << seed;
    EXPECT_NEAR(pd_value, di_value, 1e-9) << "seed " << seed;
    // And its residual state is a real max flow: the extracted cut
    // certifies it (st_min_cut throws on a duality violation).
    FlowOptions auto_pd;
    auto_pd.algo = FlowAlgo::ParallelDischarge;
    const StCut cut = flow::st_min_cut(g, s, t, auto_pd);
    EXPECT_NEAR(cut.value, hl_value, 1e-9);
  }
}

TEST(ParallelFlow, CutoffPredicateDependsOnInstanceOnly) {
  const Graph small = random_graph(10, 10, /*seed=*/1);
  const Graph big = random_graph(70, 4'100, /*seed=*/1);
  const FlowNetwork small_net = FlowNetwork::from_graph(small);
  const FlowNetwork big_net = FlowNetwork::from_graph(big);
  EXPECT_FALSE(flow::parallel_discharge_cutoff(small_net));
  EXPECT_TRUE(flow::parallel_discharge_cutoff(big_net));
  // Auto resolves from the instance alone; explicit algos pass through.
  EXPECT_EQ(flow::resolve_flow_algo(small_net, FlowAlgo::Auto),
            FlowAlgo::HighestLabel);
  EXPECT_EQ(flow::resolve_flow_algo(big_net, FlowAlgo::Auto),
            FlowAlgo::ParallelDischarge);
  EXPECT_EQ(flow::resolve_flow_algo(small_net, FlowAlgo::Dinic),
            FlowAlgo::Dinic);
  EXPECT_EQ(flow::resolve_flow_algo(big_net, FlowAlgo::HighestLabel),
            FlowAlgo::HighestLabel);
}

TEST(ParallelFlow, CutUpperBoundThreadsNeverChangeTheBound) {
  const Network net = family_representative(Family::Hypercube, 16, /*seed=*/7);
  const TrafficMatrix tm = all_to_all(net);
  CutBoundOptions base;
  base.solver_threads = 1;
  const CutBoundResult serial = cut_upper_bound(net, tm, base);
  for (const int threads : thread_ladder()) {
    CutBoundOptions opts;
    opts.solver_threads = threads;
    const CutBoundResult r = cut_upper_bound(net, tm, opts);
    const std::string what = "threads=" + std::to_string(threads);
    EXPECT_EQ(r.bound, serial.bound) << what;
    EXPECT_EQ(r.method, serial.method) << what;
    EXPECT_EQ(r.kind, serial.kind) << what;
    expect_stats_eq(r.flow_stats, serial.flow_stats, what);
  }
}

}  // namespace
}  // namespace tb
