// Distributed sweep sharding (exp/shard.h + Runner sharding): the
// differential battery behind the byte-identical-merge contract.
//
// The load-bearing property: for every sweep mode and every shard count,
// running each shard in its own Runner (its own "machine"), concatenating
// the emitted slices in any order, and merging them reproduces the
// unsharded CSV emission byte for byte. Everything else here — partition
// tiling, header round-trips, strict spec parsing, merge negative paths,
// global-index cache identity — exists to keep that property honest.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <initializer_list>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/runner.h"
#include "exp/shard.h"
#include "exp/sweep.h"
#include "pool_test_env.h"

namespace tb {
namespace {

[[maybe_unused]] const int kForcePoolThreads = test_env::force_pool_threads();

/// Scoped TOPOBENCH_SHARD (or any env knob) override, restored on exit so
/// tests cannot leak sharding into each other.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      setenv(name_, old_.c_str(), /*overwrite=*/1);
    } else {
      unsetenv(name_);
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
  std::string old_;
  bool had_old_ = false;
};

/// 2 topologies x 3 TMs = 6 cells; ExactLP-solvable at 16 servers.
exp::Sweep grid_sweep(int trials = 0) {
  exp::Sweep s;
  s.topologies = {exp::representative_spec(Family::Hypercube, 16, 1),
                  exp::representative_spec(Family::FatTree, 16, 1)};
  s.tms = {exp::a2a_tm(), exp::random_matching_tm(1),
           exp::longest_matching_tm()};
  s.trials = trials;
  s.base_seed = 5;
  return s;
}

/// 1 topology x 2 TMs x 3 scenarios = 6 cells; exercises fleet grouping.
exp::Sweep failures_sweep() {
  exp::Sweep s;
  s.topologies = {exp::representative_spec(Family::Hypercube, 16, 1)};
  s.tms = {exp::a2a_tm(), exp::longest_matching_tm()};
  s.scenarios = exp::random_failure_scenarios({0.1, 0.2});
  s.scenarios.push_back(exp::degrade_scenario(0.5));
  s.base_seed = 5;
  return s;
}

/// The unsharded CSV emission (what ResultSet::emit writes in CSV mode):
/// "# caption", header + rows, trailing blank line. merge_slices must
/// reproduce these bytes exactly.
std::string unsharded_emission(exp::Runner& runner, const exp::Sweep& sweep,
                               const std::string& caption) {
  return "# " + caption + "\n" + runner.run(sweep).to_csv() + "\n";
}

/// Emit every shard of an n-way split, each from its own fresh Runner (a
/// separate machine: cold cache, no shared state).
std::vector<std::string> shard_emissions(const exp::Sweep& sweep,
                                         std::size_t n,
                                         const std::string& caption) {
  std::vector<std::string> slices;
  for (std::size_t i = 0; i < n; ++i) {
    exp::Runner runner;
    exp::RunOptions opts;
    opts.shard = exp::ShardSpec{i, n};
    std::ostringstream os;
    runner.run(sweep, opts).emit(os, caption);
    slices.push_back(os.str());
  }
  return slices;
}

std::string merge(const std::vector<std::string>& slices) {
  std::string cat;
  for (const std::string& s : slices) cat += s;
  std::istringstream in(cat);
  return exp::merge_slices(in);
}

void expect_merge_error(const std::vector<std::string>& slices,
                        const std::string& needle) {
  try {
    (void)merge(slices);
    FAIL() << "merge unexpectedly succeeded; wanted error containing \""
           << needle << '"';
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

/// The differential property: n-way sharded + merged == unsharded, for
/// every concatenation order (merge sorts by declared range).
void expect_sharded_merge_identical(const exp::Sweep& sweep,
                                    const std::string& caption,
                                    std::initializer_list<std::size_t> ns) {
  exp::Runner base;
  const std::string expected = unsharded_emission(base, sweep, caption);
  for (const std::size_t n : ns) {
    std::vector<std::string> slices = shard_emissions(sweep, n, caption);
    EXPECT_EQ(merge(slices), expected) << n << "-way merge";
    std::reverse(slices.begin(), slices.end());
    EXPECT_EQ(merge(slices), expected) << n << "-way merge, reversed order";
  }
}

// --- partition contract --------------------------------------------------

TEST(ShardRange, TilesEveryGridDisjointlyAndExhaustively) {
  for (const std::size_t total : {0u, 1u, 2u, 5u, 6u, 7u, 12u, 97u}) {
    for (const std::size_t n : {1u, 2u, 3u, 4u, 7u}) {
      std::size_t covered = 0;
      std::size_t min_size = total + 1;
      std::size_t max_size = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const exp::CellRange r = exp::shard_range(total, {i, n});
        EXPECT_EQ(r.lo, covered) << total << " cells, shard " << i << "/" << n;
        EXPECT_LE(r.lo, r.hi);
        covered = r.hi;
        min_size = std::min(min_size, r.hi - r.lo);
        max_size = std::max(max_size, r.hi - r.lo);
      }
      EXPECT_EQ(covered, total) << n << " shards must cover " << total;
      EXPECT_LE(max_size - min_size, 1u) << "unbalanced " << n << "-way split";
    }
  }
}

TEST(ShardRange, MoreShardsThanCellsYieldsEmptyTails) {
  const exp::CellRange r = exp::shard_range(2, {5, 7});
  EXPECT_EQ(r.lo, r.hi);  // legal: the shard simply emits an empty slice
}

// --- spec parsing --------------------------------------------------------

TEST(ShardSpec, ParsesWellFormedSpecs) {
  const exp::ShardSpec whole = exp::parse_shard_spec("0/1");
  EXPECT_TRUE(whole.whole());
  const exp::ShardSpec s = exp::parse_shard_spec("2/4");
  EXPECT_EQ(s.index, 2u);
  EXPECT_EQ(s.count, 4u);
  EXPECT_TRUE(s.valid());
  EXPECT_FALSE(s.whole());
}

TEST(ShardSpec, RejectsMalformedSpecsLoudly) {
  for (const char* bad :
       {"0/0", "3/2", "4/4", "-1/4", "1e2/4", "garbage", "", "/4", "1/",
        "1/2/3", "1.5/4", " 1/4", "1/4 ", "99999999999999/4"}) {
    EXPECT_THROW((void)exp::parse_shard_spec(bad), std::invalid_argument)
        << '"' << bad << '"';
  }
}

TEST(ShardSpec, EnvKnobParsesOrThrows) {
  {
    ScopedEnv env("TOPOBENCH_SHARD", "1/3");
    const auto spec = exp::env_shard();
    ASSERT_TRUE(spec.has_value());
    EXPECT_EQ(spec->index, 1u);
    EXPECT_EQ(spec->count, 3u);
  }
  {
    ScopedEnv env("TOPOBENCH_SHARD", "3/2");
    EXPECT_THROW((void)exp::env_shard(), std::invalid_argument);
  }
}

// --- slice header --------------------------------------------------------

TEST(SliceHeader, RoundTripsThroughItsLine) {
  exp::SliceMeta meta;
  meta.grid = 0x0123456789abcdefULL;
  meta.total = 10;
  meta.shard = {2, 4};
  const exp::CellRange r = exp::shard_range(meta.total, meta.shard);
  meta.lo = r.lo;
  meta.hi = r.hi;
  const std::string line = exp::slice_header_line(meta);
  EXPECT_TRUE(exp::is_slice_header_line(line));
  EXPECT_FALSE(exp::is_slice_header_line("# just a caption"));
  const exp::SliceMeta parsed = exp::parse_slice_header_line(line);
  EXPECT_EQ(parsed.grid, meta.grid);
  EXPECT_EQ(parsed.total, meta.total);
  EXPECT_EQ(parsed.shard.index, meta.shard.index);
  EXPECT_EQ(parsed.shard.count, meta.shard.count);
  EXPECT_EQ(parsed.lo, meta.lo);
  EXPECT_EQ(parsed.hi, meta.hi);
}

TEST(SliceHeader, RejectsTamperedLines) {
  // Garbage, trailing junk, an invalid shard, and a range that disagrees
  // with the partition function are all hand-edit symptoms; each must
  // throw rather than merge quietly.
  const char* bad[] = {
      "#! not a slice header",
      "#! topobench-slice v2 grid=0000000000000001 cells=4 shard=0/2 "
      "range=[0,2)",
      "#! topobench-slice v1 grid=0000000000000001 cells=4 shard=0/2 "
      "range=[0,2) extra",
      "#! topobench-slice v1 grid=0000000000000001 cells=4 shard=2/2 "
      "range=[0,2)",
      "#! topobench-slice v1 grid=0000000000000001 cells=4 shard=0/2 "
      "range=[0,3)",
  };
  for (const char* line : bad) {
    EXPECT_THROW((void)exp::parse_slice_header_line(line),
                 std::invalid_argument)
        << line;
  }
}

// --- grid fingerprint ----------------------------------------------------

TEST(GridFingerprint, TracksStructuralIdentityOnly) {
  const std::uint64_t fp = exp::grid_fingerprint(grid_sweep());
  EXPECT_EQ(exp::grid_fingerprint(grid_sweep()), fp);  // deterministic

  exp::Sweep s = grid_sweep();
  s.base_seed = 6;
  EXPECT_NE(exp::grid_fingerprint(s), fp);
  EXPECT_NE(exp::grid_fingerprint(grid_sweep(/*trials=*/2)), fp);
  s = grid_sweep();
  s.warm_start = true;
  EXPECT_NE(exp::grid_fingerprint(s), fp);
  s = grid_sweep();
  s.cut_bounds = true;
  EXPECT_NE(exp::grid_fingerprint(s), fp);
  s = grid_sweep();
  s.solve.epsilon *= 0.5;
  EXPECT_NE(exp::grid_fingerprint(s), fp);
  s = grid_sweep();
  std::swap(s.tms[0], s.tms[1]);  // axis order defines cell indices
  EXPECT_NE(exp::grid_fingerprint(s), fp);
  s = grid_sweep();
  s.topologies.pop_back();
  EXPECT_NE(exp::grid_fingerprint(s), fp);
  s = grid_sweep();
  s.scenarios = {exp::degrade_scenario(0.5)};
  EXPECT_NE(exp::grid_fingerprint(s), fp);
}

// --- the differential property -------------------------------------------

TEST(ShardMerge, AbsoluteModeMergesByteIdentical) {
  expect_sharded_merge_identical(grid_sweep(), "absolute grid",
                                 {1, 2, 3, 4, 7});
}

TEST(ShardMerge, RelativeModeMergesByteIdentical) {
  // Trials consume per-(cell, trial) seed streams; global indices keep
  // them position-stable across shards.
  exp::Sweep s = grid_sweep(/*trials=*/2);
  s.tms.pop_back();  // 4 cells keep the 18 runs cheap
  expect_sharded_merge_identical(s, "relative grid", {1, 2, 3, 4, 7});
}

TEST(ShardMerge, CutBoundModeMergesByteIdentical) {
  exp::Sweep s = grid_sweep();
  s.topologies.pop_back();
  s.tms.pop_back();  // 2 cells: the cut survey is the expensive part
  s.cut_bounds = true;
  expect_sharded_merge_identical(s, "cut-bound grid", {1, 2, 3, 7});
}

TEST(ShardMerge, FailuresModeMergesByteIdentical) {
  // n=4 splits a (topology, TM) fleet group mid-scenario: the shard's
  // group floor arithmetic must use global cell indices or the group TM
  // (and every degraded value after it) silently changes.
  expect_sharded_merge_identical(failures_sweep(), "failures grid",
                                 {1, 2, 3, 4, 7});
}

TEST(ShardMerge, WarmStartModeMergesByteIdentical) {
  // Shard boundaries cut through warm chains (6 cells, chains of 3):
  // intersected chains must run whole or mid-chain values drift.
  exp::Sweep s = grid_sweep();
  s.warm_start = true;
  expect_sharded_merge_identical(s, "warm grid", {1, 2, 3, 4, 7});
}

TEST(ShardMerge, SharedRunnerAcrossShardsChangesNothing) {
  // All shards on ONE runner (one machine simulating a fleet): cache
  // entries written by earlier shards must not perturb later ones, in
  // either evaluation order.
  const exp::Sweep sweep = grid_sweep();
  exp::Runner base;
  const std::string expected = unsharded_emission(base, sweep, "grid");
  for (const bool reversed : {false, true}) {
    exp::Runner shared;
    std::vector<std::string> slices(4);
    for (std::size_t k = 0; k < 4; ++k) {
      const std::size_t i = reversed ? 3 - k : k;
      exp::RunOptions opts;
      opts.shard = exp::ShardSpec{i, 4};
      std::ostringstream os;
      shared.run(sweep, opts).emit(os, "grid");
      slices[i] = os.str();
    }
    EXPECT_EQ(merge(slices), expected) << (reversed ? "reversed" : "forward");
    EXPECT_EQ(shared.cache_stats().misses, 6u) << "shards must not overlap";
  }
}

// --- merge negative paths ------------------------------------------------

TEST(ShardMerge, RejectsOverlappingSlices) {
  std::vector<std::string> slices = shard_emissions(grid_sweep(), 2, "grid");
  slices.push_back(slices[0]);  // shard 0 submitted twice
  expect_merge_error(slices, "overlapping slices");
}

TEST(ShardMerge, RejectsMissingSlices) {
  std::vector<std::string> slices = shard_emissions(grid_sweep(), 3, "grid");
  slices.erase(slices.begin() + 1);  // lose the middle shard
  expect_merge_error(slices, "missing slice covering cells [2,4)");
  slices = shard_emissions(grid_sweep(), 3, "grid");
  slices.pop_back();  // lose the tail
  expect_merge_error(slices, "missing slice covering cells [4,6)");
}

TEST(ShardMerge, RejectsSlicesFromDifferentSweeps) {
  exp::Sweep other = grid_sweep();
  other.base_seed = 99;  // same shape, different grid identity
  const std::vector<std::string> a = shard_emissions(grid_sweep(), 2, "grid");
  const std::vector<std::string> b = shard_emissions(other, 2, "grid");
  expect_merge_error({a[0], b[1]}, "mismatched grid fingerprints");
}

TEST(ShardMerge, RejectsMismatchedCaptions) {
  const std::vector<std::string> a = shard_emissions(grid_sweep(), 2, "one");
  const std::vector<std::string> b = shard_emissions(grid_sweep(), 2, "two");
  expect_merge_error({a[0], b[1]}, "mismatched captions");
}

TEST(ShardMerge, RejectsTamperedRows) {
  std::vector<std::string> slices = shard_emissions(grid_sweep(), 2, "grid");
  // Renumber shard 1's first row (cell 3) to cell 9: the row-vs-range
  // check must catch it even though the byte count is unchanged.
  const std::size_t pos = slices[1].find("\n3,");
  ASSERT_NE(pos, std::string::npos);
  slices[1].replace(pos, 3, "\n9,");
  expect_merge_error(slices, "carries cell 9");
}

TEST(ShardMerge, RejectsDroppedRows) {
  std::vector<std::string> slices = shard_emissions(grid_sweep(), 2, "grid");
  // Delete shard 1's last row: the slice then carries fewer rows than its
  // declared range.
  const std::size_t pos = slices[1].find("\n5,");
  ASSERT_NE(pos, std::string::npos);
  const std::size_t end = slices[1].find('\n', pos + 1);
  ASSERT_NE(end, std::string::npos);
  slices[1].erase(pos, end - pos);
  expect_merge_error(slices, "carries 2 rows");
}

TEST(ShardMerge, RejectsUnshardedInputAndEmptyInput) {
  exp::Runner runner;
  const std::string plain = unsharded_emission(runner, grid_sweep(), "grid");
  expect_merge_error({plain}, "data outside any slice");
  expect_merge_error({}, "no slices in input");
  // A slice header with its caption stripped is a truncation symptom.
  std::vector<std::string> slices = shard_emissions(grid_sweep(), 1, "grid");
  const std::size_t nl = slices[0].find('\n');
  ASSERT_NE(nl, std::string::npos);
  slices[0].erase(0, nl + 1);
  expect_merge_error(slices, "without a preceding");
}

// --- runner integration --------------------------------------------------

TEST(ShardRun, EnvKnobShardsARunIntoASlice) {
  const exp::Sweep sweep = grid_sweep();
  exp::Runner base;
  const exp::ResultSet whole = base.run(sweep);
  EXPECT_FALSE(whole.slice().has_value());  // unsharded emission unchanged

  ScopedEnv env("TOPOBENCH_SHARD", "1/2");
  exp::Runner runner;
  const exp::ResultSet slice = runner.run(sweep);
  ASSERT_TRUE(slice.slice().has_value());
  EXPECT_EQ(slice.slice()->grid, exp::grid_fingerprint(sweep));
  EXPECT_EQ(slice.slice()->total, 6u);
  EXPECT_EQ(slice.slice()->lo, 3u);
  EXPECT_EQ(slice.slice()->hi, 6u);
  // The slice's rows are bitwise the unsharded rows [3, 6).
  ASSERT_EQ(slice.size(), 3u);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(slice.rows()[k].cell, 3 + k);  // global, not slice-local
    EXPECT_EQ(slice.rows()[k].seed, whole.rows()[3 + k].seed);
    EXPECT_EQ(slice.rows()[k].throughput, whole.rows()[3 + k].throughput);
  }
}

TEST(ShardRun, MalformedEnvKnobFailsTheRunLoudly) {
  // A fleet member with a typo'd TOPOBENCH_SHARD must abort, not silently
  // evaluate the whole grid (which would corrupt the merge).
  const exp::Sweep sweep = grid_sweep();
  for (const char* bad : {"0/0", "3/2", "-1/4", "garbage"}) {
    ScopedEnv env("TOPOBENCH_SHARD", bad);
    exp::Runner runner;
    EXPECT_THROW((void)runner.run(sweep), std::invalid_argument) << bad;
  }
}

TEST(ShardRun, ProgrammaticInvalidSpecThrows) {
  exp::Runner runner;
  exp::RunOptions opts;
  opts.shard = exp::ShardSpec{3, 2};
  EXPECT_THROW((void)runner.run(grid_sweep(), opts), std::invalid_argument);
  opts.shard = exp::ShardSpec{0, 0};
  EXPECT_THROW((void)runner.run(grid_sweep(), opts), std::invalid_argument);
}

TEST(ShardRun, CacheKeysUseGlobalCellIndices) {
  // Satellite regression: a shard's cache entries must be keyed on global
  // cell indices, so a later full run on the same Runner hits exactly the
  // shard's cells and still reproduces the unsharded bytes.
  const exp::Sweep sweep = grid_sweep();
  exp::Runner fresh;
  const std::string expected = fresh.run(sweep).to_csv();

  exp::Runner runner;
  exp::RunOptions opts;
  opts.shard = exp::ShardSpec{1, 3};  // cells [2, 4)
  (void)runner.run(sweep, opts);
  EXPECT_EQ(runner.cache_stats().misses, 2u);
  const exp::ResultSet full = runner.run(sweep);
  EXPECT_EQ(runner.cache_stats().hits, 2u);    // the shard's cells
  EXPECT_EQ(runner.cache_stats().misses, 6u);  // 2 sharded + 4 remaining
  EXPECT_EQ(full.to_csv(), expected);
}

TEST(ShardRun, WarmChainsCrossingTheBoundaryRunWholeButReturnTheRange) {
  exp::Sweep sweep = grid_sweep();
  sweep.warm_start = true;
  exp::Runner fresh;
  const exp::ResultSet whole = fresh.run(sweep);

  // Shard 1/3 covers cells [2, 4): the tail of topology 0's chain and the
  // head of topology 1's. Both chains evaluate whole (6 misses), but only
  // the two in-range cells come back — bitwise the unsharded middle rows.
  exp::Runner runner;
  exp::RunOptions opts;
  opts.shard = exp::ShardSpec{1, 3};
  const exp::ResultSet slice = runner.run(sweep, opts);
  EXPECT_EQ(runner.cache_stats().misses, 6u);
  ASSERT_EQ(slice.size(), 2u);
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_EQ(slice.rows()[k].cell, 2 + k);
    EXPECT_EQ(slice.rows()[k].throughput, whole.rows()[2 + k].throughput);
    EXPECT_EQ(slice.rows()[k].pivots, whole.rows()[2 + k].pivots);
    EXPECT_EQ(slice.rows()[k].phases, whole.rows()[2 + k].phases);
  }
  // The out-of-range chain cells landed in the cache: a full warm run on
  // the same Runner is answered entirely from it (all-or-nothing per
  // chain, and both chains are complete).
  const exp::ResultSet full = runner.run(sweep);
  EXPECT_EQ(runner.cache_stats().hits, 6u);
  EXPECT_EQ(runner.cache_stats().misses, 6u);
  EXPECT_EQ(full.to_csv(), whole.to_csv());
}

TEST(ShardRun, EmptyShardEmitsAMergeableEmptySlice) {
  // More shards than cells: the tail shards hold zero rows but still emit
  // verifiable slices — the merge needs them to prove exhaustive coverage.
  const exp::Sweep sweep = grid_sweep();
  exp::Runner runner;
  exp::RunOptions opts;
  opts.shard = exp::ShardSpec{6, 7};  // 6 cells, 7 shards: shard 6 is empty
  const exp::ResultSet slice = runner.run(sweep, opts);
  EXPECT_EQ(slice.size(), 0u);
  ASSERT_TRUE(slice.slice().has_value());
  EXPECT_EQ(slice.slice()->lo, slice.slice()->hi);
}

}  // namespace
}  // namespace tb
