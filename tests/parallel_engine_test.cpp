// Threaded-determinism battery for the throughput stack: every
// SolveOptions::solver_threads setting (serial, 2- and 4-worker engine
// pools, the shared pool) must produce bitwise identical throughput
// values, certificates, and SolverStats — across the topology registry,
// on both solver paths (GK and ExactLP), through warm session chains, and
// when ScenarioFleet batches nest inside runner parallelism.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/evaluator.h"
#include "core/registry.h"
#include "exp/runner.h"
#include "mcf/engine.h"
#include "pool_test_env.h"
#include "tm/synthetic.h"
#include "topo/hypercube.h"
#include "topo/jellyfish.h"
#include "util/thread_pool.h"

namespace tb {
namespace {

[[maybe_unused]] const int kForcePoolThreads = test_env::force_pool_threads();

mcf::SolveOptions gk_opts(int solver_threads, double eps = 0.1) {
  mcf::SolveOptions o;
  o.kind = mcf::SolverKind::GargKonemann;
  o.epsilon = eps;
  o.solver_threads = solver_threads;
  return o;
}

void expect_same_result(const mcf::ThroughputResult& a,
                        const mcf::ThroughputResult& b,
                        const std::string& what) {
  // Bitwise: == on the doubles is the contract under test.
  EXPECT_EQ(a.throughput, b.throughput) << what;
  EXPECT_EQ(a.upper_bound, b.upper_bound) << what;
  EXPECT_EQ(a.solver, b.solver) << what;
  EXPECT_EQ(a.stats.pivots, b.stats.pivots) << what;
  EXPECT_EQ(a.stats.phases, b.stats.phases) << what;
  EXPECT_EQ(a.stats.dijkstras, b.stats.dijkstras) << what;
  EXPECT_EQ(a.stats.warm_start, b.stats.warm_start) << what;
}

// ---------------------------------------------------------------------------
// Cold and warm GK solves across the registry, 1 vs 2 vs 4 solver threads.

class ThreadedEquivalence : public ::testing::TestWithParam<Family> {};

TEST_P(ThreadedEquivalence, ColdAndWarmGkSolvesAreBitwiseIdentical) {
  const Network net = family_representative(GetParam(), 24, 1);
  const TrafficMatrix a2a = all_to_all(net);
  const TrafficMatrix rm1 = random_matching(net, 1, 5);
  // One engine per thread count, each running the same cold -> warm chain
  // (the warm solve exercises the reuse-trees parallel path).
  struct Chain {
    mcf::ThroughputResult cold;
    mcf::ThroughputResult warm;
  };
  const auto run_chain = [&](int threads) {
    mcf::ThroughputEngine engine(net);
    Chain c;
    c.cold = engine.solve(a2a, gk_opts(threads));
    c.warm = engine.warm_solve(rm1, gk_opts(threads));
    return c;
  };
  const Chain serial = run_chain(1);
  EXPECT_GT(serial.cold.throughput, 0.0);
  EXPECT_EQ(serial.cold.stats.solver_threads, 1);
  for (const int threads : {2, 4}) {
    const Chain threaded = run_chain(threads);
    const std::string what =
        net.name + " @ " + std::to_string(threads) + " threads";
    expect_same_result(serial.cold, threaded.cold, what + " (cold)");
    expect_same_result(serial.warm, threaded.warm, what + " (warm)");
    EXPECT_EQ(threaded.warm.stats.solver_threads, threads);
  }
  // The shared pool (solver_threads = 0) is the same algorithm again.
  mcf::SolveOptions shared = gk_opts(0);
  mcf::ThroughputEngine engine(net);
  expect_same_result(serial.cold, engine.solve(a2a, shared),
                     net.name + " (shared pool)");
}

INSTANTIATE_TEST_SUITE_P(Registry, ThreadedEquivalence,
                         ::testing::ValuesIn(all_families()),
                         [](const ::testing::TestParamInfo<Family>& param) {
                           return family_name(param.param);
                         });

// ---------------------------------------------------------------------------
// ExactLP: the parallel pricing/BTRAN/FTRAN scans must pick the same pivots.

TEST(ThreadedEquivalence, ExactLpSolveIsBitwiseIdenticalAcrossThreadCounts) {
  // hypercube(4) x A2A is large enough (2k+ columns, 368 rows) to clear
  // the simplex's parallel-scan gates, so the ranged pricing actually runs.
  const Network hc = make_hypercube(4);
  const TrafficMatrix tm = all_to_all(hc);
  mcf::SolveOptions opts;
  opts.kind = mcf::SolverKind::ExactLP;
  const auto solve_with = [&](int threads) {
    opts.solver_threads = threads;
    mcf::ThroughputEngine engine(hc);
    return engine.solve(tm, opts);
  };
  const mcf::ThroughputResult serial = solve_with(1);
  ASSERT_EQ(serial.solver, "exact-lp");
  EXPECT_GT(serial.stats.pivots, 0);
  for (const int threads : {2, 4, 0}) {
    expect_same_result(serial, solve_with(threads),
                       "exact-lp @ " + std::to_string(threads));
  }
}

// ---------------------------------------------------------------------------
// ScenarioFleet == one-at-a-time degraded_throughput, bitwise.

TEST(ScenarioFleet, MatchesOneAtATimeDegradedThroughputBitwise) {
  const Network jf = make_jellyfish(20, 4, 1, 33);
  const TrafficMatrix tm = random_matching(jf, 1, 5);
  const mcf::SolveOptions solve = gk_opts(0, 0.05);

  std::vector<mcf::ScenarioSpec> specs(4);
  specs[0].failed_edges = {0, 1, 2};
  specs[1].random_edge_fraction = 0.15;
  specs[1].seed = 7;
  specs[2].capacity_factor = 0.6;
  specs[3].failed_nodes = {1};

  const std::vector<DegradedResult> batch =
      degraded_throughput_batch(jf, tm, specs, solve);
  ASSERT_EQ(batch.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const DegradedResult one = degraded_throughput(jf, tm, specs[i], solve);
    EXPECT_EQ(batch[i].baseline, one.baseline) << i;
    EXPECT_EQ(batch[i].degraded, one.degraded) << i;
    EXPECT_EQ(batch[i].drop, one.drop) << i;
    EXPECT_EQ(batch[i].failed_links, one.failed_links) << i;
    EXPECT_EQ(batch[i].stats.phases, one.stats.phases) << i;
    EXPECT_EQ(batch[i].stats.dijkstras, one.stats.dijkstras) << i;
    EXPECT_EQ(batch[i].stats.warm_start, one.stats.warm_start) << i;
  }
}

TEST(ScenarioFleet, ForkSessionRefusesActiveScenario) {
  const Network jf = make_jellyfish(12, 3, 1, 2);
  mcf::ThroughputEngine engine(jf);
  mcf::ScenarioSpec spec;
  spec.failed_edges = {0};
  engine.apply_scenario(spec);
  EXPECT_THROW((void)engine.fork_session(), std::logic_error);
  engine.clear_scenario();
  EXPECT_NO_THROW((void)engine.fork_session());
}

// ---------------------------------------------------------------------------
// The full nesting stack: runner cells x ScenarioFleet x intra-solve
// threading. Pins the parallel_for nested-submit inlining — no deadlock,
// no reordering — by requiring byte-identical CSV for every combination of
// runner parallelism and solver_threads.

TEST(ScenarioFleet, NestedInRunnerFailuresSweepEmitsIdenticalCsv) {
  exp::Sweep sweep;
  sweep.solve = gk_opts(0, 0.1);
  sweep.base_seed = 3;
  sweep.topologies = {exp::instance_spec(make_jellyfish(16, 4, 1, 9)),
                      exp::instance_spec(make_hypercube(3))};
  sweep.tms = {exp::a2a_tm(), exp::random_matching_tm(1)};
  sweep.scenarios = exp::random_failure_scenarios({0.1, 0.2});
  sweep.scenarios.push_back(exp::degrade_scenario(0.5));

  std::string reference;
  for (const bool parallel_cells : {false, true}) {
    for (const int threads : {1, 4}) {
      sweep.solve.solver_threads = threads;
      exp::Runner runner(parallel_cells);
      const std::string csv = runner.run(sweep).to_csv();
      // The configuration echo column is the only allowed difference.
      exp::ResultSet rs = exp::ResultSet::from_csv(csv);
      for (const exp::CellResult& r : rs.rows()) {
        EXPECT_EQ(r.solver_threads, threads);
      }
      // Normalize the echo column before the byte comparison.
      std::string normalized;
      for (exp::CellResult r : rs.rows()) {
        r.solver_threads = 0;
        exp::ResultSet one;
        one.add(std::move(r));
        const std::string cell_csv = one.to_csv();
        normalized += cell_csv.substr(cell_csv.find('\n') + 1);
      }
      if (reference.empty()) {
        reference = normalized;
      } else {
        EXPECT_EQ(normalized, reference)
            << "cells=" << parallel_cells << " threads=" << threads;
      }
    }
  }
  EXPECT_FALSE(reference.empty());
}

}  // namespace
}  // namespace tb
