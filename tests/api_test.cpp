// tb::api façade: this file includes ONLY api/topobench.h (plus gtest and
// the standard library) — pinning that the public header compiles
// standalone — and covers the factories, their error paths, the Service
// answer tiers (solved -> memory -> store), and the strict environment
// loader.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "api/topobench.h"

namespace {

using namespace tb::api;

std::string fresh_store(const std::string& name) {
  const std::string path = testing::TempDir() + "topobench_api_" + name + "_" +
                           std::to_string(::getpid()) + ".store";
  std::remove(path.c_str());
  return path;
}

TEST(ApiFactoriesTest, FamilyNamesAreSortedAndBuildable) {
  const std::vector<std::string> names = family_names();
  ASSERT_FALSE(names.empty());
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const std::string& name : names) {
    const Topology t = build_topology(name, 16);
    EXPECT_EQ(t.label, name + "(servers=16,seed=1)");
  }
}

TEST(ApiFactoriesTest, TopologyRejectsBadInputEagerly) {
  EXPECT_THROW(build_topology("no-such-family", 16), std::invalid_argument);
  EXPECT_THROW(build_topology("hypercube", 0), std::invalid_argument);
}

TEST(ApiFactoriesTest, TopologySaveLoadRoundTrips) {
  const Topology t = build_topology("hypercube", 16);
  std::stringstream edge_list;
  save_topology(edge_list, t);
  const Topology back = load_topology(edge_list, "reloaded");
  EXPECT_EQ(back.label, "reloaded");
  EXPECT_EQ(back.build()->graph.num_nodes(), t.build()->graph.num_nodes());
  EXPECT_EQ(back.build()->graph.num_edges(), t.build()->graph.num_edges());
}

TEST(ApiFactoriesTest, TmSpecsParseAndRejectLoudly) {
  EXPECT_EQ(build_tm("a2a").label, "A2A");
  EXPECT_EQ(build_tm("lm").label, "LM");
  EXPECT_EQ(build_tm("kodialam").label, "Kodialam");
  EXPECT_EQ(build_tm("rm(4)").label, "RM(4)");
  EXPECT_THROW(build_tm("rm(0)"), std::invalid_argument);
  EXPECT_THROW(build_tm("rm(1.5)"), std::invalid_argument);
  EXPECT_THROW(build_tm("rm()"), std::invalid_argument);
  EXPECT_THROW(build_tm("bogus"), std::invalid_argument);
}

TEST(ApiFactoriesTest, ScenarioSpecsParseAndRejectLoudly) {
  EXPECT_EQ(build_scenario("fail(f=0.1)").label, "fail(f=0.1)");
  EXPECT_EQ(build_scenario("degrade(c=0.9)").label, "degrade(c=0.9)");
  EXPECT_THROW(build_scenario("fail(f=1.5)"), std::invalid_argument);
  EXPECT_THROW(build_scenario("degrade(c=-1)"), std::invalid_argument);
  EXPECT_THROW(build_scenario("meteor()"), std::invalid_argument);
}

TEST(ApiServiceTest, AnswerTiersProgressSolvedMemoryStore) {
  const std::string store = fresh_store("tiers");
  Query q;
  q.topology = build_topology("hypercube", 16);
  q.tm = build_tm("a2a");
  q.epsilon = 0.1;
  q.seed = 7;
  std::string solved_row;
  {
    ServiceConfig cfg;
    cfg.store_path = store;
    Service service(cfg);
    const QueryResult first = service.query(q);
    EXPECT_EQ(first.source, Source::Solved);
    const QueryResult second = service.query(q);
    EXPECT_EQ(second.source, Source::Memory);
    EXPECT_EQ(second.record.throughput, first.record.throughput);
    solved_row = std::to_string(first.record.throughput);
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.queries, 2u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.memory_hits, 1u);
    EXPECT_EQ(stats.store_entries, 1u);
  }  // release the writer lock
  ServiceConfig ro;
  ro.store_path = store;
  ro.store_read_only = true;
  Service second_service(ro);
  const QueryResult replay = second_service.query(q);
  EXPECT_EQ(replay.source, Source::Store);
  EXPECT_EQ(std::to_string(replay.record.throughput), solved_row);
  std::remove(store.c_str());
}

TEST(ApiServiceTest, SweepBatchesAndReportsBatchStats) {
  SweepQuery q;
  q.topologies = {build_topology("hypercube", 16),
                  build_topology("fattree", 16)};
  q.tms = {build_tm("a2a"), build_tm("lm")};
  q.epsilon = 0.1;
  q.seed = 11;
  Service service;
  const SweepResult first = service.sweep(q);
  EXPECT_EQ(first.results.size(), 4u);
  EXPECT_EQ(first.stats.solved, 4u);
  EXPECT_EQ(first.stats.memory_hits, 0u);
  const SweepResult again = service.sweep(q);
  EXPECT_EQ(again.stats.solved, 0u);
  EXPECT_EQ(again.stats.memory_hits, 4u);
  EXPECT_EQ(again.results.to_csv(), first.results.to_csv());
}

TEST(ApiServiceTest, ScenarioQueryCarriesTheFailureColumns) {
  Query q;
  q.topology = build_topology("hypercube", 16);
  q.tm = build_tm("a2a");
  q.epsilon = 0.1;
  q.scenario = build_scenario("degrade(c=0.5)");
  q.seed = 3;
  Service service;
  const QueryResult r = service.query(q);
  EXPECT_EQ(r.record.scenario, "degrade(c=0.5)");
  EXPECT_EQ(r.record.failed_links, 0);
  EXPECT_GT(r.record.throughput_drop, 0.0);
}

TEST(ApiConfigTest, FromEnvLoadsAndRejectsStrictly) {
  ::setenv("TOPOBENCH_STORE", "/tmp/some.store", 1);
  ::setenv("TOPOBENCH_STORE_RO", "1", 1);
  ::setenv("TOPOBENCH_SOLVER_THREADS", "4", 1);
  ServiceConfig cfg = ServiceConfig::from_env();
  EXPECT_EQ(cfg.store_path, "/tmp/some.store");
  EXPECT_TRUE(cfg.store_read_only);
  EXPECT_EQ(cfg.solver_threads, 4);

  ::setenv("TOPOBENCH_SOLVER_THREADS", "lots", 1);
  EXPECT_THROW(ServiceConfig::from_env(), std::invalid_argument);
  ::setenv("TOPOBENCH_SOLVER_THREADS", "4", 1);
  ::setenv("TOPOBENCH_STORE_RO", "yes", 1);
  EXPECT_THROW(ServiceConfig::from_env(), std::invalid_argument);

  ::unsetenv("TOPOBENCH_STORE");
  ::unsetenv("TOPOBENCH_STORE_RO");
  ::unsetenv("TOPOBENCH_SOLVER_THREADS");
  cfg = ServiceConfig::from_env();
  EXPECT_TRUE(cfg.store_path.empty());
  EXPECT_FALSE(cfg.store_read_only);
  EXPECT_EQ(cfg.solver_threads, 0);
}

TEST(ApiServiceTest, UnopenableStoreFailsConstructionLoudly) {
  ServiceConfig cfg;
  cfg.store_path = "/no/such/directory/x.store";
  EXPECT_THROW(Service{cfg}, std::runtime_error);
}

}  // namespace
