#include <gtest/gtest.h>

#include <limits>

#include "cuts/bisection.h"
#include "cuts/exact_cuts.h"
#include "cuts/sparsest_cut.h"
#include "mcf/throughput.h"
#include "tm/synthetic.h"
#include "topo/hypercube.h"
#include "topo/jellyfish.h"
#include "topo/natural.h"

namespace tb {
namespace {

Graph barbell(int clique) {
  Graph g(2 * clique);
  for (int u = 0; u < clique; ++u) {
    for (int v = u + 1; v < clique; ++v) {
      g.add_edge(u, v);
      g.add_edge(clique + u, clique + v);
    }
  }
  g.add_edge(0, clique);
  g.finalize();
  return g;
}

TEST(CutSparsity, HandMadeCut) {
  // Path 0-1-2, demand 0->2 weight 2. Cut {0} vs {1,2}: capacity 1 per
  // direction, crossing demand 2 forward only -> sparsity 1/2.
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.finalize();
  TrafficMatrix tm;
  tm.demands = {{0, 2, 2.0}};
  const std::vector<std::uint8_t> side{0, 1, 1};
  EXPECT_DOUBLE_EQ(cuts::cut_sparsity(g, tm, side), 0.5);
}

TEST(CutSparsity, NoCrossingDemandIsInfinite) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.finalize();
  TrafficMatrix tm;
  tm.demands = {{0, 1, 1.0}};
  const std::vector<std::uint8_t> side{0, 0, 1};
  EXPECT_EQ(cuts::cut_sparsity(g, tm, side),
            std::numeric_limits<double>::infinity());
}

TEST(CutSparsity, AsymmetricDemandTakesWorseDirection) {
  Graph g(2);
  g.add_edge(0, 1);
  g.finalize();
  TrafficMatrix tm;
  tm.demands = {{0, 1, 4.0}, {1, 0, 1.0}};
  const std::vector<std::uint8_t> side{0, 1};
  // Forward 1/4, reverse 1/1 -> min is 1/4.
  EXPECT_DOUBLE_EQ(cuts::cut_sparsity(g, tm, side), 0.25);
}

TEST(SparsestCut, BruteForceFindsBarbellBridge) {
  const Graph g = barbell(4);
  TrafficMatrix tm;
  // A2A-style demand between the two cliques.
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) {
      if (u != v) tm.demands.push_back({u, v, 1.0 / 8.0});
    }
  }
  const cuts::CutResult r = cuts::sparsest_cut_brute_force(g, tm);
  // Bridge cut: capacity 1, crossing demand 4*4/8 = 2 per direction.
  EXPECT_NEAR(r.sparsity, 0.5, 1e-12);
  int side1 = 0;
  for (const auto s : r.side) side1 += s;
  EXPECT_EQ(side1, 4);
}

TEST(SparsestCut, HeuristicsNeverBeatBruteForceOnSmallGraphs) {
  // On graphs small enough for exhaustive search, every heuristic's value
  // is >= the true sparsest cut.
  const Network jf = make_jellyfish(10, 3, 1, 3);
  const TrafficMatrix tm = longest_matching(jf);
  const cuts::CutResult exact =
      cuts::sparsest_cut_brute_force(jf.graph, tm, 1L << 20);
  for (const auto& r :
       {cuts::sparsest_cut_one_node(jf.graph, tm),
        cuts::sparsest_cut_two_node(jf.graph, tm),
        cuts::sparsest_cut_expanding(jf.graph, tm),
        cuts::sparsest_cut_eigenvector(jf.graph, tm)}) {
    EXPECT_GE(r.sparsity + 1e-12, exact.sparsity) << r.method;
  }
}

TEST(SparsestCut, EigenvectorFindsBarbellBridge) {
  const Graph g = barbell(5);
  TrafficMatrix tm;
  for (int u = 0; u < 10; ++u) {
    for (int v = 0; v < 10; ++v) {
      if (u != v) tm.demands.push_back({u, v, 0.1});
    }
  }
  const cuts::CutResult r = cuts::sparsest_cut_eigenvector(g, tm);
  // The sweep must discover the bridge cut (capacity 1, demand 5*5*0.1=2.5).
  EXPECT_NEAR(r.sparsity, 1.0 / 2.5, 1e-9);
}

TEST(SparsestCut, SurveyReportsWinners) {
  const Network jf = make_jellyfish(12, 3, 1, 9);
  const TrafficMatrix tm = longest_matching(jf);
  const cuts::SparseCutSurvey survey = cuts::best_sparse_cut(jf.graph, tm);
  EXPECT_EQ(survey.per_method.size(), 6u);
  EXPECT_FALSE(survey.winners.empty());
  for (const auto& [method, value] : survey.per_method) {
    EXPECT_GE(value + 1e-12, survey.best.sparsity) << method;
  }
  // 12 switches: the capped brute force is complete, so the survey's best
  // value is certified exact.
  EXPECT_EQ(survey.best.bound, cuts::CutBound::Exact);
}

TEST(SparsestCut, UpperBoundsThroughput) {
  // Any cut upper-bounds throughput (max-flow <= min-cut direction).
  for (const std::uint64_t seed : {1ULL, 5ULL, 7ULL}) {
    const Network jf = make_jellyfish(14, 3, 1, seed);
    const TrafficMatrix tm = longest_matching(jf);
    const double thr = mcf::compute_throughput(jf, tm).throughput;
    const cuts::SparseCutSurvey survey = cuts::best_sparse_cut(jf.graph, tm);
    EXPECT_GE(survey.best.sparsity * (1.0 + 1e-9), thr) << "seed " << seed;
  }
}

TEST(Bisection, ExactBalancedEnumeration) {
  const Graph g = barbell(3);  // 6 nodes; bridge is the min balanced cut
  TrafficMatrix tm;
  for (int u = 0; u < 6; ++u) {
    for (int v = 0; v < 6; ++v) {
      if (u != v) tm.demands.push_back({u, v, 1.0 / 6.0});
    }
  }
  const cuts::CutResult r = cuts::bisection_sparsity(g, tm);
  // Bridge: cap 1, demand 3*3/6 = 1.5 each way -> sparsity 2/3.
  EXPECT_NEAR(r.sparsity, 1.0 / 1.5, 1e-12);
  EXPECT_DOUBLE_EQ(cuts::bisection_capacity(g), 1.0);
}

TEST(Bisection, HypercubeCapacityClosedForm) {
  // d-cube bisection = n/2 edges.
  const Network hc = make_hypercube(4);
  EXPECT_DOUBLE_EQ(cuts::bisection_capacity(hc.graph), 8.0);
}

TEST(Bisection, KlPathFindsLargeGraphCut) {
  const Graph g = barbell(12);  // 24 nodes -> KL path
  TrafficMatrix tm;
  for (int u = 0; u < 24; ++u) {
    for (int v = 0; v < 24; ++v) {
      if (u != v) tm.demands.push_back({u, v, 1.0 / 24.0});
    }
  }
  const cuts::CutResult r = cuts::bisection_sparsity(g, tm, /*exact_max=*/18);
  EXPECT_NEAR(r.sparsity, 1.0 / 6.0, 1e-9);  // cap 1 / (12*12/24)
}

TEST(Bisection, CutCannotBeBelowSparsestCut) {
  const Network jf = make_jellyfish(12, 3, 1, 17);
  const TrafficMatrix tm = all_to_all(jf);
  const cuts::CutResult bis = cuts::bisection_sparsity(jf.graph, tm);
  const cuts::CutResult sparse =
      cuts::sparsest_cut_brute_force(jf.graph, tm, 1L << 16);
  EXPECT_GE(bis.sparsity + 1e-12, sparse.sparsity);
}

TEST(ExactCuts, SingleDemandPairIsCertifiedExact) {
  // One demand pair: the sparsest cut must separate it, every separating
  // cut carries the same demand, so min cut == sparsest cut exactly.
  const Graph g = barbell(4);
  TrafficMatrix tm;
  tm.demands = {{1, 6, 2.0}};
  const cuts::CutResult st = cuts::sparsest_cut_st_mincut(g, tm);
  EXPECT_EQ(st.bound, cuts::CutBound::Exact);
  // Bridge capacity 1, demand 2 in one direction -> sparsity 1/2.
  EXPECT_NEAR(st.sparsity, 0.5, 1e-12);
  const cuts::CutResult exact =
      cuts::sparsest_cut_brute_force(g, tm, 1L << 20);
  EXPECT_EQ(exact.bound, cuts::CutBound::Exact);
  EXPECT_NEAR(st.sparsity, exact.sparsity, 1e-12);
}

TEST(ExactCuts, CappedBruteForceIsTaggedUpper) {
  const Network jf = make_jellyfish(20, 3, 1, 3);
  const TrafficMatrix tm = all_to_all(jf);
  // 2^19 - 1 candidate subsets > 1000: the enumeration is incomplete.
  const cuts::CutResult capped =
      cuts::sparsest_cut_brute_force(jf.graph, tm, 1000);
  EXPECT_EQ(capped.bound, cuts::CutBound::Upper);
}

TEST(ExactCuts, HeuristicsNeverBelowExactCutsOnSmallGraphs) {
  // The satellite property: on graphs small enough for complete
  // enumeration, no estimator — heuristic, exact s-t, or bisection — may
  // report a value below the true sparsest cut, and the flow lower bound
  // must bracket it from below.
  for (const std::uint64_t seed : {1ULL, 4ULL, 9ULL, 23ULL}) {
    const Network jf = make_jellyfish(12, 3, 1, seed);
    for (const TrafficMatrix& tm :
         {all_to_all(jf), longest_matching(jf), random_matching(jf, 1, seed)}) {
      const cuts::CutResult exact =
          cuts::sparsest_cut_brute_force(jf.graph, tm, 1L << 20);
      ASSERT_EQ(exact.bound, cuts::CutBound::Exact);
      for (const auto& r :
           {cuts::sparsest_cut_one_node(jf.graph, tm),
            cuts::sparsest_cut_two_node(jf.graph, tm),
            cuts::sparsest_cut_expanding(jf.graph, tm),
            cuts::sparsest_cut_eigenvector(jf.graph, tm),
            cuts::sparsest_cut_st_mincut(jf.graph, tm, 8, seed),
            cuts::bisection_sparsity(jf.graph, tm)}) {
        EXPECT_GE(r.sparsity + 1e-12, exact.sparsity)
            << r.method << " seed " << seed << " tm " << tm.name;
      }
      const cuts::CutResult lower =
          cuts::sparsest_cut_flow_lower_bound(jf.graph, tm);
      EXPECT_EQ(lower.bound, cuts::CutBound::Lower);
      EXPECT_LE(lower.sparsity, exact.sparsity + 1e-12) << "seed " << seed;
    }
  }
}

TEST(ExactCuts, StMincutUpperBoundsThroughput) {
  for (const std::uint64_t seed : {3ULL, 8ULL}) {
    const Network jf = make_jellyfish(14, 3, 1, seed);
    const TrafficMatrix tm = longest_matching(jf);
    const double thr = mcf::compute_throughput(jf, tm).throughput;
    const cuts::CutResult st = cuts::sparsest_cut_st_mincut(jf.graph, tm);
    EXPECT_GE(st.sparsity * (1.0 + 1e-9), thr) << "seed " << seed;
  }
}

TEST(ExactCuts, BisectionBoundTagsFollowThePath) {
  const Network small = make_jellyfish(10, 3, 1, 5);
  const TrafficMatrix tm_small = all_to_all(small);
  EXPECT_EQ(cuts::bisection_sparsity(small.graph, tm_small).bound,
            cuts::CutBound::Exact);
  const Network big = make_jellyfish(24, 3, 1, 5);
  const TrafficMatrix tm_big = all_to_all(big);
  const cuts::CutResult kl =
      cuts::bisection_sparsity(big.graph, tm_big, /*exact_max=*/18);
  EXPECT_EQ(kl.bound, cuts::CutBound::Upper);
  // The KL path must still produce a genuine balanced cut.
  int ones = 0;
  for (const auto s : kl.side) ones += s;
  EXPECT_EQ(ones, 12);
}

}  // namespace
}  // namespace tb
