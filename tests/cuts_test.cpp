#include <gtest/gtest.h>

#include <limits>

#include "cuts/bisection.h"
#include "cuts/sparsest_cut.h"
#include "mcf/throughput.h"
#include "tm/synthetic.h"
#include "topo/hypercube.h"
#include "topo/jellyfish.h"
#include "topo/natural.h"

namespace tb {
namespace {

Graph barbell(int clique) {
  Graph g(2 * clique);
  for (int u = 0; u < clique; ++u) {
    for (int v = u + 1; v < clique; ++v) {
      g.add_edge(u, v);
      g.add_edge(clique + u, clique + v);
    }
  }
  g.add_edge(0, clique);
  g.finalize();
  return g;
}

TEST(CutSparsity, HandMadeCut) {
  // Path 0-1-2, demand 0->2 weight 2. Cut {0} vs {1,2}: capacity 1 per
  // direction, crossing demand 2 forward only -> sparsity 1/2.
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.finalize();
  TrafficMatrix tm;
  tm.demands = {{0, 2, 2.0}};
  const std::vector<std::uint8_t> side{0, 1, 1};
  EXPECT_DOUBLE_EQ(cuts::cut_sparsity(g, tm, side), 0.5);
}

TEST(CutSparsity, NoCrossingDemandIsInfinite) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.finalize();
  TrafficMatrix tm;
  tm.demands = {{0, 1, 1.0}};
  const std::vector<std::uint8_t> side{0, 0, 1};
  EXPECT_EQ(cuts::cut_sparsity(g, tm, side),
            std::numeric_limits<double>::infinity());
}

TEST(CutSparsity, AsymmetricDemandTakesWorseDirection) {
  Graph g(2);
  g.add_edge(0, 1);
  g.finalize();
  TrafficMatrix tm;
  tm.demands = {{0, 1, 4.0}, {1, 0, 1.0}};
  const std::vector<std::uint8_t> side{0, 1};
  // Forward 1/4, reverse 1/1 -> min is 1/4.
  EXPECT_DOUBLE_EQ(cuts::cut_sparsity(g, tm, side), 0.25);
}

TEST(SparsestCut, BruteForceFindsBarbellBridge) {
  const Graph g = barbell(4);
  TrafficMatrix tm;
  // A2A-style demand between the two cliques.
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) {
      if (u != v) tm.demands.push_back({u, v, 1.0 / 8.0});
    }
  }
  const cuts::CutResult r = cuts::sparsest_cut_brute_force(g, tm);
  // Bridge cut: capacity 1, crossing demand 4*4/8 = 2 per direction.
  EXPECT_NEAR(r.sparsity, 0.5, 1e-12);
  int side1 = 0;
  for (const auto s : r.side) side1 += s;
  EXPECT_EQ(side1, 4);
}

TEST(SparsestCut, HeuristicsNeverBeatBruteForceOnSmallGraphs) {
  // On graphs small enough for exhaustive search, every heuristic's value
  // is >= the true sparsest cut.
  const Network jf = make_jellyfish(10, 3, 1, 3);
  const TrafficMatrix tm = longest_matching(jf);
  const cuts::CutResult exact =
      cuts::sparsest_cut_brute_force(jf.graph, tm, 1L << 20);
  for (const auto& r :
       {cuts::sparsest_cut_one_node(jf.graph, tm),
        cuts::sparsest_cut_two_node(jf.graph, tm),
        cuts::sparsest_cut_expanding(jf.graph, tm),
        cuts::sparsest_cut_eigenvector(jf.graph, tm)}) {
    EXPECT_GE(r.sparsity + 1e-12, exact.sparsity) << r.method;
  }
}

TEST(SparsestCut, EigenvectorFindsBarbellBridge) {
  const Graph g = barbell(5);
  TrafficMatrix tm;
  for (int u = 0; u < 10; ++u) {
    for (int v = 0; v < 10; ++v) {
      if (u != v) tm.demands.push_back({u, v, 0.1});
    }
  }
  const cuts::CutResult r = cuts::sparsest_cut_eigenvector(g, tm);
  // The sweep must discover the bridge cut (capacity 1, demand 5*5*0.1=2.5).
  EXPECT_NEAR(r.sparsity, 1.0 / 2.5, 1e-9);
}

TEST(SparsestCut, SurveyReportsWinners) {
  const Network jf = make_jellyfish(12, 3, 1, 9);
  const TrafficMatrix tm = longest_matching(jf);
  const cuts::SparseCutSurvey survey = cuts::best_sparse_cut(jf.graph, tm);
  EXPECT_EQ(survey.per_method.size(), 5u);
  EXPECT_FALSE(survey.winners.empty());
  for (const auto& [method, value] : survey.per_method) {
    EXPECT_GE(value + 1e-12, survey.best.sparsity) << method;
  }
}

TEST(SparsestCut, UpperBoundsThroughput) {
  // Any cut upper-bounds throughput (max-flow <= min-cut direction).
  for (const std::uint64_t seed : {1ULL, 5ULL, 7ULL}) {
    const Network jf = make_jellyfish(14, 3, 1, seed);
    const TrafficMatrix tm = longest_matching(jf);
    const double thr = mcf::compute_throughput(jf, tm).throughput;
    const cuts::SparseCutSurvey survey = cuts::best_sparse_cut(jf.graph, tm);
    EXPECT_GE(survey.best.sparsity * (1.0 + 1e-9), thr) << "seed " << seed;
  }
}

TEST(Bisection, ExactBalancedEnumeration) {
  const Graph g = barbell(3);  // 6 nodes; bridge is the min balanced cut
  TrafficMatrix tm;
  for (int u = 0; u < 6; ++u) {
    for (int v = 0; v < 6; ++v) {
      if (u != v) tm.demands.push_back({u, v, 1.0 / 6.0});
    }
  }
  const cuts::CutResult r = cuts::bisection_sparsity(g, tm);
  // Bridge: cap 1, demand 3*3/6 = 1.5 each way -> sparsity 2/3.
  EXPECT_NEAR(r.sparsity, 1.0 / 1.5, 1e-12);
  EXPECT_DOUBLE_EQ(cuts::bisection_capacity(g), 1.0);
}

TEST(Bisection, HypercubeCapacityClosedForm) {
  // d-cube bisection = n/2 edges.
  const Network hc = make_hypercube(4);
  EXPECT_DOUBLE_EQ(cuts::bisection_capacity(hc.graph), 8.0);
}

TEST(Bisection, KlPathFindsLargeGraphCut) {
  const Graph g = barbell(12);  // 24 nodes -> KL path
  TrafficMatrix tm;
  for (int u = 0; u < 24; ++u) {
    for (int v = 0; v < 24; ++v) {
      if (u != v) tm.demands.push_back({u, v, 1.0 / 24.0});
    }
  }
  const cuts::CutResult r = cuts::bisection_sparsity(g, tm, /*exact_max=*/18);
  EXPECT_NEAR(r.sparsity, 1.0 / 6.0, 1e-9);  // cap 1 / (12*12/24)
}

TEST(Bisection, CutCannotBeBelowSparsestCut) {
  const Network jf = make_jellyfish(12, 3, 1, 17);
  const TrafficMatrix tm = all_to_all(jf);
  const cuts::CutResult bis = cuts::bisection_sparsity(jf.graph, tm);
  const cuts::CutResult sparse =
      cuts::sparsest_cut_brute_force(jf.graph, tm, 1L << 16);
  EXPECT_GE(bis.sparsity + 1e-12, sparse.sparsity);
}

}  // namespace
}  // namespace tb
