// End-to-end integration tests: the full pipelines the bench binaries run,
// at miniature scale, with result-shape assertions from the paper.
#include <gtest/gtest.h>

#include <cmath>

#include "core/evaluator.h"
#include "core/registry.h"
#include "cuts/sparsest_cut.h"
#include "mcf/paths.h"
#include "mcf/throughput.h"
#include "tm/facebook.h"
#include "tm/synthetic.h"
#include "topo/fattree.h"
#include "topo/hypercube.h"
#include "topo/jellyfish.h"
#include "topo/theory_graphs.h"

namespace tb {
namespace {

TEST(Integration, RelativeThroughputPipelineIsDeterministic) {
  const Network net = family_representative(Family::Dragonfly, 64, 1);
  RelativeOptions opts;
  opts.random_trials = 2;
  opts.solve.epsilon = 0.05;
  opts.seed = 7;
  const RelativeResult a = relative_throughput(net, longest_matching(net), opts);
  const RelativeResult b = relative_throughput(net, longest_matching(net), opts);
  EXPECT_DOUBLE_EQ(a.relative, b.relative);
  EXPECT_DOUBLE_EQ(a.topo_throughput, b.topo_throughput);
}

TEST(Integration, FatTreeElephantAnomaly) {
  // Fig 10-12's core claim: with a few weight-10 elephants, the fat tree's
  // absolute throughput collapses by ~the weight ratio, while a same-size
  // random graph degrades much less.
  const Network ft = make_fat_tree(6);  // 54 servers, 45 switches
  const Network jf = make_same_equipment_random(ft, 3);
  mcf::SolveOptions opts;
  opts.epsilon = 0.05;

  const TrafficMatrix ft_base = longest_matching(ft);
  const TrafficMatrix jf_base = longest_matching(jf);
  const double ft_plain = mcf::compute_throughput(ft, ft_base, opts).throughput;
  const double jf_plain = mcf::compute_throughput(jf, jf_base, opts).throughput;
  const double ft_eleph =
      mcf::compute_throughput(ft, with_elephants(ft_base, 0.05, 10.0, 5), opts)
          .throughput;
  const double jf_eleph =
      mcf::compute_throughput(jf, with_elephants(jf_base, 0.05, 10.0, 5), opts)
          .throughput;

  const double ft_drop = ft_eleph / ft_plain;
  const double jf_drop = jf_eleph / jf_plain;
  // Fat tree: an elephant pins its ToR -> drop toward 1/10. Random graph:
  // non-local traffic shares every link -> much gentler drop.
  EXPECT_LT(ft_drop, 0.25);
  EXPECT_GT(jf_drop, ft_drop * 1.5);
}

TEST(Integration, ShufflingSkewedTmHelpsStructuredTopology) {
  // Fig 14's claim, miniaturized: on a hypercube, randomizing the skewed
  // TM-F placement does not hurt, and typically helps.
  const Network hc = make_hypercube(5);
  const std::vector<double> rack = synth_tm_frontend(32, 3);
  mcf::SolveOptions opts;
  opts.epsilon = 0.05;
  const double sampled =
      mcf::compute_throughput(hc, map_rack_tm(hc, rack, 32, 0), opts).throughput;
  double shuffled_best = 0.0;
  for (const std::uint64_t s : {11ULL, 12ULL, 13ULL}) {
    shuffled_best = std::max(
        shuffled_best,
        mcf::compute_throughput(hc, map_rack_tm(hc, rack, 32, s), opts)
            .throughput);
  }
  EXPECT_GE(shuffled_best, sampled * 0.95);
}

TEST(Integration, TheoryGraphsCutThroughputInversion) {
  // §II-B / Theorem 1: the uniform sparsest cut (A2A demands, as in the
  // theorem) overstates graph B's worst-case (LM) throughput by a larger
  // factor than graph A's — cut-based selection favours the wrong graph.
  // B's separation grows with the subdivision length p.
  const Network a = make_clustered_random(24, 5, 1, 5);
  const Network b = make_subdivided_expander(12, 2, 5, 5);
  mcf::SolveOptions opts;
  opts.epsilon = 0.04;
  const auto ratio = [&](const Network& net) {
    const double thr =
        mcf::compute_throughput(net, longest_matching(net), opts).throughput;
    const double cut =
        cuts::best_sparse_cut(net.graph, all_to_all(net)).best.sparsity;
    return cut / thr;
  };
  EXPECT_GT(ratio(b), ratio(a) * 1.3);
}

TEST(Integration, CountingEstimateBelowPathLpOnFatTree) {
  // Fig 15 comparisons 1 vs 2 in miniature.
  const Network ft = make_fat_tree(4);
  const TrafficMatrix tm = random_matching_servers(ft, 9);
  const auto sets = mcf::build_path_sets(ft.graph, tm, 4);
  const double lp = mcf::path_restricted_throughput(ft.graph, sets);
  const auto est = mcf::counting_throughput(ft.graph, sets);
  EXPECT_LE(est.minimum, lp * (1.0 + 1e-9));
}

TEST(Integration, FacebookPipelineEndToEnd) {
  // Registry -> representative -> rack TM -> relative throughput, for one
  // structured family and the expander baseline.
  const std::vector<double> rack = synth_tm_hadoop(64, 1);
  for (const Family f : {Family::Hypercube, Family::Jellyfish}) {
    const Network net = family_representative(f, 64, 1);
    const TrafficMatrix tm = map_rack_tm(net, rack, 64, 0);
    RelativeOptions opts;
    opts.random_trials = 2;
    opts.solve.epsilon = 0.06;
    const RelativeResult r = relative_throughput(net, tm, opts);
    EXPECT_GT(r.relative, 0.3) << family_name(f);
    EXPECT_LT(r.relative, 2.0) << family_name(f);
  }
}

TEST(Integration, ExpandersBeatStructuredAtEqualGearUnderLm) {
  // The paper's headline: at scale, expanders (Jellyfish et al.) beat
  // structured designs on the same equipment. Check hypercube vs its
  // same-equipment random graph under LM at 128 switches.
  const Network hc = make_hypercube(7);
  RelativeOptions opts;
  opts.random_trials = 3;
  opts.solve.epsilon = 0.06;
  const RelativeResult r = relative_throughput(hc, longest_matching(hc), opts);
  EXPECT_LT(r.relative, 0.9);  // paper Table I: 51% at its largest size
}

}  // namespace
}  // namespace tb
