#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "core/evaluator.h"
#include "exp/runner.h"
#include "exp/sweep.h"
#include "pool_test_env.h"
#include "tm/synthetic.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace tb {
namespace {

[[maybe_unused]] const int kForcePoolThreads = test_env::force_pool_threads();

/// A small, ExactLP-solvable sweep used throughout: hypercube instances
/// under A2A and LM.
exp::Sweep tiny_sweep(int trials, std::uint64_t base_seed = 5) {
  exp::Sweep s;
  s.topologies = {exp::representative_spec(Family::Hypercube, 16, 1)};
  s.tms = {exp::a2a_tm(), exp::longest_matching_tm()};
  s.trials = trials;
  s.base_seed = base_seed;
  return s;
}

TEST(Sweep, ExpansionIsTopologyMajor) {
  exp::Sweep s;
  s.topologies = {exp::representative_spec(Family::Hypercube, 16, 1),
                  exp::representative_spec(Family::FatTree, 16, 1)};
  s.tms = {exp::a2a_tm(), exp::random_matching_tm(1),
           exp::longest_matching_tm()};
  const std::vector<exp::Cell> cells = exp::expand(s);
  ASSERT_EQ(cells.size(), 6u);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, i);
    EXPECT_EQ(cells[i].topo, i / 3);
    EXPECT_EQ(cells[i].tm, i % 3);
  }
}

TEST(Sweep, LadderSpecsFilterAndLabel) {
  const std::vector<exp::TopoSpec> specs =
      exp::ladder_specs({Family::Hypercube}, 30, 130, 1);
  ASSERT_EQ(specs.size(), 3u);  // 32, 64, 128 servers
  const std::shared_ptr<const Network> n0 = specs[0].build();
  EXPECT_EQ(n0->total_servers(), 32);
  EXPECT_EQ(specs[0].label, n0->name);
  EXPECT_EQ(specs[2].build()->total_servers(), 128);
  // Repeated builds hand out the same instance, not a copy.
  EXPECT_EQ(specs[0].build().get(), n0.get());
}

TEST(Sweep, TmSpecsAreSeedDriven) {
  const std::shared_ptr<const Network> hc =
      exp::representative_spec(Family::Hypercube, 16, 1).build();
  const exp::TmSpec rm = exp::random_matching_tm(1);
  EXPECT_EQ(rm.label, "RM(1)");
  const TrafficMatrix a = rm.build(*hc, 7);
  const TrafficMatrix b = rm.build(*hc, 7);
  ASSERT_EQ(a.demands.size(), b.demands.size());
  for (std::size_t i = 0; i < a.demands.size(); ++i) {
    EXPECT_EQ(a.demands[i].src, b.demands[i].src);
    EXPECT_EQ(a.demands[i].dst, b.demands[i].dst);
  }
}

TEST(Runner, CacheAnswersRepeatedCellsWithoutReevaluating) {
  const exp::Sweep sweep = tiny_sweep(/*trials=*/0);
  exp::Runner runner;
  const exp::ResultSet first = runner.run(sweep);
  EXPECT_EQ(runner.cache_stats().misses, 2u);
  EXPECT_EQ(runner.cache_stats().hits, 0u);
  const exp::ResultSet second = runner.run(sweep);
  EXPECT_EQ(runner.cache_stats().misses, 2u);  // same cells evaluated once
  EXPECT_EQ(runner.cache_stats().hits, 2u);
  EXPECT_EQ(first.to_csv(), second.to_csv());
}

// Guards the allow(unordered-container) marker on Runner::cache_: the
// cache is an unordered_map, so this pins the claim that its iteration
// (bucket) order cannot leak into emitted CSV bytes. Two runners reach
// the same cache *contents* through different insertion orders — one
// evaluates the grid front to back, the other back shard first — and the
// fully-cached replay must still emit byte-identical CSV.
TEST(Runner, CacheInsertionOrderCannotLeakIntoCsvBytes) {
  const exp::Sweep sweep = tiny_sweep(/*trials=*/0);
  exp::Runner forward;
  const std::string baseline = forward.run(sweep).to_csv();

  exp::Runner reversed;
  exp::RunOptions back;
  back.shard = exp::ShardSpec{1, 2};
  exp::RunOptions front;
  front.shard = exp::ShardSpec{0, 2};
  (void)reversed.run(sweep, back);   // cell 1 inserted first
  (void)reversed.run(sweep, front);  // then cell 0
  const std::string replayed = reversed.run(sweep).to_csv();
  EXPECT_EQ(reversed.cache_stats().hits, 2u);  // pure cache replay
  EXPECT_EQ(replayed, baseline);
}

TEST(Runner, CacheDistinguishesSolverAndTrialConfig) {
  exp::Sweep sweep = tiny_sweep(/*trials=*/0);
  exp::Runner runner;
  (void)runner.run(sweep);
  exp::Sweep tighter = sweep;
  tighter.solve.kind = mcf::SolverKind::ExactLP;
  (void)runner.run(tighter);
  // Different solver configuration must not be answered from the cache.
  EXPECT_EQ(runner.cache_stats().misses, 4u);
}

TEST(Runner, SerialAndParallelProduceIdenticalCsv) {
  // The driver-level CTest entry diffs TOPOBENCH_THREADS=1 against the
  // default pool across processes; this covers the in-process half of the
  // contract (cell distribution must not affect results).
  if (ThreadPool::shared().size() <= 1) {
    GTEST_SKIP() << "shared pool has one worker (TOPOBENCH_THREADS "
                    "override?); parallel path would not be exercised";
  }
  const exp::Sweep sweep = tiny_sweep(/*trials=*/2);
  exp::Runner serial(/*parallel=*/false);
  exp::Runner parallel(/*parallel=*/true);
  EXPECT_EQ(serial.run(sweep).to_csv(), parallel.run(sweep).to_csv());
}

TEST(Runner, RelativeCellsMatchDirectEvaluatorCall) {
  // The runner must be a pure orchestrator: a relative cell's numbers are
  // exactly relative_throughput with the documented seed derivation
  // (cell_seed = mix_seed(base, cell), trial t = mix_seed(base, cell, t)).
  const exp::Sweep sweep = tiny_sweep(/*trials=*/2, /*base_seed=*/42);
  exp::Runner runner;
  const exp::ResultSet rs = runner.run(sweep);
  ASSERT_EQ(rs.size(), 2u);
  const std::shared_ptr<const Network> built = sweep.topologies[0].build();
  const Network& net = *built;
  for (std::size_t cell = 0; cell < 2; ++cell) {
    const std::uint64_t cell_seed = mix_seed(sweep.base_seed, cell);
    const TrafficMatrix tm =
        sweep.tms[cell].build(net, mix_seed(cell_seed, 0));
    RelativeOptions opts;
    opts.random_trials = sweep.trials;
    opts.seed = cell_seed;
    opts.solve = sweep.solve;
    const RelativeResult expected = relative_throughput(net, tm, opts);
    const exp::CellResult& got = rs.rows()[cell];
    EXPECT_EQ(got.seed, cell_seed);
    EXPECT_DOUBLE_EQ(got.throughput, expected.topo_throughput);
    EXPECT_DOUBLE_EQ(got.relative, expected.relative);
    EXPECT_DOUBLE_EQ(got.random_mean, expected.random_throughput.mean);
  }
}

TEST(Results, CsvRoundTripsExactlyIncludingSentinels) {
  exp::ResultSet rs;
  exp::CellResult a;
  a.cell = 0;
  a.topology = "BCube(n=2,k=3)";  // comma forces quoting
  a.servers = 16;
  a.switches = 48;
  a.tm = "A2A";
  a.seed = 123456789012345ULL;
  a.solver = "auto(eps=0.05)";
  a.trials = 0;
  a.throughput = 1.0 / 3.0;  // exercises 17-digit round-trip
  rs.add(a);
  exp::CellResult b = a;
  b.cell = 1;
  b.topology = "weird \"quoted\"\nmultiline name";
  b.tm = "LM";
  b.trials = 1;
  b.random_mean = 0.75;
  b.random_ci95 = std::numeric_limits<double>::quiet_NaN();
  b.relative = 4.0 / 9.0;
  b.relative_ci95 = std::numeric_limits<double>::quiet_NaN();
  b.cut_bound = 5.0 / 7.0;
  b.cut_gap = (5.0 / 7.0) / (1.0 / 3.0);
  b.cut_method = "st-mincut(exact)";
  b.scenario = "fail(f=0.1)";
  b.failed_links = 4;
  b.throughput_drop = 2.0 / 7.0;
  b.risk_group = 3;
  b.tm_scale = 1.5;
  b.growth_step = 2;
  b.pivots = 123;
  b.phases = 456;
  b.dijkstras = 789;
  b.pushes = 1011;
  b.relabels = 1213;
  b.global_relabels = 14;
  b.warm = 1;
  rs.add(b);

  const std::string csv = rs.to_csv();
  EXPECT_NE(csv.find("\"BCube(n=2,k=3)\""), std::string::npos);
  EXPECT_NE(csv.find(",na,"), std::string::npos);

  const exp::ResultSet back = exp::ResultSet::from_csv(csv);
  ASSERT_EQ(back.size(), 2u);
  const exp::CellResult& ra = back.rows()[0];
  EXPECT_EQ(ra.topology, a.topology);
  EXPECT_EQ(ra.seed, a.seed);
  EXPECT_EQ(ra.solver, a.solver);
  EXPECT_DOUBLE_EQ(ra.throughput, a.throughput);
  EXPECT_TRUE(std::isnan(ra.random_mean));
  EXPECT_TRUE(std::isnan(ra.cut_bound));
  EXPECT_TRUE(ra.cut_method.empty());
  // The absolute cell keeps the failure/stat sentinels and defaults.
  EXPECT_TRUE(ra.scenario.empty());
  EXPECT_EQ(ra.failed_links, -1);  // "na" in CSV: 0 is a real count
  EXPECT_TRUE(std::isnan(ra.throughput_drop));
  EXPECT_EQ(ra.risk_group, -1);  // same sentinel rule as failed_links
  EXPECT_TRUE(std::isnan(ra.tm_scale));
  EXPECT_EQ(ra.growth_step, -1);
  EXPECT_EQ(ra.warm, 0);
  const exp::CellResult& rb = back.rows()[1];
  EXPECT_EQ(rb.topology, b.topology);
  EXPECT_DOUBLE_EQ(rb.relative, b.relative);
  EXPECT_TRUE(std::isnan(rb.relative_ci95));
  EXPECT_DOUBLE_EQ(rb.cut_bound, b.cut_bound);
  EXPECT_DOUBLE_EQ(rb.cut_gap, b.cut_gap);
  EXPECT_EQ(rb.cut_method, b.cut_method);
  EXPECT_EQ(rb.scenario, b.scenario);
  EXPECT_EQ(rb.failed_links, b.failed_links);
  EXPECT_DOUBLE_EQ(rb.throughput_drop, b.throughput_drop);
  EXPECT_EQ(rb.risk_group, b.risk_group);
  EXPECT_DOUBLE_EQ(rb.tm_scale, b.tm_scale);
  EXPECT_EQ(rb.growth_step, b.growth_step);
  EXPECT_EQ(rb.pivots, b.pivots);
  EXPECT_EQ(rb.phases, b.phases);
  EXPECT_EQ(rb.dijkstras, b.dijkstras);
  EXPECT_EQ(rb.pushes, b.pushes);
  EXPECT_EQ(rb.relabels, b.relabels);
  EXPECT_EQ(rb.global_relabels, b.global_relabels);
  EXPECT_EQ(rb.warm, b.warm);
  // Re-serializing is byte-stable (the determinism the CTest diff relies on).
  EXPECT_EQ(back.to_csv(), csv);
}

TEST(Runner, CallerAuthoredSpecLabelIsRowIdentity) {
  // A spec whose label differs from the built network's name must still
  // produce rows addressable by the label (the documented identity).
  exp::Sweep sweep;
  const exp::TopoSpec registry =
      exp::representative_spec(Family::Hypercube, 16, 1);
  sweep.topologies = {{"hc16", registry.build}};
  sweep.tms = {exp::a2a_tm()};
  exp::Runner runner;
  const exp::ResultSet rs = runner.run(sweep);
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs.rows()[0].topology, "hc16");
  EXPECT_GT(rs.at("hc16", "A2A").throughput, 0.0);
}

TEST(Results, JsonRendersSentinelAsNull) {
  exp::ResultSet rs;
  exp::CellResult r;
  r.topology = "Hypercube(d=4)";
  r.tm = "LM";
  r.throughput = 0.5;
  rs.add(r);
  const std::string json = rs.to_json();
  EXPECT_NE(json.find("\"topology\": \"Hypercube(d=4)\""), std::string::npos);
  EXPECT_NE(json.find("\"random_mean\": null"), std::string::npos);
  EXPECT_NE(json.find("\"throughput\": 0.5"), std::string::npos);
}

TEST(Results, JsonEscapesControlCharactersAndNonFinite) {
  exp::ResultSet rs;
  exp::CellResult r;
  r.topology = "line1\nline2\ttab";
  r.tm = "LM";
  r.cut_bound = std::numeric_limits<double>::infinity();
  rs.add(r);
  const std::string json = rs.to_json();
  // Raw control characters are illegal inside JSON string literals and
  // Infinity has no literal; both must be rendered escaped / null.
  EXPECT_NE(json.find("line1\\nline2\\ttab"), std::string::npos);
  EXPECT_EQ(json.find("line1\nline2"), std::string::npos);
  EXPECT_NE(json.find("\"cut_bound\": null"), std::string::npos);
}

TEST(Results, AtFindsCellAndThrowsOnMiss) {
  const exp::Sweep sweep = tiny_sweep(/*trials=*/0);
  exp::Runner runner;
  const exp::ResultSet rs = runner.run(sweep);
  const exp::CellResult& cell = rs.at(sweep.topologies[0].label, "LM");
  EXPECT_EQ(cell.tm, "LM");
  EXPECT_GT(cell.throughput, 0.0);
  EXPECT_THROW(rs.at("nope", "A2A"), std::out_of_range);
}

TEST(Runner, CutBoundColumnsFilledWhenEnabled) {
  exp::Sweep sweep = tiny_sweep(/*trials=*/0);
  sweep.cut_bounds = true;
  exp::Runner runner;
  const exp::ResultSet rs = runner.run(sweep);
  ASSERT_EQ(rs.size(), 2u);
  for (const exp::CellResult& r : rs.rows()) {
    // Hypercube(16) under A2A/LM solves via ExactLP, so the certified cut
    // bound must sit at or above the exact throughput.
    EXPECT_FALSE(std::isnan(r.cut_bound)) << r.tm;
    EXPECT_GE(r.cut_bound * (1.0 + 1e-9), r.throughput) << r.tm;
    EXPECT_DOUBLE_EQ(r.cut_gap, r.cut_bound / r.throughput);
    EXPECT_FALSE(r.cut_method.empty());
    EXPECT_NE(r.cut_method.find('('), std::string::npos) << r.cut_method;
  }
  // Disabled sweeps must keep the sentinel (and a distinct cache entry).
  exp::Sweep off = tiny_sweep(/*trials=*/0);
  const exp::ResultSet rs_off = runner.run(off);
  EXPECT_TRUE(std::isnan(rs_off.rows()[0].cut_bound));
  EXPECT_TRUE(rs_off.rows()[0].cut_method.empty());
  EXPECT_EQ(runner.cache_stats().hits, 0u);
  EXPECT_EQ(runner.cache_stats().misses, 4u);
}

TEST(Sweep, ExpansionGainsScenarioAxisInFailuresMode) {
  exp::Sweep s;
  s.topologies = {exp::representative_spec(Family::Hypercube, 16, 1),
                  exp::representative_spec(Family::FatTree, 16, 1)};
  s.tms = {exp::a2a_tm(), exp::longest_matching_tm()};
  s.scenarios = exp::random_failure_scenarios({0.1, 0.2});
  s.scenarios.push_back(exp::degrade_scenario(0.5));
  const std::vector<exp::Cell> cells = exp::expand(s);
  ASSERT_EQ(cells.size(), 12u);  // 2 topos x 2 tms x 3 scenarios
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, i);
    EXPECT_EQ(cells[i].topo, i / 6);
    EXPECT_EQ(cells[i].tm, (i / 3) % 2);
    EXPECT_EQ(cells[i].scenario, i % 3);
  }
  EXPECT_EQ(s.scenarios[0].label, "fail(f=0.1)");
  EXPECT_EQ(s.scenarios[2].label, "degrade(c=0.5)");
}

TEST(Runner, FailureCellsFillScenarioColumnsDeterministically) {
  exp::Sweep sweep = tiny_sweep(/*trials=*/0);
  sweep.scenarios = exp::random_failure_scenarios({0.15});
  sweep.scenarios.push_back(exp::degrade_scenario(0.5));
  exp::Runner serial(/*parallel=*/false);
  const exp::ResultSet rs = serial.run(sweep);
  ASSERT_EQ(rs.size(), 4u);  // 1 topo x 2 tms x 2 scenarios
  for (const exp::CellResult& r : rs.rows()) {
    EXPECT_FALSE(r.scenario.empty());
    EXPECT_GE(r.failed_links, 0);
    EXPECT_FALSE(std::isnan(r.throughput_drop)) << r.scenario;
    if (r.scenario == "degrade(c=0.5)") {
      EXPECT_EQ(r.failed_links, 0);
      // Halving every capacity exactly halves the (here exact) optimum.
      EXPECT_NEAR(r.throughput_drop, 0.5, 1e-6) << r.tm;
    } else {
      EXPECT_GT(r.failed_links, 0);  // 15% of a hypercube's edges
      EXPECT_GE(r.throughput_drop, -1e-9);
    }
  }
  // The in-process contract: parallel cell distribution must not change a
  // single byte of the emitted CSV (failure sampling is per-cell seeded).
  if (ThreadPool::shared().size() > 1) {
    exp::Runner parallel(/*parallel=*/true);
    EXPECT_EQ(parallel.run(sweep).to_csv(), rs.to_csv());
  }
}

TEST(Runner, FailureCacheKeysIncludeScenarioAxisShape) {
  // A failure cell's TM comes from its group's scenario-0 cell stream, so
  // its result depends on the scenario-axis shape, not just its own
  // scenario label. Sweeps A = [p, q, r] and B = [q, p] place label p at
  // the same flat index (group 1, indices 3 vs 3) with the same cell seed
  // but different group TM streams — without the scenario list in the
  // cache fingerprint, B would be answered with A's row. Random-matching
  // TMs make the group stream actually matter.
  exp::Sweep a = tiny_sweep(/*trials=*/0);
  a.tms = {exp::random_matching_tm(1), exp::random_matching_tm(2)};
  a.scenarios = {exp::degrade_scenario(0.5), exp::degrade_scenario(0.8),
                 exp::degrade_scenario(0.9)};
  exp::Sweep b = a;
  b.scenarios = {exp::degrade_scenario(0.8), exp::degrade_scenario(0.5)};

  exp::Runner shared_runner;
  (void)shared_runner.run(a);
  const std::string b_after_a = shared_runner.run(b).to_csv();
  exp::Runner fresh_runner;
  EXPECT_EQ(fresh_runner.run(b).to_csv(), b_after_a);
}

TEST(Runner, WarmChainsAreDeterministicAndFlagged) {
  exp::Sweep sweep = tiny_sweep(/*trials=*/0);
  sweep.solve.kind = mcf::SolverKind::GargKonemann;  // exercise GK sessions
  sweep.warm_start = true;
  exp::Runner serial(/*parallel=*/false);
  const exp::ResultSet rs = serial.run(sweep);
  ASSERT_EQ(rs.size(), 2u);
  for (const exp::CellResult& r : rs.rows()) {
    EXPECT_EQ(r.warm, 1);  // whole chain runs in session mode
    EXPECT_GT(r.throughput, 0.0);
    EXPECT_GT(r.phases, 0);
  }
  if (ThreadPool::shared().size() > 1) {
    exp::Runner parallel(/*parallel=*/true);
    EXPECT_EQ(parallel.run(sweep).to_csv(), rs.to_csv());
  }
  // Warm results are cached under a distinct fingerprint: a cold re-run of
  // the same grid must not be answered from warm entries (or vice versa).
  exp::Sweep cold = sweep;
  cold.warm_start = false;
  exp::Runner runner;
  (void)runner.run(sweep);
  (void)runner.run(cold);
  EXPECT_EQ(runner.cache_stats().misses, 4u);
  // A warm re-run hits only when the whole chain is cached.
  (void)runner.run(sweep);
  EXPECT_EQ(runner.cache_stats().hits, 2u);
}

TEST(Runner, WarmCacheKeysIncludeChainIdentity) {
  // A warm cell's value depends on its chain prefix: two warm sweeps that
  // share a (topology, TM, index) cell but differ in the preceding TM must
  // not collide on one cache entry — an exact re-run of either sweep has
  // to reproduce that sweep's own bytes.
  exp::Sweep a = tiny_sweep(/*trials=*/0);  // {A2A, LM}
  a.solve.kind = mcf::SolverKind::GargKonemann;
  a.warm_start = true;
  exp::Sweep b = a;
  b.tms = {exp::random_matching_tm(1), exp::longest_matching_tm()};
  exp::Runner runner;
  (void)runner.run(a);
  const std::string b_first = runner.run(b).to_csv();
  EXPECT_EQ(runner.cache_stats().hits, 0u);  // no cross-chain answers
  EXPECT_EQ(runner.cache_stats().misses, 4u);
  EXPECT_EQ(runner.run(b).to_csv(), b_first);  // exact re-run, b's own bytes
  EXPECT_EQ(runner.cache_stats().hits, 2u);
}

TEST(Runner, ModeValidationRejectsUnsupportedCombinations) {
  exp::Runner runner;
  exp::Sweep failures = tiny_sweep(/*trials=*/2);
  failures.scenarios = exp::random_failure_scenarios({0.1});
  EXPECT_THROW(runner.run(failures), std::invalid_argument);  // trials > 0
  failures.trials = 0;
  failures.cut_bounds = true;
  EXPECT_THROW(runner.run(failures), std::invalid_argument);
  failures.cut_bounds = false;
  failures.warm_start = true;
  EXPECT_THROW(runner.run(failures), std::invalid_argument);
  failures.warm_start = false;
  failures.scenarios[0].label.clear();
  EXPECT_THROW(runner.run(failures), std::invalid_argument);  // empty label

  exp::Sweep warm = tiny_sweep(/*trials=*/2);
  warm.warm_start = true;
  EXPECT_THROW(runner.run(warm), std::invalid_argument);  // relative + warm
  warm.trials = 0;
  warm.cut_bounds = true;
  EXPECT_THROW(runner.run(warm), std::invalid_argument);
}

TEST(Rng, ThreeWayMixMatchesNestedTwoWayMix) {
  EXPECT_EQ(mix_seed(1, 2, 3), mix_seed(mix_seed(1, 2), 3));
  EXPECT_NE(mix_seed(1, 2, 3), mix_seed(1, 3, 2));
}

}  // namespace
}  // namespace tb
