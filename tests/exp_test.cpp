#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "core/evaluator.h"
#include "exp/runner.h"
#include "exp/sweep.h"
#include "pool_test_env.h"
#include "tm/synthetic.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace tb {
namespace {

[[maybe_unused]] const int kForcePoolThreads = test_env::force_pool_threads();

/// A small, ExactLP-solvable sweep used throughout: hypercube instances
/// under A2A and LM.
exp::Sweep tiny_sweep(int trials, std::uint64_t base_seed = 5) {
  exp::Sweep s;
  s.topologies = {exp::representative_spec(Family::Hypercube, 16, 1)};
  s.tms = {exp::a2a_tm(), exp::longest_matching_tm()};
  s.trials = trials;
  s.base_seed = base_seed;
  return s;
}

TEST(Sweep, ExpansionIsTopologyMajor) {
  exp::Sweep s;
  s.topologies = {exp::representative_spec(Family::Hypercube, 16, 1),
                  exp::representative_spec(Family::FatTree, 16, 1)};
  s.tms = {exp::a2a_tm(), exp::random_matching_tm(1),
           exp::longest_matching_tm()};
  const std::vector<exp::Cell> cells = exp::expand(s);
  ASSERT_EQ(cells.size(), 6u);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, i);
    EXPECT_EQ(cells[i].topo, i / 3);
    EXPECT_EQ(cells[i].tm, i % 3);
  }
}

TEST(Sweep, LadderSpecsFilterAndLabel) {
  const std::vector<exp::TopoSpec> specs =
      exp::ladder_specs({Family::Hypercube}, 30, 130, 1);
  ASSERT_EQ(specs.size(), 3u);  // 32, 64, 128 servers
  const std::shared_ptr<const Network> n0 = specs[0].build();
  EXPECT_EQ(n0->total_servers(), 32);
  EXPECT_EQ(specs[0].label, n0->name);
  EXPECT_EQ(specs[2].build()->total_servers(), 128);
  // Repeated builds hand out the same instance, not a copy.
  EXPECT_EQ(specs[0].build().get(), n0.get());
}

TEST(Sweep, TmSpecsAreSeedDriven) {
  const std::shared_ptr<const Network> hc =
      exp::representative_spec(Family::Hypercube, 16, 1).build();
  const exp::TmSpec rm = exp::random_matching_tm(1);
  EXPECT_EQ(rm.label, "RM(1)");
  const TrafficMatrix a = rm.build(*hc, 7);
  const TrafficMatrix b = rm.build(*hc, 7);
  ASSERT_EQ(a.demands.size(), b.demands.size());
  for (std::size_t i = 0; i < a.demands.size(); ++i) {
    EXPECT_EQ(a.demands[i].src, b.demands[i].src);
    EXPECT_EQ(a.demands[i].dst, b.demands[i].dst);
  }
}

TEST(Runner, CacheAnswersRepeatedCellsWithoutReevaluating) {
  const exp::Sweep sweep = tiny_sweep(/*trials=*/0);
  exp::Runner runner;
  const exp::ResultSet first = runner.run(sweep);
  EXPECT_EQ(runner.cache_stats().misses, 2u);
  EXPECT_EQ(runner.cache_stats().hits, 0u);
  const exp::ResultSet second = runner.run(sweep);
  EXPECT_EQ(runner.cache_stats().misses, 2u);  // same cells evaluated once
  EXPECT_EQ(runner.cache_stats().hits, 2u);
  EXPECT_EQ(first.to_csv(), second.to_csv());
}

TEST(Runner, CacheDistinguishesSolverAndTrialConfig) {
  exp::Sweep sweep = tiny_sweep(/*trials=*/0);
  exp::Runner runner;
  (void)runner.run(sweep);
  exp::Sweep tighter = sweep;
  tighter.solve.kind = mcf::SolverKind::ExactLP;
  (void)runner.run(tighter);
  // Different solver configuration must not be answered from the cache.
  EXPECT_EQ(runner.cache_stats().misses, 4u);
}

TEST(Runner, SerialAndParallelProduceIdenticalCsv) {
  // The driver-level CTest entry diffs TOPOBENCH_THREADS=1 against the
  // default pool across processes; this covers the in-process half of the
  // contract (cell distribution must not affect results).
  if (ThreadPool::shared().size() <= 1) {
    GTEST_SKIP() << "shared pool has one worker (TOPOBENCH_THREADS "
                    "override?); parallel path would not be exercised";
  }
  const exp::Sweep sweep = tiny_sweep(/*trials=*/2);
  exp::Runner serial(/*parallel=*/false);
  exp::Runner parallel(/*parallel=*/true);
  EXPECT_EQ(serial.run(sweep).to_csv(), parallel.run(sweep).to_csv());
}

TEST(Runner, RelativeCellsMatchDirectEvaluatorCall) {
  // The runner must be a pure orchestrator: a relative cell's numbers are
  // exactly relative_throughput with the documented seed derivation
  // (cell_seed = mix_seed(base, cell), trial t = mix_seed(base, cell, t)).
  const exp::Sweep sweep = tiny_sweep(/*trials=*/2, /*base_seed=*/42);
  exp::Runner runner;
  const exp::ResultSet rs = runner.run(sweep);
  ASSERT_EQ(rs.size(), 2u);
  const std::shared_ptr<const Network> built = sweep.topologies[0].build();
  const Network& net = *built;
  for (std::size_t cell = 0; cell < 2; ++cell) {
    const std::uint64_t cell_seed = mix_seed(sweep.base_seed, cell);
    const TrafficMatrix tm =
        sweep.tms[cell].build(net, mix_seed(cell_seed, 0));
    RelativeOptions opts;
    opts.random_trials = sweep.trials;
    opts.seed = cell_seed;
    opts.solve = sweep.solve;
    const RelativeResult expected = relative_throughput(net, tm, opts);
    const exp::CellResult& got = rs.rows()[cell];
    EXPECT_EQ(got.seed, cell_seed);
    EXPECT_DOUBLE_EQ(got.throughput, expected.topo_throughput);
    EXPECT_DOUBLE_EQ(got.relative, expected.relative);
    EXPECT_DOUBLE_EQ(got.random_mean, expected.random_throughput.mean);
  }
}

TEST(Results, CsvRoundTripsExactlyIncludingSentinels) {
  exp::ResultSet rs;
  exp::CellResult a;
  a.cell = 0;
  a.topology = "BCube(n=2,k=3)";  // comma forces quoting
  a.servers = 16;
  a.switches = 48;
  a.tm = "A2A";
  a.seed = 123456789012345ULL;
  a.solver = "auto(eps=0.05)";
  a.trials = 0;
  a.throughput = 1.0 / 3.0;  // exercises 17-digit round-trip
  rs.add(a);
  exp::CellResult b = a;
  b.cell = 1;
  b.topology = "weird \"quoted\"\nmultiline name";
  b.tm = "LM";
  b.trials = 1;
  b.random_mean = 0.75;
  b.random_ci95 = std::numeric_limits<double>::quiet_NaN();
  b.relative = 4.0 / 9.0;
  b.relative_ci95 = std::numeric_limits<double>::quiet_NaN();
  b.cut_bound = 5.0 / 7.0;
  b.cut_gap = (5.0 / 7.0) / (1.0 / 3.0);
  b.cut_method = "st-mincut(exact)";
  rs.add(b);

  const std::string csv = rs.to_csv();
  EXPECT_NE(csv.find("\"BCube(n=2,k=3)\""), std::string::npos);
  EXPECT_NE(csv.find(",na,"), std::string::npos);

  const exp::ResultSet back = exp::ResultSet::from_csv(csv);
  ASSERT_EQ(back.size(), 2u);
  const exp::CellResult& ra = back.rows()[0];
  EXPECT_EQ(ra.topology, a.topology);
  EXPECT_EQ(ra.seed, a.seed);
  EXPECT_EQ(ra.solver, a.solver);
  EXPECT_DOUBLE_EQ(ra.throughput, a.throughput);
  EXPECT_TRUE(std::isnan(ra.random_mean));
  EXPECT_TRUE(std::isnan(ra.cut_bound));
  EXPECT_TRUE(ra.cut_method.empty());
  const exp::CellResult& rb = back.rows()[1];
  EXPECT_EQ(rb.topology, b.topology);
  EXPECT_DOUBLE_EQ(rb.relative, b.relative);
  EXPECT_TRUE(std::isnan(rb.relative_ci95));
  EXPECT_DOUBLE_EQ(rb.cut_bound, b.cut_bound);
  EXPECT_DOUBLE_EQ(rb.cut_gap, b.cut_gap);
  EXPECT_EQ(rb.cut_method, b.cut_method);
  // Re-serializing is byte-stable (the determinism the CTest diff relies on).
  EXPECT_EQ(back.to_csv(), csv);
}

TEST(Runner, CallerAuthoredSpecLabelIsRowIdentity) {
  // A spec whose label differs from the built network's name must still
  // produce rows addressable by the label (the documented identity).
  exp::Sweep sweep;
  const exp::TopoSpec registry =
      exp::representative_spec(Family::Hypercube, 16, 1);
  sweep.topologies = {{"hc16", registry.build}};
  sweep.tms = {exp::a2a_tm()};
  exp::Runner runner;
  const exp::ResultSet rs = runner.run(sweep);
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs.rows()[0].topology, "hc16");
  EXPECT_GT(rs.at("hc16", "A2A").throughput, 0.0);
}

TEST(Results, JsonRendersSentinelAsNull) {
  exp::ResultSet rs;
  exp::CellResult r;
  r.topology = "Hypercube(d=4)";
  r.tm = "LM";
  r.throughput = 0.5;
  rs.add(r);
  const std::string json = rs.to_json();
  EXPECT_NE(json.find("\"topology\": \"Hypercube(d=4)\""), std::string::npos);
  EXPECT_NE(json.find("\"random_mean\": null"), std::string::npos);
  EXPECT_NE(json.find("\"throughput\": 0.5"), std::string::npos);
}

TEST(Results, JsonEscapesControlCharactersAndNonFinite) {
  exp::ResultSet rs;
  exp::CellResult r;
  r.topology = "line1\nline2\ttab";
  r.tm = "LM";
  r.cut_bound = std::numeric_limits<double>::infinity();
  rs.add(r);
  const std::string json = rs.to_json();
  // Raw control characters are illegal inside JSON string literals and
  // Infinity has no literal; both must be rendered escaped / null.
  EXPECT_NE(json.find("line1\\nline2\\ttab"), std::string::npos);
  EXPECT_EQ(json.find("line1\nline2"), std::string::npos);
  EXPECT_NE(json.find("\"cut_bound\": null"), std::string::npos);
}

TEST(Results, AtFindsCellAndThrowsOnMiss) {
  const exp::Sweep sweep = tiny_sweep(/*trials=*/0);
  exp::Runner runner;
  const exp::ResultSet rs = runner.run(sweep);
  const exp::CellResult& cell = rs.at(sweep.topologies[0].label, "LM");
  EXPECT_EQ(cell.tm, "LM");
  EXPECT_GT(cell.throughput, 0.0);
  EXPECT_THROW(rs.at("nope", "A2A"), std::out_of_range);
}

TEST(Runner, CutBoundColumnsFilledWhenEnabled) {
  exp::Sweep sweep = tiny_sweep(/*trials=*/0);
  sweep.cut_bounds = true;
  exp::Runner runner;
  const exp::ResultSet rs = runner.run(sweep);
  ASSERT_EQ(rs.size(), 2u);
  for (const exp::CellResult& r : rs.rows()) {
    // Hypercube(16) under A2A/LM solves via ExactLP, so the certified cut
    // bound must sit at or above the exact throughput.
    EXPECT_FALSE(std::isnan(r.cut_bound)) << r.tm;
    EXPECT_GE(r.cut_bound * (1.0 + 1e-9), r.throughput) << r.tm;
    EXPECT_DOUBLE_EQ(r.cut_gap, r.cut_bound / r.throughput);
    EXPECT_FALSE(r.cut_method.empty());
    EXPECT_NE(r.cut_method.find('('), std::string::npos) << r.cut_method;
  }
  // Disabled sweeps must keep the sentinel (and a distinct cache entry).
  exp::Sweep off = tiny_sweep(/*trials=*/0);
  const exp::ResultSet rs_off = runner.run(off);
  EXPECT_TRUE(std::isnan(rs_off.rows()[0].cut_bound));
  EXPECT_TRUE(rs_off.rows()[0].cut_method.empty());
  EXPECT_EQ(runner.cache_stats().hits, 0u);
  EXPECT_EQ(runner.cache_stats().misses, 4u);
}

TEST(Rng, ThreeWayMixMatchesNestedTwoWayMix) {
  EXPECT_EQ(mix_seed(1, 2, 3), mix_seed(mix_seed(1, 2), 3));
  EXPECT_NE(mix_seed(1, 2, 3), mix_seed(1, 3, 2));
}

}  // namespace
}  // namespace tb
