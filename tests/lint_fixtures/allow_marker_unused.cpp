// Fixture (never compiled): a well-formed marker that suppresses nothing
// is reported, so stale exceptions cannot accumulate.
#include <cstdint>

// topobench-lint: allow(banned-random) nothing random happens below
std::uint64_t quiet(std::uint64_t x) { return x; }
