// Fixture (never compiled): malformed markers are findings themselves,
// and a malformed marker suppresses nothing.
#include <cstdint>

// topobench-lint: allow(not-a-rule) unknown rule ids are rejected
std::uint64_t unknown_rule(std::uint64_t seed) { return seed + 1; }

// topobench-lint: allow(seed-arith)
std::uint64_t missing_justification(std::uint64_t seed) { return seed + 2; }

// topobench-lint: allowed(seed-arith) misspelled keyword
std::uint64_t bad_keyword(std::uint64_t seed) { return seed + 3; }
