// Fixture (never compiled): par-policy positives.
#include <algorithm>
#include <execution>  // line 3: hit
#include <vector>

void unordered_work(std::vector<double>& xs) {
  std::sort(std::execution::par, xs.begin(), xs.end());       // line 7: hit
  std::for_each(std::execution::par_unseq, xs.begin(),        // line 8: hit
                xs.end(), [](double& x) { x *= 2.0; });
}
