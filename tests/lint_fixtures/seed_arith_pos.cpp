// Fixture (never compiled): seed-arith positives.
#include <cstdint>

std::uint64_t derive(std::uint64_t seed, std::uint64_t trial) {
  std::uint64_t stream = seed + trial;  // line 5: hit (adjacent +)
  seed++;                               // line 6: hit (increment)
  std::uint64_t base_seed = 0;
  base_seed = seed * 31;                // line 8: hit (assignment arith)
  return stream ^ base_seed;            // line 9: hit (adjacent ^)
}

struct Opts {
  std::uint64_t seed = 0;
};

void configure(Opts& opts, int q) {
  opts.seed = 6000 + static_cast<std::uint64_t>(q);  // line 17: hit
}
