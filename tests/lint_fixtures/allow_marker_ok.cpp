// Fixture (never compiled): well-formed allow markers suppress their
// findings — same-line trailing form and preceding-line form — including
// a two-rule marker.
#include <atomic>
#include <chrono>
// topobench-lint: allow(unordered-container) lookup-only cache, never iterated
#include <unordered_map>
#include <string>

// topobench-lint: allow(unordered-container) probed with find() only
std::unordered_map<std::string, double> cache;

long stamp() {
  // topobench-lint: allow(wall-clock) fixture mirrors util/timer.h
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

// topobench-lint: allow(wall-clock, banned-random) fixture exercises lists
long list_form() { return time(nullptr) + rand(); }
