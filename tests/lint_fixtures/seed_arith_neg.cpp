// Fixture (never compiled): sanctioned seed handling — mix_seed
// derivations, plain assignment/passing, argument comments, and
// seed-lookalike identifiers with arithmetic of their own.
#include <cstdint>

namespace tb {
std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b);
}

struct Opts {
  std::uint64_t seed = 0;
};

std::uint64_t derive(std::uint64_t seed, std::uint64_t trial) {
  return tb::mix_seed(seed, trial);
}

void configure(Opts& opts, Opts* defaults, int q) {
  opts.seed = 42;
  opts.seed = tb::mix_seed(6000, static_cast<std::uint64_t>(q));
  opts.seed = defaults->seed;
  const std::uint64_t copy = opts.seed;
  (void)derive(copy, /*trial=*/1 + 2);
  double seeded = 1.0;
  seeded = seeded * 2.0;  // "seeded" is not a seed identifier
}
