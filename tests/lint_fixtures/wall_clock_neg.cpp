// Fixture (never compiled): consuming tb::Timer is fine — only raw clock
// reads are flagged — and <chrono> durations without a clock are legal.
#include <chrono>

namespace tb {
class Timer {
 public:
  double seconds() const { return 0.0; }
  double millis() const { return 0.0; }
};
}  // namespace tb

double measure() {
  tb::Timer timer;
  const std::chrono::milliseconds budget(250);
  return timer.seconds() + static_cast<double>(budget.count());
}

// Identifiers containing "time" or "clock" are not clock reads.
double solve_time(double clock_rate) { return clock_rate * 2.0; }
