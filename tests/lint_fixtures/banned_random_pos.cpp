// Fixture (never compiled): banned-random positives.
#include <cstdlib>
#include <random>  // line 3: hit

int noisy_choice(int n) {
  std::random_device rd;                           // line 6: hit
  std::mt19937 gen(rd());                          // line 7: hit
  std::uniform_int_distribution<int> dist(0, n);   // line 8: hit
  return dist(gen) + std::rand();                  // line 9: hit
}
