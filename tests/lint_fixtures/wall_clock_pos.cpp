// Fixture (never compiled): wall-clock positives.
#include <chrono>
#include <ctime>  // line 3: hit

long stamp_seconds() {
  return time(nullptr);  // line 6: hit
}

long stamp_ticks() {
  return clock();  // line 10: hit
}

double stamp_monotonic() {
  const auto t0 = std::chrono::steady_clock::now();  // line 14: hit
  return std::chrono::duration<double>(t0.time_since_epoch()).count();
}
