// Fixture (never compiled): unordered-container positives.
#include <string>
#include <unordered_map>  // line 3: include is itself a hit
#include <unordered_set>  // line 4: hit

double total_weight(const std::unordered_map<std::string, double>& weights) {
  double sum = 0.0;
  for (const auto& [name, w] : weights) {  // iteration order leaks into sum
    sum += w;
  }
  return sum;
}

std::unordered_set<int> visited;  // line 14: hit
