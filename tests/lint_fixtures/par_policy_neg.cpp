// Fixture (never compiled): plain serial algorithms are fine.
#include <algorithm>
#include <numeric>
#include <vector>

double ordered_sum(std::vector<double>& xs) {
  std::sort(xs.begin(), xs.end());
  return std::accumulate(xs.begin(), xs.end(), 0.0);
}
