// Fixture (never compiled): ordered containers are fine, and prose or
// string mentions of unordered_map must not trip the rule.
#include <map>
#include <set>
#include <string>

// An unordered_map would be wrong here; std::map iterates in key order.
double total_weight(const std::map<std::string, double>& weights) {
  double sum = 0.0;
  for (const auto& [name, w] : weights) {
    sum += w;
  }
  return sum;
}

const char* kDocs = "never use std::unordered_map in result code";
std::set<int> visited;
