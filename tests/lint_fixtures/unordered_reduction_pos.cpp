// Fixture (never compiled): unordered-reduction positives. The atomic
// half of the rule only fires because this file names ThreadPool.
#include <atomic>
#include <cstddef>
#include <numeric>
#include <vector>

namespace tb {
class ThreadPool;
}

double racy_sum(tb::ThreadPool& pool, const std::vector<double>& xs) {
  std::atomic<double> acc{0.0};                   // line 13: hit
  (void)pool;
  return acc.load() + std::reduce(xs.begin(),     // line 15: hit
                                  xs.end());
}
