// Fixture (never compiled): the sanctioned tb::Rng idiom, plus lookalike
// identifiers ("operand", "brand") that must not match the rand patterns.
#include <cstdint>

namespace tb {
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() { return state_ += 1; }

 private:
  std::uint64_t state_;
};
}  // namespace tb

std::uint64_t draw(std::uint64_t seed) {
  tb::Rng rng(seed);
  return rng.next();
}

int operand(int brand) { return brand; }
