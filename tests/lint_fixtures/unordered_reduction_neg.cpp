// Fixture (never compiled): the PR-5 ordered-reduction idiom — per-slot
// accumulation through the pool, then a fixed-order reduction after the
// barrier — plus an atomic counter (integers commute; only floats are
// order-sensitive).
#include <atomic>
#include <cstddef>
#include <vector>

namespace tb {
class ThreadPool {
 public:
  void parallel_for(std::size_t begin, std::size_t end, void (*body)(size_t));
};
}  // namespace tb

std::vector<double> slots(16, 0.0);
std::atomic<std::size_t> cells_done{0};

double ordered_sum(tb::ThreadPool& pool) {
  pool.parallel_for(0, slots.size(), [](std::size_t) {});
  double sum = 0.0;
  for (std::size_t i = 0; i < slots.size(); ++i) sum += slots[i];
  return sum;
}
