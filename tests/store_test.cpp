// On-disk result store: format round-trip, integrity rejection, locking,
// live-reader refresh, and the PR acceptance pin — a sweep run twice
// through the store answers the second run entirely from disk with
// byte-identical CSV.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "core/registry.h"
#include "exp/results.h"
#include "exp/runner.h"
#include "exp/sweep.h"
#include "store/result_store.h"

namespace tb {
namespace {

using store::ResultStore;

/// Fresh per-test store path (removed up front: tests may run concurrently
/// from one binary across ctest jobs, so the name carries test + pid).
std::string fresh_path(const std::string& name) {
  const std::string path = testing::TempDir() + "topobench_store_" + name +
                           "_" + std::to_string(::getpid()) + ".store";
  std::remove(path.c_str());
  return path;
}

exp::CellResult sample_result(std::size_t cell) {
  exp::CellResult r;
  r.cell = cell;
  r.topology = "hypercube(n=16)";
  r.servers = 16;
  r.switches = 16;
  r.tm = "A2A";
  r.seed = 0x9e3779b97f4a7c15ULL + cell;
  r.solver = "auto(eps=0.1)";
  r.throughput = 2.0000000000005045;
  r.pivots = 1079;
  return r;
}

TEST(ResultStoreTest, RoundTripsRecordsBitExactly) {
  const std::string path = fresh_path("roundtrip");
  ResultStore store(path, ResultStore::Mode::ReadWrite);
  EXPECT_EQ(store.size(), 0u);
  for (std::size_t i = 0; i < 5; ++i) {
    store.put("key-" + std::to_string(i), sample_result(i));
  }
  EXPECT_EQ(store.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    const auto got = store.get("key-" + std::to_string(i));
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(exp::csv_row(*got), exp::csv_row(sample_result(i)));
  }
  EXPECT_FALSE(store.get("absent").has_value());
  EXPECT_FALSE(store.contains("absent"));
}

TEST(ResultStoreTest, RoundTripsQuotedAndNaNFields) {
  const std::string path = fresh_path("quoting");
  exp::CellResult tricky = sample_result(0);
  tricky.topology = "odd,\"name\"\nwith newline";
  tricky.scenario = "fail(f=0.25)";
  tricky.failed_links = 3;
  tricky.cut_method = "st-mincut(exact)";
  tricky.cut_bound = 2.5;
  {
    ResultStore store(path, ResultStore::Mode::ReadWrite);
    store.put("tricky\x1fkey", tricky);
  }
  ResultStore reread(path, ResultStore::Mode::ReadOnly);
  const auto got = reread.get("tricky\x1fkey");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(exp::csv_row(*got), exp::csv_row(tricky));
}

TEST(ResultStoreTest, PersistsAcrossReopen) {
  const std::string path = fresh_path("reopen");
  {
    ResultStore store(path, ResultStore::Mode::ReadWrite);
    store.put("k", sample_result(0));
  }
  ResultStore store(path, ResultStore::Mode::ReadWrite);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.contains("k"));
}

TEST(ResultStoreTest, PutIsIdempotentAndConflictsThrow) {
  const std::string path = fresh_path("idempotent");
  ResultStore store(path, ResultStore::Mode::ReadWrite);
  store.put("k", sample_result(0));
  store.put("k", sample_result(0));  // identical bytes: no-op
  EXPECT_EQ(store.size(), 1u);
  exp::CellResult different = sample_result(0);
  different.throughput = 1.5;
  EXPECT_THROW(store.put("k", different), std::runtime_error);
}

TEST(ResultStoreTest, ReadOnlyRejectsPutAndMissingFile) {
  const std::string path = fresh_path("readonly");
  {
    ResultStore writer(path, ResultStore::Mode::ReadWrite);
    writer.put("k", sample_result(0));
  }
  ResultStore reader(path, ResultStore::Mode::ReadOnly);
  EXPECT_THROW(reader.put("x", sample_result(1)), std::logic_error);
  EXPECT_THROW(
      ResultStore(fresh_path("readonly_missing"), ResultStore::Mode::ReadOnly),
      std::runtime_error);
}

TEST(ResultStoreTest, SecondWriterIsLockedOut) {
  const std::string path = fresh_path("lock");
  ResultStore first(path, ResultStore::Mode::ReadWrite);
  EXPECT_THROW(ResultStore(path, ResultStore::Mode::ReadWrite),
               std::runtime_error);
  // Readers are never locked out.
  first.put("k", sample_result(0));
  ResultStore reader(path, ResultStore::Mode::ReadOnly);
  EXPECT_TRUE(reader.contains("k"));
}

TEST(ResultStoreTest, FlippedValueByteIsRejectedLoudly) {
  const std::string path = fresh_path("corrupt");
  {
    ResultStore store(path, ResultStore::Mode::ReadWrite);
    store.put("k", sample_result(0));
  }
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  // Flip a digit inside the stored throughput value.
  const std::size_t pos = bytes.find("2.0000000000005045");
  ASSERT_NE(pos, std::string::npos);
  bytes[pos] = '3';
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  EXPECT_THROW(ResultStore(path, ResultStore::Mode::ReadOnly),
               std::runtime_error);
}

TEST(ResultStoreTest, WrongMagicOrSchemaIsRejected) {
  const std::string path = fresh_path("magic");
  {
    std::ofstream out(path, std::ios::binary);
    out << "#! topobench-store v999 schema=0000000000000000\n";
  }
  EXPECT_THROW(ResultStore(path, ResultStore::Mode::ReadOnly),
               std::runtime_error);
  EXPECT_THROW(ResultStore(path, ResultStore::Mode::ReadWrite),
               std::runtime_error);
}

TEST(ResultStoreTest, TruncatedTailToleratedByReaderRejectedByWriter) {
  const std::string path = fresh_path("tail");
  {
    ResultStore store(path, ResultStore::Mode::ReadWrite);
    store.put("k0", sample_result(0));
  }
  // Simulate a torn in-flight append: a frame header with no payload yet.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "@ 2 400 0123456789abcdef\nk1";
  }
  ResultStore reader(path, ResultStore::Mode::ReadOnly);
  EXPECT_EQ(reader.size(), 1u);  // stops before the torn tail
  EXPECT_TRUE(reader.contains("k0"));
  EXPECT_THROW(ResultStore(path, ResultStore::Mode::ReadWrite),
               std::runtime_error);
}

TEST(ResultStoreTest, RefreshPicksUpLiveAppends) {
  const std::string path = fresh_path("refresh");
  ResultStore writer(path, ResultStore::Mode::ReadWrite);
  writer.put("k0", sample_result(0));
  ResultStore reader(path, ResultStore::Mode::ReadOnly);
  EXPECT_EQ(reader.size(), 1u);
  writer.put("k1", sample_result(1));
  writer.put("k2", sample_result(2));
  EXPECT_FALSE(reader.contains("k1"));  // not yet scanned
  EXPECT_EQ(reader.refresh(), 2u);
  EXPECT_TRUE(reader.contains("k1"));
  EXPECT_TRUE(reader.contains("k2"));
  EXPECT_EQ(reader.refresh(), 0u);
}

// --- acceptance pin ------------------------------------------------------

exp::Sweep tiny_sweep() {
  exp::Sweep sweep;
  sweep.topologies = {exp::representative_spec(Family::Hypercube, 16, 1),
                      exp::representative_spec(Family::FatTree, 16, 1)};
  sweep.tms = {exp::a2a_tm(), exp::longest_matching_tm()};
  sweep.solve.epsilon = 0.1;
  sweep.base_seed = 11;
  return sweep;
}

TEST(ResultStoreTest, SecondSweepRunAnswersEntirelyFromDiskByteIdentical) {
  const std::string path = fresh_path("acceptance");
  const exp::Sweep sweep = tiny_sweep();
  std::string first_csv;
  {
    exp::Runner runner;
    exp::RunOptions opts;
    opts.store = std::make_shared<ResultStore>(path,
                                               ResultStore::Mode::ReadWrite);
    first_csv = runner.run(sweep, opts).to_csv();
    EXPECT_EQ(runner.cache_stats().misses, exp::expand(sweep).size());
    EXPECT_EQ(opts.store->size(), exp::expand(sweep).size());
  }  // drop the writer lock
  {
    exp::Runner runner;  // fresh process-equivalent: empty in-memory cache
    exp::RunOptions opts;
    opts.store = std::make_shared<ResultStore>(path,
                                               ResultStore::Mode::ReadOnly);
    const std::string second_csv = runner.run(sweep, opts).to_csv();
    EXPECT_EQ(second_csv, first_csv);
    EXPECT_EQ(runner.cache_stats().misses, 0u);
    EXPECT_EQ(runner.cache_stats().disk_hits, exp::expand(sweep).size());
    EXPECT_EQ(runner.cache_stats().memory_hits, 0u);
  }
}

TEST(ResultStoreTest, RunnerWritesThroughAndCountsTiers) {
  const std::string path = fresh_path("tiers");
  const exp::Sweep sweep = tiny_sweep();
  exp::RunOptions opts;
  opts.store = std::make_shared<ResultStore>(path,
                                             ResultStore::Mode::ReadWrite);
  exp::Runner runner;
  runner.run(sweep, opts);
  const std::size_t n = exp::expand(sweep).size();
  // Same runner again: answered from memory, not disk.
  runner.run(sweep, opts);
  const exp::CacheStats s = runner.cache_stats();
  EXPECT_EQ(s.misses, n);
  EXPECT_EQ(s.memory_hits, n);
  EXPECT_EQ(s.disk_hits, 0u);
  EXPECT_EQ(s.hits, s.memory_hits + s.disk_hits);
}

}  // namespace
}  // namespace tb
