#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "graph/algorithms.h"
#include "topo/bcube.h"
#include "topo/dcell.h"
#include "topo/dragonfly.h"
#include "topo/fattree.h"
#include "topo/flattened_butterfly.h"
#include "topo/hypercube.h"
#include "topo/hyperx.h"
#include "topo/jellyfish.h"
#include "topo/longhop.h"
#include "topo/natural.h"
#include "topo/slimfly.h"
#include "topo/theory_graphs.h"

namespace tb {
namespace {

TEST(Hypercube, StructureAndDiameter) {
  for (int d = 2; d <= 6; ++d) {
    const Network net = make_hypercube(d);
    net.validate();
    EXPECT_EQ(net.graph.num_nodes(), 1 << d);
    EXPECT_EQ(net.graph.num_edges(), d * (1 << (d - 1)));
    for (int v = 0; v < net.graph.num_nodes(); ++v) {
      EXPECT_EQ(net.graph.degree(v), d);
    }
    EXPECT_EQ(diameter(net.graph), d);
  }
}

TEST(FatTree, CountsAndLayers) {
  for (int k = 4; k <= 10; k += 2) {
    const Network net = make_fat_tree(k);
    net.validate();
    const FatTreeInfo info = fat_tree_info(k);
    EXPECT_EQ(net.graph.num_nodes(), 5 * k * k / 4);
    EXPECT_EQ(net.total_servers(), k * k * k / 4);
    // Edge and agg switches have degree k (k/2 up + k/2 down for agg;
    // edge switches have k/2 up, servers not counted as graph links).
    for (int e = 0; e < info.num_edge; ++e) {
      EXPECT_EQ(net.graph.degree(info.first_edge + e), k / 2);
      EXPECT_EQ(net.servers[static_cast<std::size_t>(info.first_edge + e)], k / 2);
    }
    for (int a = 0; a < info.num_agg; ++a) {
      EXPECT_EQ(net.graph.degree(info.first_agg + a), k);
      EXPECT_EQ(net.servers[static_cast<std::size_t>(info.first_agg + a)], 0);
    }
    for (int c = 0; c < info.num_core; ++c) {
      EXPECT_EQ(net.graph.degree(info.first_core + c), k);
    }
    EXPECT_EQ(diameter(net.graph), 4);  // edge-agg-core-agg-edge
  }
  EXPECT_THROW(make_fat_tree(5), std::invalid_argument);
}

TEST(BCube, CountsAndServerDegrees) {
  for (const auto& [n, k] : {std::pair{2, 2}, {4, 1}, {3, 2}}) {
    const Network net = make_bcube(n, k);
    net.validate();
    const long servers = bcube_num_servers(n, k);
    const long switches = bcube_num_switches(n, k);
    EXPECT_EQ(net.graph.num_nodes(), servers + switches);
    EXPECT_EQ(net.total_servers(), servers);
    // Server nodes have degree k+1, switch nodes degree n.
    for (long s = 0; s < servers; ++s) {
      EXPECT_EQ(net.graph.degree(static_cast<int>(s)), k + 1);
      EXPECT_EQ(net.servers[static_cast<std::size_t>(s)], 1);
    }
    for (long sw = servers; sw < servers + switches; ++sw) {
      EXPECT_EQ(net.graph.degree(static_cast<int>(sw)), n);
      EXPECT_EQ(net.servers[static_cast<std::size_t>(sw)], 0);
    }
  }
}

TEST(BCube, KnownDiameter) {
  // BCube_k diameter (server to server) is 2(k+1).
  const Network net = make_bcube(2, 2);
  EXPECT_EQ(diameter(net.graph), 2 * 3);
}

TEST(DCell, CountsAndDegrees) {
  for (const auto& [n, l] : {std::pair{2, 1}, {3, 1}, {4, 1}, {2, 2}}) {
    const Network net = make_dcell(n, l);
    net.validate();
    EXPECT_EQ(net.total_servers(), dcell_num_servers(n, l));
    // Every server node: 1 switch link + l level links.
    const long servers = dcell_num_servers(n, l);
    for (long s = 0; s < servers; ++s) {
      EXPECT_EQ(net.graph.degree(static_cast<int>(s)), 1 + l);
    }
    // Mini-switches connect n servers each.
    for (int v = static_cast<int>(servers); v < net.graph.num_nodes(); ++v) {
      EXPECT_EQ(net.graph.degree(v), n);
    }
  }
}

TEST(DCell, Dcell5Level1Is30Servers) {
  const Network net = make_dcell(5, 1);
  EXPECT_EQ(net.total_servers(), 30);
  EXPECT_EQ(net.graph.num_nodes(), 30 + 6);
}

TEST(Dragonfly, BalancedStructure) {
  for (int t = 1; t <= 3; ++t) {
    const Network net = make_dragonfly_balanced(t);
    net.validate();
    const int a = 2 * t;
    const int g = a * t + 1;
    EXPECT_EQ(net.graph.num_nodes(), g * a);
    EXPECT_EQ(net.total_servers(), g * a * t);
    // Each router: (a-1) local + h = t global links.
    for (int v = 0; v < net.graph.num_nodes(); ++v) {
      EXPECT_EQ(net.graph.degree(v), (a - 1) + t);
    }
  }
}

TEST(Dragonfly, EveryGroupPairHasOneGlobalLink) {
  const int t = 2;
  const Network net = make_dragonfly_balanced(t);
  const int a = 2 * t;
  const int g = a * t + 1;
  std::vector<std::vector<int>> group_links(static_cast<std::size_t>(g),
                                            std::vector<int>(static_cast<std::size_t>(g), 0));
  for (int e = 0; e < net.graph.num_edges(); ++e) {
    const int gu = net.graph.edge_u(e) / a;
    const int gv = net.graph.edge_v(e) / a;
    if (gu != gv) {
      ++group_links[static_cast<std::size_t>(gu)][static_cast<std::size_t>(gv)];
      ++group_links[static_cast<std::size_t>(gv)][static_cast<std::size_t>(gu)];
    }
  }
  for (int x = 0; x < g; ++x) {
    for (int y = 0; y < g; ++y) {
      if (x != y) {
        EXPECT_EQ(group_links[static_cast<std::size_t>(x)][static_cast<std::size_t>(y)], 1)
            << x << "," << y;
      }
    }
  }
}

TEST(FlattenedButterfly, PaperInstance5Ary3Stage) {
  const Network net = make_flattened_butterfly(5, 3);
  net.validate();
  EXPECT_EQ(net.graph.num_nodes(), 25);
  EXPECT_EQ(net.total_servers(), 125);
  // Each router: 4 peers in each of 2 dimensions.
  for (int v = 0; v < 25; ++v) EXPECT_EQ(net.graph.degree(v), 8);
  EXPECT_EQ(diameter(net.graph), 2);
}

TEST(FlattenedButterfly, BinaryIsHypercube) {
  const Network fbf = make_flattened_butterfly(2, 5);
  const Network hc = make_hypercube(4);
  EXPECT_EQ(fbf.graph.num_nodes(), hc.graph.num_nodes());
  EXPECT_EQ(fbf.graph.num_edges(), hc.graph.num_edges());
  EXPECT_EQ(diameter(fbf.graph), 4);
}

TEST(HyperX, RegularLatticeDegreesAndCaps) {
  const HyperXParams p{2, 4, 2, 3};
  const Network net = make_hyperx(p);
  net.validate();
  EXPECT_EQ(net.graph.num_nodes(), 16);
  EXPECT_EQ(net.total_servers(), 48);
  for (int v = 0; v < 16; ++v) EXPECT_EQ(net.graph.degree(v), 6);
  for (int e = 0; e < net.graph.num_edges(); ++e) {
    EXPECT_DOUBLE_EQ(net.graph.edge_cap(e), 2.0);
  }
  EXPECT_EQ(diameter(net.graph), 2);
}

TEST(HyperX, SearchRespectsConstraints) {
  const auto p = search_hyperx(16, 128, 0.4);
  ASSERT_TRUE(p.has_value());
  EXPECT_LE(p->radix_used(), 16);
  EXPECT_GE(p->servers(), 128);
  EXPECT_GE(p->bisection(), 0.4);
  // Infeasible demand.
  EXPECT_FALSE(search_hyperx(3, 1'000'000, 0.5).has_value());
}

TEST(Jellyfish, RandomRegularIsRegularConnected) {
  for (const int n : {16, 64}) {
    for (const int r : {3, 5, 8}) {
      if ((n * r) % 2 != 0) continue;
      const Network net = make_jellyfish(n, r, 1, 7);
      net.validate();
      for (int v = 0; v < n; ++v) EXPECT_EQ(net.graph.degree(v), r);
      // Simple graph: no duplicate adjacency.
      for (int v = 0; v < n; ++v) {
        std::set<int> nbrs;
        for (const int a : net.graph.out_arcs(v)) {
          EXPECT_TRUE(nbrs.insert(net.graph.arc_to(a)).second);
        }
      }
    }
  }
}

TEST(Jellyfish, DifferentSeedsDifferentGraphs) {
  const Network a = make_jellyfish(32, 4, 1, 1);
  const Network b = make_jellyfish(32, 4, 1, 2);
  bool differ = false;
  for (int v = 0; v < 32 && !differ; ++v) {
    std::set<int> na;
    std::set<int> nb;
    for (const int arc : a.graph.out_arcs(v)) na.insert(a.graph.arc_to(arc));
    for (const int arc : b.graph.out_arcs(v)) nb.insert(b.graph.arc_to(arc));
    differ = na != nb;
  }
  EXPECT_TRUE(differ);
}

TEST(Jellyfish, SameSeedIsDeterministic) {
  const Network a = make_jellyfish(32, 4, 1, 5);
  const Network b = make_jellyfish(32, 4, 1, 5);
  ASSERT_EQ(a.graph.num_edges(), b.graph.num_edges());
  for (int e = 0; e < a.graph.num_edges(); ++e) {
    EXPECT_EQ(a.graph.edge_u(e), b.graph.edge_u(e));
    EXPECT_EQ(a.graph.edge_v(e), b.graph.edge_v(e));
  }
}

TEST(SameEquipment, MatchesDegreeSequenceAndServers) {
  const Network ft = make_fat_tree(4);
  const Network rnd = make_same_equipment_random(ft, 11);
  rnd.validate();
  std::vector<int> d1 = ft.graph.degree_sequence();
  std::vector<int> d2 = rnd.graph.degree_sequence();
  // Same multiset of degrees AND same per-node degree (paper: same number
  // of links as the *corresponding* node).
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(ft.servers, rnd.servers);
}

TEST(SameEquipment, TrunkedCapacityBecomesParallelPorts) {
  // 3x3 HyperX with K=2 trunks: 2 dims * 2 peers * K = 8 unit ports per
  // router, realizable as a simple graph on 9 nodes.
  const Network hx = make_hyperx({2, 3, 2, 2});
  const Network rnd = make_same_equipment_random(hx, 3);
  for (int v = 0; v < rnd.graph.num_nodes(); ++v) {
    EXPECT_EQ(rnd.graph.degree(v), 8);
  }
}

TEST(LongHop, ZeroExtraIsHypercube) {
  const Network lh = make_long_hop(4, 0, 1);
  const Network hc = make_hypercube(4);
  EXPECT_EQ(lh.graph.num_edges(), hc.graph.num_edges());
  EXPECT_EQ(diameter(lh.graph), 4);
}

TEST(LongHop, ExtraGeneratorsRaiseGapAndDegree) {
  const Network lh = make_long_hop(5, 3, 1);
  lh.validate();
  for (int v = 0; v < lh.graph.num_nodes(); ++v) {
    EXPECT_EQ(lh.graph.degree(v), 8);
  }
  // Long hops shrink the diameter below the hypercube's.
  EXPECT_LT(diameter(lh.graph), 5);
}

TEST(SlimFly, MmsStructure) {
  for (const int q : {5, 13}) {
    ASSERT_TRUE(slim_fly_supports(q));
    const Network net = make_slim_fly(q, 1);
    net.validate();
    EXPECT_EQ(net.graph.num_nodes(), 2 * q * q);
    const int degree = (3 * q - 1) / 2;
    for (int v = 0; v < net.graph.num_nodes(); ++v) {
      EXPECT_EQ(net.graph.degree(v), degree) << "q=" << q << " v=" << v;
    }
    EXPECT_EQ(diameter(net.graph), 2) << "q=" << q;
  }
}

TEST(SlimFly, RejectsUnsupportedQ) {
  EXPECT_FALSE(slim_fly_supports(7));   // q % 4 == 3 variant not built
  EXPECT_FALSE(slim_fly_supports(9));   // prime power
  EXPECT_THROW(make_slim_fly(7, 1), std::invalid_argument);
}

TEST(TheoryGraphs, ClusteredRandomDegrees) {
  const Network net = make_clustered_random(32, 6, 2, 3);
  net.validate();
  EXPECT_EQ(net.graph.num_nodes(), 64);
  for (int v = 0; v < 64; ++v) EXPECT_EQ(net.graph.degree(v), 8);
}

TEST(TheoryGraphs, SubdividedExpanderNodeCount) {
  const int base = 20;
  const int d = 2;
  const int p = 3;
  const Network net = make_subdivided_expander(base, d, p, 5);
  net.validate();
  const int base_edges = base * 2 * d / 2;
  EXPECT_EQ(net.graph.num_nodes(), base + base_edges * (p - 1));
  EXPECT_EQ(net.graph.num_edges(), base_edges * p);
  // Path-internal nodes have degree 2.
  for (int v = base; v < net.graph.num_nodes(); ++v) {
    EXPECT_EQ(net.graph.degree(v), 2);
  }
}

TEST(Natural, SuiteIsConnectedAndSized) {
  const std::vector<Network> nets = natural_network_suite(9, 31);
  EXPECT_EQ(nets.size(), 9u);
  for (const Network& net : nets) {
    net.validate();
    EXPECT_GE(net.graph.num_nodes(), 10);
    EXPECT_LE(net.graph.num_nodes(), 40);
  }
}

TEST(Natural, BarabasiAlbertHasHubs) {
  const Network net = make_barabasi_albert(60, 2, 9);
  const std::vector<int> deg = net.graph.degree_sequence();
  const int max_deg = *std::max_element(deg.begin(), deg.end());
  EXPECT_GE(max_deg, 8);  // preferential attachment grows hubs
}

}  // namespace
}  // namespace tb
