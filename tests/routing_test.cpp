#include <gtest/gtest.h>

#include "mcf/decompose.h"
#include "mcf/garg_konemann.h"
#include "mcf/routing.h"
#include "mcf/throughput.h"
#include "tm/synthetic.h"
#include "topo/fattree.h"
#include "topo/hypercube.h"
#include "topo/jellyfish.h"

namespace tb {
namespace {

Graph ring(int n) {
  Graph g(n);
  for (int v = 0; v < n; ++v) g.add_edge(v, (v + 1) % n);
  g.finalize();
  return g;
}

TEST(Routing, SinglePathUsesOnePath) {
  // Ring of 6, single demand 0 -> 3: single path routing picks one side,
  // throughput 1; ECMP splits across both 3-hop sides, throughput 2.
  const Graph g = ring(6);
  TrafficMatrix tm;
  tm.demands = {{0, 3, 1.0}};
  const auto sp = mcf::single_path_throughput(g, tm);
  const auto ecmp = mcf::ecmp_throughput(g, tm);
  EXPECT_NEAR(sp.throughput, 1.0, 1e-12);
  EXPECT_NEAR(ecmp.throughput, 2.0, 1e-12);
}

TEST(Routing, EcmpSplitsPerHopNotPerPath) {
  // Diamond: 0-1, 0-2, 1-3, 2-3 plus a direct long way 0-4-3. ECMP on
  // shortest DAG (2 hops via 1 or 2) halves the load per branch.
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  g.add_edge(0, 4);
  g.add_edge(4, 3);
  g.finalize();
  TrafficMatrix tm;
  tm.demands = {{0, 3, 1.0}};
  const auto ecmp = mcf::ecmp_throughput(g, tm);
  // Three 2-hop shortest paths (via 1, 2, 4): each carries 1/3.
  EXPECT_NEAR(ecmp.max_congestion, 1.0 / 3.0, 1e-12);
}

TEST(Routing, SchemesNeverBeatOptimalLp) {
  for (const std::uint64_t seed : {3ULL, 5ULL, 9ULL}) {
    const Network jf = make_jellyfish(16, 4, 1, seed);
    const TrafficMatrix tm = random_matching(jf, 1, seed + 50);
    const double opt = mcf::throughput_exact_lp(jf.graph, tm).throughput;
    const double sp = mcf::single_path_throughput(jf.graph, tm).throughput;
    const double ecmp = mcf::ecmp_throughput(jf.graph, tm).throughput;
    const double vlb = mcf::vlb_throughput(jf.graph, tm).throughput;
    EXPECT_LE(sp, opt * (1.0 + 1e-9)) << seed;
    EXPECT_LE(ecmp, opt * (1.0 + 1e-9)) << seed;
    EXPECT_LE(vlb, opt * (1.0 + 1e-9)) << seed;
  }
}

TEST(Routing, EcmpBeatsSinglePathPerDemand) {
  // For a SINGLE demand, even per-hop splitting can only lower the maximum
  // arc load (every ECMP arc carries <= the full demand that single-path
  // puts on its one path). With multiple demands the comparison can go
  // either way — see the routing-gap ablation bench — so the invariant is
  // only asserted per-demand here.
  const Network jf = make_jellyfish(18, 4, 1, 15);
  for (int t = 1; t < 10; ++t) {
    TrafficMatrix tm;
    tm.demands = {{0, t, 1.0}};
    const double sp = mcf::single_path_throughput(jf.graph, tm).throughput;
    const double ecmp = mcf::ecmp_throughput(jf.graph, tm).throughput;
    EXPECT_GE(ecmp, sp * (1.0 - 1e-9)) << "dst " << t;
  }
}

TEST(Routing, EcmpAchievesFatTreeOptimum) {
  // Fat tree + per-ToR LM: ECMP's even split saturates the k/2 uplinks,
  // matching the LP optimum of k/2 exactly.
  const Network ft = make_fat_tree(4);
  const TrafficMatrix tm = longest_matching(ft);
  const auto ecmp = mcf::ecmp_throughput(ft.graph, tm);
  EXPECT_NEAR(ecmp.throughput, 2.0, 1e-9);
  const auto sp = mcf::single_path_throughput(ft.graph, tm);
  EXPECT_LT(sp.throughput, ecmp.throughput);  // one uplink pinned
}

TEST(Routing, VlbHonorsTheorem2Mechanics) {
  // VLB throughput >= (ECMP A2A throughput) / 2 * (1 - tol): the two-hop
  // construction behind Theorem 2, instantiated with ECMP legs.
  for (const std::uint64_t seed : {7ULL, 11ULL}) {
    const Network jf = make_jellyfish(20, 4, 1, seed);
    const TrafficMatrix lm = longest_matching(jf);
    const double vlb = mcf::vlb_throughput(jf.graph, lm).throughput;
    const double a2a_ecmp =
        mcf::ecmp_throughput(jf.graph, all_to_all(jf)).throughput;
    EXPECT_GE(vlb, a2a_ecmp / 2.0 * (1.0 - 1e-9)) << seed;
  }
}

TEST(Routing, VlbIsTmInsensitiveOnVertexTransitiveGraphs) {
  // VLB's whole point: its load depends only on row/col sums. Two very
  // different unit-row TMs must get identical VLB throughput.
  const Network hc = make_hypercube(4);
  const double t1 =
      mcf::vlb_throughput(hc.graph, longest_matching(hc)).throughput;
  const double t2 =
      mcf::vlb_throughput(hc.graph, random_matching(hc, 1, 3)).throughput;
  EXPECT_NEAR(t1, t2, 1e-9);
}

TEST(Decompose, SinglePathFlowRoundTrips) {
  const Graph g = ring(6);
  TrafficMatrix tm;
  tm.demands = {{0, 3, 1.0}};
  const auto sp = mcf::single_path_throughput(g, tm);
  const auto paths = mcf::decompose_flow(g, 0, sp.arc_load);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].arcs.size(), 3u);
  EXPECT_NEAR(paths[0].amount, 1.0, 1e-12);
}

TEST(Decompose, EcmpFlowSplitsIntoTwoPaths) {
  const Graph g = ring(6);
  TrafficMatrix tm;
  tm.demands = {{0, 3, 1.0}};
  const auto ecmp = mcf::ecmp_throughput(g, tm);
  const auto paths = mcf::decompose_flow(g, 0, ecmp.arc_load);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_NEAR(paths[0].amount + paths[1].amount, 1.0, 1e-12);
  EXPECT_NEAR(mcf::mean_path_length(paths), 3.0, 1e-12);
}

TEST(Decompose, CancelsCycles) {
  // Inject a pure cycle on top of a path flow; decomposition must return
  // only the path.
  Graph g(4);
  const int e01 = g.add_edge(0, 1);
  const int e12 = g.add_edge(1, 2);
  const int e23 = g.add_edge(2, 3);
  const int e13 = g.add_edge(1, 3);
  g.finalize();
  std::vector<double> flow(static_cast<std::size_t>(g.num_arcs()), 0.0);
  flow[static_cast<std::size_t>(2 * e01)] = 1.0;  // 0->1
  flow[static_cast<std::size_t>(2 * e13)] = 1.0;  // 1->3
  // cycle 1->2->3->1 (3->1 is reverse arc of e13): add 0.5
  flow[static_cast<std::size_t>(2 * e12)] += 0.5;
  flow[static_cast<std::size_t>(2 * e23)] += 0.5;
  flow[static_cast<std::size_t>(2 * e13 + 1)] += 0.5;
  const auto paths = mcf::decompose_flow(g, 0, flow);
  double total = 0.0;
  for (const auto& p : paths) total += p.amount;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Decompose, GkFlowDecomposesWithinCapacity) {
  const Network jf = make_jellyfish(16, 4, 1, 3);
  TrafficMatrix tm;
  tm.demands = {{0, 9, 1.0}};
  const mcf::GkResult r = mcf::max_concurrent_flow(jf.graph, tm);
  // Extract only commodity flow from source 0 (single source, so all).
  const auto paths = mcf::decompose_flow(jf.graph, 0, r.arc_flow);
  double total = 0.0;
  for (const auto& p : paths) {
    total += p.amount;
    // Every path must end at the sink.
    EXPECT_EQ(jf.graph.arc_to(p.arcs.back()), 9);
  }
  EXPECT_NEAR(total, r.throughput, r.throughput * 0.05 + 1e-6);
}

}  // namespace
}  // namespace tb
