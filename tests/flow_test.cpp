// The src/flow/ correctness contract, cross-checked three ways per the
// subsystem's charter: max-flow equals min-cut capacity (verified cut
// extraction), the push-relabel engine agrees with the Dinic reference on
// randomized instances, and single-commodity throughput from the ExactLP
// solver matches the combinatorial max flow.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "flow/flow_network.h"
#include "flow/max_flow.h"
#include "flow/min_cut.h"
#include "graph/algorithms.h"
#include "mcf/throughput.h"
#include "tm/traffic_matrix.h"
#include "topo/hypercube.h"
#include "topo/jellyfish.h"
#include "util/rng.h"

namespace tb {
namespace {

using flow::FlowAlgo;
using flow::FlowNetwork;
using flow::MaxFlowStats;
using flow::StCut;

Graph path_graph(int n) {
  Graph g(n);
  for (int v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  g.finalize();
  return g;
}

/// Connected random multigraph: a path backbone plus `extra` random edges
/// with capacities in [0.25, 2).
Graph random_graph(int n, int extra, std::uint64_t seed) {
  Rng rng(seed);
  Graph g(n);
  for (int v = 0; v + 1 < n; ++v) {
    g.add_edge(v, v + 1, 0.25 + 1.75 * rng.next_double());
  }
  for (int e = 0; e < extra; ++e) {
    const int u = static_cast<int>(rng.next_u64(static_cast<std::uint64_t>(n)));
    int v = static_cast<int>(rng.next_u64(static_cast<std::uint64_t>(n)));
    if (u == v) v = (v + 1) % n;
    g.add_edge(u, v, 0.25 + 1.75 * rng.next_double());
  }
  g.finalize();
  return g;
}

TEST(FlowNetwork, MirrorsGraphArcIds) {
  Graph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 3.0);
  g.finalize();
  const FlowNetwork net = FlowNetwork::from_graph(g);
  ASSERT_EQ(net.num_nodes(), 3);
  ASSERT_EQ(net.num_arcs(), 4);
  for (int a = 0; a < net.num_arcs(); ++a) {
    EXPECT_EQ(net.arc_from(a), g.arc_from(a));
    EXPECT_EQ(net.arc_to(a), g.arc_to(a));
    EXPECT_DOUBLE_EQ(net.capacity(a), g.arc_cap(a));
  }
  EXPECT_DOUBLE_EQ(net.max_capacity(), 3.0);
}

TEST(MaxFlow, PathCarriesBottleneckCapacity) {
  const Graph g = path_graph(4);
  for (const FlowAlgo algo : {FlowAlgo::HighestLabel, FlowAlgo::Dinic}) {
    FlowNetwork net = FlowNetwork::from_graph(g);
    EXPECT_DOUBLE_EQ(flow::max_flow(net, 0, 3, algo), 1.0);
  }
}

TEST(MaxFlow, ParallelEdgesAggregate) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 1, 0.5);
  g.finalize();
  FlowNetwork net = FlowNetwork::from_graph(g);
  EXPECT_DOUBLE_EQ(flow::max_flow(net, 0, 1), 1.5);
}

TEST(MaxFlow, DirectedAsymmetricPairs) {
  // Classic crossover where the max flow must cancel flow over the middle
  // arc: s->a, s->b, a->t, b->t of capacity 1 plus a->b of capacity 1.
  FlowNetwork net(4);
  const int s = 0, a = 1, b = 2, t = 3;
  net.add_arc_pair(s, a, 1.0);
  net.add_arc_pair(s, b, 1.0);
  net.add_arc_pair(a, t, 1.0);
  net.add_arc_pair(b, t, 1.0);
  net.add_arc_pair(a, b, 1.0);
  net.finalize();
  EXPECT_DOUBLE_EQ(flow::max_flow(net, s, t), 2.0);
  net.reset();
  EXPECT_DOUBLE_EQ(flow::max_flow(net, s, t, FlowAlgo::Dinic), 2.0);
}

TEST(MaxFlow, DisconnectedPairHasZeroFlow) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.finalize();
  FlowNetwork net = FlowNetwork::from_graph(g);
  EXPECT_DOUBLE_EQ(flow::max_flow(net, 0, 3), 0.0);
}

TEST(MaxFlow, ResetAllowsResolving) {
  const Graph g = random_graph(12, 18, 7);
  FlowNetwork net = FlowNetwork::from_graph(g);
  const double first = flow::max_flow(net, 0, 11);
  net.reset();
  const double second = flow::max_flow(net, 0, 11);
  EXPECT_DOUBLE_EQ(first, second);
}

TEST(MaxFlow, FlowConservationAndCapacityRespected) {
  const Graph g = random_graph(16, 30, 3);
  const int s = 0, t = 15;
  FlowNetwork net = FlowNetwork::from_graph(g);
  const double value = flow::max_flow(net, s, t);
  std::vector<double> net_out(static_cast<std::size_t>(g.num_nodes()), 0.0);
  for (int a = 0; a < net.num_arcs(); ++a) {
    EXPECT_LE(net.flow(a), net.capacity(a) + 1e-9);
    net_out[static_cast<std::size_t>(net.arc_from(a))] += net.flow(a);
    net_out[static_cast<std::size_t>(net.arc_to(a))] -= net.flow(a);
  }
  for (int v = 0; v < g.num_nodes(); ++v) {
    if (v == s || v == t) continue;
    EXPECT_NEAR(net_out[static_cast<std::size_t>(v)], 0.0, 1e-9) << v;
  }
  EXPECT_NEAR(net_out[static_cast<std::size_t>(s)], value, 1e-9);
  EXPECT_NEAR(net_out[static_cast<std::size_t>(t)], -value, 1e-9);
}

TEST(MaxFlow, PushRelabelMatchesDinicOnRandomGraphs) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL, 6ULL}) {
    const int n = 8 + static_cast<int>(seed) * 4;
    const Graph g = random_graph(n, 3 * n, seed);
    FlowNetwork hl = FlowNetwork::from_graph(g);
    FlowNetwork di = FlowNetwork::from_graph(g);
    MaxFlowStats hl_stats;
    MaxFlowStats di_stats;
    const double a =
        flow::max_flow(hl, 0, n - 1, FlowAlgo::HighestLabel, &hl_stats);
    const double b = flow::max_flow(di, 0, n - 1, FlowAlgo::Dinic, &di_stats);
    EXPECT_NEAR(a, b, 1e-9 * (1.0 + a)) << "seed " << seed;
    EXPECT_GT(hl_stats.pushes, 0);
    EXPECT_GT(hl_stats.global_relabels, 0);
    EXPECT_GT(di_stats.augmenting_paths, 0);
  }
}

TEST(MinCut, MaxFlowEqualsMinCutCapacity) {
  for (const std::uint64_t seed : {11ULL, 12ULL, 13ULL, 14ULL}) {
    const Graph g = random_graph(14, 28, seed);
    for (const FlowAlgo algo : {FlowAlgo::HighestLabel, FlowAlgo::Dinic}) {
      const StCut cut = flow::st_min_cut(g, 0, 13, algo);
      // st_min_cut already threw if the identity failed; check the exposed
      // fields agree and the capacity recomputes from the edge list.
      EXPECT_NEAR(cut.value, cut.cut_capacity, 1e-9 * (1.0 + cut.value));
      double recomputed = 0.0;
      for (const int e : cut.cut_edges) recomputed += g.edge_cap(e);
      EXPECT_NEAR(recomputed, cut.cut_capacity, 1e-12);
      EXPECT_EQ(cut.source_side[0], 1);
      EXPECT_EQ(cut.source_side[13], 0);
    }
  }
}

TEST(MinCut, CutEdgesDisconnectTerminals) {
  const Graph g = random_graph(12, 20, 21);
  const StCut cut = flow::st_min_cut(g, 0, 11);
  // Rebuild the graph without the cut edges; t must become unreachable.
  std::vector<std::uint8_t> removed(static_cast<std::size_t>(g.num_edges()), 0);
  for (const int e : cut.cut_edges) removed[static_cast<std::size_t>(e)] = 1;
  Graph pruned(g.num_nodes());
  for (int e = 0; e < g.num_edges(); ++e) {
    if (!removed[static_cast<std::size_t>(e)]) {
      pruned.add_edge(g.edge_u(e), g.edge_v(e), g.edge_cap(e));
    }
  }
  pruned.finalize();
  const std::vector<int> dist = bfs_distances(pruned, 0);
  EXPECT_EQ(dist[11], kUnreachable);
}

TEST(MinCut, PrebuiltNetworkOverloadMatchesAndResets) {
  const Graph g = random_graph(12, 20, 31);
  FlowNetwork net = FlowNetwork::from_graph(g);
  const StCut a = flow::st_min_cut(g, net, 0, 11);
  EXPECT_DOUBLE_EQ(a.value, flow::st_min_cut(g, 0, 11).value);
  // A second pair on the same network must solve from a clean reset.
  const StCut b = flow::st_min_cut(g, net, 3, 9);
  EXPECT_DOUBLE_EQ(b.value, flow::st_min_cut(g, 3, 9).value);
  FlowNetwork mismatched(2);
  mismatched.add_arc_pair(0, 1, 1.0);
  mismatched.finalize();
  EXPECT_THROW(flow::st_min_cut(g, mismatched, 0, 11), std::invalid_argument);
}

TEST(MinCut, BridgeIsTheGlobalMinCut) {
  // Two K4 cliques joined by one bridge edge: global min cut = 1.
  Graph g(8);
  for (int u = 0; u < 4; ++u) {
    for (int v = u + 1; v < 4; ++v) {
      g.add_edge(u, v);
      g.add_edge(4 + u, 4 + v);
    }
  }
  g.add_edge(0, 4);
  g.finalize();
  const StCut cut = flow::global_min_cut(g);
  EXPECT_DOUBLE_EQ(cut.value, 1.0);
  ASSERT_EQ(cut.cut_edges.size(), 1u);
  const int side_sum = std::accumulate(cut.source_side.begin(),
                                       cut.source_side.end(), 0);
  EXPECT_EQ(side_sum, 4);
}

TEST(MinCut, HypercubeStCutIsDegree) {
  // Every s-t min cut of the unit-capacity d-cube is d (Menger: d
  // edge-disjoint paths between any two nodes).
  const Network hc = make_hypercube(4);
  const StCut cut = flow::st_min_cut(hc.graph, 0, 15);
  EXPECT_DOUBLE_EQ(cut.value, 4.0);
  const FlowNetwork net = FlowNetwork::from_network(hc);
  EXPECT_EQ(net.num_nodes(), hc.graph.num_nodes());
  EXPECT_EQ(net.num_arcs(), hc.graph.num_arcs());
}

TEST(MinCut, MatchesExactLpSingleCommodityThroughput) {
  // A TM with one unit demand s->t has throughput == max-flow(s, t): the
  // multicommodity LP degenerates to single-commodity max flow.
  for (const std::uint64_t seed : {2ULL, 5ULL, 9ULL}) {
    const Network jf = make_jellyfish(10, 3, 1, seed);
    TrafficMatrix tm;
    tm.demands = {{0, 7, 1.0}};
    const double lp = mcf::throughput_exact_lp(jf.graph, tm).throughput;
    const StCut cut = flow::st_min_cut(jf.graph, 0, 7);
    EXPECT_NEAR(lp, cut.value, 1e-7 * (1.0 + cut.value)) << "seed " << seed;
  }
}

TEST(MaxFlow, InvalidInputsThrow) {
  const Graph g = path_graph(3);
  FlowNetwork net = FlowNetwork::from_graph(g);
  EXPECT_THROW(flow::max_flow(net, 0, 0), std::invalid_argument);
  EXPECT_THROW(flow::max_flow(net, -1, 2), std::invalid_argument);
  EXPECT_THROW(flow::max_flow(net, 0, 3), std::invalid_argument);
  FlowNetwork unfinalized(2);
  unfinalized.add_arc_pair(0, 1, 1.0);
  EXPECT_THROW(flow::max_flow(unfinalized, 0, 1), std::invalid_argument);
  EXPECT_THROW(FlowNetwork(2).add_arc_pair(0, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(FlowNetwork(2).add_arc_pair(0, 1, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace tb
