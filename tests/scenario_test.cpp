// Structured failure scenarios (PR 10): shared-risk link groups, traffic
// surges/hotspots, incremental-expansion (growth) sweeps, and the
// adversarial worst-case TM search. The battery pins the four contracts
// the scenario layer promises:
//   * every registry family exports validated structural risk groups;
//   * scenarios revert bitwise — groups, surge, hotspot included;
//   * fleet/sweep results are thread-, batch- and shard-invariant;
//   * all sampling is seed-deterministic against independently computed
//     expectation streams (kGroupSampleStream / kHotspotStream).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/evaluator.h"
#include "core/registry.h"
#include "exp/runner.h"
#include "exp/shard.h"
#include "exp/sweep.h"
#include "mcf/adversary.h"
#include "mcf/engine.h"
#include "pool_test_env.h"
#include "store/result_store.h"
#include "tm/synthetic.h"
#include "topo/dragonfly.h"
#include "topo/fattree.h"
#include "topo/hypercube.h"
#include "topo/jellyfish.h"
#include "topo/torus.h"
#include "util/rng.h"

namespace tb {
namespace {

[[maybe_unused]] const int kForcePoolThreads = test_env::force_pool_threads();

mcf::SolveOptions lp_opts() {
  mcf::SolveOptions o;
  o.kind = mcf::SolverKind::ExactLP;
  return o;
}

// --- risk-group derivation ------------------------------------------------

TEST(RiskGroups, EveryRegistryFamilyExportsValidatedGroups) {
  // The fleet's correlated-failure axis assumes groups exist on every
  // instance the registry hands out — bespoke structural groups where the
  // builder derives them, the switch(<v>) fallback everywhere else.
  for (const Family f : all_families()) {
    const Network net = family_representative(f, 16, /*seed=*/1);
    EXPECT_FALSE(net.risk_groups.empty()) << family_name(f);
    EXPECT_NO_THROW(net.validate()) << family_name(f);
    for (const RiskGroup& g : net.risk_groups) {
      EXPECT_FALSE(g.label.empty()) << family_name(f);
      EXPECT_FALSE(g.edges.empty()) << family_name(f) << " " << g.label;
    }
  }
}

TEST(RiskGroups, FatTreeAndHypercubeStructuralShapes) {
  // FatTree(k): one pod group per pod (its intra-pod mesh plus its
  // agg->core uplinks), then one uplink-tray group per edge switch.
  const Network ft = make_fat_tree(4);
  const int pods = 4, half = 2, num_edge = pods * half;
  ASSERT_EQ(ft.risk_groups.size(), static_cast<std::size_t>(pods + num_edge));
  for (int p = 0; p < pods; ++p) {
    EXPECT_EQ(ft.risk_groups[p].label, "pod(" + std::to_string(p) + ")");
    // half*half intra-pod links + half*half uplinks.
    EXPECT_EQ(ft.risk_groups[p].edges.size(), 8u);
  }
  for (int e = 0; e < num_edge; ++e) {
    const RiskGroup& g = ft.risk_groups[static_cast<std::size_t>(pods + e)];
    EXPECT_EQ(g.label, "edge(" + std::to_string(e) + ")");
    EXPECT_EQ(g.edges.size(), static_cast<std::size_t>(half));
  }

  // Hypercube(d): one dimension-plane group per flipped bit, each with
  // 2^(d-1) links, tiling the edge set exactly.
  const Network hc = make_hypercube(4);
  ASSERT_EQ(hc.risk_groups.size(), 4u);
  std::set<int> covered;
  for (int b = 0; b < 4; ++b) {
    EXPECT_EQ(hc.risk_groups[b].label, "dim(" + std::to_string(b) + ")");
    EXPECT_EQ(hc.risk_groups[b].edges.size(), 8u);
    covered.insert(hc.risk_groups[b].edges.begin(),
                   hc.risk_groups[b].edges.end());
  }
  EXPECT_EQ(static_cast<int>(covered.size()), hc.graph.num_edges());
}

TEST(RiskGroups, TorusAndDragonflyStructuralShapes) {
  // Torus: one plane group per dimension, tiling the edges.
  const Network torus = make_torus({4, 4}, 1);
  ASSERT_EQ(torus.risk_groups.size(), 2u);
  std::size_t torus_edges = 0;
  for (int d = 0; d < 2; ++d) {
    EXPECT_EQ(torus.risk_groups[d].label, "dim(" + std::to_string(d) + ")");
    torus_edges += torus.risk_groups[d].edges.size();
  }
  EXPECT_EQ(torus_edges, static_cast<std::size_t>(torus.graph.num_edges()));

  // Dragonfly: one global-cabling group per router group; every global
  // link appears in both endpoint groups, so the membership total is twice
  // the global-link count (groups may overlap by contract).
  const int p = 2, a = 4, h = 2, g = a * h + 1;
  const Network df = make_dragonfly(p, a, h);
  ASSERT_EQ(df.risk_groups.size(), static_cast<std::size_t>(g));
  const int intra = g * a * (a - 1) / 2;
  std::size_t memberships = 0;
  for (int grp = 0; grp < g; ++grp) {
    EXPECT_EQ(df.risk_groups[grp].label, "global(" + std::to_string(grp) + ")");
    memberships += df.risk_groups[grp].edges.size();
  }
  EXPECT_EQ(memberships,
            2u * static_cast<std::size_t>(df.graph.num_edges() - intra));
}

TEST(RiskGroups, JellyfishCableBundlesAreSeededPartition) {
  const Network jf = make_jellyfish(16, 4, 1, /*seed=*/9);
  const int m = jf.graph.num_edges();
  ASSERT_EQ(jf.risk_groups.size(), static_cast<std::size_t>((m + 3) / 4));
  std::set<int> covered;
  for (std::size_t b = 0; b < jf.risk_groups.size(); ++b) {
    EXPECT_EQ(jf.risk_groups[b].label, "bundle(" + std::to_string(b) + ")");
    EXPECT_LE(jf.risk_groups[b].edges.size(), 4u);
    for (const int e : jf.risk_groups[b].edges) {
      EXPECT_TRUE(covered.insert(e).second) << "bundles must be disjoint";
    }
  }
  EXPECT_EQ(static_cast<int>(covered.size()), m);

  // The bundle partition is a pure function of the construction seed.
  const Network again = make_jellyfish(16, 4, 1, /*seed=*/9);
  ASSERT_EQ(again.risk_groups.size(), jf.risk_groups.size());
  for (std::size_t b = 0; b < jf.risk_groups.size(); ++b) {
    EXPECT_EQ(again.risk_groups[b].edges, jf.risk_groups[b].edges);
  }
}

TEST(RiskGroups, EnsureRiskGroupsFallbackAndNoOp) {
  Network net;
  net.name = "path3";
  net.graph = Graph(3);
  net.graph.add_edge(0, 1);
  net.graph.add_edge(1, 2);
  net.graph.finalize();
  net.servers = {1, 1, 1};
  ensure_risk_groups(net);
  ASSERT_EQ(net.risk_groups.size(), 3u);
  EXPECT_EQ(net.risk_groups[0].label, "switch(0)");
  EXPECT_EQ(net.risk_groups[1].edges.size(), 2u);  // middle node: both links
  ensure_risk_groups(net);  // idempotent
  EXPECT_EQ(net.risk_groups.size(), 3u);

  // Bespoke builder groups always win: the fallback never runs over them.
  Network ft = make_fat_tree(4);
  const std::size_t bespoke = ft.risk_groups.size();
  ensure_risk_groups(ft);
  EXPECT_EQ(ft.risk_groups.size(), bespoke);
}

// --- scenario engine ------------------------------------------------------

TEST(ScenarioEngine, CorrelatedGroupSamplingMatchesIndependentStream) {
  mcf::ScenarioSpec spec;
  spec.failed_groups = {2};
  spec.random_group_fraction = 0.5;
  spec.seed = 77;
  const std::vector<int> got = mcf::sampled_risk_groups(spec, 4);

  // The documented stream, computed without the engine: the explicit set
  // plus Rng(mix_seed(seed, kGroupSampleStream)) sampling round(f*G)
  // groups, sorted and deduplicated.
  std::vector<int> expected = {2};
  Rng rng(mix_seed(spec.seed, mcf::kGroupSampleStream));
  for (const int gi : rng.sample_without_replacement(4, 2)) {
    expected.push_back(gi);
  }
  std::sort(expected.begin(), expected.end());
  expected.erase(std::unique(expected.begin(), expected.end()),
                 expected.end());
  EXPECT_EQ(got, expected);

  mcf::ScenarioSpec bad_frac;
  bad_frac.random_group_fraction = 1.5;
  EXPECT_THROW(mcf::sampled_risk_groups(bad_frac, 4), std::invalid_argument);
  mcf::ScenarioSpec no_groups;
  no_groups.random_group_fraction = 0.5;
  EXPECT_THROW(mcf::sampled_risk_groups(no_groups, 0), std::invalid_argument);
  mcf::ScenarioSpec bad_index;
  bad_index.failed_groups = {4};
  EXPECT_THROW(mcf::sampled_risk_groups(bad_index, 4), std::out_of_range);
}

TEST(ScenarioEngine, GroupSurgeHotspotRevertBitwiseAcrossRegistry) {
  // The registry-wide revert contract with every new perturbation kind
  // active at once: after clear_scenario() the working capacities and a
  // cold re-solve must be bitwise the pre-scenario ones on every family.
  for (const Family f : all_families()) {
    const Network net = family_representative(f, 16, /*seed=*/1);
    const TrafficMatrix tm = random_matching(net, 1, /*seed=*/5);
    mcf::ThroughputEngine engine(net);
    const auto base = engine.solve(tm);
    const std::vector<double> caps = engine.arc_capacities();

    mcf::ScenarioSpec spec;
    spec.random_group_fraction = 0.5;
    spec.tm_scale = 1.5;
    spec.hotspot_fraction = 0.25;
    spec.hotspot_factor = 2.0;
    spec.seed = 123;
    engine.apply_scenario(spec);
    EXPECT_GT(engine.failed_group_count(), 0) << family_name(f);
    const auto degraded = engine.solve(tm);
    EXPECT_GE(degraded.throughput, 0.0) << family_name(f);

    engine.clear_scenario();
    EXPECT_EQ(engine.failed_group_count(), 0) << family_name(f);
    EXPECT_EQ(engine.arc_capacities(), caps) << family_name(f);
    const auto restored = engine.solve(tm);
    EXPECT_EQ(restored.throughput, base.throughput) << family_name(f);
    EXPECT_EQ(restored.upper_bound, base.upper_bound) << family_name(f);
    EXPECT_EQ(restored.stats.phases, base.stats.phases) << family_name(f);
    EXPECT_EQ(restored.stats.pivots, base.stats.pivots) << family_name(f);
  }
}

TEST(ScenarioEngine, SurgeScalesExactLpInversely) {
  // Surge scaling touches only the input TM, so the exact LP has a closed
  // form: doubling every demand exactly halves throughput.
  const Network hc = make_hypercube(3);
  const TrafficMatrix tm = all_to_all(hc);
  mcf::ThroughputEngine engine(hc);
  const auto base = engine.solve(tm, lp_opts());
  ASSERT_GT(base.throughput, 0.0);

  mcf::ScenarioSpec surge;
  surge.tm_scale = 2.0;
  engine.apply_scenario(surge);
  EXPECT_EQ(engine.failed_edge_count(), 0);  // capacities untouched
  const auto surged = engine.solve(tm, lp_opts());
  EXPECT_NEAR(surged.throughput, base.throughput / 2.0,
              1e-9 * base.throughput);

  engine.clear_scenario();
  const auto restored = engine.solve(tm, lp_opts());
  EXPECT_EQ(restored.throughput, base.throughput);
}

TEST(ScenarioEngine, HotspotScalingMatchesScenarioScaledTm) {
  const Network jf = make_jellyfish(16, 4, 1, /*seed=*/3);
  const TrafficMatrix tm = random_matching(jf, 2, /*seed=*/9);
  const auto n = static_cast<int>(tm.demands.size());
  ASSERT_GT(n, 0);

  mcf::ScenarioSpec spec;
  spec.hotspot_fraction = 0.5;
  spec.hotspot_factor = 3.0;
  spec.seed = 123;
  const TrafficMatrix scaled = mcf::scenario_scaled_tm(
      tm, spec.tm_scale, spec.hotspot_fraction, spec.hotspot_factor,
      spec.seed);

  // The boosted set is exactly the documented hotspot stream's sample.
  const int k = static_cast<int>(std::llround(0.5 * n));
  Rng rng(mix_seed(spec.seed, mcf::kHotspotStream));
  std::set<int> boosted;
  for (const int i : rng.sample_without_replacement(n, k)) boosted.insert(i);
  for (int i = 0; i < n; ++i) {
    const double factor = boosted.count(i) ? 3.0 : 1.0;
    EXPECT_EQ(scaled.demands[static_cast<std::size_t>(i)].amount,
              tm.demands[static_cast<std::size_t>(i)].amount * factor);
  }

  // An engine with the hotspot scenario active routes that scaled TM and
  // nothing else: bitwise equal to a cold solve of the scaled TM.
  mcf::ThroughputEngine hot(jf);
  hot.apply_scenario(spec);
  const auto via_scenario = hot.solve(tm, lp_opts());
  mcf::ThroughputEngine cold(jf);
  const auto direct = cold.solve(scaled, lp_opts());
  EXPECT_EQ(via_scenario.throughput, direct.throughput);
  EXPECT_EQ(via_scenario.stats.pivots, direct.stats.pivots);
}

TEST(ScenarioEngine, SupersetOfFailedGroupsIsMonotone) {
  // Failing more shared-risk groups can only remove capacity, so exact LP
  // throughput is non-increasing along a group-superset chain
  // (disconnection reports 0, which keeps the chain monotone).
  const Network jf = make_jellyfish(16, 4, 1, /*seed=*/3);
  ASSERT_GE(jf.risk_groups.size(), 3u);
  const TrafficMatrix tm = random_matching(jf, 1, /*seed=*/5);
  double prev = std::numeric_limits<double>::infinity();
  std::vector<int> failed;
  for (int gi = 0; gi < 3; ++gi) {
    failed.push_back(gi);
    mcf::ScenarioSpec spec;
    spec.failed_groups = failed;
    const DegradedResult r = degraded_throughput(jf, tm, spec, lp_opts());
    EXPECT_EQ(r.failed_groups, gi + 1);
    EXPECT_LE(r.degraded, prev + 1e-9);
    prev = r.degraded;
  }
}

// --- scenario fleet -------------------------------------------------------

std::vector<mcf::ScenarioSpec> structured_specs() {
  std::vector<mcf::ScenarioSpec> specs(4);
  specs[0].random_group_fraction = 0.25;
  specs[0].seed = 11;
  specs[1].tm_scale = 1.5;
  specs[2].hotspot_fraction = 0.5;
  specs[2].hotspot_factor = 2.0;
  specs[2].seed = 12;
  specs[3].random_group_fraction = 0.25;
  specs[3].tm_scale = 1.25;
  specs[3].hotspot_fraction = 0.25;
  specs[3].hotspot_factor = 2.0;
  specs[3].seed = 13;
  return specs;
}

TEST(ScenarioFleet, BatchMatchesSerialBitwiseForStructuredScenarios) {
  // The fleet contract extended to the new scenario kinds: one shared
  // baseline + forked warm solves must be bitwise the one-at-a-time
  // degraded_throughput answers, for groups, surge, hotspot and compound.
  const Network jf = make_jellyfish(16, 4, 1, /*seed=*/3);
  const TrafficMatrix tm = random_matching(jf, 2, /*seed=*/7);
  const std::vector<mcf::ScenarioSpec> specs = structured_specs();
  const std::vector<DegradedResult> batch =
      degraded_throughput_batch(jf, tm, specs, lp_opts());
  ASSERT_EQ(batch.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const DegradedResult one = degraded_throughput(jf, tm, specs[i], lp_opts());
    EXPECT_EQ(batch[i].baseline, one.baseline) << i;
    EXPECT_EQ(batch[i].degraded, one.degraded) << i;
    EXPECT_EQ(batch[i].drop, one.drop) << i;
    EXPECT_EQ(batch[i].failed_links, one.failed_links) << i;
    EXPECT_EQ(batch[i].failed_groups, one.failed_groups) << i;
  }
  // The fleet records the resolved group count of each cell.
  EXPECT_EQ(batch[0].failed_groups,
            static_cast<int>(
                mcf::sampled_risk_groups(
                    specs[0], static_cast<int>(jf.risk_groups.size()))
                    .size()));
  EXPECT_EQ(batch[1].failed_groups, 0);
  EXPECT_EQ(batch[1].failed_links, 0);  // surge fails nothing
}

TEST(ScenarioFleet, ParallelAndInlineFanoutAgree) {
  const Network jf = make_jellyfish(16, 4, 1, /*seed=*/3);
  const TrafficMatrix tm = random_matching(jf, 2, /*seed=*/7);
  const std::vector<mcf::ScenarioSpec> specs = structured_specs();
  const std::vector<DegradedResult> parallel = degraded_throughput_batch(
      jf, tm, specs, lp_opts(), /*parallel_cells=*/true);
  const std::vector<DegradedResult> inline_run = degraded_throughput_batch(
      jf, tm, specs, lp_opts(), /*parallel_cells=*/false);
  ASSERT_EQ(parallel.size(), inline_run.size());
  for (std::size_t i = 0; i < parallel.size(); ++i) {
    EXPECT_EQ(parallel[i].degraded, inline_run[i].degraded) << i;
    EXPECT_EQ(parallel[i].drop, inline_run[i].drop) << i;
    EXPECT_EQ(parallel[i].failed_groups, inline_run[i].failed_groups) << i;
  }
}

// --- growth sweeps --------------------------------------------------------

exp::Sweep growth_sweep() {
  exp::Sweep s;
  s.topologies = {exp::representative_spec(Family::Hypercube, 16, 1)};
  s.tms = {exp::a2a_tm()};
  s.solve.kind = mcf::SolverKind::ExactLP;
  s.growth_steps = 3;
  s.growth_start = 0.5;
  s.base_seed = 5;
  return s;
}

TEST(GrowthSweep, FillsColumnsAndFinalStageMatchesIntact) {
  const exp::Sweep sweep = growth_sweep();
  exp::Runner runner;
  const exp::ResultSet rs = runner.run(sweep);
  ASSERT_EQ(rs.size(), 3u);
  for (int g = 0; g < 3; ++g) {
    const exp::CellResult& r = rs.rows()[static_cast<std::size_t>(g)];
    EXPECT_EQ(r.scenario, "grow(step=" + std::to_string(g) + "/3)");
    EXPECT_EQ(r.growth_step, g);
    EXPECT_EQ(r.risk_group, 0);   // fleet cell: actual value, not the NA -1
    EXPECT_EQ(r.tm_scale, 1.0);
    EXPECT_GE(r.throughput, 0.0);
  }
  // The final stage is the full instance: its (exact) throughput matches a
  // plain absolute sweep of the same grid.
  exp::Sweep plain = growth_sweep();
  plain.growth_steps = 0;
  exp::Runner plain_runner;
  const exp::ResultSet intact = plain_runner.run(plain);
  ASSERT_EQ(intact.size(), 1u);
  EXPECT_NEAR(rs.rows()[2].throughput, intact.rows()[0].throughput, 1e-9);
  EXPECT_EQ(intact.rows()[0].growth_step, -1);  // non-fleet cell keeps NA
}

TEST(GrowthSweep, SerialAndParallelCsvIdentical) {
  const exp::Sweep sweep = growth_sweep();
  exp::Runner serial(/*parallel=*/false);
  exp::Runner parallel(/*parallel=*/true);
  EXPECT_EQ(serial.run(sweep).to_csv(), parallel.run(sweep).to_csv());
}

TEST(GrowthSweep, ShardedMergeReproducesUnshardedBytes) {
  const exp::Sweep sweep = growth_sweep();
  exp::Runner whole;
  const std::string expected =
      "# growth\n" + whole.run(sweep).to_csv() + "\n";
  std::string cat;
  for (std::size_t i = 0; i < 2; ++i) {
    exp::Runner shard_runner;  // fresh runner: a separate machine
    exp::RunOptions opts;
    opts.shard = exp::ShardSpec{i, 2};
    std::ostringstream os;
    shard_runner.run(sweep, opts).emit(os, "growth");
    cat += os.str();
  }
  std::istringstream in(cat);
  EXPECT_EQ(exp::merge_slices(in), expected);
}

TEST(GrowthSweep, ModeValidationRejectsBadCombos) {
  exp::Runner runner;
  exp::Sweep s = growth_sweep();
  s.scenarios = exp::random_failure_scenarios({0.1});
  EXPECT_THROW(runner.run(s), std::invalid_argument);
  s = growth_sweep();
  s.trials = 2;
  EXPECT_THROW(runner.run(s), std::invalid_argument);
  s = growth_sweep();
  s.warm_start = true;
  EXPECT_THROW(runner.run(s), std::invalid_argument);
  s = growth_sweep();
  s.cut_bounds = true;
  EXPECT_THROW(runner.run(s), std::invalid_argument);
  s = growth_sweep();
  s.growth_start = 0.0;
  EXPECT_THROW(runner.run(s), std::invalid_argument);
  s = growth_sweep();
  s.growth_steps = -1;
  EXPECT_THROW(runner.run(s), std::invalid_argument);
}

// --- correlated failures through the sweep --------------------------------

TEST(ScenarioSweep, CorrelatedFailuresColumnsAndThreadInvariance) {
  exp::Sweep sweep;
  sweep.topologies = {exp::representative_spec(Family::Jellyfish, 16, 1)};
  sweep.tms = {exp::a2a_tm()};
  sweep.solve.kind = mcf::SolverKind::ExactLP;
  sweep.scenarios = exp::correlated_group_scenarios({0.25});
  sweep.scenarios.push_back(exp::surge_scenario(1.5));
  sweep.scenarios.push_back(exp::hotspot_scenario(0.5, 2.0));
  sweep.base_seed = 7;

  exp::Runner serial(/*parallel=*/false);
  exp::Runner parallel(/*parallel=*/true);
  const exp::ResultSet rs = parallel.run(sweep);
  EXPECT_EQ(serial.run(sweep).to_csv(), rs.to_csv());

  ASSERT_EQ(rs.size(), 3u);
  const std::size_t groups =
      sweep.topologies[0].build()->risk_groups.size();
  const exp::CellResult& correlated = rs.rows()[0];
  EXPECT_EQ(correlated.scenario, "groups(f=0.25)");
  EXPECT_EQ(correlated.risk_group,
            static_cast<int>(std::llround(0.25 * static_cast<double>(groups))));
  EXPECT_GT(correlated.failed_links, 0);
  EXPECT_EQ(correlated.tm_scale, 1.0);
  const exp::CellResult& surge = rs.rows()[1];
  EXPECT_EQ(surge.scenario, "surge(x=1.5)");
  EXPECT_EQ(surge.risk_group, 0);
  EXPECT_EQ(surge.failed_links, 0);
  EXPECT_EQ(surge.tm_scale, 1.5);
  const exp::CellResult& hotspot = rs.rows()[2];
  EXPECT_EQ(hotspot.scenario, "hotspot(f=0.5,x=2)");
  EXPECT_EQ(hotspot.tm_scale, 1.0);
  for (const exp::CellResult& r : rs.rows()) {
    EXPECT_EQ(r.growth_step, -1);  // failure axis, not growth
    EXPECT_FALSE(std::isnan(r.throughput_drop));
  }
}

// --- result schema --------------------------------------------------------

TEST(Results, SchemaCarriesStructuredScenarioColumns) {
  // Column order is part of the byte contract; the store's schema hash is
  // derived from the header, so the new columns bump it automatically and
  // pre-PR stores are rejected loudly instead of mis-parsed.
  EXPECT_NE(
      exp::csv_header().find("throughput_drop,risk_group,tm_scale,growth_step,pivots"),
      std::string::npos);
  EXPECT_EQ(store::store_schema_fingerprint(),
            store::fnv1a64(exp::csv_header()));
}

// --- adversarial worst-case search ----------------------------------------

TEST(Adversary, SearchIsDeterministicAndNoWorseThanLm) {
  const Network jf = make_jellyfish(12, 3, 1, /*seed=*/5);
  mcf::WorstCaseOptions opts;
  opts.iterations = 8;
  opts.restarts = 1;
  opts.seed = 3;
  opts.solve = lp_opts();
  const mcf::WorstCaseResult a = mcf::worst_case_matching(jf, opts);
  const mcf::WorstCaseResult b = mcf::worst_case_matching(jf, opts);
  EXPECT_EQ(a.throughput, b.throughput);
  EXPECT_EQ(a.initial, b.initial);
  EXPECT_EQ(a.solves, b.solves);
  ASSERT_EQ(a.tm.demands.size(), b.tm.demands.size());
  for (std::size_t i = 0; i < a.tm.demands.size(); ++i) {
    EXPECT_EQ(a.tm.demands[i].src, b.tm.demands[i].src);
    EXPECT_EQ(a.tm.demands[i].dst, b.tm.demands[i].dst);
    EXPECT_EQ(a.tm.demands[i].amount, b.tm.demands[i].amount);
  }

  // The longest-matching candidate anchors the search: the result can only
  // be at least as hard (strict-decrease acceptance).
  EXPECT_GT(a.initial, 0.0);
  EXPECT_LE(a.throughput, a.initial + 1e-12);
  EXPECT_GT(a.solves, 0);

  // The reported TM is a valid aggregated matching TM.
  EXPECT_EQ(a.tm.name, "WorstCase");
  ASSERT_FALSE(a.tm.demands.empty());
  for (const Demand& d : a.tm.demands) {
    EXPECT_NE(d.src, d.dst);
    EXPECT_GE(d.src, 0);
    EXPECT_LT(d.src, jf.graph.num_nodes());
    EXPECT_GE(d.dst, 0);
    EXPECT_LT(d.dst, jf.graph.num_nodes());
    EXPECT_GT(d.amount, 0.0);
  }
}

TEST(Adversary, RejectsInvalidArguments) {
  const Network jf = make_jellyfish(12, 3, 1, /*seed=*/5);
  mcf::WorstCaseOptions bad;
  bad.iterations = -1;
  EXPECT_THROW(mcf::worst_case_matching(jf, bad), std::invalid_argument);
  bad = {};
  bad.restarts = -1;
  EXPECT_THROW(mcf::worst_case_matching(jf, bad), std::invalid_argument);

  // Fewer than two server slots: no matching exists.
  Network tiny;
  tiny.name = "tiny";
  tiny.graph = Graph(2);
  tiny.graph.add_edge(0, 1);
  tiny.graph.finalize();
  tiny.servers = {1, 0};
  EXPECT_THROW(mcf::worst_case_matching(tiny), std::invalid_argument);
}

}  // namespace
}  // namespace tb
