// Property-based sweeps (TEST_P) over families, sizes and seeds: the
// paper's structural invariants must hold for every instance, not just
// hand-picked ones.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "core/evaluator.h"
#include "core/registry.h"
#include "cuts/sparsest_cut.h"
#include "graph/algorithms.h"
#include "mcf/garg_konemann.h"
#include "mcf/throughput.h"
#include "tm/synthetic.h"
#include "topo/hypercube.h"
#include "topo/jellyfish.h"
#include "util/rng.h"

namespace tb {
namespace {

// ---------------------------------------------------------------------------
// Invariants over every registry family.

class FamilyInvariants : public ::testing::TestWithParam<Family> {};

TEST_P(FamilyInvariants, InstancesValidateAndAreConnected) {
  for (const Network& net : family_instances(GetParam(), 1, 300, 1)) {
    net.validate();
    EXPECT_TRUE(is_connected(net.graph)) << net.name;
    EXPECT_GE(net.host_nodes().size(), 2u) << net.name;
  }
}

TEST_P(FamilyInvariants, SyntheticTmsAreHoseModel) {
  const Network net = family_representative(GetParam(), 64, 1);
  for (const TrafficMatrix& tm :
       {all_to_all(net), random_matching(net, 1, 5), random_matching(net, 5, 5),
        longest_matching(net)}) {
    validate_tm(tm, net, /*check_hose=*/true);
  }
}

TEST_P(FamilyInvariants, TmHardnessLadderHolds) {
  // Paper Fig 4: T_A2A >= T_RM(5) >= T_RM(1) >= T_LM >= T_A2A/2.
  const Network net = family_representative(GetParam(), 40, 1);
  mcf::SolveOptions opts;
  opts.epsilon = 0.04;
  const double a2a = mcf::compute_throughput(net, all_to_all(net), opts).throughput;
  const double rm5 =
      mcf::compute_throughput(net, random_matching(net, 5, 3), opts).throughput;
  const double rm1 =
      mcf::compute_throughput(net, random_matching(net, 1, 3), opts).throughput;
  const double lm =
      mcf::compute_throughput(net, longest_matching(net), opts).throughput;
  const double tol = 1.10;  // solver gap headroom (two 4% solves compound)
  EXPECT_GE(a2a * tol, rm5) << net.name;
  EXPECT_GE(rm5 * tol, rm1) << net.name;
  EXPECT_GE(rm1 * tol, lm) << net.name;
  EXPECT_GE(lm * tol, a2a / 2.0) << net.name;  // Theorem 2
}

TEST_P(FamilyInvariants, VolumetricAndCutBoundsDominateThroughput) {
  const Network net = family_representative(GetParam(), 40, 1);
  const TrafficMatrix tm = longest_matching(net);
  mcf::SolveOptions opts;
  opts.epsilon = 0.04;
  const double thr = mcf::compute_throughput(net, tm, opts).throughput;
  EXPECT_LE(thr, mcf::volumetric_upper_bound(net.graph, tm) * 1.001) << net.name;
  const double cut = cuts::best_sparse_cut(net.graph, tm).best.sparsity;
  EXPECT_LE(thr, cut * 1.001) << net.name;
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FamilyInvariants,
                         ::testing::ValuesIn(all_families()),
                         [](const ::testing::TestParamInfo<Family>& param) {
                           return family_name(param.param);
                         });

// ---------------------------------------------------------------------------
// GK certificate across sizes/degrees/seeds.

class GkCertificate
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GkCertificate, GapAndFeasibilityHold) {
  const auto [n, degree, seed] = GetParam();
  const Network net =
      make_jellyfish(n, degree, 1, static_cast<std::uint64_t>(seed));
  const TrafficMatrix tm =
      random_matching(net, 1, static_cast<std::uint64_t>(seed) + 100);
  mcf::GkOptions opts;
  opts.plateau_guard = false;  // strict-epsilon certificate tests
  opts.epsilon = 0.06;
  const mcf::GkResult r = mcf::max_concurrent_flow(net.graph, tm, opts);
  EXPECT_GT(r.throughput, 0.0);
  EXPECT_LE(r.throughput, r.upper_bound * (1.0 + 1e-9));
  EXPECT_LE(r.upper_bound, r.throughput * (1.0 + opts.epsilon + 1e-9));
  for (int a = 0; a < net.graph.num_arcs(); ++a) {
    EXPECT_LE(r.arc_flow[static_cast<std::size_t>(a)],
              net.graph.arc_cap(a) * (1.0 + 1e-9));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, GkCertificate,
                         ::testing::Combine(::testing::Values(16, 32, 64),
                                            ::testing::Values(3, 6),
                                            ::testing::Values(1, 2)));

// ---------------------------------------------------------------------------
// Exact-vs-GK agreement across small random instances.

class SolverAgreement : public ::testing::TestWithParam<int> {};

TEST_P(SolverAgreement, GkWithinEpsilonOfSimplex) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Network net = make_jellyfish(12, 3, 1, seed);
  const TrafficMatrix tm = random_matching(net, 1, seed + 7);
  const double exact = mcf::throughput_exact_lp(net.graph, tm).throughput;
  mcf::GkOptions opts;
  opts.plateau_guard = false;  // strict-epsilon certificate tests
  opts.epsilon = 0.03;
  const mcf::GkResult gk = mcf::max_concurrent_flow(net.graph, tm, opts);
  EXPECT_LE(gk.throughput, exact * (1.0 + 1e-6)) << "primal must lower-bound";
  EXPECT_GE(gk.throughput, exact * (1.0 - 0.035)) << "primal within gap";
  EXPECT_GE(gk.upper_bound, exact * (1.0 - 1e-6)) << "dual must upper-bound";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverAgreement, ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// Hypercube closed forms across dimensions.

class HypercubeClosedForm : public ::testing::TestWithParam<int> {};

TEST_P(HypercubeClosedForm, LongestMatchingSaturatesAllLinks) {
  // LM pairs antipodes (distance d); per-ToR hose rows of 1 then give
  // volume t*n*d over n*d unit arcs -> t = 1 exactly, empirically achieved
  // (paper §II-C: "all links will be perfectly utilized").
  const int d = GetParam();
  const Network hc = make_hypercube(d);
  const TrafficMatrix tm = longest_matching(hc);
  mcf::SolveOptions opts;
  opts.epsilon = 0.03;
  opts.kind = d <= 4 ? mcf::SolverKind::ExactLP : mcf::SolverKind::GargKonemann;
  const double thr = mcf::compute_throughput(hc, tm, opts).throughput;
  if (d <= 4) {
    EXPECT_NEAR(thr, 1.0, 1e-6);
  } else {
    EXPECT_NEAR(thr, 1.0, 0.04);
  }
}

TEST_P(HypercubeClosedForm, AllToAllIsTwoish) {
  // Uniform shortest-path routing gives t = 2 * n/(n-1) * ... exactly:
  // total demand-weighted distance = n*d/2, capacity n*d -> t = 2 with the
  // (n-1)/n row correction folded into the demands.
  const int d = GetParam();
  const Network hc = make_hypercube(d);
  mcf::SolveOptions opts;
  opts.epsilon = 0.03;
  opts.kind = d <= 4 ? mcf::SolverKind::ExactLP : mcf::SolverKind::GargKonemann;
  const double thr = mcf::compute_throughput(hc, all_to_all(hc), opts).throughput;
  const double expected = mcf::volumetric_upper_bound(hc.graph, all_to_all(hc));
  EXPECT_NEAR(thr / expected, 1.0, d <= 4 ? 1e-6 : 0.04);
}

INSTANTIATE_TEST_SUITE_P(Dims, HypercubeClosedForm, ::testing::Range(3, 7));

// ---------------------------------------------------------------------------
// Failure injection: removing capacity can only hurt.

TEST(FailureInjection, EdgeRemovalIsMonotone) {
  const Network base = make_jellyfish(20, 4, 1, 33);
  const TrafficMatrix tm = random_matching(base, 1, 5);
  mcf::SolveOptions opts;
  opts.epsilon = 0.03;
  const double full = mcf::compute_throughput(base, tm, opts).throughput;

  // Halve the capacity of five edges (keeps connectivity trivially).
  Network degraded = base;
  Graph g(base.graph.num_nodes());
  for (int e = 0; e < base.graph.num_edges(); ++e) {
    g.add_edge(base.graph.edge_u(e), base.graph.edge_v(e),
               e < 5 ? 0.5 : base.graph.edge_cap(e));
  }
  g.finalize();
  degraded.graph = std::move(g);
  const double cut = mcf::compute_throughput(degraded, tm, opts).throughput;
  EXPECT_LE(cut, full * (1.0 + 0.07));
}

TEST(FailureInjection, DisconnectedDemandThrows) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.finalize();
  TrafficMatrix tm;
  tm.demands = {{0, 3, 1.0}};
  EXPECT_THROW(mcf::max_concurrent_flow(g, tm), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Randomized invariants on seeded instances: every stream below derives
// from mix_seed so the sweep is reproducible bit-for-bit, and each
// invariant is stated against *certified* quantities, so the assertions
// are exact (up to fp noise) rather than gap-padded heuristics.

class SeededInvariants : public ::testing::TestWithParam<int> {};

TEST_P(SeededInvariants, ThroughputNeverExceedsCutUpperBound) {
  const auto stream = static_cast<std::uint64_t>(GetParam());
  const std::uint64_t seed = mix_seed(0xC07, stream);
  const Network net =
      make_jellyfish(14 + 2 * GetParam(), 4, 1, seed);
  const TrafficMatrix tm =
      random_matching(net, 1 + GetParam() % 3, mix_seed(seed, 1));
  mcf::SolveOptions opts;
  opts.epsilon = 0.05;
  const double thr = mcf::compute_throughput(net, tm, opts).throughput;
  // Any CutBound is an upper bound on the optimum, hence on every
  // certified-feasible value — the whole battery must dominate.
  CutBoundOptions cb;
  cb.seed = mix_seed(seed, 2);
  const CutBoundResult cut = cut_upper_bound(net, tm, cb);
  EXPECT_LE(thr, cut.bound * (1.0 + 1e-9))
      << net.name << " via " << cut.method;
}

TEST_P(SeededInvariants, ThroughputMonotoneUnderCapacityIncrease) {
  const std::uint64_t seed = mix_seed(0xCAFE, GetParam());
  const Network net = make_jellyfish(16, 4, 1, seed);
  const TrafficMatrix tm = random_matching(net, 1, mix_seed(seed, 1));
  mcf::GkOptions opts;
  opts.epsilon = 0.05;
  mcf::GkSolver solver(net.graph);
  const mcf::GkResult before = solver.solve(tm, opts);
  // Raise a seeded subset of edge capacities: every flow feasible before
  // stays feasible, so OPT cannot drop — the new certified upper bound
  // must dominate the old certified feasible value exactly.
  Rng rng(mix_seed(seed, 2));
  for (int e = 0; e < net.graph.num_edges(); ++e) {
    if (rng.next_bool(0.5)) {
      solver.set_edge_capacity(e, solver.edge_capacity(e) * 2.0);
    }
  }
  const mcf::GkResult after = solver.solve(tm, opts);
  EXPECT_GE(after.upper_bound, before.throughput * (1.0 - 1e-9)) << net.name;
}

TEST_P(SeededInvariants, ThroughputInvariantUnderArcPermutation) {
  // The optimum is a property of the network, not of arc ids: rebuilding
  // the same topology with a permuted edge insertion order must not move
  // the exact value, and GK's certified intervals must still overlap.
  const std::uint64_t seed = mix_seed(0xD1CE, GetParam());
  const Network net = make_jellyfish(12, 3, 1, seed);
  const TrafficMatrix tm = random_matching(net, 1, mix_seed(seed, 1));

  Rng rng(mix_seed(seed, 2));
  const std::vector<int> perm = rng.permutation(net.graph.num_edges());
  Graph shuffled(net.graph.num_nodes());
  for (const int e : perm) {
    shuffled.add_edge(net.graph.edge_u(e), net.graph.edge_v(e),
                      net.graph.edge_cap(e));
  }
  shuffled.finalize();

  const double exact = mcf::throughput_exact_lp(net.graph, tm).throughput;
  const double exact_perm = mcf::throughput_exact_lp(shuffled, tm).throughput;
  EXPECT_NEAR(exact_perm / exact, 1.0, 1e-7);

  mcf::GkOptions opts;
  opts.epsilon = 0.05;
  opts.plateau_guard = false;
  const mcf::GkResult gk = mcf::max_concurrent_flow(net.graph, tm, opts);
  const mcf::GkResult gk_perm = mcf::max_concurrent_flow(shuffled, tm, opts);
  EXPECT_LE(gk.throughput, gk_perm.upper_bound * (1.0 + 1e-9));
  EXPECT_LE(gk_perm.throughput, gk.upper_bound * (1.0 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Streams, SeededInvariants, ::testing::Range(0, 6));

}  // namespace
}  // namespace tb
