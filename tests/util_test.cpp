#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/env.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace tb {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, MixSeedGoldenValues) {
  // Pinned outputs of the published mixing function. mix_seed positions
  // every cell of a sweep in its seed stream (runner.h) and distributed
  // shards rely on that position stability for byte-identical merges
  // (shard.h) — so these are wire-format constants, not implementation
  // details. If a change here is intentional, every recorded sweep CSV and
  // slice in the wild silently changes value; bump deliberately.
  EXPECT_EQ(mix_seed(0, 0), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(mix_seed(1, 0), 0x4c7924e17855434fULL);
  EXPECT_EQ(mix_seed(0, 1), 0xbeeb8da1658eec67ULL);
  // tiny_sweep's base seed 5 at cell indices 0..2: the cell seeds the
  // `seed` CSV column records.
  EXPECT_EQ(mix_seed(5, 0), 0xc9212166f71eee9cULL);
  EXPECT_EQ(mix_seed(5, 1), 0xe675938c491b9be0ULL);
  EXPECT_EQ(mix_seed(5, 2), 0x2ada12891c4e0eadULL);
  // Three-way (cell, trial) streams: left-associative nesting
  // mix_seed(mix_seed(a, b), c).
  EXPECT_EQ(mix_seed(5, 3, 0), 0xd205f79ba31b5e5aULL);
  EXPECT_EQ(mix_seed(5, 3, 1), 0x421c22b1c19c036fULL);
  EXPECT_EQ(mix_seed(11, 2, 4), 0x6ea070d6646c2a7dULL);
  EXPECT_EQ(mix_seed(5, 3, 0), mix_seed(mix_seed(5, 3), 0));
  // No degenerate fixed point at the extremes.
  const std::uint64_t max = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(mix_seed(max, max), 0x8d63a8fdfcda5d88ULL);
}

TEST(Rng, BoundedIsInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.next_u64(17), 17u);
  }
}

TEST(Rng, BoundedCoversAllResidues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5'000; ++i) seen.insert(rng.next_u64(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(17);
  const std::vector<int> p = rng.permutation(50);
  std::set<int> s(p.begin(), p.end());
  EXPECT_EQ(s.size(), 50u);
  EXPECT_EQ(*s.begin(), 0);
  EXPECT_EQ(*s.rbegin(), 49);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(19);
  const std::vector<int> s = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(s.size(), 30u);
  std::set<int> distinct(s.begin(), s.end());
  EXPECT_EQ(distinct.size(), 30u);
  for (const int v : s) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(Rng, ForkStreamsAreIndependent) {
  Rng base(23);
  Rng c1 = base.fork(1);
  Rng c2 = base.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (c1() == c2());
  EXPECT_LT(same, 3);
}

TEST(Stats, SummaryBasics) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_NEAR(s.stddev, 1.5811, 1e-3);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  // t(4) = 2.776; ci = 2.776 * 1.5811 / sqrt(5)
  EXPECT_NEAR(s.ci95, 2.776 * 1.5811 / std::sqrt(5.0), 1e-3);
}

TEST(Stats, EmptyAndSingleton) {
  EXPECT_EQ(summarize({}).n, 0u);
  const std::vector<double> one{7.0};
  const Summary s = summarize(one);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  // A single sample has no dispersion estimate — NaN sentinel, not a
  // spuriously exact zero-width interval.
  EXPECT_TRUE(std::isnan(s.ci95));
  EXPECT_TRUE(std::isnan(s.stddev));
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 5.0);
}

TEST(Stats, TCriticalMonotone) {
  EXPECT_GT(t_critical_95(1), t_critical_95(5));
  EXPECT_GT(t_critical_95(5), t_critical_95(100));
  EXPECT_DOUBLE_EQ(t_critical_95(1000), 1.96);
}

TEST(Table, AlignedTextAndCsv) {
  Table t({"name", "value"});
  t.add_row({"alpha", Table::fmt(1.23456, 3)});
  t.add_row({"b", "2"});
  EXPECT_EQ(t.num_rows(), 2u);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("name,value"), std::string::npos);
  EXPECT_NE(csv.find("alpha,1.235"), std::string::npos);
  const std::string txt = t.to_text();
  EXPECT_NE(txt.find("alpha"), std::string::npos);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SubmitPropagatesCompletion) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 32; ++i) {
    futs.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(5, 5, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, ParallelForPropagatesExceptionAfterDrainingChunks) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::vector<int> sink(256, 0);
  EXPECT_THROW(pool.parallel_for(0, sink.size(),
                                 [&](std::size_t i) {
                                   if (i % 64 == 1) {
                                     throw std::runtime_error("boom");
                                   }
                                   sink[i] = 1;
                                   ran.fetch_add(1);
                                 }),
               std::runtime_error);
  EXPECT_GT(ran.load(), 0);
  // Every chunk was drained before the rethrow, so nothing still touches
  // `sink` and the pool stays usable.
  pool.parallel_for(0, sink.size(), [&](std::size_t i) { sink[i] = 2; });
  for (const int v : sink) EXPECT_EQ(v, 2);
}

TEST(ThreadPool, NestedParallelForRunsInlineOnWorkers) {
  ThreadPool pool(2);
  std::atomic<int> outer{0};
  std::atomic<int> inner{0};
  pool.parallel_for(0, 4, [&](std::size_t) {
    EXPECT_TRUE(ThreadPool::in_worker());
    outer.fetch_add(1);
    // Re-entering parallel_for from a worker must not submit (and thus
    // cannot deadlock a saturated pool); it runs the range inline.
    pool.parallel_for(0, 8, [&](std::size_t) { inner.fetch_add(1); });
  });
  EXPECT_EQ(outer.load(), 4);
  EXPECT_EQ(inner.load(), 32);
}

TEST(ThreadPool, NestedParallelForAcrossDistinctPoolsRunsInline) {
  // The fleet-inside-runner shape: cells run on the shared pool while the
  // solver targets a dedicated solver pool. in_worker() is pool-agnostic:
  // a worker of pool A re-entering parallel_for on pool B must inline —
  // never submit — or A's workers could block on futures only B's (also
  // saturated, also nested) workers might satisfy. Every index must run
  // exactly once, in order within each outer slot (no reordering).
  ThreadPool outer_pool(2);
  ThreadPool inner_pool(2);
  constexpr std::size_t kOuter = 4;
  constexpr std::size_t kInner = 8;
  std::array<std::array<int, kInner>, kOuter> sequence{};
  outer_pool.parallel_for(0, kOuter, [&](std::size_t i) {
    int next = 0;
    inner_pool.parallel_for(0, kInner, [&](std::size_t j) {
      sequence[i][j] = next++;  // inline => strictly sequential per slot
    });
  });
  for (std::size_t i = 0; i < kOuter; ++i) {
    for (std::size_t j = 0; j < kInner; ++j) {
      EXPECT_EQ(sequence[i][j], static_cast<int>(j)) << i;
    }
  }
}


TEST(EnvKnobs, IntKnobParsesClampsAndRejects) {
  ::unsetenv("TOPOBENCH_TEST_KNOB");
  EXPECT_EQ(env::int_knob("TOPOBENCH_TEST_KNOB", 7, 0, 512), 7);
  ::setenv("TOPOBENCH_TEST_KNOB", "12", 1);
  EXPECT_EQ(env::int_knob("TOPOBENCH_TEST_KNOB", 7, 0, 512), 12);
  for (const char* bad : {"", " ", "abc", "3x", "1.5", "-1", "513"}) {
    ::setenv("TOPOBENCH_TEST_KNOB", bad, 1);
    EXPECT_THROW(env::int_knob("TOPOBENCH_TEST_KNOB", 7, 0, 512),
                 std::invalid_argument)
        << '"' << bad << '"';
  }
  ::unsetenv("TOPOBENCH_TEST_KNOB");
}

TEST(EnvKnobs, FlagKnobIsStrictZeroOne) {
  ::unsetenv("TOPOBENCH_TEST_FLAG");
  EXPECT_FALSE(env::flag_knob("TOPOBENCH_TEST_FLAG", false));
  EXPECT_TRUE(env::flag_knob("TOPOBENCH_TEST_FLAG", true));
  ::setenv("TOPOBENCH_TEST_FLAG", "1", 1);
  EXPECT_TRUE(env::flag_knob("TOPOBENCH_TEST_FLAG", false));
  ::setenv("TOPOBENCH_TEST_FLAG", "0", 1);
  EXPECT_FALSE(env::flag_knob("TOPOBENCH_TEST_FLAG", true));
  for (const char* bad : {"", "true", "yes", "2"}) {
    ::setenv("TOPOBENCH_TEST_FLAG", bad, 1);
    EXPECT_THROW(env::flag_knob("TOPOBENCH_TEST_FLAG", false),
                 std::invalid_argument)
        << '"' << bad << '"';
  }
  ::unsetenv("TOPOBENCH_TEST_FLAG");
}

TEST(Json, ParsesScalarsArraysAndOrderedObjects) {
  const json::Value v = json::parse(
      R"({"b": 1, "a": [true, null, "x\u00e9", -2.5], "b2": {"n": 3}})");
  ASSERT_EQ(v.kind, json::Kind::Object);
  EXPECT_EQ(v.members[0].first, "b");   // document order preserved
  EXPECT_EQ(v.members[1].first, "a");
  const json::Value* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items.size(), 4u);
  EXPECT_TRUE(a->items[0].as_bool("x"));
  EXPECT_EQ(a->items[1].kind, json::Kind::Null);
  EXPECT_EQ(a->items[2].as_string("x"), "x\xc3\xa9");
  EXPECT_EQ(a->items[3].as_number("x"), -2.5);
  EXPECT_EQ(v.find("b2")->find("n")->as_int("n", 0, 10), 3);
}

TEST(Json, DumpIsDeterministicAndRoundTrips) {
  json::Value o = json::Value::object();
  o.set("z", json::Value::number_v(0.1));
  o.set("a", json::Value::string_v("tab\there \"quote\""));
  json::Value arr = json::Value::array();
  arr.items.push_back(json::Value::boolean_v(false));
  arr.items.push_back(json::Value::null());
  o.set("list", std::move(arr));
  const std::string text = json::dump(o);
  EXPECT_EQ(text,
            "{\"z\": 0.10000000000000001, "
            "\"a\": \"tab\\there \\\"quote\\\"\", "
            "\"list\": [false, null]}");
  EXPECT_EQ(json::dump(json::parse(text)), text);  // insertion order kept
}

TEST(Json, RejectsMalformedDocumentsLoudly) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\" 1}", "01", "1 2", "\"unterminated",
        "nul", "{\"a\": }", "[1, 2"}) {
    EXPECT_THROW(json::parse(bad), std::invalid_argument) << '"' << bad << '"';
  }
}

TEST(Json, RejectsRunawayNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_THROW(json::parse(deep), std::invalid_argument);
}

TEST(Json, CheckedAccessorsNameTheField) {
  const json::Value v = json::parse(R"({"n": 1.5})");
  EXPECT_THROW(v.find("n")->as_string("n"), std::invalid_argument);
  EXPECT_THROW(v.find("n")->as_int("n", 0, 10), std::invalid_argument);
  EXPECT_EQ(v.find("n")->as_number("n"), 1.5);
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.parallel_for(0, 10, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
  EXPECT_EQ(order.size(), 10u);
}

}  // namespace
}  // namespace tb
