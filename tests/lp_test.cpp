#include <gtest/gtest.h>

#include "lp/simplex.h"

namespace tb::lp {
namespace {

TEST(Simplex, SimpleMaximize) {
  // max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  -> 36 at (2, 6).
  Problem p;
  p.maximize = true;
  const int x = p.add_var(3.0);
  const int y = p.add_var(5.0);
  p.add_row({{{x, 1.0}}, Sense::LE, 4.0});
  p.add_row({{{y, 2.0}}, Sense::LE, 12.0});
  p.add_row({{{x, 3.0}, {y, 2.0}}, Sense::LE, 18.0});
  const Result r = solve(p);
  ASSERT_EQ(r.status, Status::Optimal);
  EXPECT_NEAR(r.objective, 36.0, 1e-8);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(x)], 2.0, 1e-8);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(y)], 6.0, 1e-8);
}

TEST(Simplex, SimpleMinimizeWithGe) {
  // min 2x + 3y  s.t. x + y >= 10, x >= 2, y >= 3 -> x=7, y=3 -> 23.
  Problem p;
  p.maximize = false;
  const int x = p.add_var(2.0);
  const int y = p.add_var(3.0);
  p.add_row({{{x, 1.0}, {y, 1.0}}, Sense::GE, 10.0});
  p.add_row({{{x, 1.0}}, Sense::GE, 2.0});
  p.add_row({{{y, 1.0}}, Sense::GE, 3.0});
  const Result r = solve(p);
  ASSERT_EQ(r.status, Status::Optimal);
  EXPECT_NEAR(r.objective, 23.0, 1e-7);
}

TEST(Simplex, EqualityConstraint) {
  // max x + y s.t. x + y = 5, x <= 3 -> 5.
  Problem p;
  const int x = p.add_var(1.0);
  const int y = p.add_var(1.0);
  p.add_row({{{x, 1.0}, {y, 1.0}}, Sense::EQ, 5.0});
  p.add_row({{{x, 1.0}}, Sense::LE, 3.0});
  const Result r = solve(p);
  ASSERT_EQ(r.status, Status::Optimal);
  EXPECT_NEAR(r.objective, 5.0, 1e-8);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(x)] + r.x[static_cast<std::size_t>(y)],
              5.0, 1e-8);
}

TEST(Simplex, DetectsInfeasible) {
  // x <= 1 and x >= 2.
  Problem p;
  const int x = p.add_var(1.0);
  p.add_row({{{x, 1.0}}, Sense::LE, 1.0});
  p.add_row({{{x, 1.0}}, Sense::GE, 2.0});
  const Result r = solve(p);
  EXPECT_EQ(r.status, Status::Infeasible);
}

TEST(Simplex, DetectsUnbounded) {
  // max x with only x >= 1.
  Problem p;
  const int x = p.add_var(1.0);
  p.add_row({{{x, 1.0}}, Sense::GE, 1.0});
  const Result r = solve(p);
  EXPECT_EQ(r.status, Status::Unbounded);
}

TEST(Simplex, NegativeRhsNormalization) {
  // max -x s.t. -x <= -2  (i.e. x >= 2): optimum -2.
  Problem p;
  const int x = p.add_var(-1.0);
  p.add_row({{{x, -1.0}}, Sense::LE, -2.0});
  const Result r = solve(p);
  ASSERT_EQ(r.status, Status::Optimal);
  EXPECT_NEAR(r.objective, -2.0, 1e-8);
}

TEST(Simplex, DegenerateLpTerminates) {
  // A classic degenerate corner; just require optimal termination.
  Problem p;
  const int x = p.add_var(0.75);
  const int y = p.add_var(-150.0);
  const int z = p.add_var(0.02);
  const int w = p.add_var(-6.0);
  p.add_row({{{x, 0.25}, {y, -60.0}, {z, -0.04}, {w, 9.0}}, Sense::LE, 0.0});
  p.add_row({{{x, 0.5}, {y, -90.0}, {z, -0.02}, {w, 3.0}}, Sense::LE, 0.0});
  p.add_row({{{z, 1.0}}, Sense::LE, 1.0});
  const Result r = solve(p);
  ASSERT_EQ(r.status, Status::Optimal);
  EXPECT_NEAR(r.objective, 0.05, 1e-6);  // Beale's example optimum 1/20
}

TEST(Simplex, DualsMatchKnownValues) {
  // max 3x + 5y (same as SimpleMaximize): duals are (0, 1.5, 1).
  Problem p;
  const int x = p.add_var(3.0);
  const int y = p.add_var(5.0);
  p.add_row({{{x, 1.0}}, Sense::LE, 4.0});
  p.add_row({{{y, 2.0}}, Sense::LE, 12.0});
  p.add_row({{{x, 3.0}, {y, 2.0}}, Sense::LE, 18.0});
  const Result r = solve(p);
  ASSERT_EQ(r.status, Status::Optimal);
  ASSERT_EQ(r.dual.size(), 3u);
  EXPECT_NEAR(r.dual[0], 0.0, 1e-7);
  EXPECT_NEAR(r.dual[1], 1.5, 1e-7);
  EXPECT_NEAR(r.dual[2], 1.0, 1e-7);
  // Strong duality: b'y == c'x.
  EXPECT_NEAR(4 * r.dual[0] + 12 * r.dual[1] + 18 * r.dual[2], r.objective,
              1e-6);
}

TEST(Simplex, WarmBasisResolvesWithoutPivots) {
  // Re-solving the same LP from its optimal basis must take zero pivots;
  // a perturbed-rhs re-solve stays optimal (warm or cold fallback alike).
  Problem p;
  p.maximize = true;
  const int x = p.add_var(3.0);
  const int y = p.add_var(5.0);
  p.add_row({{{x, 1.0}}, Sense::LE, 4.0});
  p.add_row({{{y, 2.0}}, Sense::LE, 12.0});
  p.add_row({{{x, 3.0}, {y, 2.0}}, Sense::LE, 18.0});
  const Result cold = solve(p);
  ASSERT_EQ(cold.status, Status::Optimal);
  ASSERT_EQ(cold.basis.size(), 3u);
  EXPECT_FALSE(cold.warm_started);

  Options warm;
  warm.warm_basis = &cold.basis;
  const Result rerun = solve(p, warm);
  ASSERT_EQ(rerun.status, Status::Optimal);
  EXPECT_TRUE(rerun.warm_started);
  EXPECT_EQ(rerun.iterations, 0);
  EXPECT_NEAR(rerun.objective, cold.objective, 1e-9);

  // Shrink a rhs: same basis stays feasible here, so the warm start holds
  // and the optimum tracks the new rhs.
  p.rows[1].rhs = 10.0;  // 2y <= 10 -> y = 5, x = 8/3 -> 33
  const Result shifted = solve(p, warm);
  ASSERT_EQ(shifted.status, Status::Optimal);
  EXPECT_TRUE(shifted.warm_started);
  EXPECT_NEAR(shifted.objective, 33.0, 1e-8);

  // A garbage candidate basis must fall back to the cold start, not fail.
  const std::vector<int> bogus = {0, 0, 0};
  Options bad;
  bad.warm_basis = &bogus;
  const Result fallback = solve(p, bad);
  ASSERT_EQ(fallback.status, Status::Optimal);
  EXPECT_FALSE(fallback.warm_started);
  EXPECT_NEAR(fallback.objective, 33.0, 1e-8);
}

TEST(Simplex, DuplicateTermsAreMerged) {
  // max x s.t. 0.5x + 0.5x <= 3 -> 3.
  Problem p;
  const int x = p.add_var(1.0);
  p.add_row({{{x, 0.5}, {x, 0.5}}, Sense::LE, 3.0});
  const Result r = solve(p);
  ASSERT_EQ(r.status, Status::Optimal);
  EXPECT_NEAR(r.objective, 3.0, 1e-8);
}

TEST(Simplex, ZeroRowsMeansBoundOnlyProblem) {
  Problem p;
  p.maximize = false;
  p.add_var(1.0);
  const Result r = solve(p);
  ASSERT_EQ(r.status, Status::Optimal);
  EXPECT_DOUBLE_EQ(r.objective, 0.0);
}

TEST(Simplex, MaxFlowAsLp) {
  // s-t max flow on a diamond: s->a(3), s->b(2), a->t(2), b->t(3), a->b(1).
  // Max flow = 5 (the min cut is {a->t, b->t}). Arcs are variables with
  // conservation at a and b.
  Problem p;
  const int sa = p.add_var(0.0);
  const int sb = p.add_var(0.0);
  const int at = p.add_var(1.0);  // objective counts arrivals at t
  const int bt = p.add_var(1.0);
  const int ab = p.add_var(0.0);
  p.add_row({{{sa, 1.0}}, Sense::LE, 3.0});
  p.add_row({{{sb, 1.0}}, Sense::LE, 2.0});
  p.add_row({{{at, 1.0}}, Sense::LE, 2.0});
  p.add_row({{{bt, 1.0}}, Sense::LE, 3.0});
  p.add_row({{{ab, 1.0}}, Sense::LE, 1.0});
  p.add_row({{{sa, 1.0}, {at, -1.0}, {ab, -1.0}}, Sense::EQ, 0.0});
  p.add_row({{{sb, 1.0}, {ab, 1.0}, {bt, -1.0}}, Sense::EQ, 0.0});
  const Result r = solve(p);
  ASSERT_EQ(r.status, Status::Optimal);
  EXPECT_NEAR(r.objective, 5.0, 1e-8);
}

}  // namespace
}  // namespace tb::lp
