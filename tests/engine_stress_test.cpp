// Seeded stress for the ThroughputEngine session layer: one engine is
// hammered with an interleaved, Rng-driven mix of warm solves, scenario
// apply/solve/revert cycles, and ScenarioFleet batches. After every step
// the suite asserts the session invariants the rest of the stack relies
// on: certified primal/dual agreement of every solve, bitwise-exact revert
// of scenario perturbations (a cold solve after clear_scenario() equals
// the pristine cold solve), and fleet cells identical to their
// one-at-a-time evaluation.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "core/evaluator.h"
#include "mcf/engine.h"
#include "pool_test_env.h"
#include "tm/synthetic.h"
#include "topo/jellyfish.h"
#include "util/rng.h"

namespace tb {
namespace {

[[maybe_unused]] const int kForcePoolThreads = test_env::force_pool_threads();

constexpr double kEps = 0.08;

mcf::SolveOptions gk_opts() {
  mcf::SolveOptions o;
  o.kind = mcf::SolverKind::GargKonemann;
  o.epsilon = kEps;
  return o;
}

/// Certified interval sanity of one result: feasible value below its own
/// dual bound; both positive on a connected instance.
void expect_certified(const mcf::ThroughputResult& r, const char* what) {
  EXPECT_GT(r.throughput, 0.0) << what;
  EXPECT_LE(r.throughput, r.upper_bound * (1.0 + 1e-9)) << what;
}

/// Certified-gap agreement of two solves of the same instance: each
/// feasible value must respect the other's certified upper bound.
void expect_agreement(const mcf::ThroughputResult& a,
                      const mcf::ThroughputResult& b, const char* what) {
  EXPECT_LE(a.throughput, b.upper_bound * (1.0 + 1e-9)) << what;
  EXPECT_LE(b.throughput, a.upper_bound * (1.0 + 1e-9)) << what;
}

TEST(EngineStress, InterleavedWarmScenarioAndFleetOperations) {
  const Network net = make_jellyfish(18, 4, 1, 77);
  const std::vector<TrafficMatrix> tms = {
      all_to_all(net), random_matching(net, 1, 5), longest_matching(net)};

  // Pristine cold references, one per TM: the bitwise revert anchors.
  std::vector<mcf::ThroughputResult> cold_ref;
  for (const TrafficMatrix& tm : tms) {
    mcf::ThroughputEngine fresh(net);
    cold_ref.push_back(fresh.solve(tm, gk_opts()));
    expect_certified(cold_ref.back(), tm.name.c_str());
  }

  mcf::ThroughputEngine engine(net);
  Rng rng(0xfeedULL);
  for (int step = 0; step < 24; ++step) {
    const auto which = static_cast<std::size_t>(rng.next_u64(tms.size()));
    const TrafficMatrix& tm = tms[which];
    switch (rng.next_u64(4)) {
      case 0: {
        // Warm session solve of a random TM: certified and in agreement
        // with the pristine cold solve of the same instance.
        const auto warm = engine.warm_solve(tm, gk_opts());
        expect_certified(warm, "warm");
        expect_agreement(warm, cold_ref[which], tm.name.c_str());
        break;
      }
      case 1: {
        // Random link-failure scenario: solve degraded, then revert and
        // require the cold solve to be bitwise the pristine reference.
        mcf::ScenarioSpec spec;
        spec.random_edge_fraction = rng.next_double(0.05, 0.2);
        spec.seed = rng();
        engine.apply_scenario(spec);
        const auto degraded = engine.solve(tm, gk_opts());
        if (degraded.solver != "disconnected") {
          expect_certified(degraded, "degraded");
        }
        engine.clear_scenario();
        const auto restored = engine.solve(tm, gk_opts());
        EXPECT_EQ(restored.throughput, cold_ref[which].throughput) << step;
        EXPECT_EQ(restored.upper_bound, cold_ref[which].upper_bound) << step;
        EXPECT_EQ(restored.stats.phases, cold_ref[which].stats.phases) << step;
        EXPECT_EQ(restored.stats.dijkstras, cold_ref[which].stats.dijkstras)
            << step;
        break;
      }
      case 2: {
        // Capacity degradation: throughput can only drop (within the
        // combined certified gaps); revert must again be bitwise exact.
        mcf::ScenarioSpec spec;
        spec.capacity_factor = rng.next_double(0.4, 0.9);
        engine.apply_scenario(spec);
        const auto degraded = engine.warm_solve(tm, gk_opts());
        expect_certified(degraded, "degraded-capacity");
        EXPECT_LE(degraded.throughput,
                  cold_ref[which].upper_bound * (1.0 + 1e-9))
            << step;
        engine.clear_scenario();
        const auto restored = engine.solve(tm, gk_opts());
        EXPECT_EQ(restored.throughput, cold_ref[which].throughput) << step;
        EXPECT_EQ(restored.stats.phases, cold_ref[which].stats.phases) << step;
        break;
      }
      default: {
        // Fleet batch: every cell bitwise equal to its one-at-a-time
        // evaluation, and the batch leaves the session world untouched
        // (the engine's next cold solve still matches the reference).
        std::vector<mcf::ScenarioSpec> specs(2);
        specs[0].random_edge_fraction = rng.next_double(0.05, 0.15);
        specs[0].seed = rng();
        specs[1].capacity_factor = rng.next_double(0.5, 0.9);
        const std::vector<DegradedResult> batch =
            degraded_throughput_batch(net, tm, specs, gk_opts());
        for (std::size_t i = 0; i < specs.size(); ++i) {
          const DegradedResult one =
              degraded_throughput(net, tm, specs[i], gk_opts());
          EXPECT_EQ(batch[i].degraded, one.degraded) << step << ':' << i;
          EXPECT_EQ(batch[i].drop, one.drop) << step << ':' << i;
          EXPECT_EQ(batch[i].failed_links, one.failed_links)
              << step << ':' << i;
        }
        const auto after = engine.solve(tm, gk_opts());
        EXPECT_EQ(after.throughput, cold_ref[which].throughput) << step;
        break;
      }
    }
  }
}

}  // namespace
}  // namespace tb
