# Runs DRIVER (a runner-ported bench binary) at a tiny size in four modes —
# serial (TOPOBENCH_THREADS=1), the default pool, an explicit 4-worker
# pool, and 4-worker intra-solve pools (TOPOBENCH_SOLVER_THREADS=4) — so
# the concurrent paths are exercised even on single-core machines — and
# fails unless the emitted CSVs are byte-identical. This is the
# cross-process half of the runner's determinism contract; exp_test covers
# the in-process half.
#
# With -DSHARD_MERGE=<topobench_merge binary> the script additionally runs
# the driver sharded — once as the trivial 1-way shard (TOPOBENCH_SHARD=0/1)
# and once as four separate processes (TOPOBENCH_SHARD=i/4, a real fleet:
# no shared cache, no shared pool) — concatenates the slices exactly like
# `cat shard_{0..3}.csv | topobench_merge`, and fails unless each merge
# reproduces the unsharded serial CSV byte for byte.
if(NOT DEFINED DRIVER OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "runner_determinism.cmake needs -DDRIVER and -DWORK_DIR")
endif()

get_filename_component(driver_name ${DRIVER} NAME)
# OUT_PREFIX disambiguates output files when the same driver is tested
# under several configurations (e.g. fig04 cold and TOPOBENCH_WARMSTART=1),
# so concurrent ctest jobs never clobber each other's CSVs.
if(DEFINED OUT_PREFIX)
  set(driver_name ${OUT_PREFIX})
endif()

set(tiny_env
  TOPOBENCH_CSV=1
  TOPOBENCH_TARGET_SERVERS=16
  TOPOBENCH_TRIALS=2
  TOPOBENCH_EPS=0.1)

function(run_mode out_file)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env ${tiny_env} ${ARGN} ${DRIVER}
    OUTPUT_FILE ${WORK_DIR}/${out_file}
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${out_file} run failed (rc=${rc})")
  endif()
endfunction()

run_mode(${driver_name}_det_serial.csv TOPOBENCH_THREADS=1)
run_mode(${driver_name}_det_default.csv)
run_mode(${driver_name}_det_four.csv TOPOBENCH_THREADS=4)
# Intra-solve threading (dedicated 4-worker solver pools under the cut
# battery / parallel-discharge flow engine) must not move a byte either.
run_mode(${driver_name}_det_solver4.csv TOPOBENCH_SOLVER_THREADS=4)

foreach(other ${driver_name}_det_default.csv ${driver_name}_det_four.csv
    ${driver_name}_det_solver4.csv)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
      ${WORK_DIR}/${driver_name}_det_serial.csv ${WORK_DIR}/${other}
    RESULT_VARIABLE diff_rc)
  if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR
      "${other} differs from the serial CSV — the runner lost determinism")
  endif()
endforeach()

if(DEFINED SHARD_MERGE)
  run_mode(${driver_name}_det_shard_0of1.csv TOPOBENCH_SHARD=0/1)
  set(shard_files "")
  foreach(i RANGE 3)
    run_mode(${driver_name}_det_shard_${i}of4.csv TOPOBENCH_SHARD=${i}/4)
    list(APPEND shard_files ${WORK_DIR}/${driver_name}_det_shard_${i}of4.csv)
  endforeach()
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E cat ${shard_files}
    OUTPUT_FILE ${WORK_DIR}/${driver_name}_det_shard_cat.csv
    RESULT_VARIABLE cat_rc)
  if(NOT cat_rc EQUAL 0)
    message(FATAL_ERROR "concatenating shard slices failed (rc=${cat_rc})")
  endif()
  foreach(input ${driver_name}_det_shard_0of1.csv
      ${driver_name}_det_shard_cat.csv)
    # The merge reads stdin, mirroring `cat shard_*.csv | topobench_merge`.
    execute_process(
      COMMAND ${SHARD_MERGE}
      INPUT_FILE ${WORK_DIR}/${input}
      OUTPUT_FILE ${WORK_DIR}/${input}.merged
      RESULT_VARIABLE merge_rc)
    if(NOT merge_rc EQUAL 0)
      message(FATAL_ERROR "topobench_merge rejected ${input} (rc=${merge_rc})")
    endif()
    execute_process(
      COMMAND ${CMAKE_COMMAND} -E compare_files
        ${WORK_DIR}/${driver_name}_det_serial.csv ${WORK_DIR}/${input}.merged
      RESULT_VARIABLE diff_rc)
    if(NOT diff_rc EQUAL 0)
      message(FATAL_ERROR "merged ${input} differs from the unsharded CSV — "
        "sharding lost byte-identity")
    endif()
  endforeach()
endif()
