# Runs DRIVER (a runner-ported bench binary) at a tiny size in three modes —
# serial (TOPOBENCH_THREADS=1), the default pool, and an explicit 4-worker
# pool (so the concurrent paths are exercised even on single-core machines) —
# and fails unless the emitted CSVs are byte-identical. This is the
# cross-process half of the runner's determinism contract; exp_test covers
# the in-process half.
if(NOT DEFINED DRIVER OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "runner_determinism.cmake needs -DDRIVER and -DWORK_DIR")
endif()

get_filename_component(driver_name ${DRIVER} NAME)
# OUT_PREFIX disambiguates output files when the same driver is tested
# under several configurations (e.g. fig04 cold and TOPOBENCH_WARMSTART=1),
# so concurrent ctest jobs never clobber each other's CSVs.
if(DEFINED OUT_PREFIX)
  set(driver_name ${OUT_PREFIX})
endif()

set(tiny_env
  TOPOBENCH_CSV=1
  TOPOBENCH_TARGET_SERVERS=16
  TOPOBENCH_TRIALS=2
  TOPOBENCH_EPS=0.1)

function(run_mode out_file)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env ${tiny_env} ${ARGN} ${DRIVER}
    OUTPUT_FILE ${WORK_DIR}/${out_file}
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${out_file} run failed (rc=${rc})")
  endif()
endfunction()

run_mode(${driver_name}_det_serial.csv TOPOBENCH_THREADS=1)
run_mode(${driver_name}_det_default.csv)
run_mode(${driver_name}_det_four.csv TOPOBENCH_THREADS=4)

foreach(other ${driver_name}_det_default.csv ${driver_name}_det_four.csv)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
      ${WORK_DIR}/${driver_name}_det_serial.csv ${WORK_DIR}/${other}
    RESULT_VARIABLE diff_rc)
  if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR
      "${other} differs from the serial CSV — the runner lost determinism")
  endif()
endforeach()
