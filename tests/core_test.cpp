#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/evaluator.h"
#include "core/registry.h"
#include "pool_test_env.h"
#include "tm/synthetic.h"
#include "topo/hypercube.h"
#include "topo/jellyfish.h"
#include "util/thread_pool.h"

namespace tb {
namespace {

[[maybe_unused]] const int kForcePoolThreads = test_env::force_pool_threads();

TEST(Registry, AllFamiliesHaveInstances) {
  for (const Family f : all_families()) {
    const std::vector<Network> nets = family_instances(f, 1, 1'000'000, 1);
    EXPECT_FALSE(nets.empty()) << family_name(f);
    int prev = 0;
    for (const Network& net : nets) {
      net.validate();
      EXPECT_GE(net.total_servers(), prev) << family_name(f);
      prev = net.total_servers();
    }
  }
}

TEST(Registry, FamilyNamesUnique) {
  std::set<std::string> names;
  for (const Family f : all_families()) {
    EXPECT_TRUE(names.insert(family_name(f)).second);
  }
  EXPECT_EQ(names.size(), 10u);
}

TEST(Registry, RepresentativePicksNearestSize) {
  const Network net = family_representative(Family::Hypercube, 60, 1);
  EXPECT_EQ(net.total_servers(), 64);  // 2^6 closest to 60
  const Network small = family_representative(Family::FatTree, 16, 1);
  EXPECT_EQ(small.total_servers(), 16);  // k=4
}

TEST(Registry, SizeWindowFilters) {
  const std::vector<Network> nets =
      family_instances(Family::Hypercube, 30, 130, 1);
  ASSERT_EQ(nets.size(), 3u);  // 32, 64, 128
  EXPECT_EQ(nets[0].total_servers(), 32);
  EXPECT_EQ(nets[2].total_servers(), 128);
}

TEST(Evaluator, JellyfishRelativeIsNearOne) {
  // A random regular graph normalized by same-equipment random graphs must
  // sit near 1 (the paper's definition of the Jellyfish baseline).
  const Network jf = make_jellyfish(32, 5, 1, 7);
  RelativeOptions opts;
  opts.random_trials = 3;
  opts.solve.epsilon = 0.03;
  const RelativeResult r = relative_throughput(jf, all_to_all(jf), opts);
  EXPECT_NEAR(r.relative, 1.0, 0.12);
  EXPECT_GT(r.topo_throughput, 0.0);
  EXPECT_EQ(r.random_throughput.n, 3u);
}

TEST(Evaluator, DeterministicGivenSeed) {
  const Network hc = make_hypercube(4);
  const TrafficMatrix tm = longest_matching(hc);
  RelativeOptions opts;
  opts.random_trials = 2;
  opts.seed = 99;
  const RelativeResult a = relative_throughput(hc, tm, opts);
  const RelativeResult b = relative_throughput(hc, tm, opts);
  EXPECT_DOUBLE_EQ(a.relative, b.relative);
}

TEST(Evaluator, HypercubeLosesToRandomAtSize) {
  // Paper Table I: hypercube relative throughput < 1 under LM at size.
  const Network hc = make_hypercube(6);
  RelativeOptions opts;
  opts.random_trials = 3;
  opts.solve.epsilon = 0.05;
  const RelativeResult r = relative_throughput(hc, longest_matching(hc), opts);
  EXPECT_LT(r.relative, 0.95);
}

TEST(Evaluator, ParallelTrialsMatchSerialPath) {
  // The random-graph trials run on the shared pool when solve.parallel is
  // set; per-trial seeds derive from the trial index and the reduction
  // happens after the barrier, so parallel and serial paths must agree
  // exactly for a fixed seed.
  if (ThreadPool::shared().size() <= 1) {
    GTEST_SKIP() << "shared pool has one worker (TOPOBENCH_THREADS "
                    "override?); parallel path would not be exercised";
  }
  const Network hc = make_hypercube(4);
  const TrafficMatrix tm = longest_matching(hc);
  RelativeOptions serial;
  serial.random_trials = 4;
  serial.seed = 7;
  serial.solve.parallel = false;
  RelativeOptions parallel = serial;
  parallel.solve.parallel = true;
  const RelativeResult a = relative_throughput(hc, tm, serial);
  const RelativeResult b = relative_throughput(hc, tm, parallel);
  EXPECT_DOUBLE_EQ(a.topo_throughput, b.topo_throughput);
  EXPECT_DOUBLE_EQ(a.random_throughput.mean, b.random_throughput.mean);
  EXPECT_DOUBLE_EQ(a.random_throughput.ci95, b.random_throughput.ci95);
  EXPECT_DOUBLE_EQ(a.relative, b.relative);
  EXPECT_DOUBLE_EQ(a.relative_ci95, b.relative_ci95);
}

TEST(Evaluator, SingleTrialCiIsNaNSentinel) {
  // random_trials = 1 used to report a spuriously exact ci95 == 0.
  const Network hc = make_hypercube(3);
  RelativeOptions opts;
  opts.random_trials = 1;
  const RelativeResult r = relative_throughput(hc, all_to_all(hc), opts);
  EXPECT_GT(r.relative, 0.0);
  EXPECT_TRUE(std::isnan(r.random_throughput.ci95));
  EXPECT_TRUE(std::isnan(r.relative_ci95));
}

TEST(Evaluator, RejectsBadTrialCount) {
  const Network hc = make_hypercube(3);
  RelativeOptions opts;
  opts.random_trials = 0;
  EXPECT_THROW(relative_throughput(hc, all_to_all(hc), opts),
               std::invalid_argument);
}

}  // namespace
}  // namespace tb
