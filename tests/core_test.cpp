#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "core/registry.h"
#include "tm/synthetic.h"
#include "topo/hypercube.h"
#include "topo/jellyfish.h"

namespace tb {
namespace {

TEST(Registry, AllFamiliesHaveInstances) {
  for (const Family f : all_families()) {
    const std::vector<Network> nets = family_instances(f, 1, 1'000'000, 1);
    EXPECT_FALSE(nets.empty()) << family_name(f);
    int prev = 0;
    for (const Network& net : nets) {
      net.validate();
      EXPECT_GE(net.total_servers(), prev) << family_name(f);
      prev = net.total_servers();
    }
  }
}

TEST(Registry, FamilyNamesUnique) {
  std::set<std::string> names;
  for (const Family f : all_families()) {
    EXPECT_TRUE(names.insert(family_name(f)).second);
  }
  EXPECT_EQ(names.size(), 10u);
}

TEST(Registry, RepresentativePicksNearestSize) {
  const Network net = family_representative(Family::Hypercube, 60, 1);
  EXPECT_EQ(net.total_servers(), 64);  // 2^6 closest to 60
  const Network small = family_representative(Family::FatTree, 16, 1);
  EXPECT_EQ(small.total_servers(), 16);  // k=4
}

TEST(Registry, SizeWindowFilters) {
  const std::vector<Network> nets =
      family_instances(Family::Hypercube, 30, 130, 1);
  ASSERT_EQ(nets.size(), 3u);  // 32, 64, 128
  EXPECT_EQ(nets[0].total_servers(), 32);
  EXPECT_EQ(nets[2].total_servers(), 128);
}

TEST(Evaluator, JellyfishRelativeIsNearOne) {
  // A random regular graph normalized by same-equipment random graphs must
  // sit near 1 (the paper's definition of the Jellyfish baseline).
  const Network jf = make_jellyfish(32, 5, 1, 7);
  RelativeOptions opts;
  opts.random_trials = 3;
  opts.solve.epsilon = 0.03;
  const RelativeResult r = relative_throughput(jf, all_to_all(jf), opts);
  EXPECT_NEAR(r.relative, 1.0, 0.12);
  EXPECT_GT(r.topo_throughput, 0.0);
  EXPECT_EQ(r.random_throughput.n, 3u);
}

TEST(Evaluator, DeterministicGivenSeed) {
  const Network hc = make_hypercube(4);
  const TrafficMatrix tm = longest_matching(hc);
  RelativeOptions opts;
  opts.random_trials = 2;
  opts.seed = 99;
  const RelativeResult a = relative_throughput(hc, tm, opts);
  const RelativeResult b = relative_throughput(hc, tm, opts);
  EXPECT_DOUBLE_EQ(a.relative, b.relative);
}

TEST(Evaluator, HypercubeLosesToRandomAtSize) {
  // Paper Table I: hypercube relative throughput < 1 under LM at size.
  const Network hc = make_hypercube(6);
  RelativeOptions opts;
  opts.random_trials = 3;
  opts.solve.epsilon = 0.05;
  const RelativeResult r = relative_throughput(hc, longest_matching(hc), opts);
  EXPECT_LT(r.relative, 0.95);
}

TEST(Evaluator, RejectsBadTrialCount) {
  const Network hc = make_hypercube(3);
  RelativeOptions opts;
  opts.random_trials = 0;
  EXPECT_THROW(relative_throughput(hc, all_to_all(hc), opts),
               std::invalid_argument);
}

}  // namespace
}  // namespace tb
