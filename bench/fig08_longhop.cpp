// Figure 8: Long Hop networks' relative throughput under the longest-
// matching TM, for three construction richness levels ("dimension" = the
// number of extra long-hop code generators; see DESIGN.md substitution
// note) across network sizes.
//
// Paper claims reproduced: Long Hop tracks the same-equipment random graph
// closely, approaching relative throughput 1 at larger sizes — i.e. high
// performance, but no better than random graphs.
#include <iostream>
#include <string>

#include "bench_common.h"
#include "core/evaluator.h"
#include "tm/synthetic.h"
#include "topo/longhop.h"
#include "util/rng.h"

int main() {
  using namespace tb;
  const double eps = bench::env_eps(0.10);
  const int trials = bench::env_trials(2);

  Table table({"dimension", "servers", "switches", "degree", "rel_LM"});
  for (const int extra : {5, 6, 7}) {
    for (int dim = 5; dim <= 8; ++dim) {
      const Network net =
          make_long_hop(dim, extra, /*servers_per_switch=*/1, /*seed=*/7);
      RelativeOptions opts;
      opts.random_trials = trials;
      opts.solve.epsilon = eps;
      opts.seed = mix_seed(5000, static_cast<std::uint64_t>(extra));
      const RelativeResult lm =
          relative_throughput(net, longest_matching(net), opts);
      table.add_row({std::to_string(extra), std::to_string(net.total_servers()),
                     std::to_string(net.graph.num_nodes()),
                     std::to_string(dim + extra), Table::fmt(lm.relative, 3)});
    }
  }
  bench::emit(table, "Fig 8: Long Hop relative throughput under LM");
  return 0;
}
