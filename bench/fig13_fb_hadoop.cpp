// Figure 13: the (synthetic stand-in for the) Facebook Hadoop-cluster TM
// (TM-H, near-uniform) mapped onto every topology family, as measured
// ("Sampled", identity rack placement) and with racks randomly permuted
// ("Shuffled").
//
// Paper claims reproduced: TM-H is nearly uniform, so shuffling placement
// barely changes normalized throughput for any family.
#include <iostream>
#include <string>

#include "bench_common.h"
#include "core/evaluator.h"
#include "core/registry.h"
#include "tm/facebook.h"
#include "util/rng.h"

int main() {
  using namespace tb;
  const double eps = bench::env_eps(0.10);
  const int trials = bench::env_trials(2);
  const int racks = 64;
  const std::vector<double> rack_tm = synth_tm_hadoop(racks, /*seed=*/11);

  Table table({"topology", "hosts_used", "sampled", "shuffled",
               "shuffle_gain"});
  for (const Family f : all_families()) {
    const Network net = family_representative(f, racks, /*seed=*/1);
    RelativeOptions opts;
    opts.random_trials = trials;
    opts.solve.epsilon = eps;
    opts.seed = mix_seed(8000, static_cast<std::uint64_t>(f));
    const TrafficMatrix sampled = map_rack_tm(net, rack_tm, racks, 0);
    const TrafficMatrix shuffled = map_rack_tm(net, rack_tm, racks, 555);
    const double rs = relative_throughput(net, sampled, opts).relative;
    const double rh = relative_throughput(net, shuffled, opts).relative;
    const int used = std::min<int>(racks, static_cast<int>(net.host_nodes().size()));
    table.add_row({family_name(f), std::to_string(used), Table::fmt(rs, 3),
                   Table::fmt(rh, 3), Table::fmt(rh / rs, 3)});
  }
  bench::emit(table, "Fig 13: Facebook Hadoop TM-H, sampled vs shuffled");
  return 0;
}
