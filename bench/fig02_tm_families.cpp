// Figure 2: throughput of several traffic matrices on three topology
// families — hypercubes, random regular graphs (same equipment as the
// hypercubes), and fat trees — as the network scales.
//
// Series per panel: all-to-all, random matching with 10/2/1 matchings,
// the Kodialam TM, the longest-matching TM, and the Theorem 2 lower bound
// T_A2A / 2. The paper's claims reproduced here: the TM hardness ladder
// A2A >= RM(10) >= RM(2) >= RM(1) >= {Kodialam, LM} >= bound; LM meets the
// bound on hypercubes; on fat trees LM collapses to the A2A value.
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "mcf/throughput.h"
#include "tm/synthetic.h"
#include "topo/fattree.h"
#include "topo/hypercube.h"
#include "topo/jellyfish.h"

namespace {

using namespace tb;

void run_panel(const std::string& panel, const std::vector<Network>& nets,
               double eps) {
  Table table({"network", "servers", "A2A", "RM(10)", "RM(2)", "RM(1)",
               "Kodialam", "LM", "LowerBound"});
  for (const Network& net : nets) {
    mcf::SolveOptions opts;
    opts.epsilon = eps;
    const double a2a = mcf::compute_throughput(net, all_to_all(net), opts).throughput;
    const double rm10 =
        mcf::compute_throughput(net, random_matching(net, 10, 7), opts).throughput;
    const double rm2 =
        mcf::compute_throughput(net, random_matching(net, 2, 7), opts).throughput;
    const double rm1 =
        mcf::compute_throughput(net, random_matching(net, 1, 7), opts).throughput;
    // The Kodialam LP has H^2 columns; cap it as the paper capped theirs
    // by memory (its scaling limit is part of the point of §II-C).
    const int hosts = static_cast<int>(net.host_nodes().size());
    const double kod =
        hosts <= 128
            ? mcf::compute_throughput(net, kodialam_tm(net), opts).throughput
            : 0.0;
    const double lm =
        mcf::compute_throughput(net, longest_matching(net), opts).throughput;
    table.add_row({net.name, std::to_string(net.total_servers()),
                   Table::fmt(a2a), Table::fmt(rm10), Table::fmt(rm2),
                   Table::fmt(rm1), kod > 0 ? Table::fmt(kod) : "n/a",
                   Table::fmt(lm), Table::fmt(a2a / 2.0)});
  }
  bench::emit(table, "Fig 2 (" + panel + "): throughput of TM families");
}

}  // namespace

int main() {
  const double eps = tb::bench::env_eps(0.05);

  std::vector<Network> cubes;
  for (int d = 3; d <= 7; ++d) cubes.push_back(make_hypercube(d));
  run_panel("hypercube", cubes, eps);

  std::vector<Network> rrgs;
  for (int d = 3; d <= 7; ++d) {
    rrgs.push_back(make_jellyfish(1 << d, d, 1, 100 + static_cast<unsigned>(d)));
  }
  run_panel("random graph, same equipment as hypercube", rrgs, eps);

  std::vector<Network> fts;
  for (int k = 4; k <= 10; k += 2) fts.push_back(make_fat_tree(k));
  run_panel("fat tree", fts, eps);
  return 0;
}
