// Figure 2: throughput of several traffic matrices on three topology
// families — hypercubes, random regular graphs (same equipment as the
// hypercubes), and fat trees — as the network scales.
//
// Series per panel: all-to-all, random matching with 10/2/1 matchings,
// the Kodialam TM, the longest-matching TM, and the Theorem 2 lower bound
// T_A2A / 2. The paper's claims reproduced here: the TM hardness ladder
// A2A >= RM(10) >= RM(2) >= RM(1) >= {Kodialam, LM} >= bound; LM meets the
// bound on hypercubes; on fat trees LM collapses to the A2A value.
//
// Runs on the experiment runner (one sweep per panel): TOPOBENCH_CSV=1
// emits the uniform cell CSV, TOPOBENCH_MAX_SERVERS caps the per-panel
// ladders for smoke runs, TOPOBENCH_WARMSTART=1 chains each instance's TM
// ladder through one ThroughputEngine session. The default ladders keep
// every instance at <= 128 host switches, inside kodialam_tm's advised LP
// range (see tm/synthetic.h).
#include <iostream>
#include <string>
#include <vector>

#include "exp/runner.h"
#include "tm/synthetic.h"
#include "topo/fattree.h"
#include "topo/hypercube.h"
#include "topo/jellyfish.h"
#include "util/table.h"

namespace {

using namespace tb;

exp::Sweep panel_sweep(std::vector<Network> nets, std::uint64_t base_seed) {
  exp::Sweep sweep;
  sweep.solve.epsilon = exp::env_eps(0.05);
  sweep.base_seed = base_seed;
  sweep.warm_start = exp::env_int("TOPOBENCH_WARMSTART", 0, 0, 1) == 1;
  const int max_servers =
      exp::env_int("TOPOBENCH_MAX_SERVERS", 1'000'000, 4, 1'000'000);
  for (Network& net : nets) {
    if (net.total_servers() <= max_servers) {
      sweep.topologies.push_back(exp::instance_spec(std::move(net)));
    }
  }
  // The paper's RM seeds are fixed per figure; the cell's own seed stream
  // would resample matchings per instance, so pin the legacy seed 7 via
  // TmSpec builders that ignore the runner seed.
  const auto pinned_rm = [](int k) {
    return exp::TmSpec{"RM(" + std::to_string(k) + ")",
                       [k](const Network& net, std::uint64_t) {
                         return random_matching(net, k, 7);
                       }};
  };
  sweep.tms = {exp::a2a_tm(), pinned_rm(10), pinned_rm(2), pinned_rm(1),
               exp::kodialam_tm_spec(), exp::longest_matching_tm()};
  return sweep;
}

void run_panel(const std::string& panel, std::vector<Network> nets,
               std::uint64_t base_seed) {
  const std::string caption =
      "Fig 2 (" + panel + "): throughput of TM families";
  const exp::Sweep sweep = panel_sweep(std::move(nets), base_seed);
  if (sweep.topologies.empty()) {
    // TOPOBENCH_MAX_SERVERS can filter a whole panel away on smoke runs;
    // an empty panel is a note, not an error.
    std::cout << "# " << caption << ": no instances within "
              << "TOPOBENCH_MAX_SERVERS\n\n";
    return;
  }
  exp::Runner runner;
  const exp::ResultSet rs = runner.run(sweep, exp::RunOptions::from_env());
  // A sharded run (TOPOBENCH_SHARD=i/n) holds a partial grid: emit the
  // mergeable slice — the derived panel table needs every cell. Note a
  // sharded fig02 shards each panel's grid independently.
  if (exp::csv_mode() || rs.slice()) {
    rs.emit(std::cout, caption);
    return;
  }
  Table table({"network", "servers", "A2A", "RM(10)", "RM(2)", "RM(1)",
               "Kodialam", "LM", "LowerBound"});
  for (const exp::TopoSpec& topo : sweep.topologies) {
    const exp::CellResult& a2a = rs.at(topo.label, "A2A");
    table.add_row({topo.label, std::to_string(a2a.servers),
                   Table::fmt(a2a.throughput),
                   Table::fmt(rs.at(topo.label, "RM(10)").throughput),
                   Table::fmt(rs.at(topo.label, "RM(2)").throughput),
                   Table::fmt(rs.at(topo.label, "RM(1)").throughput),
                   Table::fmt(rs.at(topo.label, "Kodialam").throughput),
                   Table::fmt(rs.at(topo.label, "LM").throughput),
                   Table::fmt(a2a.throughput / 2.0)});
  }
  table.print(std::cout, caption);
  std::cout << '\n';
}

}  // namespace

int main() {
  using namespace tb;

  std::vector<Network> cubes;
  for (int d = 3; d <= 7; ++d) cubes.push_back(make_hypercube(d));
  run_panel("hypercube", std::move(cubes), 201);

  std::vector<Network> rrgs;
  for (int d = 3; d <= 7; ++d) {
    rrgs.push_back(make_jellyfish(1 << d, d, 1, 100 + static_cast<unsigned>(d)));
  }
  run_panel("random graph, same equipment as hypercube", std::move(rrgs), 202);

  std::vector<Network> fts;
  for (int k = 4; k <= 10; k += 2) fts.push_back(make_fat_tree(k));
  run_panel("fat tree", std::move(fts), 203);
  return 0;
}
