// Figure 7: HyperX relative throughput under the longest-matching TM for
// least-cost HyperX networks designed to bisection targets 0.2 / 0.4 / 0.5.
//
// Paper claims reproduced: performance varies widely and irregularly with
// size for every bisection target, and a higher designed bisection does
// not imply higher worst-case throughput.
#include <iostream>
#include <string>

#include "bench_common.h"
#include "core/evaluator.h"
#include "tm/synthetic.h"
#include "topo/hyperx.h"
#include "util/rng.h"

int main() {
  using namespace tb;
  const double eps = bench::env_eps(0.10);
  const int trials = bench::env_trials(2);

  Table table({"bisection", "servers", "L", "S", "K", "T", "rel_LM"});
  for (const double beta : {0.2, 0.4, 0.5}) {
    for (const long target : {32L, 64L, 96L, 128L, 192L, 256L}) {
      const auto params = search_hyperx(16, target, beta);
      if (!params) continue;
      const Network net = make_hyperx(*params);
      RelativeOptions opts;
      opts.random_trials = trials;
      opts.solve.epsilon = eps;
      opts.seed = mix_seed(4000, static_cast<std::uint64_t>(beta * 100));
      const RelativeResult lm =
          relative_throughput(net, longest_matching(net), opts);
      table.add_row({Table::fmt(beta, 1), std::to_string(net.total_servers()),
                     std::to_string(params->L), std::to_string(params->S),
                     std::to_string(params->K), std::to_string(params->T),
                     Table::fmt(lm.relative, 3)});
    }
  }
  bench::emit(table,
              "Fig 7: HyperX relative throughput under LM vs designed bisection");
  return 0;
}
