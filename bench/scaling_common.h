// Shared sweep for Figures 5 and 6 and Table I: relative throughput
// (vs same-equipment random graphs) across each family's size ladder,
// under the A2A, RM(1) and LM traffic matrices.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/evaluator.h"
#include "core/registry.h"
#include "tm/synthetic.h"
#include "util/table.h"

namespace tb::bench {

inline void scaling_sweep(const std::vector<Family>& families,
                          const std::string& caption, int max_servers) {
  // Single-core default: a 10% certified gap is well below the separations
  // the figures exhibit; tighten with TOPOBENCH_EPS for publication runs.
  const double eps = env_eps(0.10);
  const int trials = env_trials(2);

  Table table({"topology", "servers", "switches", "rel_A2A", "rel_RM1",
               "rel_LM", "ci95_LM"});
  for (const Family f : families) {
    for (const Network& net : family_instances(f, 8, max_servers, /*seed=*/1)) {
      RelativeOptions opts;
      opts.random_trials = trials;
      opts.solve.epsilon = eps;
      opts.seed = 1000 + static_cast<std::uint64_t>(f);
      const RelativeResult a2a = relative_throughput(net, all_to_all(net), opts);
      const RelativeResult rm =
          relative_throughput(net, random_matching(net, 1, 17), opts);
      const RelativeResult lm =
          relative_throughput(net, longest_matching(net), opts);
      table.add_row({family_name(f), std::to_string(net.total_servers()),
                     std::to_string(net.graph.num_nodes()),
                     Table::fmt(a2a.relative, 3), Table::fmt(rm.relative, 3),
                     Table::fmt(lm.relative, 3),
                     Table::fmt(lm.relative_ci95, 3)});
    }
  }
  emit(table, caption);
}

}  // namespace tb::bench
