// Cut-bound tightness: measured throughput against the best certified
// cut-based upper bound across a topology × size × TM grid — the paper's
// Fig 3 / Table II comparison, now with the exact s-t min cuts of
// src/flow/ in the estimator battery, so every row carries a certified
// throughput-vs-cut gap (gap = cut_bound / throughput >= 1 up to solver
// tolerance; the paper reports spreads up to ~3x under near-worst-case
// TMs).
//
// Runs on the experiment runner: TOPOBENCH_CSV=1 emits the uniform cell
// CSV (cut_bound / cut_gap / cut_method columns filled),
// TOPOBENCH_TARGET_SERVERS shrinks the grid for smoke runs and
// TOPOBENCH_MAX_SERVERS overrides the ladder cutoff directly (default:
// twice the target).
#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>

#include "exp/runner.h"
#include "util/table.h"

int main() {
  using namespace tb;
  const std::string caption =
      "Cut-bound gap: throughput vs best certified cut upper bound";

  exp::Sweep sweep;
  sweep.solve.epsilon = exp::env_eps(0.05);
  sweep.base_seed = 23;
  sweep.cut_bounds = true;
  const int target =
      exp::env_int("TOPOBENCH_TARGET_SERVERS", 24, 4, 1'000'000);
  const int max_servers = exp::env_int(
      "TOPOBENCH_MAX_SERVERS", std::min(2 * target, 1'000'000), 4, 1'000'000);
  sweep.topologies =
      exp::ladder_specs(all_families(), 4, max_servers, /*seed=*/1);
  sweep.tms = {exp::a2a_tm(), exp::random_matching_tm(1),
               exp::longest_matching_tm()};

  exp::Runner runner;
  const exp::ResultSet rs = runner.run(sweep, exp::RunOptions::from_env());
  // A sharded run (TOPOBENCH_SHARD=i/n) holds a partial grid: emit the
  // mergeable slice — the summary table's max-gap line needs every cell.
  if (exp::csv_mode() || rs.slice()) {
    rs.emit(std::cout, caption);
    return 0;
  }

  Table table({"topology", "switches", "tm", "throughput", "cut_bound",
               "cut_method", "gap"});
  double worst_gap = 0.0;
  for (const exp::CellResult& r : rs.rows()) {
    table.add_row({r.topology, std::to_string(r.switches), r.tm,
                   Table::fmt(r.throughput, 3), Table::fmt(r.cut_bound, 3),
                   r.cut_method, Table::fmt(r.cut_gap, 3)});
    if (!std::isnan(r.cut_gap)) worst_gap = std::max(worst_gap, r.cut_gap);
  }
  table.print(std::cout, caption);
  std::cout << "max cut/throughput gap: " << Table::fmt(worst_gap, 2)
            << "x  (paper reports up to ~3x)\n";
  return 0;
}
