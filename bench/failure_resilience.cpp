// Failure resilience: throughput under degraded-network scenarios across a
// topology x TM x failure grid — the workload family the paper's
// robustness discussion motivates. Each cell solves the intact baseline
// cold, applies the scenario as an incremental ThroughputEngine
// perturbation, and re-solves warm from the baseline solution; the CSV
// carries the scenario label, failed_links, risk_group, tm_scale, and
// throughput_drop (1 - degraded/baseline) per cell.
//
// Two failure models, selected by TOPOBENCH_FAIL_MODE:
//   links  (default) — independent seeded random link failures, with a
//                      degrade-to-half-capacity scenario riding along
//   groups           — correlated shared-risk-group failures (whole pod /
//                      cable-bundle / dimension-plane groups fail together;
//                      see topo/network.h), with a 1.25x traffic surge
//                      scenario riding along so the tm_scale column is
//                      exercised on the bench path too
//
// Runs on the experiment runner (failures mode): TOPOBENCH_CSV=1 emits the
// uniform cell CSV, TOPOBENCH_TARGET_SERVERS sizes the representative
// instances, TOPOBENCH_FAIL_STEPS in [1, 4] selects how many failure
// fractions of {2%, 5%, 10%, 20%} to sweep. Deterministic for any thread
// count or shard split.
//
// With argv[1] set the binary instead runs the comparison mode for the CI
// perf-smoke job: both failure models on the same grid in one process,
// recording the mean throughput-drop curve of each in a one-line JSON
// written to argv[1] (and echoed to stdout). Exit status is non-zero when
// any drop is non-finite or outside the certified-slack window, or when a
// repeated correlated run is not byte-identical to the first (the bench's
// own determinism smoke).
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/runner.h"
#include "exp/shard.h"
#include "util/env.h"
#include "util/table.h"

namespace {

using namespace tb;

exp::Sweep base_sweep(int target, double eps) {
  exp::Sweep sweep;
  sweep.solve.epsilon = eps;
  sweep.base_seed = 31;
  for (const Family f : all_families()) {
    sweep.topologies.push_back(exp::representative_spec(f, target, /*seed=*/1));
  }
  sweep.tms = {exp::a2a_tm(), exp::random_matching_tm(1)};
  return sweep;
}

std::vector<double> fail_fractions(int steps) {
  const std::vector<double> all = {0.02, 0.05, 0.10, 0.20};
  return {all.begin(), all.begin() + steps};
}

std::vector<exp::ScenarioPoint> scenarios_for(const std::string& mode,
                                              int steps) {
  if (mode == "links") {
    std::vector<exp::ScenarioPoint> s =
        exp::random_failure_scenarios(fail_fractions(steps));
    s.push_back(exp::degrade_scenario(0.5));
    return s;
  }
  if (mode == "groups") {
    std::vector<exp::ScenarioPoint> s =
        exp::correlated_group_scenarios(fail_fractions(steps));
    s.push_back(exp::surge_scenario(1.25));
    return s;
  }
  throw std::invalid_argument(
      "TOPOBENCH_FAIL_MODE must be \"links\" or \"groups\", got \"" + mode +
      "\"");
}

/// Mean throughput_drop per scenario label, in first-appearance order.
std::vector<std::pair<std::string, double>> drop_curve(
    const exp::ResultSet& rs) {
  std::vector<std::string> order;
  std::map<std::string, std::pair<double, int>> acc;
  for (const exp::CellResult& r : rs.rows()) {
    if (std::isnan(r.throughput_drop)) continue;
    if (acc.find(r.scenario) == acc.end()) order.push_back(r.scenario);
    auto& a = acc[r.scenario];
    a.first += r.throughput_drop;
    a.second += 1;
  }
  std::vector<std::pair<std::string, double>> curve;
  for (const std::string& label : order) {
    curve.emplace_back(label, acc[label].first / acc[label].second);
  }
  return curve;
}

int comparison(const std::string& json_path, int target, double eps,
               int steps) {
  exp::Sweep sweep = base_sweep(target, eps);

  // The drop window a cell must land in: drops above 1 or below the GK
  // certified slack (a warm degraded solve can legitimately edge past its
  // baseline by at most the gap) mean a broken baseline, not noise.
  const double slack = 2.0 * eps;
  bool sane = true;
  std::vector<exp::ResultSet> runs;
  for (const char* mode : {"links", "groups"}) {
    sweep.scenarios = scenarios_for(mode, steps);
    exp::Runner runner;
    runs.push_back(runner.run(sweep, exp::RunOptions::from_env()));
    for (const exp::CellResult& r : runs.back().rows()) {
      if (std::isnan(r.throughput_drop)) continue;
      if (!std::isfinite(r.throughput_drop) || r.throughput_drop > 1.0 ||
          r.throughput_drop < -slack) {
        sane = false;
        std::fprintf(stderr, "FAIL %s/%s/%s: drop %.17g outside [%g, 1]\n",
                     r.topology.c_str(), r.tm.c_str(), r.scenario.c_str(),
                     r.throughput_drop, -slack);
      }
    }
  }

  // Determinism smoke: a fresh runner on the correlated grid must
  // reproduce the first correlated run byte for byte.
  bool identical = true;
  {
    sweep.scenarios = scenarios_for("groups", steps);
    exp::Runner runner;
    const exp::ResultSet repeat = runner.run(sweep, exp::RunOptions::from_env());
    identical = repeat.to_csv() == runs[1].to_csv();
    if (!identical) {
      std::fprintf(stderr,
                   "FAIL: repeated correlated run is not byte-identical\n");
    }
  }

  std::string json = "{\"bench\": \"failure_resilience\", \"target_servers\": ";
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%d, \"epsilon\": %g, \"fail_steps\": %d",
                target, eps, steps);
  json += buf;
  const char* keys[] = {"\"independent_drops\"", "\"correlated_drops\""};
  for (int m = 0; m < 2; ++m) {
    json += std::string(", ") + keys[m] + ": {";
    bool first = true;
    for (const auto& [label, mean] : drop_curve(runs[m])) {
      std::snprintf(buf, sizeof(buf), "%s\"%s\": %.6f", first ? "" : ", ",
                    label.c_str(), mean);
      json += buf;
      first = false;
    }
    json += "}";
  }
  std::snprintf(buf, sizeof(buf),
                ", \"cells\": %zu, \"sane\": %s, \"bitwise_identical\": %s}\n",
                runs[0].size() + runs[1].size(), sane ? "true" : "false",
                identical ? "true" : "false");
  json += buf;

  std::ofstream out(json_path);
  out << json;
  out.close();
  std::cout << json;
  return (sane && identical) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string caption =
      "Failure resilience: throughput drop under link failures / degradation";

  const double eps = exp::env_eps(0.08);
  const int target = exp::env_int("TOPOBENCH_TARGET_SERVERS", 48, 4, 1'000'000);
  const int steps = exp::env_int("TOPOBENCH_FAIL_STEPS", 3, 1, 4);
  const std::string mode =
      env::raw("TOPOBENCH_FAIL_MODE").value_or("links");

  if (argc > 1) {
    // Comparison mode needs both grids whole in one process.
    if (exp::env_shard()) {
      std::cerr << "failure_resilience: TOPOBENCH_SHARD is not supported in "
                   "comparison mode\n";
      return 1;
    }
    return comparison(argv[1], target, eps, steps);
  }

  exp::Sweep sweep = base_sweep(target, eps);
  sweep.scenarios = scenarios_for(mode, steps);

  exp::Runner runner;
  const exp::ResultSet rs = runner.run(sweep, exp::RunOptions::from_env());
  // A sharded run (TOPOBENCH_SHARD=i/n) holds a partial grid: emit the
  // mergeable slice instead of the per-cell table.
  if (exp::csv_mode() || rs.slice()) {
    rs.emit(std::cout, caption);
    return 0;
  }

  Table table({"topology", "tm", "scenario", "failed_links", "throughput",
               "drop"});
  for (const exp::CellResult& r : rs.rows()) {
    table.add_row({r.topology, r.tm, r.scenario,
                   std::to_string(r.failed_links), Table::fmt(r.throughput, 3),
                   std::isnan(r.throughput_drop)
                       ? "na"
                       : Table::fmt(r.throughput_drop, 3)});
  }
  table.print(std::cout, caption);
  std::cout << '\n';
  return 0;
}
