// Failure resilience: throughput under degraded-network scenarios across a
// topology x TM x failure grid — the workload family the paper's
// robustness discussion motivates. Each cell solves the intact baseline
// cold, applies the scenario as an incremental ThroughputEngine
// perturbation (seeded random link failures or uniform capacity
// degradation), and re-solves warm from the baseline solution; the CSV
// carries the scenario label, failed_links, and throughput_drop
// (1 - degraded/baseline) per cell.
//
// Runs on the experiment runner (failures mode): TOPOBENCH_CSV=1 emits the
// uniform cell CSV, TOPOBENCH_TARGET_SERVERS sizes the representative
// instances, TOPOBENCH_FAIL_STEPS in [1, 4] selects how many link-failure
// fractions of {2%, 5%, 10%, 20%} to sweep (a degrade-to-half-capacity
// scenario always rides along). Deterministic for any thread count.
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "exp/runner.h"
#include "util/table.h"

int main() {
  using namespace tb;
  const std::string caption =
      "Failure resilience: throughput drop under link failures / degradation";

  exp::Sweep sweep;
  sweep.solve.epsilon = exp::env_eps(0.08);
  sweep.base_seed = 31;
  const int target = exp::env_int("TOPOBENCH_TARGET_SERVERS", 48, 4, 1'000'000);
  for (const Family f : all_families()) {
    sweep.topologies.push_back(exp::representative_spec(f, target, /*seed=*/1));
  }
  sweep.tms = {exp::a2a_tm(), exp::random_matching_tm(1)};

  const std::vector<double> all_fractions = {0.02, 0.05, 0.10, 0.20};
  const int steps = exp::env_int("TOPOBENCH_FAIL_STEPS", 3, 1, 4);
  sweep.scenarios = exp::random_failure_scenarios(
      {all_fractions.begin(), all_fractions.begin() + steps});
  sweep.scenarios.push_back(exp::degrade_scenario(0.5));

  exp::Runner runner;
  const exp::ResultSet rs = runner.run(sweep, exp::RunOptions::from_env());
  // A sharded run (TOPOBENCH_SHARD=i/n) holds a partial grid: emit the
  // mergeable slice instead of the per-cell table.
  if (exp::csv_mode() || rs.slice()) {
    rs.emit(std::cout, caption);
    return 0;
  }

  Table table({"topology", "tm", "scenario", "failed_links", "throughput",
               "drop"});
  for (const exp::CellResult& r : rs.rows()) {
    table.add_row({r.topology, r.tm, r.scenario,
                   std::to_string(r.failed_links), Table::fmt(r.throughput, 3),
                   std::isnan(r.throughput_drop)
                       ? "na"
                       : Table::fmt(r.throughput_drop, 3)});
  }
  table.print(std::cout, caption);
  std::cout << '\n';
  return 0;
}
