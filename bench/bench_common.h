// Shared plumbing for the figure/table benches: every binary prints one
// paper artifact as an aligned table (CSV via TOPOBENCH_CSV=1). The env
// knobs live in the experiment-runner subsystem (exp/sweep.h) — these
// forwarders keep the not-yet-ported drivers source-compatible:
//   TOPOBENCH_EPS    — GK certified-gap target (default per bench)
//   TOPOBENCH_TRIALS — same-equipment random-graph samples per point
#pragma once

#include <iostream>
#include <string>

#include "exp/results.h"
#include "exp/sweep.h"
#include "util/table.h"

namespace tb::bench {

inline double env_eps(double fallback) { return exp::env_eps(fallback); }

inline int env_trials(int fallback) { return exp::env_trials(fallback); }

inline void emit(const Table& table, const std::string& caption) {
  if (exp::csv_mode()) {
    std::cout << "# " << caption << '\n' << table.to_csv();
  } else {
    table.print(std::cout, caption);
  }
  std::cout << '\n';
}

}  // namespace tb::bench
