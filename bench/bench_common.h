// Shared plumbing for the figure/table benches: every binary prints one
// paper artifact as an aligned table (CSV via TOPOBENCH_CSV=1). Solver
// accuracy and trial counts can be tightened from the environment without
// recompiling:
//   TOPOBENCH_EPS    — GK certified-gap target (default per bench)
//   TOPOBENCH_TRIALS — same-equipment random-graph samples per point
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "util/table.h"

namespace tb::bench {

inline double env_eps(double fallback) {
  if (const char* s = std::getenv("TOPOBENCH_EPS")) {
    const double v = std::strtod(s, nullptr);
    if (v > 0.0 && v < 0.5) return v;
  }
  return fallback;
}

inline int env_trials(int fallback) {
  if (const char* s = std::getenv("TOPOBENCH_TRIALS")) {
    const long v = std::strtol(s, nullptr, 10);
    if (v >= 1 && v <= 100) return static_cast<int>(v);
  }
  return fallback;
}

inline void emit(const Table& table, const std::string& caption) {
  if (const char* s = std::getenv("TOPOBENCH_CSV"); s && s[0] == '1') {
    std::cout << "# " << caption << '\n' << table.to_csv();
  } else {
    table.print(std::cout, caption);
  }
  std::cout << '\n';
}

}  // namespace tb::bench
