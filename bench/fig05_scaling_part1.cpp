// Figure 5: relative throughput (normalized by same-equipment random
// graphs) vs network size under (a) all-to-all, (b) random matching and
// (c) longest matching, for BCube, DCell, Dragonfly, fat tree, flattened
// butterfly and hypercube.
//
// Paper claims reproduced: relative performance of most of these families
// degrades with scale; which family "wins" depends on the TM (Dragonfly
// strong under A2A, fat tree strongest under LM at the largest sizes).
#include "scaling_common.h"

int main() {
  using namespace tb;
  bench::scaling_sweep(
      {Family::BCube, Family::DCell, Family::Dragonfly, Family::FatTree,
       Family::FlattenedBF, Family::Hypercube},
      "Fig 5: relative throughput vs size (part 1)", /*max_servers=*/500);
  return 0;
}
