// Figure 5: relative throughput (normalized by same-equipment random
// graphs) vs network size under (a) all-to-all, (b) random matching and
// (c) longest matching, for BCube, DCell, Dragonfly, fat tree, flattened
// butterfly and hypercube.
//
// Paper claims reproduced: relative performance of most of these families
// degrades with scale; which family "wins" depends on the TM (Dragonfly
// strong under A2A, fat tree strongest under LM at the largest sizes).
//
// Runs on the experiment runner: TOPOBENCH_CSV=1 emits the uniform cell
// CSV, TOPOBENCH_MAX_SERVERS shrinks the ladder for smoke runs.
#include <iostream>

#include "exp/runner.h"

int main() {
  using namespace tb;
  const std::string caption = "Fig 5: relative throughput vs size (part 1)";
  const exp::Sweep sweep = exp::relative_scaling_sweep(
      {Family::BCube, Family::DCell, Family::Dragonfly, Family::FatTree,
       Family::FlattenedBF, Family::Hypercube},
      /*max_servers=*/500);
  exp::Runner runner;
  const exp::ResultSet rs = runner.run(sweep, exp::RunOptions::from_env());
  // A sharded run (TOPOBENCH_SHARD=i/n) holds a partial grid: emit the
  // mergeable slice — the pivot needs every cell.
  if (exp::csv_mode() || rs.slice()) {
    rs.emit(std::cout, caption);
  } else {
    exp::relative_pivot(rs, sweep).print(std::cout, caption);
    std::cout << '\n';
  }
  return 0;
}
