// Figures 10 & 11: robustness to non-uniform demand — the longest-matching
// TM with x% of flows given weight 10 (others weight 1), x swept over
// 1..100, relative throughput per family.
//
// Paper claims reproduced: all families degrade gracefully except the fat
// tree, which dips sharply when a few elephants dominate (its ToR uplinks
// carry only locally originated traffic, so one weight-10 flow pins a ToR).
#include <iostream>
#include <string>

#include "bench_common.h"
#include "core/evaluator.h"
#include "core/registry.h"
#include "tm/synthetic.h"
#include "util/rng.h"

int main() {
  using namespace tb;
  const double eps = bench::env_eps(0.10);
  const int trials = bench::env_trials(2);
  const int target_servers = 128;

  Table table({"topology", "servers", "x=1%", "x=5%", "x=20%", "x=50%",
               "x=100%"});
  for (const Family f : all_families()) {
    const Network net = family_representative(f, target_servers, /*seed=*/1);
    const TrafficMatrix base = longest_matching(net);
    std::vector<std::string> row{family_name(f),
                                 std::to_string(net.total_servers())};
    for (const double frac : {0.01, 0.05, 0.20, 0.50, 1.00}) {
      const TrafficMatrix tm = with_elephants(base, frac, 10.0, /*seed=*/77);
      RelativeOptions opts;
      opts.random_trials = trials;
      opts.solve.epsilon = eps;
      opts.seed = mix_seed(7000, static_cast<std::uint64_t>(f));
      const RelativeResult r = relative_throughput(net, tm, opts);
      row.push_back(Table::fmt(r.relative, 3));
    }
    table.add_row(std::move(row));
  }
  bench::emit(table,
              "Figs 10-11: relative throughput with x% weight-10 elephant flows "
              "(LM base)");
  return 0;
}
