// The theory section's evidence (§II-B, Appendix A):
//
//  (1) Graph A (clustered random) vs Graph B (subdivided expander): B has
//      the LARGER (better-looking) sparsest cut yet the SMALLER worst-case
//      throughput — choosing by cuts picks the wrong network.
//  (2) The 5-ary 3-stage flattened butterfly: even in a small structured
//      network, exact throughput (paper: 0.565) sits strictly below the
//      sparsest cut (paper: 0.6) under the longest-matching TM.
#include <iostream>
#include <string>

#include "bench_common.h"
#include "cuts/sparsest_cut.h"
#include "mcf/throughput.h"
#include "tm/synthetic.h"
#include "topo/flattened_butterfly.h"
#include "topo/theory_graphs.h"

int main() {
  using namespace tb;
  const double eps = bench::env_eps(0.03);

  {
    // Graph A: two 32-node clusters, alpha=6 within, beta=2 across.
    // Graph B: 4-regular expanders subdivided with p = 1 (plain expander),
    // 3 and 5 — the paper's knob that separates cut from throughput.
    // Per Theorem 1: the uniform sparsest cut (A2A demands) stays
    // Omega(1/np) while worst-case throughput falls as O(1/(np log n)), so
    // B's cut/throughput ratio grows with p; A's stays near 1 (its cut is
    // tight). Cut-based selection would increasingly favour the wrong
    // graph.
    Table table({"graph", "nodes", "throughput_LM", "uniform_sparse_cut",
                 "cut/throughput"});
    const auto add = [&](const Network& net) {
      mcf::SolveOptions opts;
      opts.epsilon = eps;
      const double thr =
          mcf::compute_throughput(net, longest_matching(net), opts).throughput;
      const double cut =
          cuts::best_sparse_cut(net.graph, all_to_all(net)).best.sparsity;
      table.add_row({net.name, std::to_string(net.graph.num_nodes()),
                     Table::fmt(thr, 4), Table::fmt(cut, 4),
                     Table::fmt(cut / thr, 2)});
    };
    add(make_clustered_random(32, 6, 2, /*seed=*/5));
    for (const int p : {1, 3, 5}) {
      add(make_subdivided_expander(16, 2, p, /*seed=*/5));
    }
    bench::emit(table,
                "Theory: clustered random (A) vs subdivided expanders (B, "
                "growing p) — B's cut looks fine while its throughput "
                "collapses");
  }

  {
    // FBF(5,3): exact LP throughput vs exhaustive-ish sparse cut, A2A TM
    // (uniform sparsest cut) and LM TM.
    const Network fbf = make_flattened_butterfly(5, 3);
    Table table({"TM", "throughput_exactLP", "sparse_cut", "gap"});
    for (const TrafficMatrix& tm :
         {all_to_all(fbf), longest_matching(fbf)}) {
      const double thr = mcf::throughput_exact_lp(fbf.graph, tm).throughput;
      const cuts::SparseCutSurvey survey =
          cuts::best_sparse_cut(fbf.graph, tm, /*brute_force_cap=*/200'000);
      table.add_row({tm.name, Table::fmt(thr, 4),
                     Table::fmt(survey.best.sparsity, 4),
                     Table::fmt(survey.best.sparsity / thr, 3)});
    }
    bench::emit(table,
                "Theory: 5-ary 3-stage flattened butterfly — throughput is "
                "strictly below the sparsest cut (paper: 0.565 vs 0.6)");
  }
  return 0;
}
