// Figure 4: throughput under different TMs, normalized by the theoretical
// lower bound T_A2A / 2 (so A2A plots at 2.0 and the bound at 1.0), for a
// representative instance of each of the ten topology families.
//
// Paper claims reproduced: for every network,
//     T_A2A >= T_RM(5) >= T_RM(1) >= T_LM >= 1 (the bound);
// LM pushes BCube / Hypercube / HyperX (and nearly Dragonfly) to the
// bound, while on fat trees LM stays at the A2A level (the bound is loose
// there, not the metric).
//
// Runs on the experiment runner: TOPOBENCH_CSV=1 emits the uniform cell
// CSV, TOPOBENCH_TARGET_SERVERS shrinks the instances for smoke runs, and
// TOPOBENCH_WARMSTART=1 chains each topology's TM ladder through one
// ThroughputEngine (every solve after A2A seeds from the previous
// solution) — the same grid solves ~2x+ faster, with each value agreeing
// with the cold run within the solver's certified gap.
#include <iostream>
#include <string>

#include "exp/runner.h"
#include "util/table.h"

int main() {
  using namespace tb;
  const std::string caption =
      "Fig 4: throughput normalized so the Theorem-2 lower bound = 1";

  exp::Sweep sweep;
  sweep.solve.epsilon = exp::env_eps(0.05);
  sweep.base_seed = 11;
  sweep.warm_start = exp::env_int("TOPOBENCH_WARMSTART", 0, 0, 1) == 1;
  const int target =
      exp::env_int("TOPOBENCH_TARGET_SERVERS", 128, 4, 1'000'000);
  for (const Family f : all_families()) {
    sweep.topologies.push_back(exp::representative_spec(f, target, /*seed=*/1));
  }
  sweep.tms = {exp::a2a_tm(), exp::random_matching_tm(5),
               exp::random_matching_tm(1), exp::longest_matching_tm()};

  exp::Runner runner;
  const exp::ResultSet rs = runner.run(sweep, exp::RunOptions::from_env());
  // A sharded run (TOPOBENCH_SHARD=i/n) holds a partial grid: emit the
  // mergeable slice — the derived figure table needs every cell.
  if (exp::csv_mode() || rs.slice()) {
    rs.emit(std::cout, caption);
    return 0;
  }

  Table table({"topology", "servers", "A2A", "RM(5)", "RM(1)", "LM"});
  for (const exp::TopoSpec& topo : sweep.topologies) {
    const exp::CellResult& a2a = rs.at(topo.label, "A2A");
    const double bound = a2a.throughput / 2.0;
    table.add_row({topo.label, std::to_string(a2a.servers),
                   Table::fmt(a2a.throughput / bound, 3),
                   Table::fmt(rs.at(topo.label, "RM(5)").throughput / bound, 3),
                   Table::fmt(rs.at(topo.label, "RM(1)").throughput / bound, 3),
                   Table::fmt(rs.at(topo.label, "LM").throughput / bound, 3)});
  }
  table.print(std::cout, caption);
  std::cout << '\n';
  return 0;
}
