// Figure 4: throughput under different TMs, normalized by the theoretical
// lower bound T_A2A / 2 (so A2A plots at 2.0 and the bound at 1.0), for a
// representative instance of each of the ten topology families.
//
// Paper claims reproduced: for every network,
//     T_A2A >= T_RM(5) >= T_RM(1) >= T_LM >= 1 (the bound);
// LM pushes BCube / Hypercube / HyperX (and nearly Dragonfly) to the
// bound, while on fat trees LM stays at the A2A level (the bound is loose
// there, not the metric).
#include <iostream>
#include <string>

#include "bench_common.h"
#include "core/registry.h"
#include "mcf/throughput.h"
#include "tm/synthetic.h"

int main() {
  using namespace tb;
  const double eps = bench::env_eps(0.05);
  const int target_servers = 128;

  Table table({"topology", "servers", "A2A", "RM(5)", "RM(1)", "LM"});
  for (const Family f : all_families()) {
    const Network net = family_representative(f, target_servers, /*seed=*/1);
    mcf::SolveOptions opts;
    opts.epsilon = eps;
    const double a2a =
        mcf::compute_throughput(net, all_to_all(net), opts).throughput;
    const double bound = a2a / 2.0;
    const double rm5 =
        mcf::compute_throughput(net, random_matching(net, 5, 11), opts).throughput;
    const double rm1 =
        mcf::compute_throughput(net, random_matching(net, 1, 11), opts).throughput;
    const double lm =
        mcf::compute_throughput(net, longest_matching(net), opts).throughput;
    table.add_row({family_name(f), std::to_string(net.total_servers()),
                   Table::fmt(a2a / bound, 3), Table::fmt(rm5 / bound, 3),
                   Table::fmt(rm1 / bound, 3), Table::fmt(lm / bound, 3)});
  }
  bench::emit(table,
              "Fig 4: throughput normalized so the Theorem-2 lower bound = 1");
  return 0;
}
