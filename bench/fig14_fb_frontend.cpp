// Figure 14: the (synthetic stand-in for the) Facebook frontend-cluster TM
// (TM-F, heavily skewed toward cache racks), sampled vs shuffled rack
// placement per topology family.
//
// Paper claims reproduced: under the skewed TM-F, randomizing placement
// significantly improves throughput for every family EXCEPT the expanders
// (Jellyfish, Long Hop, Slim Fly) and the fat tree, which are already
// robust to placement.
#include <iostream>
#include <string>

#include "bench_common.h"
#include "core/evaluator.h"
#include "core/registry.h"
#include "tm/facebook.h"
#include "util/rng.h"
#include "util/stats.h"

int main() {
  using namespace tb;
  const double eps = bench::env_eps(0.10);
  const int trials = bench::env_trials(2);
  const int racks = 64;
  const std::vector<double> rack_tm = synth_tm_frontend(racks, /*seed=*/11);

  Table table({"topology", "hosts_used", "sampled", "shuffled(mean of 3)",
               "shuffle_gain"});
  for (const Family f : all_families()) {
    const Network net = family_representative(f, racks, /*seed=*/1);
    RelativeOptions opts;
    opts.random_trials = trials;
    opts.solve.epsilon = eps;
    opts.seed = mix_seed(9000, static_cast<std::uint64_t>(f));
    const TrafficMatrix sampled = map_rack_tm(net, rack_tm, racks, 0);
    const double rs = relative_throughput(net, sampled, opts).relative;
    std::vector<double> shuffled_rel;
    for (const std::uint64_t pseed : {501ULL, 502ULL, 503ULL}) {
      const TrafficMatrix shuffled = map_rack_tm(net, rack_tm, racks, pseed);
      shuffled_rel.push_back(relative_throughput(net, shuffled, opts).relative);
    }
    const double rh = mean_of(shuffled_rel);
    const int used = std::min<int>(racks, static_cast<int>(net.host_nodes().size()));
    table.add_row({family_name(f), std::to_string(used), Table::fmt(rs, 3),
                   Table::fmt(rh, 3), Table::fmt(rh / rs, 3)});
  }
  bench::emit(table, "Fig 14: Facebook frontend TM-F, sampled vs shuffled");
  return 0;
}
