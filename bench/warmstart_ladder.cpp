// Warm-start ladder comparison, the first entry in the bench trajectory:
// runs the fig04 TM-ladder grid twice in-process — cold (stateless
// per-cell solves) and warm (per-topology ThroughputEngine session chains,
// Sweep::warm_start) — verifies every warm value agrees with its cold
// counterpart within the combined certified gap, and writes a
// BENCH_warmstart.json timing record for the CI perf-smoke job.
//
// Exit status is non-zero when a warm value drifts outside the certified
// tolerance or the speedup falls below TOPOBENCH_MIN_SPEEDUP (default 1.4
// — headroom for noisy CI hosts; the measured default-grid speedup on a
// quiet machine is ~2.8x and is recorded in the JSON either way).
//
// Knobs: TOPOBENCH_TARGET_SERVERS sizes the grid (fig04's default 128),
// TOPOBENCH_EPS the certified gap, argv[1] the JSON output path.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "exp/runner.h"
#include "exp/shard.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace tb;
  // The cold/warm comparison indexes the whole grid in one process; a
  // sharded slice would break it, so fail loudly instead of mismeasuring.
  if (exp::env_shard()) {
    std::cerr << "warmstart_ladder: TOPOBENCH_SHARD is not supported (the "
                 "cold-vs-warm comparison needs the whole grid)\n";
    return 1;
  }
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_warmstart.json";
  const double eps = exp::env_eps(0.05);
  const int target =
      exp::env_int("TOPOBENCH_TARGET_SERVERS", 128, 4, 1'000'000);

  exp::Sweep sweep;  // fig04's grid
  sweep.solve.epsilon = eps;
  sweep.base_seed = 11;
  for (const Family f : all_families()) {
    sweep.topologies.push_back(exp::representative_spec(f, target, /*seed=*/1));
  }
  sweep.tms = {exp::a2a_tm(), exp::random_matching_tm(5),
               exp::random_matching_tm(1), exp::longest_matching_tm()};

  // Fresh runner per mode: the in-process cache must not let the second
  // run answer from the first (warm and cold have distinct fingerprints,
  // but a shared runner would still blur the timing with allocator reuse).
  Timer timer;
  exp::Runner cold_runner;
  const exp::ResultSet cold = cold_runner.run(sweep, exp::RunOptions::from_env());
  const double cold_seconds = timer.seconds();

  sweep.warm_start = true;
  timer.reset();
  exp::Runner warm_runner;
  const exp::ResultSet warm = warm_runner.run(sweep, exp::RunOptions::from_env());
  const double warm_seconds = timer.seconds();

  // Equivalence: cold and warm are both certified within (1 + eps) of the
  // same optimum, so they agree within ~2*eps relative; allow slack for
  // the plateau guard's residual gap.
  const double tolerance = 2.5 * eps;
  double worst_dev = 0.0;
  bool values_ok = true;
  for (std::size_t i = 0; i < cold.size(); ++i) {
    const exp::CellResult& c = cold.rows()[i];
    const exp::CellResult& w = warm.rows()[i];
    const double dev =
        c.throughput > 0.0 ? std::abs(w.throughput / c.throughput - 1.0) : 0.0;
    worst_dev = std::max(worst_dev, dev);
    if (dev > tolerance) {
      values_ok = false;
      std::fprintf(stderr,
                   "FAIL %s/%s: warm %.6f vs cold %.6f (dev %.2f%% > %.2f%%)\n",
                   c.topology.c_str(), c.tm.c_str(), w.throughput, c.throughput,
                   dev * 100.0, tolerance * 100.0);
    }
  }

  const double speedup = warm_seconds > 0.0 ? cold_seconds / warm_seconds : 0.0;
  double min_speedup = 1.4;
  if (const char* s = std::getenv("TOPOBENCH_MIN_SPEEDUP")) {
    const double v = std::strtod(s, nullptr);
    if (v > 0.0) min_speedup = v;
  }

  std::ofstream json(json_path);
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"bench\": \"warmstart_ladder\", \"grid\": \"fig04\", "
                "\"target_servers\": %d, \"epsilon\": %g, \"cells\": %zu, "
                "\"cold_seconds\": %.3f, \"warm_seconds\": %.3f, "
                "\"speedup\": %.3f, \"worst_value_dev\": %.5f, "
                "\"tolerance\": %.5f}\n",
                target, eps, cold.size(), cold_seconds, warm_seconds, speedup,
                worst_dev, tolerance);
  json << buf;
  json.close();
  std::cout << buf;

  if (!values_ok) {
    std::cerr << "warmstart_ladder: warm values drifted outside the certified "
                 "tolerance\n";
    return 1;
  }
  if (speedup < min_speedup) {
    std::fprintf(stderr,
                 "warmstart_ladder: speedup %.2fx below required %.2fx\n",
                 speedup, min_speedup);
    return 1;
  }
  return 0;
}
