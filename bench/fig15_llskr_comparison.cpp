// Figure 15: replication of Yuan et al. [48]'s fat-tree-vs-Jellyfish
// comparison and the two methodological corrections.
//
//   Comparison 1 ([48]'s method): subflow-counting throughput estimate on a
//     fixed multi-path set — fat tree and Jellyfish look similar, with
//     Jellyfish holding MORE servers (160) than the fat tree (128) on the
//     same 80 switches.
//   Comparison 2: exact LP on the SAME path sets — Jellyfish pulls ahead.
//   Comparison 3: equipment equalized (both 80 switches / 128 servers) —
//     the gap widens further.
//
// Path sets: k shortest paths per commodity (LLSKR-style subflow spreading;
// DESIGN.md records the substitution).
#include <iostream>
#include <string>

#include "bench_common.h"
#include "mcf/paths.h"
#include "mcf/throughput.h"
#include "tm/synthetic.h"
#include "topo/fattree.h"
#include "topo/jellyfish.h"

namespace {

using namespace tb;

struct Row {
  double counting = 0.0;
  double path_lp = 0.0;
};

Row evaluate(const Network& net, int paths_per_flow) {
  // Per-server random permutation workload (each server one unit flow), so
  // the server-count asymmetry between the setups shows up in the demand.
  const TrafficMatrix tm = random_matching_servers(net, /*seed=*/97);
  const auto sets = mcf::build_path_sets(net.graph, tm, paths_per_flow);
  Row row;
  row.counting = mcf::counting_throughput(net.graph, sets).average;
  row.path_lp = mcf::path_restricted_throughput(net.graph, sets);
  return row;
}

}  // namespace

int main() {
  using namespace tb;
  const int k_paths = 4;

  // Fat tree k=8: 80 switches, 128 servers. Yuan et al. gave Jellyfish the
  // same 80 switches but 160 servers (2 per switch); equalized = 128
  // servers on the same 80 switches (only 48 switches get a 2nd... the
  // paper equalizes total server count; we attach 128 servers uniformly by
  // using the fat tree's own degree sequence for the random graph).
  const Network ft = make_fat_tree(8);
  Network jf_more = make_jellyfish(80, 8, 2, /*seed=*/41);  // 160 servers
  Network jf_equal = make_jellyfish(80, 8, 1, /*seed=*/41);
  // Equalize: 128 servers over 80 switches (first 48 get two).
  for (int v = 0; v < 48; ++v) jf_equal.servers[static_cast<std::size_t>(v)] = 2;

  const Row ft_row = evaluate(ft, k_paths);
  const Row jf_more_row = evaluate(jf_more, k_paths);
  const Row jf_equal_row = evaluate(jf_equal, k_paths);

  Table table({"comparison", "FatTree", "Jellyfish", "jf/ft"});
  table.add_row({"1: counting estimate ([48], jf has 160 srv)",
                 Table::fmt(ft_row.counting, 3),
                 Table::fmt(jf_more_row.counting, 3),
                 Table::fmt(jf_more_row.counting / ft_row.counting, 2)});
  table.add_row({"2: exact LP, same paths (jf has 160 srv)",
                 Table::fmt(ft_row.path_lp, 3),
                 Table::fmt(jf_more_row.path_lp, 3),
                 Table::fmt(jf_more_row.path_lp / ft_row.path_lp, 2)});
  table.add_row({"3: exact LP, equal equipment (128 srv)",
                 Table::fmt(ft_row.path_lp, 3),
                 Table::fmt(jf_equal_row.path_lp, 3),
                 Table::fmt(jf_equal_row.path_lp / ft_row.path_lp, 2)});
  bench::emit(table,
              "Fig 15: counting-estimate vs exact-LP vs equal-equipment "
              "(fat tree / Jellyfish)");
  return 0;
}
