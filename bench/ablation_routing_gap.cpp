// Ablation (paper §V): how much of a topology's throughput does the
// routing scheme leave on the table? The paper argues evaluations under
// restricted routing (single-path in [47]) measure the routing, not the
// topology; this bench quantifies that by comparing, per family under the
// longest-matching TM:
//   optimal LP flow  >=  ECMP  >=  single shortest path,   and VLB.
#include <iostream>
#include <string>

#include "bench_common.h"
#include "core/registry.h"
#include "mcf/routing.h"
#include "mcf/throughput.h"
#include "tm/synthetic.h"

int main() {
  using namespace tb;
  const double eps = bench::env_eps(0.03);

  Table table({"topology", "servers", "optimal", "ECMP", "single-path", "VLB",
               "ECMP/opt", "SP/opt"});
  for (const Family f : all_families()) {
    const Network net = family_representative(f, 64, /*seed=*/1);
    const TrafficMatrix tm = longest_matching(net);
    mcf::SolveOptions opts;
    opts.epsilon = eps;
    const double opt = mcf::compute_throughput(net, tm, opts).throughput;
    const double ecmp = mcf::ecmp_throughput(net.graph, tm).throughput;
    const double sp = mcf::single_path_throughput(net.graph, tm).throughput;
    const double vlb = mcf::vlb_throughput(net.graph, tm).throughput;
    table.add_row({family_name(f), std::to_string(net.total_servers()),
                   Table::fmt(opt, 3), Table::fmt(ecmp, 3), Table::fmt(sp, 3),
                   Table::fmt(vlb, 3), Table::fmt(ecmp / opt, 2),
                   Table::fmt(sp / opt, 2)});
  }
  bench::emit(table,
              "Ablation: routing-scheme gap under the LM TM (optimal vs ECMP "
              "vs single path vs VLB). 'optimal' is a certified (1-eps) "
              "lower bound, so scheme/opt can marginally exceed 1.");
  return 0;
}
