// Micro-benchmarks (google-benchmark): the computational substrates —
// Garg-Konemann max concurrent flow, the exact simplex LP, Hungarian
// matching, topology generation and the spectral sweep. These are the
// knobs that determine how far the figure benches scale.
#include <benchmark/benchmark.h>

#include "core/registry.h"
#include "flow/flow_network.h"
#include "flow/max_flow.h"
#include "graph/spectral.h"
#include "matching/hungarian.h"
#include "mcf/garg_konemann.h"
#include "mcf/throughput.h"
#include "tm/synthetic.h"
#include "topo/fattree.h"
#include "topo/hypercube.h"
#include "topo/jellyfish.h"
#include "topo/slimfly.h"
#include "util/rng.h"

namespace {

using namespace tb;

void BM_GkAllToAll(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Network net = make_jellyfish(n, 6, 1, 1);
  const TrafficMatrix tm = all_to_all(net);
  mcf::GkOptions opts;
  opts.epsilon = 0.05;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mcf::max_concurrent_flow(net.graph, tm, opts));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_GkAllToAll)->Arg(32)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_GkLongestMatching(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Network net = make_jellyfish(n, 6, 1, 1);
  const TrafficMatrix tm = longest_matching(net);
  mcf::GkOptions opts;
  opts.epsilon = 0.05;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mcf::max_concurrent_flow(net.graph, tm, opts));
  }
}
BENCHMARK(BM_GkLongestMatching)->Arg(32)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_ExactLpThroughput(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const Network net = make_hypercube(d);
  const TrafficMatrix tm = longest_matching(net);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mcf::throughput_exact_lp(net.graph, tm));
  }
}
BENCHMARK(BM_ExactLpThroughput)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_Hungarian(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(7);
  std::vector<double> w(static_cast<std::size_t>(n) * n);
  for (double& x : w) x = rng.next_double(0.0, 10.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(max_weight_perfect_matching(w, n));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Hungarian)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_JellyfishGeneration(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t trial = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_jellyfish(n, 8, 1, mix_seed(1, trial++)));
  }
}
BENCHMARK(BM_JellyfishGeneration)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_SlimFlyGeneration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_slim_fly(13, 9));
  }
}
BENCHMARK(BM_SlimFlyGeneration)->Unit(benchmark::kMillisecond);

void BM_FiedlerVector(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Network net = make_jellyfish(n, 6, 1, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fiedler_vector(net.graph));
  }
}
BENCHMARK(BM_FiedlerVector)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

// Max-flow engine shoot-out on one large finalized registry instance
// (Jellyfish at the requested server count — the registry's biggest
// always-available family): grounds FlowAlgo::Auto's
// parallel-discharge-vs-highest-label cutoff (kParallelDischargeMinArcs
// in flow/max_flow.cpp) in measured per-solve times, with Dinic as the
// reference baseline. One s-t solve per iteration on a reset network,
// exactly the battery's inner loop.
void BM_StMaxFlow(benchmark::State& state, flow::FlowAlgo algo, int threads) {
  const int target = static_cast<int>(state.range(0));
  const Network net =
      family_representative(Family::Jellyfish, target, /*seed=*/1);
  flow::FlowNetwork fn = flow::FlowNetwork::from_graph(net.graph);
  flow::FlowOptions fo;
  fo.algo = algo;
  fo.threads = threads;
  const int s = 0;
  const int t = fn.num_nodes() - 1;
  for (auto _ : state) {
    fn.reset();
    benchmark::DoNotOptimize(flow::max_flow(fn, s, t, fo, nullptr));
  }
  state.counters["arcs"] = static_cast<double>(fn.num_arcs());
}

void BM_StMaxFlowHighestLabel(benchmark::State& state) {
  BM_StMaxFlow(state, flow::FlowAlgo::HighestLabel, 1);
}
BENCHMARK(BM_StMaxFlowHighestLabel)
    ->Arg(96)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_StMaxFlowDinic(benchmark::State& state) {
  BM_StMaxFlow(state, flow::FlowAlgo::Dinic, 1);
}
BENCHMARK(BM_StMaxFlowDinic)
    ->Arg(96)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_StMaxFlowParallelDischargeSerial(benchmark::State& state) {
  BM_StMaxFlow(state, flow::FlowAlgo::ParallelDischarge, 1);
}
BENCHMARK(BM_StMaxFlowParallelDischargeSerial)
    ->Arg(96)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_StMaxFlowParallelDischarge4(benchmark::State& state) {
  BM_StMaxFlow(state, flow::FlowAlgo::ParallelDischarge, 4);
}
BENCHMARK(BM_StMaxFlowParallelDischarge4)
    ->Arg(96)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_LongestMatchingTm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Network net = make_jellyfish(n, 6, 1, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(longest_matching(net));
  }
}
BENCHMARK(BM_LongestMatchingTm)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
