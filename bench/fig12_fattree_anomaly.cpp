// Figure 12: the fat-tree anomaly in absolute throughput. Fat tree vs
// hypercube vs Jellyfish networks built with the same equipment as each,
// under the elephant-weighted LM TM.
//
// Paper claims reproduced: the hypercube and both matched-gear Jellyfish
// networks degrade gracefully as the elephant fraction grows; the fat tree
// collapses at small x because a single weight-10 flow saturates its
// ToR-local uplinks (no non-local traffic shares ToR links).
#include <iostream>
#include <string>

#include "bench_common.h"
#include "mcf/throughput.h"
#include "tm/synthetic.h"
#include "topo/fattree.h"
#include "topo/hypercube.h"
#include "topo/jellyfish.h"

int main() {
  using namespace tb;
  const double eps = bench::env_eps(0.06);

  const Network ft = make_fat_tree(8);       // 128 servers
  const Network hc = make_hypercube(7);      // 128 switches
  const Network jf_hc = make_same_equipment_random(hc, 21);
  const Network jf_ft = make_same_equipment_random(ft, 22);

  Table table({"x%", "FatTree", "Hypercube", "Jellyfish(hc gear)",
               "Jellyfish(ft gear)"});
  for (const double frac : {0.01, 0.02, 0.05, 0.10, 0.20, 0.50, 1.00}) {
    std::vector<std::string> row{Table::fmt(100.0 * frac, 0)};
    for (const Network* net : {&ft, &hc, &jf_hc, &jf_ft}) {
      const TrafficMatrix base = longest_matching(*net);
      const TrafficMatrix tm = with_elephants(base, frac, 10.0, /*seed=*/31);
      mcf::SolveOptions opts;
      opts.epsilon = eps;
      row.push_back(
          Table::fmt(mcf::compute_throughput(*net, tm, opts).throughput, 3));
    }
    table.add_row(std::move(row));
  }
  bench::emit(table,
              "Fig 12: absolute throughput vs elephant fraction (weight-10 "
              "flows, LM base)");
  return 0;
}
