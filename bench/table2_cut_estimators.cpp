// Table II (Appendix C): for every network in the study, which sparse-cut
// estimator found the winning (sparsest) cut, and how often the estimated
// cut actually equals LP throughput.
//
// Paper claims reproduced: cuts equal throughput only in a minority of
// networks; the eigenvector sweep wins most often, but the other
// heuristics improve on it in a nontrivial fraction of cases.
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/registry.h"
#include "cuts/sparsest_cut.h"
#include "mcf/throughput.h"
#include "tm/synthetic.h"
#include "topo/natural.h"

int main() {
  using namespace tb;
  const double eps = bench::env_eps(0.04);

  struct FamilyStats {
    int total = 0;
    int cut_equals_throughput = 0;
    std::map<std::string, int> winner_count;
  };
  std::map<std::string, FamilyStats> stats;
  const std::vector<std::string> methods{"brute-force", "one-node", "two-node",
                                         "expanding", "eigenvector",
                                         "st-mincut"};

  const auto process = [&](const std::string& family, const Network& net) {
    const TrafficMatrix tm = longest_matching(net);
    mcf::SolveOptions opts;
    opts.epsilon = eps;
    const double thr = mcf::compute_throughput(net, tm, opts).throughput;
    const cuts::SparseCutSurvey survey = cuts::best_sparse_cut(net.graph, tm);
    FamilyStats& fs = stats[family];
    ++fs.total;
    // "Equal" up to solver tolerance.
    if (survey.best.sparsity <= thr * (1.0 + 2.0 * eps)) {
      ++fs.cut_equals_throughput;
    }
    for (const std::string& w : survey.winners) ++fs.winner_count[w];
  };

  for (const Family f : all_families()) {
    for (const Network& net : family_instances(f, 1, 80, /*seed=*/3)) {
      process(family_name(f), net);
    }
    // A few extra random instances for the randomized families.
    if (f == Family::Jellyfish) {
      for (const std::uint64_t seed : {11ULL, 12ULL, 13ULL, 14ULL}) {
        Network net = family_instances(f, 1, 80, seed)[0];
        process(family_name(f), net);
      }
    }
  }
  for (const Network& net : natural_network_suite(15, /*seed=*/5)) {
    process("Natural", net);
  }

  std::vector<std::string> header{"family", "total", "cut==throughput"};
  for (const std::string& m : methods) header.push_back(m);
  Table table(header);
  FamilyStats grand;
  for (const auto& [family, fs] : stats) {
    std::vector<std::string> row{family, std::to_string(fs.total),
                                 std::to_string(fs.cut_equals_throughput)};
    grand.total += fs.total;
    grand.cut_equals_throughput += fs.cut_equals_throughput;
    for (const std::string& m : methods) {
      const auto it = fs.winner_count.find(m);
      const int c = it == fs.winner_count.end() ? 0 : it->second;
      row.push_back(std::to_string(c));
      grand.winner_count[m] += c;
    }
    table.add_row(std::move(row));
  }
  std::vector<std::string> total_row{"Total", std::to_string(grand.total),
                                     std::to_string(grand.cut_equals_throughput)};
  for (const std::string& m : methods) {
    total_row.push_back(std::to_string(grand.winner_count[m]));
  }
  table.add_row(std::move(total_row));
  bench::emit(table,
              "Table II: which estimator found the sparse cut; does it match "
              "throughput");
  return 0;
}
