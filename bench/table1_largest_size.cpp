// Table I: relative throughput at the largest size tested for the Figure 5
// families, under all-to-all, random matching and longest matching.
//
// Paper's values (at its larger scale): BCube 73/90/51, DCell 93/97/79,
// Dragonfly 95/76/72, Fat tree 65/73/89, Flattened BF 59/71/47, Hypercube
// 72/84/51 (percent). Shape expectations: all below 100%; fat tree is the
// only family whose LM column beats its A2A column.
//
// Runs on the experiment runner: TOPOBENCH_CSV=1 emits the uniform cell
// CSV, TOPOBENCH_TARGET_SERVERS shrinks the instances for smoke runs.
#include <iostream>
#include <string>

#include "exp/runner.h"
#include "util/table.h"

int main() {
  using namespace tb;
  const std::string caption =
      "Table I: relative throughput at the largest size tested";

  exp::Sweep sweep;
  sweep.solve.epsilon = exp::env_eps(0.10);
  sweep.trials = exp::env_trials(2);
  sweep.base_seed = 2000;
  const int target =
      exp::env_int("TOPOBENCH_TARGET_SERVERS", 1'000'000, 4, 1'000'000);
  for (const Family f :
       {Family::BCube, Family::DCell, Family::Dragonfly, Family::FatTree,
        Family::FlattenedBF, Family::Hypercube}) {
    sweep.topologies.push_back(exp::representative_spec(f, target, /*seed=*/1));
  }
  sweep.tms = {exp::a2a_tm(), exp::random_matching_tm(1),
               exp::longest_matching_tm()};

  exp::Runner runner;
  const exp::ResultSet rs = runner.run(sweep, exp::RunOptions::from_env());
  // A sharded run (TOPOBENCH_SHARD=i/n) holds a partial grid: emit the
  // mergeable slice — the derived table needs every cell.
  if (exp::csv_mode() || rs.slice()) {
    rs.emit(std::cout, caption);
    return 0;
  }

  Table table({"topology", "servers", "All-To-All", "RandomMatching",
               "LongestMatching"});
  const auto pct = [](double v) { return Table::fmt(100.0 * v, 1) + "%"; };
  for (const exp::TopoSpec& topo : sweep.topologies) {
    const exp::CellResult& a2a = rs.at(topo.label, "A2A");
    table.add_row({topo.label, std::to_string(a2a.servers), pct(a2a.relative),
                   pct(rs.at(topo.label, "RM(1)").relative),
                   pct(rs.at(topo.label, "LM").relative)});
  }
  table.print(std::cout, caption);
  std::cout << '\n';
  return 0;
}
