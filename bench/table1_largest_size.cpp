// Table I: relative throughput at the largest size tested for the Figure 5
// families, under all-to-all, random matching and longest matching.
//
// Paper's values (at its larger scale): BCube 73/90/51, DCell 93/97/79,
// Dragonfly 95/76/72, Fat tree 65/73/89, Flattened BF 59/71/47, Hypercube
// 72/84/51 (percent). Shape expectations: all below 100%; fat tree is the
// only family whose LM column beats its A2A column.
#include <iostream>
#include <string>

#include "bench_common.h"
#include "core/evaluator.h"
#include "core/registry.h"
#include "tm/synthetic.h"

int main() {
  using namespace tb;
  const double eps = bench::env_eps(0.10);
  const int trials = bench::env_trials(2);

  Table table({"topology", "servers", "All-To-All", "RandomMatching",
               "LongestMatching"});
  for (const Family f :
       {Family::BCube, Family::DCell, Family::Dragonfly, Family::FatTree,
        Family::FlattenedBF, Family::Hypercube}) {
    const Network net = family_representative(f, 1'000'000, /*seed=*/1);
    RelativeOptions opts;
    opts.random_trials = trials;
    opts.solve.epsilon = eps;
    opts.seed = 2000 + static_cast<std::uint64_t>(f);
    const double a2a =
        relative_throughput(net, all_to_all(net), opts).relative;
    const double rm =
        relative_throughput(net, random_matching(net, 1, 17), opts).relative;
    const double lm =
        relative_throughput(net, longest_matching(net), opts).relative;
    const auto pct = [](double v) { return Table::fmt(100.0 * v, 1) + "%"; };
    table.add_row({family_name(f), std::to_string(net.total_servers()),
                   pct(a2a), pct(rm), pct(lm)});
  }
  bench::emit(table, "Table I: relative throughput at the largest size tested");
  return 0;
}
