// Figure 3: throughput vs. sparse cut, both computed under the longest-
// matching TM, for instances of the ten topology families plus the
// natural-network suite. Every point must lie on or below the cut (cut
// upper-bounds flow); the paper's finding is the spread — cuts exceed
// throughput by up to ~3x, so cuts mispredict worst-case throughput.
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/registry.h"
#include "cuts/bisection.h"
#include "cuts/sparsest_cut.h"
#include "mcf/throughput.h"
#include "tm/synthetic.h"
#include "topo/natural.h"

int main() {
  using namespace tb;
  const double eps = bench::env_eps(0.04);

  std::vector<Network> nets;
  for (const Family f : all_families()) {
    // Small instances keep the two-node / expanding heuristics exhaustive.
    std::vector<Network> inst = family_instances(f, 1, 160, /*seed=*/3);
    const std::size_t keep = std::min<std::size_t>(inst.size(), 2);
    for (std::size_t i = 0; i < keep; ++i) nets.push_back(std::move(inst[i]));
  }
  for (Network& net : natural_network_suite(12, /*seed=*/5)) {
    nets.push_back(std::move(net));
  }

  Table table({"network", "switches", "throughput", "sparse_cut",
               "bisection", "cut/throughput"});
  double worst_ratio = 0.0;
  for (const Network& net : nets) {
    const TrafficMatrix tm = longest_matching(net);
    mcf::SolveOptions opts;
    opts.epsilon = eps;
    const double thr = mcf::compute_throughput(net, tm, opts).throughput;
    const cuts::SparseCutSurvey survey = cuts::best_sparse_cut(net.graph, tm);
    const cuts::CutResult bis = cuts::bisection_sparsity(net.graph, tm);
    const double ratio = survey.best.sparsity / thr;
    worst_ratio = std::max(worst_ratio, ratio);
    table.add_row({net.name, std::to_string(net.graph.num_nodes()),
                   Table::fmt(thr, 3), Table::fmt(survey.best.sparsity, 3),
                   Table::fmt(bis.sparsity, 3), Table::fmt(ratio, 3)});
  }
  bench::emit(table, "Fig 3: throughput vs best sparse cut (longest-matching TM)");
  std::cout << "max cut/throughput discrepancy: " << Table::fmt(worst_ratio, 2)
            << "x  (paper reports up to ~3x)\n";
  return 0;
}
