// Figure 3: throughput vs. sparse cut, both computed under the longest-
// matching TM, for instances of the ten topology families plus the
// natural-network suite. Every point must lie on or below the cut (cut
// upper-bounds flow); the paper's finding is the spread — cuts exceed
// throughput by up to ~3x, so cuts mispredict worst-case throughput.
//
// Runs on the experiment runner with Sweep::cut_bounds: every cell carries
// the best certified cut-based upper bound (cut_bound / cut_gap /
// cut_method columns, bisection included via core's cut_upper_bound).
// TOPOBENCH_CSV=1 emits the uniform cell CSV; TOPOBENCH_MAX_SERVERS caps
// the per-family instances for smoke runs.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "core/registry.h"
#include "exp/runner.h"
#include "topo/natural.h"
#include "util/table.h"

int main() {
  using namespace tb;
  const std::string caption =
      "Fig 3: throughput vs best sparse cut (longest-matching TM)";

  exp::Sweep sweep;
  sweep.solve.epsilon = exp::env_eps(0.04);
  sweep.base_seed = 17;
  sweep.cut_bounds = true;
  const int max_servers =
      exp::env_int("TOPOBENCH_MAX_SERVERS", 160, 4, 1'000'000);
  for (const Family f : all_families()) {
    // Small instances keep the two-node / expanding heuristics exhaustive.
    std::vector<Network> inst = family_instances(f, 1, max_servers, /*seed=*/3);
    const std::size_t keep = std::min<std::size_t>(inst.size(), 2);
    for (std::size_t i = 0; i < keep; ++i) {
      sweep.topologies.push_back(exp::instance_spec(std::move(inst[i])));
    }
  }
  for (Network& net : natural_network_suite(12, /*seed=*/5)) {
    sweep.topologies.push_back(exp::instance_spec(std::move(net)));
  }
  sweep.tms = {exp::longest_matching_tm()};

  exp::Runner runner;
  const exp::ResultSet rs = runner.run(sweep, exp::RunOptions::from_env());
  // A sharded run (TOPOBENCH_SHARD=i/n) holds a partial grid: emit the
  // mergeable slice — the summary table's max-ratio line needs every cell.
  if (exp::csv_mode() || rs.slice()) {
    rs.emit(std::cout, caption);
    return 0;
  }

  Table table({"network", "switches", "throughput", "cut_bound", "cut_method",
               "cut/throughput"});
  double worst_ratio = 0.0;
  for (const exp::CellResult& r : rs.rows()) {
    table.add_row({r.topology, std::to_string(r.switches),
                   Table::fmt(r.throughput, 3), Table::fmt(r.cut_bound, 3),
                   r.cut_method, Table::fmt(r.cut_gap, 3)});
    if (!std::isnan(r.cut_gap)) worst_ratio = std::max(worst_ratio, r.cut_gap);
  }
  table.print(std::cout, caption);
  std::cout << "max cut/throughput discrepancy: " << Table::fmt(worst_ratio, 2)
            << "x  (paper reports up to ~3x)\n";
  return 0;
}
