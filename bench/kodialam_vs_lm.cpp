// §II-C / §III-C: longest matching vs the Kodialam TM.
//
// Paper claims reproduced: the two TMs are equally close to the worst case
// (identical on hypercubes and fat trees, near-identical on random
// graphs), but longest matching generates far fewer flows and is computed
// much faster / scales further (the paper reports ~6x faster and 8x larger
// within the same memory).
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "mcf/throughput.h"
#include "tm/synthetic.h"
#include "topo/hypercube.h"
#include "topo/jellyfish.h"
#include "util/timer.h"

int main() {
  using namespace tb;
  const double eps = bench::env_eps(0.05);

  Table table({"network", "hosts", "LM_thr", "Kod_thr", "LM_flows",
               "Kod_flows", "LM_sec", "Kod_sec", "speedup"});
  std::vector<Network> nets;
  for (int d = 3; d <= 5; ++d) nets.push_back(make_hypercube(d));
  for (const int n : {32, 64, 96}) {
    nets.push_back(make_jellyfish(n, 5, 1, 19 + static_cast<unsigned>(n)));
  }
  for (const Network& net : nets) {
    Timer t_lm;
    const TrafficMatrix lm = longest_matching(net);
    const double lm_sec = t_lm.seconds();
    Timer t_kod;
    const TrafficMatrix kod = kodialam_tm(net);
    const double kod_sec = t_kod.seconds();

    mcf::SolveOptions opts;
    opts.epsilon = eps;
    const double lm_thr = mcf::compute_throughput(net, lm, opts).throughput;
    const double kod_thr = mcf::compute_throughput(net, kod, opts).throughput;
    table.add_row({net.name, std::to_string(net.host_nodes().size()),
                   Table::fmt(lm_thr, 3), Table::fmt(kod_thr, 3),
                   std::to_string(lm.num_flows()),
                   std::to_string(kod.num_flows()),
                   Table::fmt(lm_sec, 4), Table::fmt(kod_sec, 4),
                   Table::fmt(kod_sec / std::max(lm_sec, 1e-6), 1) + "x"});
  }
  bench::emit(table,
              "Kodialam TM vs longest matching: equal hardness, LM far cheaper");
  return 0;
}
