// Figure 6: relative throughput vs network size for the expander-family
// proposals — HyperX, Jellyfish, Long Hop, Slim Fly.
//
// Paper claims reproduced: Jellyfish sits at 1 by definition; Long Hop and
// Slim Fly track the random graph closely (within a few percent, Slim Fly
// degrading under LM at size); HyperX is irregular and markedly below 1.
//
// Runs on the experiment runner: TOPOBENCH_CSV=1 emits the uniform cell
// CSV, TOPOBENCH_MAX_SERVERS shrinks the ladder for smoke runs.
#include <iostream>

#include "exp/runner.h"

int main() {
  using namespace tb;
  const std::string caption = "Fig 6: relative throughput vs size (part 2)";
  const exp::Sweep sweep = exp::relative_scaling_sweep(
      {Family::HyperX, Family::Jellyfish, Family::LongHop, Family::SlimFly},
      /*max_servers=*/900);
  exp::Runner runner;
  const exp::ResultSet rs = runner.run(sweep, exp::RunOptions::from_env());
  // A sharded run (TOPOBENCH_SHARD=i/n) holds a partial grid: emit the
  // mergeable slice — the pivot needs every cell.
  if (exp::csv_mode() || rs.slice()) {
    rs.emit(std::cout, caption);
  } else {
    exp::relative_pivot(rs, sweep).print(std::cout, caption);
    std::cout << '\n';
  }
  return 0;
}
