// Figure 6: relative throughput vs network size for the expander-family
// proposals — HyperX, Jellyfish, Long Hop, Slim Fly.
//
// Paper claims reproduced: Jellyfish sits at 1 by definition; Long Hop and
// Slim Fly track the random graph closely (within a few percent, Slim Fly
// degrading under LM at size); HyperX is irregular and markedly below 1.
#include "scaling_common.h"

int main() {
  using namespace tb;
  bench::scaling_sweep(
      {Family::HyperX, Family::Jellyfish, Family::LongHop, Family::SlimFly},
      "Fig 6: relative throughput vs size (part 2)", /*max_servers=*/900);
  return 0;
}
