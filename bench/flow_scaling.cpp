// Flow-level parallel scaling, the cut-engine counterpart of
// parallel_scaling: runs the exact-cut workload — global_min_cut (the
// CutBattery fanning n-1 terminal pairs over a dedicated pool) plus
// sparsest_cut_st_mincut (sampled exact s-t cuts) — over the registry's
// family representatives three times in-process with
// flow::FlowOptions::threads = 1, 2 and 4. Every threaded result must be
// bitwise identical to the serial one — cut values, source sides, push/
// relabel counters — which is the battery's determinism contract
// (flow/cut_battery.h); the wall-clock ratio is then a pure flow-level
// speedup, recorded in a BENCH_flow_parallel.json record for CI perf-smoke.
//
// Exit status is non-zero when any threaded value deviates from serial, or
// when the machine has >= 4 hardware threads and the 4-thread speedup falls
// below TOPOBENCH_MIN_SPEEDUP (default 1.5; the gate is skipped — with a
// note in the JSON — on smaller hosts, where a wall-clock speedup is
// physically impossible).
//
// Knobs: TOPOBENCH_TARGET_SERVERS sizes the instances (default 96),
// TOPOBENCH_MIN_SPEEDUP the gate, argv[1] the JSON output path.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/registry.h"
#include "cuts/exact_cuts.h"
#include "exp/shard.h"
#include "exp/sweep.h"
#include "flow/min_cut.h"
#include "tm/synthetic.h"
#include "util/timer.h"

namespace {

/// One family's exact-cut answers under a thread configuration.
struct FamilyCuts {
  tb::flow::StCut global;
  tb::cuts::CutResult sparsest;
};

bool stats_eq(const tb::flow::MaxFlowStats& a, const tb::flow::MaxFlowStats& b) {
  return a.pushes == b.pushes && a.relabels == b.relabels &&
         a.global_relabels == b.global_relabels &&
         a.gap_jumps == b.gap_jumps &&
         a.augmenting_paths == b.augmenting_paths;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tb;
  // The serial-vs-threaded comparison needs every family in one process; a
  // sharded slice would break it, so fail loudly instead of mismeasuring.
  if (exp::env_shard()) {
    std::cerr << "flow_scaling: TOPOBENCH_SHARD is not supported (the "
                 "scaling comparison needs the whole workload)\n";
    return 1;
  }
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_flow_parallel.json";
  const int target = exp::env_int("TOPOBENCH_TARGET_SERVERS", 96, 4, 1'000'000);

  const std::vector<Family> families = all_families();
  std::vector<Network> nets;
  std::vector<TrafficMatrix> tms;
  for (const Family f : families) {
    nets.push_back(family_representative(f, target, /*seed=*/1));
    tms.push_back(all_to_all(nets.back()));
  }

  // One full pass per thread count. The workload is pure flow work — no
  // runner, no cache — so the timing ratio isolates the cut engine.
  const int thread_counts[] = {1, 2, 4};
  std::vector<std::vector<FamilyCuts>> results;
  std::vector<double> seconds;
  for (const int threads : thread_counts) {
    flow::FlowOptions fo;
    fo.threads = threads;
    std::vector<FamilyCuts> pass;
    Timer timer;
    for (std::size_t i = 0; i < nets.size(); ++i) {
      FamilyCuts fc;
      fc.global = flow::global_min_cut(nets[i].graph, fo);
      fc.sparsest = cuts::sparsest_cut_st_mincut(nets[i].graph, tms[i],
                                                 /*max_pairs=*/16,
                                                 /*seed=*/1, fo);
      pass.push_back(std::move(fc));
    }
    seconds.push_back(timer.seconds());
    results.push_back(std::move(pass));
  }

  bool identical = true;
  for (std::size_t mode = 1; mode < results.size(); ++mode) {
    for (std::size_t i = 0; i < results[0].size(); ++i) {
      const FamilyCuts& s = results[0][i];
      const FamilyCuts& t = results[mode][i];
      // == on the doubles is the point, not an oversight: the battery
      // promises bitwise identity, not closeness.
      if (t.global.value != s.global.value ||
          t.global.cut_capacity != s.global.cut_capacity ||
          t.global.source_side != s.global.source_side ||
          t.global.cut_edges != s.global.cut_edges ||
          !stats_eq(t.global.stats, s.global.stats) ||
          t.sparsest.sparsity != s.sparsest.sparsity ||
          t.sparsest.side != s.sparsest.side ||
          !stats_eq(t.sparsest.flow_stats, s.sparsest.flow_stats)) {
        identical = false;
        std::fprintf(stderr,
                     "FAIL %s at %d threads: global %.17g vs %.17g, "
                     "sparsest %.17g vs %.17g, pushes %ld vs %ld\n",
                     family_name(families[i]).c_str(), thread_counts[mode],
                     t.global.value, s.global.value, t.sparsest.sparsity,
                     s.sparsest.sparsity, t.sparsest.flow_stats.pushes,
                     s.sparsest.flow_stats.pushes);
      }
    }
  }

  const double speedup2 = seconds[1] > 0.0 ? seconds[0] / seconds[1] : 0.0;
  const double speedup4 = seconds[2] > 0.0 ? seconds[0] / seconds[2] : 0.0;
  double min_speedup = 1.5;
  if (const char* s = std::getenv("TOPOBENCH_MIN_SPEEDUP")) {
    const double v = std::strtod(s, nullptr);
    if (v > 0.0) min_speedup = v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  const bool gate_active = hw >= 4;

  std::ofstream json(json_path);
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"bench\": \"flow_scaling\", \"workload\": "
                "\"global_min_cut+st_mincut\", \"target_servers\": %d, "
                "\"families\": %zu, \"serial_seconds\": %.3f, "
                "\"two_seconds\": %.3f, \"four_seconds\": %.3f, "
                "\"speedup2\": %.3f, \"speedup4\": %.3f, "
                "\"bitwise_identical\": %s, \"hardware_threads\": %u, "
                "\"speedup_gate\": %.2f, \"gate_active\": %s}\n",
                target, results[0].size(), seconds[0], seconds[1], seconds[2],
                speedup2, speedup4, identical ? "true" : "false", hw,
                min_speedup, gate_active ? "true" : "false");
  json << buf;
  json.close();
  std::cout << buf;

  if (!identical) {
    std::cerr << "flow_scaling: threaded cut solves are not bitwise "
                 "identical to serial\n";
    return 1;
  }
  if (gate_active && speedup4 < min_speedup) {
    std::fprintf(stderr,
                 "flow_scaling: 4-thread speedup %.2fx below required "
                 "%.2fx\n",
                 speedup4, min_speedup);
    return 1;
  }
  if (!gate_active) {
    std::fprintf(stderr,
                 "flow_scaling: note — only %u hardware threads, speedup "
                 "gate skipped (bitwise check still enforced)\n",
                 hw);
  }
  return 0;
}
