// Ablation of the longest-matching TM's construction (paper §II-C): the
// exact Hungarian max-weight matching vs a greedy matching vs a random
// matching. Reported per network: the matching's total path length (the
// objective) and the resulting throughput (lower = harder = better as a
// worst-case proxy).
#include <iostream>
#include <string>

#include "bench_common.h"
#include "graph/algorithms.h"
#include "mcf/throughput.h"
#include "tm/synthetic.h"
#include "topo/hypercube.h"
#include "topo/jellyfish.h"
#include "topo/slimfly.h"

namespace {

using namespace tb;

double tm_path_length(const Network& net, const TrafficMatrix& tm) {
  const std::vector<int> all = all_pairs_distances(net.graph);
  double sum = 0.0;
  for (const Demand& d : tm.demands) {
    sum += d.amount * apd_at(all, net.graph.num_nodes(), d.src, d.dst);
  }
  return sum;
}

}  // namespace

int main() {
  const double eps = bench::env_eps(0.05);

  Table table({"network", "TM", "total_path_len", "throughput"});
  std::vector<Network> nets;
  nets.push_back(make_hypercube(6));
  nets.push_back(make_jellyfish(64, 6, 1, 3));
  nets.push_back(make_slim_fly(5, 1));
  for (const Network& net : nets) {
    mcf::SolveOptions opts;
    opts.epsilon = eps;
    for (const TrafficMatrix& tm :
         {longest_matching(net), longest_matching_greedy(net),
          random_matching(net, 1, 13)}) {
      const double thr = mcf::compute_throughput(net, tm, opts).throughput;
      table.add_row({net.name, tm.name, Table::fmt(tm_path_length(net, tm), 1),
                     Table::fmt(thr, 4)});
    }
  }
  bench::emit(table,
              "Ablation: Hungarian vs greedy vs random matching as the "
              "near-worst-case TM (lower throughput = harder TM)");
  return 0;
}
