// Service-tier throughput comparison: answers the same reference query set
// three ways — cold (every cell solved), warm (repeats answered from the
// in-process cache of the same Service), and store (fresh Services over the
// on-disk result store, so every answer is a disk hit with zero solver
// work) — and verifies the acceptance gate that store-hit qps clears
// 50x cold-solve qps (override with TOPOBENCH_MIN_STORE_SPEEDUP; the
// measured ratio on a quiet machine is orders of magnitude larger and is
// recorded in the JSON either way).
//
// Every store- and memory-answered record is checked byte-identical
// (exp::csv_row) to its cold counterpart — the replay contract of
// store/result_store.h — and each pass's tier accounting is asserted
// exactly (cold all solved, warm all memory, store all disk).
//
// Knobs: TOPOBENCH_EPS (default 0.1), argv[1] the JSON output path,
// argv[2] the scratch store path (default BENCH_server.store, removed at
// start and exit).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "api/topobench.h"
#include "exp/results.h"
#include "exp/shard.h"
#include "util/timer.h"

namespace {

/// The reference query set: 3 families x 2 sizes x 2 TMs = 12 cells,
/// small enough that the cold pass stays in seconds at eps 0.1.
std::vector<tb::api::Query> reference_queries(double eps) {
  std::vector<tb::api::Query> queries;
  for (const char* family : {"hypercube", "fattree", "jellyfish"}) {
    for (const int servers : {16, 32}) {
      for (const char* tm : {"a2a", "rm(4)"}) {
        tb::api::Query q;
        q.topology = tb::api::build_topology(family, servers, /*seed=*/1);
        q.tm = tb::api::build_tm(tm);
        q.epsilon = eps;
        q.seed = 7;
        queries.push_back(std::move(q));
      }
    }
  }
  return queries;
}

/// Run every query through `service` in order; returns per-query csv rows
/// and counts the answer tiers.
struct PassResult {
  std::vector<std::string> rows;
  std::size_t solved = 0;
  std::size_t memory = 0;
  std::size_t store = 0;
  double seconds = 0.0;
};

PassResult run_pass(tb::api::Service& service,
                    const std::vector<tb::api::Query>& queries) {
  PassResult out;
  tb::Timer timer;
  for (const tb::api::Query& q : queries) {
    const tb::api::QueryResult r = service.query(q);
    out.rows.push_back(tb::exp::csv_row(r.record));
    switch (r.source) {
      case tb::api::Source::Solved:
        ++out.solved;
        break;
      case tb::api::Source::Memory:
        ++out.memory;
        break;
      case tb::api::Source::Store:
        ++out.store;
        break;
    }
  }
  out.seconds = timer.seconds();
  return out;
}

bool rows_match(const char* pass, const std::vector<std::string>& got,
                const std::vector<std::string>& want) {
  bool ok = true;
  for (std::size_t i = 0; i < want.size(); ++i) {
    if (got[i] != want[i]) {
      ok = false;
      std::fprintf(stderr,
                   "FAIL %s query %zu: bytes differ from cold solve\n  cold: "
                   "%s\n  got:  %s\n",
                   pass, i, want[i].c_str(), got[i].c_str());
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tb;
  // Each pass answers the full query set in one process; a sharded slice
  // would break the tier accounting, so fail loudly instead of mismeasuring.
  if (exp::env_shard()) {
    std::cerr << "server_throughput: TOPOBENCH_SHARD is not supported (the "
                 "cold/warm/store comparison needs the whole query set)\n";
    return 1;
  }
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_server.json";
  const std::string store_path = argc > 2 ? argv[2] : "BENCH_server.store";
  const double eps = exp::env_eps(0.1);
  std::remove(store_path.c_str());

  const std::vector<api::Query> queries = reference_queries(eps);
  const std::size_t n = queries.size();

  // Cold: fresh Service, fresh store — every query solved and persisted.
  api::ServiceConfig cfg;
  cfg.store_path = store_path;
  PassResult cold;
  PassResult warm;
  {
    api::Service service(cfg);
    cold = run_pass(service, queries);
    // Warm: same Service — every repeat answered from the in-process cache.
    warm = run_pass(service, queries);
  }  // release the store's writer lock before the store pass

  // Store: fresh read-only Services over the persisted file — empty
  // in-process cache, so every answer is a disk hit. Several rounds so the
  // timed region amortizes Service construction (the store scan).
  constexpr int kStoreRounds = 3;
  api::ServiceConfig ro = cfg;
  ro.store_read_only = true;
  PassResult store;
  Timer store_timer;
  for (int round = 0; round < kStoreRounds; ++round) {
    api::Service service(ro);
    const PassResult pass = run_pass(service, queries);
    store.solved += pass.solved;
    store.memory += pass.memory;
    store.store += pass.store;
    store.rows = pass.rows;
  }
  store.seconds = store_timer.seconds();

  bool ok = true;
  if (cold.solved != n) {
    ok = false;
    std::fprintf(stderr, "FAIL cold pass: %zu/%zu queries solved\n",
                 cold.solved, n);
  }
  if (warm.memory != n) {
    ok = false;
    std::fprintf(stderr, "FAIL warm pass: %zu/%zu queries from memory\n",
                 warm.memory, n);
  }
  if (store.store != kStoreRounds * n) {
    ok = false;
    std::fprintf(stderr, "FAIL store pass: %zu/%zu queries from the store\n",
                 store.store, kStoreRounds * n);
  }
  ok = rows_match("warm", warm.rows, cold.rows) && ok;
  ok = rows_match("store", store.rows, cold.rows) && ok;

  const double cold_qps = cold.seconds > 0.0 ? n / cold.seconds : 0.0;
  const double warm_qps = warm.seconds > 0.0 ? n / warm.seconds : 0.0;
  const double store_qps =
      store.seconds > 0.0 ? kStoreRounds * n / store.seconds : 0.0;
  const double speedup = cold_qps > 0.0 ? store_qps / cold_qps : 0.0;
  double min_speedup = 50.0;
  if (const char* s = std::getenv("TOPOBENCH_MIN_STORE_SPEEDUP")) {
    const double v = std::strtod(s, nullptr);
    if (v > 0.0) min_speedup = v;
  }

  std::ofstream json(json_path);
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"bench\": \"server_throughput\", \"queries\": %zu, "
                "\"epsilon\": %g, \"cold_seconds\": %.4f, "
                "\"warm_seconds\": %.4f, \"store_seconds\": %.4f, "
                "\"cold_qps\": %.2f, \"warm_qps\": %.2f, "
                "\"store_qps\": %.2f, \"store_speedup\": %.1f, "
                "\"min_store_speedup\": %.1f}\n",
                n, eps, cold.seconds, warm.seconds, store.seconds, cold_qps,
                warm_qps, store_qps, speedup, min_speedup);
  json << buf;
  json.close();
  std::cout << buf;
  std::remove(store_path.c_str());

  if (!ok) {
    std::cerr << "server_throughput: tier accounting or replay bytes wrong\n";
    return 1;
  }
  if (speedup < min_speedup) {
    std::fprintf(stderr,
                 "server_throughput: store speedup %.1fx below required "
                 "%.1fx\n",
                 speedup, min_speedup);
    return 1;
  }
  return 0;
}
