// Figure 9: Slim Fly relative throughput under the longest-matching TM and
// relative average path length (Slim Fly / same-equipment random graph).
//
// Paper claims reproduced: Slim Fly's paths are ~10-15% shorter than the
// random graph's, yet its LM throughput is no better — short paths do not
// buy worst-case throughput, and relative LM throughput declines with size.
#include <iostream>
#include <string>

#include "bench_common.h"
#include "core/evaluator.h"
#include "graph/algorithms.h"
#include "tm/synthetic.h"
#include "topo/jellyfish.h"
#include "topo/slimfly.h"
#include "util/rng.h"

int main() {
  using namespace tb;
  const double eps = bench::env_eps(0.10);
  const int trials = bench::env_trials(2);

  Table table({"q", "servers", "switches", "rel_LM", "rel_path_len",
               "rel_A2A"});
  for (const int q : {5, 13}) {
    const Network net = make_slim_fly(q, (3 * q - 1) / 4);
    RelativeOptions opts;
    opts.random_trials = trials;
    opts.solve.epsilon = eps;
    opts.seed = mix_seed(6000, static_cast<std::uint64_t>(q));
    const RelativeResult lm =
        relative_throughput(net, longest_matching(net), opts);
    const RelativeResult a2a = relative_throughput(net, all_to_all(net), opts);

    const double own_len = average_shortest_path_length(net.graph);
    const Network rnd = make_same_equipment_random(net, mix_seed(opts.seed, 99));
    const double rnd_len = average_shortest_path_length(rnd.graph);

    table.add_row({std::to_string(q), std::to_string(net.total_servers()),
                   std::to_string(net.graph.num_nodes()),
                   Table::fmt(lm.relative, 3), Table::fmt(own_len / rnd_len, 3),
                   Table::fmt(a2a.relative, 3)});
  }
  bench::emit(table,
              "Fig 9: Slim Fly relative throughput (LM) and relative path length");
  return 0;
}
