// Extension: the expander zoo. The paper's headline finding — expanders
// win at scale — was confirmed by Xpander (HotNets'15, cited as [44]).
// This bench lines up the expander-family designs (Jellyfish, Xpander,
// Long Hop, Slim Fly) against classic HPC baselines (hypercube, 2-D torus)
// at comparable gear, under A2A and LM, normalized by same-equipment
// random graphs.
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/evaluator.h"
#include "graph/algorithms.h"
#include "tm/synthetic.h"
#include "topo/hypercube.h"
#include "topo/jellyfish.h"
#include "topo/longhop.h"
#include "topo/slimfly.h"
#include "topo/torus.h"
#include "topo/xpander.h"

int main() {
  using namespace tb;
  const double eps = bench::env_eps(0.06);
  const int trials = bench::env_trials(2);

  std::vector<Network> nets;
  nets.push_back(make_jellyfish(64, 6, 1, 5));
  nets.push_back(make_xpander(6, 9, 1, 5));           // 63 switches, d=6
  nets.push_back(make_long_hop(6, 2, 1, 5));          // 64 switches, d=8
  nets.push_back(make_slim_fly(5, 1));                // 50 switches, d=7
  nets.push_back(make_hypercube(6));                  // 64 switches, d=6
  nets.push_back(make_torus({8, 8}, 1));              // 64 switches, d=4

  Table table({"network", "switches", "degree", "diameter", "rel_A2A",
               "rel_LM"});
  for (const Network& net : nets) {
    RelativeOptions opts;
    opts.random_trials = trials;
    opts.solve.epsilon = eps;
    opts.seed = 11;
    const double a2a = relative_throughput(net, all_to_all(net), opts).relative;
    const double lm =
        relative_throughput(net, longest_matching(net), opts).relative;
    table.add_row({net.name, std::to_string(net.graph.num_nodes()),
                   std::to_string(net.graph.degree(0)),
                   std::to_string(diameter(net.graph)), Table::fmt(a2a, 3),
                   Table::fmt(lm, 3)});
  }
  bench::emit(table,
              "Extension: expander designs vs classic HPC baselines "
              "(relative throughput, same-equipment normalization)");
  return 0;
}
