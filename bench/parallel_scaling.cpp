// Intra-solve parallel scaling, the threaded-determinism proof for the
// bench trajectory: runs the fig04 TM-ladder grid three times in-process
// with SolveOptions::solver_threads = 1 (fully serial solver paths), 2,
// and 4 (dedicated worker pools), on a serial runner so the solver-level
// parallelism is the only concurrency. Every threaded row must be
// field-for-field bitwise identical to the serial one — throughput values,
// GK phase/Dijkstra counters, simplex pivots — which is the engine's
// determinism contract (see garg_konemann.h); the wall-clock ratio is then
// a pure intra-solve speedup, recorded in a BENCH_parallel.json record for
// the CI perf-smoke job.
//
// Exit status is non-zero when any threaded value deviates from serial, or
// when the machine has >= 4 hardware threads and the 4-thread speedup falls
// below TOPOBENCH_MIN_SPEEDUP (default 1.5; the gate is skipped — with a
// note in the JSON — on smaller hosts, where a wall-clock speedup is
// physically impossible).
//
// Knobs: TOPOBENCH_TARGET_SERVERS sizes the grid (fig04's default 128),
// TOPOBENCH_EPS the certified gap, argv[1] the JSON output path.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "exp/runner.h"
#include "exp/shard.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace tb;
  // The serial-vs-threaded comparison needs the whole grid in one process;
  // a sharded slice would break it, so fail loudly instead of mismeasuring.
  if (exp::env_shard()) {
    std::cerr << "parallel_scaling: TOPOBENCH_SHARD is not supported (the "
                 "scaling comparison needs the whole grid)\n";
    return 1;
  }
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_parallel.json";
  const double eps = exp::env_eps(0.05);
  const int target =
      exp::env_int("TOPOBENCH_TARGET_SERVERS", 128, 4, 1'000'000);

  exp::Sweep sweep;  // fig04's grid
  sweep.solve.epsilon = eps;
  sweep.base_seed = 11;
  for (const Family f : all_families()) {
    sweep.topologies.push_back(exp::representative_spec(f, target, /*seed=*/1));
  }
  sweep.tms = {exp::a2a_tm(), exp::random_matching_tm(5),
               exp::random_matching_tm(1), exp::longest_matching_tm()};

  // One run per thread count on a cell-serial runner (fresh per run: the
  // in-process cache ignores solver_threads by design, so a shared runner
  // would answer the later runs from the first). The solver pool is the
  // only concurrency, so the timing ratio isolates intra-solve scaling.
  const int thread_counts[] = {1, 2, 4};
  std::vector<exp::ResultSet> results;
  std::vector<double> seconds;
  for (const int threads : thread_counts) {
    sweep.solve.solver_threads = threads;
    exp::Runner runner(/*parallel=*/false);
    Timer timer;
    results.push_back(runner.run(sweep, exp::RunOptions::from_env()));
    seconds.push_back(timer.seconds());
  }

  bool identical = true;
  for (std::size_t mode = 1; mode < results.size(); ++mode) {
    for (std::size_t i = 0; i < results[0].size(); ++i) {
      const exp::CellResult& s = results[0].rows()[i];
      const exp::CellResult& t = results[mode].rows()[i];
      // Everything except the configuration echo column must match
      // bitwise; == on the doubles is the point, not an oversight.
      if (t.throughput != s.throughput || t.phases != s.phases ||
          t.dijkstras != s.dijkstras || t.pivots != s.pivots ||
          t.warm != s.warm) {
        identical = false;
        std::fprintf(stderr,
                     "FAIL %s/%s at %d threads: throughput %.17g vs %.17g, "
                     "phases %ld vs %ld, dijkstras %ld vs %ld\n",
                     s.topology.c_str(), s.tm.c_str(), thread_counts[mode],
                     t.throughput, s.throughput, t.phases, s.phases,
                     t.dijkstras, s.dijkstras);
      }
    }
  }

  const double speedup2 = seconds[1] > 0.0 ? seconds[0] / seconds[1] : 0.0;
  const double speedup4 = seconds[2] > 0.0 ? seconds[0] / seconds[2] : 0.0;
  double min_speedup = 1.5;
  if (const char* s = std::getenv("TOPOBENCH_MIN_SPEEDUP")) {
    const double v = std::strtod(s, nullptr);
    if (v > 0.0) min_speedup = v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  const bool gate_active = hw >= 4;

  std::ofstream json(json_path);
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"bench\": \"parallel_scaling\", \"grid\": \"fig04\", "
                "\"target_servers\": %d, \"epsilon\": %g, \"cells\": %zu, "
                "\"serial_seconds\": %.3f, \"two_seconds\": %.3f, "
                "\"four_seconds\": %.3f, \"speedup2\": %.3f, "
                "\"speedup4\": %.3f, \"bitwise_identical\": %s, "
                "\"hardware_threads\": %u, \"speedup_gate\": %.2f, "
                "\"gate_active\": %s}\n",
                target, eps, results[0].size(), seconds[0], seconds[1],
                seconds[2], speedup2, speedup4,
                identical ? "true" : "false", hw, min_speedup,
                gate_active ? "true" : "false");
  json << buf;
  json.close();
  std::cout << buf;

  if (!identical) {
    std::cerr << "parallel_scaling: threaded solves are not bitwise "
                 "identical to serial\n";
    return 1;
  }
  if (gate_active && speedup4 < min_speedup) {
    std::fprintf(stderr,
                 "parallel_scaling: 4-thread speedup %.2fx below required "
                 "%.2fx\n",
                 speedup4, min_speedup);
    return 1;
  }
  if (!gate_active) {
    std::fprintf(stderr,
                 "parallel_scaling: note — only %u hardware threads, "
                 "speedup gate skipped (bitwise check still enforced)\n",
                 hw);
  }
  return 0;
}
