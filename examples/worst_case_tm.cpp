// Near-worst-case traffic analysis for a topology you choose — the paper's
// §II-C workflow as a tool:
//
//   $ ./examples/worst_case_tm <family> [target_servers]
//     family in: bcube dcell dragonfly fattree fbf hypercube hyperx
//                jellyfish longhop slimfly
//
// Generates the TM hardness ladder (A2A, RM(5), RM(1), longest matching),
// reports each TM's throughput, the Theorem 2 lower bound, how close LM
// gets to it, and the sparse-cut upper bound for context.
#include <iostream>
#include <map>
#include <string>

#include "core/registry.h"
#include "cuts/sparsest_cut.h"
#include "mcf/throughput.h"
#include "tm/synthetic.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace tb;
  const std::map<std::string, Family> by_name{
      {"bcube", Family::BCube},         {"dcell", Family::DCell},
      {"dragonfly", Family::Dragonfly}, {"fattree", Family::FatTree},
      {"fbf", Family::FlattenedBF},     {"hypercube", Family::Hypercube},
      {"hyperx", Family::HyperX},       {"jellyfish", Family::Jellyfish},
      {"longhop", Family::LongHop},     {"slimfly", Family::SlimFly}};
  const std::string name = argc > 1 ? argv[1] : "hypercube";
  const int target = argc > 2 ? std::atoi(argv[2]) : 64;
  const auto it = by_name.find(name);
  if (it == by_name.end()) {
    std::cerr << "unknown family '" << name << "'\n";
    return 1;
  }

  const Network net = family_representative(it->second, target, /*seed=*/1);
  std::cout << "Network: " << net.name << " — " << net.graph.num_nodes()
            << " switches, " << net.graph.num_edges() << " links, "
            << net.total_servers() << " servers\n\n";

  mcf::SolveOptions opts;
  opts.epsilon = 0.04;
  const double a2a =
      mcf::compute_throughput(net, all_to_all(net), opts).throughput;
  const double bound = mcf::theorem2_lower_bound(a2a);

  Table table({"traffic matrix", "throughput", "vs lower bound"});
  const auto add = [&](const TrafficMatrix& tm) {
    const double thr = mcf::compute_throughput(net, tm, opts).throughput;
    table.add_row({tm.name, Table::fmt(thr), Table::fmt(thr / bound, 2) + "x"});
    return thr;
  };
  add(all_to_all(net));
  add(random_matching(net, 5, 7));
  add(random_matching(net, 1, 7));
  const TrafficMatrix lm = longest_matching(net);
  const double lm_thr = add(lm);
  table.print(std::cout);

  const cuts::SparseCutSurvey cut = cuts::best_sparse_cut(net.graph, lm);
  std::cout << "\nTheorem 2 lower bound:        " << Table::fmt(bound)
            << "\nLM distance to lower bound:   "
            << Table::fmt(100.0 * (lm_thr - bound) / bound, 1) << "%"
            << "\nBest sparse cut (upper bnd):  "
            << Table::fmt(cut.best.sparsity) << "  [found by "
            << cut.best.method << "]\n";
  return 0;
}
