// Adversarial worst-case traffic analysis for a topology you choose — the
// paper's §II-C workflow as a tool, backed by the engine-level search
// (mcf::worst_case_matching):
//
//   $ ./examples/worst_case_tm [options] [family] [target_servers]
//     family in: bcube dcell dragonfly fattree fbf hypercube hyperx
//                jellyfish longhop slimfly          (default: hypercube)
//
// Reports the TM hardness ladder (A2A, RM(1), longest matching), then runs
// the deterministic seeded local search over host matchings and reports
// the worst matching found, its throughput, and the Theorem 2 lower bound
// for context.
//
// exit status: 0 ok, 2 usage error (unknown option/family, malformed or
// out-of-range target).
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/registry.h"
#include "mcf/adversary.h"
#include "mcf/throughput.h"
#include "tm/synthetic.h"
#include "util/table.h"

namespace {

constexpr int kExitOk = 0;
constexpr int kExitUsage = 2;

constexpr const char* kVersion = "1.0.0";

void print_usage(std::ostream& os) {
  os << "usage: worst_case_tm [options] [family] [target_servers]\n"
        "\n"
        "Near-worst-case traffic analysis: the TM hardness ladder plus a\n"
        "deterministic adversarial search over host matchings.\n"
        "\n"
        "  family          bcube dcell dragonfly fattree fbf hypercube\n"
        "                  hyperx jellyfish longhop slimfly (default:\n"
        "                  hypercube)\n"
        "  target_servers  representative instance size, integer in\n"
        "                  [4, 100000] (default: 64)\n"
        "\n"
        "options:\n"
        "  -h, --help      print this help and exit\n"
        "  --version       print the version and exit\n"
        "  --iterations N  swap proposals per restart (default 64)\n"
        "  --restarts N    seeded random restarts (default 2)\n"
        "\n"
        "exit status: 0 ok, 2 usage error\n";
}

/// Strict integer parse: the whole string must be a decimal integer in
/// [lo, hi]. Returns false on garbage (the old std::atoi silently read
/// "64abc" as 64 and "abc" as 0).
bool parse_int(const std::string& s, long lo, long hi, long* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) return false;
  if (v < lo || v > hi) return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tb;
  const std::map<std::string, Family> by_name{
      {"bcube", Family::BCube},         {"dcell", Family::DCell},
      {"dragonfly", Family::Dragonfly}, {"fattree", Family::FatTree},
      {"fbf", Family::FlattenedBF},     {"hypercube", Family::Hypercube},
      {"hyperx", Family::HyperX},       {"jellyfish", Family::Jellyfish},
      {"longhop", Family::LongHop},     {"slimfly", Family::SlimFly}};

  std::string family = "hypercube";
  long target = 64;
  mcf::WorstCaseOptions wc;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      print_usage(std::cout);
      return kExitOk;
    }
    if (arg == "--version") {
      std::cout << "worst_case_tm " << kVersion << '\n';
      return kExitOk;
    }
    if (arg == "--iterations" || arg == "--restarts") {
      if (i + 1 >= argc) {
        std::cerr << "worst_case_tm: " << arg << " needs a value\n";
        return kExitUsage;
      }
      long v = 0;
      if (!parse_int(argv[++i], 0, 1'000'000, &v)) {
        std::cerr << "worst_case_tm: bad value '" << argv[i] << "' for "
                  << arg << "\n";
        return kExitUsage;
      }
      (arg == "--iterations" ? wc.iterations : wc.restarts) =
          static_cast<int>(v);
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "worst_case_tm: unknown option '" << arg << "'\n";
      print_usage(std::cerr);
      return kExitUsage;
    }
    positional.push_back(arg);
  }
  if (positional.size() > 2) {
    std::cerr << "worst_case_tm: too many arguments\n";
    print_usage(std::cerr);
    return kExitUsage;
  }
  if (!positional.empty()) family = positional[0];
  const auto it = by_name.find(family);
  if (it == by_name.end()) {
    std::cerr << "worst_case_tm: unknown family '" << family << "'\n";
    print_usage(std::cerr);
    return kExitUsage;
  }
  if (positional.size() > 1 &&
      !parse_int(positional[1], 4, 100'000, &target)) {
    std::cerr << "worst_case_tm: target_servers must be an integer in "
                 "[4, 100000], got '"
              << positional[1] << "'\n";
    return kExitUsage;
  }

  const Network net =
      family_representative(it->second, static_cast<int>(target), /*seed=*/1);
  std::cout << "Network: " << net.name << " — " << net.graph.num_nodes()
            << " switches, " << net.graph.num_edges() << " links, "
            << net.total_servers() << " servers\n\n";

  wc.solve.epsilon = 0.04;
  const double a2a =
      mcf::compute_throughput(net, all_to_all(net), wc.solve).throughput;
  const double bound = mcf::theorem2_lower_bound(a2a);

  Table table({"traffic matrix", "throughput", "vs lower bound"});
  const auto add = [&](const TrafficMatrix& tm, double thr) {
    table.add_row({tm.name, Table::fmt(thr), Table::fmt(thr / bound, 2) + "x"});
  };
  add(all_to_all(net), a2a);
  {
    const TrafficMatrix rm = random_matching(net, 1, 7);
    add(rm, mcf::compute_throughput(net, rm, wc.solve).throughput);
  }
  const mcf::WorstCaseResult worst = mcf::worst_case_matching(net, wc);
  {
    TrafficMatrix lm = longest_matching(net);
    add(lm, worst.initial);
  }
  add(worst.tm, worst.throughput);
  table.print(std::cout);

  std::cout << "\nTheorem 2 lower bound:          " << Table::fmt(bound)
            << "\nAdversary vs LM heuristic:      "
            << Table::fmt(worst.initial > 0.0
                              ? 100.0 * (worst.initial - worst.throughput) /
                                    worst.initial
                              : 0.0,
                          1)
            << "% lower"
            << "\nSearch: " << worst.solves << " solves, "
            << worst.improvements << " accepted moves\n";
  return kExitOk;
}
