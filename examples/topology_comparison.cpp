// Head-to-head topology comparison at matched scale — a miniature of the
// paper's §IV evaluation:
//
//   $ ./examples/topology_comparison [target_servers]
//
// For every family's instance nearest the target size, prints throughput
// under A2A and longest matching, normalized by same-equipment random
// graphs (relative throughput), plus raw gear counts so the normalization
// is visible.
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/evaluator.h"
#include "core/registry.h"
#include "tm/synthetic.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace tb;
  const int target = argc > 1 ? std::atoi(argv[1]) : 64;

  RelativeOptions opts;
  opts.random_trials = 2;
  opts.solve.epsilon = 0.06;

  Table table({"topology", "switches", "links", "servers", "rel_A2A",
               "rel_LM"});
  for (const Family f : all_families()) {
    const Network net = family_representative(f, target, /*seed=*/1);
    opts.seed = mix_seed(100, static_cast<std::uint64_t>(f));
    const double a2a = relative_throughput(net, all_to_all(net), opts).relative;
    const double lm =
        relative_throughput(net, longest_matching(net), opts).relative;
    table.add_row({family_name(f), std::to_string(net.graph.num_nodes()),
                   std::to_string(net.graph.num_edges()),
                   std::to_string(net.total_servers()), Table::fmt(a2a, 3),
                   Table::fmt(lm, 3)});
  }
  table.print(std::cout, "Relative throughput vs same-equipment random graph "
                         "(target ~" + std::to_string(target) + " servers)");
  std::cout << "\nrel = 1.0 means 'as good as a random graph built from the "
               "same gear' (the Jellyfish baseline).\n";
  return 0;
}
