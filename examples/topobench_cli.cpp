// topobench_cli — a small command-line front end over the library, for
// scripted use (emits edge lists and plain tables).
//
//   topobench_cli gen  <family> <target_servers> [seed]
//       Generate a topology and print it in edge-list format.
//   topobench_cli eval <edge-list-file> <a2a|rm|lm> [epsilon]
//       Throughput of the given TM on a topology file.
//   topobench_cli cuts <edge-list-file>
//       Sparse-cut survey (longest-matching TM).
//   topobench_cli rel  <family> <target_servers> [trials]
//       Relative throughput vs same-equipment random graphs.
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "core/evaluator.h"
#include "core/registry.h"
#include "cuts/sparsest_cut.h"
#include "mcf/throughput.h"
#include "tm/synthetic.h"
#include "topo/io.h"
#include "util/table.h"

namespace {

using namespace tb;

const std::map<std::string, Family>& family_map() {
  static const std::map<std::string, Family> m{
      {"bcube", Family::BCube},         {"dcell", Family::DCell},
      {"dragonfly", Family::Dragonfly}, {"fattree", Family::FatTree},
      {"fbf", Family::FlattenedBF},     {"hypercube", Family::Hypercube},
      {"hyperx", Family::HyperX},       {"jellyfish", Family::Jellyfish},
      {"longhop", Family::LongHop},     {"slimfly", Family::SlimFly}};
  return m;
}

int usage() {
  std::cerr << "usage:\n"
            << "  topobench_cli gen  <family> <target_servers> [seed]\n"
            << "  topobench_cli eval <file> <a2a|rm|lm> [epsilon]\n"
            << "  topobench_cli cuts <file>\n"
            << "  topobench_cli rel  <family> <target_servers> [trials]\n"
            << "families:";
  for (const auto& [name, f] : family_map()) {
    (void)f;
    std::cerr << ' ' << name;
  }
  std::cerr << '\n';
  return 2;
}

Network load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_edge_list(in, path);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 3) return usage();
    const std::string cmd = argv[1];

    if (cmd == "gen") {
      if (argc < 4) return usage();
      const auto it = family_map().find(argv[2]);
      if (it == family_map().end()) return usage();
      const std::uint64_t seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1;
      const Network net =
          family_representative(it->second, std::atoi(argv[3]), seed);
      write_edge_list(std::cout, net);
      return 0;
    }

    if (cmd == "eval") {
      if (argc < 4) return usage();
      const Network net = load(argv[2]);
      net.validate();
      const std::string kind = argv[3];
      TrafficMatrix tm;
      if (kind == "a2a") {
        tm = all_to_all(net);
      } else if (kind == "rm") {
        tm = random_matching(net, 1, 7);
      } else if (kind == "lm") {
        tm = longest_matching(net);
      } else {
        return usage();
      }
      mcf::SolveOptions opts;
      if (argc > 4) opts.epsilon = std::strtod(argv[4], nullptr);
      const auto r = mcf::compute_throughput(net, tm, opts);
      std::cout << "network " << net.name << "\ntm " << tm.name << "\nflows "
                << tm.num_flows() << "\nthroughput " << r.throughput
                << "\nupper_bound " << r.upper_bound << "\nsolver " << r.solver
                << '\n';
      return 0;
    }

    if (cmd == "cuts") {
      const Network net = load(argv[2]);
      net.validate();
      const TrafficMatrix tm = longest_matching(net);
      const cuts::SparseCutSurvey survey = cuts::best_sparse_cut(net.graph, tm);
      Table table({"method", "sparsity"});
      for (const auto& [method, value] : survey.per_method) {
        table.add_row({method, Table::fmt(value)});
      }
      table.print(std::cout, "sparse-cut survey (LM TM) for " + net.name);
      std::cout << "best: " << Table::fmt(survey.best.sparsity) << " via "
                << survey.best.method << '\n';
      return 0;
    }

    if (cmd == "rel") {
      if (argc < 4) return usage();
      const auto it = family_map().find(argv[2]);
      if (it == family_map().end()) return usage();
      const Network net =
          family_representative(it->second, std::atoi(argv[3]), 1);
      RelativeOptions opts;
      opts.random_trials = argc > 4 ? std::atoi(argv[4]) : 2;
      opts.solve.epsilon = 0.06;
      const RelativeResult r =
          relative_throughput(net, longest_matching(net), opts);
      std::cout << "network " << net.name << "\nthroughput "
                << r.topo_throughput << "\nrandom_mean "
                << r.random_throughput.mean << "\nrelative " << r.relative
                << " +- " << r.relative_ci95 << '\n';
      return 0;
    }
    return usage();
  } catch (const std::exception& ex) {
    std::cerr << "error: " << ex.what() << '\n';
    return 1;
  }
}
