// topobench_cli — a small command-line front end for scripted use, built
// entirely on tb::api (include api/topobench.h and nothing else): emits
// edge lists and plain key-value reports.
//
//   topobench_cli gen  <family> <target_servers> [seed]
//       Generate a topology and print it in edge-list format.
//   topobench_cli eval <edge-list-file> <tm-spec> [epsilon]
//       Throughput of a TM ("a2a", "rm(<k>)", "lm", "kodialam") on a
//       topology file.
//   topobench_cli cuts <edge-list-file>
//       Certified cut upper bound for the longest-matching TM.
//   topobench_cli rel  <family> <target_servers> [trials]
//       Relative throughput vs same-equipment random graphs.
//
// Exit status: 0 ok, 1 data error (unreadable/invalid input), 2 usage.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "api/topobench.h"

namespace {

int usage() {
  std::cerr << "usage:\n"
            << "  topobench_cli gen  <family> <target_servers> [seed]\n"
            << "  topobench_cli eval <file> <tm-spec> [epsilon]\n"
            << "  topobench_cli cuts <file>\n"
            << "  topobench_cli rel  <family> <target_servers> [trials]\n"
            << "families:";
  for (const std::string& name : tb::api::family_names()) {
    std::cerr << ' ' << name;
  }
  std::cerr << "\ntm specs: a2a rm(<k>) lm kodialam\n";
  return 2;
}

tb::api::Topology load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return tb::api::load_topology(in, path);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 3) return usage();
    const std::string cmd = argv[1];

    if (cmd == "gen") {
      if (argc < 4) return usage();
      const std::uint64_t seed =
          argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1;
      tb::api::save_topology(
          std::cout, tb::api::build_topology(argv[2], std::atoi(argv[3]), seed));
      return 0;
    }

    if (cmd == "eval") {
      if (argc < 4) return usage();
      tb::api::Query q;
      q.topology = load(argv[2]);
      q.tm = tb::api::build_tm(argv[3]);
      if (argc > 4) q.epsilon = std::strtod(argv[4], nullptr);
      q.seed = 7;
      tb::api::Service service;
      const tb::api::Result r = service.query(q).record;
      std::cout << "network " << r.topology << "\ntm " << r.tm << "\nservers "
                << r.servers << "\nthroughput " << r.throughput << "\nsolver "
                << r.solver << '\n';
      return 0;
    }

    if (cmd == "cuts") {
      tb::api::Query q;
      q.topology = load(argv[2]);
      q.tm = tb::api::build_tm("lm");
      q.cut_bounds = true;
      q.seed = 7;
      tb::api::Service service;
      const tb::api::Result r = service.query(q).record;
      std::cout << "network " << r.topology << "\ntm " << r.tm
                << "\nthroughput " << r.throughput << "\ncut_bound "
                << r.cut_bound << "\ncut_gap " << r.cut_gap << "\ncut_method "
                << r.cut_method << '\n';
      return 0;
    }

    if (cmd == "rel") {
      if (argc < 4) return usage();
      tb::api::Query q;
      q.topology = tb::api::build_topology(argv[2], std::atoi(argv[3]));
      q.tm = tb::api::build_tm("lm");
      q.trials = argc > 4 ? std::atoi(argv[4]) : 2;
      q.epsilon = 0.06;
      q.seed = 7;
      tb::api::Service service;
      const tb::api::Result r = service.query(q).record;
      std::cout << "network " << r.topology << "\nthroughput " << r.throughput
                << "\nrandom_mean " << r.random_mean << "\nrelative "
                << r.relative << " +- " << r.relative_ci95 << '\n';
      return 0;
    }
    return usage();
  } catch (const std::exception& ex) {
    std::cerr << "error: " << ex.what() << '\n';
    return 1;
  }
}
