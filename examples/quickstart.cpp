// Quickstart: ask throughput questions through tb::api — the single stable
// public façade (include api/topobench.h and nothing else).
//
//   $ ./examples/quickstart [target_servers]
//
// Builds a Jellyfish (random regular) topology, evaluates the all-to-all,
// random-matching and longest-matching (near-worst-case) TMs through an
// api::Service, reports the Theorem 2 lower bound T_A2A / 2, and shows the
// cache tier answering each repeat query.
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "api/topobench.h"

int main(int argc, char** argv) {
  const int target = argc > 1 ? std::atoi(argv[1]) : 64;

  tb::api::Service service;  // no store attached: in-process cache only

  tb::api::Query q;
  q.topology = tb::api::build_topology("jellyfish", target, /*seed=*/1);
  q.epsilon = 0.03;
  q.seed = 7;

  std::cout << "Topology: " << q.topology.label << "\n\n"
            << std::left << std::setw(12) << "tm" << std::right
            << std::setw(12) << "throughput" << std::setw(10) << "source"
            << '\n';
  double a2a_throughput = 0.0;
  for (const char* tm : {"a2a", "rm(1)", "lm"}) {
    q.tm = tb::api::build_tm(tm);
    const tb::api::QueryResult r = service.query(q);
    if (std::string(tm) == "a2a") a2a_throughput = r.record.throughput;
    std::cout << std::left << std::setw(12) << r.record.tm << std::right
              << std::setw(12) << std::fixed << std::setprecision(4)
              << r.record.throughput << std::setw(10)
              << tb::api::to_string(r.source) << '\n';
  }

  // Theorem 2 (JyothiSGK16): any TM composed of per-server matchings has
  // throughput at least T_A2A / 2.
  std::cout << "\nTheorem 2 lower bound (T_A2A / 2): " << std::fixed
            << std::setprecision(4) << a2a_throughput / 2.0 << '\n';

  // A repeat of an identical query never solves again — it is answered
  // from the Service's cache with the original bytes.
  q.tm = tb::api::build_tm("a2a");
  const tb::api::QueryResult again = service.query(q);
  std::cout << "repeat a2a query answered from: "
            << tb::api::to_string(again.source) << '\n';

  const tb::api::ServiceStats stats = service.stats();
  std::cout << "service stats: " << stats.queries << " queries, "
            << stats.misses << " solved, " << stats.memory_hits
            << " memory hits\n";
  return 0;
}
