// Quickstart: build a topology, generate traffic matrices, and measure
// throughput — the minimal end-to-end use of the library.
//
//   $ ./examples/quickstart [num_switches] [degree]
//
// Builds a Jellyfish (random regular) network, evaluates the all-to-all,
// random-matching and longest-matching (near-worst-case) TMs, and reports
// the Theorem 2 lower bound T_A2A / 2.
#include <cstdlib>
#include <iostream>

#include "mcf/throughput.h"
#include "tm/synthetic.h"
#include "topo/jellyfish.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 64;
  const int degree = argc > 2 ? std::atoi(argv[2]) : 6;

  const tb::Network net = tb::make_jellyfish(n, degree, 1, /*seed=*/1);
  std::cout << "Network: " << net.name << " (" << net.graph.num_nodes()
            << " switches, " << net.graph.num_edges() << " links)\n\n";

  tb::mcf::SolveOptions opts;
  opts.epsilon = 0.03;

  tb::Table table({"traffic matrix", "flows", "throughput", "upper bound",
                   "solver", "seconds"});
  double a2a_throughput = 0.0;
  for (const tb::TrafficMatrix& tm :
       {tb::all_to_all(net), tb::random_matching(net, 1, /*seed=*/7),
        tb::longest_matching(net)}) {
    tb::Timer timer;
    const tb::mcf::ThroughputResult r = tb::mcf::compute_throughput(net, tm, opts);
    if (tm.name == "A2A") a2a_throughput = r.throughput;
    table.add_row({tm.name, std::to_string(tm.num_flows()),
                   tb::Table::fmt(r.throughput), tb::Table::fmt(r.upper_bound),
                   r.solver, tb::Table::fmt(timer.seconds(), 2)});
  }
  table.print(std::cout);
  std::cout << "\nTheorem 2 lower bound (T_A2A / 2): "
            << tb::Table::fmt(tb::mcf::theorem2_lower_bound(a2a_throughput))
            << "\n";
  return 0;
}
