// server_client — a minimal client for the topobench_server wire protocol
// (line-delimited JSON over stdin/stdout; see docs/ARCHITECTURE.md).
//
//   $ ./examples/server_client <path-to-topobench_server> [store-path]
//
// Spawns the daemon over a pair of pipes, performs the hello handshake
// (refusing a protocol-version mismatch the way any client should), asks
// the same throughput query twice to show the answer tier change, fetches
// the cumulative stats, and shuts the daemon down cleanly.
//
// The client side of the protocol is plain text — this program builds
// requests with string literals and checks responses with substring
// matches, to show the wire format requires no library at all.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "api/topobench.h"

namespace {

/// Write one request line and read one response line over the pipe pair.
std::string round_trip(FILE* to_server, FILE* from_server,
                       const std::string& request) {
  std::fprintf(to_server, "%s\n", request.c_str());
  std::fflush(to_server);
  std::string line;
  for (int c = std::fgetc(from_server); c != EOF && c != '\n';
       c = std::fgetc(from_server)) {
    line.push_back(static_cast<char>(c));
  }
  std::cout << ">> " << request << "\n<< " << line << "\n";
  return line;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: server_client <path-to-topobench_server> "
                 "[store-path]\n";
    return 2;
  }
  const char* server_bin = argv[1];

  int to_child[2];
  int from_child[2];
  if (pipe(to_child) != 0 || pipe(from_child) != 0) {
    std::perror("pipe");
    return 1;
  }
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    return 1;
  }
  if (pid == 0) {
    dup2(to_child[0], STDIN_FILENO);
    dup2(from_child[1], STDOUT_FILENO);
    close(to_child[0]);
    close(to_child[1]);
    close(from_child[0]);
    close(from_child[1]);
    if (argc > 2) {
      execl(server_bin, server_bin, "--store", argv[2],
            static_cast<char*>(nullptr));
    } else {
      execl(server_bin, server_bin, static_cast<char*>(nullptr));
    }
    std::perror("execl");
    _exit(127);
  }
  close(to_child[0]);
  close(from_child[1]);
  FILE* to_server = fdopen(to_child[1], "w");
  FILE* from_server = fdopen(from_child[0], "r");
  if (to_server == nullptr || from_server == nullptr) {
    std::perror("fdopen");
    return 1;
  }

  // Handshake: refuse to speak to a protocol we do not understand.
  const std::string hello =
      round_trip(to_server, from_server, R"({"op": "hello", "id": "hs"})");
  const std::string want_protocol =
      "\"protocol\": " + std::to_string(tb::api::kProtocolVersion);
  int rc = 0;
  if (hello.find(want_protocol) == std::string::npos) {
    std::cerr << "server_client: protocol mismatch (need " << want_protocol
              << ")\n";
    rc = 1;
  } else {
    const std::string query =
        R"({"op": "query", "topology": {"family": "hypercube", "servers": 16},)"
        R"( "tm": "a2a", "epsilon": 0.1})";
    const std::string first = round_trip(to_server, from_server, query);
    const std::string second = round_trip(to_server, from_server, query);
    round_trip(to_server, from_server, R"({"op": "stats"})");
    if (first.find("\"ok\": true") == std::string::npos ||
        second.find("\"ok\": true") == std::string::npos) {
      std::cerr << "server_client: query failed\n";
      rc = 1;
    } else if (second.find("\"source\": \"solved\"") != std::string::npos) {
      std::cerr << "server_client: repeat query was re-solved (expected a "
                   "memory or store hit)\n";
      rc = 1;
    }
  }
  round_trip(to_server, from_server, R"({"op": "shutdown"})");
  fclose(to_server);
  fclose(from_server);

  int status = 0;
  if (waitpid(pid, &status, 0) < 0) {
    std::perror("waitpid");
    return 1;
  }
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::cerr << "server_client: server exited with status " << status << '\n';
    return 1;
  }
  return rc;
}
