// Evaluate a custom topology from an edge-list file — the workflow for
// users who want to benchmark their OWN design with the paper's method:
//
//   $ ./examples/custom_topology [file]
//
// With no file, a built-in example (a 12-switch two-cluster network with a
// deliberate bottleneck) is used. Reports throughput under A2A / LM, the
// near-worst-case TM itself, the sparse-cut upper bound, relative
// throughput vs same-equipment random graphs, and a DOT rendering.
//
// File format (see topo/io.h):
//   nodes N
//   servers <node> <count>
//   edge <u> <v> <capacity>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/evaluator.h"
#include "cuts/sparsest_cut.h"
#include "mcf/throughput.h"
#include "tm/synthetic.h"
#include "topo/io.h"
#include "util/table.h"

namespace {

constexpr const char* kBuiltin = R"(# two 6-switch clusters, 2-link bridge
nodes 12
servers 0 1
servers 1 1
servers 2 1
servers 3 1
servers 4 1
servers 5 1
servers 6 1
servers 7 1
servers 8 1
servers 9 1
servers 10 1
servers 11 1
edge 0 1 1
edge 0 2 1
edge 1 2 1
edge 3 4 1
edge 3 5 1
edge 4 5 1
edge 0 3 1
edge 1 4 1
edge 2 5 1
edge 6 7 1
edge 6 8 1
edge 7 8 1
edge 9 10 1
edge 9 11 1
edge 10 11 1
edge 6 9 1
edge 7 10 1
edge 8 11 1
edge 2 6 1
edge 5 9 1
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace tb;
  Network net;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    net = read_edge_list(in, argv[1]);
  } else {
    net = parse_edge_list(kBuiltin, "builtin-two-cluster");
  }
  net.validate();
  std::cout << "Network: " << net.name << " (" << net.graph.num_nodes()
            << " switches, " << net.graph.num_edges() << " links, "
            << net.total_servers() << " servers)\n\n";

  mcf::SolveOptions opts;
  opts.epsilon = 0.03;
  const TrafficMatrix a2a = all_to_all(net);
  const TrafficMatrix lm = longest_matching(net);
  const double t_a2a = mcf::compute_throughput(net, a2a, opts).throughput;
  const double t_lm = mcf::compute_throughput(net, lm, opts).throughput;
  const cuts::SparseCutSurvey cut = cuts::best_sparse_cut(net.graph, lm);

  RelativeOptions ropts;
  ropts.random_trials = 3;
  ropts.solve.epsilon = 0.04;
  const RelativeResult rel = relative_throughput(net, lm, ropts);

  Table table({"metric", "value"});
  table.add_row({"throughput A2A", Table::fmt(t_a2a)});
  table.add_row({"throughput LM (near-worst-case)", Table::fmt(t_lm)});
  table.add_row({"Theorem 2 lower bound", Table::fmt(t_a2a / 2.0)});
  table.add_row({"sparse-cut upper bound (LM)", Table::fmt(cut.best.sparsity)});
  table.add_row({"relative throughput vs random (LM)",
                 Table::fmt(rel.relative, 3)});
  table.print(std::cout);

  std::cout << "\nNear-worst-case (longest matching) flows:\n";
  for (const Demand& d : lm.demands) {
    std::cout << "  " << d.src << " -> " << d.dst << "\n";
  }
  std::cout << "\nDOT:\n" << to_dot(net);
  return 0;
}
