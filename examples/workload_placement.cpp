// Workload-placement study — the paper's §IV-B insight as a tool: when a
// rack-level TM is skewed, does randomizing rack placement help on your
// topology?
//
//   $ ./examples/workload_placement [shuffles]
//
// Builds the skewed frontend-style TM (TM-F synthetic), maps it onto each
// family "as measured" and under `shuffles` random placements, and reports
// the expected gain from randomization. Expanders and fat trees should
// show ~none (already robust); the structured families should benefit.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/registry.h"
#include "mcf/throughput.h"
#include "tm/facebook.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace tb;
  const int shuffles = argc > 1 ? std::atoi(argv[1]) : 3;
  const int racks = 64;
  const std::vector<double> rack_tm = synth_tm_frontend(racks, /*seed=*/11);

  mcf::SolveOptions opts;
  opts.epsilon = 0.06;

  Table table({"topology", "as-placed", "shuffled(mean)", "gain"});
  for (const Family f : all_families()) {
    const Network net = family_representative(f, racks, /*seed=*/1);
    const double base =
        mcf::compute_throughput(net, map_rack_tm(net, rack_tm, racks, 0), opts)
            .throughput;
    std::vector<double> shuffled;
    for (int s = 1; s <= shuffles; ++s) {
      const TrafficMatrix tm =
          map_rack_tm(net, rack_tm, racks, 700 + static_cast<std::uint64_t>(s));
      shuffled.push_back(mcf::compute_throughput(net, tm, opts).throughput);
    }
    const double mean = mean_of(shuffled);
    table.add_row({family_name(f), Table::fmt(base, 3), Table::fmt(mean, 3),
                   Table::fmt(100.0 * (mean - base) / base, 1) + "%"});
  }
  table.print(std::cout,
              "Does randomizing rack placement help under a skewed TM?");
  return 0;
}
