// Level 1 of the parallel exact-cut engine: batches of s-t terminal pairs
// solved concurrently. Each task solves on its own FlowNetwork residual
// copy (reset between the pairs of its block, so repeated solves are
// O(arcs pushed)), and the reduction to the best cut is ordered and
// index-deterministic. The contract, relied on by global_min_cut and the
// cuts/ estimators ported onto the battery:
//
//   solve(pairs)[i] is bitwise identical to a serial st_min_cut loop over
//   `pairs` on one reused network, for ANY thread configuration — every
//   solve starts from an exact capacity reset, so neither the block shape
//   nor the worker schedule can reach a result.
//
// Intra-solve threading (FlowAlgo::Auto's parallel-discharge engine) rides
// the same FlowOptions: battery tasks running on pool workers inline their
// nested parallel_for, so the two levels compose without oversubscription
// or deadlock (the PR-5 nested-submit rule).
#pragma once

#include <utility>
#include <vector>

#include "flow/min_cut.h"
#include "graph/graph.h"

namespace tb::flow {

class CutBattery {
 public:
  /// Builds the prototype network once (FlowNetwork::from_graph).
  explicit CutBattery(const Graph& g, const FlowOptions& opts = {});

  /// Exact min cut for every terminal pair, in pair order.
  std::vector<StCut> solve(const std::vector<std::pair<int, int>>& pairs) const;

  /// Index of the best cut under the serial-loop selection rule: scan in
  /// order, a strictly smaller value wins, stop once the running best is
  /// at or below `tolerance` (a zero cut cannot be beaten). -1 when empty.
  static int best_index(const std::vector<StCut>& cuts, double tolerance);

  /// Saturation tolerance of the prototype network (for best_index).
  double tolerance() const noexcept { return proto_.tolerance(); }

 private:
  const Graph* g_;
  FlowOptions opts_;
  FlowNetwork proto_;
};

}  // namespace tb::flow
