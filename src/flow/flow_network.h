// Residual-graph representation for exact max-flow / min-cut. The paper's
// cut-based throughput upper bounds (§II-B) need an exact s-t cut
// primitive; FlowNetwork is the state the solvers in max_flow.h operate on.
//
// Arcs are created in reverse pairs — arc 2k and its reverse 2k+1 — so
// `arc ^ 1` is always the reverse arc, mirroring Graph's numbering. A
// network built with from_graph() therefore shares Graph's arc ids exactly
// (edge e -> arcs 2e and 2e+1, each with the edge's capacity, the paper's
// "uni-directional links" model). Pushing flow on an arc moves residual
// capacity onto its reverse; the net flow on arc a is max(0, cap(a) -
// res(a)), so opposite pushes cancel as they must on an undirected edge.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "topo/network.h"

namespace tb::flow {

class FlowNetwork {
 public:
  FlowNetwork() = default;
  /// Network with `n` nodes and no arcs.
  explicit FlowNetwork(int num_nodes) : num_nodes_(num_nodes) {}

  /// Mirror of `g`: same node ids, edge e's directed arcs as pair (2e,
  /// 2e+1), each with capacity edge_cap(e). Finalized and ready to solve.
  static FlowNetwork from_graph(const Graph& g);

  /// Switch-level residual network of `net`. Server-switch links have
  /// infinite capacity, so every finite s-t cut lives in the switch graph
  /// and the server attachment contributes nothing.
  static FlowNetwork from_network(const Network& net);

  /// Append a new node, returning its id.
  int add_node() { return num_nodes_++; }

  /// Add the arc pair u->v (capacity `cap_uv`) and v->u (`cap_vu`).
  /// Returns the forward arc id (always even); the reverse is `id ^ 1`.
  /// A purely directed arc is the pair (cap_uv, 0). Invalidates the CSR.
  int add_arc_pair(int u, int v, double cap_uv, double cap_vu = 0.0);

  /// Build the CSR adjacency. Must be called after the last mutation and
  /// before solving. Idempotent.
  void finalize();
  bool finalized() const noexcept { return finalized_; }

  int num_nodes() const noexcept { return num_nodes_; }
  int num_arcs() const noexcept { return static_cast<int>(head_.size()); }

  int arc_from(int a) const { return tail_[static_cast<std::size_t>(a)]; }
  int arc_to(int a) const { return head_[static_cast<std::size_t>(a)]; }
  static int reverse_arc(int a) noexcept { return a ^ 1; }

  double capacity(int a) const { return cap_[static_cast<std::size_t>(a)]; }
  double residual(int a) const { return res_[static_cast<std::size_t>(a)]; }

  /// Net flow on arc a (0 when the arc only absorbed reverse pushes).
  double flow(int a) const {
    const double f = cap_[static_cast<std::size_t>(a)] -
                     res_[static_cast<std::size_t>(a)];
    return f > 0.0 ? f : 0.0;
  }

  /// Move `delta` units of residual capacity from arc a to its reverse.
  /// Records both arcs as touched so reset() reverts only what a solve
  /// actually moved (repeated s-t solves on one network are O(arcs pushed),
  /// not O(arcs)).
  void push(int a, double delta) {
    touch(a);
    touch(a ^ 1);
    res_[static_cast<std::size_t>(a)] -= delta;
    res_[static_cast<std::size_t>(a ^ 1)] += delta;
  }

  /// Outgoing arc ids of node v (requires finalize()).
  std::span<const int> out_arcs(int v) const {
    const auto b = static_cast<std::size_t>(offset_[static_cast<std::size_t>(v)]);
    const auto e =
        static_cast<std::size_t>(offset_[static_cast<std::size_t>(v) + 1]);
    return {adj_.data() + b, e - b};
  }

  /// Largest arc capacity (0 on an arc-free network); tolerance scaling.
  double max_capacity() const noexcept { return max_cap_; }

  /// Absolute tolerance under which residual capacity counts as zero.
  /// Shared by every solver so flow values, cut extraction, and
  /// verification agree on what "saturated" means.
  double tolerance() const noexcept {
    return 1e-12 * (max_cap_ > 1.0 ? max_cap_ : 1.0);
  }

  /// Restore residual capacities to the original capacities (re-solve the
  /// same network for a different terminal pair without rebuilding).
  /// Reverts exactly the arcs touched since finalize()/the last reset —
  /// bitwise identical to the full `res_ = cap_` copy it replaces, since
  /// an untouched arc still holds its capacity.
  void reset() {
    if (!finalized_) {  // pre-CSR state: res_ is rebuilt by finalize()
      res_ = cap_;
      return;
    }
    for (const int a : touched_) {
      res_[static_cast<std::size_t>(a)] = cap_[static_cast<std::size_t>(a)];
      dirty_[static_cast<std::size_t>(a)] = 0;
    }
    touched_.clear();
  }

 private:
  void touch(int a) {
    if (!dirty_[static_cast<std::size_t>(a)]) {
      dirty_[static_cast<std::size_t>(a)] = 1;
      touched_.push_back(a);
    }
  }

  int num_nodes_ = 0;
  std::vector<int> tail_;
  std::vector<int> head_;
  std::vector<double> cap_;
  std::vector<double> res_;
  double max_cap_ = 0.0;
  // CSR: adj_ holds arc ids grouped by tail node.
  std::vector<int> offset_;
  std::vector<int> adj_;
  // Touched-arc tracking for reset(): dirty_ flags + insertion-ordered ids.
  std::vector<std::uint8_t> dirty_;
  std::vector<int> touched_;
  bool finalized_ = false;
};

}  // namespace tb::flow
