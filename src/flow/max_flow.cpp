#include "flow/max_flow.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.h"

namespace tb::flow {
namespace {

/// FlowAlgo::Auto switches to the parallel-discharge engine at this arc
/// count. Grounded by the BM_StMaxFlow* micro benches on the registry's
/// largest finalized topology: below this the round machinery's extra
/// full-graph passes dominate, and the serial highest-label fast path wins.
constexpr int kParallelDischargeMinArcs = 8192;

/// Highest-label push-relabel, run to completion: after the main loop every
/// node but s and t has zero excess, so the residual state is a valid
/// maximum flow (not just a maximum preflow) and min-cut extraction can
/// trust per-arc flows. Heights live in [0, 2n]; 2n marks nodes the global
/// relabel found unreachable from both terminals in the residual graph.
class HighestLabelSolver {
 public:
  HighestLabelSolver(FlowNetwork& net, int s, int t, MaxFlowStats& stats)
      : net_(net),
        s_(s),
        t_(t),
        stats_(stats),
        n_(net.num_nodes()),
        tol_(net.tolerance()),
        height_(static_cast<std::size_t>(n_), 0),
        excess_(static_cast<std::size_t>(n_), 0.0),
        current_(static_cast<std::size_t>(n_), 0),
        active_(static_cast<std::size_t>(n_), 0),
        count_(static_cast<std::size_t>(2 * n_) + 1, 0),
        buckets_(static_cast<std::size_t>(2 * n_) + 1) {
    // Global relabel when the accumulated relabel work passes this; the
    // usual linear-in-graph-size budget keeps rebuilds amortized O(1).
    work_limit_ = 12 * static_cast<long>(n_) + 2 * net_.num_arcs();
  }

  double run() {
    for (const int a : net_.out_arcs(s_)) {
      const double d = net_.residual(a);
      if (d > tol_) {
        net_.push(a, d);
        excess_[static_cast<std::size_t>(net_.arc_to(a))] += d;
        ++stats_.pushes;
      }
    }
    global_relabel();
    while (highest_ >= 0) {
      auto& bucket = buckets_[static_cast<std::size_t>(highest_)];
      if (bucket.empty()) {
        --highest_;
        continue;
      }
      const int u = bucket.back();
      bucket.pop_back();
      active_[static_cast<std::size_t>(u)] = 0;
      if (excess_[static_cast<std::size_t>(u)] <= tol_) continue;
      if (height_[static_cast<std::size_t>(u)] != highest_) {
        activate(u);  // moved by a gap jump; requeue at its real height
        continue;
      }
      discharge(u);
      if (work_ >= work_limit_) {
        work_ = 0;
        global_relabel();
      }
    }
    return excess_[static_cast<std::size_t>(t_)];
  }

 private:
  void activate(int v) {
    if (v == s_ || v == t_ || active_[static_cast<std::size_t>(v)]) return;
    const int h = height_[static_cast<std::size_t>(v)];
    if (h >= 2 * n_) return;  // parked: unreachable from both terminals
    active_[static_cast<std::size_t>(v)] = 1;
    buckets_[static_cast<std::size_t>(h)].push_back(v);
    if (h > highest_) highest_ = h;
  }

  void discharge(int u) {
    const std::span<const int> arcs = net_.out_arcs(u);
    while (excess_[static_cast<std::size_t>(u)] > tol_) {
      if (current_[static_cast<std::size_t>(u)] >=
          static_cast<int>(arcs.size())) {
        relabel(u);
        if (height_[static_cast<std::size_t>(u)] >= 2 * n_) return;
        current_[static_cast<std::size_t>(u)] = 0;
        continue;
      }
      const int a = arcs[static_cast<std::size_t>(
          current_[static_cast<std::size_t>(u)])];
      const int v = net_.arc_to(a);
      if (net_.residual(a) > tol_ &&
          height_[static_cast<std::size_t>(u)] ==
              height_[static_cast<std::size_t>(v)] + 1) {
        const double d =
            std::min(excess_[static_cast<std::size_t>(u)], net_.residual(a));
        net_.push(a, d);
        excess_[static_cast<std::size_t>(u)] -= d;
        excess_[static_cast<std::size_t>(v)] += d;
        ++stats_.pushes;
        if (excess_[static_cast<std::size_t>(v)] > tol_) activate(v);
      } else {
        ++current_[static_cast<std::size_t>(u)];
      }
    }
  }

  void relabel(int u) {
    ++stats_.relabels;
    work_ += static_cast<long>(net_.out_arcs(u).size()) + 12;
    const int old_h = height_[static_cast<std::size_t>(u)];
    int min_h = std::numeric_limits<int>::max();
    for (const int a : net_.out_arcs(u)) {
      if (net_.residual(a) > tol_) {
        min_h = std::min(min_h, height_[static_cast<std::size_t>(net_.arc_to(a))]);
      }
    }
    const int new_h =
        min_h == std::numeric_limits<int>::max() ? 2 * n_
                                                 : std::min(min_h + 1, 2 * n_);
    --count_[static_cast<std::size_t>(old_h)];
    height_[static_cast<std::size_t>(u)] = new_h;
    ++count_[static_cast<std::size_t>(new_h)];
    if (count_[static_cast<std::size_t>(old_h)] == 0 && old_h < n_) {
      lift_above_gap(old_h);
    }
  }

  /// Gap heuristic: no node left at height h < n means no residual path
  /// from any node above h to the sink; lift them past n in one sweep.
  /// Nodes sitting in active buckets go stale and are requeued on pop.
  void lift_above_gap(int h) {
    ++stats_.gap_jumps;
    for (int v = 0; v < n_; ++v) {
      const int hv = height_[static_cast<std::size_t>(v)];
      if (hv > h && hv < n_) {
        --count_[static_cast<std::size_t>(hv)];
        height_[static_cast<std::size_t>(v)] = n_ + 1;
        ++count_[static_cast<std::size_t>(n_) + 1];
        current_[static_cast<std::size_t>(v)] = 0;
      }
    }
  }

  /// Exact heights from residual BFS: distance to t below n, n + distance
  /// to s for nodes cut off from t, 2n for nodes cut off from both.
  /// Rebuilds the height counts and the active buckets from scratch.
  void global_relabel() {
    ++stats_.global_relabels;
    const int unreached = 2 * n_;
    std::fill(height_.begin(), height_.end(), unreached);
    std::vector<int> queue;
    queue.reserve(static_cast<std::size_t>(n_));

    // An arc a = (u -> v) admits backward traversal v -> u in the residual
    // graph iff its reverse a^1 = (v -> u) has residual capacity, so both
    // terminal BFS passes expand over out_arcs checking the paired arc.
    const auto backward_bfs = [&](int root, int base) {
      height_[static_cast<std::size_t>(root)] = base;
      queue.clear();
      queue.push_back(root);
      for (std::size_t i = 0; i < queue.size(); ++i) {
        const int u = queue[i];
        for (const int a : net_.out_arcs(u)) {
          const int v = net_.arc_to(a);
          if (height_[static_cast<std::size_t>(v)] == unreached &&
              net_.residual(FlowNetwork::reverse_arc(a)) > tol_ && v != s_) {
            height_[static_cast<std::size_t>(v)] =
                height_[static_cast<std::size_t>(u)] + 1;
            queue.push_back(v);
          }
        }
      }
    };
    backward_bfs(t_, 0);  // the v != s_ guard pins the source height to n
    backward_bfs(s_, n_);

    std::fill(count_.begin(), count_.end(), 0);
    for (int v = 0; v < n_; ++v) {
      ++count_[static_cast<std::size_t>(height_[static_cast<std::size_t>(v)])];
    }
    std::fill(current_.begin(), current_.end(), 0);
    std::fill(active_.begin(), active_.end(), 0);
    for (auto& bucket : buckets_) bucket.clear();
    highest_ = -1;
    for (int v = 0; v < n_; ++v) {
      if (excess_[static_cast<std::size_t>(v)] > tol_) activate(v);
    }
  }

  FlowNetwork& net_;
  const int s_;
  const int t_;
  MaxFlowStats& stats_;
  const int n_;
  const double tol_;
  std::vector<int> height_;
  std::vector<double> excess_;
  std::vector<int> current_;
  std::vector<std::uint8_t> active_;
  std::vector<int> count_;
  std::vector<std::vector<int>> buckets_;
  int highest_ = -1;
  long work_ = 0;
  long work_limit_ = 0;
};

/// Round-synchronous parallel-discharge push-relabel (Snippet 2's
/// lock-light pattern rebuilt under the PR-5 determinism rules). Each
/// round freezes heights and excesses, then runs two phases:
///
///  * push phase — the active nodes, ascending, are split into fixed
///    blocks of kDischargeBlock (a partition that depends only on the
///    instance state, never on the thread count). Each block discharges
///    its nodes in order, recording pushes as per-arc deltas instead of
///    mutating the network: arc tails are unique, so a node owns every
///    delta slot it writes and blocks never conflict. A node that runs
///    out of admissible arcs becomes a relabel requester.
///  * serial push merge — blocks in block order, touched arcs in
///    discharge order: apply each delta to the network and the excesses.
///    Every cross-block effect (excess sums, stats) happens here, on one
///    thread, in a fixed order — FP-deterministic by construction.
///  * relabel phase + serial merge — requesters re-check admissibility
///    against the merged residuals (a reverse push can re-open an arc;
///    relabeling past an admissible arc would break the height
///    invariant), then compute new heights from the frozen ones.
///    Concurrent relabels against frozen heights are safe: labels only
///    increase, so validity h(u) <= h(v)+1 is preserved arc by arc.
///
/// Pushes use frozen heights and no heights change within a push phase,
/// so every applied push is admissible at application time; the label
/// function stays a valid distance labeling and the run terminates with
/// a maximum flow exactly like the serial engine. The worker pool only
/// decides which thread runs a block — results are bitwise identical for
/// any thread count, including the inline (serial) execution.
class ParallelDischargeSolver {
 public:
  ParallelDischargeSolver(FlowNetwork& net, int s, int t, MaxFlowStats& stats,
                          ThreadPool* pool, bool parallel)
      : net_(net),
        s_(s),
        t_(t),
        stats_(stats),
        pool_(pool),
        parallel_(parallel),
        n_(net.num_nodes()),
        tol_(net.tolerance()),
        height_(static_cast<std::size_t>(n_), 0),
        excess_(static_cast<std::size_t>(n_), 0.0),
        current_(static_cast<std::size_t>(n_), 0),
        new_height_(static_cast<std::size_t>(n_), 0),
        delta_(static_cast<std::size_t>(net.num_arcs()), 0.0) {
    work_limit_ = 12 * static_cast<long>(n_) + 2 * net_.num_arcs();
  }

  double run() {
    for (const int a : net_.out_arcs(s_)) {
      const double d = net_.residual(a);
      if (d > tol_) {
        net_.push(a, d);
        excess_[static_cast<std::size_t>(net_.arc_to(a))] += d;
        ++stats_.pushes;
      }
    }
    global_relabel();
    std::vector<int> active;
    std::vector<int> requesters;
    for (;;) {
      if (work_ >= work_limit_) {
        work_ = 0;
        global_relabel();
      }
      active.clear();
      for (int v = 0; v < n_; ++v) {
        if (v == s_ || v == t_) continue;
        if (excess_[static_cast<std::size_t>(v)] > tol_ &&
            height_[static_cast<std::size_t>(v)] < 2 * n_) {
          active.push_back(v);
        }
      }
      if (active.empty()) break;
      push_round(active, requesters);
      relabel_round(requesters);
    }
    return excess_[static_cast<std::size_t>(t_)];
  }

 private:
  /// Nodes per block. Fixed: the block partition is part of the result
  /// contract (merge order follows it), so it must not track pool size.
  static constexpr std::size_t kDischargeBlock = 32;

  struct BlockScratch {
    std::vector<int> touched;     ///< arcs with a pending delta, push order
    std::vector<int> requesters;  ///< nodes that ran out of admissible arcs
    std::vector<int> relabeled;   ///< nodes with a pending height in new_height_
    long work = 0;                ///< relabel-phase scan work, merged in order
  };

  void for_blocks(std::size_t count) {
    if (parallel_ && count > 1) {
      ThreadPool& pool = pool_ != nullptr ? *pool_ : ThreadPool::shared();
      pool.parallel_for(0, count, [this](std::size_t b) { run_block(b); });
    } else {
      for (std::size_t b = 0; b < count; ++b) run_block(b);
    }
  }

  std::size_t prepare_blocks(std::size_t items) {
    const std::size_t count = (items + kDischargeBlock - 1) / kDischargeBlock;
    if (scratch_.size() < count) scratch_.resize(count);
    for (std::size_t b = 0; b < count; ++b) {
      scratch_[b].touched.clear();
      scratch_[b].requesters.clear();
      scratch_[b].relabeled.clear();
      scratch_[b].work = 0;
    }
    return count;
  }

  void run_block(std::size_t b) {
    const std::size_t lo = b * kDischargeBlock;
    const std::size_t hi = std::min(lo + kDischargeBlock, phase_items_->size());
    BlockScratch& blk = scratch_[b];
    for (std::size_t i = lo; i < hi; ++i) {
      const int u = (*phase_items_)[i];
      if (phase_ == Phase::Push) {
        discharge(u, blk);
      } else {
        consider_relabel(u, blk);
      }
    }
  }

  /// Push as much of u's frozen excess as its admissible arcs allow, into
  /// the delta buffer. Heights are frozen, so admissibility cannot change
  /// under us; residual headroom is residual minus our own pending delta
  /// (reverse-arc gains from other blocks are deliberately invisible until
  /// the merge — ignoring them is conservative, never wrong).
  void discharge(int u, BlockScratch& blk) {
    const std::span<const int> arcs = net_.out_arcs(u);
    double exc = excess_[static_cast<std::size_t>(u)];
    int cur = current_[static_cast<std::size_t>(u)];
    while (exc > tol_) {
      if (cur >= static_cast<int>(arcs.size())) {
        blk.requesters.push_back(u);
        break;
      }
      const int a = arcs[static_cast<std::size_t>(cur)];
      const int v = net_.arc_to(a);
      const double rc = net_.residual(a) - delta_[static_cast<std::size_t>(a)];
      if (rc > tol_ && height_[static_cast<std::size_t>(u)] ==
                           height_[static_cast<std::size_t>(v)] + 1) {
        const double d = std::min(exc, rc);
        if (delta_[static_cast<std::size_t>(a)] == 0.0) blk.touched.push_back(a);
        delta_[static_cast<std::size_t>(a)] += d;
        exc -= d;
        if (rc - d <= tol_) ++cur;  // saturated; a non-saturating push drains exc
      } else {
        ++cur;
      }
    }
    current_[static_cast<std::size_t>(u)] = cur;
  }

  /// Relabel decision for a requester, against the merged residuals and the
  /// frozen heights. The push merge can re-open an arc at or after the
  /// current pointer (arcs before it cannot be admissible while u's height
  /// is unchanged — the standard current-arc invariant); relabeling past it
  /// would violate label validity, so rewind to it instead.
  void consider_relabel(int u, BlockScratch& blk) {
    const std::span<const int> arcs = net_.out_arcs(u);
    blk.work += static_cast<long>(arcs.size()) + 12;
    for (int c = current_[static_cast<std::size_t>(u)];
         c < static_cast<int>(arcs.size()); ++c) {
      const int a = arcs[static_cast<std::size_t>(c)];
      if (net_.residual(a) > tol_ &&
          height_[static_cast<std::size_t>(u)] ==
              height_[static_cast<std::size_t>(net_.arc_to(a))] + 1) {
        current_[static_cast<std::size_t>(u)] = c;
        return;
      }
    }
    int min_h = std::numeric_limits<int>::max();
    for (const int a : arcs) {
      if (net_.residual(a) > tol_) {
        min_h =
            std::min(min_h, height_[static_cast<std::size_t>(net_.arc_to(a))]);
      }
    }
    new_height_[static_cast<std::size_t>(u)] =
        min_h == std::numeric_limits<int>::max() ? 2 * n_
                                                 : std::min(min_h + 1, 2 * n_);
    blk.relabeled.push_back(u);
  }

  void push_round(const std::vector<int>& active,
                  std::vector<int>& requesters) {
    phase_ = Phase::Push;
    phase_items_ = &active;
    const std::size_t blocks = prepare_blocks(active.size());
    for_blocks(blocks);
    // Serial ordered merge: the only writer of the network, the excesses
    // and the stats. Block order then push order fixes every FP sum.
    requesters.clear();
    for (std::size_t b = 0; b < blocks; ++b) {
      BlockScratch& blk = scratch_[b];
      for (const int a : blk.touched) {
        const double d = delta_[static_cast<std::size_t>(a)];
        net_.push(a, d);
        excess_[static_cast<std::size_t>(net_.arc_from(a))] -= d;
        excess_[static_cast<std::size_t>(net_.arc_to(a))] += d;
        delta_[static_cast<std::size_t>(a)] = 0.0;
        ++stats_.pushes;
      }
      requesters.insert(requesters.end(), blk.requesters.begin(),
                        blk.requesters.end());
    }
  }

  void relabel_round(const std::vector<int>& requesters) {
    if (requesters.empty()) return;
    phase_ = Phase::Relabel;
    phase_items_ = &requesters;
    const std::size_t blocks = prepare_blocks(requesters.size());
    for_blocks(blocks);
    for (std::size_t b = 0; b < blocks; ++b) {
      BlockScratch& blk = scratch_[b];
      for (const int u : blk.relabeled) {
        height_[static_cast<std::size_t>(u)] =
            new_height_[static_cast<std::size_t>(u)];
        current_[static_cast<std::size_t>(u)] = 0;
        ++stats_.relabels;
      }
      work_ += blk.work;
    }
  }

  /// Exact heights from residual BFS, identical to the serial engine's:
  /// distance to t below n, n + distance to s for nodes cut off from t,
  /// 2n for nodes cut off from both. Serial — it runs between rounds.
  void global_relabel() {
    ++stats_.global_relabels;
    const int unreached = 2 * n_;
    std::fill(height_.begin(), height_.end(), unreached);
    std::vector<int> queue;
    queue.reserve(static_cast<std::size_t>(n_));
    const auto backward_bfs = [&](int root, int base) {
      height_[static_cast<std::size_t>(root)] = base;
      queue.clear();
      queue.push_back(root);
      for (std::size_t i = 0; i < queue.size(); ++i) {
        const int u = queue[i];
        for (const int a : net_.out_arcs(u)) {
          const int v = net_.arc_to(a);
          if (height_[static_cast<std::size_t>(v)] == unreached &&
              net_.residual(FlowNetwork::reverse_arc(a)) > tol_ && v != s_) {
            height_[static_cast<std::size_t>(v)] =
                height_[static_cast<std::size_t>(u)] + 1;
            queue.push_back(v);
          }
        }
      }
    };
    backward_bfs(t_, 0);
    backward_bfs(s_, n_);
    std::fill(current_.begin(), current_.end(), 0);
  }

  enum class Phase { Push, Relabel };

  FlowNetwork& net_;
  const int s_;
  const int t_;
  MaxFlowStats& stats_;
  ThreadPool* pool_;
  const bool parallel_;
  const int n_;
  const double tol_;
  std::vector<int> height_;
  std::vector<double> excess_;
  std::vector<int> current_;
  std::vector<int> new_height_;
  std::vector<double> delta_;
  std::vector<BlockScratch> scratch_;
  const std::vector<int>* phase_items_ = nullptr;
  Phase phase_ = Phase::Push;
  long work_ = 0;
  long work_limit_ = 0;
};

/// Reference Dinic: simple by design, used to cross-check HighestLabel.
class DinicSolver {
 public:
  DinicSolver(FlowNetwork& net, int s, int t, MaxFlowStats& stats)
      : net_(net),
        s_(s),
        t_(t),
        stats_(stats),
        n_(net.num_nodes()),
        tol_(net.tolerance()),
        level_(static_cast<std::size_t>(n_), -1),
        current_(static_cast<std::size_t>(n_), 0) {}

  double run() {
    double total = 0.0;
    while (build_levels()) {
      std::fill(current_.begin(), current_.end(), 0);
      for (;;) {
        const double pushed =
            augment(s_, std::numeric_limits<double>::infinity());
        if (pushed <= tol_) break;
        total += pushed;
        ++stats_.augmenting_paths;
      }
    }
    return total;
  }

 private:
  bool build_levels() {
    std::fill(level_.begin(), level_.end(), -1);
    level_[static_cast<std::size_t>(s_)] = 0;
    std::vector<int> queue{s_};
    for (std::size_t i = 0; i < queue.size(); ++i) {
      const int u = queue[i];
      for (const int a : net_.out_arcs(u)) {
        const int v = net_.arc_to(a);
        if (level_[static_cast<std::size_t>(v)] < 0 &&
            net_.residual(a) > tol_) {
          level_[static_cast<std::size_t>(v)] =
              level_[static_cast<std::size_t>(u)] + 1;
          queue.push_back(v);
        }
      }
    }
    return level_[static_cast<std::size_t>(t_)] >= 0;
  }

  double augment(int u, double limit) {
    if (u == t_) return limit;
    const std::span<const int> arcs = net_.out_arcs(u);
    for (; current_[static_cast<std::size_t>(u)] <
           static_cast<int>(arcs.size());
         ++current_[static_cast<std::size_t>(u)]) {
      const int a = arcs[static_cast<std::size_t>(
          current_[static_cast<std::size_t>(u)])];
      const int v = net_.arc_to(a);
      if (net_.residual(a) <= tol_ ||
          level_[static_cast<std::size_t>(v)] !=
              level_[static_cast<std::size_t>(u)] + 1) {
        continue;
      }
      const double d = augment(v, std::min(limit, net_.residual(a)));
      if (d > tol_) {
        net_.push(a, d);
        return d;
      }
    }
    return 0.0;
  }

  FlowNetwork& net_;
  const int s_;
  const int t_;
  MaxFlowStats& stats_;
  const int n_;
  const double tol_;
  std::vector<int> level_;
  std::vector<int> current_;
};

}  // namespace

bool parallel_discharge_cutoff(const FlowNetwork& net) {
  return net.num_arcs() >= kParallelDischargeMinArcs;
}

FlowAlgo resolve_flow_algo(const FlowNetwork& net, FlowAlgo algo) {
  if (algo != FlowAlgo::Auto) return algo;
  return parallel_discharge_cutoff(net) ? FlowAlgo::ParallelDischarge
                                        : FlowAlgo::HighestLabel;
}

std::pair<bool, ThreadPool*> resolve_flow_pool(const FlowOptions& opts) {
  if (opts.pool != nullptr) return {true, opts.pool};
  if (opts.threads == 1) return {false, nullptr};
  if (opts.threads <= 0) return {true, nullptr};  // shared pool
  if (ThreadPool::in_worker()) {
    // Nested under outer parallelism: parallel_for inlines on workers, so
    // a dedicated pool could never be used — don't spin up its threads.
    return {true, nullptr};
  }
  return {true, &ThreadPool::dedicated(static_cast<std::size_t>(opts.threads))};
}

double max_flow(FlowNetwork& net, int s, int t, FlowAlgo algo,
                MaxFlowStats* stats) {
  // The legacy entry point is the serial path: explicit algos run as
  // before, Auto dispatches by instance size but executes inline.
  FlowOptions opts;
  opts.algo = algo;
  opts.threads = 1;
  return max_flow(net, s, t, opts, stats);
}

double max_flow(FlowNetwork& net, int s, int t, const FlowOptions& opts,
                MaxFlowStats* stats) {
  if (!net.finalized()) {
    throw std::invalid_argument("max_flow: network not finalized");
  }
  const int n = net.num_nodes();
  if (s < 0 || s >= n || t < 0 || t >= n || s == t) {
    throw std::invalid_argument("max_flow: bad terminals");
  }
  MaxFlowStats local;
  MaxFlowStats& st = stats != nullptr ? *stats : local;
  switch (resolve_flow_algo(net, opts.algo)) {
    case FlowAlgo::HighestLabel:
      return HighestLabelSolver(net, s, t, st).run();
    case FlowAlgo::Dinic:
      return DinicSolver(net, s, t, st).run();
    case FlowAlgo::ParallelDischarge: {
      const auto [parallel, pool] = resolve_flow_pool(opts);
      return ParallelDischargeSolver(net, s, t, st, pool, parallel).run();
    }
    case FlowAlgo::Auto:
      break;  // resolve_flow_algo never returns Auto
  }
  throw std::invalid_argument("max_flow: unknown algorithm");
}

}  // namespace tb::flow
