#include "flow/max_flow.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

namespace tb::flow {
namespace {

/// Highest-label push-relabel, run to completion: after the main loop every
/// node but s and t has zero excess, so the residual state is a valid
/// maximum flow (not just a maximum preflow) and min-cut extraction can
/// trust per-arc flows. Heights live in [0, 2n]; 2n marks nodes the global
/// relabel found unreachable from both terminals in the residual graph.
class HighestLabelSolver {
 public:
  HighestLabelSolver(FlowNetwork& net, int s, int t, MaxFlowStats& stats)
      : net_(net),
        s_(s),
        t_(t),
        stats_(stats),
        n_(net.num_nodes()),
        tol_(net.tolerance()),
        height_(static_cast<std::size_t>(n_), 0),
        excess_(static_cast<std::size_t>(n_), 0.0),
        current_(static_cast<std::size_t>(n_), 0),
        active_(static_cast<std::size_t>(n_), 0),
        count_(static_cast<std::size_t>(2 * n_) + 1, 0),
        buckets_(static_cast<std::size_t>(2 * n_) + 1) {
    // Global relabel when the accumulated relabel work passes this; the
    // usual linear-in-graph-size budget keeps rebuilds amortized O(1).
    work_limit_ = 12 * static_cast<long>(n_) + 2 * net_.num_arcs();
  }

  double run() {
    for (const int a : net_.out_arcs(s_)) {
      const double d = net_.residual(a);
      if (d > tol_) {
        net_.push(a, d);
        excess_[static_cast<std::size_t>(net_.arc_to(a))] += d;
        ++stats_.pushes;
      }
    }
    global_relabel();
    while (highest_ >= 0) {
      auto& bucket = buckets_[static_cast<std::size_t>(highest_)];
      if (bucket.empty()) {
        --highest_;
        continue;
      }
      const int u = bucket.back();
      bucket.pop_back();
      active_[static_cast<std::size_t>(u)] = 0;
      if (excess_[static_cast<std::size_t>(u)] <= tol_) continue;
      if (height_[static_cast<std::size_t>(u)] != highest_) {
        activate(u);  // moved by a gap jump; requeue at its real height
        continue;
      }
      discharge(u);
      if (work_ >= work_limit_) {
        work_ = 0;
        global_relabel();
      }
    }
    return excess_[static_cast<std::size_t>(t_)];
  }

 private:
  void activate(int v) {
    if (v == s_ || v == t_ || active_[static_cast<std::size_t>(v)]) return;
    const int h = height_[static_cast<std::size_t>(v)];
    if (h >= 2 * n_) return;  // parked: unreachable from both terminals
    active_[static_cast<std::size_t>(v)] = 1;
    buckets_[static_cast<std::size_t>(h)].push_back(v);
    if (h > highest_) highest_ = h;
  }

  void discharge(int u) {
    const std::span<const int> arcs = net_.out_arcs(u);
    while (excess_[static_cast<std::size_t>(u)] > tol_) {
      if (current_[static_cast<std::size_t>(u)] >=
          static_cast<int>(arcs.size())) {
        relabel(u);
        if (height_[static_cast<std::size_t>(u)] >= 2 * n_) return;
        current_[static_cast<std::size_t>(u)] = 0;
        continue;
      }
      const int a = arcs[static_cast<std::size_t>(
          current_[static_cast<std::size_t>(u)])];
      const int v = net_.arc_to(a);
      if (net_.residual(a) > tol_ &&
          height_[static_cast<std::size_t>(u)] ==
              height_[static_cast<std::size_t>(v)] + 1) {
        const double d =
            std::min(excess_[static_cast<std::size_t>(u)], net_.residual(a));
        net_.push(a, d);
        excess_[static_cast<std::size_t>(u)] -= d;
        excess_[static_cast<std::size_t>(v)] += d;
        ++stats_.pushes;
        if (excess_[static_cast<std::size_t>(v)] > tol_) activate(v);
      } else {
        ++current_[static_cast<std::size_t>(u)];
      }
    }
  }

  void relabel(int u) {
    ++stats_.relabels;
    work_ += static_cast<long>(net_.out_arcs(u).size()) + 12;
    const int old_h = height_[static_cast<std::size_t>(u)];
    int min_h = std::numeric_limits<int>::max();
    for (const int a : net_.out_arcs(u)) {
      if (net_.residual(a) > tol_) {
        min_h = std::min(min_h, height_[static_cast<std::size_t>(net_.arc_to(a))]);
      }
    }
    const int new_h =
        min_h == std::numeric_limits<int>::max() ? 2 * n_
                                                 : std::min(min_h + 1, 2 * n_);
    --count_[static_cast<std::size_t>(old_h)];
    height_[static_cast<std::size_t>(u)] = new_h;
    ++count_[static_cast<std::size_t>(new_h)];
    if (count_[static_cast<std::size_t>(old_h)] == 0 && old_h < n_) {
      lift_above_gap(old_h);
    }
  }

  /// Gap heuristic: no node left at height h < n means no residual path
  /// from any node above h to the sink; lift them past n in one sweep.
  /// Nodes sitting in active buckets go stale and are requeued on pop.
  void lift_above_gap(int h) {
    ++stats_.gap_jumps;
    for (int v = 0; v < n_; ++v) {
      const int hv = height_[static_cast<std::size_t>(v)];
      if (hv > h && hv < n_) {
        --count_[static_cast<std::size_t>(hv)];
        height_[static_cast<std::size_t>(v)] = n_ + 1;
        ++count_[static_cast<std::size_t>(n_) + 1];
        current_[static_cast<std::size_t>(v)] = 0;
      }
    }
  }

  /// Exact heights from residual BFS: distance to t below n, n + distance
  /// to s for nodes cut off from t, 2n for nodes cut off from both.
  /// Rebuilds the height counts and the active buckets from scratch.
  void global_relabel() {
    ++stats_.global_relabels;
    const int unreached = 2 * n_;
    std::fill(height_.begin(), height_.end(), unreached);
    std::vector<int> queue;
    queue.reserve(static_cast<std::size_t>(n_));

    // An arc a = (u -> v) admits backward traversal v -> u in the residual
    // graph iff its reverse a^1 = (v -> u) has residual capacity, so both
    // terminal BFS passes expand over out_arcs checking the paired arc.
    const auto backward_bfs = [&](int root, int base) {
      height_[static_cast<std::size_t>(root)] = base;
      queue.clear();
      queue.push_back(root);
      for (std::size_t i = 0; i < queue.size(); ++i) {
        const int u = queue[i];
        for (const int a : net_.out_arcs(u)) {
          const int v = net_.arc_to(a);
          if (height_[static_cast<std::size_t>(v)] == unreached &&
              net_.residual(FlowNetwork::reverse_arc(a)) > tol_ && v != s_) {
            height_[static_cast<std::size_t>(v)] =
                height_[static_cast<std::size_t>(u)] + 1;
            queue.push_back(v);
          }
        }
      }
    };
    backward_bfs(t_, 0);  // the v != s_ guard pins the source height to n
    backward_bfs(s_, n_);

    std::fill(count_.begin(), count_.end(), 0);
    for (int v = 0; v < n_; ++v) {
      ++count_[static_cast<std::size_t>(height_[static_cast<std::size_t>(v)])];
    }
    std::fill(current_.begin(), current_.end(), 0);
    std::fill(active_.begin(), active_.end(), 0);
    for (auto& bucket : buckets_) bucket.clear();
    highest_ = -1;
    for (int v = 0; v < n_; ++v) {
      if (excess_[static_cast<std::size_t>(v)] > tol_) activate(v);
    }
  }

  FlowNetwork& net_;
  const int s_;
  const int t_;
  MaxFlowStats& stats_;
  const int n_;
  const double tol_;
  std::vector<int> height_;
  std::vector<double> excess_;
  std::vector<int> current_;
  std::vector<std::uint8_t> active_;
  std::vector<int> count_;
  std::vector<std::vector<int>> buckets_;
  int highest_ = -1;
  long work_ = 0;
  long work_limit_ = 0;
};

/// Reference Dinic: simple by design, used to cross-check HighestLabel.
class DinicSolver {
 public:
  DinicSolver(FlowNetwork& net, int s, int t, MaxFlowStats& stats)
      : net_(net),
        s_(s),
        t_(t),
        stats_(stats),
        n_(net.num_nodes()),
        tol_(net.tolerance()),
        level_(static_cast<std::size_t>(n_), -1),
        current_(static_cast<std::size_t>(n_), 0) {}

  double run() {
    double total = 0.0;
    while (build_levels()) {
      std::fill(current_.begin(), current_.end(), 0);
      for (;;) {
        const double pushed =
            augment(s_, std::numeric_limits<double>::infinity());
        if (pushed <= tol_) break;
        total += pushed;
        ++stats_.augmenting_paths;
      }
    }
    return total;
  }

 private:
  bool build_levels() {
    std::fill(level_.begin(), level_.end(), -1);
    level_[static_cast<std::size_t>(s_)] = 0;
    std::vector<int> queue{s_};
    for (std::size_t i = 0; i < queue.size(); ++i) {
      const int u = queue[i];
      for (const int a : net_.out_arcs(u)) {
        const int v = net_.arc_to(a);
        if (level_[static_cast<std::size_t>(v)] < 0 &&
            net_.residual(a) > tol_) {
          level_[static_cast<std::size_t>(v)] =
              level_[static_cast<std::size_t>(u)] + 1;
          queue.push_back(v);
        }
      }
    }
    return level_[static_cast<std::size_t>(t_)] >= 0;
  }

  double augment(int u, double limit) {
    if (u == t_) return limit;
    const std::span<const int> arcs = net_.out_arcs(u);
    for (; current_[static_cast<std::size_t>(u)] <
           static_cast<int>(arcs.size());
         ++current_[static_cast<std::size_t>(u)]) {
      const int a = arcs[static_cast<std::size_t>(
          current_[static_cast<std::size_t>(u)])];
      const int v = net_.arc_to(a);
      if (net_.residual(a) <= tol_ ||
          level_[static_cast<std::size_t>(v)] !=
              level_[static_cast<std::size_t>(u)] + 1) {
        continue;
      }
      const double d = augment(v, std::min(limit, net_.residual(a)));
      if (d > tol_) {
        net_.push(a, d);
        return d;
      }
    }
    return 0.0;
  }

  FlowNetwork& net_;
  const int s_;
  const int t_;
  MaxFlowStats& stats_;
  const int n_;
  const double tol_;
  std::vector<int> level_;
  std::vector<int> current_;
};

}  // namespace

double max_flow(FlowNetwork& net, int s, int t, FlowAlgo algo,
                MaxFlowStats* stats) {
  if (!net.finalized()) {
    throw std::invalid_argument("max_flow: network not finalized");
  }
  const int n = net.num_nodes();
  if (s < 0 || s >= n || t < 0 || t >= n || s == t) {
    throw std::invalid_argument("max_flow: bad terminals");
  }
  MaxFlowStats local;
  MaxFlowStats& st = stats != nullptr ? *stats : local;
  switch (algo) {
    case FlowAlgo::HighestLabel:
      return HighestLabelSolver(net, s, t, st).run();
    case FlowAlgo::Dinic:
      return DinicSolver(net, s, t, st).run();
  }
  throw std::invalid_argument("max_flow: unknown algorithm");
}

}  // namespace tb::flow
