#include "flow/flow_network.h"

#include <stdexcept>

namespace tb::flow {

FlowNetwork FlowNetwork::from_graph(const Graph& g) {
  if (!g.finalized()) {
    throw std::logic_error("FlowNetwork::from_graph: graph not finalized");
  }
  FlowNetwork net(g.num_nodes());
  for (int e = 0; e < g.num_edges(); ++e) {
    net.add_arc_pair(g.edge_u(e), g.edge_v(e), g.edge_cap(e), g.edge_cap(e));
  }
  net.finalize();
  return net;
}

FlowNetwork FlowNetwork::from_network(const Network& net) {
  return from_graph(net.graph);
}

int FlowNetwork::add_arc_pair(int u, int v, double cap_uv, double cap_vu) {
  if (u < 0 || u >= num_nodes_ || v < 0 || v >= num_nodes_ || u == v) {
    throw std::invalid_argument("FlowNetwork::add_arc_pair: bad endpoints");
  }
  if (cap_uv < 0.0 || cap_vu < 0.0) {
    throw std::invalid_argument("FlowNetwork::add_arc_pair: negative capacity");
  }
  const int a = num_arcs();
  tail_.push_back(u);
  head_.push_back(v);
  cap_.push_back(cap_uv);
  tail_.push_back(v);
  head_.push_back(u);
  cap_.push_back(cap_vu);
  if (cap_uv > max_cap_) max_cap_ = cap_uv;
  if (cap_vu > max_cap_) max_cap_ = cap_vu;
  finalized_ = false;
  return a;
}

void FlowNetwork::finalize() {
  if (finalized_) return;
  res_ = cap_;
  dirty_.assign(cap_.size(), 0);
  touched_.clear();
  offset_.assign(static_cast<std::size_t>(num_nodes_) + 1, 0);
  for (const int u : tail_) ++offset_[static_cast<std::size_t>(u) + 1];
  for (std::size_t v = 1; v < offset_.size(); ++v) offset_[v] += offset_[v - 1];
  adj_.resize(tail_.size());
  std::vector<int> fill(offset_.begin(), offset_.end() - 1);
  for (int a = 0; a < num_arcs(); ++a) {
    adj_[static_cast<std::size_t>(
        fill[static_cast<std::size_t>(tail_[static_cast<std::size_t>(a)])]++)] =
        a;
  }
  finalized_ = true;
}

}  // namespace tb::flow
