#include "flow/cut_battery.h"

#include <algorithm>

#include "util/thread_pool.h"

namespace tb::flow {

CutBattery::CutBattery(const Graph& g, const FlowOptions& opts)
    : g_(&g), opts_(opts), proto_(FlowNetwork::from_graph(g)) {}

std::vector<StCut> CutBattery::solve(
    const std::vector<std::pair<int, int>>& pairs) const {
  std::vector<StCut> out(pairs.size());
  if (pairs.empty()) return out;
  const auto [parallel, pool] = resolve_flow_pool(opts_);
  // Pair blocks track the pair count (never the pool size): enough tasks
  // to saturate a small pool, few enough that each task's residual copy
  // amortizes over its pairs. The shape cannot reach results — each solve
  // starts from an exact reset — so it is free to balance load.
  const std::size_t per_block =
      std::max<std::size_t>(1, (pairs.size() + 15) / 16);
  const std::size_t blocks = (pairs.size() + per_block - 1) / per_block;
  const auto run_block = [&](std::size_t b) {
    FlowNetwork net = proto_;  // task-local residual copy
    const std::size_t lo = b * per_block;
    const std::size_t hi = std::min(lo + per_block, pairs.size());
    for (std::size_t i = lo; i < hi; ++i) {
      out[i] = st_min_cut(*g_, net, pairs[i].first, pairs[i].second, opts_);
    }
  };
  if (parallel && blocks > 1) {
    ThreadPool& p = pool != nullptr ? *pool : ThreadPool::shared();
    p.parallel_for(0, blocks, run_block);
  } else {
    for (std::size_t b = 0; b < blocks; ++b) run_block(b);
  }
  return out;
}

int CutBattery::best_index(const std::vector<StCut>& cuts, double tolerance) {
  int best = -1;
  for (std::size_t i = 0; i < cuts.size(); ++i) {
    if (best < 0 || cuts[i].value < cuts[static_cast<std::size_t>(best)].value) {
      best = static_cast<int>(i);
      if (cuts[static_cast<std::size_t>(best)].value <= tolerance) break;
    }
  }
  return best;
}

}  // namespace tb::flow
