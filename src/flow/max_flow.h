// Exact single-commodity max-flow over a FlowNetwork.
//
// Three engines:
//  * HighestLabel — push-relabel with highest-label node selection, the
//    gap heuristic (a height with no nodes disconnects everything above it
//    from the sink side) and periodic global relabeling (exact residual
//    BFS distances). The serial production engine; runs to completion, so
//    the residual state it leaves behind is a valid maximum flow.
//  * ParallelDischarge — round-synchronous push-relabel for large
//    instances: each round freezes heights, discharges every active node
//    into per-arc delta buffers over fixed vertex blocks, then applies
//    the deltas and relabels in a serial block-ordered merge. Bitwise
//    deterministic for any thread count (including 1), because every
//    cross-block effect goes through the ordered merge; the thread count
//    only decides which worker runs a block.
//  * Dinic — BFS level graph + DFS blocking flow with current-arc
//    pointers. Deliberately simple; the tests cross-check the push-relabel
//    engines against it on randomized instances.
//
// FlowAlgo::Auto picks ParallelDischarge above an instance-size cutoff and
// HighestLabel below it. The predicate looks only at the instance (arc
// count), never at the thread configuration, so results stay byte-identical
// across TOPOBENCH_SOLVER_THREADS settings — the flow-level half of the
// PR-5 determinism contract. The threshold is grounded by the
// BM_StMaxFlow* micro benches (bench/micro_solvers.cpp): below a few
// thousand arcs the round structure's extra passes cost more than the
// blocks can win back.
//
// Capacities are doubles; residual amounts at or below
// FlowNetwork::tolerance() count as zero everywhere, so solvers, cut
// extraction, and verification agree on saturation.
#pragma once

#include <utility>

#include "flow/flow_network.h"

namespace tb {
class ThreadPool;
}  // namespace tb

namespace tb::flow {

enum class FlowAlgo { HighestLabel, Dinic, ParallelDischarge, Auto };

/// Work counters, mostly for tests, CSV telemetry and the micro benches.
struct MaxFlowStats {
  long pushes = 0;            ///< push-relabel: applied push operations
  long relabels = 0;          ///< push-relabel: single-node relabels
  long global_relabels = 0;   ///< push-relabel: residual-BFS height rebuilds
  long gap_jumps = 0;         ///< HighestLabel: gap-heuristic activations
  long augmenting_paths = 0;  ///< Dinic: blocking-flow augmentations

  /// Field-wise accumulate; callers sum per-solve stats in a fixed index
  /// order so aggregates stay deterministic at any thread count.
  void add(const MaxFlowStats& o) {
    pushes += o.pushes;
    relabels += o.relabels;
    global_relabels += o.global_relabels;
    gap_jumps += o.gap_jumps;
    augmenting_paths += o.augmenting_paths;
  }
};

/// Threading configuration of the flow engines and the cut battery,
/// mirroring the mcf::SolveOptions::solver_threads contract: 0 = the
/// shared pool, 1 = fully serial, N > 1 = a process-shared dedicated pool
/// of N workers. `pool` overrides the resolution with an explicit pool
/// (battery tasks hand their own pool down so nested parallel_for inlines).
/// Threads never change results — only which workers do the work.
struct FlowOptions {
  FlowAlgo algo = FlowAlgo::Auto;
  int threads = 0;
  ThreadPool* pool = nullptr;
};

/// Instance-only cutoff of FlowAlgo::Auto: true when `net` is large enough
/// that the parallel-discharge engine is worth its per-round overhead.
bool parallel_discharge_cutoff(const FlowNetwork& net);

/// The engine FlowAlgo::Auto resolves to for `net` (identity otherwise).
FlowAlgo resolve_flow_algo(const FlowNetwork& net, FlowAlgo algo);

/// Resolve `opts` to the (parallel, pool) pair the engines use: null pool
/// means ThreadPool::shared(). Serial when threads == 1, and never a fresh
/// dedicated pool from inside a pool worker (nested parallel_for inlines,
/// so its threads could never be used).
std::pair<bool, ThreadPool*> resolve_flow_pool(const FlowOptions& opts);

/// Maximum s-t flow value. Mutates `net`'s residual state in place; the
/// resulting flow is read back per arc via FlowNetwork::flow(). Throws
/// std::invalid_argument on bad terminals or an unfinalized network.
double max_flow(FlowNetwork& net, int s, int t,
                FlowAlgo algo = FlowAlgo::HighestLabel,
                MaxFlowStats* stats = nullptr);

/// Same, with the full threading configuration: FlowAlgo::Auto dispatch
/// plus a worker pool for the parallel-discharge engine. The flow value
/// and residual state are bitwise identical for any `threads`/`pool`.
double max_flow(FlowNetwork& net, int s, int t, const FlowOptions& opts,
                MaxFlowStats* stats = nullptr);

}  // namespace tb::flow
