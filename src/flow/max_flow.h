// Exact single-commodity max-flow over a FlowNetwork.
//
// Two engines:
//  * HighestLabel — push-relabel with highest-label node selection, the
//    gap heuristic (a height with no nodes disconnects everything above it
//    from the sink side) and periodic global relabeling (exact residual
//    BFS distances). The production engine; runs to completion, so the
//    residual state it leaves behind is a valid maximum flow.
//  * Dinic — BFS level graph + DFS blocking flow with current-arc
//    pointers. Deliberately simple; the tests cross-check HighestLabel
//    against it on randomized instances.
//
// Capacities are doubles; residual amounts at or below
// FlowNetwork::tolerance() count as zero everywhere, so solvers, cut
// extraction, and verification agree on saturation.
#pragma once

#include "flow/flow_network.h"

namespace tb::flow {

enum class FlowAlgo { HighestLabel, Dinic };

/// Work counters, mostly for tests and the micro benches.
struct MaxFlowStats {
  long pushes = 0;            ///< HighestLabel: individual push operations
  long relabels = 0;          ///< HighestLabel: single-node relabels
  long global_relabels = 0;   ///< HighestLabel: residual-BFS height rebuilds
  long gap_jumps = 0;         ///< HighestLabel: gap-heuristic activations
  long augmenting_paths = 0;  ///< Dinic: blocking-flow augmentations
};

/// Maximum s-t flow value. Mutates `net`'s residual state in place; the
/// resulting flow is read back per arc via FlowNetwork::flow(). Throws
/// std::invalid_argument on bad terminals or an unfinalized network.
double max_flow(FlowNetwork& net, int s, int t,
                FlowAlgo algo = FlowAlgo::HighestLabel,
                MaxFlowStats* stats = nullptr);

}  // namespace tb::flow
