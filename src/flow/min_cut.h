// Exact s-t min cuts over the switch graph, extracted from a max flow and
// verified against it. By max-flow/min-cut duality the source-side
// partition found by residual BFS is a minimum cut whose capacity equals
// the flow value; st_min_cut checks that identity numerically and throws
// if it fails, so callers can treat the result as certified.
#pragma once

#include <cstdint>
#include <vector>

#include "flow/max_flow.h"
#include "graph/graph.h"

namespace tb::flow {

struct StCut {
  double value = 0.0;         ///< max-flow value == verified cut capacity
  double cut_capacity = 0.0;  ///< capacity of cut_edges (== value, checked)
  std::vector<std::uint8_t> source_side;  ///< 1 = reachable from s in residual
  std::vector<int> cut_edges;             ///< Graph edge ids crossing the cut
  MaxFlowStats stats;
};

/// Exact minimum s-t cut of `g` (each edge carries its capacity in both
/// directions, the paper's link model). Throws std::invalid_argument on
/// bad terminals and std::logic_error if the extracted cut's capacity
/// disagrees with the flow value (the verification contract).
StCut st_min_cut(const Graph& g, int s, int t,
                 FlowAlgo algo = FlowAlgo::HighestLabel);

/// Same, reusing a prebuilt FlowNetwork::from_graph(g) — reset and solved
/// in place, so callers cutting many terminal pairs of one graph skip the
/// per-pair network construction. `net` must mirror `g`.
StCut st_min_cut(const Graph& g, FlowNetwork& net, int s, int t,
                 FlowAlgo algo = FlowAlgo::HighestLabel);

/// Threaded variants: FlowAlgo::Auto dispatch plus the FlowOptions worker
/// configuration for the parallel-discharge engine. Results are bitwise
/// identical to the serial overloads for any thread count (`opts` is
/// deliberately not defaulted so the legacy calls stay unambiguous).
StCut st_min_cut(const Graph& g, int s, int t, const FlowOptions& opts);
StCut st_min_cut(const Graph& g, FlowNetwork& net, int s, int t,
                 const FlowOptions& opts);

/// Global minimum cut: the smallest s-t cut over all terminal pairs,
/// computed as min over t != 0 of st_min_cut(0, t) (every cut separates
/// node 0 from something). n-1 max flows; fine at evaluation sizes.
/// Requires at least two nodes.
StCut global_min_cut(const Graph& g, FlowAlgo algo = FlowAlgo::HighestLabel);

/// Threaded variant: solves the n-1 terminal pairs concurrently on the
/// CutBattery and reduces in index order, so the returned cut (stats
/// included) is bitwise identical to the serial loop above.
StCut global_min_cut(const Graph& g, const FlowOptions& opts);

}  // namespace tb::flow
