#include "flow/min_cut.h"

#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "flow/cut_battery.h"

namespace tb::flow {
namespace {

/// Nodes reachable from s through residual capacity > tol.
std::vector<std::uint8_t> residual_source_side(const FlowNetwork& net, int s) {
  std::vector<std::uint8_t> side(static_cast<std::size_t>(net.num_nodes()), 0);
  side[static_cast<std::size_t>(s)] = 1;
  std::vector<int> queue{s};
  const double tol = net.tolerance();
  for (std::size_t i = 0; i < queue.size(); ++i) {
    for (const int a : net.out_arcs(queue[i])) {
      const int v = net.arc_to(a);
      if (!side[static_cast<std::size_t>(v)] && net.residual(a) > tol) {
        side[static_cast<std::size_t>(v)] = 1;
        queue.push_back(v);
      }
    }
  }
  return side;
}

StCut extract_cut(const Graph& g, FlowNetwork& net, int s, double value,
                  MaxFlowStats stats) {
  StCut cut;
  cut.value = value;
  cut.stats = stats;
  cut.source_side = residual_source_side(net, s);
  // Every crossing edge contributes the capacity of its source-to-sink-side
  // arc, which for the symmetric link model is the edge capacity.
  for (int e = 0; e < g.num_edges(); ++e) {
    if (cut.source_side[static_cast<std::size_t>(g.edge_u(e))] !=
        cut.source_side[static_cast<std::size_t>(g.edge_v(e))]) {
      cut.cut_edges.push_back(e);
      cut.cut_capacity += g.edge_cap(e);
    }
  }
  // Strong duality check: the residual-BFS cut must be saturated exactly at
  // the flow value. A mismatch means the solver left an augmenting path or
  // lost flow, so fail loudly rather than report an uncertified bound.
  const double scale = cut.cut_capacity > 1.0 ? cut.cut_capacity : 1.0;
  if (std::abs(cut.cut_capacity - value) > 1e-6 * scale) {
    throw std::logic_error("st_min_cut: cut capacity " +
                           std::to_string(cut.cut_capacity) +
                           " does not certify flow value " +
                           std::to_string(value));
  }
  return cut;
}

}  // namespace

StCut st_min_cut(const Graph& g, int s, int t, FlowAlgo algo) {
  FlowNetwork net = FlowNetwork::from_graph(g);
  return st_min_cut(g, net, s, t, algo);
}

StCut st_min_cut(const Graph& g, FlowNetwork& net, int s, int t,
                 FlowAlgo algo) {
  if (net.num_nodes() != g.num_nodes() || net.num_arcs() != g.num_arcs()) {
    throw std::invalid_argument("st_min_cut: network does not mirror graph");
  }
  net.reset();
  MaxFlowStats stats;
  const double value = max_flow(net, s, t, algo, &stats);
  return extract_cut(g, net, s, value, stats);
}

StCut st_min_cut(const Graph& g, int s, int t, const FlowOptions& opts) {
  FlowNetwork net = FlowNetwork::from_graph(g);
  return st_min_cut(g, net, s, t, opts);
}

StCut st_min_cut(const Graph& g, FlowNetwork& net, int s, int t,
                 const FlowOptions& opts) {
  if (net.num_nodes() != g.num_nodes() || net.num_arcs() != g.num_arcs()) {
    throw std::invalid_argument("st_min_cut: network does not mirror graph");
  }
  net.reset();
  MaxFlowStats stats;
  const double value = max_flow(net, s, t, opts, &stats);
  return extract_cut(g, net, s, value, stats);
}

StCut global_min_cut(const Graph& g, FlowAlgo algo) {
  if (g.num_nodes() < 2) {
    throw std::invalid_argument("global_min_cut: need at least two nodes");
  }
  FlowNetwork net = FlowNetwork::from_graph(g);
  bool have_best = false;
  StCut best;
  for (int t = 1; t < g.num_nodes(); ++t) {
    net.reset();
    MaxFlowStats stats;
    const double value = max_flow(net, 0, t, algo, &stats);
    if (!have_best || value < best.value) {
      best = extract_cut(g, net, 0, value, stats);
      have_best = true;
      if (best.value <= net.tolerance()) break;  // cannot get below zero
    }
  }
  return best;
}

StCut global_min_cut(const Graph& g, const FlowOptions& opts) {
  if (g.num_nodes() < 2) {
    throw std::invalid_argument("global_min_cut: need at least two nodes");
  }
  std::vector<std::pair<int, int>> pairs;
  pairs.reserve(static_cast<std::size_t>(g.num_nodes()) - 1);
  for (int t = 1; t < g.num_nodes(); ++t) pairs.emplace_back(0, t);
  const CutBattery battery(g, opts);
  std::vector<StCut> cuts = battery.solve(pairs);
  const int best = CutBattery::best_index(cuts, battery.tolerance());
  return std::move(cuts[static_cast<std::size_t>(best)]);
}

}  // namespace tb::flow
