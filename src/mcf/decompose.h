// Flow decomposition: turn a per-arc flow (e.g. the feasible flow a solver
// certifies) into explicit paths. Useful for inspecting what the optimum
// actually does — e.g. verifying that near-worst-case TMs force long paths
// — and for exporting schedules to downstream simulators.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace tb::mcf {

struct FlowPath {
  std::vector<int> arcs;  ///< source-to-sink arc sequence
  double amount = 0.0;
};

/// Decompose a single-commodity arc flow from `src` into sink-terminated
/// paths (standard greedy path stripping; cycles are cancelled silently).
/// `arc_flow` is indexed by arc id and is consumed (copied internally).
/// `tol` ignores residual flow below it.
std::vector<FlowPath> decompose_flow(const Graph& g, int src,
                                     std::vector<double> arc_flow,
                                     double tol = 1e-9);

/// Demand-weighted mean path length (hops) of a decomposition.
double mean_path_length(const std::vector<FlowPath>& paths);

}  // namespace tb::mcf
