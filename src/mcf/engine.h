// ThroughputEngine — a reusable solver session bound to one topology.
//
// Every figure in the paper is a sweep in which the topology stays fixed
// while the TM, scale factor, or solver varies. The stateless
// compute_throughput free function rebuilds adjacency, commodity
// aggregation, and solver state per call; the engine is constructed once
// per topology and keeps all of that alive across solves:
//
//   * the preprocessed CSR graph (borrowed from the Network, which must
//     outlive the engine);
//   * the GargKonemann session (GkSolver): working per-arc capacities and
//     every arc-length / flow / Dijkstra buffer, reused between solves;
//   * the last ExactLP optimal basis, reused as a simplex warm start.
//
// solve() is a cold solve — bitwise identical to compute_throughput on an
// unperturbed engine. warm_solve() seeds the solver from the previous
// solution (GK arc lengths; the LP basis): for ladders of nearby instances
// (TM families on one topology, degraded-capacity variants) the certified
// gap closes in far fewer phases. Warm results agree with cold ones within
// the certified primal/dual gap, not bitwise — the ExactLP path stays
// exact either way.
//
// The scenario layer models degraded networks (paper's robustness
// discussion): ScenarioSpec describes link/node failure sets, uniform
// capacity degradation, and seeded random failure sampling;
// apply_scenario() perturbs only the affected arcs of the engine's working
// capacities (remembering their prior values), and clear_scenario()
// repairs them in O(affected arcs). Failed arcs are never routed; demands
// that a scenario disconnects make throughput exactly 0 (the concurrent
// flow must serve every commodity), reported with solver = "disconnected".
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mcf/garg_konemann.h"
#include "mcf/throughput.h"
#include "tm/traffic_matrix.h"
#include "topo/network.h"

namespace tb::mcf {

// Seed sub-streams of ScenarioSpec::seed. Each seeded sampler inside
// apply_scenario draws from its own Rng(mix_seed(seed, stream)) so adding a
// new perturbation kind never changes the draw sequence of an existing one
// (random_edge_fraction keeps consuming Rng(seed) directly, preserving
// pre-group results bit-for-bit). Exported so tests can compute the
// expected sample sets independently.
inline constexpr std::uint64_t kGroupSampleStream = 0x67726f7570ULL;  // "group"
inline constexpr std::uint64_t kHotspotStream = 0x686f7453ULL;        // "hotS"

/// A degraded-network scenario, applied to an engine as an incremental
/// perturbation. Explicit failure sets, node failures (a failed node loses
/// every incident link), correlated shared-risk group failures, uniform
/// capacity degradation of the surviving links, seeded random link/group
/// failure sampling, and traffic-surge scaling compose in one spec.
struct ScenarioSpec {
  std::vector<int> failed_edges;  ///< edge ids to remove outright
  std::vector<int> failed_nodes;  ///< nodes whose incident edges all fail
  /// Indices into Network::risk_groups whose edges all fail (correlated
  /// shared-risk failure). Requires the network to export risk groups.
  std::vector<int> failed_groups;
  /// Capacity multiplier in (0, 1] applied to every surviving edge.
  double capacity_factor = 1.0;
  /// Additionally fail round(fraction * num_edges) distinct edges sampled
  /// uniformly with `seed` (deterministic; may overlap the explicit sets).
  double random_edge_fraction = 0.0;
  /// Additionally fail round(fraction * num_groups) distinct risk groups
  /// sampled uniformly with Rng(mix_seed(seed, kGroupSampleStream)) — a
  /// separate stream, so enabling groups never perturbs the edge sampler.
  double random_group_fraction = 0.0;
  std::uint64_t seed = 0;
  /// Traffic surge: every demand is scaled by tm_scale (> 0) before the
  /// solve. Applied to the input TM inside the engine — capacities are
  /// untouched, so the revert contract is unaffected. For the exact LP,
  /// throughput scales exactly by 1/tm_scale.
  double tm_scale = 1.0;
  /// Diurnal hotspot: round(hotspot_fraction * num_demands) demands sampled
  /// with Rng(mix_seed(seed, kHotspotStream)) are additionally scaled by
  /// hotspot_factor (> 0; composes with tm_scale).
  double hotspot_fraction = 0.0;
  double hotspot_factor = 1.0;
  /// Drop demands whose endpoint is a failed node (they cannot possibly be
  /// served; throughput is then over the surviving commodities). With this
  /// false, such demands stay and force throughput to 0.
  bool drop_failed_node_demands = true;
};

/// The risk-group indices `spec` fails on a network with `num_groups`
/// groups: the explicit failed_groups plus the seeded correlated sample
/// (sorted, deduplicated). This is exactly the set apply_scenario resolves;
/// exported so callers and tests can predict it without an engine. Throws
/// std::out_of_range / std::invalid_argument like apply_scenario.
std::vector<int> sampled_risk_groups(const ScenarioSpec& spec, int num_groups);

/// The surge-scaled copy of `tm` a scenario solve routes: every demand
/// scaled by tm_scale, then round(hotspot_fraction * num_demands) demands
/// sampled with Rng(mix_seed(seed, kHotspotStream)) further scaled by
/// hotspot_factor. Exported so tests can verify the engine's scaling
/// against an independent construction.
TrafficMatrix scenario_scaled_tm(const TrafficMatrix& tm, double tm_scale,
                                 double hotspot_fraction,
                                 double hotspot_factor, std::uint64_t seed);

/// Reusable throughput solver session. Construct once per topology; `net`
/// must outlive the engine. Not thread-safe — one engine per thread of
/// control (the exp runner builds one per evaluation chain).
class ThroughputEngine {
 public:
  explicit ThroughputEngine(const Network& net);

  ThroughputEngine(const ThroughputEngine&) = delete;
  ThroughputEngine& operator=(const ThroughputEngine&) = delete;

  /// Cold solve under the current (possibly scenario-degraded) capacities.
  /// Equivalent to compute_throughput when no scenario is active.
  ThroughputResult solve(const TrafficMatrix& tm,
                         const SolveOptions& opts = {});

  /// Like solve(), but seeds the solver from the previous solution on this
  /// engine (GK arc lengths / ExactLP basis). Falls back to a cold start
  /// when no previous solution exists; ThroughputResult::stats.warm_start
  /// records whether warm state was actually used.
  ThroughputResult warm_solve(const TrafficMatrix& tm,
                              const SolveOptions& opts = {});

  /// Apply `spec` to the working capacities (replacing any active
  /// scenario). Touches only the affected arcs and remembers their prior
  /// capacities so clear_scenario() repairs in O(affected arcs). Throws
  /// std::out_of_range / std::invalid_argument on bad ids or factors.
  void apply_scenario(const ScenarioSpec& spec);

  /// Restore the unperturbed capacities (O(affected arcs) repair).
  void clear_scenario();

  /// Fork a lightweight clone of this session for evaluating independent
  /// perturbations concurrently (ScenarioFleet's worker sessions): the
  /// clone shares the immutable topology and copies only per-arc working
  /// state — capacities, warm GK lengths, the LP basis — so its next
  /// warm_solve seeds exactly as this engine's would. Throws
  /// std::logic_error while a scenario is active (fork the intact
  /// baseline, then apply scenarios to the clones).
  std::unique_ptr<ThroughputEngine> fork_session() const;

  bool scenario_active() const noexcept { return scenario_active_; }
  /// Edges with zero capacity under the active scenario (0 when none).
  int failed_edge_count() const noexcept { return failed_edge_count_; }
  /// Distinct risk groups failed by the active scenario (explicit plus
  /// sampled; 0 when none active or the scenario fails no groups).
  int failed_group_count() const noexcept { return failed_group_count_; }
  /// The working per-arc capacities (scenario-degraded while active).
  /// Exposed for revert verification; treat as read-only session state.
  const std::vector<double>& arc_capacities() const noexcept {
    return gk_.arc_capacities();
  }
  const Network& network() const noexcept { return *net_; }

 private:
  /// Fork constructor backing fork_session().
  ThroughputEngine(const ThroughputEngine& base, bool);

  ThroughputResult run(const TrafficMatrix& tm, const SolveOptions& opts,
                       bool warm);
  /// True when every demand connects nodes in one component of the
  /// surviving (capacity > 0) subgraph.
  bool demands_connected(const TrafficMatrix& tm);

  const Network* net_;
  GkSolver gk_;  ///< owns the working per-arc capacities

  // Scenario bookkeeping: touched edges with their undegraded capacities
  // (the O(affected) repair list), the failed-node mask for demand
  // filtering, and the surge parameters (applied to the input TM per solve,
  // never persisted into session state — clear_scenario just forgets them).
  std::vector<std::pair<int, double>> touched_;
  std::vector<char> node_failed_;
  bool scenario_active_ = false;
  bool any_node_failed_ = false;
  bool drop_node_demands_ = true;
  int failed_edge_count_ = 0;
  int failed_group_count_ = 0;
  double tm_scale_ = 1.0;
  double hotspot_fraction_ = 0.0;
  double hotspot_factor_ = 1.0;
  std::uint64_t scenario_seed_ = 0;

  // ExactLP warm state: last optimal basis (empty until an LP solve).
  std::vector<int> lp_basis_;

  // Commodity-set fingerprint of the last GK solve: length seeding is only
  // sound-and-useful between *nearby* instances — same (src, dst) pairs
  // with perturbed capacities or scaled demands — so warm_solve seeds GK
  // lengths only when the fingerprint matches (tree-reuse session dynamics
  // run either way). 0 = no previous GK solve.
  std::uint64_t gk_tm_fingerprint_ = 0;

  // Scratch for demands_connected (component labels per node).
  std::vector<int> comp_;
  std::vector<int> bfs_queue_;
};

/// Result of one fleet scenario: the degraded solve plus its baseline
/// context (the baseline is shared by every cell of a batch).
struct FleetCell {
  ThroughputResult result;  ///< degraded solve (value, solver, stats)
  double baseline = 0.0;    ///< intact cold throughput of the batch
  double drop = 0.0;        ///< 1 - degraded/baseline (0 when baseline is 0)
  int failed_links = 0;     ///< edges at zero capacity under the scenario
  int failed_groups = 0;    ///< distinct risk groups failed by the scenario
};

/// Batch evaluator for degraded-network scenarios against one topology:
/// the throughput side of failure grids and sweeps. One cold baseline
/// solve per (TM, batch); every scenario is then applied to a forked clone
/// of the baseline session (sharing the immutable topology, copying only
/// per-arc working state) and warm-solved from the baseline solution, with
/// the clones distributed over the shared thread pool. Per-scenario results
/// are bitwise identical to evaluating each scenario one-at-a-time through
/// core's degraded_throughput, for any thread count — only the wall clock
/// and the number of baseline solves change. Nests safely under runner
/// parallelism: on a pool worker the fleet's parallel_for runs inline.
class ScenarioFleet {
 public:
  /// `net` must outlive the fleet.
  explicit ScenarioFleet(const Network& net) : net_(&net) {}

  /// Evaluate every scenario of `specs` against `tm`, in spec order.
  /// `parallel_cells` gates only the per-scenario fan-out onto the shared
  /// pool (callers that must stay on one thread — a cell-serial
  /// experiment runner — pass false; the solvers still honor
  /// opts.parallel / solver_threads independently). Results are identical
  /// either way.
  std::vector<FleetCell> evaluate(const TrafficMatrix& tm,
                                  const std::vector<ScenarioSpec>& specs,
                                  const SolveOptions& opts = {},
                                  bool parallel_cells = true);

 private:
  const Network* net_;
};

}  // namespace tb::mcf
