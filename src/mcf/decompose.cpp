#include "mcf/decompose.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace tb::mcf {

std::vector<FlowPath> decompose_flow(const Graph& g, int src,
                                     std::vector<double> arc_flow,
                                     double tol) {
  assert(g.finalized());
  if (static_cast<int>(arc_flow.size()) != g.num_arcs()) {
    throw std::invalid_argument("decompose_flow: arc_flow size mismatch");
  }
  std::vector<FlowPath> paths;
  const auto n = static_cast<std::size_t>(g.num_nodes());

  for (;;) {
    // Walk greedily from src along positive-flow arcs until a node with no
    // positive out-flow (a sink of the flow) or a revisit (a cycle).
    std::vector<int> walk;
    std::vector<int> visited_at(n, -1);
    int v = src;
    visited_at[static_cast<std::size_t>(v)] = 0;
    double bottleneck = 0.0;
    for (;;) {
      int next_arc = -1;
      double best = tol;
      for (const int a : g.out_arcs(v)) {
        if (arc_flow[static_cast<std::size_t>(a)] > best) {
          best = arc_flow[static_cast<std::size_t>(a)];
          next_arc = a;
        }
      }
      if (next_arc < 0) break;  // sink reached
      walk.push_back(next_arc);
      bottleneck = walk.size() == 1
                       ? arc_flow[static_cast<std::size_t>(next_arc)]
                       : std::min(bottleneck,
                                  arc_flow[static_cast<std::size_t>(next_arc)]);
      v = g.arc_to(next_arc);
      const int seen = visited_at[static_cast<std::size_t>(v)];
      if (seen >= 0) {
        // Cycle: cancel it and restart the walk.
        double cyc = arc_flow[static_cast<std::size_t>(walk[static_cast<std::size_t>(seen)])];
        for (std::size_t i = static_cast<std::size_t>(seen); i < walk.size(); ++i) {
          cyc = std::min(cyc, arc_flow[static_cast<std::size_t>(walk[i])]);
        }
        for (std::size_t i = static_cast<std::size_t>(seen); i < walk.size(); ++i) {
          arc_flow[static_cast<std::size_t>(walk[i])] -= cyc;
        }
        walk.clear();
        break;
      }
      visited_at[static_cast<std::size_t>(v)] =
          static_cast<int>(walk.size());
    }
    if (walk.empty()) {
      // Either a cycle was cancelled (retry) or src has no out-flow (done).
      bool any = false;
      for (const int a : g.out_arcs(src)) {
        if (arc_flow[static_cast<std::size_t>(a)] > tol) {
          any = true;
          break;
        }
      }
      if (!any) break;
      continue;
    }
    for (const int a : walk) arc_flow[static_cast<std::size_t>(a)] -= bottleneck;
    paths.push_back({std::move(walk), bottleneck});
    if (paths.size() > 10'000'000) {
      throw std::runtime_error("decompose_flow: runaway decomposition");
    }
  }
  return paths;
}

double mean_path_length(const std::vector<FlowPath>& paths) {
  double vol = 0.0;
  double weighted = 0.0;
  for (const FlowPath& p : paths) {
    vol += p.amount;
    weighted += p.amount * static_cast<double>(p.arcs.size());
  }
  return vol > 0.0 ? weighted / vol : 0.0;
}

}  // namespace tb::mcf
