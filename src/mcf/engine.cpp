#include "mcf/engine.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace tb::mcf {

namespace {

/// Resolve SolveOptions::solver_threads to the (parallel, pool) pair the
/// solvers receive (null pool = ThreadPool::shared()). Dedicated pools are
/// the process-shared ThreadPool::dedicated ones — engines (and their
/// fleet forks) are constructed per solve or per scenario all over the
/// stack, so pools must outlive any single engine; spawning and joining N
/// threads per solve would dwarf small solves and pollute the
/// parallel_scaling timings.
std::pair<bool, ThreadPool*> resolve_solver_pool(const SolveOptions& opts) {
  if (!opts.parallel || opts.solver_threads == 1) return {false, nullptr};
  if (opts.solver_threads <= 0) return {true, nullptr};  // shared pool
  if (ThreadPool::in_worker()) {
    // Nested under outer parallelism: parallel_for inlines on workers, so
    // a dedicated pool could never be used — don't spin up its threads.
    return {true, nullptr};
  }
  return {true,
          &ThreadPool::dedicated(static_cast<std::size_t>(opts.solver_threads))};
}

}  // namespace

std::vector<int> sampled_risk_groups(const ScenarioSpec& spec,
                                     int num_groups) {
  if (spec.random_group_fraction < 0.0 || spec.random_group_fraction > 1.0) {
    throw std::invalid_argument(
        "apply_scenario: random_group_fraction must be in [0, 1]");
  }
  if ((!spec.failed_groups.empty() || spec.random_group_fraction > 0.0) &&
      num_groups == 0) {
    throw std::invalid_argument(
        "apply_scenario: scenario fails risk groups but the network exports "
        "none (see ensure_risk_groups)");
  }
  std::vector<int> groups;
  for (const int gi : spec.failed_groups) {
    if (gi < 0 || gi >= num_groups) {
      throw std::out_of_range("apply_scenario: bad risk-group index");
    }
    groups.push_back(gi);
  }
  if (spec.random_group_fraction > 0.0 && num_groups > 0) {
    const int k = static_cast<int>(std::min<long long>(
        num_groups,
        std::llround(spec.random_group_fraction * num_groups)));
    Rng rng(mix_seed(spec.seed, kGroupSampleStream));
    for (const int gi : rng.sample_without_replacement(num_groups, k)) {
      groups.push_back(gi);
    }
  }
  std::sort(groups.begin(), groups.end());
  groups.erase(std::unique(groups.begin(), groups.end()), groups.end());
  return groups;
}

TrafficMatrix scenario_scaled_tm(const TrafficMatrix& tm, double tm_scale,
                                 double hotspot_fraction,
                                 double hotspot_factor, std::uint64_t seed) {
  TrafficMatrix scaled = tm;
  for (Demand& d : scaled.demands) d.amount *= tm_scale;
  const auto n = static_cast<int>(scaled.demands.size());
  if (hotspot_fraction > 0.0 && n > 0) {
    const int k = static_cast<int>(
        std::min<long long>(n, std::llround(hotspot_fraction * n)));
    Rng rng(mix_seed(seed, kHotspotStream));
    for (const int i : rng.sample_without_replacement(n, k)) {
      scaled.demands[static_cast<std::size_t>(i)].amount *= hotspot_factor;
    }
  }
  return scaled;
}

ThroughputEngine::ThroughputEngine(const Network& net)
    : net_(&net), gk_(net.graph) {}

ThroughputEngine::ThroughputEngine(const ThroughputEngine& base, bool)
    : net_(base.net_),
      gk_(base.gk_),
      lp_basis_(base.lp_basis_),
      gk_tm_fingerprint_(base.gk_tm_fingerprint_) {}

std::unique_ptr<ThroughputEngine> ThroughputEngine::fork_session() const {
  if (scenario_active_) {
    throw std::logic_error(
        "ThroughputEngine::fork_session: scenario active — fork the intact "
        "baseline, then apply scenarios to the clones");
  }
  return std::unique_ptr<ThroughputEngine>(new ThroughputEngine(*this, true));
}

void ThroughputEngine::apply_scenario(const ScenarioSpec& spec) {
  clear_scenario();
  const Graph& g = net_->graph;
  const int num_edges = g.num_edges();
  const int n = g.num_nodes();
  if (!(spec.capacity_factor > 0.0) || spec.capacity_factor > 1.0) {
    throw std::invalid_argument(
        "apply_scenario: capacity_factor must be in (0, 1]");
  }
  if (spec.random_edge_fraction < 0.0 || spec.random_edge_fraction > 1.0) {
    throw std::invalid_argument(
        "apply_scenario: random_edge_fraction must be in [0, 1]");
  }
  if (!(spec.tm_scale > 0.0)) {
    throw std::invalid_argument("apply_scenario: tm_scale must be > 0");
  }
  if (spec.hotspot_fraction < 0.0 || spec.hotspot_fraction > 1.0) {
    throw std::invalid_argument(
        "apply_scenario: hotspot_fraction must be in [0, 1]");
  }
  if (!(spec.hotspot_factor > 0.0)) {
    // Factor 0 would zero demands out, violating the TM validity contract
    // (validate_tm rejects non-positive amounts); removal is failed_nodes'
    // job, not a surge's.
    throw std::invalid_argument("apply_scenario: hotspot_factor must be > 0");
  }
  std::vector<char> fail(static_cast<std::size_t>(num_edges), 0);
  for (const int e : spec.failed_edges) {
    if (e < 0 || e >= num_edges) {
      throw std::out_of_range("apply_scenario: bad edge id");
    }
    fail[static_cast<std::size_t>(e)] = 1;
  }
  // Correlated shared-risk failures: explicit group indices plus the seeded
  // group sample, every member edge failed together.
  const std::vector<int> groups = sampled_risk_groups(
      spec, static_cast<int>(net_->risk_groups.size()));
  for (const int gi : groups) {
    for (const int e : net_->risk_groups[static_cast<std::size_t>(gi)].edges) {
      fail[static_cast<std::size_t>(e)] = 1;
    }
  }
  failed_group_count_ = static_cast<int>(groups.size());
  node_failed_.assign(static_cast<std::size_t>(n), 0);
  for (const int v : spec.failed_nodes) {
    if (v < 0 || v >= n) {
      throw std::out_of_range("apply_scenario: bad node id");
    }
    node_failed_[static_cast<std::size_t>(v)] = 1;
    any_node_failed_ = true;
  }
  if (any_node_failed_) {
    for (int e = 0; e < num_edges; ++e) {
      if (node_failed_[static_cast<std::size_t>(g.edge_u(e))] ||
          node_failed_[static_cast<std::size_t>(g.edge_v(e))]) {
        fail[static_cast<std::size_t>(e)] = 1;
      }
    }
  }
  if (spec.random_edge_fraction > 0.0 && num_edges > 0) {
    const int k = static_cast<int>(std::min<long long>(
        num_edges, std::llround(spec.random_edge_fraction * num_edges)));
    Rng rng(spec.seed);
    for (const int e : rng.sample_without_replacement(num_edges, k)) {
      fail[static_cast<std::size_t>(e)] = 1;
    }
  }
  // Perturb only the edges whose working capacity actually changes, and
  // remember their unperturbed values: clear_scenario() repairs from this
  // list in O(affected arcs) instead of rebuilding the session.
  for (int e = 0; e < num_edges; ++e) {
    const double base = g.edge_cap(e);
    const bool failed = fail[static_cast<std::size_t>(e)] != 0;
    const double now = failed ? 0.0 : base * spec.capacity_factor;
    if (failed) ++failed_edge_count_;
    if (now != base) {
      touched_.emplace_back(e, base);
      gk_.set_edge_capacity(e, now);
    }
  }
  drop_node_demands_ = spec.drop_failed_node_demands;
  tm_scale_ = spec.tm_scale;
  hotspot_fraction_ = spec.hotspot_fraction;
  hotspot_factor_ = spec.hotspot_factor;
  scenario_seed_ = spec.seed;
  scenario_active_ = true;
}

void ThroughputEngine::clear_scenario() {
  for (const auto& [e, base] : touched_) gk_.set_edge_capacity(e, base);
  touched_.clear();
  node_failed_.clear();
  scenario_active_ = false;
  any_node_failed_ = false;
  drop_node_demands_ = true;
  failed_edge_count_ = 0;
  failed_group_count_ = 0;
  tm_scale_ = 1.0;
  hotspot_fraction_ = 0.0;
  hotspot_factor_ = 1.0;
  scenario_seed_ = 0;
}

bool ThroughputEngine::demands_connected(const TrafficMatrix& tm) {
  const Graph& g = net_->graph;
  const auto n = static_cast<std::size_t>(g.num_nodes());
  const std::vector<double>& cap = gk_.arc_capacities();
  comp_.assign(n, -1);
  int next_comp = 0;
  for (std::size_t s = 0; s < n; ++s) {
    if (comp_[s] >= 0) continue;
    const int c = next_comp++;
    comp_[s] = c;
    bfs_queue_.clear();
    bfs_queue_.push_back(static_cast<int>(s));
    for (std::size_t head = 0; head < bfs_queue_.size(); ++head) {
      const int v = bfs_queue_[head];
      for (const int a : g.out_arcs(v)) {
        if (cap[static_cast<std::size_t>(a)] <= 0.0) continue;
        const int w = g.arc_to(a);
        if (comp_[static_cast<std::size_t>(w)] < 0) {
          comp_[static_cast<std::size_t>(w)] = c;
          bfs_queue_.push_back(w);
        }
      }
    }
  }
  for (const Demand& d : tm.demands) {
    if (comp_[static_cast<std::size_t>(d.src)] !=
        comp_[static_cast<std::size_t>(d.dst)]) {
      return false;
    }
  }
  return true;
}

ThroughputResult ThroughputEngine::solve(const TrafficMatrix& tm,
                                         const SolveOptions& opts) {
  return run(tm, opts, /*warm=*/false);
}

ThroughputResult ThroughputEngine::warm_solve(const TrafficMatrix& tm,
                                              const SolveOptions& opts) {
  return run(tm, opts, /*warm=*/true);
}

ThroughputResult ThroughputEngine::run(const TrafficMatrix& tm,
                                       const SolveOptions& opts, bool warm) {
  validate_tm(tm, *net_, /*check_hose=*/false);

  // Surge scaling first: the scenario's TM perturbation is applied to the
  // input matrix per solve — capacities (and therefore the O(affected)
  // revert list) are never involved. Uniform scaling keeps the commodity
  // pairs identical, so GK length seeding below still applies.
  const TrafficMatrix* effective = &tm;
  TrafficMatrix scaled;
  if (scenario_active_ && (tm_scale_ != 1.0 || hotspot_fraction_ > 0.0)) {
    scaled = scenario_scaled_tm(tm, tm_scale_, hotspot_fraction_,
                                hotspot_factor_, scenario_seed_);
    effective = &scaled;
  }

  // Under a scenario with failed nodes, the unservable demands are either
  // dropped (throughput over the surviving commodities) or kept (forcing
  // throughput to 0 via the disconnection check below).
  TrafficMatrix filtered;
  if (scenario_active_ && any_node_failed_ && drop_node_demands_) {
    filtered.name = effective->name;
    filtered.demands.reserve(effective->demands.size());
    for (const Demand& d : effective->demands) {
      if (!node_failed_[static_cast<std::size_t>(d.src)] &&
          !node_failed_[static_cast<std::size_t>(d.dst)]) {
        filtered.demands.push_back(d);
      }
    }
    effective = &filtered;
  }

  if (scenario_active_ &&
      (effective->demands.empty() || !demands_connected(*effective))) {
    // A demand the surviving capacities cannot serve (or no demands left at
    // all) makes 0 the exact optimum of the concurrent-flow LP.
    ThroughputResult zero;
    zero.solver = "disconnected";
    zero.stats.solver_threads = opts.solver_threads;
    return zero;
  }

  // Auto dispatch, as in compute_throughput: the dense simplex degrades
  // steeply with LP size (sources x arcs flow variables), so ExactLP is
  // only picked when the instance is genuinely small.
  long num_sources = 0;
  {
    std::vector<char> seen(static_cast<std::size_t>(net_->graph.num_nodes()),
                           0);
    for (const Demand& d : effective->demands) {
      if (!seen[static_cast<std::size_t>(d.src)]) {
        seen[static_cast<std::size_t>(d.src)] = 1;
        ++num_sources;
      }
    }
  }
  const bool use_exact =
      opts.kind == SolverKind::ExactLP ||
      (opts.kind == SolverKind::Auto &&
       net_->graph.num_nodes() <= opts.exact_max_switches &&
       lp_size_within(num_sources, net_->graph.num_arcs(),
                      opts.exact_max_lp_size));
  const auto [solve_parallel, pool] = resolve_solver_pool(opts);
  if (use_exact) {
    ExactLpSession session;
    if (scenario_active_) session.arc_caps = &gk_.arc_capacities();
    bool warm_used = false;
    if (warm && !lp_basis_.empty()) session.warm_basis = &lp_basis_;
    session.basis_out = &lp_basis_;
    session.warm_started_out = &warm_used;
    session.pool = solve_parallel
                       ? (pool != nullptr ? pool : &ThreadPool::shared())
                       : nullptr;
    ThroughputResult res = throughput_exact_lp(net_->graph, *effective,
                                               session);
    res.stats.warm_start = warm_used;
    res.stats.solver_threads = opts.solver_threads;
    return res;
  }

  GkOptions gkopts;
  gkopts.epsilon = opts.epsilon;
  gkopts.parallel = solve_parallel;
  gkopts.pool = pool;
  // Warm solves run the session dynamics (Fleischer-style tree reuse, see
  // GkOptions::reuse_trees). Cross-solve length seeding additionally kicks
  // in only when this TM routes the same commodity pairs as the previous
  // solve (failure scenarios, scaled demands): across *different* TMs the
  // previous bottleneck shape misleads more than it helps — empirically it
  // inflates trivially-converging instances by orders of magnitude.
  gkopts.reuse_trees = warm;
  std::uint64_t fp = 0x9e3779b97f4a7c15ULL;
  for (const Demand& d : effective->demands) {
    fp += mix_seed(static_cast<std::uint64_t>(d.src),
                   static_cast<std::uint64_t>(d.dst));
  }
  const bool seed_lengths = warm && fp == gk_tm_fingerprint_;
  const Timer timer;
  const GkResult r = gk_.solve(*effective, gkopts, seed_lengths);
  gk_tm_fingerprint_ = fp;
  static const bool debug = [] {
    const char* s = std::getenv("TOPOBENCH_DEBUG");
    return s != nullptr && s[0] == '1';
  }();
  if (debug) {
    std::fprintf(stderr,
                 "[gk] %-28s tm=%-12s flows=%-6zu phases=%-7ld gap=%.3f "
                 "t=%.4f warm=%d %.2fs\n",
                 net_->name.c_str(), effective->name.c_str(),
                 effective->num_flows(), r.phases,
                 r.throughput > 0 ? r.upper_bound / r.throughput - 1.0 : -1.0,
                 r.throughput, r.warm_started ? 1 : 0, timer.seconds());
  }
  ThroughputResult res;
  res.throughput = r.throughput;
  res.upper_bound = r.upper_bound;
  res.solver = "garg-konemann";
  res.stats.phases = r.phases;
  res.stats.dijkstras = r.dijkstras;
  // "Warm" records that the solve ran in the session mode (tree reuse,
  // plus length seeding when the commodity fingerprint matched).
  res.stats.warm_start = warm;
  res.stats.solver_threads = opts.solver_threads;
  return res;
}

std::vector<FleetCell> ScenarioFleet::evaluate(
    const TrafficMatrix& tm, const std::vector<ScenarioSpec>& specs,
    const SolveOptions& opts, bool parallel_cells) {
  std::vector<FleetCell> out(specs.size());
  if (specs.empty()) return out;
  // One cold baseline per batch; it is bitwise the baseline every
  // one-at-a-time degraded_throughput call would compute for this TM.
  ThroughputEngine base(*net_);
  const ThroughputResult baseline = base.solve(tm, opts);
  // Each scenario gets a fresh fork of the intact baseline session, so its
  // warm degraded solve seeds exactly as a one-at-a-time evaluation would —
  // cells are independent, making the batch order- and thread-invariant.
  const auto eval_one = [&](std::size_t i) {
    const std::unique_ptr<ThroughputEngine> worker = base.fork_session();
    worker->apply_scenario(specs[i]);
    FleetCell& cell = out[i];
    cell.baseline = baseline.throughput;
    cell.result = worker->warm_solve(tm, opts);
    cell.failed_links = worker->failed_edge_count();
    cell.failed_groups = worker->failed_group_count();
    cell.drop = cell.baseline > 0.0
                    ? 1.0 - cell.result.throughput / cell.baseline
                    : 0.0;
  };
  ThreadPool& pool = ThreadPool::shared();
  if (parallel_cells && opts.parallel && specs.size() > 1 && pool.size() > 1) {
    pool.parallel_for(0, specs.size(), eval_one);
  } else {
    for (std::size_t i = 0; i < specs.size(); ++i) eval_one(i);
  }
  return out;
}

}  // namespace tb::mcf
