#include "mcf/routing.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

#include "graph/algorithms.h"

namespace tb::mcf {
namespace {

enum class Split { SinglePath, Ecmp };

/// Route `inject[v]` units from every node v toward destination `t` along
/// the shortest-path DAG (distances measured TO t), adding to arc_load.
/// SinglePath forwards everything to the lowest-id downhill neighbour;
/// Ecmp splits evenly across all downhill neighbours.
void route_to_destination(const Graph& g, int t,
                          const std::vector<double>& inject, Split split,
                          std::vector<double>& arc_load) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  const std::vector<int> dist = bfs_distances(g, t);  // dist TO t (undirected)
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&dist](int a, int b) {
    return dist[static_cast<std::size_t>(a)] > dist[static_cast<std::size_t>(b)];
  });

  std::vector<double> at(inject);
  for (const int v : order) {
    if (v == t) continue;
    const double amount = at[static_cast<std::size_t>(v)];
    if (amount <= 0.0) continue;
    at[static_cast<std::size_t>(v)] = 0.0;
    if (dist[static_cast<std::size_t>(v)] == kUnreachable) {
      throw std::logic_error("route_to_destination: disconnected injection");
    }
    // Downhill out-arcs of v.
    int count = 0;
    int first_arc = -1;
    int first_nbr = g.num_nodes();
    for (const int a : g.out_arcs(v)) {
      const int w = g.arc_to(a);
      if (dist[static_cast<std::size_t>(w)] ==
          dist[static_cast<std::size_t>(v)] - 1) {
        ++count;
        if (w < first_nbr) {
          first_nbr = w;
          first_arc = a;
        }
      }
    }
    assert(count > 0);
    if (split == Split::SinglePath) {
      arc_load[static_cast<std::size_t>(first_arc)] += amount;
      at[static_cast<std::size_t>(first_nbr)] += amount;
    } else {
      const double share = amount / count;
      for (const int a : g.out_arcs(v)) {
        const int w = g.arc_to(a);
        if (dist[static_cast<std::size_t>(w)] ==
            dist[static_cast<std::size_t>(v)] - 1) {
          arc_load[static_cast<std::size_t>(a)] += share;
          at[static_cast<std::size_t>(w)] += share;
        }
      }
    }
  }
}

RoutingResult finish(const Graph& g, std::vector<double> arc_load) {
  RoutingResult res;
  for (int a = 0; a < g.num_arcs(); ++a) {
    res.max_congestion =
        std::max(res.max_congestion,
                 arc_load[static_cast<std::size_t>(a)] / g.arc_cap(a));
  }
  res.throughput =
      res.max_congestion > 0.0 ? 1.0 / res.max_congestion : 0.0;
  res.arc_load = std::move(arc_load);
  return res;
}

RoutingResult shortest_path_scheme(const Graph& g, const TrafficMatrix& tm,
                                   Split split) {
  assert(g.finalized());
  const auto n = static_cast<std::size_t>(g.num_nodes());
  std::vector<double> arc_load(static_cast<std::size_t>(g.num_arcs()), 0.0);
  // Group demands by destination; one DAG routing pass per destination.
  std::vector<std::vector<std::pair<int, double>>> by_dst(n);
  for (const Demand& d : tm.demands) {
    if (d.src != d.dst && d.amount > 0.0) {
      by_dst[static_cast<std::size_t>(d.dst)].emplace_back(d.src, d.amount);
    }
  }
  std::vector<double> inject(n, 0.0);
  for (int t = 0; t < g.num_nodes(); ++t) {
    if (by_dst[static_cast<std::size_t>(t)].empty()) continue;
    std::fill(inject.begin(), inject.end(), 0.0);
    for (const auto& [s, amount] : by_dst[static_cast<std::size_t>(t)]) {
      inject[static_cast<std::size_t>(s)] += amount;
    }
    route_to_destination(g, t, inject, split, arc_load);
  }
  return finish(g, std::move(arc_load));
}

}  // namespace

RoutingResult single_path_throughput(const Graph& g, const TrafficMatrix& tm) {
  return shortest_path_scheme(g, tm, Split::SinglePath);
}

RoutingResult ecmp_throughput(const Graph& g, const TrafficMatrix& tm) {
  return shortest_path_scheme(g, tm, Split::Ecmp);
}

RoutingResult vlb_throughput(const Graph& g, const TrafficMatrix& tm) {
  assert(g.finalized());
  const auto n = static_cast<std::size_t>(g.num_nodes());
  const double dn = static_cast<double>(g.num_nodes());
  std::vector<double> row(n, 0.0);
  std::vector<double> col(n, 0.0);
  for (const Demand& d : tm.demands) {
    if (d.src == d.dst || d.amount <= 0.0) continue;
    row[static_cast<std::size_t>(d.src)] += d.amount;
    col[static_cast<std::size_t>(d.dst)] += d.amount;
  }

  std::vector<double> arc_load(static_cast<std::size_t>(g.num_arcs()), 0.0);
  std::vector<double> inject(n, 0.0);
  // Stage 1: every source spreads rowsum/n to each intermediate w; per
  // intermediate w this is an all-sources -> w ECMP pass.
  // Stage 2: every intermediate forwards colsum(t)/n to t; per destination
  // t this is an all-intermediates -> t ECMP pass.
  for (int w = 0; w < g.num_nodes(); ++w) {
    for (std::size_t v = 0; v < n; ++v) {
      inject[v] = row[v] / dn;
    }
    inject[static_cast<std::size_t>(w)] = row[static_cast<std::size_t>(w)] / dn;
    route_to_destination(g, w, inject, Split::Ecmp, arc_load);
  }
  for (int t = 0; t < g.num_nodes(); ++t) {
    if (col[static_cast<std::size_t>(t)] <= 0.0) continue;
    const double share = col[static_cast<std::size_t>(t)] / dn;
    std::fill(inject.begin(), inject.end(), share);
    inject[static_cast<std::size_t>(t)] = 0.0;
    route_to_destination(g, t, inject, Split::Ecmp, arc_load);
  }
  return finish(g, std::move(arc_load));
}

}  // namespace tb::mcf
