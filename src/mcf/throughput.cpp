#include "mcf/throughput.h"

#include <map>
#include <stdexcept>
#include <vector>

#include "graph/algorithms.h"
#include "lp/simplex.h"
#include "mcf/engine.h"

namespace tb::mcf {

ThroughputResult throughput_exact_lp(const Graph& g, const TrafficMatrix& tm) {
  return throughput_exact_lp(g, tm, ExactLpSession{});
}

ThroughputResult throughput_exact_lp(const Graph& g, const TrafficMatrix& tm,
                                     const ExactLpSession& session) {
  if (!g.finalized()) throw std::logic_error("throughput_exact_lp: graph not finalized");
  const int n = g.num_nodes();
  const int num_arcs = g.num_arcs();
  if (session.arc_caps != nullptr &&
      session.arc_caps->size() != static_cast<std::size_t>(num_arcs)) {
    throw std::invalid_argument("throughput_exact_lp: arc_caps size mismatch");
  }

  // Aggregate demands by source: D[s][v] = demand s -> v.
  std::map<int, std::map<int, double>> by_source;
  for (const Demand& d : tm.demands) {
    if (d.src != d.dst && d.amount > 0.0) by_source[d.src][d.dst] += d.amount;
  }
  if (by_source.empty()) {
    throw std::invalid_argument("throughput_exact_lp: no demands");
  }

  // Variables: t, then f[s][a] per source s and arc a.
  lp::Problem prob;
  prob.maximize = true;
  const int t_var = prob.add_var(1.0);
  std::map<int, int> base_of_source;  // source -> first flow-variable index
  for (const auto& [s, sinks] : by_source) {
    (void)sinks;
    base_of_source[s] = prob.num_vars;
    for (int a = 0; a < num_arcs; ++a) prob.add_var(0.0);
  }

  // Capacity rows: sum_s f[s][a] <= c(a) (the session's working capacity
  // when one is active — a failed arc's row pins its flow to 0).
  for (int a = 0; a < num_arcs; ++a) {
    lp::Row row;
    row.sense = lp::Sense::LE;
    row.rhs = session.arc_caps != nullptr
                  ? (*session.arc_caps)[static_cast<std::size_t>(a)]
                  : g.arc_cap(a);
    for (const auto& [s, base] : base_of_source) {
      (void)s;
      row.terms.emplace_back(base + a, 1.0);
    }
    prob.add_row(std::move(row));
  }

  // Conservation: for each source s and node v != s,
  //   inflow(v) - outflow(v) - t * D(s, v) = 0.
  // (Conservation at s itself is implied by the sum of the others.)
  for (const auto& [s, sinks] : by_source) {
    const int base = base_of_source[s];
    for (int v = 0; v < n; ++v) {
      if (v == s) continue;
      lp::Row row;
      row.sense = lp::Sense::EQ;
      row.rhs = 0.0;
      for (const int a : g.out_arcs(v)) {
        row.terms.emplace_back(base + Graph::reverse_arc(a), 1.0);  // inflow
        row.terms.emplace_back(base + a, -1.0);                     // outflow
      }
      const auto it = sinks.find(v);
      if (it != sinks.end()) {
        row.terms.emplace_back(t_var, -it->second);
      }
      prob.add_row(std::move(row));
    }
  }

  lp::Options lopts;
  lopts.warm_basis = session.warm_basis;
  lopts.pool = session.pool;
  const lp::Result sol = lp::solve(prob, lopts);
  if (sol.status != lp::Status::Optimal) {
    throw std::runtime_error(std::string("throughput_exact_lp: LP status ") +
                             lp::status_name(sol.status));
  }
  if (session.basis_out != nullptr) *session.basis_out = sol.basis;
  if (session.warm_started_out != nullptr) {
    *session.warm_started_out = sol.warm_started;
  }
  ThroughputResult res;
  res.throughput = sol.x[static_cast<std::size_t>(t_var)];
  res.upper_bound = res.throughput;
  res.solver = "exact-lp";
  res.stats.pivots = sol.iterations;
  return res;
}

double volumetric_upper_bound(const Graph& g, const TrafficMatrix& tm) {
  double weighted_len = 0.0;
  std::map<int, std::vector<int>> dist_cache;
  for (const Demand& d : tm.demands) {
    auto it = dist_cache.find(d.src);
    if (it == dist_cache.end()) {
      it = dist_cache.emplace(d.src, bfs_distances(g, d.src)).first;
    }
    const int hops = it->second[static_cast<std::size_t>(d.dst)];
    if (hops == kUnreachable) {
      throw std::logic_error("volumetric_upper_bound: disconnected demand");
    }
    weighted_len += d.amount * hops;
  }
  if (weighted_len <= 0.0) throw std::invalid_argument("volumetric bound: no demand");
  return g.total_capacity() / weighted_len;
}

ThroughputResult compute_throughput(const Network& net, const TrafficMatrix& tm,
                                    const SolveOptions& opts) {
  // One-shot session: all preprocessing (dispatch, commodity grouping,
  // solver buffers) lives in the engine; sweeps over a fixed topology
  // should construct their own ThroughputEngine and reuse it.
  ThroughputEngine engine(net);
  return engine.solve(tm, opts);
}

}  // namespace tb::mcf
