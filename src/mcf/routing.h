// Routing-scheme throughput models (paper §V). The paper's headline metric
// uses *optimal* multipath flow routing; it argues that evaluations under
// restricted schemes (single-path routing in Yuan et al. [47]) measure the
// routing, not the topology. This module provides the standard schemes so
// that gap can be quantified:
//
//  * single shortest path — per-destination BFS tree (deterministic
//    lowest-id tie-break), every demand on one path;
//  * ECMP — per-destination shortest-path DAG with even per-hop splitting
//    (the data-center standard practice the paper cites);
//  * VLB — Valiant load balancing: each demand split 1/n via every
//    intermediate node, each leg routed with ECMP (the constructive
//    routing behind Theorem 2's factor-2 bound).
//
// Throughput of a scheme = 1 / max-link-congestion when the TM is routed
// exactly as the scheme prescribes. Always <= the optimal LP value.
#pragma once

#include <vector>

#include "graph/graph.h"
#include "tm/traffic_matrix.h"

namespace tb::mcf {

struct RoutingResult {
  double throughput = 0.0;        ///< 1 / max congestion at unit TM scale
  double max_congestion = 0.0;    ///< of the unscaled TM
  std::vector<double> arc_load;   ///< unscaled per-arc load
};

RoutingResult single_path_throughput(const Graph& g, const TrafficMatrix& tm);
RoutingResult ecmp_throughput(const Graph& g, const TrafficMatrix& tm);
RoutingResult vlb_throughput(const Graph& g, const TrafficMatrix& tm);

}  // namespace tb::mcf
