// Throughput of (network, TM) — the paper's core metric (§II-A): the
// maximum t such that T*t admits a feasible multicommodity flow.
//
// Two engines, selected by SolverKind:
//  * ExactLP      — the source-aggregated edge-flow LP solved by our
//                   revised simplex. Exact, but the dense simplex degrades
//                   steeply with LP size (sources x arcs flow variables).
//  * GargKonemann — (1-eps)-approximation with a certified dual gap;
//                   scales to thousands of switches.
// SolverKind::Auto (the default) picks ExactLP only when the instance is
// genuinely small — at most `exact_max_switches` switches (36 by default)
// AND sources*arcs at most `exact_max_lp_size` (4096) — and GK otherwise.
#pragma once

#include <string>
#include <vector>

#include "tm/traffic_matrix.h"
#include "topo/network.h"

namespace tb {
class ThreadPool;
}  // namespace tb

namespace tb::mcf {

enum class SolverKind { Auto, ExactLP, GargKonemann };

struct SolveOptions {
  SolverKind kind = SolverKind::Auto;
  double epsilon = 0.03;        ///< GK certified gap target
  int exact_max_switches = 36;  ///< Auto: LP only at or below this size...
  long exact_max_lp_size = 4096;  ///< ...and only if sources*arcs fits this
  bool parallel = true;
  /// Intra-solve worker threads: 0 runs on the process-shared pool
  /// (TOPOBENCH_THREADS), 1 forces the serial path, N > 1 uses a
  /// process-shared dedicated N-worker pool. By the determinism contracts
  /// (garg_konemann.h, lp::Options::pool) every setting produces bitwise
  /// identical results — the knob only chooses which threads do the work.
  /// The experiment runner seeds it from TOPOBENCH_SOLVER_THREADS.
  int solver_threads = 0;
};

/// Per-solver work counters. The two engines do fundamentally different
/// work — simplex pivots and GK phases are not comparable — so each gets
/// its own field instead of one overloaded "iterations" number; fields of
/// the engine that did not run stay 0.
struct SolverStats {
  long pivots = 0;      ///< revised-simplex pivots (ExactLP)
  long phases = 0;      ///< GK multiplicative-weights phases
  long dijkstras = 0;   ///< GK shortest-path-tree computations
  bool warm_start = false;  ///< solve was seeded from a previous solution
  /// The solve's SolveOptions::solver_threads configuration (0 = shared
  /// pool). The requested value, not a measured worker count, so recorded
  /// results stay byte-identical across machines and pool sizes.
  int solver_threads = 0;
};

struct ThroughputResult {
  double throughput = 0.0;   ///< certified achievable concurrent-flow value
  double upper_bound = 0.0;  ///< certified upper bound (== throughput if exact)
  std::string solver;        ///< "exact-lp", "garg-konemann", "disconnected"
  SolverStats stats;         ///< work counters of the engine that ran
};

/// Auto-dispatch guard: does an LP with `num_sources` x `num_arcs` flow
/// variables fit within `max_lp_size`? The product is formed in 64 bits —
/// `long` x `int` arithmetic overflows on ILP32 targets for large counts,
/// which would silently select ExactLP on huge instances.
inline bool lp_size_within(long num_sources, int num_arcs,
                           long max_lp_size) noexcept {
  return static_cast<long long>(num_sources) *
             static_cast<long long>(num_arcs) <=
         static_cast<long long>(max_lp_size);
}

/// Compute throughput of `tm` on the switch graph of `net`. One-shot form:
/// constructs a ThroughputEngine (see mcf/engine.h) for the single solve;
/// sweeps over a fixed topology should hold their own engine instead.
ThroughputResult compute_throughput(const Network& net, const TrafficMatrix& tm,
                                    const SolveOptions& opts = {});

/// Session hooks for the exact LP, used by ThroughputEngine: degraded
/// per-arc capacities (scenario layer) and simplex basis reuse between
/// nearby solves. All pointers are optional and may be null.
struct ExactLpSession {
  /// Working per-arc capacities overriding the graph's own (index = arc
  /// id; 0 forces the arc unused). Size must be num_arcs when set.
  const std::vector<double>* arc_caps = nullptr;
  /// Candidate starting basis from a previous same-shaped solve; tried
  /// opportunistically (see lp::Options::warm_basis).
  const std::vector<int>* warm_basis = nullptr;
  /// When set, receives the optimal basis for reuse by the next solve.
  std::vector<int>* basis_out = nullptr;
  /// When set, receives whether the solve actually started warm.
  bool* warm_started_out = nullptr;
  /// Pool for the simplex's deterministic parallel scans (see
  /// lp::Options::pool); null keeps them serial.
  ThreadPool* pool = nullptr;
};

/// Exact LP on a bare graph (used by tests and the theory benches).
ThroughputResult throughput_exact_lp(const Graph& g, const TrafficMatrix& tm);

/// Exact LP with engine session hooks (capacity override + basis reuse).
ThroughputResult throughput_exact_lp(const Graph& g, const TrafficMatrix& tm,
                                     const ExactLpSession& session);

/// Volumetric upper bound from §II-B: total capacity divided by total
/// demand-weighted shortest-path length. Any feasible throughput is <= this.
double volumetric_upper_bound(const Graph& g, const TrafficMatrix& tm);

/// Theorem 2 lower bound: any hose TM is feasible at >= T_A2A / 2. The
/// caller supplies T_A2A (throughput of the all-to-all TM on `net`).
inline double theorem2_lower_bound(double a2a_throughput) {
  return a2a_throughput / 2.0;
}

}  // namespace tb::mcf
