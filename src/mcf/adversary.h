// Adversarial worst-case TM search (paper §II-C): the longest-matching
// heuristic finds a *near*-worst matching; this module promotes the
// examples-only refinement loop into the engine as a maximizing scenario.
// A deterministic seeded local search over host matchings — starting from
// the longest-matching candidate and seeded random restarts, proposing
// pair swaps and keeping strict throughput decreases — reports the worst
// matching TM found and its throughput. Every candidate is solved on one
// ThroughputEngine session (warm-start chaining), so the search costs far
// less than independent compute_throughput calls.
//
// Determinism: the proposal stream is Rng(mix_seed(seed, restart)); ties
// never move (strict-decrease acceptance); aggregation orders demands by
// (src, dst). Same network + options => bitwise identical result.
#pragma once

#include <cstdint>

#include "mcf/throughput.h"
#include "tm/traffic_matrix.h"
#include "topo/network.h"

namespace tb::mcf {

struct WorstCaseOptions {
  /// Swap proposals per restart (hill-climb length).
  int iterations = 64;
  /// Seeded random-restart count after the longest-matching candidate.
  int restarts = 2;
  std::uint64_t seed = 1;
  /// Solver configuration for every candidate evaluation.
  SolveOptions solve;
};

struct WorstCaseResult {
  TrafficMatrix tm;          ///< worst matching TM found (switch-aggregated)
  double throughput = 0.0;   ///< its throughput under opts.solve
  double initial = 0.0;      ///< throughput of the longest-matching candidate
  long solves = 0;           ///< candidate evaluations performed
  long improvements = 0;     ///< accepted strict decreases
};

/// Search the space of host matchings (each server slot sends 1 unit to a
/// permuted slot; intra-switch pairs drop out on aggregation) for a
/// minimum-throughput TM. Throws std::invalid_argument on negative
/// iterations/restarts or a network without servers.
WorstCaseResult worst_case_matching(const Network& net,
                                    const WorstCaseOptions& opts = {});

}  // namespace tb::mcf
