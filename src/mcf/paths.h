// Path utilities: Yen's k-shortest paths, path-restricted throughput LP and
// the subflow-counting throughput estimator of Yuan et al. [48].
//
// Fig 15 replicates [48]'s fat-tree-vs-Jellyfish comparison: flows are split
// into subflows over a fixed path set (we use k shortest paths per
// commodity as the LLSKR-style path set; see DESIGN.md). Throughput is then
// measured two ways:
//  * counting estimate — each subflow's rate is the inverse of the maximum
//    number of subflows sharing a link on its path ([48]'s method);
//  * exact path-restricted LP — maximize the minimum flow subject to link
//    capacities, flow split arbitrarily over the same path set.
// The gap between the two is Comparison 1 vs Comparison 2 of Fig 15.
#pragma once

#include <vector>

#include "graph/graph.h"
#include "tm/traffic_matrix.h"

namespace tb::mcf {

/// A path is the sequence of arc ids from source to destination.
using Path = std::vector<int>;

/// Yen's algorithm, hop-count metric, loopless paths. Returns up to k paths
/// in nondecreasing length order (fewer if the graph has fewer).
std::vector<Path> k_shortest_paths(const Graph& g, int src, int dst, int k);

struct PathSet {
  Demand demand;            ///< the commodity
  std::vector<Path> paths;  ///< allowed paths for it
};

/// Build per-commodity path sets with k shortest paths each.
std::vector<PathSet> build_path_sets(const Graph& g, const TrafficMatrix& tm,
                                     int k);

/// Exact max-concurrent-flow restricted to the given path sets (simplex).
/// Returns the throughput scaling t.
double path_restricted_throughput(const Graph& g,
                                  const std::vector<PathSet>& sets);

struct CountingEstimate {
  double average = 0.0;          ///< mean per-flow throughput ([48] metric)
  double minimum = 0.0;          ///< min per-flow throughput
  std::vector<double> per_flow;  ///< one entry per commodity
};

/// [48]-style estimate: demand split evenly across a commodity's paths;
/// each subflow's rate = 1 / (max subflow count over its links).
CountingEstimate counting_throughput(const Graph& g,
                                     const std::vector<PathSet>& sets);

}  // namespace tb::mcf
