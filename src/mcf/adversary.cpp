#include "mcf/adversary.h"

#include <map>
#include <stdexcept>
#include <utility>
#include <vector>

#include "mcf/engine.h"
#include "tm/synthetic.h"
#include "util/rng.h"

namespace tb::mcf {

namespace {

/// Aggregate the slot permutation into a switch-level TM: slot i (attached
/// to slot_node[i]) sends 1 unit to slot perm[i]'s switch; intra-switch
/// pairs carry no network traffic and drop out. std::map iteration gives
/// the canonical (src, dst) demand order.
TrafficMatrix tm_from_permutation(const std::vector<int>& slot_node,
                                  const std::vector<int>& perm) {
  std::map<std::pair<int, int>, double> agg;
  for (std::size_t i = 0; i < perm.size(); ++i) {
    const int u = slot_node[i];
    const int v = slot_node[static_cast<std::size_t>(perm[i])];
    if (u != v) agg[{u, v}] += 1.0;
  }
  TrafficMatrix tm;
  tm.name = "WorstCase";
  tm.demands.reserve(agg.size());
  for (const auto& [key, amount] : agg) {
    tm.demands.push_back({key.first, key.second, amount});
  }
  return tm;
}

}  // namespace

WorstCaseResult worst_case_matching(const Network& net,
                                    const WorstCaseOptions& opts) {
  if (opts.iterations < 0 || opts.restarts < 0) {
    throw std::invalid_argument(
        "worst_case_matching: negative iterations/restarts");
  }
  // One slot per attached server: the hose-model unit of the matching.
  std::vector<int> slot_node;
  for (int v = 0; v < net.graph.num_nodes(); ++v) {
    for (int s = 0; s < net.servers[static_cast<std::size_t>(v)]; ++s) {
      slot_node.push_back(v);
    }
  }
  if (slot_node.size() < 2) {
    throw std::invalid_argument("worst_case_matching: network needs servers");
  }
  const int slots = static_cast<int>(slot_node.size());

  ThroughputEngine engine(net);
  WorstCaseResult out;

  // The longest-matching heuristic is the published near-worst candidate;
  // it anchors the search and is the reported baseline.
  out.tm = longest_matching(net);
  out.initial = engine.solve(out.tm, opts.solve).throughput;
  out.throughput = out.initial;
  ++out.solves;

  for (int r = 0; r < opts.restarts; ++r) {
    Rng rng(mix_seed(opts.seed, static_cast<std::uint64_t>(r)));
    std::vector<int> perm = rng.permutation(slots);
    TrafficMatrix cur = tm_from_permutation(slot_node, perm);
    if (cur.demands.empty()) continue;  // all slots mapped intra-switch
    double cur_thr = engine.warm_solve(cur, opts.solve).throughput;
    ++out.solves;
    if (cur_thr < out.throughput) {
      out.throughput = cur_thr;
      out.tm = cur;
      ++out.improvements;
    }
    for (int it = 0; it < opts.iterations; ++it) {
      const int i = static_cast<int>(rng.next_u64(
          static_cast<std::uint64_t>(slots)));
      const int j = static_cast<int>(rng.next_u64(
          static_cast<std::uint64_t>(slots)));
      if (i == j) continue;
      std::swap(perm[static_cast<std::size_t>(i)],
                perm[static_cast<std::size_t>(j)]);
      TrafficMatrix cand = tm_from_permutation(slot_node, perm);
      if (cand.demands.empty()) {
        std::swap(perm[static_cast<std::size_t>(i)],
                  perm[static_cast<std::size_t>(j)]);
        continue;
      }
      const double thr = engine.warm_solve(cand, opts.solve).throughput;
      ++out.solves;
      // Strict decrease only: ties and regressions revert the swap, keeping
      // the accepted trajectory independent of float noise in equal solves.
      if (thr < cur_thr) {
        cur_thr = thr;
        cur = std::move(cand);
        ++out.improvements;
        if (cur_thr < out.throughput) {
          out.throughput = cur_thr;
          out.tm = cur;
        }
      } else {
        std::swap(perm[static_cast<std::size_t>(i)],
                  perm[static_cast<std::size_t>(j)]);
      }
    }
  }
  // The anchor may survive the whole search; the result is still the
  // search's answer, so it carries the search's name either way.
  out.tm.name = "WorstCase";
  return out;
}

}  // namespace tb::mcf
