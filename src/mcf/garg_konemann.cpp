#include "mcf/garg_konemann.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <queue>
#include <stdexcept>

#include "util/thread_pool.h"

namespace tb::mcf {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Dijkstra that stops once all of `targets` are settled (big win for
/// matching TMs where each source has a single sink). Nodes not settled
/// keep dist = +inf and parent = -1; every settled sink's tree path passes
/// only through settled nodes, which is all the routing needs. Failed arcs
/// carry length = +inf and therefore never relax anything.
void dijkstra_to_targets(const Graph& g, int src,
                         const std::vector<double>& len,
                         const std::vector<std::pair<int, double>>& targets,
                         std::vector<double>& dist, std::vector<int>& parent,
                         std::vector<double>& tentative,
                         std::vector<char>& is_target) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  dist.assign(n, kInf);       // exact distance once settled
  tentative.assign(n, kInf);  // heap keys
  parent.assign(n, -1);
  is_target.assign(n, 0);
  std::size_t remaining = 0;
  for (const auto& [t, dem] : targets) {
    (void)dem;
    if (!is_target[static_cast<std::size_t>(t)]) {
      is_target[static_cast<std::size_t>(t)] = 1;
      ++remaining;
    }
  }
  using Entry = std::pair<double, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  tentative[static_cast<std::size_t>(src)] = 0.0;
  heap.emplace(0.0, src);
  while (!heap.empty() && remaining > 0) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (dist[static_cast<std::size_t>(u)] < kInf) continue;  // settled
    dist[static_cast<std::size_t>(u)] = d;
    if (is_target[static_cast<std::size_t>(u)]) --remaining;
    for (const int a : g.out_arcs(u)) {
      const int v = g.arc_to(a);
      if (dist[static_cast<std::size_t>(v)] < kInf) continue;
      const double nd = d + len[static_cast<std::size_t>(a)];
      if (nd < tentative[static_cast<std::size_t>(v)]) {
        tentative[static_cast<std::size_t>(v)] = nd;
        parent[static_cast<std::size_t>(v)] = a;
        heap.emplace(nd, v);
      }
    }
  }
}

}  // namespace

GkSolver::GkSolver(const Graph& g) : g_(&g) {
  assert(g.finalized());
  const int num_arcs = g.num_arcs();
  cap_.resize(static_cast<std::size_t>(num_arcs));
  for (int a = 0; a < num_arcs; ++a) {
    cap_[static_cast<std::size_t>(a)] = g.arc_cap(a);
  }
}

void GkSolver::set_edge_capacity(int e, double cap) {
  if (e < 0 || e >= g_->num_edges()) {
    throw std::out_of_range("GkSolver::set_edge_capacity: bad edge id");
  }
  if (cap < 0.0) {
    throw std::invalid_argument("GkSolver::set_edge_capacity: cap < 0");
  }
  cap_[static_cast<std::size_t>(2 * e)] = cap;
  cap_[static_cast<std::size_t>(2 * e + 1)] = cap;
}

double GkSolver::edge_capacity(int e) const {
  if (e < 0 || e >= g_->num_edges()) {
    throw std::out_of_range("GkSolver::edge_capacity: bad edge id");
  }
  return cap_[static_cast<std::size_t>(2 * e)];
}

void GkSolver::reset_capacities() {
  for (int a = 0; a < g_->num_arcs(); ++a) {
    cap_[static_cast<std::size_t>(a)] = g_->arc_cap(a);
  }
}

double GkSolver::bidirectional_path(int s, int t, double vol,
                                    std::vector<std::pair<int, double>>&
                                        arcs_out,
                                    Scratch& sc) {
  const Graph& g = *g_;
  const auto n = static_cast<std::size_t>(g.num_nodes());
  auto& bi_dist_ = sc.bi_dist;
  auto& bi_par_ = sc.bi_par;
  auto& bi_settled_ = sc.bi_settled;
  for (int side = 0; side < 2; ++side) {
    bi_dist_[side].assign(n, kInf);
    bi_par_[side].assign(n, -1);
    bi_settled_[side].assign(n, 0);
  }
  using Entry = std::pair<double, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap[2];
  bi_dist_[0][static_cast<std::size_t>(s)] = 0.0;
  bi_dist_[1][static_cast<std::size_t>(t)] = 0.0;
  heap[0].emplace(0.0, s);
  heap[1].emplace(0.0, t);
  double mu = kInf;  // best s->v->t value seen so far
  int meet = -1;
  while (!heap[0].empty() && !heap[1].empty()) {
    // Lazy deletion: drop already-settled heap tops before reading minima.
    for (int side = 0; side < 2; ++side) {
      while (!heap[side].empty() &&
             bi_settled_[side][static_cast<std::size_t>(
                 heap[side].top().second)]) {
        heap[side].pop();
      }
    }
    if (heap[0].empty() || heap[1].empty()) break;
    if (heap[0].top().first + heap[1].top().first >= mu) break;  // proven
    const int side = heap[0].top().first <= heap[1].top().first ? 0 : 1;
    const auto [d, u] = heap[side].top();
    heap[side].pop();
    if (bi_settled_[side][static_cast<std::size_t>(u)]) continue;
    bi_settled_[side][static_cast<std::size_t>(u)] = 1;
    for (const int a : g.out_arcs(u)) {
      const int v = g.arc_to(a);
      // Forward relaxes arc u->v; backward relaxes the arc v->u (each
      // direction carries its own length).
      const int path_arc = side == 0 ? a : Graph::reverse_arc(a);
      const double nd = d + length_[static_cast<std::size_t>(path_arc)];
      if (nd < bi_dist_[side][static_cast<std::size_t>(v)]) {
        bi_dist_[side][static_cast<std::size_t>(v)] = nd;
        bi_par_[side][static_cast<std::size_t>(v)] = path_arc;
        heap[side].emplace(nd, v);
      }
      const double other = bi_dist_[side ^ 1][static_cast<std::size_t>(v)];
      const double cand =
          bi_dist_[side][static_cast<std::size_t>(v)] + other;
      if (other < kInf && cand < mu) {
        mu = cand;
        meet = v;
      }
    }
  }
  if (meet < 0 || !(mu < kInf)) {
    throw std::runtime_error(
        "max_concurrent_flow: demand between disconnected nodes");
  }
  // Sink-to-source arc order (the TreeCache convention): the backward half
  // t..meet reversed, then the forward half meet..s in walking order.
  const std::size_t first = arcs_out.size();
  for (int v = meet; v != t;) {
    const int a = bi_par_[1][static_cast<std::size_t>(v)];  // arc v -> next
    arcs_out.emplace_back(a, vol);
    v = g.arc_to(a);
  }
  std::reverse(arcs_out.begin() + static_cast<std::ptrdiff_t>(first),
               arcs_out.end());
  for (int v = meet; v != s;) {
    const int a = bi_par_[0][static_cast<std::size_t>(v)];  // arc prev -> v
    arcs_out.emplace_back(a, vol);
    v = g.arc_from(a);
  }
  return mu;
}

GkResult GkSolver::solve(const TrafficMatrix& tm, const GkOptions& opts,
                         bool warm) {
  const Graph& g = *g_;
  const int num_arcs = g.num_arcs();
  const auto n = static_cast<std::size_t>(g.num_nodes());
  if (tm.demands.empty()) {
    throw std::invalid_argument("max_concurrent_flow: empty traffic matrix");
  }

  const auto alive = [this](int a) {
    return cap_[static_cast<std::size_t>(a)] > 0.0;
  };
  int num_alive = 0;
  for (int a = 0; a < num_arcs; ++a) {
    if (alive(a)) ++num_alive;
  }
  if (num_alive == 0) {
    throw std::invalid_argument("max_concurrent_flow: no arcs with capacity");
  }

  // Group demands by source (reusing the session's group storage).
  groups_.clear();
  {
    std::vector<int> group_of(n, -1);
    for (const Demand& d : tm.demands) {
      if (d.amount <= 0.0 || d.src == d.dst) continue;
      int& gi = group_of[static_cast<std::size_t>(d.src)];
      if (gi == -1) {
        gi = static_cast<int>(groups_.size());
        groups_.push_back({d.src, {}, 0.0});
      }
      groups_[static_cast<std::size_t>(gi)].sinks.emplace_back(d.dst, d.amount);
      groups_[static_cast<std::size_t>(gi)].out_total += d.amount;
    }
  }
  if (groups_.empty()) {
    throw std::invalid_argument("max_concurrent_flow: no routable demands");
  }

  // Pre-scale so every source's per-phase volume fits the smallest live
  // capacity (one legal GK step per arc per source visit). Throughput
  // scales back.
  double min_cap = kInf;
  for (int a = 0; a < num_arcs; ++a) {
    if (alive(a)) {
      min_cap = std::min(min_cap, cap_[static_cast<std::size_t>(a)]);
    }
  }
  double max_out = 0.0;
  for (const SourceGroup& grp : groups_) {
    max_out = std::max(max_out, grp.out_total);
  }
  const double demand_scale = max_out > min_cap ? min_cap / max_out : 1.0;

  const double eps = std::clamp(opts.epsilon, 1e-4, 0.3);
  // Multiplicative step. The classic analysis wants eps/3; since we certify
  // the primal/dual gap explicitly, a more aggressive step only affects how
  // fast the certificate closes, not its validity.
  const double eps_step = eps / 2.0;
  const double m = static_cast<double>(std::max(1, num_alive));
  const double delta = std::pow(m / (1.0 - eps_step), -1.0 / eps_step);
  const double log_scale = std::log(1.0 / delta) / std::log1p(eps_step);

  // Arc lengths. Cold start: delta/c(a). Warm start: keep the *shape* of
  // the previous solve's final lengths (they encode which arcs were the
  // bottlenecks), renormalized so the total mass D(l) = sum c(a) l(a)
  // equals the cold-start mass m*delta, then floored at the cold value so
  // no arc starts cheaper than it would cold. Any positive length function
  // is a valid start — the dual certificate holds for all of them — so
  // this only changes convergence, never correctness. Arcs failed in the
  // current capacities always get +inf (never routed); arcs that were
  // failed before but are live again fall back to the cold value.
  const bool warm_seeded = warm && has_warm_ &&
                           length_.size() == static_cast<std::size_t>(num_arcs);
  double sum_cl = 0.0;  // D(l) = sum_a c(a) * l(a) over live arcs
  if (warm_seeded) {
    double mass = 0.0;
    for (int a = 0; a < num_arcs; ++a) {
      if (!alive(a)) continue;
      const double cap = cap_[static_cast<std::size_t>(a)];
      double& len = length_[static_cast<std::size_t>(a)];
      if (!std::isfinite(len) || len <= 0.0) len = delta / cap;
      mass += cap * len;
    }
    const double rescale = m * delta / mass;
    for (int a = 0; a < num_arcs; ++a) {
      if (!alive(a)) {
        length_[static_cast<std::size_t>(a)] = kInf;
        continue;
      }
      const double cap = cap_[static_cast<std::size_t>(a)];
      const double seeded = std::max(
          length_[static_cast<std::size_t>(a)] * rescale, delta / cap);
      length_[static_cast<std::size_t>(a)] = seeded;
      sum_cl += cap * seeded;
    }
  } else {
    length_.resize(static_cast<std::size_t>(num_arcs));
    for (int a = 0; a < num_arcs; ++a) {
      if (!alive(a)) {
        length_[static_cast<std::size_t>(a)] = kInf;
        continue;
      }
      length_[static_cast<std::size_t>(a)] =
          delta / cap_[static_cast<std::size_t>(a)];
      sum_cl += delta;
    }
  }

  flow_.assign(static_cast<std::size_t>(num_arcs), 0.0);

  // Windowed primal: MWU spends its first phases "mixing" toward the
  // optimal flow pattern; the average over a recent window converges much
  // faster than the average since phase 0. Snapshots double in the classic
  // way so total memory stays O(m).
  snap_flow_.assign(static_cast<std::size_t>(num_arcs), 0.0);
  long snap_phase = 0;

  // Per-slot scratch, one slot per block position (fixed block size =>
  // the partition, and therefore the result, never depends on the pool).
  const int block = std::max(1, opts.block_size);
  scratch_.resize(static_cast<std::size_t>(block));
  for (Scratch& sc : scratch_) {
    sc.node_vol.assign(n, 0.0);  // kept zeroed between uses
    sc.order.resize(n);
    sc.cur_dist.resize(n);
  }

  // Session dynamics (reuse_trees): per-group cached routed trees and the
  // helpers that build, validate, and route along them. A cached tree's
  // per-arc volumes are fixed (each phase routes the same demands), so
  // routing a fresh-enough tree is a flat array walk with no Dijkstra.
  tree_cache_.assign(opts.reuse_trees ? groups_.size() : 0, {});
  // A tree is reusable while its paths stay within (1 + eps) of their
  // build-time shortest lengths: routing then loses at most ~eps of path
  // optimality, which shows up only in how fast the certified gap closes.
  const double stale_budget = 1.0 + eps;

  const auto build_cache = [&](std::size_t gi, Scratch& sc) {
    const SourceGroup& grp = groups_[gi];
    const std::vector<double>& dist = sc.dist;
    const std::vector<int>& parent = sc.parent;
    TreeCache& cache = tree_cache_[gi];
    cache.arcs.clear();
    cache.build_dist.resize(grp.sinks.size());
    for (std::size_t i = 0; i < grp.sinks.size(); ++i) {
      const auto& [dst, demand] = grp.sinks[i];
      (void)demand;
      if (dist[static_cast<std::size_t>(dst)] >= kInf) {
        throw std::runtime_error(
            "max_concurrent_flow: demand between disconnected nodes");
      }
      cache.build_dist[i] = dist[static_cast<std::size_t>(dst)];
    }
    // Single-sink groups never reach here (rebuild_single handles them);
    // push sink volumes up the tree in decreasing-distance order.
    assert(grp.sinks.size() > 1);
    for (const auto& [dst, demand] : grp.sinks) {
      sc.node_vol[static_cast<std::size_t>(dst)] += demand * demand_scale;
    }
    for (std::size_t v = 0; v < n; ++v) sc.order[v] = static_cast<int>(v);
    std::sort(sc.order.begin(), sc.order.end(), [&dist](int a, int b) {
      return dist[static_cast<std::size_t>(a)] >
             dist[static_cast<std::size_t>(b)];
    });
    for (std::size_t i = 0; i < n; ++i) {
      const int v = sc.order[i];
      if (v == grp.src) continue;
      const double vol = sc.node_vol[static_cast<std::size_t>(v)];
      if (vol <= 0.0) continue;
      sc.node_vol[static_cast<std::size_t>(v)] = 0.0;
      const int pa = parent[static_cast<std::size_t>(v)];
      assert(pa >= 0);
      sc.node_vol[static_cast<std::size_t>(g.arc_from(pa))] += vol;
      cache.arcs.emplace_back(pa, vol);
    }
    sc.node_vol[static_cast<std::size_t>(grp.src)] = 0.0;
    cache.valid = true;
  };

  // Tree-walk the cached arcs root-to-leaf (the build order reversed) to
  // get every sink's current path length; the tree is fresh while no sink
  // drifted past the staleness budget of its build-time shortest distance.
  const auto tree_fresh = [&](std::size_t gi, Scratch& sc) {
    const SourceGroup& grp = groups_[gi];
    const TreeCache& cache = tree_cache_[gi];
    sc.cur_dist[static_cast<std::size_t>(grp.src)] = 0.0;
    for (auto it = cache.arcs.rbegin(); it != cache.arcs.rend(); ++it) {
      const int a = it->first;
      sc.cur_dist[static_cast<std::size_t>(g.arc_to(a))] =
          sc.cur_dist[static_cast<std::size_t>(g.arc_from(a))] +
          length_[static_cast<std::size_t>(a)];
    }
    for (std::size_t i = 0; i < grp.sinks.size(); ++i) {
      if (sc.cur_dist[static_cast<std::size_t>(grp.sinks[i].first)] >
          stale_budget * cache.build_dist[i]) {
        return false;
      }
    }
    return true;
  };

  // Single-sink rebuild via bidirectional search (exact path + distance);
  // returns the build-time distance it stored.
  const auto rebuild_single = [&](std::size_t gi, Scratch& sc) {
    const SourceGroup& grp = groups_[gi];
    TreeCache& cache = tree_cache_[gi];
    cache.arcs.clear();
    cache.build_dist.resize(1);
    cache.build_dist[0] =
        bidirectional_path(grp.src, grp.sinks[0].first,
                           grp.sinks[0].second * demand_scale, cache.arcs, sc);
    cache.valid = true;
    return cache.build_dist[0];
  };

  const auto route_cached = [&](const TreeCache& cache, double& sum_cl_ref) {
    for (const auto& [a, vol] : cache.arcs) {
      flow_[static_cast<std::size_t>(a)] += vol;
      const double cap = cap_[static_cast<std::size_t>(a)];
      const double old_len = length_[static_cast<std::size_t>(a)];
      const double new_len = old_len * (1.0 + eps_step * vol / cap);
      length_[static_cast<std::size_t>(a)] = new_len;
      sum_cl_ref += cap * (new_len - old_len);
    }
  };

  GkResult res;
  res.upper_bound = kInf;
  res.warm_started = warm_seeded;
  ThreadPool& pool = opts.pool != nullptr ? *opts.pool : ThreadPool::shared();
  const bool par = opts.parallel && pool.size() > 1;

  long phase = 0;
  long dijkstras = 0;
  long next_sweep = 1;  // adaptive exact-sweep schedule (reuse mode)
  long best_window_phases = 0;
  double best_window_congestion = kInf;
  bool best_is_window = false;
  double best_gap_seen = kInf;
  long last_gap_improvement = 0;
  bool stop = false;
  while (!stop && phase < opts.max_phases) {
    double alpha = 0.0;  // sum_j demand_j * dist_l(s_j, t_j) this phase
    if (opts.reuse_trees) {
      // Session dynamics, block-parallel: a block's freshness checks and
      // tree rebuilds run against the lengths frozen at the block boundary
      // (each slot on its own scratch), then the block's routing/length
      // updates apply serially in group order — bitwise the same whether
      // the block ran serial or on the pool. No per-phase alpha — the dual
      // bound comes solely from the exact sweeps below, which keeps the
      // certificate rigorous under stale routing.
      for (std::size_t g0 = 0; g0 < groups_.size();
           g0 += static_cast<std::size_t>(block)) {
        const std::size_t g1 =
            std::min(groups_.size(), g0 + static_cast<std::size_t>(block));
        const auto prep = [&](std::size_t k) {
          const std::size_t gi = g0 + k;
          Scratch& sc = scratch_[k];
          sc.rebuilt = false;
          if (tree_cache_[gi].valid && tree_fresh(gi, sc)) return;
          if (groups_[gi].sinks.size() == 1) {
            rebuild_single(gi, sc);
          } else {
            dijkstra_to_targets(g, groups_[gi].src, length_, groups_[gi].sinks,
                                sc.dist, sc.parent, sc.tent, sc.is_target);
            build_cache(gi, sc);
          }
          sc.rebuilt = true;
        };
        if (par && g1 - g0 > 1) {
          pool.parallel_for(0, g1 - g0, prep);
        } else {
          for (std::size_t k = 0; k < g1 - g0; ++k) prep(k);
        }
        for (std::size_t k = 0; k < g1 - g0; ++k) {
          if (scratch_[k].rebuilt) ++dijkstras;
          route_cached(tree_cache_[g0 + k], sum_cl);
        }
      }
    } else {
      for (std::size_t g0 = 0; g0 < groups_.size();
           g0 += static_cast<std::size_t>(block)) {
        const std::size_t g1 =
            std::min(groups_.size(), g0 + static_cast<std::size_t>(block));
        // Dijkstras against frozen lengths (parallel when a pool exists).
        const auto run = [&](std::size_t k) {
          Scratch& sc = scratch_[k];
          dijkstra_to_targets(g, groups_[g0 + k].src, length_,
                              groups_[g0 + k].sinks, sc.dist, sc.parent,
                              sc.tent, sc.is_target);
        };
        if (par && g1 - g0 > 1) {
          pool.parallel_for(0, g1 - g0, run);
        } else {
          for (std::size_t k = 0; k < g1 - g0; ++k) run(k);
        }
        dijkstras += static_cast<long>(g1 - g0);

        // Sequential routing in source order.
        for (std::size_t k = 0; k < g1 - g0; ++k) {
          const SourceGroup& grp = groups_[g0 + k];
          Scratch& sc = scratch_[k];
          const std::vector<double>& dist = sc.dist;
          const std::vector<int>& parent = sc.parent;

          // Deposit demand at sinks; gather alpha.
          for (const auto& [dst, demand] : grp.sinks) {
            const double d_scaled = demand * demand_scale;
            if (dist[static_cast<std::size_t>(dst)] >= kInf) {
              throw std::runtime_error(
                  "max_concurrent_flow: demand between disconnected nodes");
            }
            alpha += d_scaled * dist[static_cast<std::size_t>(dst)];
            sc.node_vol[static_cast<std::size_t>(dst)] += d_scaled;
          }

          // Single-sink fast path (matching TMs): walk the parent chain.
          if (grp.sinks.size() == 1) {
            const int dst = grp.sinks[0].first;
            const double vol = sc.node_vol[static_cast<std::size_t>(dst)];
            sc.node_vol[static_cast<std::size_t>(dst)] = 0.0;
            for (int v = dst; v != grp.src;) {
              const int pa = parent[static_cast<std::size_t>(v)];
              assert(pa >= 0);
              flow_[static_cast<std::size_t>(pa)] += vol;
              const double cap = cap_[static_cast<std::size_t>(pa)];
              const double old_len = length_[static_cast<std::size_t>(pa)];
              const double new_len = old_len * (1.0 + eps_step * vol / cap);
              length_[static_cast<std::size_t>(pa)] = new_len;
              sum_cl += cap * (new_len - old_len);
              v = g.arc_from(pa);
            }
            continue;
          }

          // Push volumes up the shortest-path tree in decreasing-distance
          // order (unsettled nodes keep dist=inf and zero volume).
          for (std::size_t v = 0; v < n; ++v) sc.order[v] = static_cast<int>(v);
          std::sort(sc.order.begin(), sc.order.end(), [&dist](int a, int b) {
            return dist[static_cast<std::size_t>(a)] >
                   dist[static_cast<std::size_t>(b)];
          });
          for (std::size_t i = 0; i < n; ++i) {
            const int v = sc.order[i];
            if (v == grp.src) continue;
            const double vol = sc.node_vol[static_cast<std::size_t>(v)];
            if (vol <= 0.0) continue;
            sc.node_vol[static_cast<std::size_t>(v)] = 0.0;
            const int pa = parent[static_cast<std::size_t>(v)];
            assert(pa >= 0);
            const int u = g.arc_from(pa);
            sc.node_vol[static_cast<std::size_t>(u)] += vol;
            flow_[static_cast<std::size_t>(pa)] += vol;
            const double cap = cap_[static_cast<std::size_t>(pa)];
            const double old_len = length_[static_cast<std::size_t>(pa)];
            const double new_len = old_len * (1.0 + eps_step * vol / cap);
            length_[static_cast<std::size_t>(pa)] = new_len;
            sum_cl += cap * (new_len - old_len);
          }
          sc.node_vol[static_cast<std::size_t>(grp.src)] = 0.0;
        }
      }
    }

    ++phase;
    // Dual: alpha used in-phase lengths <= end-of-phase lengths, so
    // D(l_end)/alpha upper-bounds the scaled OPT — but loosely, since D
    // grows during the phase. Every few phases, recompute alpha exactly
    // against the frozen end-of-phase lengths (one extra Dijkstra sweep)
    // for a tight, still-valid certificate.
    if (alpha > 0.0) {
      res.upper_bound = std::min(res.upper_bound, sum_cl / alpha);
    }
    // Exact-sweep cadence: every 5 phases classically; in reuse mode the
    // schedule backs off on long solves (the dual bound tightens early —
    // later sweeps mostly serve the stop check and the free tree refresh).
    const bool sweep_now =
        opts.reuse_trees
            ? (phase <= 3 || phase >= next_sweep)
            : (phase % 5 == 0 || phase <= 3);
    if (sweep_now && opts.reuse_trees) {
      next_sweep = phase + (phase < 250 ? 5 : phase < 1000 ? 10 : 20);
    }
    if (sweep_now) {
      // Exact sweep, block-parallel against the frozen end-of-phase
      // lengths: each group's alpha term lands in its own slot and the sum
      // reduces in group order after the barrier, so the certificate is
      // bitwise thread-count invariant.
      alpha_part_.assign(groups_.size(), 0.0);
      for (std::size_t g0 = 0; g0 < groups_.size();
           g0 += static_cast<std::size_t>(block)) {
        const std::size_t g1 =
            std::min(groups_.size(), g0 + static_cast<std::size_t>(block));
        const auto sweep_group = [&](std::size_t k) {
          const std::size_t gi = g0 + k;
          const SourceGroup& grp = groups_[gi];
          Scratch& sc = scratch_[k];
          if (opts.reuse_trees && grp.sinks.size() == 1) {
            // Bidirectional exact distance doubles as the alpha term and a
            // free cache refresh.
            alpha_part_[gi] =
                grp.sinks[0].second * demand_scale * rebuild_single(gi, sc);
            return;
          }
          dijkstra_to_targets(g, grp.src, length_, grp.sinks, sc.dist,
                              sc.parent, sc.tent, sc.is_target);
          double acc = 0.0;
          for (const auto& [dst, demand] : grp.sinks) {
            acc +=
                demand * demand_scale * sc.dist[static_cast<std::size_t>(dst)];
          }
          alpha_part_[gi] = acc;
          // The sweep's trees are exactly shortest under the end-of-phase
          // lengths — refresh the session caches for free.
          if (opts.reuse_trees) build_cache(gi, sc);
        };
        if (par && g1 - g0 > 1) {
          pool.parallel_for(0, g1 - g0, sweep_group);
        } else {
          for (std::size_t k = 0; k < g1 - g0; ++k) sweep_group(k);
        }
        dijkstras += static_cast<long>(g1 - g0);
      }
      double alpha_exact = 0.0;
      for (const double part : alpha_part_) alpha_exact += part;
      if (alpha_exact > 0.0) {
        res.upper_bound = std::min(res.upper_bound, sum_cl / alpha_exact);
      }
    }

    // Primal candidates: lifetime average and window average.
    double cong_total = 0.0;
    double cong_window = 0.0;
    for (int a = 0; a < num_arcs; ++a) {
      if (!alive(a)) continue;
      const double cap = cap_[static_cast<std::size_t>(a)];
      cong_total =
          std::max(cong_total, flow_[static_cast<std::size_t>(a)] / cap);
      cong_window = std::max(cong_window,
                             (flow_[static_cast<std::size_t>(a)] -
                              snap_flow_[static_cast<std::size_t>(a)]) /
                                 cap);
    }
    double primal = 0.0;
    if (cong_total > 0.0) {
      primal = static_cast<double>(phase) / cong_total;
      best_is_window = false;
    }
    if (cong_window > 0.0 && phase > snap_phase) {
      const double pw = static_cast<double>(phase - snap_phase) / cong_window;
      if (pw > primal) {
        primal = pw;
        best_is_window = true;
        best_window_phases = phase - snap_phase;
        best_window_congestion = cong_window;
      }
    }
    res.throughput = primal;
    res.max_congestion = cong_total;

    static const bool trace = [] {
      const char* s = std::getenv("TOPOBENCH_GK_TRACE");
      return s != nullptr && s[0] == '1';
    }();
    if (trace && phase % 500 == 0) {
      std::fprintf(stderr,
                   "[gk-trace] phase=%ld primal=%.5f (win=%d) upper=%.5f "
                   "D=%.3e\n",
                   phase, primal, best_is_window ? 1 : 0, res.upper_bound,
                   sum_cl);
    }

    if (res.upper_bound < kInf && primal > 0.0) {
      const double gap = res.upper_bound / primal - 1.0;
      if (gap < best_gap_seen - 1e-4) {
        best_gap_seen = gap;
        last_gap_improvement = phase;
      }
    }

    if (res.upper_bound < kInf && primal > 0.0 &&
        res.upper_bound <= primal * (1.0 + eps)) {
      stop = true;  // certified (1+eps) gap
    } else if (sum_cl >= 1.0) {
      stop = true;  // classic GK termination; theory guarantees (1-3*eps/2)
    } else if (opts.plateau_guard &&
               phase - last_gap_improvement >
                   std::max<long>(500, last_gap_improvement)) {
      // Plateau guard: the certificate has stopped tightening; return the
      // best certified pair rather than grinding to the D >= 1 cutoff.
      // Callers see the true residual gap in upper_bound.
      stop = true;
    } else if (phase - snap_phase >= std::max<long>(16, snap_phase)) {
      snap_flow_ = flow_;
      snap_phase = phase;
    }
  }
  res.phases = phase;
  res.dijkstras = dijkstras;

  if (res.throughput <= 0.0 || !std::isfinite(res.throughput)) {
    res.throughput = static_cast<double>(phase) / log_scale;
    best_is_window = false;
  }

  // Report in the caller's demand units; emit the feasible scaled flow of
  // whichever window produced the certified primal.
  res.throughput *= demand_scale;
  res.upper_bound *= demand_scale;
  res.arc_flow.resize(static_cast<std::size_t>(num_arcs));
  if (best_is_window && best_window_congestion > 0.0) {
    (void)best_window_phases;
    for (int a = 0; a < num_arcs; ++a) {
      res.arc_flow[static_cast<std::size_t>(a)] =
          (flow_[static_cast<std::size_t>(a)] -
           snap_flow_[static_cast<std::size_t>(a)]) /
          best_window_congestion;
    }
  } else {
    const double fs = res.max_congestion > 0.0 ? 1.0 / res.max_congestion : 0.0;
    for (int a = 0; a < num_arcs; ++a) {
      res.arc_flow[static_cast<std::size_t>(a)] =
          flow_[static_cast<std::size_t>(a)] * fs;
    }
  }
  has_warm_ = true;  // length_ now holds this solve's final lengths
  return res;
}

GkResult max_concurrent_flow(const Graph& g, const TrafficMatrix& tm,
                             const GkOptions& opts) {
  GkSolver solver(g);
  return solver.solve(tm, opts);
}

}  // namespace tb::mcf
