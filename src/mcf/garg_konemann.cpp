#include "mcf/garg_konemann.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <queue>
#include <stdexcept>

#include "util/thread_pool.h"

namespace tb::mcf {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct SourceGroup {
  int src = 0;
  std::vector<std::pair<int, double>> sinks;  // (dst, demand)
  double out_total = 0.0;
};

/// Dijkstra that stops once all of `targets` are settled (big win for
/// matching TMs where each source has a single sink). Nodes not settled
/// keep dist = +inf and parent = -1; every settled sink's tree path passes
/// only through settled nodes, which is all the routing needs.
void dijkstra_to_targets(const Graph& g, int src,
                         const std::vector<double>& len,
                         const std::vector<std::pair<int, double>>& targets,
                         std::vector<double>& dist, std::vector<int>& parent,
                         std::vector<double>& tentative,
                         std::vector<char>& is_target) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  dist.assign(n, kInf);       // exact distance once settled
  tentative.assign(n, kInf);  // heap keys
  parent.assign(n, -1);
  is_target.assign(n, 0);
  std::size_t remaining = 0;
  for (const auto& [t, dem] : targets) {
    (void)dem;
    if (!is_target[static_cast<std::size_t>(t)]) {
      is_target[static_cast<std::size_t>(t)] = 1;
      ++remaining;
    }
  }
  using Entry = std::pair<double, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  tentative[static_cast<std::size_t>(src)] = 0.0;
  heap.emplace(0.0, src);
  while (!heap.empty() && remaining > 0) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (dist[static_cast<std::size_t>(u)] < kInf) continue;  // settled
    dist[static_cast<std::size_t>(u)] = d;
    if (is_target[static_cast<std::size_t>(u)]) --remaining;
    for (const int a : g.out_arcs(u)) {
      const int v = g.arc_to(a);
      if (dist[static_cast<std::size_t>(v)] < kInf) continue;
      const double nd = d + len[static_cast<std::size_t>(a)];
      if (nd < tentative[static_cast<std::size_t>(v)]) {
        tentative[static_cast<std::size_t>(v)] = nd;
        parent[static_cast<std::size_t>(v)] = a;
        heap.emplace(nd, v);
      }
    }
  }
}

}  // namespace

GkResult max_concurrent_flow(const Graph& g, const TrafficMatrix& tm,
                             const GkOptions& opts) {
  assert(g.finalized());
  const int num_arcs = g.num_arcs();
  const auto n = static_cast<std::size_t>(g.num_nodes());
  if (tm.demands.empty()) {
    throw std::invalid_argument("max_concurrent_flow: empty traffic matrix");
  }

  // Group demands by source.
  std::vector<SourceGroup> groups;
  {
    std::vector<int> group_of(n, -1);
    for (const Demand& d : tm.demands) {
      if (d.amount <= 0.0 || d.src == d.dst) continue;
      int& gi = group_of[static_cast<std::size_t>(d.src)];
      if (gi == -1) {
        gi = static_cast<int>(groups.size());
        groups.push_back({d.src, {}, 0.0});
      }
      groups[static_cast<std::size_t>(gi)].sinks.emplace_back(d.dst, d.amount);
      groups[static_cast<std::size_t>(gi)].out_total += d.amount;
    }
  }
  if (groups.empty()) {
    throw std::invalid_argument("max_concurrent_flow: no routable demands");
  }

  // Pre-scale so every source's per-phase volume fits the smallest capacity
  // (one legal GK step per arc per source visit). Throughput scales back.
  double min_cap = kInf;
  for (int a = 0; a < num_arcs; ++a) min_cap = std::min(min_cap, g.arc_cap(a));
  double max_out = 0.0;
  for (const SourceGroup& grp : groups) max_out = std::max(max_out, grp.out_total);
  const double demand_scale = max_out > min_cap ? min_cap / max_out : 1.0;

  const double eps = std::clamp(opts.epsilon, 1e-4, 0.3);
  // Multiplicative step. The classic analysis wants eps/3; since we certify
  // the primal/dual gap explicitly, a more aggressive step only affects how
  // fast the certificate closes, not its validity.
  const double eps_step = eps / 2.0;
  const double m = static_cast<double>(std::max(1, num_arcs));
  const double delta = std::pow(m / (1.0 - eps_step), -1.0 / eps_step);
  const double log_scale = std::log(1.0 / delta) / std::log1p(eps_step);

  std::vector<double> length(static_cast<std::size_t>(num_arcs));
  double sum_cl = 0.0;  // D(l) = sum_a c(a) * l(a)
  for (int a = 0; a < num_arcs; ++a) {
    length[static_cast<std::size_t>(a)] = delta / g.arc_cap(a);
    sum_cl += delta;
  }

  std::vector<double> flow(static_cast<std::size_t>(num_arcs), 0.0);

  // Windowed primal: MWU spends its first phases "mixing" toward the
  // optimal flow pattern; the average over a recent window converges much
  // faster than the average since phase 0. Snapshots double in the classic
  // way so total memory stays O(m).
  std::vector<double> snap_flow(static_cast<std::size_t>(num_arcs), 0.0);
  long snap_phase = 0;

  // Per-block Dijkstra scratch (fixed block size => deterministic result).
  const int block = std::max(1, opts.block_size);
  std::vector<std::vector<double>> dist_buf(static_cast<std::size_t>(block));
  std::vector<std::vector<int>> parent_buf(static_cast<std::size_t>(block));
  std::vector<std::vector<double>> tent_buf(static_cast<std::size_t>(block));
  std::vector<std::vector<char>> target_buf(static_cast<std::size_t>(block));

  // Routing scratch.
  std::vector<double> node_vol(n, 0.0);
  std::vector<int> order(n);

  GkResult res;
  res.upper_bound = kInf;
  ThreadPool& pool = ThreadPool::shared();

  long phase = 0;
  long best_window_phases = 0;
  double best_window_congestion = kInf;
  bool best_is_window = false;
  double best_gap_seen = kInf;
  long last_gap_improvement = 0;
  bool stop = false;
  while (!stop && phase < opts.max_phases) {
    double alpha = 0.0;  // sum_j demand_j * dist_l(s_j, t_j) this phase
    for (std::size_t g0 = 0; g0 < groups.size();
         g0 += static_cast<std::size_t>(block)) {
      const std::size_t g1 =
          std::min(groups.size(), g0 + static_cast<std::size_t>(block));
      // Dijkstras against frozen lengths (parallel when a pool exists).
      const auto run = [&](std::size_t k) {
        dijkstra_to_targets(g, groups[g0 + k].src, length, groups[g0 + k].sinks,
                            dist_buf[k], parent_buf[k], tent_buf[k],
                            target_buf[k]);
      };
      if (opts.parallel && pool.size() > 1 && g1 - g0 > 1) {
        pool.parallel_for(0, g1 - g0, run);
      } else {
        for (std::size_t k = 0; k < g1 - g0; ++k) run(k);
      }

      // Sequential routing in source order.
      for (std::size_t k = 0; k < g1 - g0; ++k) {
        const SourceGroup& grp = groups[g0 + k];
        const std::vector<double>& dist = dist_buf[k];
        const std::vector<int>& parent = parent_buf[k];

        // Deposit demand at sinks; gather alpha.
        for (const auto& [dst, demand] : grp.sinks) {
          const double d_scaled = demand * demand_scale;
          if (dist[static_cast<std::size_t>(dst)] >= kInf) {
            throw std::runtime_error(
                "max_concurrent_flow: demand between disconnected nodes");
          }
          alpha += d_scaled * dist[static_cast<std::size_t>(dst)];
          node_vol[static_cast<std::size_t>(dst)] += d_scaled;
        }

        // Single-sink fast path (matching TMs): walk the parent chain.
        if (grp.sinks.size() == 1) {
          const int dst = grp.sinks[0].first;
          const double vol = node_vol[static_cast<std::size_t>(dst)];
          node_vol[static_cast<std::size_t>(dst)] = 0.0;
          for (int v = dst; v != grp.src;) {
            const int pa = parent[static_cast<std::size_t>(v)];
            assert(pa >= 0);
            flow[static_cast<std::size_t>(pa)] += vol;
            const double cap = g.arc_cap(pa);
            const double old_len = length[static_cast<std::size_t>(pa)];
            const double new_len = old_len * (1.0 + eps_step * vol / cap);
            length[static_cast<std::size_t>(pa)] = new_len;
            sum_cl += cap * (new_len - old_len);
            v = g.arc_from(pa);
          }
          continue;
        }

        // Push volumes up the shortest-path tree in decreasing-distance
        // order (unsettled nodes keep dist=inf and zero volume).
        for (std::size_t v = 0; v < n; ++v) order[v] = static_cast<int>(v);
        std::sort(order.begin(), order.end(), [&dist](int a, int b) {
          return dist[static_cast<std::size_t>(a)] >
                 dist[static_cast<std::size_t>(b)];
        });
        for (std::size_t i = 0; i < n; ++i) {
          const int v = order[i];
          if (v == grp.src) continue;
          const double vol = node_vol[static_cast<std::size_t>(v)];
          if (vol <= 0.0) continue;
          node_vol[static_cast<std::size_t>(v)] = 0.0;
          const int pa = parent[static_cast<std::size_t>(v)];
          assert(pa >= 0);
          const int u = g.arc_from(pa);
          node_vol[static_cast<std::size_t>(u)] += vol;
          flow[static_cast<std::size_t>(pa)] += vol;
          const double cap = g.arc_cap(pa);
          const double old_len = length[static_cast<std::size_t>(pa)];
          const double new_len = old_len * (1.0 + eps_step * vol / cap);
          length[static_cast<std::size_t>(pa)] = new_len;
          sum_cl += cap * (new_len - old_len);
        }
        node_vol[static_cast<std::size_t>(grp.src)] = 0.0;
      }
    }

    ++phase;
    // Dual: alpha used in-phase lengths <= end-of-phase lengths, so
    // D(l_end)/alpha upper-bounds the scaled OPT — but loosely, since D
    // grows during the phase. Every few phases, recompute alpha exactly
    // against the frozen end-of-phase lengths (one extra Dijkstra sweep)
    // for a tight, still-valid certificate.
    if (alpha > 0.0) {
      res.upper_bound = std::min(res.upper_bound, sum_cl / alpha);
    }
    if (phase % 5 == 0 || phase <= 3) {
      double alpha_exact = 0.0;
      for (const SourceGroup& grp : groups) {
        dijkstra_to_targets(g, grp.src, length, grp.sinks, dist_buf[0],
                            parent_buf[0], tent_buf[0], target_buf[0]);
        for (const auto& [dst, demand] : grp.sinks) {
          alpha_exact += demand * demand_scale *
                         dist_buf[0][static_cast<std::size_t>(dst)];
        }
      }
      if (alpha_exact > 0.0) {
        res.upper_bound = std::min(res.upper_bound, sum_cl / alpha_exact);
      }
    }

    // Primal candidates: lifetime average and window average.
    double cong_total = 0.0;
    double cong_window = 0.0;
    for (int a = 0; a < num_arcs; ++a) {
      const double cap = g.arc_cap(a);
      cong_total = std::max(cong_total, flow[static_cast<std::size_t>(a)] / cap);
      cong_window = std::max(cong_window,
                             (flow[static_cast<std::size_t>(a)] -
                              snap_flow[static_cast<std::size_t>(a)]) /
                                 cap);
    }
    double primal = 0.0;
    if (cong_total > 0.0) {
      primal = static_cast<double>(phase) / cong_total;
      best_is_window = false;
    }
    if (cong_window > 0.0 && phase > snap_phase) {
      const double pw = static_cast<double>(phase - snap_phase) / cong_window;
      if (pw > primal) {
        primal = pw;
        best_is_window = true;
        best_window_phases = phase - snap_phase;
        best_window_congestion = cong_window;
      }
    }
    res.throughput = primal;
    res.max_congestion = cong_total;

    static const bool trace = [] {
      const char* s = std::getenv("TOPOBENCH_GK_TRACE");
      return s != nullptr && s[0] == '1';
    }();
    if (trace && phase % 500 == 0) {
      std::fprintf(stderr,
                   "[gk-trace] phase=%ld primal=%.5f (win=%d) upper=%.5f "
                   "D=%.3e\n",
                   phase, primal, best_is_window ? 1 : 0, res.upper_bound,
                   sum_cl);
    }

    if (res.upper_bound < kInf && primal > 0.0) {
      const double gap = res.upper_bound / primal - 1.0;
      if (gap < best_gap_seen - 1e-4) {
        best_gap_seen = gap;
        last_gap_improvement = phase;
      }
    }

    if (res.upper_bound < kInf && primal > 0.0 &&
        res.upper_bound <= primal * (1.0 + eps)) {
      stop = true;  // certified (1+eps) gap
    } else if (sum_cl >= 1.0) {
      stop = true;  // classic GK termination; theory guarantees (1-3*eps/2)
    } else if (opts.plateau_guard &&
               phase - last_gap_improvement >
                   std::max<long>(500, last_gap_improvement)) {
      // Plateau guard: the certificate has stopped tightening; return the
      // best certified pair rather than grinding to the D >= 1 cutoff.
      // Callers see the true residual gap in upper_bound.
      stop = true;
    } else if (phase - snap_phase >= std::max<long>(16, snap_phase)) {
      snap_flow = flow;
      snap_phase = phase;
    }
  }
  res.phases = phase;

  if (res.throughput <= 0.0 || !std::isfinite(res.throughput)) {
    res.throughput = static_cast<double>(phase) / log_scale;
    best_is_window = false;
  }

  // Report in the caller's demand units; emit the feasible scaled flow of
  // whichever window produced the certified primal.
  res.throughput *= demand_scale;
  res.upper_bound *= demand_scale;
  res.arc_flow.resize(static_cast<std::size_t>(num_arcs));
  if (best_is_window && best_window_congestion > 0.0) {
    (void)best_window_phases;
    for (int a = 0; a < num_arcs; ++a) {
      res.arc_flow[static_cast<std::size_t>(a)] =
          (flow[static_cast<std::size_t>(a)] -
           snap_flow[static_cast<std::size_t>(a)]) /
          best_window_congestion;
    }
  } else {
    const double fs = res.max_congestion > 0.0 ? 1.0 / res.max_congestion : 0.0;
    for (int a = 0; a < num_arcs; ++a) {
      res.arc_flow[static_cast<std::size_t>(a)] =
          flow[static_cast<std::size_t>(a)] * fs;
    }
  }
  return res;
}

}  // namespace tb::mcf
