// Garg-Konemann / Fleischer (1-eps)-approximate maximum concurrent flow.
//
// Throughput (paper §II-A) is the optimum of the max concurrent flow LP.
// Beyond a few dozen switches the exact simplex is too slow, so the
// workhorse is the classic multiplicative-weights FPTAS:
//
//   * arc lengths start at delta/c(a); phases route every commodity's
//     demand along (approximately) shortest paths under the current
//     lengths, multiplying traversed arc lengths by (1 + eps * vol/c);
//   * commodities are aggregated by source — one Dijkstra serves all
//     destinations of a source, and since the TM is pre-scaled so every
//     source emits <= min-capacity per phase, routing a whole source tree
//     is one legal GK step per arc;
//   * a primal/dual pair certifies accuracy: the primal value is
//     completed_phases / max_congestion (a feasible concurrent flow); the
//     dual bound is min over phases of D(l)/alpha(l) (every length
//     function upper-bounds OPT by LP duality). We stop when the certified
//     gap falls below `epsilon` or the classic D(l) >= 1 criterion fires.
//
// Parallelism: within a phase, sources are processed in fixed-size blocks;
// each block's Dijkstras run on the shared pool against frozen lengths and
// routing/length updates are applied sequentially in source order. Results
// are deterministic and independent of the actual thread count (the block
// size is a constant, not the pool size); block staleness only perturbs
// path choice, never the primal/dual certificates.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"
#include "tm/traffic_matrix.h"

namespace tb::mcf {

struct GkOptions {
  double epsilon = 0.05;       ///< target certified relative gap
  long max_phases = 200'000;   ///< safety cap
  bool parallel = true;        ///< use the shared thread pool
  int block_size = 8;          ///< sources per deterministic Dijkstra block
  /// Stop once the certified gap stops improving (the result still carries
  /// the true residual gap in upper_bound). Disable for strict-epsilon runs.
  bool plateau_guard = true;
};

struct GkResult {
  double throughput = 0.0;     ///< certified feasible concurrent flow value
  double upper_bound = 0.0;    ///< certified dual upper bound on OPT
  long phases = 0;
  double max_congestion = 0.0; ///< of the raw accumulated flow
  std::vector<double> arc_flow;///< scaled feasible flow per arc
};

/// Demands must connect nodes of a connected `g`; amounts > 0.
GkResult max_concurrent_flow(const Graph& g, const TrafficMatrix& tm,
                             const GkOptions& opts = {});

}  // namespace tb::mcf
