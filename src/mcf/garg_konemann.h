// Garg-Konemann / Fleischer (1-eps)-approximate maximum concurrent flow.
//
// Throughput (paper §II-A) is the optimum of the max concurrent flow LP.
// Beyond a few dozen switches the exact simplex is too slow, so the
// workhorse is the classic multiplicative-weights FPTAS:
//
//   * arc lengths start at delta/c(a); phases route every commodity's
//     demand along (approximately) shortest paths under the current
//     lengths, multiplying traversed arc lengths by (1 + eps * vol/c);
//   * commodities are aggregated by source — one Dijkstra serves all
//     destinations of a source, and since the TM is pre-scaled so every
//     source emits <= min-capacity per phase, routing a whole source tree
//     is one legal GK step per arc;
//   * a primal/dual pair certifies accuracy: the primal value is
//     completed_phases / max_congestion (a feasible concurrent flow); the
//     dual bound is min over phases of D(l)/alpha(l) (every length
//     function upper-bounds OPT by LP duality). We stop when the certified
//     gap falls below `epsilon` or the classic D(l) >= 1 criterion fires.
//
// Parallelism (the threaded-determinism contract): within a phase, sources
// are processed in fixed-size blocks; each block's shortest-path work —
// classic Dijkstras, reuse-mode staleness checks and tree rebuilds, and the
// exact dual sweeps — runs on a thread pool against lengths frozen at the
// block boundary, each slot writing only its own scratch buffers, and every
// length/flow update (plus the alpha reduction of the sweeps) is applied
// serially afterwards in source order. Results are therefore bitwise
// independent of the thread count — including a 1-worker pool and the fully
// serial path — because the block partition is a constant, the per-slot
// arithmetic is identical, and the reductions run in a fixed order; block
// staleness only perturbs path choice, never the primal/dual certificates.
// GkOptions::pool selects the pool (null = the process-shared one).
//
// GkSolver is the session form used by mcf::ThroughputEngine: it binds to
// one graph, owns working per-arc capacities (the scenario layer degrades
// or zeroes them — a zero capacity marks a failed arc, which simply gets an
// infinite length and so is never routed), keeps every per-solve buffer
// alive between solves, and can warm-start a solve by seeding the arc
// lengths with the (mass-renormalized) final lengths of the previous solve.
// Warm starts never weaken correctness: the dual bound D(l)/alpha(l) is
// valid for ANY positive length function and the primal value is a
// certified feasible flow of the current solve only — warm seeding merely
// changes how fast the certificate closes (and therefore which certified
// point is reported; warm and cold results agree within their certified
// gaps, not bitwise).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "tm/traffic_matrix.h"

namespace tb {
class ThreadPool;
}  // namespace tb

namespace tb::mcf {

struct GkOptions {
  double epsilon = 0.05;       ///< target certified relative gap
  long max_phases = 200'000;   ///< safety cap
  bool parallel = true;        ///< run per-block shortest paths on a pool
  /// Pool for the per-block parallelism; null means ThreadPool::shared().
  /// Never affects results (see the determinism contract above) — only
  /// which threads do the work.
  ThreadPool* pool = nullptr;
  int block_size = 8;          ///< sources per deterministic Dijkstra block
  /// Stop once the certified gap stops improving (the result still carries
  /// the true residual gap in upper_bound). Disable for strict-epsilon runs.
  bool plateau_guard = true;
  /// Session dynamics (Fleischer-style shortest-path reuse), the engine's
  /// warm mode: each source keeps its routed shortest-path tree across
  /// phases and re-runs Dijkstra only when the tree's path lengths have
  /// grown past a (1 + eps/2) staleness budget or at the periodic
  /// exact-distance sweeps — which refresh every tree for free. The dual
  /// bound then comes solely from the exact sweeps (per-phase stale alphas
  /// are skipped), so the primal/dual certificate stays rigorous; routing
  /// along slightly stale trees only affects how fast it closes. Far fewer
  /// Dijkstras per phase; results differ from the classic dynamics within
  /// the certified gap.
  bool reuse_trees = false;
};

struct GkResult {
  double throughput = 0.0;     ///< certified feasible concurrent flow value
  double upper_bound = 0.0;    ///< certified dual upper bound on OPT
  long phases = 0;
  long dijkstras = 0;          ///< shortest-path-tree computations performed
  bool warm_started = false;   ///< lengths were seeded from a prior solve
  double max_congestion = 0.0; ///< of the raw accumulated flow
  std::vector<double> arc_flow;///< scaled feasible flow per arc
};

/// Reusable GK session bound to one (finalized) graph, which must outlive
/// the solver. Not thread-safe: one solver per thread of control.
class GkSolver {
 public:
  explicit GkSolver(const Graph& g);

  /// Copying clones the session identity — the bound graph, the working
  /// per-arc capacities, and the warm state (the previous solve's final
  /// lengths) — but none of the per-solve transient buffers, which every
  /// solve reassigns before use: a copy's next solve is bitwise the solve
  /// the original would run. This is what ScenarioFleet forks per
  /// scenario, so it stays O(arcs), not O(scratch).
  GkSolver(const GkSolver& other)
      : g_(other.g_),
        cap_(other.cap_),
        length_(other.length_),
        has_warm_(other.has_warm_) {}
  GkSolver& operator=(const GkSolver&) = delete;

  /// Working capacity of edge `e` (both its arcs). 0 marks the edge failed;
  /// negative capacities are rejected.
  void set_edge_capacity(int e, double cap);
  double edge_capacity(int e) const;
  /// Restore every working capacity to the bound graph's own.
  void reset_capacities();
  /// Working per-arc capacities (index = arc id; 0 = failed).
  const std::vector<double>& arc_capacities() const noexcept { return cap_; }

  /// Approximate max concurrent flow of `tm` under the working capacities.
  /// `warm` seeds arc lengths from the previous solve on this solver (no-op
  /// on the first solve). Demands between nodes disconnected under the
  /// working capacities throw std::runtime_error — callers with failure
  /// scenarios should pre-check (ThroughputEngine does).
  GkResult solve(const TrafficMatrix& tm, const GkOptions& opts = {},
                 bool warm = false);

  /// True once a solve has completed (warm seeding has a state to use).
  bool has_warm_state() const noexcept { return has_warm_; }

 private:
  struct SourceGroup {
    int src = 0;
    std::vector<std::pair<int, double>> sinks;  // (dst, demand)
    double out_total = 0.0;
  };

  /// Cached routed tree of one source group (reuse_trees mode): the
  /// per-arc phase volumes in leaf-to-root order (fixed while the tree is
  /// reused — each phase routes the same demands) and the sinks' shortest
  /// distances at build time (the staleness reference).
  struct TreeCache {
    bool valid = false;
    std::vector<std::pair<int, double>> arcs;  // (arc id, phase volume)
    std::vector<double> build_dist;            // aligned with group sinks
  };

  /// Per-slot scratch for the block-parallel shortest-path work: one slot
  /// per block position, touched by exactly one task at a time, so slots
  /// never alias across threads and the per-slot arithmetic is identical
  /// whether a block runs serial or parallel.
  struct Scratch {
    std::vector<double> dist;      // settled distances
    std::vector<double> tent;      // heap keys
    std::vector<int> parent;
    std::vector<char> is_target;
    std::vector<double> node_vol;  // tree-volume push scratch (kept zeroed)
    std::vector<int> order;
    std::vector<double> cur_dist;  // cached-tree walk scratch
    std::vector<double> bi_dist[2];   // bidirectional: tentative labels
    std::vector<int> bi_par[2];       // path arcs (forward orientation)
    std::vector<char> bi_settled[2];
    bool rebuilt = false;  // this slot's group re-ran a shortest-path build
  };

  const Graph* g_;
  std::vector<double> cap_;  ///< working per-arc capacities

  // Reusable per-solve state. `length_` doubles as the warm-start seed:
  // after a solve it holds the final length function.
  std::vector<double> length_;
  std::vector<double> flow_;
  std::vector<double> snap_flow_;
  std::vector<SourceGroup> groups_;
  std::vector<Scratch> scratch_;       // one slot per block position
  std::vector<TreeCache> tree_cache_;  // reuse_trees mode, one per group
  std::vector<double> alpha_part_;     // per-group sweep terms, reduced in
                                       // group order after the barrier

  /// Exact shortest s->t path under the current lengths via bidirectional
  /// Dijkstra (reuse_trees mode, single-sink groups): meet-in-the-middle
  /// explores two small balls instead of one big one — a large constant
  /// factor on expander-like topologies. Appends the path's (arc, vol)
  /// pairs to `arcs_out` in sink-to-source order (the TreeCache
  /// convention) and returns the exact distance; throws when t is
  /// unreachable.
  double bidirectional_path(int s, int t, double vol,
                            std::vector<std::pair<int, double>>& arcs_out,
                            Scratch& sc);
  bool has_warm_ = false;
};

/// Demands must connect nodes of a connected `g`; amounts > 0. One-shot
/// form: equivalent to GkSolver(g).solve(tm, opts).
GkResult max_concurrent_flow(const Graph& g, const TrafficMatrix& tm,
                             const GkOptions& opts = {});

}  // namespace tb::mcf
