// Garg-Konemann / Fleischer (1-eps)-approximate maximum concurrent flow.
//
// Throughput (paper §II-A) is the optimum of the max concurrent flow LP.
// Beyond a few dozen switches the exact simplex is too slow, so the
// workhorse is the classic multiplicative-weights FPTAS:
//
//   * arc lengths start at delta/c(a); phases route every commodity's
//     demand along (approximately) shortest paths under the current
//     lengths, multiplying traversed arc lengths by (1 + eps * vol/c);
//   * commodities are aggregated by source — one Dijkstra serves all
//     destinations of a source, and since the TM is pre-scaled so every
//     source emits <= min-capacity per phase, routing a whole source tree
//     is one legal GK step per arc;
//   * a primal/dual pair certifies accuracy: the primal value is
//     completed_phases / max_congestion (a feasible concurrent flow); the
//     dual bound is min over phases of D(l)/alpha(l) (every length
//     function upper-bounds OPT by LP duality). We stop when the certified
//     gap falls below `epsilon` or the classic D(l) >= 1 criterion fires.
//
// Parallelism: within a phase, sources are processed in fixed-size blocks;
// each block's Dijkstras run on the shared pool against frozen lengths and
// routing/length updates are applied sequentially in source order. Results
// are deterministic and independent of the actual thread count (the block
// size is a constant, not the pool size); block staleness only perturbs
// path choice, never the primal/dual certificates.
//
// GkSolver is the session form used by mcf::ThroughputEngine: it binds to
// one graph, owns working per-arc capacities (the scenario layer degrades
// or zeroes them — a zero capacity marks a failed arc, which simply gets an
// infinite length and so is never routed), keeps every per-solve buffer
// alive between solves, and can warm-start a solve by seeding the arc
// lengths with the (mass-renormalized) final lengths of the previous solve.
// Warm starts never weaken correctness: the dual bound D(l)/alpha(l) is
// valid for ANY positive length function and the primal value is a
// certified feasible flow of the current solve only — warm seeding merely
// changes how fast the certificate closes (and therefore which certified
// point is reported; warm and cold results agree within their certified
// gaps, not bitwise).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "tm/traffic_matrix.h"

namespace tb::mcf {

struct GkOptions {
  double epsilon = 0.05;       ///< target certified relative gap
  long max_phases = 200'000;   ///< safety cap
  bool parallel = true;        ///< use the shared thread pool
  int block_size = 8;          ///< sources per deterministic Dijkstra block
  /// Stop once the certified gap stops improving (the result still carries
  /// the true residual gap in upper_bound). Disable for strict-epsilon runs.
  bool plateau_guard = true;
  /// Session dynamics (Fleischer-style shortest-path reuse), the engine's
  /// warm mode: each source keeps its routed shortest-path tree across
  /// phases and re-runs Dijkstra only when the tree's path lengths have
  /// grown past a (1 + eps/2) staleness budget or at the periodic
  /// exact-distance sweeps — which refresh every tree for free. The dual
  /// bound then comes solely from the exact sweeps (per-phase stale alphas
  /// are skipped), so the primal/dual certificate stays rigorous; routing
  /// along slightly stale trees only affects how fast it closes. Far fewer
  /// Dijkstras per phase; results differ from the classic dynamics within
  /// the certified gap.
  bool reuse_trees = false;
};

struct GkResult {
  double throughput = 0.0;     ///< certified feasible concurrent flow value
  double upper_bound = 0.0;    ///< certified dual upper bound on OPT
  long phases = 0;
  long dijkstras = 0;          ///< shortest-path-tree computations performed
  bool warm_started = false;   ///< lengths were seeded from a prior solve
  double max_congestion = 0.0; ///< of the raw accumulated flow
  std::vector<double> arc_flow;///< scaled feasible flow per arc
};

/// Reusable GK session bound to one (finalized) graph, which must outlive
/// the solver. Not thread-safe: one solver per thread of control.
class GkSolver {
 public:
  explicit GkSolver(const Graph& g);

  /// Working capacity of edge `e` (both its arcs). 0 marks the edge failed;
  /// negative capacities are rejected.
  void set_edge_capacity(int e, double cap);
  double edge_capacity(int e) const;
  /// Restore every working capacity to the bound graph's own.
  void reset_capacities();
  /// Working per-arc capacities (index = arc id; 0 = failed).
  const std::vector<double>& arc_capacities() const noexcept { return cap_; }

  /// Approximate max concurrent flow of `tm` under the working capacities.
  /// `warm` seeds arc lengths from the previous solve on this solver (no-op
  /// on the first solve). Demands between nodes disconnected under the
  /// working capacities throw std::runtime_error — callers with failure
  /// scenarios should pre-check (ThroughputEngine does).
  GkResult solve(const TrafficMatrix& tm, const GkOptions& opts = {},
                 bool warm = false);

  /// True once a solve has completed (warm seeding has a state to use).
  bool has_warm_state() const noexcept { return has_warm_; }

 private:
  struct SourceGroup {
    int src = 0;
    std::vector<std::pair<int, double>> sinks;  // (dst, demand)
    double out_total = 0.0;
  };

  /// Cached routed tree of one source group (reuse_trees mode): the
  /// per-arc phase volumes in leaf-to-root order (fixed while the tree is
  /// reused — each phase routes the same demands) and the sinks' shortest
  /// distances at build time (the staleness reference).
  struct TreeCache {
    bool valid = false;
    std::vector<std::pair<int, double>> arcs;  // (arc id, phase volume)
    std::vector<double> build_dist;            // aligned with group sinks
  };

  const Graph* g_;
  std::vector<double> cap_;  ///< working per-arc capacities

  // Reusable per-solve state. `length_` doubles as the warm-start seed:
  // after a solve it holds the final length function.
  std::vector<double> length_;
  std::vector<double> flow_;
  std::vector<double> snap_flow_;
  std::vector<double> node_vol_;
  std::vector<int> order_;
  std::vector<SourceGroup> groups_;
  std::vector<std::vector<double>> dist_buf_;
  std::vector<std::vector<int>> parent_buf_;
  std::vector<std::vector<double>> tent_buf_;
  std::vector<std::vector<char>> target_buf_;
  std::vector<TreeCache> tree_cache_;  // reuse_trees mode, one per group
  std::vector<double> cur_dist_;       // tree-walk scratch

  /// Exact shortest s->t path under the current lengths via bidirectional
  /// Dijkstra (reuse_trees mode, single-sink groups): meet-in-the-middle
  /// explores two small balls instead of one big one — a large constant
  /// factor on expander-like topologies. Appends the path's (arc, vol)
  /// pairs to `arcs_out` in sink-to-source order (the TreeCache
  /// convention) and returns the exact distance; throws when t is
  /// unreachable.
  double bidirectional_path(int s, int t, double vol,
                            std::vector<std::pair<int, double>>& arcs_out);
  std::vector<double> bi_dist_[2];   // tentative labels, fwd/bwd
  std::vector<int> bi_par_[2];       // path arcs (forward orientation)
  std::vector<char> bi_settled_[2];
  bool has_warm_ = false;
};

/// Demands must connect nodes of a connected `g`; amounts > 0. One-shot
/// form: equivalent to GkSolver(g).solve(tm, opts).
GkResult max_concurrent_flow(const Graph& g, const TrafficMatrix& tm,
                             const GkOptions& opts = {});

}  // namespace tb::mcf
