#include "mcf/paths.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <map>
#include <queue>
#include <set>
#include <stdexcept>

#include "graph/algorithms.h"
#include "lp/simplex.h"

namespace tb::mcf {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Dijkstra that ignores banned arcs / nodes; returns the arc path or empty.
Path restricted_shortest_path(const Graph& g, int src, int dst,
                              const std::set<int>& banned_arcs,
                              const std::vector<char>& banned_node) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  std::vector<double> dist(n, kInf);
  std::vector<int> parent(n, -1);
  using Entry = std::pair<double, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[static_cast<std::size_t>(src)] = 0.0;
  heap.emplace(0.0, src);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    if (u == dst) break;
    for (const int a : g.out_arcs(u)) {
      const int v = g.arc_to(a);
      if (banned_node[static_cast<std::size_t>(v)] && v != dst) continue;
      if (banned_arcs.contains(a)) continue;
      const double nd = d + 1.0;
      if (nd < dist[static_cast<std::size_t>(v)]) {
        dist[static_cast<std::size_t>(v)] = nd;
        parent[static_cast<std::size_t>(v)] = a;
        heap.emplace(nd, v);
      }
    }
  }
  if (!std::isfinite(dist[static_cast<std::size_t>(dst)])) return {};
  Path path;
  for (int v = dst; v != src;) {
    const int a = parent[static_cast<std::size_t>(v)];
    path.push_back(a);
    v = g.arc_from(a);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

std::vector<Path> k_shortest_paths(const Graph& g, int src, int dst, int k) {
  assert(g.finalized());
  if (src == dst || k <= 0) return {};
  std::vector<Path> result;
  std::vector<char> no_ban(static_cast<std::size_t>(g.num_nodes()), 0);
  {
    const Path first = restricted_shortest_path(g, src, dst, {}, no_ban);
    if (first.empty()) return {};
    result.push_back(first);
  }

  // Candidate pool ordered by (length, path) for determinism.
  auto cmp = [](const Path& a, const Path& b) {
    if (a.size() != b.size()) return a.size() < b.size();
    return a < b;
  };
  std::set<Path, decltype(cmp)> candidates(cmp);

  while (static_cast<int>(result.size()) < k) {
    const Path& prev = result.back();
    // Spur from every prefix of the previous path.
    for (std::size_t i = 0; i < prev.size(); ++i) {
      const int spur_node = g.arc_from(prev[i]);
      Path root(prev.begin(), prev.begin() + static_cast<std::ptrdiff_t>(i));

      std::set<int> banned_arcs;
      for (const Path& p : result) {
        if (p.size() > i &&
            std::equal(root.begin(), root.end(), p.begin())) {
          banned_arcs.insert(p[i]);
        }
      }
      std::vector<char> banned_node(static_cast<std::size_t>(g.num_nodes()), 0);
      for (const int a : root) {
        banned_node[static_cast<std::size_t>(g.arc_from(a))] = 1;
      }

      const Path spur =
          restricted_shortest_path(g, spur_node, dst, banned_arcs, banned_node);
      if (spur.empty()) continue;
      Path total = root;
      total.insert(total.end(), spur.begin(), spur.end());
      if (std::find(result.begin(), result.end(), total) == result.end()) {
        candidates.insert(std::move(total));
      }
    }
    if (candidates.empty()) break;
    result.push_back(*candidates.begin());
    candidates.erase(candidates.begin());
  }
  return result;
}

std::vector<PathSet> build_path_sets(const Graph& g, const TrafficMatrix& tm,
                                     int k) {
  std::vector<PathSet> sets;
  sets.reserve(tm.demands.size());
  for (const Demand& d : tm.demands) {
    PathSet ps;
    ps.demand = d;
    ps.paths = k_shortest_paths(g, d.src, d.dst, k);
    if (ps.paths.empty()) {
      throw std::logic_error("build_path_sets: no path for demand");
    }
    sets.push_back(std::move(ps));
  }
  return sets;
}

double path_restricted_throughput(const Graph& g,
                                  const std::vector<PathSet>& sets) {
  lp::Problem prob;
  prob.maximize = true;
  const int t_var = prob.add_var(1.0);

  // Per-arc usage rows built incrementally.
  std::map<int, lp::Row> arc_rows;
  for (const PathSet& ps : sets) {
    lp::Row flow_row;  // sum_p x_p - t * demand >= 0
    flow_row.sense = lp::Sense::GE;
    flow_row.rhs = 0.0;
    flow_row.terms.emplace_back(t_var, -ps.demand.amount);
    for (const Path& p : ps.paths) {
      const int x = prob.add_var(0.0);
      flow_row.terms.emplace_back(x, 1.0);
      for (const int a : p) {
        lp::Row& row = arc_rows[a];
        row.terms.emplace_back(x, 1.0);
      }
    }
    prob.add_row(std::move(flow_row));
  }
  for (auto& [a, row] : arc_rows) {
    row.sense = lp::Sense::LE;
    row.rhs = g.arc_cap(a);
    prob.add_row(std::move(row));
  }

  const lp::Result sol = lp::solve(prob);
  if (sol.status != lp::Status::Optimal) {
    throw std::runtime_error("path_restricted_throughput: LP not optimal");
  }
  return sol.x[static_cast<std::size_t>(t_var)];
}

CountingEstimate counting_throughput(const Graph& g,
                                     const std::vector<PathSet>& sets) {
  // Subflow load per arc: each commodity contributes one subflow per path.
  std::vector<int> load(static_cast<std::size_t>(g.num_arcs()), 0);
  for (const PathSet& ps : sets) {
    for (const Path& p : ps.paths) {
      for (const int a : p) ++load[static_cast<std::size_t>(a)];
    }
  }
  CountingEstimate est;
  est.per_flow.reserve(sets.size());
  est.minimum = kInf;
  double sum = 0.0;
  for (const PathSet& ps : sets) {
    double flow_rate = 0.0;
    for (const Path& p : ps.paths) {
      int worst = 1;
      for (const int a : p) {
        worst = std::max(worst, load[static_cast<std::size_t>(a)]);
      }
      flow_rate += g.arc_cap(p.front()) > 0 ? 1.0 / worst : 0.0;
    }
    // Rate is per subflow of demand/|paths|; normalize to the flow's demand.
    flow_rate = std::min(flow_rate, 1.0);
    est.per_flow.push_back(flow_rate);
    est.minimum = std::min(est.minimum, flow_rate);
    sum += flow_rate;
  }
  est.average = sets.empty() ? 0.0 : sum / static_cast<double>(sets.size());
  if (!std::isfinite(est.minimum)) est.minimum = 0.0;
  return est;
}

}  // namespace tb::mcf
