// Assignment-problem solvers. The longest-matching near-worst-case TM
// (paper §II-C) is the maximum-weight perfect matching of the complete
// bipartite graph whose edge v->w weighs the shortest-path length from v to
// w; we solve it exactly with the O(n^3) Hungarian algorithm (shortest
// augmenting paths with dual potentials). A greedy heuristic and an O(n!)
// brute-force oracle are included for comparison and testing.
#pragma once

#include <span>
#include <vector>

namespace tb {

/// Exact maximum-weight perfect matching on a dense n x n weight matrix
/// (row-major). Returns match[i] = column assigned to row i.
/// O(n^3) time, O(n) extra memory beyond the matrix.
std::vector<int> max_weight_perfect_matching(std::span<const double> weight,
                                             int n);

/// Exact minimum-weight version (same algorithm, no negation cost to caller).
std::vector<int> min_weight_perfect_matching(std::span<const double> weight,
                                             int n);

/// Total weight of an assignment.
double assignment_weight(std::span<const double> weight, int n,
                         std::span<const int> match);

/// Greedy descending-weight matching (2-approximation); for ablations.
std::vector<int> greedy_matching(std::span<const double> weight, int n,
                                 bool maximize = true);

/// O(n!) exhaustive oracle; n <= 10. For tests only.
std::vector<int> brute_force_matching(std::span<const double> weight, int n,
                                      bool maximize = true);

}  // namespace tb
