#include "matching/hungarian.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace tb {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Minimum-cost assignment via shortest augmenting paths with potentials
/// (Jonker-Volgenant style; 1-based internal indexing).
std::vector<int> solve_min_cost(std::span<const double> a, int n) {
  assert(static_cast<int>(a.size()) == n * n);
  std::vector<double> u(static_cast<std::size_t>(n) + 1, 0.0);
  std::vector<double> v(static_cast<std::size_t>(n) + 1, 0.0);
  std::vector<int> p(static_cast<std::size_t>(n) + 1, 0);    // row matched to col j
  std::vector<int> way(static_cast<std::size_t>(n) + 1, 0);  // augmenting path links

  for (int i = 1; i <= n; ++i) {
    p[0] = i;
    int j0 = 0;
    std::vector<double> minv(static_cast<std::size_t>(n) + 1, kInf);
    std::vector<char> used(static_cast<std::size_t>(n) + 1, false);
    do {
      used[static_cast<std::size_t>(j0)] = true;
      const int i0 = p[static_cast<std::size_t>(j0)];
      double delta = kInf;
      int j1 = -1;
      for (int j = 1; j <= n; ++j) {
        if (used[static_cast<std::size_t>(j)]) continue;
        const double cur =
            a[static_cast<std::size_t>(i0 - 1) * static_cast<std::size_t>(n) +
              static_cast<std::size_t>(j - 1)] -
            u[static_cast<std::size_t>(i0)] - v[static_cast<std::size_t>(j)];
        if (cur < minv[static_cast<std::size_t>(j)]) {
          minv[static_cast<std::size_t>(j)] = cur;
          way[static_cast<std::size_t>(j)] = j0;
        }
        if (minv[static_cast<std::size_t>(j)] < delta) {
          delta = minv[static_cast<std::size_t>(j)];
          j1 = j;
        }
      }
      for (int j = 0; j <= n; ++j) {
        if (used[static_cast<std::size_t>(j)]) {
          u[static_cast<std::size_t>(p[static_cast<std::size_t>(j)])] += delta;
          v[static_cast<std::size_t>(j)] -= delta;
        } else {
          minv[static_cast<std::size_t>(j)] -= delta;
        }
      }
      j0 = j1;
    } while (p[static_cast<std::size_t>(j0)] != 0);
    do {
      const int j1 = way[static_cast<std::size_t>(j0)];
      p[static_cast<std::size_t>(j0)] = p[static_cast<std::size_t>(j1)];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<int> match(static_cast<std::size_t>(n), -1);
  for (int j = 1; j <= n; ++j) {
    match[static_cast<std::size_t>(p[static_cast<std::size_t>(j)] - 1)] = j - 1;
  }
  return match;
}

}  // namespace

std::vector<int> min_weight_perfect_matching(std::span<const double> weight,
                                             int n) {
  if (n <= 0) return {};
  if (static_cast<int>(weight.size()) != n * n) {
    throw std::invalid_argument("matching: weight matrix must be n x n");
  }
  return solve_min_cost(weight, n);
}

std::vector<int> max_weight_perfect_matching(std::span<const double> weight,
                                             int n) {
  if (n <= 0) return {};
  std::vector<double> neg(weight.size());
  for (std::size_t i = 0; i < weight.size(); ++i) neg[i] = -weight[i];
  return min_weight_perfect_matching(neg, n);
}

double assignment_weight(std::span<const double> weight, int n,
                         std::span<const int> match) {
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    total += weight[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
                    static_cast<std::size_t>(match[static_cast<std::size_t>(i)])];
  }
  return total;
}

std::vector<int> greedy_matching(std::span<const double> weight, int n,
                                 bool maximize) {
  struct Entry {
    double w;
    int i;
    int j;
  };
  std::vector<Entry> entries;
  entries.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      entries.push_back({weight[static_cast<std::size_t>(i) *
                                    static_cast<std::size_t>(n) +
                                static_cast<std::size_t>(j)],
                         i, j});
    }
  }
  std::sort(entries.begin(), entries.end(), [maximize](const Entry& a, const Entry& b) {
    if (a.w != b.w) return maximize ? a.w > b.w : a.w < b.w;
    if (a.i != b.i) return a.i < b.i;
    return a.j < b.j;
  });
  std::vector<int> match(static_cast<std::size_t>(n), -1);
  std::vector<char> col_used(static_cast<std::size_t>(n), false);
  int assigned = 0;
  for (const Entry& e : entries) {
    if (match[static_cast<std::size_t>(e.i)] != -1 ||
        col_used[static_cast<std::size_t>(e.j)]) {
      continue;
    }
    match[static_cast<std::size_t>(e.i)] = e.j;
    col_used[static_cast<std::size_t>(e.j)] = true;
    if (++assigned == n) break;
  }
  return match;
}

std::vector<int> brute_force_matching(std::span<const double> weight, int n,
                                      bool maximize) {
  if (n > 10) throw std::invalid_argument("brute_force_matching: n > 10");
  std::vector<int> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  std::vector<int> best = perm;
  double best_w = assignment_weight(weight, n, perm);
  while (std::next_permutation(perm.begin(), perm.end())) {
    const double w = assignment_weight(weight, n, perm);
    if (maximize ? w > best_w : w < best_w) {
      best_w = w;
      best = perm;
    }
  }
  return best;
}

}  // namespace tb
