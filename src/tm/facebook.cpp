#include "tm/facebook.h"

#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace tb {
namespace {

double log_jitter(Rng& rng, double decades) {
  return std::pow(10.0, rng.next_double(-decades, decades));
}

}  // namespace

std::vector<double> synth_tm_hadoop(int racks, std::uint64_t seed) {
  if (racks < 2) throw std::invalid_argument("synth_tm_hadoop: racks >= 2");
  Rng rng(seed);
  std::vector<double> tm(static_cast<std::size_t>(racks) *
                             static_cast<std::size_t>(racks),
                         0.0);
  // Hadoop: "nearly equal weights" — unit demand with ~ +-0.15 decade jitter.
  for (int i = 0; i < racks; ++i) {
    for (int j = 0; j < racks; ++j) {
      if (i == j) continue;
      tm[static_cast<std::size_t>(i) * static_cast<std::size_t>(racks) +
         static_cast<std::size_t>(j)] = log_jitter(rng, 0.15);
    }
  }
  return tm;
}

std::vector<double> synth_tm_frontend(int racks, std::uint64_t seed) {
  if (racks < 4) throw std::invalid_argument("synth_tm_frontend: racks >= 4");
  Rng rng(seed);
  // Rack roles, proportions after Roy et al.: ~20% cache followers,
  // ~70% web servers, ~10% miscellaneous.
  enum class Role { Web, Cache, Misc };
  std::vector<Role> role(static_cast<std::size_t>(racks));
  const int num_cache = std::max(1, racks / 5);
  const int num_misc = std::max(1, racks / 10);
  for (int i = 0; i < racks; ++i) {
    if (i < num_cache) {
      role[static_cast<std::size_t>(i)] = Role::Cache;
    } else if (i < num_cache + num_misc) {
      role[static_cast<std::size_t>(i)] = Role::Misc;
    } else {
      role[static_cast<std::size_t>(i)] = Role::Web;
    }
  }

  std::vector<double> tm(static_cast<std::size_t>(racks) *
                             static_cast<std::size_t>(racks),
                         0.0);
  for (int i = 0; i < racks; ++i) {
    for (int j = 0; j < racks; ++j) {
      if (i == j) continue;
      const Role ri = role[static_cast<std::size_t>(i)];
      const Role rj = role[static_cast<std::size_t>(j)];
      double base = 1.0;  // web <-> web: light
      if (ri == Role::Cache || rj == Role::Cache) base = 100.0;  // cache-heavy
      if (ri == Role::Cache && rj == Role::Cache) base = 10.0;
      if (ri == Role::Misc || rj == Role::Misc) base = 10.0;
      tm[static_cast<std::size_t>(i) * static_cast<std::size_t>(racks) +
         static_cast<std::size_t>(j)] = base * log_jitter(rng, 0.2);
    }
  }
  return tm;
}

TrafficMatrix map_rack_tm(const Network& net, const std::vector<double>& rack_tm,
                          int racks, std::uint64_t placement_seed) {
  if (static_cast<int>(rack_tm.size()) != racks * racks) {
    throw std::invalid_argument("map_rack_tm: matrix size mismatch");
  }
  const std::vector<int> hosts = net.host_nodes();
  const int h = static_cast<int>(hosts.size());
  const int used = std::min(h, racks);
  if (used < 2) throw std::invalid_argument("map_rack_tm: need >= 2 hosts");

  // Even downsampling of rack indices ("nearest valid size").
  std::vector<int> rack_of(static_cast<std::size_t>(used));
  for (int i = 0; i < used; ++i) {
    rack_of[static_cast<std::size_t>(i)] =
        static_cast<int>((static_cast<long>(i) * racks) / used);
  }
  if (placement_seed != 0) {
    Rng rng(placement_seed);
    rng.shuffle(rack_of);
  }

  TrafficMatrix tm;
  tm.name = placement_seed == 0 ? "FB-sampled" : "FB-shuffled";
  for (int i = 0; i < used; ++i) {
    for (int j = 0; j < used; ++j) {
      if (i == j) continue;
      const double w =
          rack_tm[static_cast<std::size_t>(rack_of[static_cast<std::size_t>(i)]) *
                      static_cast<std::size_t>(racks) +
                  static_cast<std::size_t>(rack_of[static_cast<std::size_t>(j)])];
      if (w > 0.0) {
        tm.demands.push_back({hosts[static_cast<std::size_t>(i)],
                              hosts[static_cast<std::size_t>(j)], w});
      }
    }
  }
  tm.canonicalize();
  hose_normalize(tm, net.graph.num_nodes());
  return tm;
}

}  // namespace tb
