#include "tm/traffic_matrix.h"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace tb {

double TrafficMatrix::total_demand() const {
  double sum = 0.0;
  for (const Demand& d : demands) sum += d.amount;
  return sum;
}

double TrafficMatrix::max_row_sum(int num_nodes) const {
  std::vector<double> out(static_cast<std::size_t>(num_nodes), 0.0);
  std::vector<double> in(static_cast<std::size_t>(num_nodes), 0.0);
  for (const Demand& d : demands) {
    out[static_cast<std::size_t>(d.src)] += d.amount;
    in[static_cast<std::size_t>(d.dst)] += d.amount;
  }
  double mx = 0.0;
  for (const double v : out) mx = std::max(mx, v);
  for (const double v : in) mx = std::max(mx, v);
  return mx;
}

void TrafficMatrix::scale(double f) {
  for (Demand& d : demands) d.amount *= f;
}

void TrafficMatrix::canonicalize() {
  std::map<std::pair<int, int>, double> merged;
  for (const Demand& d : demands) {
    if (d.src == d.dst || d.amount == 0.0) continue;
    merged[{d.src, d.dst}] += d.amount;
  }
  demands.clear();
  demands.reserve(merged.size());
  for (const auto& [key, amount] : merged) {
    if (amount > 0.0) demands.push_back({key.first, key.second, amount});
  }
}

void validate_tm(const TrafficMatrix& tm, const Network& net, bool check_hose,
                 double hose_cap) {
  const int n = net.graph.num_nodes();
  for (const Demand& d : tm.demands) {
    if (d.src < 0 || d.src >= n || d.dst < 0 || d.dst >= n) {
      throw std::logic_error("TM '" + tm.name + "': endpoint out of range");
    }
    if (d.src == d.dst) {
      throw std::logic_error("TM '" + tm.name + "': self demand");
    }
    if (d.amount <= 0.0) {
      throw std::logic_error("TM '" + tm.name + "': non-positive demand");
    }
    if (net.servers[static_cast<std::size_t>(d.src)] == 0 ||
        net.servers[static_cast<std::size_t>(d.dst)] == 0) {
      throw std::logic_error("TM '" + tm.name + "': endpoint has no servers");
    }
  }
  if (check_hose && tm.max_row_sum(n) > hose_cap * (1.0 + 1e-9)) {
    throw std::logic_error("TM '" + tm.name + "': violates hose model");
  }
}

double hose_normalize(TrafficMatrix& tm, int num_nodes) {
  const double mx = tm.max_row_sum(num_nodes);
  if (mx <= 0.0) return 1.0;
  const double f = 1.0 / mx;
  tm.scale(f);
  return f;
}

}  // namespace tb
