// Synthetic traffic-matrix generators (paper §II-C, §IV-A):
//
//  * all_to_all       — T(v, w) = 1/H between every ordered host pair.
//  * random_matching  — k superimposed random perfect matchings over the
//                       hosts, each of weight 1/k ("random matching with k
//                       servers per switch"). k = 1 is one elephant flow
//                       in/out per host.
//  * longest_matching — the paper's near-worst-case heuristic: maximum-
//                       weight perfect matching of hosts under shortest-
//                       path-length weights (Hungarian algorithm).
//  * kodialam_tm      — the re-purposed near-worst-case TM of Kodialam et
//                       al. [26]: an LP maximizing total demand-weighted
//                       path length over the hose polytope (our simplex).
//  * with_elephants   — the Fig 10-12 variant: a fraction `frac` of flows
//                       get weight `large` (default 10), the rest weight 1.
#pragma once

#include <cstdint>

#include "tm/traffic_matrix.h"
#include "topo/network.h"

namespace tb {

TrafficMatrix all_to_all(const Network& net);

/// k >= 1 matchings of weight 1/k each; matchings avoid self pairs.
TrafficMatrix random_matching(const Network& net, int k, std::uint64_t seed);

/// Server-granularity random matching: every *server* sends 1 unit to a
/// uniformly random other server (derangement over servers), aggregated to
/// switch demands. A switch with s servers therefore emits s units — the
/// per-server hose model used by the Fig 15 / Yuan et al. replication,
/// where unequal server counts must show up in the workload.
TrafficMatrix random_matching_servers(const Network& net, std::uint64_t seed);

TrafficMatrix longest_matching(const Network& net);

/// Greedy variant of longest matching (ablation of the Hungarian step).
TrafficMatrix longest_matching_greedy(const Network& net);

/// LP-based Kodialam TM. Cost grows as H^2 LP columns; H <= ~200 advised.
TrafficMatrix kodialam_tm(const Network& net);

/// Reweight: `frac` (in [0, 1]) of the flows get `large` weight, others 1.
/// Not hose-normalized (mirrors the paper's Fig 10-12 setup).
TrafficMatrix with_elephants(const TrafficMatrix& base, double frac,
                             double large, std::uint64_t seed);

}  // namespace tb
