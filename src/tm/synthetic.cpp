#include "tm/synthetic.h"

#include <stdexcept>
#include <vector>

#include "graph/algorithms.h"
#include "lp/simplex.h"
#include "matching/hungarian.h"
#include "util/rng.h"

namespace tb {
namespace {

/// Hop-distance matrix restricted to host nodes (row-major H x H).
std::vector<double> host_distance_matrix(const Network& net,
                                         const std::vector<int>& hosts) {
  const auto h = hosts.size();
  std::vector<double> dist(h * h, 0.0);
  for (std::size_t i = 0; i < h; ++i) {
    const std::vector<int> d = bfs_distances(net.graph, hosts[i]);
    for (std::size_t j = 0; j < h; ++j) {
      const int dij = d[static_cast<std::size_t>(hosts[j])];
      if (dij == kUnreachable) {
        throw std::logic_error("host_distance_matrix: disconnected hosts");
      }
      dist[i * h + j] = static_cast<double>(dij);
    }
  }
  return dist;
}

}  // namespace

TrafficMatrix all_to_all(const Network& net) {
  const std::vector<int> hosts = net.host_nodes();
  const auto h = static_cast<double>(hosts.size());
  TrafficMatrix tm;
  tm.name = "A2A";
  tm.demands.reserve(hosts.size() * (hosts.size() - 1));
  for (const int u : hosts) {
    for (const int v : hosts) {
      if (u != v) tm.demands.push_back({u, v, 1.0 / h});
    }
  }
  return tm;
}

TrafficMatrix random_matching(const Network& net, int k, std::uint64_t seed) {
  if (k < 1) throw std::invalid_argument("random_matching: k >= 1");
  const std::vector<int> hosts = net.host_nodes();
  const int h = static_cast<int>(hosts.size());
  if (h < 2) throw std::invalid_argument("random_matching: need >= 2 hosts");

  Rng rng(seed);
  TrafficMatrix tm;
  tm.name = "RM(" + std::to_string(k) + ")";
  const double w = 1.0 / static_cast<double>(k);
  for (int round = 0; round < k; ++round) {
    // Random permutation with fixed points removed by a cyclic shift trick:
    // re-draw until derangement-ish (expected < e tries), else rotate.
    std::vector<int> perm = rng.permutation(h);
    for (int tries = 0; tries < 32; ++tries) {
      bool has_fixed = false;
      for (int i = 0; i < h; ++i) {
        if (perm[static_cast<std::size_t>(i)] == i) {
          has_fixed = true;
          break;
        }
      }
      if (!has_fixed) break;
      perm = rng.permutation(h);
    }
    for (int i = 0; i < h; ++i) {
      int j = perm[static_cast<std::size_t>(i)];
      if (j == i) j = (i + 1) % h;  // final guard against fixed points
      tm.demands.push_back({hosts[static_cast<std::size_t>(i)],
                            hosts[static_cast<std::size_t>(j)], w});
    }
  }
  tm.canonicalize();
  return tm;
}

TrafficMatrix random_matching_servers(const Network& net, std::uint64_t seed) {
  // Expand servers, permute, map back to switches.
  std::vector<int> switch_of_server;
  for (int v = 0; v < net.graph.num_nodes(); ++v) {
    for (int s = 0; s < net.servers[static_cast<std::size_t>(v)]; ++s) {
      switch_of_server.push_back(v);
    }
  }
  const int n = static_cast<int>(switch_of_server.size());
  if (n < 2) throw std::invalid_argument("random_matching_servers: < 2 servers");
  Rng rng(seed);
  std::vector<int> perm = rng.permutation(n);
  TrafficMatrix tm;
  tm.name = "RM-servers";
  for (int i = 0; i < n; ++i) {
    int j = perm[static_cast<std::size_t>(i)];
    if (j == i) j = (i + 1) % n;
    const int src = switch_of_server[static_cast<std::size_t>(i)];
    const int dst = switch_of_server[static_cast<std::size_t>(j)];
    if (src != dst) tm.demands.push_back({src, dst, 1.0});
  }
  tm.canonicalize();
  return tm;
}

TrafficMatrix longest_matching(const Network& net) {
  const std::vector<int> hosts = net.host_nodes();
  const int h = static_cast<int>(hosts.size());
  if (h < 2) throw std::invalid_argument("longest_matching: need >= 2 hosts");
  std::vector<double> dist = host_distance_matrix(net, hosts);
  // Forbid self pairs.
  for (int i = 0; i < h; ++i) {
    dist[static_cast<std::size_t>(i) * static_cast<std::size_t>(h) +
         static_cast<std::size_t>(i)] = -1e9;
  }
  const std::vector<int> match = max_weight_perfect_matching(dist, h);
  TrafficMatrix tm;
  tm.name = "LM";
  for (int i = 0; i < h; ++i) {
    const int j = match[static_cast<std::size_t>(i)];
    if (j != i) {
      tm.demands.push_back({hosts[static_cast<std::size_t>(i)],
                            hosts[static_cast<std::size_t>(j)], 1.0});
    }
  }
  tm.canonicalize();
  return tm;
}

TrafficMatrix longest_matching_greedy(const Network& net) {
  const std::vector<int> hosts = net.host_nodes();
  const int h = static_cast<int>(hosts.size());
  std::vector<double> dist = host_distance_matrix(net, hosts);
  for (int i = 0; i < h; ++i) {
    dist[static_cast<std::size_t>(i) * static_cast<std::size_t>(h) +
         static_cast<std::size_t>(i)] = -1e9;
  }
  const std::vector<int> match = greedy_matching(dist, h, /*maximize=*/true);
  TrafficMatrix tm;
  tm.name = "LM-greedy";
  for (int i = 0; i < h; ++i) {
    const int j = match[static_cast<std::size_t>(i)];
    if (j >= 0 && j != i) {
      tm.demands.push_back({hosts[static_cast<std::size_t>(i)],
                            hosts[static_cast<std::size_t>(j)], 1.0});
    }
  }
  tm.canonicalize();
  return tm;
}

TrafficMatrix kodialam_tm(const Network& net) {
  const std::vector<int> hosts = net.host_nodes();
  const int h = static_cast<int>(hosts.size());
  if (h < 2) throw std::invalid_argument("kodialam_tm: need >= 2 hosts");
  const std::vector<double> dist = host_distance_matrix(net, hosts);

  // max sum_{i != j} d(i,j) * T(i,j)   s.t. per-host egress/ingress <= 1.
  lp::Problem prob;
  prob.maximize = true;
  std::vector<std::vector<int>> var(static_cast<std::size_t>(h),
                                    std::vector<int>(static_cast<std::size_t>(h), -1));
  for (int i = 0; i < h; ++i) {
    for (int j = 0; j < h; ++j) {
      if (i == j) continue;
      var[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          prob.add_var(dist[static_cast<std::size_t>(i) *
                                static_cast<std::size_t>(h) +
                            static_cast<std::size_t>(j)]);
    }
  }
  for (int i = 0; i < h; ++i) {
    lp::Row out_row;
    lp::Row in_row;
    out_row.sense = lp::Sense::LE;
    out_row.rhs = 1.0;
    in_row.sense = lp::Sense::LE;
    in_row.rhs = 1.0;
    for (int j = 0; j < h; ++j) {
      if (i == j) continue;
      out_row.terms.emplace_back(
          var[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)], 1.0);
      in_row.terms.emplace_back(
          var[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)], 1.0);
    }
    prob.add_row(std::move(out_row));
    prob.add_row(std::move(in_row));
  }
  const lp::Result sol = lp::solve(prob);
  if (sol.status != lp::Status::Optimal) {
    throw std::runtime_error("kodialam_tm: LP did not reach optimality");
  }

  TrafficMatrix tm;
  tm.name = "Kodialam";
  for (int i = 0; i < h; ++i) {
    for (int j = 0; j < h; ++j) {
      if (i == j) continue;
      const double t =
          sol.x[static_cast<std::size_t>(var[static_cast<std::size_t>(i)]
                                            [static_cast<std::size_t>(j)])];
      if (t > 1e-9) {
        tm.demands.push_back({hosts[static_cast<std::size_t>(i)],
                              hosts[static_cast<std::size_t>(j)], t});
      }
    }
  }
  tm.canonicalize();
  return tm;
}

TrafficMatrix with_elephants(const TrafficMatrix& base, double frac,
                             double large, std::uint64_t seed) {
  if (frac < 0.0 || frac > 1.0) {
    throw std::invalid_argument("with_elephants: frac in [0, 1]");
  }
  Rng rng(seed);
  TrafficMatrix tm = base;
  tm.name = base.name + "+elephants(" + std::to_string(frac) + ")";
  const int n = static_cast<int>(tm.demands.size());
  const int big = static_cast<int>(frac * n + 0.5);
  const std::vector<int> chosen = rng.sample_without_replacement(n, big);
  for (Demand& d : tm.demands) d.amount = 1.0;
  for (const int idx : chosen) {
    tm.demands[static_cast<std::size_t>(idx)].amount = large;
  }
  return tm;
}

}  // namespace tb
