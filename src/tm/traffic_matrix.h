// Traffic matrices (paper §II-A). A TM lists demands between *host
// switches* (nodes with attached servers). Following the paper's hose
// normalization, synthetic TMs give every host switch at most 1 unit of
// egress and 1 unit of ingress; throughput is then the maximum t at which
// T*t is feasible. (Since server-switch links have infinite capacity, the
// per-server formulation reduces to this per-ToR one; the paper notes "our
// traffic matrices effectively encode switch-to-switch traffic".)
#pragma once

#include <string>
#include <vector>

#include "topo/network.h"

namespace tb {

struct Demand {
  int src = 0;       ///< switch node id
  int dst = 0;       ///< switch node id
  double amount = 0; ///< requested flow (before the throughput scaling t)
};

struct TrafficMatrix {
  std::string name;
  std::vector<Demand> demands;

  /// Sum of all demand amounts.
  double total_demand() const;

  /// Max over nodes of out-demand and of in-demand.
  double max_row_sum(int num_nodes) const;

  /// Scale every demand by f.
  void scale(double f);

  /// Merge duplicate (src, dst) entries and drop zero/self demands.
  void canonicalize();

  /// Number of distinct commodities (after canonicalize()).
  std::size_t num_flows() const { return demands.size(); }
};

/// Throws std::logic_error unless every endpoint is a host of `net`,
/// demands are positive, and (if `check_hose`) every node's in/out demand
/// is <= hose_cap (+tolerance).
void validate_tm(const TrafficMatrix& tm, const Network& net,
                 bool check_hose = true, double hose_cap = 1.0);

/// Normalize so the maximum per-node in/out demand equals 1 (no-op on an
/// empty TM). Returns the scale factor applied.
double hose_normalize(TrafficMatrix& tm, int num_nodes);

}  // namespace tb
