// Facebook-cluster traffic matrices (paper §IV-B, after Roy et al. [35]).
//
// The measured rack-to-rack matrices are not public — the paper itself
// recovered order-of-magnitude weights from color-coded plot images. We
// generate synthetic rack matrices reproducing the published structure
// (DESIGN.md records the substitution):
//
//  * TM-H (Hadoop cluster): near-uniform all-rack communication with mild
//    log-scale jitter.
//  * TM-F (frontend cluster): skewed — racks are web servers, cache
//    followers or miscellaneous; cache rows/columns carry order-of-
//    magnitude heavier traffic than web<->web traffic.
//
// Matrices are mapped onto a network's host switches, downsampling evenly
// when the network has fewer hosts than racks (the paper's "Sampled"
// series) and optionally permuting rack placement (its "Shuffled" series).
#pragma once

#include <cstdint>
#include <vector>

#include "tm/traffic_matrix.h"
#include "topo/network.h"

namespace tb {

/// Dense racks x racks demand matrix (row-major, zero diagonal).
std::vector<double> synth_tm_hadoop(int racks, std::uint64_t seed);
std::vector<double> synth_tm_frontend(int racks, std::uint64_t seed);

/// Map a rack matrix onto `net`'s hosts. If the network has H < racks
/// hosts, racks are sampled evenly (stride racks/H); if H >= racks, the
/// first `racks` hosts are used. The result is hose-normalized so the
/// busiest rack sends/receives 1 unit. `placement_seed == 0` keeps the
/// identity rack->host order ("Sampled"); otherwise racks are randomly
/// permuted first ("Shuffled").
TrafficMatrix map_rack_tm(const Network& net, const std::vector<double>& rack_tm,
                          int racks, std::uint64_t placement_seed);

}  // namespace tb
