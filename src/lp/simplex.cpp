#include "lp/simplex.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <utility>

#include "util/thread_pool.h"

namespace tb::lp {
namespace {

/// Internal standard form: min c'x, A x = b (b >= 0), x >= 0. Artificial
/// variables carry a Big-M cost; the basis inverse is kept dense.
struct Standardized {
  int m = 0;                      // rows
  int n = 0;                      // total columns (struct + slack + artificial)
  int num_struct = 0;             // original variables
  std::vector<std::vector<std::pair<int, double>>> cols;  // sparse columns
  std::vector<double> cost;
  std::vector<double> b;
  std::vector<double> row_flip;   // +1/-1 applied to original row i
  std::vector<int> artificial_of_row;  // column id or -1
  double big_m = 0.0;
};

Standardized standardize(const Problem& p) {
  Standardized s;
  s.m = static_cast<int>(p.rows.size());
  s.num_struct = p.num_vars;
  s.cols.resize(static_cast<std::size_t>(p.num_vars));
  s.cost.resize(static_cast<std::size_t>(p.num_vars));
  double max_abs_cost = 1.0;
  for (int j = 0; j < p.num_vars; ++j) {
    const double c = p.objective[static_cast<std::size_t>(j)];
    s.cost[static_cast<std::size_t>(j)] = p.maximize ? -c : c;
    max_abs_cost = std::max(max_abs_cost, std::abs(c));
  }
  s.b.resize(static_cast<std::size_t>(s.m));
  s.row_flip.assign(static_cast<std::size_t>(s.m), 1.0);
  s.artificial_of_row.assign(static_cast<std::size_t>(s.m), -1);

  // First pass: normalized senses and rhs (b >= 0), structural coefficients.
  std::vector<Sense> sense(static_cast<std::size_t>(s.m));
  for (int i = 0; i < s.m; ++i) {
    const Row& row = p.rows[static_cast<std::size_t>(i)];
    double flip = 1.0;
    Sense sn = row.sense;
    if (row.rhs < 0.0) {
      flip = -1.0;
      if (sn == Sense::LE) {
        sn = Sense::GE;
      } else if (sn == Sense::GE) {
        sn = Sense::LE;
      }
    }
    s.row_flip[static_cast<std::size_t>(i)] = flip;
    sense[static_cast<std::size_t>(i)] = sn;
    s.b[static_cast<std::size_t>(i)] = row.rhs * flip;
    for (const auto& [var, coef] : row.terms) {
      if (var < 0 || var >= p.num_vars) {
        throw std::out_of_range("lp::solve: variable index out of range");
      }
      if (coef != 0.0) {
        s.cols[static_cast<std::size_t>(var)].emplace_back(i, coef * flip);
      }
    }
  }

  // Merge duplicate terms within a column (callers may emit repeats).
  for (auto& col : s.cols) {
    std::sort(col.begin(), col.end());
    std::size_t w = 0;
    for (std::size_t r = 0; r < col.size(); ++r) {
      if (w > 0 && col[w - 1].first == col[r].first) {
        col[w - 1].second += col[r].second;
      } else {
        col[w++] = col[r];
      }
    }
    col.resize(w);
  }

  // Slack / surplus / artificial columns.
  s.big_m = 1e7 * max_abs_cost;
  for (int i = 0; i < s.m; ++i) {
    const Sense sn = sense[static_cast<std::size_t>(i)];
    if (sn == Sense::LE) {
      s.cols.push_back({{i, 1.0}});
      s.cost.push_back(0.0);
    } else if (sn == Sense::GE) {
      s.cols.push_back({{i, -1.0}});
      s.cost.push_back(0.0);
    }
  }
  for (int i = 0; i < s.m; ++i) {
    const Sense sn = sense[static_cast<std::size_t>(i)];
    const bool needs_artificial = sn != Sense::LE;
    if (needs_artificial) {
      s.artificial_of_row[static_cast<std::size_t>(i)] =
          static_cast<int>(s.cols.size());
      s.cols.push_back({{i, 1.0}});
      s.cost.push_back(s.big_m);
    }
  }
  s.n = static_cast<int>(s.cols.size());
  return s;
}

/// Attempt a warm start from candidate basis `cand` (a prior Result::basis
/// of a same-shaped problem): build the dense basis matrix, invert it by
/// Gauss-Jordan with partial pivoting, and accept only if it is nonsingular
/// and the implied basic solution is primal feasible. On success fills
/// basis/binv/xb; on any failure leaves them untouched and returns false so
/// the caller falls back to the cold slack/artificial start.
bool try_warm_basis(const Standardized& s, const std::vector<int>& cand,
                    std::vector<int>& basis, std::vector<double>& binv,
                    std::vector<double>& xb) {
  const int m = s.m;
  if (static_cast<int>(cand.size()) != m) return false;
  std::vector<std::uint8_t> used(static_cast<std::size_t>(s.n), 0);
  for (const int j : cand) {
    if (j < 0 || j >= s.n || used[static_cast<std::size_t>(j)]) return false;
    used[static_cast<std::size_t>(j)] = 1;
  }
  // Augmented [B | I], row-major; Gauss-Jordan turns it into [I | B^-1].
  const auto w = static_cast<std::size_t>(2 * m);
  std::vector<double> aug(static_cast<std::size_t>(m) * w, 0.0);
  for (int c = 0; c < m; ++c) {
    for (const auto& [r, v] : s.cols[static_cast<std::size_t>(cand[c])]) {
      aug[static_cast<std::size_t>(r) * w + static_cast<std::size_t>(c)] = v;
    }
  }
  for (int i = 0; i < m; ++i) {
    aug[static_cast<std::size_t>(i) * w + static_cast<std::size_t>(m + i)] =
        1.0;
  }
  for (int col = 0; col < m; ++col) {
    int piv = -1;
    double best = 1e-9;
    for (int r = col; r < m; ++r) {
      const double v = std::abs(
          aug[static_cast<std::size_t>(r) * w + static_cast<std::size_t>(col)]);
      if (v > best) {
        best = v;
        piv = r;
      }
    }
    if (piv < 0) return false;  // singular candidate basis
    if (piv != col) {
      for (std::size_t j = 0; j < w; ++j) {
        std::swap(aug[static_cast<std::size_t>(piv) * w + j],
                  aug[static_cast<std::size_t>(col) * w + j]);
      }
    }
    double* prow = &aug[static_cast<std::size_t>(col) * w];
    const double inv = 1.0 / prow[col];
    for (std::size_t j = 0; j < w; ++j) prow[j] *= inv;
    for (int r = 0; r < m; ++r) {
      if (r == col) continue;
      double* row = &aug[static_cast<std::size_t>(r) * w];
      const double f = row[col];
      if (f == 0.0) continue;
      for (std::size_t j = 0; j < w; ++j) row[j] -= f * prow[j];
    }
  }
  // xb = B^-1 b must be (near-)nonnegative for a primal-feasible start.
  std::vector<double> cand_xb(static_cast<std::size_t>(m), 0.0);
  for (int i = 0; i < m; ++i) {
    double acc = 0.0;
    for (int j = 0; j < m; ++j) {
      acc += aug[static_cast<std::size_t>(i) * w +
                 static_cast<std::size_t>(m + j)] *
             s.b[static_cast<std::size_t>(j)];
    }
    if (acc < -1e-7) return false;
    cand_xb[static_cast<std::size_t>(i)] = std::max(acc, 0.0);
  }
  basis = cand;
  xb = std::move(cand_xb);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) {
      binv[static_cast<std::size_t>(i) * m + static_cast<std::size_t>(j)] =
          aug[static_cast<std::size_t>(i) * w +
              static_cast<std::size_t>(m + j)];
    }
  }
  return true;
}

}  // namespace

const char* status_name(Status s) {
  switch (s) {
    case Status::Optimal: return "optimal";
    case Status::Infeasible: return "infeasible";
    case Status::Unbounded: return "unbounded";
    case Status::IterationLimit: return "iteration-limit";
  }
  return "?";
}

Result solve(const Problem& p, const Options& opts) {
  if (static_cast<int>(p.objective.size()) != p.num_vars) {
    throw std::invalid_argument("lp::solve: objective size != num_vars");
  }
  Result res;
  Standardized s = standardize(p);
  const int m = s.m;
  const int n = s.n;
  if (m == 0) {
    // Only x >= 0: optimum is 0 unless some improving direction exists.
    res.x.assign(static_cast<std::size_t>(p.num_vars), 0.0);
    for (int j = 0; j < p.num_vars; ++j) {
      const double c = s.cost[static_cast<std::size_t>(j)];
      if (c < -opts.cost_tol) {
        res.status = Status::Unbounded;
        return res;
      }
    }
    res.status = Status::Optimal;
    res.objective = 0.0;
    return res;
  }

  std::vector<int> basis(static_cast<std::size_t>(m), -1);
  std::vector<double> binv(static_cast<std::size_t>(m) *
                               static_cast<std::size_t>(m),
                           0.0);
  std::vector<double> xb;
  if (opts.warm_basis != nullptr &&
      try_warm_basis(s, *opts.warm_basis, basis, binv, xb)) {
    res.warm_started = true;
  } else {
    // Cold start: per row, its slack if one exists with +1 coefficient,
    // else its artificial. Binv is the identity (slack/artificial columns
    // are unit vectors).
    basis.assign(static_cast<std::size_t>(m), -1);
    for (int j = s.num_struct; j < n; ++j) {
      const auto& col = s.cols[static_cast<std::size_t>(j)];
      if (col.size() == 1 && col[0].second == 1.0) {
        const int i = col[0].first;
        if (basis[static_cast<std::size_t>(i)] == -1) {
          basis[static_cast<std::size_t>(i)] = j;
        }
      }
    }
    for (int i = 0; i < m; ++i) {
      if (basis[static_cast<std::size_t>(i)] == -1) {
        throw std::logic_error("lp::solve: missing initial basis column");
      }
      binv[static_cast<std::size_t>(i) * m + static_cast<std::size_t>(i)] = 1.0;
    }
    xb = s.b;
  }

  std::vector<std::uint8_t> in_basis(static_cast<std::size_t>(n), 0);
  for (const int j : basis) in_basis[static_cast<std::size_t>(j)] = 1;

  const long max_iter = opts.max_iterations > 0
                            ? opts.max_iterations
                            : 50L * (m + n) + 5000L;
  std::vector<double> y(static_cast<std::size_t>(m));
  std::vector<double> d(static_cast<std::size_t>(m));

  // Deterministic parallel scans (see Options::pool): per-iteration work
  // whose slots are independent — BTRAN columns, FTRAN rows, basis-inverse
  // row updates — runs on the pool with identical per-slot arithmetic, and
  // pricing is partitioned into fixed column ranges reduced in range order
  // with the serial comparison semantics. Both gates depend only on the
  // problem shape, never the pool size, so the solve is bitwise invariant
  // across thread counts (pool == nullptr included).
  ThreadPool* pool = opts.pool;
  constexpr int kPriceRange = 256;  // columns per pricing range (fixed)
  const bool par_rows = pool != nullptr && m >= 256;
  const bool par_price = pool != nullptr && n >= 2 * kPriceRange;
  std::vector<std::pair<double, int>> price_best;  // (best rc, column)/range

  long degenerate_streak = 0;
  bool bland = false;

  for (res.iterations = 0; res.iterations < max_iter; ++res.iterations) {
    // BTRAN: y = cB' * Binv.
    const auto btran_col = [&](std::size_t j) {
      double acc = 0.0;
      for (int i = 0; i < m; ++i) {
        acc += s.cost[static_cast<std::size_t>(basis[static_cast<std::size_t>(i)])] *
               binv[static_cast<std::size_t>(i) * m + j];
      }
      y[j] = acc;
    };
    if (par_rows) {
      pool->parallel_for(0, static_cast<std::size_t>(m), btran_col, 64);
    } else {
      for (int j = 0; j < m; ++j) btran_col(static_cast<std::size_t>(j));
    }

    // Pricing.
    int entering = -1;
    double best_rc = -opts.cost_tol;
    const auto price_column = [&](int j, double& best, int& ent) {
      double rc = s.cost[static_cast<std::size_t>(j)];
      for (const auto& [i, v] : s.cols[static_cast<std::size_t>(j)]) {
        rc -= y[static_cast<std::size_t>(i)] * v;
      }
      if (bland) {
        if (rc < -opts.cost_tol && ent < 0) ent = j;
      } else if (rc < best) {
        best = rc;
        ent = j;
      }
    };
    if (par_price) {
      const int nranges = (n + kPriceRange - 1) / kPriceRange;
      price_best.assign(static_cast<std::size_t>(nranges), {0.0, -1});
      const auto price_range = [&](std::size_t rg) {
        const int j0 = static_cast<int>(rg) * kPriceRange;
        const int j1 = std::min(n, j0 + kPriceRange);
        double best = -opts.cost_tol;
        int ent = -1;
        for (int j = j0; j < j1; ++j) {
          if (in_basis[static_cast<std::size_t>(j)]) continue;
          price_column(j, best, ent);
          if (bland && ent >= 0) break;
        }
        price_best[rg] = {best, ent};
      };
      pool->parallel_for(0, static_cast<std::size_t>(nranges), price_range);
      // Range-order reduction with the serial strict-< semantics: the
      // winner is exactly the column the single-threaded scan would pick.
      for (const auto& [best, ent] : price_best) {
        if (ent < 0) continue;
        if (bland) {
          entering = ent;
          break;
        }
        if (best < best_rc) {
          best_rc = best;
          entering = ent;
        }
      }
    } else {
      for (int j = 0; j < n; ++j) {
        if (in_basis[static_cast<std::size_t>(j)]) continue;
        price_column(j, best_rc, entering);
        if (bland && entering >= 0) break;
      }
    }
    if (entering < 0) break;  // optimal

    // FTRAN: d = Binv * A[entering], one independent dot per row (the
    // per-row accumulation order matches the serial entry-outer loop).
    const auto& ecol = s.cols[static_cast<std::size_t>(entering)];
    const auto ftran_row = [&](std::size_t r) {
      double acc = 0.0;
      for (const auto& [i, v] : ecol) {
        acc += v * binv[r * m + static_cast<std::size_t>(i)];
      }
      d[r] = acc;
    };
    if (par_rows) {
      pool->parallel_for(0, static_cast<std::size_t>(m), ftran_row, 64);
    } else {
      for (int r = 0; r < m; ++r) ftran_row(static_cast<std::size_t>(r));
    }

    // Ratio test.
    int leave = -1;
    double theta = std::numeric_limits<double>::infinity();
    for (int i = 0; i < m; ++i) {
      const double di = d[static_cast<std::size_t>(i)];
      if (di > opts.pivot_tol) {
        const double ratio = xb[static_cast<std::size_t>(i)] / di;
        const bool better =
            ratio < theta - 1e-12 ||
            (ratio < theta + 1e-12 && leave >= 0 &&
             (bland ? basis[static_cast<std::size_t>(i)] <
                          basis[static_cast<std::size_t>(leave)]
                    : di > d[static_cast<std::size_t>(leave)]));
        if (leave < 0 || better) {
          theta = ratio;
          leave = i;
        }
      }
    }
    if (leave < 0) {
      res.status = Status::Unbounded;
      return res;
    }

    if (theta < 1e-11) {
      if (++degenerate_streak > 2L * (m + n)) bland = true;
    } else {
      degenerate_streak = 0;
      bland = false;
    }

    // Pivot: update xb and Binv.
    const double piv = d[static_cast<std::size_t>(leave)];
    for (int i = 0; i < m; ++i) {
      if (i == leave) continue;
      xb[static_cast<std::size_t>(i)] -= theta * d[static_cast<std::size_t>(i)];
      if (xb[static_cast<std::size_t>(i)] < 0.0 &&
          xb[static_cast<std::size_t>(i)] > -1e-9) {
        xb[static_cast<std::size_t>(i)] = 0.0;
      }
    }
    xb[static_cast<std::size_t>(leave)] = theta;

    double* lrow = &binv[static_cast<std::size_t>(leave) * m];
    for (int j = 0; j < m; ++j) lrow[j] /= piv;
    const auto eliminate_row = [&](std::size_t i) {
      if (static_cast<int>(i) == leave) return;
      const double f = d[i];
      if (f == 0.0) return;
      double* row = &binv[i * m];
      for (int j = 0; j < m; ++j) row[j] -= f * lrow[j];
    };
    if (par_rows) {
      pool->parallel_for(0, static_cast<std::size_t>(m), eliminate_row, 64);
    } else {
      for (int i = 0; i < m; ++i) eliminate_row(static_cast<std::size_t>(i));
    }

    in_basis[static_cast<std::size_t>(basis[static_cast<std::size_t>(leave)])] = 0;
    basis[static_cast<std::size_t>(leave)] = entering;
    in_basis[static_cast<std::size_t>(entering)] = 1;
  }

  if (res.iterations >= max_iter) {
    res.status = Status::IterationLimit;
    return res;
  }

  // Extract solution; detect infeasibility (artificial basic at > 0).
  res.x.assign(static_cast<std::size_t>(p.num_vars), 0.0);
  double obj = 0.0;
  for (int i = 0; i < m; ++i) {
    const int j = basis[static_cast<std::size_t>(i)];
    const double v = xb[static_cast<std::size_t>(i)];
    if (j >= s.num_struct &&
        s.artificial_of_row[static_cast<std::size_t>(
            s.cols[static_cast<std::size_t>(j)][0].first)] == j &&
        v > 1e-7) {
      res.status = Status::Infeasible;
      return res;
    }
    if (j < p.num_vars) {
      res.x[static_cast<std::size_t>(j)] = v;
      obj += p.objective[static_cast<std::size_t>(j)] * v;
    }
  }
  res.objective = obj;

  // Duals for the original rows (y already reflects the final basis; flip
  // back the sign of rows we negated, and restore the max sense).
  res.dual.resize(static_cast<std::size_t>(m));
  const double obj_sign = p.maximize ? -1.0 : 1.0;
  for (int i = 0; i < m; ++i) {
    res.dual[static_cast<std::size_t>(i)] =
        obj_sign * y[static_cast<std::size_t>(i)] *
        s.row_flip[static_cast<std::size_t>(i)];
  }
  res.basis = basis;
  res.status = Status::Optimal;
  return res;
}

}  // namespace tb::lp
