// A self-contained linear-programming solver (two-phase revised simplex).
//
// The paper computes throughput with Gurobi; Gurobi is proprietary, so this
// module provides the exact-LP substrate from scratch. It is a dense-basis
// revised simplex with sparse constraint columns, two-phase start, Dantzig
// pricing with a Bland's-rule anti-cycling fallback, and dual extraction
// (the duals certify optimality in tests via the sparsest-cut relaxation of
// Theorem 3).
//
// Intended scale: a few thousand rows/columns — exact throughput on small
// networks, path-restricted LPs (Fig 15), and the Kodialam TM LP. Large
// instances use the Garg-Konemann engine in src/mcf instead.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace tb {
class ThreadPool;
}  // namespace tb

namespace tb::lp {

enum class Sense { LE, GE, EQ };

/// A constraint: sum_j terms[j].coef * x[terms[j].var] (sense) rhs.
struct Row {
  std::vector<std::pair<int, double>> terms;
  Sense sense = Sense::LE;
  double rhs = 0.0;
};

/// LP over variables x >= 0.
struct Problem {
  int num_vars = 0;
  bool maximize = true;
  std::vector<double> objective;  ///< size num_vars
  std::vector<Row> rows;

  /// Create a fresh variable with the given objective coefficient.
  int add_var(double obj_coef) {
    objective.push_back(obj_coef);
    return num_vars++;
  }
  void add_row(Row r) { rows.push_back(std::move(r)); }
};

enum class Status { Optimal, Infeasible, Unbounded, IterationLimit };

struct Result {
  Status status = Status::IterationLimit;
  double objective = 0.0;
  std::vector<double> x;     ///< primal solution, size num_vars
  std::vector<double> dual;  ///< dual value per input row (sign per sense)
  long iterations = 0;
  /// Optimal basis: one internal column index per row, in row order. The
  /// numbering covers structural variables [0, num_vars) followed by the
  /// slack/surplus/artificial columns the standardizer appends, so it is
  /// stable across solves of problems with identical shape (same variable
  /// count and same row-sense sequence). Feed it back via
  /// Options::warm_basis to re-solve a nearby instance without the
  /// slack-basis cold start. Empty unless status == Optimal.
  std::vector<int> basis;
  /// True when the solve actually started from Options::warm_basis (the
  /// candidate basis was nonsingular and primal feasible).
  bool warm_started = false;
};

struct Options {
  long max_iterations = 0;   ///< 0 means automatic (50 * (rows + cols) + 5000)
  double pivot_tol = 1e-9;   ///< minimum magnitude for a pivot element
  double cost_tol = 1e-8;    ///< reduced-cost optimality tolerance
  /// Candidate starting basis (a previous Result::basis from a same-shaped
  /// problem). Tried opportunistically: if it is the wrong size, singular,
  /// or infeasible for this instance, the solver silently falls back to
  /// the cold slack/artificial start. Never affects correctness — only the
  /// pivot count.
  const std::vector<int>* warm_basis = nullptr;
  /// When set, the per-iteration independent scans — pricing (reduced
  /// costs over fixed column ranges), BTRAN, and FTRAN — run on this pool,
  /// gated on problem size. The partitioning is a compile-time constant
  /// and every reduction is applied in range order with the serial
  /// comparison semantics, so the chosen pivots (and therefore the whole
  /// solve) are bitwise identical to the serial path for any pool size.
  ThreadPool* pool = nullptr;
};

/// Solve the LP. The returned x satisfies all rows within ~1e-6.
Result solve(const Problem& p, const Options& opts = {});

const char* status_name(Status s);

}  // namespace tb::lp
