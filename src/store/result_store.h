// On-disk content-addressed result store: the Runner's in-process cache
// promoted to a file, so repeat questions across processes are answered in
// O(lookup) instead of O(solve).
//
// Keys are the Runner's cache identity (topology label, TM label, scenario
// label, cell seed, solver/cut/warm configuration fingerprint, trial
// count — see exp::cell_result_key); values are the uniform CSV row codec
// (exp::csv_row / exp::cell_from_csv_row), so a stored CellResult replays
// bit-exactly: a sweep answered from the store emits byte-identical CSV.
//
// File format (version 1) — a single append-only text-framed file:
//
//   #! topobench-store v1 schema=<16-hex FNV-1a of the CSV header>
//   @ <key_len> <value_len> <16-hex FNV-1a of key+'\x1f'+value>
//   <key bytes>
//   <value bytes>
//   @ ...
//
// The lengths are authoritative (keys/values may legally contain newlines
// via RFC-4180 quoting); the newlines after the frame header, key, and
// value are fixed frame delimiters. Each record is written with a single
// write(2) on an O_APPEND descriptor. The magic line pins both the
// container version and the value schema: bumping the CSV column set
// changes the schema hash, so a store written by an older binary is
// rejected loudly instead of mis-parsed.
//
// Integrity: any malformed frame, checksum mismatch, or magic/schema
// mismatch throws std::runtime_error naming the file and byte offset —
// corruption is never skipped silently. The one sanctioned exception is a
// truncated *trailing* record seen by a ReadOnly store: that is what a
// concurrent writer's in-flight append looks like, so the reader stops
// before it and picks it up on the next refresh(). A ReadWrite open of such
// a file still throws (appending after a torn tail would corrupt the file
// for every reader).
//
// Concurrency: many ReadOnly readers plus at most one ReadWrite writer.
// The writer holds a non-blocking flock(2) exclusive lock for its lifetime;
// a second writer fails fast at open. Readers never lock — records are
// immutable once their final byte lands, and the length-prefixed framing
// makes a partial append detectable (see above). A ResultStore instance
// itself is NOT thread-safe; callers serialize (the Runner probes and
// appends under its own cache mutex).
//
// Idempotence: put() of a key that is already present verifies the value
// bytes match and becomes a no-op; differing bytes throw — two executions
// of the same cell identity disagreeing on the result is a determinism
// violation, the one thing this subsystem exists to make loud.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
// topobench-lint: allow(unordered-container) lookup-only index below
#include <unordered_map>

#include "exp/results.h"

namespace tb::store {

/// Store format version; reported by the server's `hello` handshake and
/// embedded in the magic line.
inline constexpr int kStoreFormatVersion = 1;

/// FNV-1a 64-bit over `bytes` — the store's record checksum and schema
/// fingerprint primitive (same hash family as exp::grid_fingerprint).
std::uint64_t fnv1a64(const std::string& bytes);

/// The schema fingerprint: fnv1a64 of the uniform CSV header line. Written
/// into (and demanded of) every store file's magic line.
std::uint64_t store_schema_fingerprint();

/// The exact magic line (no trailing newline) a version-1 store begins with.
std::string store_magic_line();

class ResultStore {
 public:
  enum class Mode { ReadOnly, ReadWrite };

  /// Open (ReadWrite: create if absent) the store at `path` and scan its
  /// index. Throws std::runtime_error on missing file (ReadOnly), lock
  /// conflict (ReadWrite), or any integrity violation.
  ResultStore(std::string path, Mode mode);
  ~ResultStore();

  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  /// The stored result for `key`, decoded; nullopt when absent. Throws
  /// std::runtime_error if the stored value bytes fail to decode.
  std::optional<exp::CellResult> get(const std::string& key) const;

  /// True when `key` is present (no decode).
  bool contains(const std::string& key) const;

  /// Append (key, r). No-op when the key already holds exactly these value
  /// bytes; throws std::runtime_error when it holds different bytes
  /// (determinism violation) and std::logic_error on a ReadOnly store.
  void put(const std::string& key, const exp::CellResult& r);

  /// Scan any records appended by the (single) writer since this store was
  /// opened or last refreshed; returns the number of new records indexed.
  /// Meaningful for ReadOnly readers watching a live writer.
  std::size_t refresh();

  std::size_t size() const noexcept { return index_.size(); }
  const std::string& path() const noexcept { return path_; }
  Mode mode() const noexcept { return mode_; }

 private:
  /// Parse records from scan_offset_ to EOF, updating the index and
  /// scan_offset_. Tail policy: a truncated trailing record is tolerated
  /// (left unconsumed) by ReadOnly stores, corruption for ReadWrite.
  std::size_t scan();

  [[noreturn]] void corrupt(std::uint64_t offset, const std::string& what) const;

  std::string path_;
  Mode mode_;
  int fd_ = -1;
  std::uint64_t scan_offset_ = 0;  ///< first byte not yet durably parsed
  // Order-independent by construction: point lookups only (find/emplace),
  // never iterated — bucket order cannot reach any output.
  // topobench-lint: allow(unordered-container) lookup-only, never iterated
  std::unordered_map<std::string, std::string> index_;  ///< key -> value bytes
};

}  // namespace tb::store
