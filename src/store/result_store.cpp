#include "store/result_store.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace tb::store {
namespace {

std::string hex16(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string errno_text() { return std::strerror(errno); }

/// Strict frame-header parse: "@ <key_len> <value_len> <16 hex>". Returns
/// false on any deviation (the caller reports the offset).
bool parse_frame_header(const std::string& line, std::size_t& key_len,
                        std::size_t& value_len, std::uint64_t& checksum) {
  std::size_t pos = 0;
  const auto take_uint = [&](std::uint64_t& out) {
    if (pos >= line.size() || line[pos] < '0' || line[pos] > '9') return false;
    out = 0;
    while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
      out = out * 10 + static_cast<std::uint64_t>(line[pos] - '0');
      ++pos;
    }
    return true;
  };
  if (line.size() < 2 || line[0] != '@' || line[1] != ' ') return false;
  pos = 2;
  std::uint64_t k = 0;
  std::uint64_t v = 0;
  if (!take_uint(k)) return false;
  if (pos >= line.size() || line[pos] != ' ') return false;
  ++pos;
  if (!take_uint(v)) return false;
  if (pos >= line.size() || line[pos] != ' ') return false;
  ++pos;
  if (line.size() - pos != 16) return false;
  checksum = 0;
  for (; pos < line.size(); ++pos) {
    const char c = line[pos];
    checksum <<= 4;
    if (c >= '0' && c <= '9') {
      checksum |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      checksum |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  key_len = static_cast<std::size_t>(k);
  value_len = static_cast<std::size_t>(v);
  return true;
}

}  // namespace

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a 64-bit offset basis
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;  // FNV prime
  }
  return hash;
}

std::uint64_t store_schema_fingerprint() {
  return fnv1a64(exp::csv_header());
}

std::string store_magic_line() {
  return "#! topobench-store v1 schema=" + hex16(store_schema_fingerprint());
}

ResultStore::ResultStore(std::string path, Mode mode)
    : path_(std::move(path)), mode_(mode) {
  const int flags = mode_ == Mode::ReadWrite
                        ? O_RDWR | O_CREAT | O_APPEND | O_CLOEXEC
                        : O_RDONLY | O_CLOEXEC;
  fd_ = ::open(path_.c_str(), flags, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("result store " + path_ +
                             ": open failed: " + errno_text());
  }
  if (mode_ == Mode::ReadWrite) {
    if (::flock(fd_, LOCK_EX | LOCK_NB) != 0) {
      const std::string why = errno == EWOULDBLOCK
                                  ? "another writer holds the lock"
                                  : errno_text();
      ::close(fd_);
      fd_ = -1;
      throw std::runtime_error("result store " + path_ +
                               ": cannot acquire writer lock: " + why);
    }
  }
  try {
    struct ::stat st {};
    if (::fstat(fd_, &st) != 0) {
      throw std::runtime_error("result store " + path_ +
                               ": fstat failed: " + errno_text());
    }
    if (st.st_size == 0 && mode_ == Mode::ReadWrite) {
      // Fresh store: stamp the magic line (single write, like records).
      const std::string magic = store_magic_line() + '\n';
      if (::write(fd_, magic.data(), magic.size()) !=
          static_cast<ssize_t>(magic.size())) {
        throw std::runtime_error("result store " + path_ +
                                 ": magic write failed: " + errno_text());
      }
      scan_offset_ = magic.size();
    } else {
      scan();
    }
  } catch (...) {
    ::close(fd_);
    fd_ = -1;
    throw;
  }
}

ResultStore::~ResultStore() {
  if (fd_ >= 0) ::close(fd_);  // releases the flock
}

void ResultStore::corrupt(std::uint64_t offset, const std::string& what) const {
  throw std::runtime_error("result store " + path_ + ": " + what +
                           " at byte " + std::to_string(offset));
}

std::size_t ResultStore::scan() {
  struct ::stat st {};
  if (::fstat(fd_, &st) != 0) {
    throw std::runtime_error("result store " + path_ +
                             ": fstat failed: " + errno_text());
  }
  const std::uint64_t size = static_cast<std::uint64_t>(st.st_size);
  if (size <= scan_offset_) return 0;
  std::string buf(size - scan_offset_, '\0');
  std::size_t got = 0;
  while (got < buf.size()) {
    const ssize_t n =
        ::pread(fd_, buf.data() + got, buf.size() - got,
                static_cast<off_t>(scan_offset_ + got));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("result store " + path_ +
                               ": read failed: " + errno_text());
    }
    if (n == 0) break;  // file shrank underneath us — treat what we have
    got += static_cast<std::size_t>(n);
  }
  buf.resize(got);

  // A truncated tail is a concurrent writer's in-flight append: readers
  // stop before it (and retry on the next refresh); the writer owns the
  // file exclusively, so for it the same bytes are corruption.
  const bool tolerate_tail = mode_ == Mode::ReadOnly;
  std::size_t pos = 0;
  std::size_t new_records = 0;
  const auto abs = [&](std::size_t p) {
    return scan_offset_ + static_cast<std::uint64_t>(p);
  };

  if (scan_offset_ == 0) {
    const std::size_t nl = buf.find('\n');
    if (nl == std::string::npos) {
      if (tolerate_tail) return 0;
      corrupt(0, "missing magic line");
    }
    const std::string magic = buf.substr(0, nl);
    if (magic != store_magic_line()) {
      corrupt(0, "magic/schema mismatch (got \"" + magic + "\", want \"" +
                     store_magic_line() + "\")");
    }
    pos = nl + 1;
  }

  while (pos < buf.size()) {
    const std::size_t frame_start = pos;
    const std::size_t nl = buf.find('\n', pos);
    if (nl == std::string::npos) {
      if (tolerate_tail) break;
      corrupt(abs(frame_start), "truncated record header");
    }
    std::size_t key_len = 0;
    std::size_t value_len = 0;
    std::uint64_t checksum = 0;
    if (!parse_frame_header(buf.substr(pos, nl - pos), key_len, value_len,
                            checksum)) {
      corrupt(abs(frame_start), "malformed record header");
    }
    pos = nl + 1;
    // key '\n' value '\n'
    const std::size_t need = key_len + 1 + value_len + 1;
    if (buf.size() - pos < need) {
      if (tolerate_tail) {
        pos = frame_start;
        break;
      }
      corrupt(abs(frame_start), "truncated record body");
    }
    std::string key = buf.substr(pos, key_len);
    if (buf[pos + key_len] != '\n') {
      corrupt(abs(pos + key_len), "bad key delimiter");
    }
    std::string value = buf.substr(pos + key_len + 1, value_len);
    if (buf[pos + key_len + 1 + value_len] != '\n') {
      corrupt(abs(pos + key_len + 1 + value_len), "bad value delimiter");
    }
    pos += need;
    if (fnv1a64(key + '\x1f' + value) != checksum) {
      corrupt(abs(frame_start), "record checksum mismatch");
    }
    const auto it = index_.find(key);
    if (it != index_.end()) {
      if (it->second != value) {
        corrupt(abs(frame_start), "duplicate key with conflicting value");
      }
    } else {
      index_.emplace(std::move(key), std::move(value));
      ++new_records;
    }
  }
  scan_offset_ = abs(pos);
  return new_records;
}

std::optional<exp::CellResult> ResultStore::get(const std::string& key) const {
  const auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  try {
    return exp::cell_from_csv_row(it->second);
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error("result store " + path_ +
                             ": stored value failed to decode: " + e.what());
  }
}

bool ResultStore::contains(const std::string& key) const {
  return index_.find(key) != index_.end();
}

void ResultStore::put(const std::string& key, const exp::CellResult& r) {
  if (mode_ != Mode::ReadWrite) {
    throw std::logic_error("result store " + path_ +
                           ": put on a read-only store");
  }
  const std::string value = exp::csv_row(r);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    if (it->second == value) return;  // idempotent re-put
    throw std::runtime_error(
        "result store " + path_ +
        ": conflicting value for existing key (determinism violation): " +
        key);
  }
  std::string record = "@ " + std::to_string(key.size()) + ' ' +
                       std::to_string(value.size()) + ' ' +
                       hex16(fnv1a64(key + '\x1f' + value)) + '\n';
  record += key;
  record += '\n';
  record += value;
  record += '\n';
  // One write(2) on an O_APPEND descriptor: readers either see the whole
  // record or a detectable truncation, never interleaving.
  if (::write(fd_, record.data(), record.size()) !=
      static_cast<ssize_t>(record.size())) {
    throw std::runtime_error("result store " + path_ +
                             ": append failed: " + errno_text());
  }
  scan_offset_ += record.size();
  index_.emplace(key, value);
}

std::size_t ResultStore::refresh() { return scan(); }

}  // namespace tb::store
