// Topology registry: the ten families evaluated by the paper, each with a
// discrete size ladder (most designs only exist at particular server
// counts). Benches ask for "instances of family F between A and B servers"
// or "the instance of F nearest S servers".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topo/network.h"

namespace tb {

enum class Family {
  BCube,
  DCell,
  Dragonfly,
  FatTree,
  FlattenedBF,
  Hypercube,
  HyperX,
  Jellyfish,
  LongHop,
  SlimFly,
};

std::string family_name(Family f);
std::vector<Family> all_families();

/// All ladder instances of `f` whose total server count lies in
/// [min_servers, max_servers], ordered by size. Randomized constructions
/// derive their streams from `seed`.
std::vector<Network> family_instances(Family f, int min_servers,
                                      int max_servers, std::uint64_t seed);

/// The ladder instance whose server count is closest to `target_servers`.
Network family_representative(Family f, int target_servers,
                              std::uint64_t seed);

}  // namespace tb
