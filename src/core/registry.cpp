#include "core/registry.h"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "topo/bcube.h"
#include "topo/dcell.h"
#include "topo/dragonfly.h"
#include "topo/fattree.h"
#include "topo/flattened_butterfly.h"
#include "topo/hypercube.h"
#include "topo/hyperx.h"
#include "topo/jellyfish.h"
#include "topo/longhop.h"
#include "topo/slimfly.h"
#include "util/rng.h"

namespace tb {

std::string family_name(Family f) {
  switch (f) {
    case Family::BCube: return "BCube";
    case Family::DCell: return "DCell";
    case Family::Dragonfly: return "Dragonfly";
    case Family::FatTree: return "FatTree";
    case Family::FlattenedBF: return "FlattenedBF";
    case Family::Hypercube: return "Hypercube";
    case Family::HyperX: return "HyperX";
    case Family::Jellyfish: return "Jellyfish";
    case Family::LongHop: return "LongHop";
    case Family::SlimFly: return "SlimFly";
  }
  return "?";
}

std::vector<Family> all_families() {
  return {Family::BCube,     Family::DCell,    Family::Dragonfly,
          Family::FatTree,   Family::FlattenedBF, Family::Hypercube,
          Family::HyperX,    Family::Jellyfish,   Family::LongHop,
          Family::SlimFly};
}

namespace {

/// Each family's ladder, largest instances capped so the whole benchmark
/// suite solves in minutes with the GK engine (shape, not absolute scale;
/// see DESIGN.md).
std::vector<Network> ladder(Family f, std::uint64_t seed) {
  std::vector<Network> nets;
  Rng rng(mix_seed(seed, static_cast<std::uint64_t>(f)));
  switch (f) {
    case Family::BCube:
      // Paper's Table I uses 2-ary BCube.
      for (int k = 2; k <= 5; ++k) nets.push_back(make_bcube(2, k));
      break;
    case Family::DCell:
      for (const auto& [n, l] : {std::pair{3, 1}, {4, 1}, {5, 1}, {2, 2},
                                 {3, 2}}) {
        nets.push_back(make_dcell(n, l));
      }
      break;
    case Family::Dragonfly:
      for (int t = 1; t <= 3; ++t) nets.push_back(make_dragonfly_balanced(t));
      break;
    case Family::FatTree:
      for (int k = 4; k <= 12; k += 2) nets.push_back(make_fat_tree(k));
      break;
    case Family::FlattenedBF:
      // 2-ary flattened butterflies (Table I), 2^(stages-1) routers.
      for (int stages = 5; stages <= 8; ++stages) {
        nets.push_back(make_flattened_butterfly(2, stages));
      }
      break;
    case Family::Hypercube:
      for (int d = 4; d <= 8; ++d) nets.push_back(make_hypercube(d));
      break;
    case Family::HyperX: {
      // Least-cost regular HyperX at bisection 0.4 (paper's default),
      // radix 16, for a ladder of server targets.
      for (const long target : {32L, 64L, 128L, 256L}) {
        const auto params = search_hyperx(16, target, 0.4);
        if (params) nets.push_back(make_hyperx(*params));
      }
      break;
    }
    case Family::Jellyfish:
      for (const int n : {32, 64, 128, 256}) {
        const int degree = std::max(3, static_cast<int>(std::log2(n)) + 2);
        nets.push_back(make_jellyfish(n, degree, 1, rng()));
      }
      break;
    case Family::LongHop:
      for (int dim = 5; dim <= 8; ++dim) {
        nets.push_back(make_long_hop(dim, /*extra_generators=*/dim / 2 + 2,
                                     /*servers_per_switch=*/1, rng()));
      }
      break;
    case Family::SlimFly:
      // One server per router in the registry ladder (TMs are per-ToR, so
      // server multiplicity only scales the x-axis; the Fig 9 bench uses
      // the Besta-Hoefler ~radix/2 recommendation explicitly).
      for (const int q : {5, 13}) nets.push_back(make_slim_fly(q, 1));
      break;
  }
  // Families without a bespoke shared-risk derivation still get structural
  // groups (per-switch incident bundles), so correlated-failure sweeps are
  // meaningful registry-wide.
  for (Network& net : nets) ensure_risk_groups(net);
  return nets;
}

}  // namespace

std::vector<Network> family_instances(Family f, int min_servers,
                                      int max_servers, std::uint64_t seed) {
  std::vector<Network> out;
  for (Network& net : ladder(f, seed)) {
    const int s = net.total_servers();
    if (s >= min_servers && s <= max_servers) out.push_back(std::move(net));
  }
  return out;
}

Network family_representative(Family f, int target_servers,
                              std::uint64_t seed) {
  std::vector<Network> nets = ladder(f, seed);
  if (nets.empty()) throw std::runtime_error("family_representative: empty ladder");
  std::size_t best = 0;
  long best_gap = std::labs(static_cast<long>(nets[0].total_servers()) -
                            target_servers);
  for (std::size_t i = 1; i < nets.size(); ++i) {
    const long gap = std::labs(static_cast<long>(nets[i].total_servers()) -
                               target_servers);
    if (gap < best_gap) {
      best_gap = gap;
      best = i;
    }
  }
  return std::move(nets[best]);
}

}  // namespace tb
