// Relative throughput (paper §IV): to compare networks built from
// different equipment, a network's throughput is normalized by that of a
// uniform-random graph built with *precisely the same equipment* — same
// nodes, same per-node link counts, same server placement — under the same
// traffic matrix. Each data point averages several random-graph samples
// and carries a 95% confidence interval, as in the paper.
#pragma once

#include <cstdint>

#include "mcf/throughput.h"
#include "tm/traffic_matrix.h"
#include "topo/network.h"
#include "util/stats.h"

namespace tb {

struct RelativeOptions {
  int random_trials = 3;          ///< random-graph samples per data point
  std::uint64_t seed = 42;        ///< base seed for the samples
  mcf::SolveOptions solve;        ///< forwarded to the throughput solver
};

struct RelativeResult {
  double topo_throughput = 0.0;    ///< throughput of the network itself
  Summary random_throughput;       ///< over the same-equipment random graphs
  double relative = 0.0;           ///< topo / mean(random)
  double relative_ci95 = 0.0;      ///< CI propagated from the random trials
};

/// Throughput of `net` under `tm`, normalized by same-equipment random
/// graphs evaluated under the *same* TM (endpoints map one-to-one).
/// Throws std::invalid_argument if `opts.random_trials < 1` and
/// std::runtime_error if the random graphs achieve zero throughput.
RelativeResult relative_throughput(const Network& net, const TrafficMatrix& tm,
                                   const RelativeOptions& opts = {});

}  // namespace tb
