// Relative throughput (paper §IV): to compare networks built from
// different equipment, a network's throughput is normalized by that of a
// uniform-random graph built with *precisely the same equipment* — same
// nodes, same per-node link counts, same server placement — under the same
// traffic matrix. Each data point averages several random-graph samples
// and carries a 95% confidence interval, as in the paper.
#pragma once

#include <cstdint>
#include <string>

#include "cuts/sparsest_cut.h"
#include "mcf/engine.h"
#include "mcf/throughput.h"
#include "tm/traffic_matrix.h"
#include "topo/network.h"
#include "util/stats.h"

namespace tb {

struct RelativeOptions {
  int random_trials = 3;          ///< random-graph samples per data point
  std::uint64_t seed = 42;        ///< base seed for the samples
  mcf::SolveOptions solve;        ///< forwarded to the throughput solver
};

struct RelativeResult {
  double topo_throughput = 0.0;    ///< throughput of the network itself
  Summary random_throughput;       ///< over the same-equipment random graphs
  double relative = 0.0;           ///< topo / mean(random)
  double relative_ci95 = 0.0;      ///< CI propagated from the random trials
  mcf::SolverStats topo_stats;     ///< work counters of the topology's solve
};

/// Throughput of `net` under `tm`, normalized by same-equipment random
/// graphs evaluated under the *same* TM (endpoints map one-to-one).
/// Throws std::invalid_argument if `opts.random_trials < 1` and
/// std::runtime_error if the random graphs achieve zero throughput.
RelativeResult relative_throughput(const Network& net, const TrafficMatrix& tm,
                                   const RelativeOptions& opts = {});

// --- cut-based throughput upper bounds -----------------------------------
// The paper's central comparison (Fig 3, Table II) is measured throughput
// against the best cut bound; with the exact flow/ subsystem the bound is
// certified, so every evaluated cell can carry a throughput-vs-cut gap.

struct CutBoundOptions {
  long brute_force_cap = 10'000; ///< subset cap for the enumeration member
                                 ///< (matches best_sparse_cut, so sweeps
                                 ///< certify the same instances exact)
  int st_pairs = 8;              ///< terminal pairs for the exact s-t cuts
  bool include_bisection = true; ///< also offer the balanced-cut estimate
  std::uint64_t seed = 1;        ///< sampling stream (the runner derives a
                                 ///< per-cell seed; see exp/runner.h)
  int solver_threads = 0;        ///< flow::FlowOptions::threads for the exact
                                 ///< members (0 = shared pool, 1 = serial,
                                 ///< N = dedicated pool); never changes the
                                 ///< bound, only its wall clock
};

struct CutBoundResult {
  double bound = 0.0;    ///< lowest cut sparsity found: throughput <= bound
  std::string method;    ///< winning estimator ("st-mincut", "bisection", ...)
  cuts::CutBound kind = cuts::CutBound::Upper;  ///< certificate of `bound`
  flow::MaxFlowStats flow_stats;  ///< max-flow work across all estimators
};

/// Best (lowest) cut-based throughput upper bound for (net, tm): the full
/// sparse-cut battery of best_sparse_cut — exact sampled s-t min cuts
/// included — plus, optionally, the TM-relative bisection. Deterministic
/// for a fixed seed.
CutBoundResult cut_upper_bound(const Network& net, const TrafficMatrix& tm,
                               const CutBoundOptions& opts = {});

// --- degraded-network throughput ------------------------------------------
// The paper's robustness discussion motivates throughput under failures;
// the engine's scenario layer makes it a cheap incremental perturbation of
// one solver session instead of a fresh network build per scenario.

struct DegradedResult {
  double baseline = 0.0;      ///< throughput of the intact network
  double degraded = 0.0;      ///< throughput under the scenario
  /// 1 - degraded/baseline. Usually in [0, 1]; the GK solver's certified
  /// gap can make it marginally negative on easier degraded instances.
  double drop = 0.0;
  int failed_links = 0;       ///< edges at zero capacity under the scenario
  int failed_groups = 0;      ///< distinct risk groups failed by the scenario
  mcf::SolverStats stats;     ///< work counters of the degraded solve
};

/// Throughput of (net, tm) intact and under `scenario`, evaluated on one
/// ThroughputEngine: the baseline solves cold, the scenario is applied as
/// an incremental perturbation, and the degraded instance solves warm from
/// the baseline solution. A scenario that disconnects a demand (or fails
/// every demand endpoint) yields degraded == 0, drop == 1. Deterministic
/// for a fixed scenario seed.
DegradedResult degraded_throughput(const Network& net, const TrafficMatrix& tm,
                                   const mcf::ScenarioSpec& scenario,
                                   const mcf::SolveOptions& solve = {});

/// Batch form on mcf::ScenarioFleet: one cold baseline solve for the whole
/// batch, every scenario warm-solved from a forked clone of the baseline
/// session, clones distributed over the shared pool (`parallel_cells`
/// false keeps the fan-out on the calling thread — see
/// ScenarioFleet::evaluate). Per-scenario results are bitwise identical to
/// calling degraded_throughput once per scenario (any thread count); only
/// the wall clock and the baseline solve count differ. Results are in
/// scenario order.
std::vector<DegradedResult> degraded_throughput_batch(
    const Network& net, const TrafficMatrix& tm,
    const std::vector<mcf::ScenarioSpec>& scenarios,
    const mcf::SolveOptions& solve = {}, bool parallel_cells = true);

}  // namespace tb
