#include "core/evaluator.h"

#include <stdexcept>
#include <vector>

#include "cuts/bisection.h"
#include "topo/jellyfish.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace tb {

RelativeResult relative_throughput(const Network& net, const TrafficMatrix& tm,
                                   const RelativeOptions& opts) {
  if (opts.random_trials < 1) {
    throw std::invalid_argument("relative_throughput: trials >= 1");
  }
  RelativeResult res;
  {
    const mcf::ThroughputResult topo =
        mcf::compute_throughput(net, tm, opts.solve);
    res.topo_throughput = topo.throughput;
    res.topo_stats = topo.stats;
  }

  // The random-graph trials are independent solves; run them on the shared
  // pool when the caller allows it. Each trial derives its seed from its
  // index and writes only its own slot, and the summary is reduced after
  // the barrier, so the result is bit-identical to the serial path for a
  // fixed seed regardless of thread count.
  std::vector<double> samples(static_cast<std::size_t>(opts.random_trials));
  const auto run_trial = [&](std::size_t trial) {
    const Network rnd = make_same_equipment_random(
        net, mix_seed(opts.seed, static_cast<std::uint64_t>(trial) + 1));
    samples[trial] = mcf::compute_throughput(rnd, tm, opts.solve).throughput;
  };
  ThreadPool& pool = ThreadPool::shared();
  if (opts.solve.parallel && opts.random_trials > 1 && pool.size() > 1) {
    pool.parallel_for(0, samples.size(), run_trial);
  } else {
    for (std::size_t trial = 0; trial < samples.size(); ++trial) {
      run_trial(trial);
    }
  }
  res.random_throughput = summarize(samples);
  if (res.random_throughput.mean <= 0.0) {
    throw std::runtime_error("relative_throughput: random graph throughput 0");
  }
  res.relative = res.topo_throughput / res.random_throughput.mean;
  // First-order CI propagation of the denominator uncertainty.
  res.relative_ci95 =
      res.relative * res.random_throughput.ci95 / res.random_throughput.mean;
  return res;
}

CutBoundResult cut_upper_bound(const Network& net, const TrafficMatrix& tm,
                               const CutBoundOptions& opts) {
  flow::FlowOptions fo;
  fo.threads = opts.solver_threads;
  const cuts::SparseCutSurvey survey = cuts::best_sparse_cut(
      net.graph, tm, opts.brute_force_cap, opts.st_pairs, opts.seed, fo);
  CutBoundResult r;
  r.bound = survey.best.sparsity;
  r.method = survey.best.method;
  r.kind = survey.best.bound;
  r.flow_stats = survey.flow_stats;
  // The battery can miss a balanced cut that KL finds; a certified-exact
  // battery answer cannot be beaten (exact == the optimum over ALL cuts),
  // so skip the bisection work entirely in that case.
  if (opts.include_bisection && r.kind != cuts::CutBound::Exact) {
    const cuts::CutResult bis = cuts::bisection_sparsity(
        net.graph, tm, /*exact_max=*/18, /*kl_restarts=*/8, opts.seed,
        /*st_pairs=*/4, fo);
    r.flow_stats.add(bis.flow_stats);
    if (bis.sparsity < r.bound) {
      r.bound = bis.sparsity;
      r.method = bis.method;
      // bis's Exact only certifies the optimum over *balanced* cuts; as a
      // bound on the sparsest cut it is still just an upper bound.
      r.kind = cuts::CutBound::Upper;
    }
  }
  return r;
}

DegradedResult degraded_throughput(const Network& net, const TrafficMatrix& tm,
                                   const mcf::ScenarioSpec& scenario,
                                   const mcf::SolveOptions& solve) {
  mcf::ThroughputEngine engine(net);
  DegradedResult res;
  res.baseline = engine.solve(tm, solve).throughput;
  engine.apply_scenario(scenario);
  const mcf::ThroughputResult deg = engine.warm_solve(tm, solve);
  res.degraded = deg.throughput;
  res.stats = deg.stats;
  res.failed_links = engine.failed_edge_count();
  res.failed_groups = engine.failed_group_count();
  res.drop = res.baseline > 0.0 ? 1.0 - res.degraded / res.baseline : 0.0;
  return res;
}

std::vector<DegradedResult> degraded_throughput_batch(
    const Network& net, const TrafficMatrix& tm,
    const std::vector<mcf::ScenarioSpec>& scenarios,
    const mcf::SolveOptions& solve, bool parallel_cells) {
  mcf::ScenarioFleet fleet(net);
  const std::vector<mcf::FleetCell> cells =
      fleet.evaluate(tm, scenarios, solve, parallel_cells);
  std::vector<DegradedResult> out(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    out[i].baseline = cells[i].baseline;
    out[i].degraded = cells[i].result.throughput;
    out[i].drop = cells[i].drop;
    out[i].failed_links = cells[i].failed_links;
    out[i].failed_groups = cells[i].failed_groups;
    out[i].stats = cells[i].result.stats;
  }
  return out;
}

}  // namespace tb
