#include "core/evaluator.h"

#include <stdexcept>
#include <vector>

#include "topo/jellyfish.h"
#include "util/rng.h"

namespace tb {

RelativeResult relative_throughput(const Network& net, const TrafficMatrix& tm,
                                   const RelativeOptions& opts) {
  if (opts.random_trials < 1) {
    throw std::invalid_argument("relative_throughput: trials >= 1");
  }
  RelativeResult res;
  res.topo_throughput = mcf::compute_throughput(net, tm, opts.solve).throughput;

  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(opts.random_trials));
  for (int trial = 0; trial < opts.random_trials; ++trial) {
    const Network rnd = make_same_equipment_random(
        net, mix_seed(opts.seed, static_cast<std::uint64_t>(trial) + 1));
    samples.push_back(mcf::compute_throughput(rnd, tm, opts.solve).throughput);
  }
  res.random_throughput = summarize(samples);
  if (res.random_throughput.mean <= 0.0) {
    throw std::runtime_error("relative_throughput: random graph throughput 0");
  }
  res.relative = res.topo_throughput / res.random_throughput.mean;
  // First-order CI propagation of the denominator uncertainty.
  res.relative_ci95 =
      res.relative * res.random_throughput.ci95 / res.random_throughput.mean;
  return res;
}

}  // namespace tb
