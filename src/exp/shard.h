// Distributed sweep sharding: deterministic partition of a sweep's flat
// cell grid into contiguous, concatenable slices, plus the merge contract
// that proves a sharded run equivalent to the unsharded one byte-for-byte.
//
// Partition contract: shard i of n covers the contiguous cell range
// [lo, hi) with lo = i*q + min(i, r), hi = lo + q + (i < r ? 1 : 0) where
// q = total/n and r = total%n — a balanced tiling of [0, total) that
// depends only on (total, i, n), never on thread count, fleet batching, or
// cache state. Cells keep their *global* flat indices inside a shard, so
// per-cell seeding (mix_seed(base, cell, trial)), cache identity, warm
// chains, and fleet grouping are position-stable across shards: shard i's
// rows are bitwise the rows [lo, hi) of the unsharded run.
//
// Slice format: a sharded run emits, before the CSV header,
//   # <caption>
//   #! topobench-slice v1 grid=<16-hex fp> cells=<N> shard=<i>/<n>
//      range=[<lo>,<hi>)          (one line)
// followed by exactly hi-lo rows (cells lo..hi-1 in order) and a trailing
// blank line. `grid` is grid_fingerprint(sweep) (see runner.h): a hash of
// the sweep's structural identity, so slices of different grids can never
// be merged silently. `#` lines are comments to ResultSet::from_csv, so a
// slice stays parseable as an ordinary result CSV.
//
// Merge contract: merge_slices consumes one or more concatenated slices
// (`cat shard_*.csv`), verifies a single caption/header/fingerprint/total,
// verifies the declared ranges tile [0, total) disjointly and exhaustively
// and that every slice carries exactly its declared rows, and reproduces
// the unsharded emission byte-for-byte — or throws std::runtime_error with
// a description of the overlap / gap / mismatch. tools/topobench_merge is
// the CLI wrapper.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

namespace tb::exp {

/// One shard of a sharded sweep: this process evaluates shard `index` of
/// `count`. The default {0, 1} is the whole grid.
struct ShardSpec {
  std::size_t index = 0;
  std::size_t count = 1;

  bool valid() const noexcept { return count >= 1 && index < count; }
  bool whole() const noexcept { return index == 0 && count == 1; }
};

/// Parse "i/n" (strict: decimal digits, one slash, i < n, n >= 1).
/// Throws std::invalid_argument on anything else — "0/0", "3/2", "-1/4",
/// garbage — naming the offending text.
ShardSpec parse_shard_spec(const std::string& text);

/// The TOPOBENCH_SHARD environment knob: nullopt when unset, the parsed
/// spec when set, std::invalid_argument (via parse_shard_spec) when set to
/// something malformed — a fleet run must fail loudly, not run the whole
/// grid per machine.
std::optional<ShardSpec> env_shard();

/// Contiguous cell range of `shard` in a grid of `total` cells (see the
/// partition contract above). Empty ranges are legal (count > total).
struct CellRange {
  std::size_t lo = 0;
  std::size_t hi = 0;  ///< exclusive
};
CellRange shard_range(std::size_t total, const ShardSpec& shard);

/// Machine-checkable identity of an emitted slice.
struct SliceMeta {
  std::uint64_t grid = 0;  ///< grid_fingerprint of the sweep
  std::size_t total = 0;   ///< cells in the whole grid
  ShardSpec shard;         ///< which shard produced the slice
  std::size_t lo = 0;      ///< first cell of the slice
  std::size_t hi = 0;      ///< one past the last cell
};

/// The "#! topobench-slice ..." header line (no trailing newline).
std::string slice_header_line(const SliceMeta& meta);

/// True when `line` begins a slice header ("#!" prefix).
bool is_slice_header_line(const std::string& line);

/// Parse a slice header line; throws std::invalid_argument when the line
/// does not match the v1 format exactly or declares an invalid shard or
/// range.
SliceMeta parse_slice_header_line(const std::string& line);

/// Merge concatenated slices from `in` into the unsharded emission (see
/// the merge contract above). Throws std::runtime_error on overlapping or
/// missing slices, mismatched grid fingerprints / captions / headers,
/// or slices whose rows do not match their declared range.
std::string merge_slices(std::istream& in);

}  // namespace tb::exp
