#include "exp/shard.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace tb::exp {
namespace {

[[noreturn]] void bad_spec(const std::string& text) {
  throw std::invalid_argument("shard spec \"" + text +
                              "\" is not \"i/n\" with 0 <= i < n "
                              "(e.g. TOPOBENCH_SHARD=2/4)");
}

/// Strict decimal parse of a spec component; rejects empty, non-digit and
/// overflow-length fields so "-1/4", "1e2/4" and "999999999999/4" all fail.
std::size_t parse_component(const std::string& text, const std::string& whole) {
  if (text.empty() || text.size() > 9) bad_spec(whole);
  for (const char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) bad_spec(whole);
  }
  return static_cast<std::size_t>(std::strtoull(text.c_str(), nullptr, 10));
}

}  // namespace

ShardSpec parse_shard_spec(const std::string& text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos) bad_spec(text);
  ShardSpec spec;
  spec.index = parse_component(text.substr(0, slash), text);
  spec.count = parse_component(text.substr(slash + 1), text);
  if (!spec.valid()) bad_spec(text);
  return spec;
}

std::optional<ShardSpec> env_shard() {
  const char* s = std::getenv("TOPOBENCH_SHARD");
  if (s == nullptr) return std::nullopt;
  return parse_shard_spec(s);
}

CellRange shard_range(std::size_t total, const ShardSpec& shard) {
  // Balanced contiguous tiling without index*total overflow: the first
  // total%count shards take one extra cell.
  const std::size_t q = total / shard.count;
  const std::size_t r = total % shard.count;
  CellRange range;
  range.lo = q * shard.index + std::min(shard.index, r);
  range.hi = range.lo + q + (shard.index < r ? 1 : 0);
  return range;
}

std::string slice_header_line(const SliceMeta& meta) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "#! topobench-slice v1 grid=%016llx cells=%zu "
                "shard=%zu/%zu range=[%zu,%zu)",
                static_cast<unsigned long long>(meta.grid), meta.total,
                meta.shard.index, meta.shard.count, meta.lo, meta.hi);
  return buf;
}

bool is_slice_header_line(const std::string& line) {
  return line.rfind("#!", 0) == 0;
}

SliceMeta parse_slice_header_line(const std::string& line) {
  unsigned long long grid = 0, cells = 0, index = 0, count = 0, lo = 0, hi = 0;
  int consumed = 0;
  const int matched =
      std::sscanf(line.c_str(),
                  "#! topobench-slice v1 grid=%16llx cells=%llu "
                  "shard=%llu/%llu range=[%llu,%llu)%n",
                  &grid, &cells, &index, &count, &lo, &hi, &consumed);
  if (matched != 6 || consumed != static_cast<int>(line.size())) {
    throw std::invalid_argument("unrecognized slice header: \"" + line + '"');
  }
  SliceMeta meta;
  meta.grid = grid;
  meta.total = static_cast<std::size_t>(cells);
  meta.shard.index = static_cast<std::size_t>(index);
  meta.shard.count = static_cast<std::size_t>(count);
  meta.lo = static_cast<std::size_t>(lo);
  meta.hi = static_cast<std::size_t>(hi);
  if (!meta.shard.valid()) {
    throw std::invalid_argument("slice header declares invalid shard: \"" +
                                line + '"');
  }
  // The range is a function of (total, shard); a header that disagrees was
  // hand-edited or produced by a different partition function.
  const CellRange expected = shard_range(meta.total, meta.shard);
  if (meta.lo != expected.lo || meta.hi != expected.hi) {
    throw std::invalid_argument(
        "slice header range disagrees with the partition contract: \"" + line +
        '"');
  }
  return meta;
}

namespace {

struct Slice {
  SliceMeta meta;
  std::string caption;            ///< the "# ..." line preceding the header
  std::string header;             ///< the CSV column-header line
  std::vector<std::string> rows;  ///< raw records, cells lo..hi-1 in order
};

[[noreturn]] void merge_fail(const std::string& what) {
  throw std::runtime_error("slice merge failed: " + what);
}

std::string range_str(std::size_t lo, std::size_t hi) {
  // Built up by append: the `const char* + std::string&&` chain trips a
  // GCC 12 -Wrestrict false positive (PR105651).
  std::string s = "[";
  s += std::to_string(lo);
  s += ',';
  s += std::to_string(hi);
  s += ')';
  return s;
}

/// Leading cell index of a raw CSV record (the first column is `cell`).
std::size_t record_cell(const std::string& record) {
  std::size_t end = 0;
  while (end < record.size() &&
         std::isdigit(static_cast<unsigned char>(record[end]))) {
    ++end;
  }
  if (end == 0 || end == record.size() || record[end] != ',') {
    merge_fail("data row does not start with a cell index: \"" +
               record.substr(0, 40) + "...\"");
  }
  return static_cast<std::size_t>(
      std::strtoull(record.substr(0, end).c_str(), nullptr, 10));
}

void finish_slice(const Slice& s) {
  if (s.header.empty()) {
    merge_fail("slice " + std::to_string(s.meta.shard.index) + "/" +
               std::to_string(s.meta.shard.count) + " has no CSV header line");
  }
  if (s.rows.size() != s.meta.hi - s.meta.lo) {
    merge_fail("slice " + std::to_string(s.meta.shard.index) + "/" +
               std::to_string(s.meta.shard.count) + " declares cells " +
               range_str(s.meta.lo, s.meta.hi) + " but carries " +
               std::to_string(s.rows.size()) + " rows");
  }
}

}  // namespace

std::string merge_slices(std::istream& in) {
  std::vector<Slice> slices;
  Slice* current = nullptr;
  std::string pending_caption;
  bool have_caption = false;
  std::string record;
  std::string line;
  // Records span physical lines while a quote is open (quoted fields may
  // contain newlines); quote parity decides, as in ResultSet::from_csv.
  const auto quotes_balanced = [](const std::string& s) {
    return std::count(s.begin(), s.end(), '"') % 2 == 0;
  };
  while (std::getline(in, line)) {
    if (record.empty()) {
      if (line.empty()) continue;  // inter-slice separator
      if (is_slice_header_line(line)) {
        if (!have_caption) {
          merge_fail("slice header without a preceding \"# caption\" line");
        }
        if (current != nullptr) finish_slice(*current);
        Slice s;
        try {
          s.meta = parse_slice_header_line(line);
        } catch (const std::invalid_argument& e) {
          merge_fail(e.what());
        }
        s.caption = pending_caption;
        have_caption = false;
        slices.push_back(std::move(s));
        current = &slices.back();
        continue;
      }
      if (line[0] == '#') {
        pending_caption = line;
        have_caption = true;
        continue;
      }
      record = line;
    } else {
      record += '\n';
      record += line;
    }
    if (!quotes_balanced(record)) continue;
    // A complete record: the slice's CSV header, or one of its rows.
    if (current == nullptr) {
      merge_fail("data outside any slice (is this an unsharded CSV or a "
                 "truncated slice?): \"" + record.substr(0, 40) + "...\"");
    }
    if (current->header.empty()) {
      current->header = std::move(record);
    } else {
      const std::size_t cell = record_cell(record);
      const std::size_t expected = current->meta.lo + current->rows.size();
      if (cell != expected || cell >= current->meta.hi) {
        merge_fail("slice " + std::to_string(current->meta.shard.index) + "/" +
                   std::to_string(current->meta.shard.count) +
                   " declares cells " +
                   range_str(current->meta.lo, current->meta.hi) +
                   " but row " + std::to_string(current->rows.size()) +
                   " carries cell " + std::to_string(cell));
      }
      current->rows.push_back(std::move(record));
    }
    record.clear();
  }
  if (!record.empty()) merge_fail("unterminated quoted field at end of input");
  if (slices.empty()) merge_fail("no slices in input");
  finish_slice(slices.back());

  // Cross-slice identity: one grid, one caption, one header.
  const Slice& first = slices.front();
  for (const Slice& s : slices) {
    if (s.meta.grid != first.meta.grid) {
      char a[24], b[24];
      std::snprintf(a, sizeof(a), "%016llx",
                    static_cast<unsigned long long>(first.meta.grid));
      std::snprintf(b, sizeof(b), "%016llx",
                    static_cast<unsigned long long>(s.meta.grid));
      merge_fail(std::string("mismatched grid fingerprints: ") + a + " vs " +
                 b + " (slices come from different sweeps)");
    }
    if (s.meta.total != first.meta.total) {
      merge_fail("mismatched grid sizes: " + std::to_string(first.meta.total) +
                 " vs " + std::to_string(s.meta.total) + " cells");
    }
    if (s.caption != first.caption) {
      merge_fail("mismatched captions: \"" + first.caption + "\" vs \"" +
                 s.caption + '"');
    }
    if (s.header != first.header) {
      merge_fail("mismatched CSV headers between slices");
    }
  }

  // Coverage: the declared ranges must tile [0, total) — no overlap, no gap.
  std::vector<const Slice*> ordered;
  ordered.reserve(slices.size());
  for (const Slice& s : slices) ordered.push_back(&s);
  std::sort(ordered.begin(), ordered.end(),
            [](const Slice* a, const Slice* b) {
              return a->meta.lo != b->meta.lo ? a->meta.lo < b->meta.lo
                                              : a->meta.hi < b->meta.hi;
            });
  std::size_t covered = 0;
  for (const Slice* s : ordered) {
    if (s->meta.lo < covered) {
      merge_fail("overlapping slices: cells " +
                 range_str(s->meta.lo, std::min(covered, s->meta.hi)) +
                 " appear more than once");
    }
    if (s->meta.lo > covered) {
      merge_fail("missing slice covering cells " +
                 range_str(covered, s->meta.lo));
    }
    covered = s->meta.hi;
  }
  if (covered < first.meta.total) {
    merge_fail("missing slice covering cells " +
               range_str(covered, first.meta.total));
  }

  // Byte-identical reconstruction of the unsharded emission: caption,
  // header, every row in cell order, and the trailing blank line
  // ResultSet::emit writes.
  std::ostringstream out;
  out << first.caption << '\n' << first.header << '\n';
  for (const Slice* s : ordered) {
    for (const std::string& row : s->rows) out << row << '\n';
  }
  out << '\n';
  return out.str();
}

}  // namespace tb::exp
