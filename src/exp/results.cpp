#include "exp/results.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/env.h"
#include "util/table.h"

namespace tb::exp {
namespace {

constexpr const char* kCsvHeader =
    "cell,topology,servers,switches,tm,seed,solver,trials,throughput,"
    "random_mean,random_ci95,relative,relative_ci95,cut_bound,cut_gap,"
    "cut_method,scenario,failed_links,throughput_drop,risk_group,tm_scale,"
    "growth_step,pivots,phases,dijkstras,pushes,relabels,global_relabels,"
    "warm,solver_threads";

constexpr std::size_t kNumColumns = 30;

/// failed_links uses -1 as its NA sentinel (0 is a real count).
std::string int_or_na(int v) { return v < 0 ? "na" : std::to_string(v); }

/// %.17g round-trips every finite double exactly; NaN becomes "na".
std::string num(double v) {
  if (std::isnan(v)) return "na";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Shorter rendering for the human-readable table view.
std::string num_short(double v) {
  if (std::isnan(v)) return "na";
  return Table::fmt(v, 4);
}

std::string csv_quote(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

/// Split one CSV line honoring RFC-4180 quoting.
std::vector<std::string> csv_split(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

double parse_num(const std::string& s) {
  if (s == "na") return std::numeric_limits<double>::quiet_NaN();
  return std::strtod(s.c_str(), nullptr);
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        // Remaining control characters are illegal raw inside a JSON
        // string literal; labels can legally contain them (the CSV path
        // round-trips them), so escape rather than reject.
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// JSON has no NaN or Infinity literals; non-finite values become null
/// (infinite cut bounds arise from TMs no cut separates).
std::string json_num(double v) { return std::isfinite(v) ? num(v) : "null"; }

}  // namespace

const CellResult& ResultSet::at(const std::string& topology,
                                const std::string& tm) const {
  for (const CellResult& r : rows_) {
    if (r.topology == topology && r.tm == tm) return r;
  }
  throw std::out_of_range("ResultSet::at: no cell (" + topology + ", " + tm +
                          ")");
}

const std::string& csv_header() {
  static const std::string header = kCsvHeader;
  return header;
}

std::string csv_row(const CellResult& r) {
  std::ostringstream out;
  out << r.cell << ',' << csv_quote(r.topology) << ',' << r.servers << ','
      << r.switches << ',' << csv_quote(r.tm) << ',' << r.seed << ','
      << csv_quote(r.solver) << ',' << r.trials << ',' << num(r.throughput)
      << ',' << num(r.random_mean) << ',' << num(r.random_ci95) << ','
      << num(r.relative) << ',' << num(r.relative_ci95) << ','
      << num(r.cut_bound) << ',' << num(r.cut_gap) << ','
      << csv_quote(r.cut_method) << ',' << csv_quote(r.scenario) << ','
      << int_or_na(r.failed_links) << ',' << num(r.throughput_drop) << ','
      << int_or_na(r.risk_group) << ',' << num(r.tm_scale) << ','
      << int_or_na(r.growth_step) << ','
      << r.pivots << ',' << r.phases << ',' << r.dijkstras << ',' << r.pushes
      << ',' << r.relabels << ',' << r.global_relabels << ',' << r.warm << ','
      << r.solver_threads;
  return out.str();
}

CellResult cell_from_csv_row(const std::string& row) {
  // Reject unbalanced quoting up front: csv_split would otherwise read an
  // unterminated quote to end-of-string and mis-count fields confusingly.
  if (std::count(row.begin(), row.end(), '"') % 2 != 0) {
    throw std::invalid_argument("cell_from_csv_row: unterminated quote");
  }
  const std::vector<std::string> f = csv_split(row);
  if (f.size() != kNumColumns) {
    throw std::invalid_argument("cell_from_csv_row: bad row arity (" +
                                std::to_string(f.size()) + " fields)");
  }
  CellResult r;
  r.cell = static_cast<std::size_t>(std::strtoull(f[0].c_str(), nullptr, 10));
  r.topology = f[1];
  r.servers = static_cast<int>(std::strtol(f[2].c_str(), nullptr, 10));
  r.switches = static_cast<int>(std::strtol(f[3].c_str(), nullptr, 10));
  r.tm = f[4];
  r.seed = std::strtoull(f[5].c_str(), nullptr, 10);
  r.solver = f[6];
  r.trials = static_cast<int>(std::strtol(f[7].c_str(), nullptr, 10));
  r.throughput = parse_num(f[8]);
  r.random_mean = parse_num(f[9]);
  r.random_ci95 = parse_num(f[10]);
  r.relative = parse_num(f[11]);
  r.relative_ci95 = parse_num(f[12]);
  r.cut_bound = parse_num(f[13]);
  r.cut_gap = parse_num(f[14]);
  r.cut_method = f[15];
  r.scenario = f[16];
  r.failed_links =
      f[17] == "na"
          ? -1
          : static_cast<int>(std::strtol(f[17].c_str(), nullptr, 10));
  r.throughput_drop = parse_num(f[18]);
  r.risk_group =
      f[19] == "na"
          ? -1
          : static_cast<int>(std::strtol(f[19].c_str(), nullptr, 10));
  r.tm_scale = parse_num(f[20]);
  r.growth_step =
      f[21] == "na"
          ? -1
          : static_cast<int>(std::strtol(f[21].c_str(), nullptr, 10));
  r.pivots = std::strtol(f[22].c_str(), nullptr, 10);
  r.phases = std::strtol(f[23].c_str(), nullptr, 10);
  r.dijkstras = std::strtol(f[24].c_str(), nullptr, 10);
  r.pushes = std::strtol(f[25].c_str(), nullptr, 10);
  r.relabels = std::strtol(f[26].c_str(), nullptr, 10);
  r.global_relabels = std::strtol(f[27].c_str(), nullptr, 10);
  r.warm = static_cast<int>(std::strtol(f[28].c_str(), nullptr, 10));
  r.solver_threads = static_cast<int>(std::strtol(f[29].c_str(), nullptr, 10));
  return r;
}

std::string ResultSet::to_csv() const {
  std::ostringstream out;
  out << kCsvHeader << '\n';
  for (const CellResult& r : rows_) {
    out << csv_row(r) << '\n';
  }
  return out.str();
}

std::string ResultSet::to_json() const {
  std::ostringstream out;
  out << "[\n";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const CellResult& r = rows_[i];
    out << "  {\"cell\": " << r.cell << ", \"topology\": \""
        << json_escape(r.topology) << "\", \"servers\": " << r.servers
        << ", \"switches\": " << r.switches << ", \"tm\": \""
        << json_escape(r.tm) << "\", \"seed\": " << r.seed
        << ", \"solver\": \"" << json_escape(r.solver)
        << "\", \"trials\": " << r.trials
        << ", \"throughput\": " << json_num(r.throughput)
        << ", \"random_mean\": " << json_num(r.random_mean)
        << ", \"random_ci95\": " << json_num(r.random_ci95)
        << ", \"relative\": " << json_num(r.relative)
        << ", \"relative_ci95\": " << json_num(r.relative_ci95)
        << ", \"cut_bound\": " << json_num(r.cut_bound)
        << ", \"cut_gap\": " << json_num(r.cut_gap) << ", \"cut_method\": "
        << (r.cut_method.empty()
                ? std::string("null")
                : '"' + json_escape(r.cut_method) + '"')
        << ", \"scenario\": "
        << (r.scenario.empty() ? std::string("null")
                               : '"' + json_escape(r.scenario) + '"')
        << ", \"failed_links\": "
        << (r.failed_links < 0 ? std::string("null")
                               : std::to_string(r.failed_links))
        << ", \"throughput_drop\": " << json_num(r.throughput_drop)
        << ", \"risk_group\": "
        << (r.risk_group < 0 ? std::string("null")
                             : std::to_string(r.risk_group))
        << ", \"tm_scale\": " << json_num(r.tm_scale)
        << ", \"growth_step\": "
        << (r.growth_step < 0 ? std::string("null")
                              : std::to_string(r.growth_step))
        << ", \"pivots\": " << r.pivots << ", \"phases\": " << r.phases
        << ", \"dijkstras\": " << r.dijkstras << ", \"pushes\": " << r.pushes
        << ", \"relabels\": " << r.relabels
        << ", \"global_relabels\": " << r.global_relabels
        << ", \"warm\": " << r.warm
        << ", \"solver_threads\": " << r.solver_threads << "}"
        << (i + 1 < rows_.size() ? "," : "") << '\n';
  }
  out << "]\n";
  return out.str();
}

ResultSet ResultSet::from_csv(const std::string& csv) {
  ResultSet rs;
  std::istringstream in(csv);
  std::string line;
  std::string record;
  bool saw_header = false;
  // A record spans physical lines while a quote is open (quoted fields may
  // legally contain newlines); quote parity decides, since escaped ""
  // contributes an even count.
  const auto quotes_balanced = [](const std::string& s) {
    return std::count(s.begin(), s.end(), '"') % 2 == 0;
  };
  while (std::getline(in, line)) {
    if (record.empty()) {
      if (line.empty() || line[0] == '#') continue;
      record = line;
    } else {
      record += '\n';
      record += line;
    }
    if (!quotes_balanced(record)) continue;
    if (!saw_header) {
      if (record != kCsvHeader) {
        throw std::invalid_argument("ResultSet::from_csv: unexpected header");
      }
      saw_header = true;
      record.clear();
      continue;
    }
    CellResult r;
    try {
      r = cell_from_csv_row(record);
    } catch (const std::invalid_argument&) {
      throw std::invalid_argument("ResultSet::from_csv: bad row arity");
    }
    record.clear();
    rs.add(std::move(r));
  }
  if (!record.empty()) {
    throw std::invalid_argument("ResultSet::from_csv: unterminated quote");
  }
  if (!saw_header) {
    throw std::invalid_argument("ResultSet::from_csv: no header line");
  }
  return rs;
}

void ResultSet::emit(std::ostream& os, const std::string& caption) const {
  // A slice is only meaningful as CSV (the "#!" header + mergeable rows),
  // so a sharded run emits CSV even without TOPOBENCH_CSV=1.
  if (csv_mode() || slice_) {
    os << "# " << caption << '\n';
    if (slice_) os << slice_header_line(*slice_) << '\n';
    os << to_csv();
  } else {
    Table table({"cell", "topology", "servers", "switches", "tm", "seed",
                 "solver", "trials", "throughput", "random_mean",
                 "random_ci95", "relative", "relative_ci95", "cut_bound",
                 "cut_gap", "cut_method", "scenario", "failed_links",
                 "throughput_drop", "risk_group", "tm_scale", "growth_step",
                 "pivots", "phases", "dijkstras", "pushes",
                 "relabels", "global_relabels", "warm", "solver_threads"});
    for (const CellResult& r : rows_) {
      table.add_row({std::to_string(r.cell), r.topology,
                     std::to_string(r.servers), std::to_string(r.switches),
                     r.tm, std::to_string(r.seed), r.solver,
                     std::to_string(r.trials), num_short(r.throughput),
                     num_short(r.random_mean), num_short(r.random_ci95),
                     num_short(r.relative), num_short(r.relative_ci95),
                     num_short(r.cut_bound), num_short(r.cut_gap),
                     r.cut_method.empty() ? "na" : r.cut_method,
                     r.scenario.empty() ? "na" : r.scenario,
                     int_or_na(r.failed_links), num_short(r.throughput_drop),
                     int_or_na(r.risk_group), num_short(r.tm_scale),
                     int_or_na(r.growth_step),
                     std::to_string(r.pivots), std::to_string(r.phases),
                     std::to_string(r.dijkstras), std::to_string(r.pushes),
                     std::to_string(r.relabels),
                     std::to_string(r.global_relabels), std::to_string(r.warm),
                     std::to_string(r.solver_threads)});
    }
    table.print(os, caption);
  }
  os << '\n';
}

bool csv_mode() { return env::flag_knob("TOPOBENCH_CSV", false); }

}  // namespace tb::exp
