// Uniform result records for experiment sweeps. Every ported driver emits
// the same columns, so figure/table output is machine-parseable across the
// whole bench suite instead of per-driver ad-hoc tables.
//
// NaN sentinel: fields that do not apply — the random-graph baseline of an
// absolute (trials == 0) cell, or the CI of a single-trial cell — are quiet
// NaN in memory, rendered as "na" in CSV and null in JSON, and parsed back
// to NaN by from_csv. They are never 0, which would read as an exact value.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "exp/shard.h"

namespace tb::exp {

/// One evaluated sweep cell.
struct CellResult {
  std::size_t cell = 0;      ///< index in sweep expansion order
  std::string topology;      ///< instance name (TopoSpec label)
  int servers = 0;
  int switches = 0;
  std::string tm;            ///< TmSpec label
  std::uint64_t seed = 0;    ///< cell seed: mix_seed(base_seed, cell)
  std::string solver;        ///< solver configuration label
  int trials = 0;            ///< random-graph samples (0 = absolute mode)
  double throughput = 0.0;   ///< topology throughput
  double random_mean = std::numeric_limits<double>::quiet_NaN();
  double random_ci95 = std::numeric_limits<double>::quiet_NaN();
  double relative = std::numeric_limits<double>::quiet_NaN();
  double relative_ci95 = std::numeric_limits<double>::quiet_NaN();
  // Cut-bound columns (Sweep::cut_bounds): the best certified cut-based
  // throughput upper bound, its gap to measured throughput, and the
  // winning estimator with its certificate, e.g. "st-mincut(exact)".
  double cut_bound = std::numeric_limits<double>::quiet_NaN();
  double cut_gap = std::numeric_limits<double>::quiet_NaN();
  std::string cut_method;    ///< empty when cut bounds were not computed
  // Failure-scenario columns (Sweep::scenarios): the scenario's label, how
  // many links it failed, and the throughput drop vs the intact baseline
  // (1 - degraded/baseline). failed_links uses -1 (CSV "na") as its NA
  // sentinel since 0 is a legitimate count (pure capacity degradation).
  std::string scenario;      ///< empty when the sweep has no failure axis
  int failed_links = -1;
  double throughput_drop = std::numeric_limits<double>::quiet_NaN();
  // Structured-scenario columns (PR 10): distinct shared-risk groups the
  // scenario failed, the scenario's TM surge multiplier, and the growth
  // stage of a growth-mode cell. Fleet cells record actual values (0
  // groups and tm_scale 1 are legitimate data); every other cell keeps the
  // NA sentinels (-1 / NaN / -1).
  int risk_group = -1;
  double tm_scale = std::numeric_limits<double>::quiet_NaN();
  int growth_step = -1;
  // Solver work counters of the cell's topology solve (see
  // mcf::SolverStats): simplex pivots vs GK phases/dijkstras are distinct
  // kinds of work and get distinct columns; `warm` is 1 when the solve was
  // seeded from a previous solution (warm-start chains, failure cells).
  long pivots = 0;
  long phases = 0;
  long dijkstras = 0;
  // Max-flow work counters of the cell's cut-bound estimators (see
  // flow::MaxFlowStats): zero when the sweep computes no cut bounds.
  long pushes = 0;
  long relabels = 0;
  long global_relabels = 0;
  int warm = 0;
  // Intra-solve threading configuration of the cell's solves (the sweep
  // spec's SolveOptions::solver_threads — 0 means the shared pool), not a
  // measured worker count, and not the TOPOBENCH_SOLVER_THREADS execution
  // override: results stay byte-identical across machines, pool sizes and
  // env threading knobs, which the determinism entries rely on.
  int solver_threads = 0;
};

/// An ordered collection of cell results with uniform CSV/JSON emission.
/// CSV round-trips exactly: doubles are written with 17 significant digits
/// and fields containing separators are RFC-4180 quoted.
class ResultSet {
 public:
  void add(CellResult r) { rows_.push_back(std::move(r)); }
  const std::vector<CellResult>& rows() const noexcept { return rows_; }
  std::size_t size() const noexcept { return rows_.size(); }

  /// First row matching (topology, tm). Throws std::out_of_range if absent.
  const CellResult& at(const std::string& topology,
                       const std::string& tm) const;

  std::string to_csv() const;
  std::string to_json() const;
  static ResultSet from_csv(const std::string& csv);

  /// Slice identity of a sharded run (set by Runner::run when a ShardSpec
  /// is in effect): emit writes it as a "#!" header line between the
  /// caption and the CSV header, making the slice mergeable and
  /// machine-checkable (see shard.h). Absent on unsharded runs, whose
  /// emission stays byte-identical to pre-sharding output.
  const std::optional<SliceMeta>& slice() const noexcept { return slice_; }
  void set_slice(const SliceMeta& meta) { slice_ = meta; }

  /// CSV to `os` when TOPOBENCH_CSV=1 or this is a slice (prefixed
  /// "# caption" and, for slices, the "#!" header), otherwise an aligned
  /// human-readable table.
  void emit(std::ostream& os, const std::string& caption) const;

 private:
  std::vector<CellResult> rows_;
  std::optional<SliceMeta> slice_;
};

/// True when TOPOBENCH_CSV=1: drivers print the uniform ResultSet CSV
/// instead of their derived figure tables. Strict loader semantics: any
/// value other than "0"/"1" throws std::invalid_argument (see util/env.h).
bool csv_mode();

// --- single-record codec -------------------------------------------------
// The exact per-row byte discipline of to_csv/from_csv, exposed so other
// serializers (the on-disk result store) reuse the same codec instead of
// inventing a second one. csv_row + cell_from_csv_row round-trip every
// CellResult bit-exactly: doubles are %.17g, NaN is "na", fields containing
// separators are RFC-4180 quoted.

/// The uniform CSV header line (no trailing newline).
const std::string& csv_header();

/// One CSV row for `r`, byte-identical to the corresponding to_csv line
/// (no trailing newline).
std::string csv_row(const CellResult& r);

/// Strict inverse of csv_row: throws std::invalid_argument on wrong arity
/// or malformed quoting. Accepts multi-line rows (quoted fields may contain
/// newlines), matching from_csv's record discipline.
CellResult cell_from_csv_row(const std::string& row);

}  // namespace tb::exp
