// Declarative experiment sweeps. The paper's figures and tables are all
// grids of (topology instance, traffic-matrix family) cells evaluated with
// one solver configuration and a fixed number of random-graph trials; a
// Sweep describes such a grid and the Runner executes it (see runner.h for
// the seeding and caching contract).
//
// TopoSpec.build must be deterministic and its label must uniquely
// identify the returned instance — the label is the results/cache identity
// of the topology, so two specs with equal labels must build equal
// networks. The registry-backed builders below capture a fully constructed
// instance, which makes that trivially true.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/evaluator.h"
#include "core/registry.h"
#include "mcf/engine.h"
#include "mcf/throughput.h"
#include "tm/traffic_matrix.h"
#include "topo/network.h"

namespace tb::exp {

/// Produces one topology instance. `label` is the stable identity used in
/// result rows and cache keys. Returning a shared pointer lets specs hand
/// out a single prebuilt instance without deep-copying the graph per call.
struct TopoSpec {
  std::string label;
  std::function<std::shared_ptr<const Network>()> build;
};

/// Produces a traffic matrix for a network. Randomized families (random
/// matchings) consume `seed`; deterministic ones ignore it.
struct TmSpec {
  std::string label;
  std::function<TrafficMatrix(const Network&, std::uint64_t seed)> build;
};

/// One point of a sweep's failure axis: a labeled degraded-network
/// scenario. The label is the row/cache identity of the scenario (like
/// TopoSpec labels, equal labels must mean equal specs); the spec's seed is
/// overridden per cell by the runner (see runner.h).
struct ScenarioPoint {
  std::string label;
  mcf::ScenarioSpec spec;
};

/// The grid: every topology crossed with every TM family (and, in failures
/// mode, every scenario).
struct Sweep {
  std::vector<TopoSpec> topologies;
  std::vector<TmSpec> tms;
  mcf::SolveOptions solve;
  int trials = 0;              ///< 0: absolute throughput; >0: relative mode
                               ///< with this many same-equipment random
                               ///< graphs per cell
  std::uint64_t base_seed = 1; ///< root of all per-cell seed streams
  bool cut_bounds = false;     ///< fill the cut_bound/cut_gap/cut_method
                               ///< columns via core's cut_upper_bound
  CutBoundOptions cut_bound_opts;  ///< seed is overridden per cell
  /// Failures mode: when non-empty, the grid gains a scenario axis — each
  /// (topology, TM) pair is evaluated once per scenario via
  /// core's degraded_throughput, filling the scenario / failed_links /
  /// throughput_drop columns (throughput is the degraded value). Requires
  /// absolute mode (trials == 0) without cut bounds; the runner throws
  /// otherwise.
  std::vector<ScenarioPoint> scenarios;
  /// Growth mode: when growth_steps > 0, the grid gains a growth axis
  /// instead of a scenario one — each (topology, TM) pair is evaluated at
  /// growth_steps incremental-expansion stages of the instance (the
  /// Jellyfish expansion story): stage g keeps the first
  /// round(n * (growth_start + (1 - growth_start) * g / (steps - 1)))
  /// switches installed (all of them at the final stage) by failing the
  /// uninstalled tail as node failures with dropped demands, warm-solved
  /// from the full-network baseline like any other scenario fleet. Labels
  /// are "grow(step=<g>/<steps>)"; the growth_step column records g.
  /// Mutually exclusive with `scenarios`; requires absolute mode without
  /// cut bounds or warm_start (the runner throws otherwise).
  int growth_steps = 0;
  /// First installed fraction of the growth ladder, in (0, 1].
  double growth_start = 0.5;
  /// Warm-start mode: evaluate each topology's TM cells as one ordered
  /// chain on a shared ThroughputEngine, seeding every solve after the
  /// first from the previous solution (GK lengths / LP basis). Chains stay
  /// deterministic (topologies run concurrently, a chain runs in TM
  /// order); results agree with cold ones within the certified gap, not
  /// bitwise. Requires absolute mode without scenarios.
  bool warm_start = false;
};

/// One cell of the expanded grid: indices into the sweep's topology, TM,
/// and (failures mode) scenario lists plus the flat expansion index that
/// seeds the cell.
struct Cell {
  std::size_t index = 0;
  std::size_t topo = 0;
  std::size_t tm = 0;
  std::size_t scenario = 0;  ///< always 0 outside failures mode
};

/// Row-major (topology-major) expansion:
/// cell index = (topo * #tms + tm) * max(1, #scenarios) + scenario.
std::vector<Cell> expand(const Sweep& s);

// --- registry-backed builders -------------------------------------------

/// Wrap a prebuilt instance: the spec's label is the network's own name
/// (the label <-> instance contract holds by construction), and repeated
/// build() calls hand out the same shared instance.
TopoSpec instance_spec(Network net);

/// Specs for every ladder instance of `families` whose server count lies in
/// [min_servers, max_servers], in registry order. `seed` feeds randomized
/// constructions (Jellyfish, Long Hop), as in family_instances.
std::vector<TopoSpec> ladder_specs(const std::vector<Family>& families,
                                   int min_servers, int max_servers,
                                   std::uint64_t seed);

/// Spec for the ladder instance of `f` nearest `target_servers`.
TopoSpec representative_spec(Family f, int target_servers, std::uint64_t seed);

/// The paper's scaling experiment (Figs. 5/6, Table I): each family's size
/// ladder up to `max_servers` (TOPOBENCH_MAX_SERVERS overrides) under A2A,
/// RM(1) and LM, in relative mode with TOPOBENCH_TRIALS samples (default 2)
/// and a 10% default certified gap (TOPOBENCH_EPS tightens it).
Sweep relative_scaling_sweep(const std::vector<Family>& families,
                             int max_servers);

// --- traffic-matrix families --------------------------------------------

TmSpec a2a_tm();                      ///< all-to-all, label "A2A"
TmSpec random_matching_tm(int k);     ///< k matchings, label "RM(k)"
TmSpec longest_matching_tm();         ///< near-worst-case, label "LM"
TmSpec kodialam_tm_spec();            ///< LP-based near-worst-case,
                                      ///< label "Kodialam" (H^2 LP columns —
                                      ///< keep hosts <= ~200, see synthetic.h)

// --- failure-scenario grids ---------------------------------------------

/// Random link-failure scenarios, one per fraction: each fails
/// round(f * num_edges) sampled edges, labeled "fail(f=<f>)". The runner
/// derives each cell's sampling seed (see runner.h).
std::vector<ScenarioPoint> random_failure_scenarios(
    const std::vector<double>& fractions);

/// Uniform capacity degradation to `factor` of nominal on every link,
/// labeled "degrade(c=<factor>)". No links fail (failed_links == 0).
ScenarioPoint degrade_scenario(double factor);

/// Correlated shared-risk failure scenarios, one per fraction: each fails
/// round(f * num_groups) risk groups sampled on the group stream, labeled
/// "groups(f=<f>)". Requires networks exporting risk groups (every
/// registry instance does; see ensure_risk_groups).
std::vector<ScenarioPoint> correlated_group_scenarios(
    const std::vector<double>& fractions);

/// Uniform traffic surge: every demand scaled by `scale`, labeled
/// "surge(x=<scale>)". No links fail; capacities are untouched.
ScenarioPoint surge_scenario(double scale);

/// Diurnal hotspot surge: round(fraction * num_demands) seeded demands
/// additionally scaled by `factor`, labeled "hotspot(f=<f>,x=<factor>)".
ScenarioPoint hotspot_scenario(double fraction, double factor);

// --- environment knobs (shared by every driver) -------------------------
// Solver accuracy, trial counts and sweep sizes can be tightened from the
// environment without recompiling:
//   TOPOBENCH_EPS            — GK certified-gap target
//   TOPOBENCH_TRIALS         — random-graph samples per data point
//   TOPOBENCH_TARGET_SERVERS — representative-instance size target
//   TOPOBENCH_MAX_SERVERS    — ladder upper cutoff
//   TOPOBENCH_SOLVER_THREADS — intra-solve worker threads (0 = shared
//                              pool, 1 = serial, N = dedicated pool;
//                              never changes values — see runner.h)
//   TOPOBENCH_SHARD=i/n      — evaluate only shard i of n of the flat cell
//                              grid and emit a mergeable slice (see
//                              shard.h; malformed values are a hard error)

double env_eps(double fallback);
/// TOPOBENCH_TRIALS in [1, 100]; out-of-range or unset means `fallback`.
int env_trials(int fallback);
/// Integer knob clamped to [lo, hi]; `fallback` when unset or unparsable.
int env_int(const char* name, int fallback, int lo, int hi);

}  // namespace tb::exp
