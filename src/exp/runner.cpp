#include "exp/runner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/evaluator.h"
#include "store/result_store.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace tb::exp {
namespace {

/// Exact solver + cut-bound configuration for cache identity: every field
/// that can change a result (kind, full-precision epsilon, both
/// Auto-dispatch thresholds, the cut-bound knobs — the cut sampler's
/// seed is derived from the cell, so the option-struct seed is excluded —
/// and the warm-start mode, whose chained results differ from cold ones).
/// `parallel` is deliberately excluded — results are scheduling-invariant
/// by contract, and keying on it would miss between serial and parallel
/// runs of the same configuration. Scenario identity is the per-cell
/// scenario label (trusted like topology labels), carried in the cache key
/// itself.
std::string config_fingerprint(const Sweep& s) {
  const mcf::SolveOptions& o = s.solve;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "k%d|e%.17g|s%d|z%ld",
                static_cast<int>(o.kind), o.epsilon, o.exact_max_switches,
                o.exact_max_lp_size);
  std::string key = buf;
  if (s.cut_bounds) {
    // Cut knobs enter the key only when they can affect the result, so
    // disabled sweeps that differ in inert options still share entries.
    const CutBoundOptions& c = s.cut_bound_opts;
    std::snprintf(buf, sizeof(buf), "|cb|f%ld|q%d|b%d", c.brute_force_cap,
                  c.st_pairs, c.include_bisection ? 1 : 0);
    key += buf;
  }
  if (s.warm_start) {
    // A warm cell's result depends on its whole chain prefix (each solve
    // seeds from the previous TM's solution), so the chain itself — the
    // ordered TM label list — is part of the configuration identity.
    // Without it, two warm sweeps sharing a (topology, TM, index) cell but
    // differing in earlier TMs would collide on one cache entry.
    key += "|warm";
    for (const TmSpec& tm : s.tms) {
      key += '\x1f';
      key += tm.label;
    }
  }
  if (!s.scenarios.empty()) {
    // A failure cell's TM comes from its group's scenario-0 cell stream,
    // so its result depends on the scenario-axis shape (count and
    // ordinals), not just its own scenario label: two sweeps can place the
    // same label at the same flat index inside differently shaped axes.
    // Fold the ordered scenario label list into the configuration
    // identity, as warm mode does for its TM chain.
    key += "|fleet";
    for (const ScenarioPoint& p : s.scenarios) {
      key += '\x1f';
      key += p.label;
    }
  }
  if (s.growth_steps > 0) {
    // Growth cells derive their installed-switch counts from the axis
    // shape and start fraction, so both are configuration identity (the
    // per-step labels alone would collide across different growth_start).
    std::snprintf(buf, sizeof(buf), "|grow|%d|%.17g", s.growth_steps,
                  s.growth_start);
    key += buf;
  }
  return key;
}

std::string cache_key(const std::string& topo, const std::string& tm,
                      const std::string& scenario, std::uint64_t seed,
                      const Sweep& sweep) {
  // \x1f (unit separator) cannot occur in labels built from names.
  return topo + '\x1f' + tm + '\x1f' + scenario + '\x1f' +
         std::to_string(seed) + '\x1f' + config_fingerprint(sweep) + '\x1f' +
         std::to_string(sweep.trials);
}

std::string scenario_label_of(const Sweep& sweep, const Cell& c) {
  if (!sweep.scenarios.empty()) return sweep.scenarios[c.scenario].label;
  if (sweep.growth_steps > 0) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "grow(step=%d/%d)",
                  static_cast<int>(c.scenario), sweep.growth_steps);
    return buf;
  }
  return {};
}

/// Installed-switch count at growth stage `step`: a linear ladder from
/// round(n * growth_start) (clamped to >= 2) up to the full instance,
/// which the final stage always is.
int growth_installed(const Sweep& sweep, int num_nodes, int step) {
  const int steps = sweep.growth_steps;
  if (step >= steps - 1) return num_nodes;
  const double frac =
      sweep.growth_start +
      (1.0 - sweep.growth_start) * step / static_cast<double>(steps - 1);
  const int installed = static_cast<int>(std::llround(frac * num_nodes));
  return std::max(2, std::min(num_nodes, installed));
}

void validate_modes(const Sweep& sweep) {
  if (!sweep.scenarios.empty()) {
    if (sweep.trials > 0) {
      throw std::invalid_argument(
          "Runner::run: failures mode requires absolute mode (trials == 0)");
    }
    if (sweep.cut_bounds) {
      throw std::invalid_argument(
          "Runner::run: failures mode does not support cut bounds");
    }
    if (sweep.warm_start) {
      throw std::invalid_argument(
          "Runner::run: failures mode does not support warm-start chains "
          "(each failure cell already warm-starts internally)");
    }
    for (const ScenarioPoint& p : sweep.scenarios) {
      if (p.label.empty()) {
        throw std::invalid_argument("Runner::run: scenario label empty");
      }
    }
  }
  if (sweep.warm_start && sweep.trials > 0) {
    throw std::invalid_argument(
        "Runner::run: warm-start chains require absolute mode (trials == 0)");
  }
  if (sweep.warm_start && sweep.cut_bounds) {
    throw std::invalid_argument(
        "Runner::run: warm-start chains do not support cut bounds");
  }
  if (sweep.growth_steps < 0) {
    throw std::invalid_argument("Runner::run: negative growth_steps");
  }
  if (sweep.growth_steps > 0) {
    if (!sweep.scenarios.empty()) {
      throw std::invalid_argument(
          "Runner::run: growth mode and a scenario axis are mutually "
          "exclusive (both occupy the third grid axis)");
    }
    if (sweep.trials > 0) {
      throw std::invalid_argument(
          "Runner::run: growth mode requires absolute mode (trials == 0)");
    }
    if (sweep.cut_bounds) {
      throw std::invalid_argument(
          "Runner::run: growth mode does not support cut bounds");
    }
    if (sweep.warm_start) {
      throw std::invalid_argument(
          "Runner::run: growth mode does not support warm-start chains "
          "(each growth cell already warm-starts internally)");
    }
    if (!(sweep.growth_start > 0.0) || sweep.growth_start > 1.0) {
      throw std::invalid_argument(
          "Runner::run: growth_start must be in (0, 1]");
    }
  }
}

}  // namespace

std::string cell_result_key(const Sweep& sweep, const Cell& cell) {
  return cache_key(sweep.topologies[cell.topo].label, sweep.tms[cell.tm].label,
                   scenario_label_of(sweep, cell),
                   mix_seed(sweep.base_seed, cell.index), sweep);
}

RunOptions RunOptions::from_env() {
  RunOptions opts;
  opts.shard = env_shard();
  opts.solver_threads = env::int_knob("TOPOBENCH_SOLVER_THREADS", 0, 0, 512);
  if (const std::optional<std::string> path = env::raw("TOPOBENCH_STORE")) {
    opts.store = std::make_shared<store::ResultStore>(
        *path, store::ResultStore::Mode::ReadWrite);
  }
  return opts;
}

std::string solver_label(const mcf::SolveOptions& opts) {
  char eps[24];
  std::snprintf(eps, sizeof(eps), "%g", opts.epsilon);
  switch (opts.kind) {
    case mcf::SolverKind::ExactLP:
      return "exact-lp";
    case mcf::SolverKind::GargKonemann:
      return std::string("gk(eps=") + eps + ")";
    case mcf::SolverKind::Auto:
      return std::string("auto(eps=") + eps + ")";
  }
  return "?";
}

namespace {

/// Shared CellResult scaffolding of a cell: identity columns + stats.
void fill_cell_identity(CellResult& r, std::size_t cell_index,
                        const std::string& topo_label, const Network& net,
                        const std::string& tm_label, std::uint64_t cell_seed,
                        const mcf::SolveOptions& solve) {
  r.cell = cell_index;
  // The spec label, not net.name: the label is the identity rows and cache
  // keys agree on, and caller-authored specs may name instances freely.
  r.topology = topo_label;
  r.servers = net.total_servers();
  r.switches = net.graph.num_nodes();
  r.tm = tm_label;
  r.seed = cell_seed;
  r.solver = solver_label(solve);
}

void record_stats(CellResult& r, const mcf::SolverStats& s) {
  r.pivots = s.pivots;
  r.phases = s.phases;
  r.dijkstras = s.dijkstras;
  r.warm = s.warm_start ? 1 : 0;
  r.solver_threads = s.solver_threads;
}

}  // namespace

CellResult Runner::eval_cell(const Sweep& sweep,
                             const mcf::SolveOptions& solve,
                             const std::string& topo_label, const Network& net,
                             const TmSpec& tm_spec, std::size_t cell_index,
                             mcf::ThroughputEngine* engine, bool warm) const {
  CellResult r;
  const std::uint64_t cell_seed = mix_seed(sweep.base_seed, cell_index);
  fill_cell_identity(r, cell_index, topo_label, net, tm_spec.label, cell_seed,
                     solve);
  const TrafficMatrix tm = tm_spec.build(net, mix_seed(cell_seed, 0));
  if (sweep.trials <= 0) {
    r.trials = 0;
    const mcf::ThroughputResult t =
        engine != nullptr
            ? (warm ? engine->warm_solve(tm, solve) : engine->solve(tm, solve))
            : mcf::compute_throughput(net, tm, solve);
    r.throughput = t.throughput;
    record_stats(r, t.stats);
  } else {
    r.trials = sweep.trials;
    RelativeOptions ropts;
    ropts.random_trials = sweep.trials;
    ropts.seed = cell_seed;  // trial t samples mix_seed(base, cell, t)
    ropts.solve = solve;
    const RelativeResult rel = relative_throughput(net, tm, ropts);
    r.throughput = rel.topo_throughput;
    r.random_mean = rel.random_throughput.mean;
    r.random_ci95 = rel.random_throughput.ci95;
    r.relative = rel.relative;
    r.relative_ci95 = rel.relative_ci95;
    record_stats(r, rel.topo_stats);
  }
  if (sweep.cut_bounds) {
    // The cut sampler draws from the stream after the last random-graph
    // trial, so enabling cut bounds perturbs no existing column.
    CutBoundOptions cb = sweep.cut_bound_opts;
    cb.seed = mix_seed(cell_seed, static_cast<std::uint64_t>(r.trials) + 1);
    // Mirror the mcf engine's threading gate: a non-parallel solve keeps
    // the cut estimators serial too. Never result-bearing (the battery is
    // thread-invariant), so the fingerprint ignores it like `parallel`.
    cb.solver_threads = solve.parallel ? solve.solver_threads : 1;
    const CutBoundResult cut = cut_upper_bound(net, tm, cb);
    r.pushes = cut.flow_stats.pushes;
    r.relabels = cut.flow_stats.relabels;
    r.global_relabels = cut.flow_stats.global_relabels;
    r.cut_bound = cut.bound;
    r.cut_gap = r.throughput > 0.0
                    ? cut.bound / r.throughput
                    : std::numeric_limits<double>::quiet_NaN();
    r.cut_method =
        cut.method + '(' + std::string(cuts::to_string(cut.kind)) + ')';
  }
  return r;
}

void Runner::eval_failure_group(const Sweep& sweep,
                                const mcf::SolveOptions& solve,
                                const std::string& topo_label,
                                const Network& net, const TmSpec& tm_spec,
                                const std::vector<std::size_t>& cell_indices,
                                std::vector<CellResult>& out) const {
  const bool growth = sweep.scenarios.empty();
  const std::size_t num_scenarios =
      growth ? static_cast<std::size_t>(sweep.growth_steps)
             : sweep.scenarios.size();
  // The group's TM comes from its scenario-0 cell stream so every scenario
  // of the group degrades the same instance (see the header contract); the
  // flat expansion is scenario-minor, so that cell is the group's floor.
  const std::size_t first_index =
      (cell_indices.front() / num_scenarios) * num_scenarios;
  const TrafficMatrix tm = tm_spec.build(
      net, mix_seed(mix_seed(sweep.base_seed, first_index), 0));
  // Per-cell failure sampling: each scenario keeps drawing from its own
  // cell's stream after the cut sampler's (trials + 2), so the batch shape
  // never leaks into the sampled failure sets. Growth stages use no
  // sampling — their spec is the uninstalled node tail — but carry the
  // same seed for uniformity.
  std::vector<mcf::ScenarioSpec> specs;
  specs.reserve(cell_indices.size());
  for (const std::size_t index : cell_indices) {
    mcf::ScenarioSpec spec;
    if (growth) {
      const int installed = growth_installed(
          sweep, net.graph.num_nodes(), static_cast<int>(index % num_scenarios));
      for (int v = installed; v < net.graph.num_nodes(); ++v) {
        spec.failed_nodes.push_back(v);
      }
      spec.drop_failed_node_demands = true;
    } else {
      spec = sweep.scenarios[index % num_scenarios].spec;
    }
    spec.seed = mix_seed(mix_seed(sweep.base_seed, index),
                         static_cast<std::uint64_t>(sweep.trials) + 2);
    specs.push_back(std::move(spec));
  }
  // parallel_ gates the fleet's per-scenario fan-out too: a cell-serial
  // runner keeps every cell on the calling thread (the solvers still
  // honor solve.parallel / solver_threads independently).
  const std::vector<DegradedResult> deg =
      degraded_throughput_batch(net, tm, specs, solve, parallel_);
  for (std::size_t k = 0; k < cell_indices.size(); ++k) {
    const std::size_t index = cell_indices[k];
    const std::size_t step = index % num_scenarios;
    CellResult& r = out[index];
    fill_cell_identity(r, index, topo_label, net, tm_spec.label,
                       mix_seed(sweep.base_seed, index), solve);
    r.trials = 0;
    Cell c;
    c.index = index;
    c.scenario = step;
    r.scenario = scenario_label_of(sweep, c);
    r.throughput = deg[k].degraded;
    r.failed_links = deg[k].failed_links;
    r.throughput_drop = deg[k].drop;
    // Structured-scenario columns: fleet cells record their actual values
    // (0 failed groups and tm_scale 1 are legitimate data, unlike the NA
    // sentinels non-fleet cells keep).
    r.risk_group = deg[k].failed_groups;
    r.tm_scale = specs[k].tm_scale;
    r.growth_step = growth ? static_cast<int>(step) : -1;
    record_stats(r, deg[k].stats);
  }
}

ResultSet Runner::run(const Sweep& sweep) {
  // Deprecated shim: the env contract lives in RunOptions::from_env().
  return run(sweep, RunOptions::from_env());
}

ResultSet Runner::run(const Sweep& sweep, const RunOptions& opts) {
  if (opts.shard) {
    if (!opts.shard->valid()) {
      throw std::invalid_argument("Runner::run: invalid shard spec " +
                                  std::to_string(opts.shard->index) + "/" +
                                  std::to_string(opts.shard->count) +
                                  " (need 0 <= i < n)");
    }
    return run_impl(sweep, opts, *opts.shard, /*slice=*/true);
  }
  return run_impl(sweep, opts, ShardSpec{}, /*slice=*/false);
}

ResultSet Runner::run_impl(const Sweep& sweep, const RunOptions& opts,
                           const ShardSpec& shard, bool slice) {
  if (sweep.topologies.empty() || sweep.tms.empty()) {
    throw std::invalid_argument("Runner::run: empty sweep");
  }
  validate_modes(sweep);
  const std::vector<Cell> cells = expand(sweep);
  // The shard's contiguous slice of the flat grid. Every structure below
  // keeps using *global* cell indices (seeds, cache keys, fleet group
  // floors), which is what makes a shard's rows bitwise the corresponding
  // rows of the unsharded run.
  const CellRange range = shard_range(cells.size(), shard);
  // RunOptions::solver_threads seeds the intra-solve threading knob when
  // the sweep leaves it at 0; never part of cache identity (results are
  // thread-invariant by the solver determinism contracts) and never
  // recorded — the solver_threads column echoes sweep.solve below.
  mcf::SolveOptions solve = sweep.solve;
  if (solve.solver_threads == 0) {
    solve.solver_threads = opts.solver_threads;
  }
  store::ResultStore* store = opts.store.get();

  std::vector<CellResult> out(cells.size());
  std::vector<std::size_t> misses;  // cell indices needing evaluation
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    // Tiered probe: memory first, then the on-disk store (a disk hit is
    // copied into the memory cache so the next probe is free). The store
    // is only touched under mutex_ — ResultStore is not thread-safe.
    const auto probe = [&](const Cell& c) -> const CellResult* {
      const std::string key = cell_result_key(sweep, c);
      const auto it = cache_.find(key);
      if (it != cache_.end()) {
        ++stats_.hits;
        ++stats_.memory_hits;
        return &it->second;
      }
      if (store != nullptr) {
        if (std::optional<CellResult> r = store->get(key)) {
          ++stats_.hits;
          ++stats_.disk_hits;
          return &cache_.emplace(key, std::move(*r)).first->second;
        }
      }
      return nullptr;
    };
    const auto present = [&](const Cell& c) {
      const std::string key = cell_result_key(sweep, c);
      return cache_.find(key) != cache_.end() ||
             (store != nullptr && store->contains(key));
    };
    if (!sweep.warm_start) {
      for (std::size_t index = range.lo; index < range.hi; ++index) {
        const Cell& c = cells[index];
        if (const CellResult* hit = probe(c)) {
          out[c.index] = *hit;
          out[c.index].cell = c.index;
          // The column echoes the *sweep-requested* configuration
          // (results.h); the cached row may have been computed under a
          // different one.
          out[c.index].solver_threads = sweep.solve.solver_threads;
        } else {
          misses.push_back(c.index);
        }
      }
    } else {
      // Warm mode: a topology chain is answered from the cache/store only
      // when every one of its cells is present — re-solving part of a
      // chain would change the warm seeds of the rest. A chain a shard's
      // range merely intersects still runs (or hits) whole: its in-range
      // cells' values depend on the chain prefix, so trimming the chain to
      // the range would change bytes.
      const std::size_t per_topo = sweep.tms.size();
      const std::size_t first_topo = range.lo / per_topo;
      const std::size_t last_topo =
          range.hi == range.lo ? first_topo : (range.hi - 1) / per_topo + 1;
      for (std::size_t t = first_topo; t < last_topo; ++t) {
        bool all_hit = true;
        for (std::size_t m = 0; m < per_topo && all_hit; ++m) {
          all_hit = present(cells[t * per_topo + m]);
        }
        for (std::size_t m = 0; m < per_topo; ++m) {
          const std::size_t index = t * per_topo + m;
          const Cell& c = cells[index];
          if (all_hit) {
            const CellResult* hit = probe(c);
            out[c.index] = *hit;
            out[c.index].cell = c.index;
            out[c.index].solver_threads = sweep.solve.solver_threads;
          } else {
            misses.push_back(c.index);
          }
        }
      }
    }
  }

  // Build only the topologies that still have cells to evaluate (a fully
  // cached re-run pays no build cost); cells of a topology share the
  // instance.
  std::vector<std::shared_ptr<const Network>> nets(sweep.topologies.size());
  for (const std::size_t index : misses) {
    const Cell& c = cells[index];
    if (!nets[c.topo]) nets[c.topo] = sweep.topologies[c.topo].build();
  }

  ThreadPool& pool = ThreadPool::shared();
  if (!sweep.scenarios.empty() || sweep.growth_steps > 0) {
    // Failures/growth mode: the missing cells of each (topology, TM) pair
    // form one ScenarioFleet batch (a shared baseline + per-scenario
    // degraded solves; growth stages are node-tail scenarios). Groups run
    // concurrently — the fleet's own parallelism inlines on pool workers —
    // and per-scenario results are independent of the batch shape, so
    // output stays byte-identical for any thread count and any cache
    // state.
    struct FleetGroup {
      std::size_t topo = 0;
      std::size_t tm = 0;
      std::vector<std::size_t> cell_indices;  // misses, in cell order
    };
    std::vector<FleetGroup> groups;
    for (const std::size_t index : misses) {
      const Cell& c = cells[index];
      if (groups.empty() || groups.back().topo != c.topo ||
          groups.back().tm != c.tm) {
        groups.push_back({c.topo, c.tm, {}});
      }
      groups.back().cell_indices.push_back(index);
    }
    const auto eval_group = [&](std::size_t k) {
      const FleetGroup& grp = groups[k];
      eval_failure_group(sweep, solve, sweep.topologies[grp.topo].label,
                         *nets[grp.topo], sweep.tms[grp.tm], grp.cell_indices,
                         out);
    };
    if (parallel_ && groups.size() > 1 && pool.size() > 1) {
      pool.parallel_for(0, groups.size(), eval_group);
    } else {
      for (std::size_t k = 0; k < groups.size(); ++k) eval_group(k);
    }
  } else if (!sweep.warm_start) {
    // Evaluate the missing cells — concurrently when allowed — writing each
    // result into its own slot; everything below the barrier is a
    // deterministic reduction in cell order.
    const auto eval = [&](std::size_t k) {
      const Cell& c = cells[misses[k]];
      out[c.index] = eval_cell(sweep, solve, sweep.topologies[c.topo].label,
                               *nets[c.topo], sweep.tms[c.tm], c.index,
                               /*engine=*/nullptr, /*warm=*/false);
    };
    if (parallel_ && misses.size() > 1 && pool.size() > 1) {
      pool.parallel_for(0, misses.size(), eval);
    } else {
      for (std::size_t k = 0; k < misses.size(); ++k) eval(k);
    }
  } else {
    // Warm mode: one chain per topology with misses (misses are whole
    // topologies by construction). Chains run concurrently; within a chain
    // the TM order fixes the warm seeds, so results are thread-count
    // invariant.
    const std::size_t per_topo = sweep.tms.size();
    std::vector<std::size_t> chain_topos;
    for (const std::size_t index : misses) {
      const std::size_t t = index / per_topo;
      if (chain_topos.empty() || chain_topos.back() != t) {
        chain_topos.push_back(t);
      }
    }
    const auto eval_chain = [&](std::size_t k) {
      const std::size_t t = chain_topos[k];
      mcf::ThroughputEngine engine(*nets[t]);
      for (std::size_t m = 0; m < per_topo; ++m) {
        const std::size_t index = t * per_topo + m;
        // The whole chain runs in session mode (the first cell has no
        // previous solution to seed from but still gets the session
        // dynamics; see ThroughputEngine::warm_solve).
        out[index] = eval_cell(sweep, solve, sweep.topologies[t].label,
                               *nets[t], sweep.tms[m], index, &engine,
                               /*warm=*/true);
      }
    };
    if (parallel_ && chain_topos.size() > 1 && pool.size() > 1) {
      pool.parallel_for(0, chain_topos.size(), eval_chain);
    } else {
      for (std::size_t k = 0; k < chain_topos.size(); ++k) eval_chain(k);
    }
  }

  // The solver_threads column echoes the sweep's requested configuration,
  // never the execution-time merge above: TOPOBENCH_SOLVER_THREADS (like
  // TOPOBENCH_THREADS) is a pure execution knob, and the determinism
  // entries require it to move no CSV byte. Normalizing before the
  // write-through also keeps stored bytes identical across env settings
  // (ResultStore::put throws on a byte mismatch for the same key).
  for (const std::size_t index : misses) {
    out[index].solver_threads = sweep.solve.solver_threads;
  }

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    // Write-through: evaluated cells land in the memory cache and, when a
    // writable store is attached, on disk (put throws loudly if the store
    // already holds different bytes for the key — a determinism
    // violation). A read-only store stays a read tier.
    const bool persist =
        store != nullptr &&
        store->mode() == store::ResultStore::Mode::ReadWrite;
    for (const std::size_t index : misses) {
      const std::string key = cell_result_key(sweep, cells[index]);
      if (persist) store->put(key, out[index]);
      cache_.emplace(std::move(key), out[index]);
      ++stats_.misses;
    }
  }

  // Only the shard's own range is returned (warm chains may have evaluated
  // beyond it — those cells live in the cache, not the slice).
  ResultSet rs;
  for (std::size_t index = range.lo; index < range.hi; ++index) {
    rs.add(std::move(out[index]));
  }
  if (slice) {
    SliceMeta meta;
    meta.grid = grid_fingerprint(sweep);
    meta.total = cells.size();
    meta.shard = shard;
    meta.lo = range.lo;
    meta.hi = range.hi;
    rs.set_slice(meta);
  }
  return rs;
}

std::uint64_t grid_fingerprint(const Sweep& sweep) {
  // Canonical structural string, hashed FNV-1a. config_fingerprint already
  // covers the solver / cut-bound / warm / fleet configuration (including
  // the TM chain and scenario lists where they affect values); the axis
  // label lists are folded in unconditionally because they define the grid
  // itself. Distinct field separators keep e.g. a topology list ["a,b"]
  // distinct from ["a","b"].
  std::string s = "topobench-grid-v1\x1d";
  s += std::to_string(sweep.base_seed);
  s += '\x1d';
  s += std::to_string(sweep.trials);
  s += '\x1d';
  s += config_fingerprint(sweep);
  s += '\x1d';
  for (const TopoSpec& topo : sweep.topologies) {
    s += topo.label;
    s += '\x1e';
  }
  s += '\x1d';
  for (const TmSpec& tm : sweep.tms) {
    s += tm.label;
    s += '\x1e';
  }
  s += '\x1d';
  for (const ScenarioPoint& p : sweep.scenarios) {
    s += p.label;
    s += '\x1e';
  }
  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a 64-bit offset basis
  for (const char c : s) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;  // FNV prime
  }
  return hash;
}

Table relative_pivot(const ResultSet& rs, const Sweep& sweep) {
  std::vector<std::string> header{"topology", "servers", "switches"};
  for (const TmSpec& tm : sweep.tms) header.push_back("rel_" + tm.label);
  if (!sweep.tms.empty()) {
    header.push_back("ci95_" + sweep.tms.back().label);
  }
  Table table(std::move(header));
  for (const TopoSpec& topo : sweep.topologies) {
    std::vector<std::string> row;
    const CellResult& first = rs.at(topo.label, sweep.tms.front().label);
    row.push_back(topo.label);
    row.push_back(std::to_string(first.servers));
    row.push_back(std::to_string(first.switches));
    for (const TmSpec& tm : sweep.tms) {
      row.push_back(Table::fmt(rs.at(topo.label, tm.label).relative, 3));
    }
    const double ci = rs.at(topo.label, sweep.tms.back().label).relative_ci95;
    row.push_back(std::isnan(ci) ? "na" : Table::fmt(ci, 3));
    table.add_row(std::move(row));
  }
  return table;
}

}  // namespace tb::exp
