// Executes sweeps on the shared thread pool with deterministic per-cell
// seeding and an in-process result cache.
//
// Seeding contract: a cell's seed is mix_seed(base_seed, cell_index); its
// traffic matrix is built with mix_seed(base, cell, 0) and random-graph
// trial t in [1..trials] draws its same-equipment graph from
// mix_seed(base, cell, t). When Sweep::cut_bounds is set, the cut-bound
// sampler draws from mix_seed(base, cell, trials + 1) — the stream after
// the last trial — and when the sweep has a failure axis, the scenario's
// random-failure sampler draws from mix_seed(base, cell, trials + 2), the
// stream after the cut sampler, so enabling either perturbs no existing
// column. Cells run concurrently on ThreadPool::shared()
// (nested solver parallelism degrades inline — see thread_pool.h) and the
// ResultSet is assembled after the barrier in cell order, so for a fixed
// base seed the output is byte-identical for any thread count, including
// TOPOBENCH_THREADS=1.
//
// Failures mode (Sweep::scenarios non-empty): the missing cells of each
// (topology, TM) pair evaluate as one mcf::ScenarioFleet batch — a single
// cold baseline solve, then every scenario warm-solved on a forked clone of
// the baseline session — so a grid of S scenarios pays one baseline instead
// of S. The group's TM is built from its scenario-0 cell stream
// (mix_seed(base, first_cell, 0)): every scenario of the group degrades the
// same instance, which is what makes the shared baseline (and the drop
// column) meaningful; each scenario's failure sampler still draws from its
// own cell's stream mix_seed(base, cell, trials + 2). Groups run
// concurrently and per-scenario fleet results are independent of batch
// shape, so the determinism contract is unchanged. Requires absolute mode
// (trials == 0, no cut bounds, no warm chains).
//
// Growth mode (Sweep::growth_steps > 0): the third grid axis becomes an
// incremental-expansion ladder instead of a scenario list — stage g of a
// (topology, TM) group fails the uninstalled node tail (see
// Sweep::growth_steps for the installed-count formula) with dropped
// demands, evaluated through the same fleet machinery: one full-network
// baseline, each stage warm-solved on a fork. Stage labels
// ("grow(step=<g>/<steps>)") fill the scenario column and the growth_step
// column records g; early stages may be disconnected, which deterministically
// reports throughput 0. Same mode constraints and caching/sharding
// behavior as failures mode; the axis shape and start fraction are part of
// the configuration fingerprint.
//
// Solver threading: Runner::run seeds SolveOptions::solver_threads from
// TOPOBENCH_SOLVER_THREADS when the sweep leaves it 0. By the solver
// determinism contracts the knob never changes values — it is recorded in
// the solver_threads column (the requested configuration, not a measured
// count) and deliberately excluded from cache identity like `parallel`.
//
// Warm-start mode (Sweep::warm_start): the evaluation unit becomes the
// topology, not the cell — each topology's TM cells run as one ordered
// chain on a shared ThroughputEngine (first solve cold, the rest seeded
// from the previous solution). Topologies still run concurrently and a
// chain's order is the TM order, so results remain thread-count invariant;
// they differ from cold results within the solver's certified gap. A
// topology is answered from the cache only when ALL its cells hit —
// otherwise the whole chain re-evaluates (a partial chain would change the
// warm seeds). Requires absolute mode without scenarios or cut bounds.
//
// Cache contract: results are memoized under (topology label, TM label,
// scenario label, cell seed, solver + cut-bound + warm configuration,
// trial count). Because the cell seed is derived from the flat expansion
// index, a lookup hits only when the cell sits at the same index under the
// same base seed: exact re-runs of a sweep hit entirely, and sweeps
// extended by appending topologies (with the TM list unchanged) hit on
// their shared prefix. Inserting topologies or changing the TM list shifts
// later indices and re-evaluates those cells. Labels are trusted as
// identities (see sweep.h).
//
// Sharding (TOPOBENCH_SHARD=i/n, or RunOptions::shard programmatically):
// the run evaluates and returns only the cells of shard i's contiguous
// range of the flat grid (see shard.h for the partition contract) and the
// ResultSet carries a SliceMeta so emission is a mergeable slice. Cells
// keep their global flat indices everywhere — seeding, cache keys, fleet
// group floors — so a shard's rows are bitwise the corresponding rows of
// the unsharded run for every sweep mode. Warm-start chains are the one
// place a shard evaluates beyond its range: a chain intersecting the range
// runs whole (a chain cell's value depends on its chain prefix), but only
// in-range cells are returned; the extra cells land in the cache.
// tools/topobench_merge reassembles slices into the unsharded bytes.
//
// Result store (RunOptions::store): an optional on-disk tier under the
// in-process cache. The probe order is memory, then disk, then evaluate; a
// disk hit is copied into the memory cache, and every evaluated cell is
// written through to the store (when it is writable). Store keys are the
// cache keys above (see cell_result_key), values the exact CSV row codec,
// so a sweep re-run against a populated store returns byte-identical
// results without a single solve. CacheStats splits hits into
// memory_hits/disk_hits so callers can tell the tiers apart.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
// topobench-lint: allow(unordered-container) lookup-only result cache below
#include <unordered_map>

#include "exp/results.h"
#include "exp/shard.h"
#include "exp/sweep.h"
#include "util/table.h"

namespace tb::store {
class ResultStore;
}  // namespace tb::store

namespace tb::exp {

struct CacheStats {
  std::size_t hits = 0;         ///< cells answered without evaluation
                                ///< (always memory_hits + disk_hits)
  std::size_t memory_hits = 0;  ///< ... from the in-process cache
  std::size_t disk_hits = 0;    ///< ... from the on-disk result store
  std::size_t misses = 0;       ///< cells actually evaluated
};

/// Per-run execution options (as opposed to the Sweep, which describes the
/// grid itself and is part of result identity). This is the single
/// consolidated knob path: environment variables enter exclusively through
/// from_env(), and every field can be set programmatically without
/// touching the environment.
struct RunOptions {
  /// When engaged, evaluate only this shard of the flat cell grid and
  /// return a slice (ResultSet::slice is set; see shard.h). Disengaged:
  /// the whole grid, emitted without a slice header.
  std::optional<ShardSpec> shard;

  /// Intra-solve worker threads, applied when the sweep's SolveOptions
  /// leave solver_threads at 0 (0 = shared pool; never changes values —
  /// see the solver determinism contracts).
  int solver_threads = 0;

  /// On-disk result tier (read-through/write-through when ReadWrite,
  /// read-only tier otherwise). Shared so a Service and its Runner can
  /// hold the same store. The Runner serializes all store access under
  /// its cache mutex.
  std::shared_ptr<store::ResultStore> store;

  /// The one environment loader (strict: malformed values throw
  /// std::invalid_argument, see util/env.h):
  ///   TOPOBENCH_SHARD=i/n       -> shard
  ///   TOPOBENCH_SOLVER_THREADS  -> solver_threads (integer in [0, 512])
  ///   TOPOBENCH_STORE=<path>    -> store, opened ReadWrite (created if
  ///                                absent; throws if another writer holds
  ///                                the lock or the file is corrupt)
  static RunOptions from_env();
};

class Runner {
 public:
  /// `parallel = false` forces cells onto the calling thread (the solver
  /// and evaluator still honor Sweep::solve.parallel independently).
  explicit Runner(bool parallel = true) : parallel_(parallel) {}

  Runner(const Runner&) = delete;
  Runner& operator=(const Runner&) = delete;

  /// Deprecated shim, kept for source compatibility: identical to
  /// run(sweep, RunOptions::from_env()) — honors TOPOBENCH_SHARD,
  /// TOPOBENCH_SOLVER_THREADS and TOPOBENCH_STORE, throwing
  /// std::invalid_argument when any is set but malformed. New code should
  /// call the options-taking overload with an explicit RunOptions (use
  /// RunOptions::from_env() to keep the env contract).
  ResultSet run(const Sweep& sweep);

  /// Evaluate `sweep` under `opts` and return results in cell order.
  /// Throws std::invalid_argument on an empty grid, an invalid mode
  /// combination (see the failures / warm-start contracts above), or an
  /// engaged-but-invalid opts.shard.
  ResultSet run(const Sweep& sweep, const RunOptions& opts);

  const CacheStats& cache_stats() const noexcept { return stats_; }

 private:
  /// Evaluate one non-failure cell. `engine` is non-null in warm-start
  /// mode (the topology chain's shared session; `warm` selects warm_solve
  /// for every chain position after the first).
  CellResult eval_cell(const Sweep& sweep, const mcf::SolveOptions& solve,
                       const std::string& topo_label, const Network& net,
                       const TmSpec& tm, std::size_t cell_index,
                       mcf::ThroughputEngine* engine, bool warm) const;

  /// Evaluate the missing cells of one (topology, TM) failure group as a
  /// ScenarioFleet batch, writing each cell's result into `out` (indexed by
  /// flat cell index). `cell_indices` holds the group's missing cells in
  /// cell order.
  void eval_failure_group(const Sweep& sweep, const mcf::SolveOptions& solve,
                          const std::string& topo_label, const Network& net,
                          const TmSpec& tm,
                          const std::vector<std::size_t>& cell_indices,
                          std::vector<CellResult>& out) const;

  /// The shared implementation: evaluate `shard`'s cell range (global
  /// indices throughout) and, when `slice` is true, stamp the returned
  /// ResultSet with its SliceMeta. `opts` supplies the store tier and the
  /// solver-threads default.
  ResultSet run_impl(const Sweep& sweep, const RunOptions& opts,
                     const ShardSpec& shard, bool slice);

  bool parallel_;
  std::mutex mutex_;
  // Order-independent by construction: the cache is only probed with
  // point lookups (find/insert under mutex_) and is never iterated, and
  // the ResultSet is assembled in flat cell order after the barrier, so
  // bucket order cannot reach emitted bytes. Pinned by exp_test
  // Runner.CacheInsertionOrderCannotLeakIntoCsvBytes, which populates the
  // cache in reversed shard order and diffs the replayed CSV.
  // topobench-lint: allow(unordered-container) lookup-only, never iterated
  std::unordered_map<std::string, CellResult> cache_;
  CacheStats stats_;
};

/// Stable structural identity of a sweep's flat grid — the slice-header
/// fingerprint that stops slices of different grids from merging. Folds in
/// the base seed, trial count, solver / cut-bound / warm / scenario
/// configuration, and the ordered topology, TM, and scenario label lists;
/// anything that changes the grid's cells or their values changes the
/// fingerprint. (Like cache keys, labels are trusted as identities, and
/// scheduling knobs — threads, pool shape — are deliberately excluded.)
std::uint64_t grid_fingerprint(const Sweep& sweep);

/// Human-readable label of a solver configuration ("auto(eps=0.1)",
/// "exact-lp", "gk(eps=0.03)"); part of the result rows and cache key.
std::string solver_label(const mcf::SolveOptions& opts);

/// The cache/store identity of one cell of `sweep`: topology label, TM
/// label, scenario label, cell seed, configuration fingerprint, and trial
/// count, '\x1f'-joined — exactly the key Runner memoizes under and the
/// ResultStore persists under. Exposed so tests and tools can address
/// store records without re-deriving the scheme.
std::string cell_result_key(const Sweep& sweep, const Cell& cell);

/// Pivot a relative-mode sweep into the scaling-figure shape: one row per
/// topology with rel_<tm> columns plus the CI of the last TM (the paper's
/// Figs. 5/6 layout).
Table relative_pivot(const ResultSet& rs, const Sweep& sweep);

}  // namespace tb::exp
