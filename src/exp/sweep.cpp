#include "exp/sweep.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <utility>

#include "tm/synthetic.h"

namespace tb::exp {

std::vector<Cell> expand(const Sweep& s) {
  // The third axis is scenarios (failures mode) or growth stages (growth
  // mode); validate_modes forbids combining them.
  const std::size_t num_scenarios = std::max<std::size_t>(
      1, s.scenarios.empty() ? static_cast<std::size_t>(s.growth_steps)
                             : s.scenarios.size());
  std::vector<Cell> cells;
  cells.reserve(s.topologies.size() * s.tms.size() * num_scenarios);
  for (std::size_t t = 0; t < s.topologies.size(); ++t) {
    for (std::size_t m = 0; m < s.tms.size(); ++m) {
      for (std::size_t c = 0; c < num_scenarios; ++c) {
        cells.push_back({cells.size(), t, m, c});
      }
    }
  }
  return cells;
}

TopoSpec instance_spec(Network net) {
  auto shared = std::make_shared<const Network>(std::move(net));
  return {shared->name, [shared] { return shared; }};
}

std::vector<TopoSpec> ladder_specs(const std::vector<Family>& families,
                                   int min_servers, int max_servers,
                                   std::uint64_t seed) {
  std::vector<TopoSpec> specs;
  for (const Family f : families) {
    for (Network& net : family_instances(f, min_servers, max_servers, seed)) {
      specs.push_back(instance_spec(std::move(net)));
    }
  }
  return specs;
}

TopoSpec representative_spec(Family f, int target_servers,
                             std::uint64_t seed) {
  return instance_spec(family_representative(f, target_servers, seed));
}

Sweep relative_scaling_sweep(const std::vector<Family>& families,
                             int max_servers) {
  Sweep s;
  s.topologies = ladder_specs(
      families, 8, env_int("TOPOBENCH_MAX_SERVERS", max_servers, 8, 1000000),
      /*seed=*/1);
  s.tms = {a2a_tm(), random_matching_tm(1), longest_matching_tm()};
  // Single-core default: a 10% certified gap is well below the separations
  // the figures exhibit; tighten with TOPOBENCH_EPS for publication runs.
  s.solve.epsilon = env_eps(0.10);
  s.trials = env_trials(2);
  s.base_seed = 1000;
  return s;
}

TmSpec a2a_tm() {
  return {"A2A", [](const Network& net, std::uint64_t) {
            return all_to_all(net);
          }};
}

TmSpec random_matching_tm(int k) {
  return {"RM(" + std::to_string(k) + ")",
          [k](const Network& net, std::uint64_t seed) {
            return random_matching(net, k, seed);
          }};
}

TmSpec longest_matching_tm() {
  return {"LM", [](const Network& net, std::uint64_t) {
            return longest_matching(net);
          }};
}

TmSpec kodialam_tm_spec() {
  return {"Kodialam", [](const Network& net, std::uint64_t) {
            return kodialam_tm(net);
          }};
}

std::vector<ScenarioPoint> random_failure_scenarios(
    const std::vector<double>& fractions) {
  std::vector<ScenarioPoint> points;
  points.reserve(fractions.size());
  for (const double f : fractions) {
    ScenarioPoint p;
    char buf[48];
    std::snprintf(buf, sizeof(buf), "fail(f=%g)", f);
    p.label = buf;
    p.spec.random_edge_fraction = f;
    points.push_back(std::move(p));
  }
  return points;
}

ScenarioPoint degrade_scenario(double factor) {
  ScenarioPoint p;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "degrade(c=%g)", factor);
  p.label = buf;
  p.spec.capacity_factor = factor;
  return p;
}

std::vector<ScenarioPoint> correlated_group_scenarios(
    const std::vector<double>& fractions) {
  std::vector<ScenarioPoint> points;
  points.reserve(fractions.size());
  for (const double f : fractions) {
    ScenarioPoint p;
    char buf[48];
    std::snprintf(buf, sizeof(buf), "groups(f=%g)", f);
    p.label = buf;
    p.spec.random_group_fraction = f;
    points.push_back(std::move(p));
  }
  return points;
}

ScenarioPoint surge_scenario(double scale) {
  ScenarioPoint p;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "surge(x=%g)", scale);
  p.label = buf;
  p.spec.tm_scale = scale;
  return p;
}

ScenarioPoint hotspot_scenario(double fraction, double factor) {
  ScenarioPoint p;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "hotspot(f=%g,x=%g)", fraction, factor);
  p.label = buf;
  p.spec.hotspot_fraction = fraction;
  p.spec.hotspot_factor = factor;
  return p;
}

double env_eps(double fallback) {
  if (const char* s = std::getenv("TOPOBENCH_EPS")) {
    const double v = std::strtod(s, nullptr);
    if (v > 0.0 && v < 0.5) return v;
  }
  return fallback;
}

int env_trials(int fallback) {
  // Legacy semantics (unlike env_int): an out-of-range value means "use the
  // per-bench default", not "clamp" — scripts predating the runner rely on
  // e.g. TOPOBENCH_TRIALS=0 falling back rather than yielding one trial.
  if (const char* s = std::getenv("TOPOBENCH_TRIALS")) {
    const long v = std::strtol(s, nullptr, 10);
    if (v >= 1 && v <= 100) return static_cast<int>(v);
  }
  return fallback;
}

int env_int(const char* name, int fallback, int lo, int hi) {
  if (const char* s = std::getenv(name)) {
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    if (end != s) {
      return static_cast<int>(
          std::clamp(v, static_cast<long>(lo), static_cast<long>(hi)));
    }
  }
  return fallback;
}

}  // namespace tb::exp
