#include "exp/sweep.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <utility>

#include "tm/synthetic.h"

namespace tb::exp {

std::vector<Cell> expand(const Sweep& s) {
  std::vector<Cell> cells;
  cells.reserve(s.topologies.size() * s.tms.size());
  for (std::size_t t = 0; t < s.topologies.size(); ++t) {
    for (std::size_t m = 0; m < s.tms.size(); ++m) {
      cells.push_back({cells.size(), t, m});
    }
  }
  return cells;
}

namespace {

/// Wrap an already-built instance: the label is the network's own name, so
/// the label <-> instance contract holds by construction.
TopoSpec spec_of(Network net) {
  auto shared = std::make_shared<const Network>(std::move(net));
  return {shared->name, [shared] { return shared; }};
}

}  // namespace

std::vector<TopoSpec> ladder_specs(const std::vector<Family>& families,
                                   int min_servers, int max_servers,
                                   std::uint64_t seed) {
  std::vector<TopoSpec> specs;
  for (const Family f : families) {
    for (Network& net : family_instances(f, min_servers, max_servers, seed)) {
      specs.push_back(spec_of(std::move(net)));
    }
  }
  return specs;
}

TopoSpec representative_spec(Family f, int target_servers,
                             std::uint64_t seed) {
  return spec_of(family_representative(f, target_servers, seed));
}

Sweep relative_scaling_sweep(const std::vector<Family>& families,
                             int max_servers) {
  Sweep s;
  s.topologies = ladder_specs(
      families, 8, env_int("TOPOBENCH_MAX_SERVERS", max_servers, 8, 1000000),
      /*seed=*/1);
  s.tms = {a2a_tm(), random_matching_tm(1), longest_matching_tm()};
  // Single-core default: a 10% certified gap is well below the separations
  // the figures exhibit; tighten with TOPOBENCH_EPS for publication runs.
  s.solve.epsilon = env_eps(0.10);
  s.trials = env_trials(2);
  s.base_seed = 1000;
  return s;
}

TmSpec a2a_tm() {
  return {"A2A", [](const Network& net, std::uint64_t) {
            return all_to_all(net);
          }};
}

TmSpec random_matching_tm(int k) {
  return {"RM(" + std::to_string(k) + ")",
          [k](const Network& net, std::uint64_t seed) {
            return random_matching(net, k, seed);
          }};
}

TmSpec longest_matching_tm() {
  return {"LM", [](const Network& net, std::uint64_t) {
            return longest_matching(net);
          }};
}

double env_eps(double fallback) {
  if (const char* s = std::getenv("TOPOBENCH_EPS")) {
    const double v = std::strtod(s, nullptr);
    if (v > 0.0 && v < 0.5) return v;
  }
  return fallback;
}

int env_trials(int fallback) {
  // Legacy semantics (unlike env_int): an out-of-range value means "use the
  // per-bench default", not "clamp" — scripts predating the runner rely on
  // e.g. TOPOBENCH_TRIALS=0 falling back rather than yielding one trial.
  if (const char* s = std::getenv("TOPOBENCH_TRIALS")) {
    const long v = std::strtol(s, nullptr, 10);
    if (v >= 1 && v <= 100) return static_cast<int>(v);
  }
  return fallback;
}

int env_int(const char* name, int fallback, int lo, int hi) {
  if (const char* s = std::getenv(name)) {
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    if (end != s) {
      return static_cast<int>(
          std::clamp(v, static_cast<long>(lo), static_cast<long>(hi)));
    }
  }
  return fallback;
}

}  // namespace tb::exp
