#include "cuts/bisection.h"

#include <limits>
#include <vector>

#include "graph/partition.h"

namespace tb::cuts {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Enumerate all balanced subsets containing node 0 (to halve the space)
/// and call visit(side).
template <typename Visit>
void for_each_balanced(int n, Visit&& visit) {
  const int half = n / 2;
  std::vector<int> members;  // nodes on side 1, node 0 always on side 0
  std::vector<std::uint8_t> side(static_cast<std::size_t>(n), 0);
  const auto rec = [&](auto&& self, int next) -> void {
    if (static_cast<int>(members.size()) == half) {
      visit(side);
      return;
    }
    if (n - next < half - static_cast<int>(members.size())) return;
    for (int v = next; v < n; ++v) {
      members.push_back(v);
      side[static_cast<std::size_t>(v)] = 1;
      self(self, v + 1);
      side[static_cast<std::size_t>(v)] = 0;
      members.pop_back();
    }
  };
  rec(rec, 1);
}

}  // namespace

CutResult bisection_sparsity(const Graph& g, const TrafficMatrix& tm,
                             int exact_max, int kl_restarts,
                             std::uint64_t seed) {
  const int n = g.num_nodes();
  CutResult best;
  best.method = "bisection";
  best.sparsity = kInf;
  if (n <= exact_max) {
    for_each_balanced(n, [&](const std::vector<std::uint8_t>& side) {
      const double s = cut_sparsity(g, tm, side);
      if (s < best.sparsity) {
        best.sparsity = s;
        best.side = side;
      }
    });
  } else {
    const BipartitionResult part = min_bisection(g, kl_restarts, seed);
    best.side = part.side;
    best.sparsity = cut_sparsity(g, tm, part.side);
  }
  return best;
}

double bisection_capacity(const Graph& g, int exact_max, int kl_restarts,
                          std::uint64_t seed) {
  const int n = g.num_nodes();
  if (n <= exact_max) {
    double best = kInf;
    for_each_balanced(n, [&](const std::vector<std::uint8_t>& side) {
      const double c = cut_capacity(g, side);
      if (c < best) best = c;
    });
    return best;
  }
  return min_bisection(g, kl_restarts, seed).cut_capacity;
}

}  // namespace tb::cuts
