#include "cuts/bisection.h"

#include <limits>
#include <utility>
#include <vector>

#include "cuts/exact_cuts.h"
#include "flow/cut_battery.h"
#include "flow/min_cut.h"
#include "graph/partition.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace tb::cuts {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Enumerate all balanced subsets containing node 0 (to halve the space)
/// and call visit(side).
template <typename Visit>
void for_each_balanced(int n, Visit&& visit) {
  const int half = n / 2;
  std::vector<int> members;  // nodes on side 1, node 0 always on side 0
  std::vector<std::uint8_t> side(static_cast<std::size_t>(n), 0);
  const auto rec = [&](auto&& self, int next) -> void {
    if (static_cast<int>(members.size()) == half) {
      visit(side);
      return;
    }
    if (n - next < half - static_cast<int>(members.size())) return;
    for (int v = next; v < n; ++v) {
      members.push_back(v);
      side[static_cast<std::size_t>(v)] = 1;
      self(self, v + 1);
      side[static_cast<std::size_t>(v)] = 0;
      members.pop_back();
    }
  };
  rec(rec, 1);
}

/// Move the highest-gain node (external - internal capacity; ties to the
/// lowest id, so the repair is deterministic) from the oversized side until
/// side 1 holds exactly n/2 nodes.
void rebalance(const Graph& g, std::vector<std::uint8_t>& side) {
  const int n = g.num_nodes();
  const int target = n / 2;
  int ones = 0;
  for (const std::uint8_t s : side) ones += s;
  while (ones != target) {
    const std::uint8_t from = ones > target ? 1 : 0;
    int best_v = -1;
    double best_gain = -kInf;
    for (int v = 0; v < n; ++v) {
      if (side[static_cast<std::size_t>(v)] != from) continue;
      double gain = 0.0;
      for (const int a : g.out_arcs(v)) {
        const bool same = side[static_cast<std::size_t>(g.arc_to(a))] == from;
        gain += same ? -g.arc_cap(a) : g.arc_cap(a);
      }
      if (gain > best_gain) {
        best_gain = gain;
        best_v = v;
      }
    }
    side[static_cast<std::size_t>(best_v)] =
        static_cast<std::uint8_t>(1 - from);
    ones += from ? -1 : 1;
  }
}

/// Sampled exact s-t min cuts rebalanced into bisections and KL-refined:
/// candidate partitions that random-restart KL tends to miss when the
/// bottleneck is far from every random start.
std::vector<std::vector<std::uint8_t>> st_seeded_bisections(
    const Graph& g, const TrafficMatrix& tm, int st_pairs, std::uint64_t seed,
    const flow::FlowOptions& flow, flow::MaxFlowStats& stats) {
  const std::vector<std::pair<int, int>> pairs = sample_demand_pairs(
      distinct_demand_pairs(tm), st_pairs, mix_seed(seed, 0x57C));
  std::vector<std::vector<std::uint8_t>> out(pairs.size());
  if (pairs.empty()) return out;
  const std::vector<flow::StCut> cuts = flow::CutBattery(g, flow).solve(pairs);
  for (const flow::StCut& cut : cuts) stats.add(cut.stats);
  // Each refinement writes only its own pair's slot, so the schedule
  // cannot reorder or mix candidates.
  const auto refine = [&](std::size_t i) {
    std::vector<std::uint8_t> side = cuts[i].source_side;
    rebalance(g, side);
    kernighan_lin_refine(g, side);
    out[i] = std::move(side);
  };
  const auto [parallel, pool] = flow::resolve_flow_pool(flow);
  if (parallel && out.size() > 1) {
    ThreadPool& p = pool != nullptr ? *pool : ThreadPool::shared();
    p.parallel_for(0, out.size(), refine);
  } else {
    for (std::size_t i = 0; i < out.size(); ++i) refine(i);
  }
  return out;
}

}  // namespace

CutResult bisection_sparsity(const Graph& g, const TrafficMatrix& tm,
                             int exact_max, int kl_restarts,
                             std::uint64_t seed, int st_pairs,
                             const flow::FlowOptions& flow) {
  const int n = g.num_nodes();
  CutResult best;
  best.method = "bisection";
  best.sparsity = kInf;
  if (n <= exact_max) {
    best.bound = CutBound::Exact;
    for_each_balanced(n, [&](const std::vector<std::uint8_t>& side) {
      const double s = cut_sparsity(g, tm, side);
      if (s < best.sparsity) {
        best.sparsity = s;
        best.side = side;
      }
    });
  } else {
    best.bound = CutBound::Upper;
    const BipartitionResult part = min_bisection(g, kl_restarts, seed);
    best.side = part.side;
    best.sparsity = cut_sparsity(g, tm, part.side);
    for (std::vector<std::uint8_t>& side : st_seeded_bisections(
             g, tm, st_pairs, seed, flow, best.flow_stats)) {
      const double s = cut_sparsity(g, tm, side);
      if (s < best.sparsity) {
        best.sparsity = s;
        best.side = std::move(side);
      }
    }
  }
  return best;
}

double bisection_capacity(const Graph& g, int exact_max, int kl_restarts,
                          std::uint64_t seed) {
  const int n = g.num_nodes();
  if (n <= exact_max) {
    double best = kInf;
    for_each_balanced(n, [&](const std::vector<std::uint8_t>& side) {
      const double c = cut_capacity(g, side);
      if (c < best) best = c;
    });
    return best;
  }
  return min_bisection(g, kl_restarts, seed).cut_capacity;
}

}  // namespace tb::cuts
