#include "cuts/exact_cuts.h"

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "flow/cut_battery.h"
#include "flow/min_cut.h"
#include "util/rng.h"

namespace tb::cuts {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

std::vector<std::pair<int, int>> distinct_demand_pairs(
    const TrafficMatrix& tm) {
  std::vector<std::pair<int, int>> pairs;
  pairs.reserve(tm.demands.size());
  for (const Demand& d : tm.demands) {
    if (d.src == d.dst || d.amount <= 0.0) continue;
    pairs.emplace_back(std::min(d.src, d.dst), std::max(d.src, d.dst));
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return pairs;
}

std::vector<std::pair<int, int>> sample_demand_pairs(
    std::vector<std::pair<int, int>> pairs, int max_pairs,
    std::uint64_t seed) {
  if (pairs.size() <= static_cast<std::size_t>(max_pairs)) return pairs;
  Rng rng(seed);
  std::vector<int> keep =
      rng.sample_without_replacement(static_cast<int>(pairs.size()), max_pairs);
  std::sort(keep.begin(), keep.end());
  std::vector<std::pair<int, int>> sampled;
  sampled.reserve(keep.size());
  for (const int i : keep) sampled.push_back(pairs[static_cast<std::size_t>(i)]);
  return sampled;
}

CutResult sparsest_cut_st_mincut(const Graph& g, const TrafficMatrix& tm,
                                 int max_pairs, std::uint64_t seed,
                                 const flow::FlowOptions& flow) {
  CutResult best;
  best.method = "st-mincut";
  best.sparsity = kInf;
  std::vector<std::pair<int, int>> pairs = distinct_demand_pairs(tm);
  const bool single_pair = pairs.size() == 1;
  pairs = sample_demand_pairs(std::move(pairs), max_pairs, seed);
  // Exact needs the single pair to have actually been cut (st_pairs = 0
  // legally skips the member, which must not certify anything).
  best.bound =
      single_pair && !pairs.empty() ? CutBound::Exact : CutBound::Upper;
  if (pairs.empty()) return best;
  const std::vector<flow::StCut> cuts = flow::CutBattery(g, flow).solve(pairs);
  for (const flow::StCut& cut : cuts) {
    best.flow_stats.add(cut.stats);
    // cut_sparsity wants 0/1 membership; orientation is immaterial (it
    // takes the min over both directions).
    const double sparsity = cut_sparsity(g, tm, cut.source_side);
    if (sparsity < best.sparsity) {
      best.sparsity = sparsity;
      best.side = cut.source_side;
    }
  }
  return best;
}

CutResult sparsest_cut_flow_lower_bound(const Graph& g,
                                        const TrafficMatrix& tm,
                                        const flow::FlowOptions& flow) {
  CutResult r;
  r.method = "flow-lower-bound";
  r.bound = CutBound::Lower;
  const double total = tm.total_demand();
  if (total <= 0.0 || g.num_nodes() < 2) {
    r.sparsity = kInf;
    return r;
  }
  const flow::StCut gmc = flow::global_min_cut(g, flow);
  r.sparsity = gmc.value / total;
  r.side = gmc.source_side;
  r.flow_stats = gmc.stats;
  return r;
}

}  // namespace tb::cuts
