// Bisection bandwidth (paper §II-B): the capacity of the worst-case cut
// dividing the network into two equal halves. NP-hard, so:
//  * n <= `exact_max`: exhaustive enumeration of balanced subsets,
//    minimizing TM-relative sparsity directly (CutBound::Exact);
//  * larger n: Kernighan-Lin capacity minimization over random restarts,
//    sharpened by exact s-t min cuts — up to `st_pairs` sampled demand
//    pairs are cut exactly (src/flow/), rebalanced into bisections, and
//    KL-refined as extra candidates — reported as sparsity against the TM
//    (the units the paper compares against throughput), CutBound::Upper.
#pragma once

#include <cstdint>

#include "cuts/sparsest_cut.h"
#include "flow/max_flow.h"
#include "graph/graph.h"
#include "tm/traffic_matrix.h"

namespace tb::cuts {

/// TM-relative bisection: min sparsity over balanced (n/2, n/2 +-1) cuts.
/// The st-seeded candidates run on the flow::CutBattery configured by
/// `flow` (rebalance + KL refinement parallelized per pair, merged in pair
/// order) — same result at any thread count.
CutResult bisection_sparsity(const Graph& g, const TrafficMatrix& tm,
                             int exact_max = 18, int kl_restarts = 8,
                             std::uint64_t seed = 1, int st_pairs = 4,
                             const flow::FlowOptions& flow = {});

/// Raw bisection bandwidth in capacity units (no TM): min capacity over
/// balanced cuts.
double bisection_capacity(const Graph& g, int exact_max = 18,
                          int kl_restarts = 8, std::uint64_t seed = 1);

}  // namespace tb::cuts
