#include "cuts/sparsest_cut.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "cuts/exact_cuts.h"
#include "graph/algorithms.h"
#include "graph/spectral.h"

namespace tb::cuts {

const char* to_string(CutBound b) {
  switch (b) {
    case CutBound::Lower:
      return "lower";
    case CutBound::Upper:
      return "upper";
    case CutBound::Exact:
      return "exact";
  }
  return "?";
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Track the best (lowest-sparsity) cut seen.
struct Best {
  double sparsity = kInf;
  std::vector<std::uint8_t> side;

  void offer(double s, const std::vector<std::uint8_t>& candidate) {
    if (s < sparsity) {
      sparsity = s;
      side = candidate;
    }
  }
};

CutResult finish(Best best, const char* method,
                 CutBound bound = CutBound::Upper) {
  CutResult r;
  r.sparsity = best.sparsity;
  r.side = std::move(best.side);
  r.method = method;
  r.bound = bound;
  return r;
}

}  // namespace

double cut_sparsity(const Graph& g, const TrafficMatrix& tm,
                    const std::vector<std::uint8_t>& side) {
  double cap_fwd = 0.0;   // arcs S -> S~
  double cap_rev = 0.0;
  for (int e = 0; e < g.num_edges(); ++e) {
    const std::uint8_t su = side[static_cast<std::size_t>(g.edge_u(e))];
    const std::uint8_t sv = side[static_cast<std::size_t>(g.edge_v(e))];
    if (su != sv) {
      cap_fwd += g.edge_cap(e);
      cap_rev += g.edge_cap(e);
    }
  }
  double dem_fwd = 0.0;  // demand S -> S~ (S = side 0)
  double dem_rev = 0.0;
  for (const Demand& d : tm.demands) {
    const std::uint8_t ss = side[static_cast<std::size_t>(d.src)];
    const std::uint8_t sd = side[static_cast<std::size_t>(d.dst)];
    if (ss == sd) continue;
    if (ss == 0) {
      dem_fwd += d.amount;
    } else {
      dem_rev += d.amount;
    }
  }
  double best = kInf;
  if (dem_fwd > 0.0) best = std::min(best, cap_fwd / dem_fwd);
  if (dem_rev > 0.0) best = std::min(best, cap_rev / dem_rev);
  return best;
}

CutResult sparsest_cut_brute_force(const Graph& g, const TrafficMatrix& tm,
                                   long max_cuts) {
  const int n = g.num_nodes();
  Best best;
  std::vector<std::uint8_t> side(static_cast<std::size_t>(n), 0);
  // Node n-1 pinned to side 1 to halve the space; subsets enumerated in
  // binary counting order over the remaining n-1 bits, capped at max_cuts.
  const long total =
      n - 1 >= 62 ? std::numeric_limits<long>::max()
                  : (1L << (n - 1)) - 1;  // exclude the empty set
  const long cuts = std::min(total, max_cuts);
  side[static_cast<std::size_t>(n - 1)] = 1;
  // mask never has bits at or above 63 set, so nodes beyond bit 62 stay on
  // side 0 (shifting a long by >= 64 would be undefined behavior).
  const int mask_bits = std::min(n - 1, 63);
  for (long mask = 1; mask <= cuts; ++mask) {
    for (int v = 0; v < mask_bits; ++v) {
      side[static_cast<std::size_t>(v)] =
          static_cast<std::uint8_t>((mask >> v) & 1);
    }
    best.offer(cut_sparsity(g, tm, side), side);
  }
  return finish(std::move(best), "brute-force",
                total <= max_cuts ? CutBound::Exact : CutBound::Upper);
}

CutResult sparsest_cut_one_node(const Graph& g, const TrafficMatrix& tm) {
  const int n = g.num_nodes();
  Best best;
  std::vector<std::uint8_t> side(static_cast<std::size_t>(n), 0);
  for (int v = 0; v < n; ++v) {
    side.assign(static_cast<std::size_t>(n), 0);
    side[static_cast<std::size_t>(v)] = 1;
    best.offer(cut_sparsity(g, tm, side), side);
  }
  return finish(std::move(best), "one-node");
}

CutResult sparsest_cut_two_node(const Graph& g, const TrafficMatrix& tm) {
  const int n = g.num_nodes();
  Best best;
  std::vector<std::uint8_t> side(static_cast<std::size_t>(n), 0);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      side.assign(static_cast<std::size_t>(n), 0);
      side[static_cast<std::size_t>(u)] = 1;
      side[static_cast<std::size_t>(v)] = 1;
      best.offer(cut_sparsity(g, tm, side), side);
    }
  }
  return finish(std::move(best), "two-node");
}

CutResult sparsest_cut_expanding(const Graph& g, const TrafficMatrix& tm) {
  const int n = g.num_nodes();
  Best best;
  std::vector<std::uint8_t> side(static_cast<std::size_t>(n), 0);
  for (int v = 0; v < n; ++v) {
    const std::vector<int> dist = bfs_distances(g, v);
    const int max_d = *std::max_element(dist.begin(), dist.end());
    for (int radius = 0; radius < max_d; ++radius) {
      for (int u = 0; u < n; ++u) {
        side[static_cast<std::size_t>(u)] =
            dist[static_cast<std::size_t>(u)] <= radius ? 1 : 0;
      }
      best.offer(cut_sparsity(g, tm, side), side);
    }
  }
  return finish(std::move(best), "expanding");
}

CutResult sparsest_cut_eigenvector(const Graph& g, const TrafficMatrix& tm) {
  const int n = g.num_nodes();
  const SpectralResult spec = fiedler_vector(g);
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&spec](int a, int b) {
    return spec.vector[static_cast<std::size_t>(a)] <
           spec.vector[static_cast<std::size_t>(b)];
  });
  Best best;
  std::vector<std::uint8_t> side(static_cast<std::size_t>(n), 0);
  for (int prefix = 1; prefix < n; ++prefix) {
    side[static_cast<std::size_t>(order[static_cast<std::size_t>(prefix - 1)])] = 1;
    best.offer(cut_sparsity(g, tm, side), side);
  }
  return finish(std::move(best), "eigenvector");
}

SparseCutSurvey best_sparse_cut(const Graph& g, const TrafficMatrix& tm,
                                long brute_force_cap, int st_pairs,
                                std::uint64_t seed,
                                const flow::FlowOptions& flow) {
  SparseCutSurvey survey;
  std::vector<CutResult> results;
  results.push_back(sparsest_cut_brute_force(g, tm, brute_force_cap));
  results.push_back(sparsest_cut_one_node(g, tm));
  results.push_back(sparsest_cut_two_node(g, tm));
  results.push_back(sparsest_cut_expanding(g, tm));
  results.push_back(sparsest_cut_eigenvector(g, tm));
  results.push_back(sparsest_cut_st_mincut(g, tm, st_pairs, seed, flow));

  survey.best.sparsity = kInf;
  for (const CutResult& r : results) {
    survey.per_method.emplace_back(r.method, r.sparsity);
    survey.flow_stats.add(r.flow_stats);
    if (r.sparsity < survey.best.sparsity) survey.best = r;
  }
  // An exact member certifies the true optimum; the winning value then IS
  // that optimum (nothing can come in lower), whichever method found it.
  bool certified = false;
  for (const CutResult& r : results) {
    if (r.bound == CutBound::Exact) certified = true;
    if (r.sparsity <= survey.best.sparsity * (1.0 + 1e-9)) {
      survey.winners.push_back(r.method);
    }
  }
  survey.best.method = survey.winners.empty() ? "none" : survey.winners.front();
  survey.best.bound = certified ? CutBound::Exact : CutBound::Upper;
  return survey;
}

}  // namespace tb::cuts
