// Sparse-cut estimation (paper §II-B, Appendix C).
//
// The sparsity of a cut S w.r.t. a TM is the ratio of the capacity crossing
// the cut to the demand crossing it; every cut upper-bounds throughput.
// Computing the sparsest cut is NP-hard, so the paper runs a battery of
// heuristics and calls the best value found the "sparse cut":
//   * capped brute force (first 10,000 subsets),
//   * one-node cuts,
//   * two-node cuts,
//   * expanding (BFS-ball) cuts,
//   * an eigenvector sweep over the normalized-Laplacian Fiedler vector.
// Table II reports which estimator finds the winning cut; Fig 3 plots the
// winner against LP throughput.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "flow/max_flow.h"
#include "graph/graph.h"
#include "tm/traffic_matrix.h"

namespace tb::cuts {

/// How a CutResult's value relates to the true optimum of its cut problem
/// (sparsest cut / bisection): `Exact` certifies equality (complete
/// enumeration, or a max-flow argument covering every candidate cut),
/// `Upper` certifies value >= optimum (every heuristic returns a genuine
/// cut, so its value still upper-bounds throughput), `Lower` certifies
/// value <= optimum (flow-duality bounds that are not themselves cuts).
enum class CutBound { Lower, Upper, Exact };

const char* to_string(CutBound b);

struct CutResult {
  double sparsity = 0.0;           ///< capacity / demand across the cut
  std::vector<std::uint8_t> side;  ///< 0/1 membership
  std::string method;
  CutBound bound = CutBound::Upper;
  /// Max-flow work the estimator spent (zero for pure heuristics), summed
  /// over its solves in index order — CSV telemetry, never result-bearing.
  flow::MaxFlowStats flow_stats;
};

/// Sparsity of one cut. Directed: min over both orientations of
/// (arc capacity crossing) / (demand crossing); infinity when no demand
/// crosses. `side` holds 0/1 per node.
double cut_sparsity(const Graph& g, const TrafficMatrix& tm,
                    const std::vector<std::uint8_t>& side);

/// Exhaustive enumeration capped at `max_cuts` subsets (Appendix C caps at
/// 10,000). Tagged CutBound::Exact when 2^(n-1) - 1 <= max_cuts (the
/// enumeration was complete), CutBound::Upper otherwise.
CutResult sparsest_cut_brute_force(const Graph& g, const TrafficMatrix& tm,
                                   long max_cuts = 10'000);

CutResult sparsest_cut_one_node(const Graph& g, const TrafficMatrix& tm);
CutResult sparsest_cut_two_node(const Graph& g, const TrafficMatrix& tm);

/// BFS balls of every radius around every node.
CutResult sparsest_cut_expanding(const Graph& g, const TrafficMatrix& tm);

/// Sweep cuts over the Fiedler-vector node ordering.
CutResult sparsest_cut_eigenvector(const Graph& g, const TrafficMatrix& tm);

struct SparseCutSurvey {
  CutResult best;
  std::vector<std::pair<std::string, double>> per_method;  ///< method -> value
  std::vector<std::string> winners;  ///< methods matching the best value
  flow::MaxFlowStats flow_stats;     ///< max-flow work across all members
};

/// Run the full estimator battery — the Appendix C heuristics plus the
/// exact sampled s-t min cuts of exact_cuts.h ("st-mincut", `st_pairs`
/// terminal pairs drawn from `seed`) — and report the best cut. The best
/// result is tagged CutBound::Exact when any exact member certified the
/// optimum (complete brute force, or a single-pair TM). `flow` configures
/// the exact members' cut battery / solver threading; it never changes the
/// survey's results, only how fast the flow solves run.
SparseCutSurvey best_sparse_cut(const Graph& g, const TrafficMatrix& tm,
                                long brute_force_cap = 10'000,
                                int st_pairs = 8, std::uint64_t seed = 1,
                                const flow::FlowOptions& flow = {});

}  // namespace tb::cuts
