// Exact max-flow/min-cut powered cut estimators (src/flow/). Unlike the
// Appendix C heuristics, these carry certificates: every returned cut is a
// real cut (so its sparsity upper-bounds throughput), the single-pair case
// is provably the sparsest cut, and the flow lower bound brackets the
// optimum from below, turning the heuristic battery's answer into an
// interval instead of a point estimate.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "cuts/sparsest_cut.h"
#include "flow/max_flow.h"
#include "graph/graph.h"
#include "tm/traffic_matrix.h"

namespace tb::cuts {

/// Distinct unordered (src, dst) pairs with positive demand, ascending.
/// Shared by every terminal-pair sampler so they agree on identity and
/// order (part of the determinism contract).
std::vector<std::pair<int, int>> distinct_demand_pairs(
    const TrafficMatrix& tm);

/// At most `max_pairs` of `pairs`, drawn without replacement from `seed`;
/// ascending order is preserved. Identity when `pairs` already fits.
std::vector<std::pair<int, int>> sample_demand_pairs(
    std::vector<std::pair<int, int>> pairs, int max_pairs,
    std::uint64_t seed);

/// Exact s-t min cuts over the TM's demand pairs: all distinct unordered
/// pairs when there are at most `max_pairs`, otherwise a seeded sample.
/// Each min-cut partition is evaluated as a sparsity cut and the best is
/// returned (method "st-mincut"). Tagged CutBound::Exact when the TM's
/// demands connect a single unordered pair — every cut with crossing
/// demand then separates that pair and carries the same demand, so the
/// min cut minimizes sparsity — and CutBound::Upper otherwise.
/// The pairs are solved concurrently on a flow::CutBattery configured by
/// `flow`, with the sparsity evaluation and best-cut reduction in pair
/// order — bitwise identical to the serial loop at any thread count.
CutResult sparsest_cut_st_mincut(const Graph& g, const TrafficMatrix& tm,
                                 int max_pairs = 8, std::uint64_t seed = 1,
                                 const flow::FlowOptions& flow = {});

/// Certified lower bound on the sparsest-cut value: every cut has capacity
/// >= the global min cut and crossing demand <= the total demand, so
/// sparsest >= global_min_cut / total_demand. Tagged CutBound::Lower;
/// `side` holds the global min cut (which attains the capacity, not
/// necessarily the bound). Infinite on an empty TM.
CutResult sparsest_cut_flow_lower_bound(const Graph& g,
                                        const TrafficMatrix& tm,
                                        const flow::FlowOptions& flow = {});

}  // namespace tb::cuts
