#include "api/topobench.h"

#include <istream>
#include <stdexcept>
#include <utility>

#include "core/registry.h"
#include "store/result_store.h"
#include "topo/io.h"
#include "util/env.h"

namespace tb::api {
namespace {

struct FamilyEntry {
  const char* name;
  Family family;
};

/// Sorted; the CLI's historical lowercase spellings.
constexpr FamilyEntry kFamilies[] = {
    {"bcube", Family::BCube},         {"dcell", Family::DCell},
    {"dragonfly", Family::Dragonfly}, {"fattree", Family::FatTree},
    {"fbf", Family::FlattenedBF},     {"hypercube", Family::Hypercube},
    {"hyperx", Family::HyperX},       {"jellyfish", Family::Jellyfish},
    {"longhop", Family::LongHop},     {"slimfly", Family::SlimFly},
};

Family parse_family(const std::string& name) {
  for (const FamilyEntry& e : kFamilies) {
    if (name == e.name) return e.family;
  }
  std::string families;
  for (const FamilyEntry& e : kFamilies) {
    if (!families.empty()) families += ' ';
    families += e.name;
  }
  throw std::invalid_argument("unknown topology family \"" + name +
                              "\" (known: " + families + ")");
}

mcf::SolverKind to_kind(Solver s) {
  switch (s) {
    case Solver::ExactLP:
      return mcf::SolverKind::ExactLP;
    case Solver::GargKonemann:
      return mcf::SolverKind::GargKonemann;
    case Solver::Auto:
      break;
  }
  return mcf::SolverKind::Auto;
}

/// Parse "<head>(<param>=<number>)" and return the number; nullopt when
/// `spec` does not have that shape for this head/param.
std::optional<double> parse_paren_param(const std::string& spec,
                                        const std::string& head,
                                        const std::string& param) {
  const std::string prefix = head + "(" + param + "=";
  if (spec.size() <= prefix.size() + 1 || spec.compare(0, prefix.size(), prefix) != 0 ||
      spec.back() != ')') {
    return std::nullopt;
  }
  const std::string body =
      spec.substr(prefix.size(), spec.size() - prefix.size() - 1);
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(body, &pos);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (pos != body.size()) return std::nullopt;
  return v;
}

exp::Sweep sweep_from(std::vector<Topology> topologies,
                      std::vector<Traffic> tms, Solver solver, double epsilon,
                      int trials, bool cut_bounds,
                      std::vector<Scenario> scenarios, bool warm_start,
                      std::uint64_t seed) {
  exp::Sweep sweep;
  sweep.topologies = std::move(topologies);
  sweep.tms = std::move(tms);
  sweep.solve.kind = to_kind(solver);
  sweep.solve.epsilon = epsilon;
  sweep.trials = trials;
  sweep.cut_bounds = cut_bounds;
  sweep.scenarios = std::move(scenarios);
  sweep.warm_start = warm_start;
  sweep.base_seed = seed;
  return sweep;
}

}  // namespace

const char* to_string(Source s) {
  switch (s) {
    case Source::Solved:
      return "solved";
    case Source::Memory:
      return "memory";
    case Source::Store:
      return "store";
  }
  return "?";
}

std::vector<std::string> family_names() {
  std::vector<std::string> names;
  names.reserve(std::size(kFamilies));
  for (const FamilyEntry& e : kFamilies) names.emplace_back(e.name);
  return names;
}

Topology build_topology(const std::string& family, int target_servers,
                        std::uint64_t seed) {
  const Family f = parse_family(family);  // reject bad input eagerly
  if (target_servers <= 0) {
    throw std::invalid_argument("build_topology: target_servers must be > 0");
  }
  Topology t;
  t.label = family + "(servers=" + std::to_string(target_servers) +
            ",seed=" + std::to_string(seed) + ")";
  // Lazy: a query answered from cache/store never builds the instance.
  // The label is a pure function of (family, target, seed) and
  // family_representative is deterministic in them, so the label-identity
  // contract holds.
  t.build = [f, target_servers, seed] {
    return std::make_shared<const Network>(
        family_representative(f, target_servers, seed));
  };
  return t;
}

Topology custom_topology(Network net) {
  return exp::instance_spec(std::move(net));
}

Topology load_topology(std::istream& in, const std::string& name) {
  Network net = read_edge_list(in, name);
  net.validate();
  return exp::instance_spec(std::move(net));
}

void save_topology(std::ostream& os, const Topology& t) {
  write_edge_list(os, *t.build());
}

Traffic build_tm(const std::string& spec) {
  if (spec == "a2a") return exp::a2a_tm();
  if (spec == "lm") return exp::longest_matching_tm();
  if (spec == "kodialam") return exp::kodialam_tm_spec();
  if (spec.size() > 4 && spec.compare(0, 3, "rm(") == 0 && spec.back() == ')') {
    const std::string body = spec.substr(3, spec.size() - 4);
    std::size_t pos = 0;
    long k = 0;
    try {
      k = std::stol(body, &pos);
    } catch (const std::exception&) {
      pos = 0;
    }
    if (pos != body.size() || k < 1 || k > 1000) {
      throw std::invalid_argument(
          "build_tm: rm(<k>) needs an integer k in [1, 1000], got \"" + spec +
          "\"");
    }
    return exp::random_matching_tm(static_cast<int>(k));
  }
  throw std::invalid_argument(
      "build_tm: unknown TM spec \"" + spec +
      "\" (known: a2a, rm(<k>), lm, kodialam)");
}

Scenario build_scenario(const std::string& spec) {
  if (const std::optional<double> f = parse_paren_param(spec, "fail", "f")) {
    if (*f < 0.0 || *f > 1.0) {
      throw std::invalid_argument(
          "build_scenario: fail(f) needs f in [0, 1], got \"" + spec + "\"");
    }
    return exp::random_failure_scenarios({*f}).front();
  }
  if (const std::optional<double> c =
          parse_paren_param(spec, "degrade", "c")) {
    if (*c < 0.0 || *c > 1.0) {
      throw std::invalid_argument(
          "build_scenario: degrade(c) needs c in [0, 1], got \"" + spec +
          "\"");
    }
    return exp::degrade_scenario(*c);
  }
  if (const std::optional<double> f =
          parse_paren_param(spec, "groups", "f")) {
    if (*f < 0.0 || *f > 1.0) {
      throw std::invalid_argument(
          "build_scenario: groups(f) needs f in [0, 1], got \"" + spec +
          "\"");
    }
    return exp::correlated_group_scenarios({*f}).front();
  }
  if (const std::optional<double> x = parse_paren_param(spec, "surge", "x")) {
    if (!(*x > 0.0)) {
      throw std::invalid_argument(
          "build_scenario: surge(x) needs x > 0, got \"" + spec + "\"");
    }
    return exp::surge_scenario(*x);
  }
  throw std::invalid_argument(
      "build_scenario: unknown scenario spec \"" + spec +
      "\" (known: fail(f=<frac>), degrade(c=<factor>), groups(f=<frac>), "
      "surge(x=<scale>))");
}

ServiceConfig ServiceConfig::from_env() {
  ServiceConfig cfg;
  if (const std::optional<std::string> path = env::raw("TOPOBENCH_STORE")) {
    cfg.store_path = *path;
  }
  cfg.store_read_only = env::flag_knob("TOPOBENCH_STORE_RO", false);
  cfg.solver_threads = env::int_knob("TOPOBENCH_SOLVER_THREADS", 0, 0, 512);
  return cfg;
}

Service::Service(ServiceConfig cfg)
    : cfg_(std::move(cfg)), runner_(cfg_.parallel) {
  run_opts_.solver_threads = cfg_.solver_threads;
  if (!cfg_.store_path.empty()) {
    run_opts_.store = std::make_shared<store::ResultStore>(
        cfg_.store_path, cfg_.store_read_only
                             ? store::ResultStore::Mode::ReadOnly
                             : store::ResultStore::Mode::ReadWrite);
  }
}

SweepResult Service::run_locked(const exp::Sweep& sweep) {
  const exp::CacheStats before = runner_.cache_stats();
  SweepResult out;
  out.results = runner_.run(sweep, run_opts_);
  const exp::CacheStats after = runner_.cache_stats();
  out.stats.memory_hits = after.memory_hits - before.memory_hits;
  out.stats.disk_hits = after.disk_hits - before.disk_hits;
  out.stats.solved = after.misses - before.misses;
  ++queries_;
  cells_ += out.results.size();
  return out;
}

QueryResult Service::query(const Query& q) {
  std::vector<Scenario> scenarios;
  if (q.scenario) scenarios.push_back(*q.scenario);
  const exp::Sweep sweep =
      sweep_from({q.topology}, {q.tm}, q.solver, q.epsilon, q.trials,
                 q.cut_bounds, std::move(scenarios), /*warm_start=*/false,
                 q.seed);
  const std::lock_guard<std::mutex> lock(mutex_);
  const SweepResult batch = run_locked(sweep);
  QueryResult out;
  out.record = batch.results.rows().front();
  out.source = batch.stats.solved > 0
                   ? Source::Solved
                   : (batch.stats.disk_hits > 0 ? Source::Store
                                                : Source::Memory);
  return out;
}

SweepResult Service::sweep(const SweepQuery& q) {
  const exp::Sweep sweep =
      sweep_from(q.topologies, q.tms, q.solver, q.epsilon, q.trials,
                 q.cut_bounds, q.scenarios, q.warm_start, q.seed);
  const std::lock_guard<std::mutex> lock(mutex_);
  return run_locked(sweep);
}

ServiceStats Service::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  ServiceStats s;
  s.queries = queries_;
  s.cells = cells_;
  const exp::CacheStats& c = runner_.cache_stats();
  s.memory_hits = c.memory_hits;
  s.disk_hits = c.disk_hits;
  s.misses = c.misses;
  s.store_entries = run_opts_.store ? run_opts_.store->size() : 0;
  return s;
}

}  // namespace tb::api
