// tb::api — the single stable public façade of topobench.
//
// External consumers (the topobench_server daemon, the examples, scripted
// users) include ONLY this header; everything under src/ other than this
// directory is internal and may change freely between versions. The façade
// re-exposes the few internal vocabulary types that are already stable
// public contracts (the uniform CellResult record with its CSV codec, the
// ResultSet container, the TopoSpec/TmSpec/ScenarioPoint identities) under
// api names and wraps everything else behind:
//
//   build_topology / custom_topology / load_topology / save_topology
//   build_tm / build_scenario         string-addressed factories
//   Query / QueryResult               one cell: topology x TM (x scenario)
//   SweepQuery / SweepResult          a grid, evaluated as one batch
//   Service                           Runner + on-disk result store
//   ServiceConfig::from_env()         the one environment entry point
//
// Versioning: kApiVersion is the semantic version of this header's
// surface; kProtocolVersion is the topobench_server wire-protocol version
// (see tools/topobench_server.cpp and docs/ARCHITECTURE.md); the store
// file format version lives in store/result_store.h. The server's `hello`
// response reports all three so clients can refuse mismatches up front.
//
// Determinism: everything here inherits the repo's bitwise-determinism
// contract — a QueryResult is a pure function of (query, seed), repeats
// are answered from the in-process cache or the on-disk store with the
// exact bytes of the original solve, and Service::stats() tells the three
// tiers apart.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "exp/results.h"
#include "exp/runner.h"
#include "exp/sweep.h"

namespace tb::api {

/// Semantic version of the tb::api surface.
inline constexpr const char* kApiVersion = "1.0.0";

/// topobench_server line-delimited JSON protocol version.
inline constexpr int kProtocolVersion = 1;

// --- vocabulary ----------------------------------------------------------
// The spec types are the stable identity contracts of the system (labels
// are trusted as identities; see exp/sweep.h) and are re-exported as-is.

using Topology = exp::TopoSpec;      ///< label + lazy deterministic builder
using Traffic = exp::TmSpec;         ///< label + TM builder
using Scenario = exp::ScenarioPoint; ///< label + failure/degradation spec
using Result = exp::CellResult;      ///< the uniform result record
using ResultSet = exp::ResultSet;    ///< ordered records, CSV/JSON emission

/// Solver selection (mirrors the internal SolverKind without exposing it).
enum class Solver { Auto, ExactLP, GargKonemann };

/// Where an answer came from. Solved = a fresh evaluation ran; Memory =
/// the Service's in-process cache; Store = the on-disk result store.
enum class Source { Solved, Memory, Store };

const char* to_string(Source s);

// --- topology / TM / scenario factories ----------------------------------

/// The recognized family spellings for build_topology ("bcube", "dcell",
/// "dragonfly", "fattree", "fbf", "hypercube", "hyperx", "jellyfish",
/// "longhop", "slimfly"), in deterministic (sorted) order.
std::vector<std::string> family_names();

/// A registry-backed topology: the ladder instance of `family` nearest
/// `target_servers` (randomized constructions draw from `seed`). The
/// instance is built lazily — a query answered from cache or store never
/// pays construction. The label is
/// "<family>(servers=<target_servers>,seed=<seed>)", a pure function of
/// the inputs, satisfying the label-identity contract. Throws
/// std::invalid_argument on an unknown family or non-positive size.
Topology build_topology(const std::string& family, int target_servers,
                        std::uint64_t seed = 1);

/// Wrap a caller-constructed Network (label = the network's own name).
Topology custom_topology(Network net);

/// Parse the edge-list format (see topo/io.h docs) from `in`; the label is
/// `name`. Throws std::runtime_error on malformed input.
Topology load_topology(std::istream& in, const std::string& name);

/// Serialize `t`'s instance in the edge-list format (builds the instance).
void save_topology(std::ostream& os, const Topology& t);

/// Traffic-matrix factory addressed by spec string:
///   "a2a"      all-to-all                     (label "A2A")
///   "rm(<k>)"  k random server matchings      (label "RM(<k>)")
///   "lm"       longest matching, near-worst   (label "LM")
///   "kodialam" LP-based near-worst-case       (label "Kodialam")
/// Throws std::invalid_argument on anything else.
Traffic build_tm(const std::string& spec);

/// Failure-scenario factory addressed by spec string:
///   "fail(f=<frac>)"    fail round(frac * edges) random links
///   "degrade(c=<fac>)"  scale every capacity to fac of nominal
///   "groups(f=<frac>)"  fail round(frac * groups) random shared-risk groups
///   "surge(x=<scale>)"  scale every demand by x (traffic surge)
/// The returned label equals the canonical spec string. Throws
/// std::invalid_argument on anything else or out-of-range parameters.
Scenario build_scenario(const std::string& spec);

// --- queries -------------------------------------------------------------

/// One throughput question. With `scenario` set the answer is the degraded
/// throughput of that failure scenario (requires trials == 0 and
/// cut_bounds == false); with trials > 0 the answer is relative mode
/// (throughput vs `trials` same-equipment random graphs). The pair
/// (query, seed) fully determines the result bytes.
struct Query {
  Topology topology;
  Traffic tm;
  Solver solver = Solver::Auto;
  double epsilon = 0.03;     ///< GK certified-gap target
  int trials = 0;            ///< >0: relative mode
  bool cut_bounds = false;   ///< also compute certified cut upper bounds
  std::optional<Scenario> scenario;
  std::uint64_t seed = 1;
};

struct QueryResult {
  Result record;                    ///< the uniform result row
  Source source = Source::Solved;   ///< which tier answered
};

/// A grid of questions evaluated as one batch: every topology crossed with
/// every TM (and, when scenarios is non-empty, every scenario — batched
/// through ScenarioFleet so a topology's scenarios share one baseline
/// solve). Exactly exp::Sweep semantics behind the façade.
struct SweepQuery {
  std::vector<Topology> topologies;
  std::vector<Traffic> tms;
  Solver solver = Solver::Auto;
  double epsilon = 0.03;
  int trials = 0;
  bool cut_bounds = false;
  std::vector<Scenario> scenarios;
  bool warm_start = false;
  std::uint64_t seed = 1;
};

/// Per-batch tier accounting (cells, not queries).
struct BatchStats {
  std::size_t memory_hits = 0;
  std::size_t disk_hits = 0;
  std::size_t solved = 0;
};

struct SweepResult {
  ResultSet results;   ///< cell order; to_csv() is the canonical byte form
  BatchStats stats;
};

// --- service -------------------------------------------------------------

/// Service construction options — the one consolidated configuration path
/// (programmatic fields here; environment only via from_env()).
struct ServiceConfig {
  /// On-disk result store path; empty = in-process cache only.
  std::string store_path;
  /// Open the store read-only (answer from it, never write). Default:
  /// read-write (created if absent; single-writer flock enforced).
  bool store_read_only = false;
  /// Intra-solve worker threads when a query leaves the choice open
  /// (0 = shared pool; never changes result bytes).
  int solver_threads = 0;
  /// false pins every cell to the calling thread (results are identical
  /// either way by the determinism contract; this is a scheduling knob).
  bool parallel = true;

  /// The one environment loader (strict — malformed values throw
  /// std::invalid_argument; see util/env.h):
  ///   TOPOBENCH_STORE=<path>      -> store_path
  ///   TOPOBENCH_STORE_RO=0|1      -> store_read_only
  ///   TOPOBENCH_SOLVER_THREADS=N  -> solver_threads (in [0, 512])
  /// (TOPOBENCH_THREADS sizes the shared pool itself; TOPOBENCH_SHARD and
  /// TOPOBENCH_CSV belong to the batch runner's RunOptions/emission paths.)
  static ServiceConfig from_env();
};

/// Cumulative Service counters. hits/misses count cells; queries counts
/// query()/sweep() calls answered.
struct ServiceStats {
  std::size_t queries = 0;
  std::size_t cells = 0;
  std::size_t memory_hits = 0;
  std::size_t disk_hits = 0;
  std::size_t misses = 0;        ///< cells actually solved
  std::size_t store_entries = 0; ///< records in the attached store (0 if none)
};

/// The long-lived query engine: an exp::Runner (in-process cache, shared
/// thread-pool execution) over an optional store::ResultStore tier.
/// Thread-safe: calls are serialized on an internal mutex; each batch
/// still fans its cells out across the shared pool internally. Construction
/// throws std::runtime_error when the store cannot be opened (missing
/// read-only file, second writer, corruption).
class Service {
 public:
  explicit Service(ServiceConfig cfg = ServiceConfig{});

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Answer one Query. Repeats of an identical query (same seed) are
  /// answered from cache/store with the original solve's exact bytes.
  QueryResult query(const Query& q);

  /// Evaluate a SweepQuery as one batch in cell order.
  SweepResult sweep(const SweepQuery& q);

  ServiceStats stats() const;
  const ServiceConfig& config() const noexcept { return cfg_; }

 private:
  SweepResult run_locked(const exp::Sweep& sweep);

  ServiceConfig cfg_;
  mutable std::mutex mutex_;
  exp::Runner runner_;
  exp::RunOptions run_opts_;   ///< solver_threads + shared store tier
  std::size_t queries_ = 0;
  std::size_t cells_ = 0;
};

}  // namespace tb::api
