#include "topo/butterfly.h"

#include <stdexcept>
#include <string>

namespace tb {

Network make_butterfly(int k, int stages) {
  if (k < 2) throw std::invalid_argument("make_butterfly: k >= 2");
  if (stages < 2) throw std::invalid_argument("make_butterfly: stages >= 2");
  long per_stage = 1;
  for (int d = 0; d < stages - 1; ++d) {
    per_stage *= k;
    if (per_stage > 500'000) {
      throw std::invalid_argument("make_butterfly: too large");
    }
  }
  const long nodes = per_stage * stages;

  Network net;
  net.name = "Butterfly(k=" + std::to_string(k) + ",n=" +
             std::to_string(stages) + ")";
  net.graph = Graph(static_cast<int>(nodes));

  // Stage s switch r connects to stage s+1 switches whose address differs
  // from r only in digit s (base k).
  long stride = 1;
  for (int s = 0; s + 1 < stages; ++s) {
    for (long r = 0; r < per_stage; ++r) {
      const int digit = static_cast<int>((r / stride) % k);
      for (int other = 0; other < k; ++other) {
        const long peer = r + static_cast<long>(other - digit) * stride;
        net.graph.add_edge(static_cast<int>(s * per_stage + r),
                           static_cast<int>((s + 1) * per_stage + peer));
      }
    }
    stride *= k;
  }
  net.graph.finalize();

  net.servers.assign(static_cast<std::size_t>(nodes), 0);
  for (long r = 0; r < per_stage; ++r) {
    net.servers[static_cast<std::size_t>(r)] = k;  // inputs
    net.servers[static_cast<std::size_t>((stages - 1) * per_stage + r)] = k;
  }
  return net;
}

}  // namespace tb
