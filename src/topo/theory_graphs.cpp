#include "topo/theory_graphs.h"

#include <set>
#include <stdexcept>
#include <string>
#include <utility>

#include "topo/jellyfish.h"
#include "util/rng.h"

namespace tb {

Network make_clustered_random(int n_per_cluster, int alpha, int beta,
                              std::uint64_t seed) {
  if (n_per_cluster < 2 || alpha < 1 || beta < 1) {
    throw std::invalid_argument("make_clustered_random: bad parameters");
  }
  if ((static_cast<long>(n_per_cluster) * alpha) % 2 != 0) {
    throw std::invalid_argument("make_clustered_random: n*alpha must be even");
  }

  Rng rng(seed);
  // Within-cluster: random alpha-regular graph per cluster (reusing the
  // degree-sequence sampler), then a random beta-regular bipartite graph
  // across clusters via repeated perfect matchings on shuffled columns.
  const Graph c0 = random_graph_with_degrees(
      std::vector<int>(static_cast<std::size_t>(n_per_cluster), alpha),
      rng());
  const Graph c1 = random_graph_with_degrees(
      std::vector<int>(static_cast<std::size_t>(n_per_cluster), alpha),
      rng());

  Network net;
  net.name = "ClusteredRandom(n=" + std::to_string(2 * n_per_cluster) +
             ",a=" + std::to_string(alpha) + ",b=" + std::to_string(beta) + ")";
  net.graph = Graph(2 * n_per_cluster);
  for (int e = 0; e < c0.num_edges(); ++e) {
    net.graph.add_edge(c0.edge_u(e), c0.edge_v(e));
  }
  for (int e = 0; e < c1.num_edges(); ++e) {
    net.graph.add_edge(n_per_cluster + c1.edge_u(e),
                       n_per_cluster + c1.edge_v(e));
  }
  // beta cross matchings; a shuffle is re-drawn when it collides with a
  // previously used cross edge (rare parallels tolerated after 64 tries).
  std::set<std::pair<int, int>> cross;
  for (int b = 0; b < beta; ++b) {
    for (int attempt = 0;; ++attempt) {
      const std::vector<int> perm = rng.permutation(n_per_cluster);
      bool clash = false;
      for (int i = 0; i < n_per_cluster && !clash; ++i) {
        clash = cross.contains({i, perm[static_cast<std::size_t>(i)]});
      }
      if (!clash || attempt >= 64) {
        for (int i = 0; i < n_per_cluster; ++i) {
          const int j = perm[static_cast<std::size_t>(i)];
          cross.insert({i, j});
          net.graph.add_edge(i, n_per_cluster + j);
        }
        break;
      }
    }
  }
  net.graph.finalize();
  attach_servers_uniform(net, 1);
  return net;
}

Network make_subdivided_expander(int base_nodes, int d, int path_len,
                                 std::uint64_t seed) {
  if (base_nodes < 3 || d < 1 || path_len < 1) {
    throw std::invalid_argument("make_subdivided_expander: bad parameters");
  }
  const Graph base = random_graph_with_degrees(
      std::vector<int>(static_cast<std::size_t>(base_nodes), 2 * d), seed);

  Network net;
  net.name = "SubdividedExpander(N=" + std::to_string(base_nodes) + ",d=" +
             std::to_string(d) + ",p=" + std::to_string(path_len) + ")";
  const int extra_per_edge = path_len - 1;
  net.graph = Graph(base_nodes + base.num_edges() * extra_per_edge);
  int next_node = base_nodes;
  for (int e = 0; e < base.num_edges(); ++e) {
    int prev = base.edge_u(e);
    for (int h = 0; h < extra_per_edge; ++h) {
      net.graph.add_edge(prev, next_node);
      prev = next_node++;
    }
    net.graph.add_edge(prev, base.edge_v(e));
  }
  net.graph.finalize();
  attach_servers_uniform(net, 1);
  return net;
}

}  // namespace tb
