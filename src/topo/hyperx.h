// HyperX (Ahn et al., SC'09): an L-dimensional lattice of S_1 x ... x S_L
// routers with full intra-dimension connectivity, K-wide trunked links and
// T terminals per router. A regular HyperX has equal S per dimension.
//
// The paper evaluates the *least-cost* HyperX found for a given switch
// radix, server count and target bisection (its irregular scaling in Figs
// 5-7 comes from this search). We reproduce the regular-HyperX searcher:
// minimize router count subject to
//     radix:     L*(S-1)*K + T <= R
//     servers:   T * S^L >= N
//     bisection: K*S / (2*T) >= beta
// as derived in the HyperX paper for regular instances.
#pragma once

#include <optional>
#include <vector>

#include "topo/network.h"

namespace tb {

struct HyperXParams {
  int L = 1;       ///< dimensions
  int S = 2;       ///< routers per dimension
  int K = 1;       ///< link trunking factor (capacity multiplier)
  int T = 1;       ///< terminals (servers) per router
  long routers() const;
  long servers() const { return T * routers(); }
  /// Normalized worst-case bisection per server: K*S/(2T).
  double bisection() const { return static_cast<double>(K) * S / (2.0 * T); }
  /// Ports consumed per router.
  int radix_used() const { return L * (S - 1) * K + T; }
};

/// Build a regular HyperX network (capacity K on every lattice edge).
Network make_hyperx(const HyperXParams& params);

/// Least-router-count regular HyperX meeting the constraints, or nullopt.
/// Searches L in [1, max_dims], S in [2, radix], K and T derived.
std::optional<HyperXParams> search_hyperx(int radix, long min_servers,
                                          double min_bisection,
                                          int max_dims = 4);

}  // namespace tb
