// Xpander (Valadarsky, Dinitz, Schapira, HotNets'15): a deterministic
// expander-based data-center topology the paper cites as confirming its
// expanders-win observation. Construction: lift a complete graph K_{d+1}
// by `lift` copies — each edge (u, v) of K_{d+1} becomes a random perfect
// matching between u's and v's copy-blocks. The result is d-regular on
// (d+1)*lift nodes with near-Ramanujan expansion, but structured into
// equal-size blocks (unlike Jellyfish).
#pragma once

#include <cstdint>

#include "topo/network.h"

namespace tb {

/// degree d >= 3; lift >= 2: nodes = (d+1) * lift.
Network make_xpander(int degree, int lift, int servers_per_switch,
                     std::uint64_t seed);

}  // namespace tb
