// Jellyfish (Singla et al., NSDI'12): switches wired as a uniform-random
// regular graph. Also provides the paper's normalizer: a uniform-random
// *same-equipment* graph matching an arbitrary per-node degree sequence
// (§IV: "build a random graph with precisely the same equipment").
//
// Construction: configuration-model stub pairing, then repair of self-loops
// / parallel edges / disconnection by random double-edge swaps (the
// standard technique for sampling simple connected graphs with a fixed
// degree sequence).
#pragma once

#include <cstdint>
#include <vector>

#include "topo/network.h"

namespace tb {

/// Random r-regular graph on n switches, `servers_per_switch` servers each.
/// Requires n*r even, r < n.
Network make_jellyfish(int n_switches, int degree, int servers_per_switch,
                       std::uint64_t seed);

/// Uniform-ish random simple connected graph with the given degree sequence.
/// Throws if the sequence is not realizable as a connected simple graph.
Graph random_graph_with_degrees(const std::vector<int>& degrees,
                                std::uint64_t seed);

/// Same-equipment random network: degree sequence and per-node server counts
/// copied from `reference` (paper's relative-throughput denominator).
Network make_same_equipment_random(const Network& reference,
                                   std::uint64_t seed);

}  // namespace tb
