// Binary hypercube (Bhuyan & Agrawal): 2^dim switches, switch u and v
// adjacent iff their labels differ in exactly one bit. Degree = dim,
// diameter = dim. Servers attach uniformly (paper default: 1 per switch).
#pragma once

#include "topo/network.h"

namespace tb {

Network make_hypercube(int dim, int servers_per_switch = 1);

}  // namespace tb
