#include "topo/hypercube.h"

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace tb {

Network make_hypercube(int dim, int servers_per_switch) {
  if (dim < 1 || dim > 20) {
    throw std::invalid_argument("make_hypercube: dim must be in [1, 20]");
  }
  const int n = 1 << dim;
  Network net;
  net.name = "Hypercube(d=" + std::to_string(dim) + ")";
  net.graph = Graph(n);
  // Edge ids per flipped bit: a hypercube's dimension plane (all links that
  // cross bit b) is its shared-risk unit. The u-major edge order interleaves
  // dimensions, so collect ids as edges are added.
  std::vector<std::vector<int>> dim_edges(static_cast<std::size_t>(dim));
  int edge_id = 0;
  for (int u = 0; u < n; ++u) {
    for (int b = 0; b < dim; ++b) {
      const int v = u ^ (1 << b);
      if (u < v) {
        net.graph.add_edge(u, v);
        dim_edges[static_cast<std::size_t>(b)].push_back(edge_id);
        ++edge_id;
      }
    }
  }
  net.graph.finalize();
  for (int b = 0; b < dim; ++b) {
    add_risk_group(net, "dim(" + std::to_string(b) + ")",
                   std::move(dim_edges[static_cast<std::size_t>(b)]));
  }
  attach_servers_uniform(net, servers_per_switch);
  return net;
}

}  // namespace tb
