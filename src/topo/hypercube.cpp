#include "topo/hypercube.h"

#include <stdexcept>
#include <string>

namespace tb {

Network make_hypercube(int dim, int servers_per_switch) {
  if (dim < 1 || dim > 20) {
    throw std::invalid_argument("make_hypercube: dim must be in [1, 20]");
  }
  const int n = 1 << dim;
  Network net;
  net.name = "Hypercube(d=" + std::to_string(dim) + ")";
  net.graph = Graph(n);
  for (int u = 0; u < n; ++u) {
    for (int b = 0; b < dim; ++b) {
      const int v = u ^ (1 << b);
      if (u < v) net.graph.add_edge(u, v);
    }
  }
  net.graph.finalize();
  attach_servers_uniform(net, servers_per_switch);
  return net;
}

}  // namespace tb
