// Graph families from the paper's theory section (§II-B, Appendix A):
//
//  * Graph A — clustered random graph (after Singla et al., NSDI'14): two
//    equal clusters of n/2 nodes; every node has degree alpha inside its
//    cluster and beta across, alpha + beta = 2d, beta ~ alpha / log n.
//    Throughput and sparsest cut are both Theta(1 / (n log n)).
//
//  * Graph B — subdivided expander: take a 2d-regular random (expander)
//    graph on N = n / p nodes and replace every edge with a path of p
//    hops. Theorem 1: T_B = O(1/(n p log n)) while Phi_B = Omega(1/(n p)),
//    so B beats A on sparsest cut yet loses on throughput — the
//    counterexample showing cuts mispredict worst-case throughput.
#pragma once

#include <cstdint>

#include "topo/network.h"

namespace tb {

/// Two-cluster random regular-ish graph; alpha/beta are within/cross
/// degrees (alpha + beta even not required; n_per_cluster * beta must be
/// even, as must n_per_cluster * alpha).
Network make_clustered_random(int n_per_cluster, int alpha, int beta,
                              std::uint64_t seed);

/// 2d-regular random expander on base_nodes, each edge subdivided into a
/// path with `path_len` edges. path_len = 1 is the plain expander.
Network make_subdivided_expander(int base_nodes, int d, int path_len,
                                 std::uint64_t seed);

}  // namespace tb
