// Flattened butterfly (Kim, Dally, Abts, ISCA'07): flatten a k-ary n-fly by
// merging the routers of each row. Result: k^(n-1) routers on an (n-1)-
// dimensional lattice of radix k with full connectivity inside every
// dimension, and k terminals (servers) per router. The paper's "5-ary
// 3-stage" instance is k = 5, n = 3: 25 switches, 125 servers.
#pragma once

#include "topo/network.h"

namespace tb {

/// k: lattice radix per dimension (>= 2); stages: n (>= 2), giving n-1 dims.
Network make_flattened_butterfly(int k, int stages);

}  // namespace tb
