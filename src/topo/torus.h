// k-ary n-dimensional torus (and mesh): the classic HPC interconnect
// family, included as an extension baseline — low-degree, long paths, the
// opposite end of the design space from the paper's expanders.
#pragma once

#include <vector>

#include "topo/network.h"

namespace tb {

/// dims: size per dimension (each >= 2). wrap = torus; !wrap = mesh.
/// dims of size 2 collapse the wrap link (no parallel edges).
Network make_torus(const std::vector<int>& dims, int servers_per_switch,
                   bool wrap = true);

}  // namespace tb
