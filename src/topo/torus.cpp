#include "topo/torus.h"

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace tb {

Network make_torus(const std::vector<int>& dims, int servers_per_switch,
                   bool wrap) {
  if (dims.empty()) throw std::invalid_argument("make_torus: no dimensions");
  long nodes = 1;
  for (const int s : dims) {
    if (s < 2) throw std::invalid_argument("make_torus: dim size >= 2");
    nodes *= s;
    if (nodes > 1'000'000) throw std::invalid_argument("make_torus: too large");
  }

  Network net;
  net.name = std::string(wrap ? "Torus(" : "Mesh(");
  for (std::size_t i = 0; i < dims.size(); ++i) {
    net.name += std::to_string(dims[i]) + (i + 1 < dims.size() ? "x" : ")");
  }
  net.graph = Graph(static_cast<int>(nodes));

  // Edges are added dimension-by-dimension, so each dimension plane — the
  // shared-risk unit of a torus (one backplane / cable direction) — is a
  // contiguous edge-id range recorded as it is built.
  std::vector<std::pair<int, int>> plane_ranges;  // [first, last) per dim
  long stride = 1;
  int edge_id = 0;
  for (const int size : dims) {
    const int first_edge = edge_id;
    for (long v = 0; v < nodes; ++v) {
      const int digit = static_cast<int>((v / stride) % size);
      // +1 neighbour within the dimension.
      if (digit + 1 < size) {
        net.graph.add_edge(static_cast<int>(v), static_cast<int>(v + stride));
        ++edge_id;
      } else if (wrap && size > 2) {
        // Wrap link back to digit 0 (skip for size 2: already adjacent).
        net.graph.add_edge(static_cast<int>(v),
                           static_cast<int>(v - static_cast<long>(size - 1) * stride));
        ++edge_id;
      }
    }
    plane_ranges.emplace_back(first_edge, edge_id);
    stride *= size;
  }
  net.graph.finalize();
  for (std::size_t d = 0; d < plane_ranges.size(); ++d) {
    std::vector<int> plane;
    plane.reserve(
        static_cast<std::size_t>(plane_ranges[d].second - plane_ranges[d].first));
    for (int e = plane_ranges[d].first; e < plane_ranges[d].second; ++e) {
      plane.push_back(e);
    }
    add_risk_group(net, "dim(" + std::to_string(d) + ")", std::move(plane));
  }
  attach_servers_uniform(net, servers_per_switch);
  return net;
}

}  // namespace tb
