#include "topo/torus.h"

#include <stdexcept>
#include <string>

namespace tb {

Network make_torus(const std::vector<int>& dims, int servers_per_switch,
                   bool wrap) {
  if (dims.empty()) throw std::invalid_argument("make_torus: no dimensions");
  long nodes = 1;
  for (const int s : dims) {
    if (s < 2) throw std::invalid_argument("make_torus: dim size >= 2");
    nodes *= s;
    if (nodes > 1'000'000) throw std::invalid_argument("make_torus: too large");
  }

  Network net;
  net.name = std::string(wrap ? "Torus(" : "Mesh(");
  for (std::size_t i = 0; i < dims.size(); ++i) {
    net.name += std::to_string(dims[i]) + (i + 1 < dims.size() ? "x" : ")");
  }
  net.graph = Graph(static_cast<int>(nodes));

  long stride = 1;
  for (const int size : dims) {
    for (long v = 0; v < nodes; ++v) {
      const int digit = static_cast<int>((v / stride) % size);
      // +1 neighbour within the dimension.
      if (digit + 1 < size) {
        net.graph.add_edge(static_cast<int>(v), static_cast<int>(v + stride));
      } else if (wrap && size > 2) {
        // Wrap link back to digit 0 (skip for size 2: already adjacent).
        net.graph.add_edge(static_cast<int>(v),
                           static_cast<int>(v - static_cast<long>(size - 1) * stride));
      }
    }
    stride *= size;
  }
  net.graph.finalize();
  attach_servers_uniform(net, servers_per_switch);
  return net;
}

}  // namespace tb
