// Classic k-ary n-fly (multistage butterfly), the unflattened ancestor of
// the flattened butterfly. n stages of k^(n-1) switches; stage-i switch is
// wired to the k switches of stage i+1 whose addresses differ only in
// digit i. Terminals attach to the first and last stages. Included as an
// extension baseline for multistage designs (§II-B mentions the 5-ary
// 3-stage butterfly's flattening).
#pragma once

#include "topo/network.h"

namespace tb {

/// k >= 2 ports per direction, stages >= 2. Servers: k per first-stage
/// switch (inputs) and k per last-stage switch (outputs).
Network make_butterfly(int k, int stages);

}  // namespace tb
