// "Natural network" synthetics. The paper widens its cut-vs-throughput
// study (Fig 3 / Table II) with 66 measured non-computer networks — food
// webs, social networks, etc. Those datasets are not redistributable, so we
// generate graphs with the same qualitative character the paper relies on
// ("denser at the core, sparse at the edges"): small-world rewired rings
// (Watts-Strogatz), preferential-attachment trees-plus (Barabasi-Albert)
// and planted-partition community graphs. See DESIGN.md.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/network.h"

namespace tb {

/// Watts-Strogatz small world: ring of n nodes, each linked to k nearest
/// neighbours (k even), every edge rewired with probability p.
Network make_watts_strogatz(int n, int k, double rewire_p, std::uint64_t seed);

/// Barabasi-Albert preferential attachment: start from a small clique and
/// attach each new node with m edges.
Network make_barabasi_albert(int n, int m, std::uint64_t seed);

/// Planted partition: `groups` communities of `group_size` nodes; edge
/// probability p_in within and p_out across communities (connectivity is
/// repaired by linking stranded components).
Network make_planted_partition(int groups, int group_size, double p_in,
                               double p_out, std::uint64_t seed);

/// The default suite used by the Fig 3 / Table II benches: a deterministic
/// assortment across the three families.
std::vector<Network> natural_network_suite(int count, std::uint64_t seed);

}  // namespace tb
