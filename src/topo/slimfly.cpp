#include "topo/slimfly.h"

#include <stdexcept>
#include <string>
#include <vector>

namespace tb {
namespace {

bool is_prime(int q) {
  if (q < 2) return false;
  for (int d = 2; d * d <= q; ++d) {
    if (q % d == 0) return false;
  }
  return true;
}

/// Smallest primitive root modulo prime q (exists for all primes).
int primitive_root(int q) {
  // Factorize q - 1.
  std::vector<int> factors;
  int rem = q - 1;
  for (int d = 2; d * d <= rem; ++d) {
    if (rem % d == 0) {
      factors.push_back(d);
      while (rem % d == 0) rem /= d;
    }
  }
  if (rem > 1) factors.push_back(rem);

  const auto pow_mod = [q](long base, long exp) {
    long r = 1 % q;
    base %= q;
    while (exp > 0) {
      if (exp & 1) r = r * base % q;
      base = base * base % q;
      exp >>= 1;
    }
    return static_cast<int>(r);
  };
  for (int g = 2; g < q; ++g) {
    bool ok = true;
    for (const int f : factors) {
      if (pow_mod(g, (q - 1) / f) == 1) {
        ok = false;
        break;
      }
    }
    if (ok) return g;
  }
  throw std::logic_error("primitive_root: none found");
}

}  // namespace

bool slim_fly_supports(int q) { return is_prime(q) && q % 4 == 1; }

Network make_slim_fly(int q, int servers_per_router) {
  if (!slim_fly_supports(q)) {
    throw std::invalid_argument(
        "make_slim_fly: q must be a prime with q % 4 == 1");
  }

  // Generator sets: X = even powers of xi, X' = odd powers.
  const int xi = primitive_root(q);
  std::vector<char> in_x(static_cast<std::size_t>(q), 0);
  std::vector<char> in_xp(static_cast<std::size_t>(q), 0);
  {
    long p = 1;  // xi^0
    for (int e = 0; e < q - 1; ++e) {
      if (e % 2 == 0) {
        in_x[static_cast<std::size_t>(p)] = 1;
      } else {
        in_xp[static_cast<std::size_t>(p)] = 1;
      }
      p = p * xi % q;
    }
  }

  const int routers = 2 * q * q;
  Network net;
  net.name = "SlimFly(q=" + std::to_string(q) + ")";
  net.graph = Graph(routers);
  // Node id: block * q^2 + a * q + b, i.e. (0, x, y) -> x*q + y and
  // (1, m, c) -> q^2 + m*q + c.
  const auto id0 = [q](int x, int y) { return x * q + y; };
  const auto id1 = [q](int m, int c) { return q * q + m * q + c; };

  // Intra-block edges.
  for (int x = 0; x < q; ++x) {
    for (int y = 0; y < q; ++y) {
      for (int y2 = y + 1; y2 < q; ++y2) {
        const int diff = (y2 - y) % q;
        if (in_x[static_cast<std::size_t>(diff)] ||
            in_x[static_cast<std::size_t>(q - diff)]) {
          net.graph.add_edge(id0(x, y), id0(x, y2));
        }
      }
    }
  }
  for (int m = 0; m < q; ++m) {
    for (int c = 0; c < q; ++c) {
      for (int c2 = c + 1; c2 < q; ++c2) {
        const int diff = (c2 - c) % q;
        if (in_xp[static_cast<std::size_t>(diff)] ||
            in_xp[static_cast<std::size_t>(q - diff)]) {
          net.graph.add_edge(id1(m, c), id1(m, c2));
        }
      }
    }
  }
  // Cross edges: (0, x, y) ~ (1, m, c) iff y = m*x + c (mod q).
  for (int x = 0; x < q; ++x) {
    for (int m = 0; m < q; ++m) {
      for (int c = 0; c < q; ++c) {
        const int y = (m * x + c) % q;
        net.graph.add_edge(id0(x, y), id1(m, c));
      }
    }
  }
  net.graph.finalize();
  attach_servers_uniform(net, servers_per_router);
  return net;
}

}  // namespace tb
