#include "topo/network.h"

#include <numeric>
#include <stdexcept>

#include "graph/algorithms.h"

namespace tb {

int Network::total_servers() const {
  return std::accumulate(servers.begin(), servers.end(), 0);
}

std::vector<int> Network::host_nodes() const {
  std::vector<int> hosts;
  for (int v = 0; v < graph.num_nodes(); ++v) {
    if (servers[static_cast<std::size_t>(v)] > 0) hosts.push_back(v);
  }
  return hosts;
}

void Network::validate() const {
  if (!graph.finalized()) {
    throw std::logic_error("Network '" + name + "': graph not finalized");
  }
  if (static_cast<int>(servers.size()) != graph.num_nodes()) {
    throw std::logic_error("Network '" + name + "': servers size mismatch");
  }
  for (const int s : servers) {
    if (s < 0) throw std::logic_error("Network '" + name + "': negative servers");
  }
  if (total_servers() == 0) {
    throw std::logic_error("Network '" + name + "': no servers attached");
  }
  if (!is_connected(graph)) {
    throw std::logic_error("Network '" + name + "': disconnected graph");
  }
}

void attach_servers_uniform(Network& net, int per_switch) {
  net.servers.assign(static_cast<std::size_t>(net.graph.num_nodes()),
                     per_switch);
}

}  // namespace tb
