#include "topo/network.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "graph/algorithms.h"

namespace tb {

int Network::total_servers() const {
  return std::accumulate(servers.begin(), servers.end(), 0);
}

std::vector<int> Network::host_nodes() const {
  std::vector<int> hosts;
  for (int v = 0; v < graph.num_nodes(); ++v) {
    if (servers[static_cast<std::size_t>(v)] > 0) hosts.push_back(v);
  }
  return hosts;
}

void Network::validate() const {
  if (!graph.finalized()) {
    throw std::logic_error("Network '" + name + "': graph not finalized");
  }
  if (static_cast<int>(servers.size()) != graph.num_nodes()) {
    throw std::logic_error("Network '" + name + "': servers size mismatch");
  }
  for (const int s : servers) {
    if (s < 0) throw std::logic_error("Network '" + name + "': negative servers");
  }
  if (total_servers() == 0) {
    throw std::logic_error("Network '" + name + "': no servers attached");
  }
  if (!is_connected(graph)) {
    throw std::logic_error("Network '" + name + "': disconnected graph");
  }
  for (const RiskGroup& g : risk_groups) {
    if (g.label.empty()) {
      throw std::logic_error("Network '" + name + "': unlabeled risk group");
    }
    if (g.edges.empty()) {
      throw std::logic_error("Network '" + name + "': empty risk group '" +
                             g.label + "'");
    }
    int prev = -1;
    for (const int e : g.edges) {
      if (e <= prev || e >= graph.num_edges()) {
        throw std::logic_error("Network '" + name + "': risk group '" +
                               g.label + "' has bad/unsorted edge ids");
      }
      prev = e;
    }
  }
}

void attach_servers_uniform(Network& net, int per_switch) {
  net.servers.assign(static_cast<std::size_t>(net.graph.num_nodes()),
                     per_switch);
}

void add_risk_group(Network& net, std::string label, std::vector<int> edges) {
  if (label.empty()) {
    throw std::invalid_argument("add_risk_group: empty label");
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  if (edges.empty()) return;
  if (edges.front() < 0 || edges.back() >= net.graph.num_edges()) {
    throw std::out_of_range("add_risk_group: bad edge id in group '" + label +
                            "'");
  }
  net.risk_groups.push_back({std::move(label), std::move(edges)});
}

void ensure_risk_groups(Network& net) {
  if (!net.risk_groups.empty()) return;
  const Graph& g = net.graph;
  std::vector<std::vector<int>> incident(
      static_cast<std::size_t>(g.num_nodes()));
  for (int e = 0; e < g.num_edges(); ++e) {
    incident[static_cast<std::size_t>(g.edge_u(e))].push_back(e);
    incident[static_cast<std::size_t>(g.edge_v(e))].push_back(e);
  }
  for (int v = 0; v < g.num_nodes(); ++v) {
    if (incident[static_cast<std::size_t>(v)].empty()) continue;
    add_risk_group(net, "switch(" + std::to_string(v) + ")",
                   std::move(incident[static_cast<std::size_t>(v)]));
  }
}

}  // namespace tb
