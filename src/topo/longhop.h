// Long Hop networks (Tomic, ANCS'13): Cayley graphs over Z_2^dim whose
// generator set comes from good linear error-correcting codes — the
// hypercube's unit generators plus extra "long hop" generators that boost
// expansion/bisection.
//
// Substitution note (see DESIGN.md): instead of shipping fixed BCH-code
// tables, we select the extra generators greedily from a deterministic
// candidate pool to maximize the normalized spectral gap, which reproduces
// the construction's intent (optimized Cayley expanders over Z_2^dim at a
// chosen degree). With extra = 0 the result is exactly the hypercube.
#pragma once

#include <cstdint>

#include "topo/network.h"

namespace tb {

/// dim: nodes = 2^dim; extra_generators: degree = dim + extra_generators.
/// Candidate pool and greedy choice are deterministic given `seed`.
Network make_long_hop(int dim, int extra_generators, int servers_per_switch,
                      std::uint64_t seed = 7);

}  // namespace tb
