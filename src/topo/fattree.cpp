#include "topo/fattree.h"

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace tb {

FatTreeInfo fat_tree_info(int k) {
  if (k < 2 || k % 2 != 0) {
    throw std::invalid_argument("fat tree: k must be even and >= 2");
  }
  FatTreeInfo info;
  info.k = k;
  const int half = k / 2;
  info.num_edge = k * half;
  info.num_agg = k * half;
  info.num_core = half * half;
  info.num_servers = k * half * half;
  info.first_edge = 0;
  info.first_agg = info.num_edge;
  info.first_core = info.num_edge + info.num_agg;
  return info;
}

Network make_fat_tree(int k) {
  const FatTreeInfo info = fat_tree_info(k);
  const int half = k / 2;
  Network net;
  net.name = "FatTree(k=" + std::to_string(k) + ")";
  net.graph = Graph(info.num_edge + info.num_agg + info.num_core);

  // Shared-risk structure collected while wiring: a pod group is every link
  // touching the pod's switches (the pod PDU / enclosure failure unit), an
  // edge-switch group is that switch's uplink bundle (its cable tray).
  std::vector<std::vector<int>> pod_edges(static_cast<std::size_t>(k));
  std::vector<std::vector<int>> uplink_edges(
      static_cast<std::size_t>(info.num_edge));
  int edge_id = 0;

  // Pod-internal bipartite edge<->agg mesh.
  for (int pod = 0; pod < k; ++pod) {
    for (int e = 0; e < half; ++e) {
      const int edge_sw = info.first_edge + pod * half + e;
      for (int a = 0; a < half; ++a) {
        const int agg_sw = info.first_agg + pod * half + a;
        net.graph.add_edge(edge_sw, agg_sw);
        pod_edges[static_cast<std::size_t>(pod)].push_back(edge_id);
        uplink_edges[static_cast<std::size_t>(pod * half + e)].push_back(
            edge_id);
        ++edge_id;
      }
    }
  }
  // Core c (c = a * half + i) connects to aggregation switch a of every pod.
  for (int a = 0; a < half; ++a) {
    for (int i = 0; i < half; ++i) {
      const int core_sw = info.first_core + a * half + i;
      for (int pod = 0; pod < k; ++pod) {
        const int agg_sw = info.first_agg + pod * half + a;
        net.graph.add_edge(agg_sw, core_sw);
        pod_edges[static_cast<std::size_t>(pod)].push_back(edge_id);
        ++edge_id;
      }
    }
  }
  net.graph.finalize();
  for (int pod = 0; pod < k; ++pod) {
    add_risk_group(net, "pod(" + std::to_string(pod) + ")",
                   std::move(pod_edges[static_cast<std::size_t>(pod)]));
  }
  for (int e = 0; e < info.num_edge; ++e) {
    add_risk_group(net, "edge(" + std::to_string(e) + ")",
                   std::move(uplink_edges[static_cast<std::size_t>(e)]));
  }

  // Servers only at the edge layer (paper §III-A2).
  net.servers.assign(static_cast<std::size_t>(net.graph.num_nodes()), 0);
  for (int e = 0; e < info.num_edge; ++e) {
    net.servers[static_cast<std::size_t>(info.first_edge + e)] = half;
  }
  return net;
}

}  // namespace tb
