#include "topo/flattened_butterfly.h"

#include <stdexcept>
#include <string>

namespace tb {

Network make_flattened_butterfly(int k, int stages) {
  if (k < 2) throw std::invalid_argument("flattened butterfly: k >= 2");
  if (stages < 2) throw std::invalid_argument("flattened butterfly: stages >= 2");
  const int dims = stages - 1;
  long routers = 1;
  for (int d = 0; d < dims; ++d) {
    routers *= k;
    if (routers > 1'000'000) {
      throw std::invalid_argument("flattened butterfly: size too large");
    }
  }

  Network net;
  net.name = "FlattenedBF(k=" + std::to_string(k) + ",n=" +
             std::to_string(stages) + ")";
  net.graph = Graph(static_cast<int>(routers));

  // Router id = mixed-radix digits base k; connect routers differing in
  // exactly one digit (full mesh within each dimension).
  long stride = 1;
  for (int d = 0; d < dims; ++d) {
    for (long r = 0; r < routers; ++r) {
      const int digit = static_cast<int>((r / stride) % k);
      for (int other = digit + 1; other < k; ++other) {
        const long peer = r + static_cast<long>(other - digit) * stride;
        net.graph.add_edge(static_cast<int>(r), static_cast<int>(peer));
      }
    }
    stride *= k;
  }
  net.graph.finalize();
  attach_servers_uniform(net, k);
  return net;
}

}  // namespace tb
