// Dragonfly (Kim, Dally, Scott, Abts, ISCA'08). Canonical balanced layout:
// p servers per router, a routers per group (complete graph inside a
// group), h global links per router, g = a*h + 1 groups so that every pair
// of groups is joined by exactly one global link (palmtree assignment).
// The recommended balance is a = 2p = 2h.
#pragma once

#include "topo/network.h"

namespace tb {

/// p: servers/router, a: routers/group, h: global links/router.
/// groups: number of groups; 0 means the maximum a*h + 1.
Network make_dragonfly(int p, int a, int h, int groups = 0);

/// Balanced dragonfly from a single size knob: a = 2h = 2p = 2*t.
Network make_dragonfly_balanced(int t);

}  // namespace tb
