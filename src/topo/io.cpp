#include "topo/io.h"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace tb {

void write_edge_list(std::ostream& os, const Network& net) {
  os << "# " << net.name << '\n';
  os << "nodes " << net.graph.num_nodes() << '\n';
  for (int v = 0; v < net.graph.num_nodes(); ++v) {
    if (net.servers[static_cast<std::size_t>(v)] > 0) {
      os << "servers " << v << ' ' << net.servers[static_cast<std::size_t>(v)]
         << '\n';
    }
  }
  for (int e = 0; e < net.graph.num_edges(); ++e) {
    os << "edge " << net.graph.edge_u(e) << ' ' << net.graph.edge_v(e) << ' '
       << net.graph.edge_cap(e) << '\n';
  }
}

std::string to_edge_list(const Network& net) {
  std::ostringstream os;
  write_edge_list(os, net);
  return os.str();
}

Network read_edge_list(std::istream& is, const std::string& name) {
  Network net;
  net.name = name;
  bool have_nodes = false;
  std::string line;
  std::vector<std::pair<int, int>> servers;
  long line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    const auto fail = [&](const std::string& why) {
      throw std::runtime_error("read_edge_list: line " +
                               std::to_string(line_no) + ": " + why);
    };
    if (kind == "nodes") {
      int n = -1;
      if (!(ls >> n) || n < 0) fail("bad node count");
      if (have_nodes) fail("duplicate nodes line");
      net.graph = Graph(n);
      net.servers.assign(static_cast<std::size_t>(n), 0);
      have_nodes = true;
    } else if (kind == "servers") {
      int v = -1;
      int count = -1;
      if (!(ls >> v >> count) || count < 0) fail("bad servers line");
      servers.emplace_back(v, count);
    } else if (kind == "edge") {
      if (!have_nodes) fail("edge before nodes");
      int u = -1;
      int v = -1;
      double cap = 1.0;
      if (!(ls >> u >> v >> cap)) fail("bad edge line");
      try {
        net.graph.add_edge(u, v, cap);
      } catch (const std::exception& ex) {
        fail(ex.what());
      }
    } else {
      fail("unknown directive '" + kind + "'");
    }
  }
  if (!have_nodes) throw std::runtime_error("read_edge_list: missing nodes");
  for (const auto& [v, count] : servers) {
    if (v < 0 || v >= net.graph.num_nodes()) {
      throw std::runtime_error("read_edge_list: servers node out of range");
    }
    net.servers[static_cast<std::size_t>(v)] = count;
  }
  net.graph.finalize();
  return net;
}

Network parse_edge_list(const std::string& text, const std::string& name) {
  std::istringstream is(text);
  return read_edge_list(is, name);
}

std::string to_dot(const Network& net) {
  std::ostringstream os;
  os << "graph \"" << net.name << "\" {\n";
  for (int v = 0; v < net.graph.num_nodes(); ++v) {
    const int s = net.servers[static_cast<std::size_t>(v)];
    if (s > 0) {
      os << "  n" << v << " [label=\"" << v << " (" << s << " srv)\"];\n";
    }
  }
  for (int e = 0; e < net.graph.num_edges(); ++e) {
    os << "  n" << net.graph.edge_u(e) << " -- n" << net.graph.edge_v(e);
    if (net.graph.edge_cap(e) != 1.0) {
      os << " [label=\"" << net.graph.edge_cap(e) << "\"]";
    }
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace tb
