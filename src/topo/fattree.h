// Three-level fat tree (Al-Fares et al. / Leiserson): parameter k (even).
// k pods of k/2 edge and k/2 aggregation switches; (k/2)^2 core switches;
// k^3/4 servers, k/2 per edge switch. Nonblocking: absolute throughput of
// any hose-model TM is 1 (used as a test oracle).
#pragma once

#include "topo/network.h"

namespace tb {

struct FatTreeInfo {
  int k = 0;
  int num_core = 0;
  int num_agg = 0;
  int num_edge = 0;
  int num_servers = 0;
  int first_core = 0;  ///< node-id layout: [edge | agg | core]
  int first_agg = 0;
  int first_edge = 0;
};

Network make_fat_tree(int k);
FatTreeInfo fat_tree_info(int k);

}  // namespace tb
