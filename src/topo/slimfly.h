// Slim Fly (Besta & Hoefler, SC'14): diameter-2 networks built from
// McKay-Miller-Siran (MMS) graphs over a finite field F_q.
//
// Construction (q prime, q = 4w + 1 here): let xi be a primitive element
// of F_q, X = {xi^0, xi^2, ...} the even powers and X' = {xi^1, xi^3, ...}
// the odd powers. Vertices are (0, x, y) and (1, m, c) with x, y, m, c in
// F_q (2q^2 routers total). Edges:
//   (0, x, y) ~ (0, x, y')  iff  y - y' in X
//   (1, m, c) ~ (1, m, c')  iff  c - c' in X'
//   (0, x, y) ~ (1, m, c)   iff  y = m*x + c
// Router degree is (3q - 1)/2 and the diameter is exactly 2.
//
// We support prime q with q % 4 == 1 (q = 5, 13, 17, 29, ...), which covers
// the sizes evaluated; prime powers and the q%4==3 variant are documented
// substitutions (DESIGN.md).
#pragma once

#include "topo/network.h"

namespace tb {

/// Whether `q` is supported (prime, q % 4 == 1).
bool slim_fly_supports(int q);

Network make_slim_fly(int q, int servers_per_router);

}  // namespace tb
