#include "topo/xpander.h"

#include <stdexcept>
#include <string>

#include "graph/algorithms.h"
#include "util/rng.h"

namespace tb {

Network make_xpander(int degree, int lift, int servers_per_switch,
                     std::uint64_t seed) {
  if (degree < 3) throw std::invalid_argument("make_xpander: degree >= 3");
  if (lift < 2) throw std::invalid_argument("make_xpander: lift >= 2");
  const int blocks = degree + 1;
  const long nodes = static_cast<long>(blocks) * lift;
  if (nodes > 1'000'000) throw std::invalid_argument("make_xpander: too large");

  Rng rng(seed);
  Network net;
  net.name = "Xpander(d=" + std::to_string(degree) + ",lift=" +
             std::to_string(lift) + ")";

  // Retry the lift until connected (failures are rare for lift >= 2).
  for (int attempt = 0; attempt < 64; ++attempt) {
    Graph g(static_cast<int>(nodes));
    // Node id: block * lift + index.
    for (int b1 = 0; b1 < blocks; ++b1) {
      for (int b2 = b1 + 1; b2 < blocks; ++b2) {
        const std::vector<int> perm = rng.permutation(lift);
        for (int i = 0; i < lift; ++i) {
          g.add_edge(b1 * lift + i,
                     b2 * lift + perm[static_cast<std::size_t>(i)]);
        }
      }
    }
    g.finalize();
    if (is_connected(g)) {
      net.graph = std::move(g);
      attach_servers_uniform(net, servers_per_switch);
      return net;
    }
  }
  throw std::runtime_error("make_xpander: lift never connected");
}

}  // namespace tb
