#include "topo/longhop.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/spectral.h"
#include "util/rng.h"

namespace tb {
namespace {

Graph cayley_z2(int dim, const std::vector<std::uint32_t>& generators) {
  const int n = 1 << dim;
  Graph g(n);
  for (int u = 0; u < n; ++u) {
    for (const std::uint32_t gen : generators) {
      const int v = u ^ static_cast<int>(gen);
      if (u < v) g.add_edge(u, v);
    }
  }
  g.finalize();
  return g;
}

}  // namespace

Network make_long_hop(int dim, int extra_generators, int servers_per_switch,
                      std::uint64_t seed) {
  if (dim < 2 || dim > 16) {
    throw std::invalid_argument("make_long_hop: dim must be in [2, 16]");
  }
  const std::uint32_t space = 1u << dim;
  if (extra_generators < 0 ||
      static_cast<std::uint32_t>(dim + extra_generators) >= space) {
    throw std::invalid_argument("make_long_hop: too many generators");
  }

  // Base generators: the hypercube's unit vectors.
  std::vector<std::uint32_t> gens;
  for (int b = 0; b < dim; ++b) gens.push_back(1u << b);

  // Candidate pool: all vectors of Hamming weight >= 2 (the "long hops"),
  // shuffled deterministically so ties are broken reproducibly. For large
  // dim we cap the pool at 4096 sampled candidates.
  std::vector<std::uint32_t> pool;
  for (std::uint32_t v = 1; v < space; ++v) {
    if (__builtin_popcount(v) >= 2) pool.push_back(v);
  }
  Rng rng(seed);
  rng.shuffle(pool);
  if (pool.size() > 4096) pool.resize(4096);

  // Greedy: add the candidate that maximizes the normalized spectral gap.
  // To keep construction cheap we score at most 24 candidates per step
  // (the pool is pre-shuffled, so this is a random subset).
  for (int step = 0; step < extra_generators; ++step) {
    double best_gap = -1.0;
    std::size_t best_idx = pool.size();
    const std::size_t budget = std::min<std::size_t>(pool.size(), 24);
    for (std::size_t i = 0; i < budget; ++i) {
      if (std::find(gens.begin(), gens.end(), pool[i]) != gens.end()) continue;
      gens.push_back(pool[i]);
      const double gap = normalized_spectral_gap(cayley_z2(dim, gens));
      gens.pop_back();
      if (gap > best_gap) {
        best_gap = gap;
        best_idx = i;
      }
    }
    if (best_idx == pool.size()) {
      throw std::runtime_error("make_long_hop: candidate pool exhausted");
    }
    gens.push_back(pool[best_idx]);
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(best_idx));
  }

  Network net;
  net.name = "LongHop(dim=" + std::to_string(dim) + ",deg=" +
             std::to_string(dim + extra_generators) + ")";
  net.graph = cayley_z2(dim, gens);
  attach_servers_uniform(net, servers_per_switch);
  return net;
}

}  // namespace tb
