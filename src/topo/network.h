// The Network abstraction: a switch-level graph plus server attachment.
//
// Paper model (§II-A): servers send/receive traffic and connect to exactly
// one switch over an infinite-capacity link; switch-switch links have
// capacity 1 unless a topology says otherwise. Because server links are
// infinite, traffic matrices reduce to switch-to-switch demands where a
// switch with s attached servers can originate and sink up to s units
// (hose model). Server-centric designs (BCube, DCell) model each server as
// a forwarding node carrying one attached terminal, so servers participate
// in routing exactly as those designs intend.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"

namespace tb {

struct Network {
  std::string name;
  Graph graph;               ///< switch-level topology (finalized)
  std::vector<int> servers;  ///< servers attached to each node

  int num_switches() const { return graph.num_nodes(); }

  /// Total attached servers.
  int total_servers() const;

  /// Node ids that have at least one server ("hosts" / ToRs).
  std::vector<int> host_nodes() const;

  /// Sanity checks: finalized graph, connected, server vector sized to the
  /// node count with non-negative entries, and at least one server attached.
  /// Throws std::logic_error on violation.
  void validate() const;
};

/// Attach `per_switch` servers to every node (the paper's convention for
/// networks without prescribed server locations).
void attach_servers_uniform(Network& net, int per_switch);

}  // namespace tb
