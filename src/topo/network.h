// The Network abstraction: a switch-level graph plus server attachment.
//
// Paper model (§II-A): servers send/receive traffic and connect to exactly
// one switch over an infinite-capacity link; switch-switch links have
// capacity 1 unless a topology says otherwise. Because server links are
// infinite, traffic matrices reduce to switch-to-switch demands where a
// switch with s attached servers can originate and sink up to s units
// (hose model). Server-centric designs (BCube, DCell) model each server as
// a forwarding node carrying one attached terminal, so servers participate
// in routing exactly as those designs intend.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"

namespace tb {

/// A shared-risk link group: edges that plausibly fail together because
/// they share physical substrate — a cable bundle, a pod PDU, a dimension
/// plane, a site-to-site trunk. Groups are derived structurally by each
/// topology builder (see the builders and ensure_risk_groups) and consumed
/// by the scenario layer (mcf::ScenarioSpec::failed_groups). Groups may
/// overlap; `edges` holds edge ids, strictly ascending and unique.
struct RiskGroup {
  std::string label;
  std::vector<int> edges;
};

struct Network {
  std::string name;
  Graph graph;               ///< switch-level topology (finalized)
  std::vector<int> servers;  ///< servers attached to each node
  /// Shared-risk link groups of this instance, in builder order. Inert
  /// metadata for every solver path — only scenario application reads it —
  /// so two networks differing only in risk_groups solve identically.
  std::vector<RiskGroup> risk_groups;

  int num_switches() const { return graph.num_nodes(); }

  /// Total attached servers.
  int total_servers() const;

  /// Node ids that have at least one server ("hosts" / ToRs).
  std::vector<int> host_nodes() const;

  /// Sanity checks: finalized graph, connected, server vector sized to the
  /// node count with non-negative entries, at least one server attached,
  /// and every risk group well-formed (non-empty label, non-empty strictly
  /// ascending edge ids in range). Throws std::logic_error on violation.
  void validate() const;
};

/// Attach `per_switch` servers to every node (the paper's convention for
/// networks without prescribed server locations).
void attach_servers_uniform(Network& net, int per_switch);

/// Append one risk group: sorts and dedups `edges`, validates every id
/// against the (finalized) graph, and drops the group silently when the
/// edge list comes out empty. Throws std::out_of_range on a bad edge id
/// and std::invalid_argument on an empty label.
void add_risk_group(Network& net, std::string label, std::vector<int> edges);

/// Generic structural fallback for builders without a bespoke derivation:
/// when `net.risk_groups` is empty, adds one group per switch bundling its
/// incident links (label "switch(<v>)") — the line-card / ToR-chassis
/// failure unit every topology has. No-op when groups already exist, so
/// bespoke builder groups always win.
void ensure_risk_groups(Network& net);

}  // namespace tb
