// BCube (Guo et al., SIGCOMM'09): server-centric recursive topology.
// BCube_k with n-port switches has n^(k+1) servers and (k+1) * n^k switches
// arranged in k+1 levels. Server (a_k ... a_1 a_0) connects to the level-i
// switch addressed by dropping digit a_i, on port a_i.
//
// In our switch-level model every BCube server is a forwarding node with one
// attached terminal (servers relay traffic in BCube), and the pure switches
// carry no servers.
#pragma once

#include "topo/network.h"

namespace tb {

/// n: switch port count (>= 2); k: levels - 1 (>= 0).
Network make_bcube(int n, int k);

/// Number of server nodes / switch nodes for parameter sanity in callers.
long bcube_num_servers(int n, int k);
long bcube_num_switches(int n, int k);

}  // namespace tb
