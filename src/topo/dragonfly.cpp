#include "topo/dragonfly.h"

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace tb {

Network make_dragonfly(int p, int a, int h, int groups) {
  if (p < 1 || a < 1 || h < 1) {
    throw std::invalid_argument("make_dragonfly: p, a, h must be >= 1");
  }
  const int max_groups = a * h + 1;
  const int g = groups == 0 ? max_groups : groups;
  if (g < 2 || g > max_groups) {
    throw std::invalid_argument("make_dragonfly: groups out of range");
  }

  Network net;
  net.name = "Dragonfly(p=" + std::to_string(p) + ",a=" + std::to_string(a) +
             ",h=" + std::to_string(h) + ",g=" + std::to_string(g) + ")";
  const int routers = g * a;
  net.graph = Graph(routers);

  // Intra-group complete graph.
  int edge_id = 0;
  for (int grp = 0; grp < g; ++grp) {
    for (int r1 = 0; r1 < a; ++r1) {
      for (int r2 = r1 + 1; r2 < a; ++r2) {
        net.graph.add_edge(grp * a + r1, grp * a + r2);
        ++edge_id;
      }
    }
  }

  // Global links, palmtree assignment: group u's global port q in
  // [0, a*h) points to group (u + q + 1) mod g; port q belongs to router
  // q / h of the group. Adding each undirected edge once (u < v side) and
  // only when the peer group exists (g may be < a*h + 1; then some ports
  // stay unused, as in practical under-populated dragonflies).
  //
  // A group's global links share its optical shuffle cabling, so the
  // shared-risk groups here are "global(<grp>)" — every global link with an
  // endpoint in grp. Each global edge therefore appears in two groups.
  std::vector<std::vector<int>> global_edges(static_cast<std::size_t>(g));
  for (int u = 0; u < g; ++u) {
    for (int q = 0; q < a * h; ++q) {
      const int v = (u + q + 1) % max_groups;
      if (v >= g || v == u) continue;
      if (u < v) {
        const int qv = max_groups - 2 - q;  // v's port pointing back to u
        const int ru = u * a + q / h;
        const int rv = v * a + qv / h;
        net.graph.add_edge(ru, rv);
        global_edges[static_cast<std::size_t>(u)].push_back(edge_id);
        global_edges[static_cast<std::size_t>(v)].push_back(edge_id);
        ++edge_id;
      }
    }
  }
  net.graph.finalize();
  for (int grp = 0; grp < g; ++grp) {
    add_risk_group(net, "global(" + std::to_string(grp) + ")",
                   std::move(global_edges[static_cast<std::size_t>(grp)]));
  }
  attach_servers_uniform(net, p);
  return net;
}

Network make_dragonfly_balanced(int t) {
  if (t < 1) throw std::invalid_argument("make_dragonfly_balanced: t >= 1");
  return make_dragonfly(/*p=*/t, /*a=*/2 * t, /*h=*/t);
}

}  // namespace tb
