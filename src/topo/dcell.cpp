#include "topo/dcell.h"

#include <stdexcept>
#include <string>
#include <vector>

namespace tb {
namespace {

/// Servers per DCell_l: t_0 = n; t_l = t_{l-1} * (t_{l-1} + 1).
long t_of(int n, int level) {
  long t = n;
  for (int l = 1; l <= level; ++l) t *= (t + 1);
  return t;
}

}  // namespace

long dcell_num_servers(int n, int level) { return t_of(n, level); }

Network make_dcell(int n, int level) {
  if (n < 2) throw std::invalid_argument("make_dcell: n must be >= 2");
  if (level < 0) throw std::invalid_argument("make_dcell: level must be >= 0");
  const long servers = t_of(n, level);
  if (servers > 500'000) {
    throw std::invalid_argument("make_dcell: size too large");
  }
  const long switches = servers / n;  // one mini-switch per DCell_0

  Network net;
  net.name = "DCell(n=" + std::to_string(n) + ",l=" + std::to_string(level) + ")";
  // Node layout: [server 0 .. servers-1 | switch 0 .. switches-1]; server s
  // belongs to DCell_0 number s / n, whose switch node is servers + s / n.
  net.graph = Graph(static_cast<int>(servers + switches));
  for (long s = 0; s < servers; ++s) {
    net.graph.add_edge(static_cast<int>(s), static_cast<int>(servers + s / n));
  }

  // Recursive level links. Servers of a DCell_l occupy a contiguous id
  // range; build(l, base) wires the level-l links of the DCell_l whose
  // servers start at `base`.
  const auto build = [&](auto&& self, int l, long base) -> void {
    if (l == 0) return;
    const long t_prev = t_of(n, l - 1);
    const long g = t_prev + 1;  // copies of DCell_{l-1}
    for (long i = 0; i < g; ++i) self(self, l - 1, base + i * t_prev);
    for (long i = 0; i < g; ++i) {
      for (long j = i + 1; j < g; ++j) {
        const long u = base + i * t_prev + (j - 1);  // server j-1 of copy i
        const long v = base + j * t_prev + i;        // server i of copy j
        net.graph.add_edge(static_cast<int>(u), static_cast<int>(v));
      }
    }
  };
  build(build, level, 0);
  net.graph.finalize();

  net.servers.assign(static_cast<std::size_t>(net.graph.num_nodes()), 0);
  for (long s = 0; s < servers; ++s) {
    net.servers[static_cast<std::size_t>(s)] = 1;
  }
  return net;
}

}  // namespace tb
