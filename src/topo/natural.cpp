#include "topo/natural.h"

#include <set>
#include <stdexcept>
#include <string>
#include <utility>

#include "graph/algorithms.h"
#include "util/rng.h"

namespace tb {
namespace {

std::pair<int, int> ordered(int u, int v) {
  return u < v ? std::pair{u, v} : std::pair{v, u};
}

/// Join components with random cross edges (used by the sparse samplers).
void repair_connectivity(Graph& g, std::set<std::pair<int, int>>& edges,
                         Rng& rng) {
  g.finalize();
  for (;;) {
    int comps = 0;
    const std::vector<int> comp = connected_components(g, &comps);
    if (comps <= 1) return;
    // Link a random node of component 0 with a random node of another.
    std::vector<int> side0;
    std::vector<int> rest;
    for (int v = 0; v < g.num_nodes(); ++v) {
      (comp[static_cast<std::size_t>(v)] == 0 ? side0 : rest).push_back(v);
    }
    const int u = side0[static_cast<std::size_t>(rng.next_u64(side0.size()))];
    const int v = rest[static_cast<std::size_t>(rng.next_u64(rest.size()))];
    if (edges.insert(ordered(u, v)).second) {
      // Rebuild with the extra edge (Graph has no incremental finalize).
      Graph g2(g.num_nodes());
      for (const auto& [a, b] : edges) g2.add_edge(a, b);
      g2.finalize();
      g = std::move(g2);
    }
  }
}

Graph from_edge_set(int n, const std::set<std::pair<int, int>>& edges) {
  Graph g(n);
  for (const auto& [u, v] : edges) g.add_edge(u, v);
  g.finalize();
  return g;
}

}  // namespace

Network make_watts_strogatz(int n, int k, double rewire_p,
                            std::uint64_t seed) {
  if (n < 4 || k < 2 || k % 2 != 0 || k >= n) {
    throw std::invalid_argument("make_watts_strogatz: bad parameters");
  }
  Rng rng(seed);
  std::set<std::pair<int, int>> edges;
  for (int v = 0; v < n; ++v) {
    for (int j = 1; j <= k / 2; ++j) {
      edges.insert(ordered(v, (v + j) % n));
    }
  }
  // Rewire: replace each edge's far endpoint with a random node w.p. p.
  std::vector<std::pair<int, int>> snapshot(edges.begin(), edges.end());
  for (const auto& e : snapshot) {
    if (!rng.next_bool(rewire_p)) continue;
    const int u = e.first;
    for (int tries = 0; tries < 32; ++tries) {
      const int w = static_cast<int>(rng.next_u64(static_cast<std::uint64_t>(n)));
      if (w == u || edges.contains(ordered(u, w))) continue;
      edges.erase(e);
      edges.insert(ordered(u, w));
      break;
    }
  }
  Graph g = from_edge_set(n, edges);
  Rng repair_rng(rng());
  repair_connectivity(g, edges, repair_rng);

  Network net;
  net.name = "WattsStrogatz(n=" + std::to_string(n) + ",k=" +
             std::to_string(k) + ")";
  net.graph = std::move(g);
  attach_servers_uniform(net, 1);
  return net;
}

Network make_barabasi_albert(int n, int m, std::uint64_t seed) {
  if (m < 1 || n <= m + 1) {
    throw std::invalid_argument("make_barabasi_albert: bad parameters");
  }
  Rng rng(seed);
  std::set<std::pair<int, int>> edges;
  // Seed clique of m + 1 nodes.
  std::vector<int> endpoint_pool;  // node repeated once per incident edge
  for (int u = 0; u <= m; ++u) {
    for (int v = u + 1; v <= m; ++v) {
      edges.insert({u, v});
      endpoint_pool.push_back(u);
      endpoint_pool.push_back(v);
    }
  }
  for (int v = m + 1; v < n; ++v) {
    std::set<int> targets;
    int guard = 0;
    while (static_cast<int>(targets.size()) < m && ++guard < 10'000) {
      const int t = endpoint_pool[static_cast<std::size_t>(
          rng.next_u64(endpoint_pool.size()))];
      if (t != v) targets.insert(t);
    }
    for (const int t : targets) {
      edges.insert(ordered(v, t));
      endpoint_pool.push_back(v);
      endpoint_pool.push_back(t);
    }
  }
  Network net;
  net.name = "BarabasiAlbert(n=" + std::to_string(n) + ",m=" +
             std::to_string(m) + ")";
  net.graph = from_edge_set(n, edges);
  attach_servers_uniform(net, 1);
  return net;
}

Network make_planted_partition(int groups, int group_size, double p_in,
                               double p_out, std::uint64_t seed) {
  if (groups < 2 || group_size < 2) {
    throw std::invalid_argument("make_planted_partition: bad parameters");
  }
  Rng rng(seed);
  const int n = groups * group_size;
  std::set<std::pair<int, int>> edges;
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      const bool same = (u / group_size) == (v / group_size);
      if (rng.next_bool(same ? p_in : p_out)) edges.insert({u, v});
    }
  }
  Graph g = from_edge_set(n, edges);
  repair_connectivity(g, edges, rng);

  Network net;
  net.name = "PlantedPartition(g=" + std::to_string(groups) + ",s=" +
             std::to_string(group_size) + ")";
  net.graph = std::move(g);
  attach_servers_uniform(net, 1);
  return net;
}

std::vector<Network> natural_network_suite(int count, std::uint64_t seed) {
  std::vector<Network> nets;
  Rng rng(seed);
  for (int i = 0; i < count; ++i) {
    switch (i % 3) {
      case 0:
        nets.push_back(make_watts_strogatz(20 + 4 * (i % 5), 4, 0.2, rng()));
        break;
      case 1:
        nets.push_back(make_barabasi_albert(18 + 4 * (i % 5), 2, rng()));
        break;
      default:
        nets.push_back(make_planted_partition(3, 6 + (i % 4), 0.7, 0.06, rng()));
        break;
    }
  }
  return nets;
}

}  // namespace tb
