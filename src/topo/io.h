// Graph and network serialization: a plain edge-list format (round-trip)
// and Graphviz DOT export (visualization). The edge-list format is
// line-oriented and diff-friendly:
//
//   # comment
//   nodes <n>
//   servers <v> <count>        (optional, one per hosting node)
//   edge <u> <v> <capacity>
#pragma once

#include <iosfwd>
#include <string>

#include "topo/network.h"

namespace tb {

/// Serialize a network to the edge-list format.
void write_edge_list(std::ostream& os, const Network& net);
std::string to_edge_list(const Network& net);

/// Parse the edge-list format; throws std::runtime_error on malformed
/// input. The returned network is finalized and named `name`.
Network read_edge_list(std::istream& is, const std::string& name = "loaded");
Network parse_edge_list(const std::string& text,
                        const std::string& name = "loaded");

/// Graphviz DOT (undirected), capacities as labels when != 1.
std::string to_dot(const Network& net);

}  // namespace tb
