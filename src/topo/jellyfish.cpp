#include "topo/jellyfish.h"

#include <algorithm>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>

#include "graph/algorithms.h"
#include "util/rng.h"

namespace tb {
namespace {

using EdgeSet = std::set<std::pair<int, int>>;

std::pair<int, int> ordered(int u, int v) {
  return u < v ? std::pair{u, v} : std::pair{v, u};
}

/// Repair multi-edges/self-loops via double-edge swaps; returns false if it
/// cannot make the multiset acceptable within the attempt budget. With
/// allow_parallel only self-loops are offending (dense port counts, e.g.
/// trunked HyperX gear, cannot be realized as simple graphs).
bool make_simple(std::vector<std::pair<int, int>>& edges, Rng& rng,
                 bool allow_parallel) {
  const auto is_bad = [](const std::pair<int, int>& e) {
    return e.first == e.second;
  };
  for (long attempt = 0; attempt < 200L * static_cast<long>(edges.size()) + 1000;
       ++attempt) {
    // Rebuild the duplicate index.
    EdgeSet seen;
    std::vector<std::size_t> bad;
    for (std::size_t i = 0; i < edges.size(); ++i) {
      const bool dup =
          !seen.insert(ordered(edges[i].first, edges[i].second)).second;
      if (is_bad(edges[i]) || (dup && !allow_parallel)) {
        bad.push_back(i);
      }
    }
    if (bad.empty()) return true;
    // Swap each offending edge with a random partner edge.
    bool progressed = false;
    for (const std::size_t i : bad) {
      for (int tries = 0; tries < 64; ++tries) {
        const auto j = static_cast<std::size_t>(rng.next_u64(edges.size()));
        if (j == i) continue;
        auto [a, b] = edges[i];
        auto [c, d] = edges[j];
        if (rng.next_bool(0.5)) std::swap(c, d);
        // Propose (a, d) and (c, b).
        if (a == d || c == b) continue;
        if (!allow_parallel && (seen.contains(ordered(a, d)) ||
                                seen.contains(ordered(c, b)))) {
          continue;
        }
        edges[i] = {a, d};
        edges[j] = {c, b};
        progressed = true;
        break;
      }
    }
    if (!progressed && !bad.empty()) {
      // Full reshuffle escape hatch: permute endpoints globally.
      std::vector<int> stubs;
      stubs.reserve(edges.size() * 2);
      for (const auto& [u, v] : edges) {
        stubs.push_back(u);
        stubs.push_back(v);
      }
      rng.shuffle(stubs);
      for (std::size_t i = 0; i < edges.size(); ++i) {
        edges[i] = {stubs[2 * i], stubs[2 * i + 1]};
      }
    }
  }
  return false;
}

/// Connect components by swapping an edge inside the giant component with an
/// edge of a smaller component (degree-preserving).
void make_connected(std::vector<std::pair<int, int>>& edges, int n, Rng& rng,
                    bool allow_parallel) {
  for (int guard = 0; guard < 10'000; ++guard) {
    Graph g(n);
    for (const auto& [u, v] : edges) g.add_edge(u, v);
    g.finalize();
    int comps = 0;
    const std::vector<int> comp = connected_components(g, &comps);
    if (comps <= 1) return;

    EdgeSet seen;
    for (const auto& [u, v] : edges) seen.insert(ordered(u, v));

    // Pick one edge in component 0 and one in a different component; swap.
    std::vector<std::size_t> in0;
    std::vector<std::size_t> other;
    for (std::size_t i = 0; i < edges.size(); ++i) {
      const int c = comp[static_cast<std::size_t>(edges[i].first)];
      (c == 0 ? in0 : other).push_back(i);
    }
    if (in0.empty() || other.empty()) {
      // Component 0 has no edges (isolated node with degree 0 cannot
      // happen for degree >= 1); bail to avoid an infinite loop.
      throw std::runtime_error("random graph: cannot connect components");
    }
    bool swapped = false;
    for (int tries = 0; tries < 256 && !swapped; ++tries) {
      const std::size_t i = in0[static_cast<std::size_t>(rng.next_u64(in0.size()))];
      const std::size_t j =
          other[static_cast<std::size_t>(rng.next_u64(other.size()))];
      auto [a, b] = edges[i];
      auto [c, d] = edges[j];
      if (rng.next_bool(0.5)) std::swap(c, d);
      if (a == d || c == b) continue;
      if (!allow_parallel && (seen.contains(ordered(a, d)) ||
                              seen.contains(ordered(c, b)))) {
        continue;
      }
      edges[i] = {a, d};
      edges[j] = {c, b};
      swapped = true;
    }
    if (!swapped) {
      throw std::runtime_error("random graph: connectivity repair stalled");
    }
  }
  throw std::runtime_error("random graph: connectivity repair did not converge");
}

/// Random-graph wiring has no structural planes, but its physical cabling
/// still runs in shared trays: partition the edges into fixed-size bundles
/// by a seeded shuffle. The bundle stream is forked from the construction
/// seed with its own constant so adding bundles perturbs neither the wiring
/// nor any other consumer of the seed.
constexpr std::uint64_t kCableBundleStream = 0x6a656c6c79666973ULL;  // "jellyfis"

void add_cable_bundles(Network& net, std::uint64_t seed) {
  const int m = net.graph.num_edges();
  if (m < 2) return;
  constexpr int kBundleSize = 4;
  Rng rng(mix_seed(seed, kCableBundleStream));
  const std::vector<int> perm = rng.permutation(m);
  const int bundles = (m + kBundleSize - 1) / kBundleSize;
  for (int b = 0; b < bundles; ++b) {
    std::vector<int> edges;
    for (int i = b * kBundleSize; i < std::min(m, (b + 1) * kBundleSize); ++i) {
      edges.push_back(perm[static_cast<std::size_t>(i)]);
    }
    add_risk_group(net, "bundle(" + std::to_string(b) + ")", std::move(edges));
  }
}

}  // namespace

Graph random_graph_with_degrees(const std::vector<int>& degrees,
                                std::uint64_t seed) {
  const int n = static_cast<int>(degrees.size());
  long stub_count = 0;
  int max_deg = 0;
  for (const int d : degrees) {
    if (d < 0) throw std::invalid_argument("random graph: negative degree");
    stub_count += d;
    max_deg = std::max(max_deg, d);
  }
  if (stub_count % 2 != 0) {
    throw std::invalid_argument("random graph: odd degree sum");
  }
  // Degrees >= n cannot be realized as a simple graph; such gear (e.g.
  // trunked HyperX ports) gets parallel unit links instead, which is what
  // the equipment physically is.
  const bool allow_parallel = max_deg >= n;

  Rng rng(seed);
  std::vector<int> stubs;
  stubs.reserve(static_cast<std::size_t>(stub_count));
  for (int v = 0; v < n; ++v) {
    for (int i = 0; i < degrees[static_cast<std::size_t>(v)]; ++i) {
      stubs.push_back(v);
    }
  }

  for (int attempt = 0; attempt < 50; ++attempt) {
    rng.shuffle(stubs);
    std::vector<std::pair<int, int>> edges;
    edges.reserve(stubs.size() / 2);
    for (std::size_t i = 0; i < stubs.size(); i += 2) {
      edges.emplace_back(stubs[i], stubs[i + 1]);
    }
    if (!make_simple(edges, rng, allow_parallel)) continue;
    make_connected(edges, n, rng, allow_parallel);
    Graph g(n);
    for (const auto& [u, v] : edges) g.add_edge(u, v);
    g.finalize();
    return g;
  }
  throw std::runtime_error("random graph: sampling failed");
}

Network make_jellyfish(int n_switches, int degree, int servers_per_switch,
                       std::uint64_t seed) {
  if (n_switches < 2 || degree < 1 || degree >= n_switches) {
    throw std::invalid_argument("make_jellyfish: invalid n/degree");
  }
  if ((static_cast<long>(n_switches) * degree) % 2 != 0) {
    throw std::invalid_argument("make_jellyfish: n * degree must be even");
  }
  Network net;
  net.name = "Jellyfish(n=" + std::to_string(n_switches) + ",r=" +
             std::to_string(degree) + ")";
  net.graph = random_graph_with_degrees(
      std::vector<int>(static_cast<std::size_t>(n_switches), degree), seed);
  attach_servers_uniform(net, servers_per_switch);
  add_cable_bundles(net, seed);
  return net;
}

Network make_same_equipment_random(const Network& reference,
                                   std::uint64_t seed) {
  // Equipment is counted in unit-capacity ports: a trunked link of integer
  // capacity K (e.g. HyperX's K-wide links) is K parallel unit links, so the
  // random normalizer gets round(sum of incident capacity) unit links per
  // node, exactly matching the gear of the reference network.
  const Graph& g = reference.graph;
  std::vector<int> degrees(static_cast<std::size_t>(g.num_nodes()), 0);
  for (int e = 0; e < g.num_edges(); ++e) {
    const int cap = static_cast<int>(g.edge_cap(e) + 0.5);
    degrees[static_cast<std::size_t>(g.edge_u(e))] += cap;
    degrees[static_cast<std::size_t>(g.edge_v(e))] += cap;
  }
  Network net;
  net.name = "RandomGraph(equip=" + reference.name + ")";
  net.graph = random_graph_with_degrees(degrees, seed);
  net.servers = reference.servers;
  add_cable_bundles(net, seed);
  return net;
}

}  // namespace tb
