#include "topo/hyperx.h"

#include <stdexcept>
#include <string>

namespace tb {

long HyperXParams::routers() const {
  long r = 1;
  for (int d = 0; d < L; ++d) r *= S;
  return r;
}

Network make_hyperx(const HyperXParams& params) {
  if (params.L < 1 || params.S < 2 || params.K < 1 || params.T < 1) {
    throw std::invalid_argument("make_hyperx: invalid parameters");
  }
  const long routers = params.routers();
  if (routers > 1'000'000) {
    throw std::invalid_argument("make_hyperx: size too large");
  }

  Network net;
  net.name = "HyperX(L=" + std::to_string(params.L) + ",S=" +
             std::to_string(params.S) + ",K=" + std::to_string(params.K) +
             ",T=" + std::to_string(params.T) + ")";
  net.graph = Graph(static_cast<int>(routers));

  long stride = 1;
  for (int d = 0; d < params.L; ++d) {
    for (long r = 0; r < routers; ++r) {
      const int digit = static_cast<int>((r / stride) % params.S);
      for (int other = digit + 1; other < params.S; ++other) {
        const long peer = r + static_cast<long>(other - digit) * stride;
        net.graph.add_edge(static_cast<int>(r), static_cast<int>(peer),
                           static_cast<double>(params.K));
      }
    }
    stride *= params.S;
  }
  net.graph.finalize();
  attach_servers_uniform(net, params.T);
  return net;
}

std::optional<HyperXParams> search_hyperx(int radix, long min_servers,
                                          double min_bisection, int max_dims) {
  std::optional<HyperXParams> best;
  for (int L = 1; L <= max_dims; ++L) {
    for (int S = 2; S <= radix; ++S) {
      long routers = 1;
      bool overflow = false;
      for (int d = 0; d < L; ++d) {
        routers *= S;
        if (routers > 4'000'000) {
          overflow = true;
          break;
        }
      }
      if (overflow) break;
      for (int K = 1; K <= radix; ++K) {
        // Smallest T that meets the server requirement; it must also fit
        // the radix and satisfy the bisection target.
        const long t_needed = (min_servers + routers - 1) / routers;
        if (t_needed > radix) continue;
        const int T = static_cast<int>(t_needed < 1 ? 1 : t_needed);
        HyperXParams p{L, S, K, T};
        if (p.radix_used() > radix) continue;
        if (p.bisection() + 1e-12 < min_bisection) continue;
        if (p.servers() < min_servers) continue;
        // Cost model: router count first, then consumed ports.
        if (!best || p.routers() < best->routers() ||
            (p.routers() == best->routers() &&
             p.radix_used() < best->radix_used())) {
          best = p;
        }
        break;  // larger K only raises cost once constraints are met
      }
    }
  }
  return best;
}

}  // namespace tb
