// DCell (Guo et al., SIGCOMM'08): server-centric recursive topology.
// DCell_0 is n servers on one switch. DCell_l consists of g_l = t_{l-1} + 1
// copies of DCell_{l-1} (t_{l-1} = servers per copy); server j-1 of copy i
// links directly to server i of copy j for every pair i < j.
//
// As with BCube, each DCell server is a forwarding node carrying one
// terminal; the mini-switches carry none.
#pragma once

#include "topo/network.h"

namespace tb {

/// n: servers per DCell_0 (>= 2); level: recursion depth (>= 0).
Network make_dcell(int n, int level);

long dcell_num_servers(int n, int level);

}  // namespace tb
