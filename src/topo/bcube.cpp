#include "topo/bcube.h"

#include <stdexcept>
#include <string>

namespace tb {
namespace {

long ipow(long base, int exp) {
  long r = 1;
  for (int i = 0; i < exp; ++i) r *= base;
  return r;
}

}  // namespace

long bcube_num_servers(int n, int k) { return ipow(n, k + 1); }
long bcube_num_switches(int n, int k) {
  return static_cast<long>(k + 1) * ipow(n, k);
}

Network make_bcube(int n, int k) {
  if (n < 2) throw std::invalid_argument("make_bcube: n must be >= 2");
  if (k < 0) throw std::invalid_argument("make_bcube: k must be >= 0");
  const long servers = bcube_num_servers(n, k);
  const long switches = bcube_num_switches(n, k);
  if (servers + switches > 2'000'000) {
    throw std::invalid_argument("make_bcube: size too large");
  }

  Network net;
  net.name = "BCube(n=" + std::to_string(n) + ",k=" + std::to_string(k) + ")";
  // Node layout: [server nodes | switch nodes]. Level-i switch block starts
  // at servers + i * n^k.
  net.graph = Graph(static_cast<int>(servers + switches));
  const long per_level = ipow(n, k);

  for (long srv = 0; srv < servers; ++srv) {
    // digits of srv base n: a_0 least significant.
    for (int level = 0; level <= k; ++level) {
      // Switch address: server digits with digit `level` removed.
      const long high = srv / ipow(n, level + 1);  // digits above level
      const long low = srv % ipow(n, level);       // digits below level
      const long sw_index = high * ipow(n, level) + low;
      const long sw_node = servers + level * per_level + sw_index;
      net.graph.add_edge(static_cast<int>(srv), static_cast<int>(sw_node));
    }
  }
  net.graph.finalize();

  net.servers.assign(static_cast<std::size_t>(net.graph.num_nodes()), 0);
  for (long srv = 0; srv < servers; ++srv) {
    net.servers[static_cast<std::size_t>(srv)] = 1;
  }
  return net;
}

}  // namespace tb
