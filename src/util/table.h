// Plain-text table / CSV emission for the benchmark harness. Every bench
// binary prints the rows or series of one paper figure or table; Table keeps
// that output aligned and machine-parseable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace tb {

/// A simple column-aligned table that can also render as CSV.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` significant decimals.
  static std::string fmt(double v, int precision = 4);

  std::size_t num_rows() const noexcept { return rows_.size(); }

  /// Render space-aligned text.
  std::string to_text() const;
  /// Render comma-separated values.
  std::string to_csv() const;

  /// Print to `os` (text form) with an optional caption line first.
  void print(std::ostream& os, const std::string& caption = "") const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tb
