#include "util/table.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace tb {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::to_text() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream out;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) {
        out << std::string(width[c] - row[c].size() + 2, ' ');
      }
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) out << ',';
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::print(std::ostream& os, const std::string& caption) const {
  if (!caption.empty()) os << "# " << caption << '\n';
  os << to_text();
}

}  // namespace tb
