#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace tb::json {
namespace {

constexpr int kMaxDepth = 64;

[[noreturn]] void fail(std::size_t pos, const std::string& what) {
  throw std::invalid_argument("json: " + what + " at byte " +
                              std::to_string(pos));
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    skip_ws();
    Value v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing garbage");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() const {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(pos_, std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value(int depth) {
    if (depth > kMaxDepth) fail(pos_, "nesting too deep");
    switch (peek()) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return Value::string_v(parse_string());
      case 't':
        if (!consume_literal("true")) fail(pos_, "invalid literal");
        return Value::boolean_v(true);
      case 'f':
        if (!consume_literal("false")) fail(pos_, "invalid literal");
        return Value::boolean_v(false);
      case 'n':
        if (!consume_literal("null")) fail(pos_, "invalid literal");
        return Value::null();
      default:
        return parse_number();
    }
  }

  Value parse_object(int depth) {
    expect('{');
    Value v = Value::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      v.members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array(int depth) {
    expect('[');
    Value v = Value::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      v.items.push_back(parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  unsigned parse_hex4() {
    unsigned code = 0;
    for (int k = 0; k < 4; ++k) {
      const char c = peek();
      ++pos_;
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail(pos_ - 1, "invalid \\u escape");
      }
    }
    return code;
  }

  void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail(pos_, "unterminated string");
      const char c = text_[pos_];
      ++pos_;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail(pos_ - 1, "raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          unsigned code = parse_hex4();
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (!consume_literal("\\u")) fail(pos_, "unpaired surrogate");
            const unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) {
              fail(pos_ - 4, "unpaired surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail(pos_ - 4, "unpaired surrogate");
          }
          append_utf8(out, code);
          break;
        }
        default:
          fail(pos_ - 1, "invalid escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (pos_ < text_.size() && text_[pos_] == '0') {
      ++pos_;  // leading zero: no further integer digits allowed
    } else if (digits() == 0) {
      fail(start, "invalid number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail(start, "invalid number");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (digits() == 0) fail(start, "invalid number");
    }
    const std::string tok = text_.substr(start, pos_ - start);
    return Value::number_v(std::strtod(tok.c_str(), nullptr));
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

void dump_to(const Value& v, std::string& out) {
  switch (v.kind) {
    case Kind::Null:
      out += "null";
      break;
    case Kind::Bool:
      out += v.boolean ? "true" : "false";
      break;
    case Kind::Number:
      out += number_to_string(v.number);
      break;
    case Kind::String:
      out += '"';
      out += escape(v.string);
      out += '"';
      break;
    case Kind::Array: {
      out += '[';
      for (std::size_t i = 0; i < v.items.size(); ++i) {
        if (i > 0) out += ", ";
        dump_to(v.items[i], out);
      }
      out += ']';
      break;
    }
    case Kind::Object: {
      out += '{';
      for (std::size_t i = 0; i < v.members.size(); ++i) {
        if (i > 0) out += ", ";
        out += '"';
        out += escape(v.members[i].first);
        out += "\": ";
        dump_to(v.members[i].second, out);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace

Value Value::null() { return Value{}; }

Value Value::boolean_v(bool b) {
  Value v;
  v.kind = Kind::Bool;
  v.boolean = b;
  return v;
}

Value Value::number_v(double n) {
  Value v;
  v.kind = Kind::Number;
  v.number = n;
  return v;
}

Value Value::string_v(std::string s) {
  Value v;
  v.kind = Kind::String;
  v.string = std::move(s);
  return v;
}

Value Value::array() {
  Value v;
  v.kind = Kind::Array;
  return v;
}

Value Value::object() {
  Value v;
  v.kind = Kind::Object;
  return v;
}

const Value* Value::find(const std::string& key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, val] : members) {
    if (k == key) return &val;
  }
  return nullptr;
}

void Value::set(std::string key, Value v) {
  kind = Kind::Object;
  members.emplace_back(std::move(key), std::move(v));
}

const std::string& Value::as_string(const char* what) const {
  if (kind != Kind::String) {
    throw std::invalid_argument(std::string(what) + " must be a string");
  }
  return string;
}

double Value::as_number(const char* what) const {
  if (kind != Kind::Number) {
    throw std::invalid_argument(std::string(what) + " must be a number");
  }
  return number;
}

bool Value::as_bool(const char* what) const {
  if (kind != Kind::Bool) {
    throw std::invalid_argument(std::string(what) + " must be a boolean");
  }
  return boolean;
}

long Value::as_int(const char* what, long lo, long hi) const {
  const double n = as_number(what);
  if (!std::isfinite(n) || n != std::floor(n)) {
    throw std::invalid_argument(std::string(what) + " must be an integer");
  }
  if (n < static_cast<double>(lo) || n > static_cast<double>(hi)) {
    throw std::invalid_argument(std::string(what) + " must be in [" +
                                std::to_string(lo) + ", " + std::to_string(hi) +
                                "]");
  }
  return static_cast<long>(n);
}

Value parse(const std::string& text) { return Parser(text).parse_document(); }

std::string dump(const Value& v) {
  std::string out;
  dump_to(v, out);
  return out;
}

std::string escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string number_to_string(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace tb::json
