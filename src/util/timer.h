// Wall-clock stopwatch for the harness (TM-generation and solver timing
// comparisons, e.g. the Kodialam-vs-longest-matching speed claim in §II-C).
//
// This is the one sanctioned clock in the tree: every other file must
// route timing through tb::Timer so elapsed wall time stays observational
// (printed, recorded as *_ms columns) and never feeds back into result
// values. tools/topobench_lint enforces that contract (rule wall-clock);
// the reads below carry the only standing exemptions.
#pragma once

#include <chrono>

namespace tb {

class Timer {
 public:
  // topobench-lint: allow(wall-clock) the sanctioned stopwatch wrapper
  Timer() : start_(Clock::now()) {}

  // topobench-lint: allow(wall-clock) the sanctioned stopwatch wrapper
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    // topobench-lint: allow(wall-clock) the sanctioned stopwatch wrapper
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  // topobench-lint: allow(wall-clock) monotonic clock backing the stopwatch
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tb
