// Wall-clock stopwatch for the harness (TM-generation and solver timing
// comparisons, e.g. the Kodialam-vs-longest-matching speed claim in §II-C).
#pragma once

#include <chrono>

namespace tb {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tb
