// Summary statistics used by the experiment runner: every data point in the
// paper's figures is "mean over 10 iterations with 95% two-sided confidence
// intervals"; Summary reproduces exactly that aggregation.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace tb {

/// Aggregate of a sample: mean, stddev and a 95% two-sided CI half-width
/// (normal approximation for n >= 30, Student-t critical values below).
/// A single sample has no dispersion estimate: `stddev` and `ci95` are
/// quiet NaN for n == 1 (never 0, which would read as a spuriously exact
/// interval). Writers render the NaN sentinel as "na".
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;   ///< sample standard deviation (n-1); NaN for n == 1
  double ci95 = 0.0;     ///< 95% CI half-width; NaN for n == 1
  double min = 0.0;
  double max = 0.0;
};

/// Compute a Summary of `xs`. Empty input yields a zeroed Summary; a
/// singleton yields NaN stddev/ci95 (see Summary).
Summary summarize(std::span<const double> xs);

/// Two-sided 95% Student-t critical value for `dof` degrees of freedom.
double t_critical_95(std::size_t dof);

/// Arithmetic mean (0 for empty input).
double mean_of(std::span<const double> xs);

/// Population-style percentile via linear interpolation, p in [0,100].
double percentile(std::vector<double> xs, double p);

}  // namespace tb
