// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every randomized component in topobench takes an explicit 64-bit seed so
// that topology construction, traffic-matrix sampling, and experiment sweeps
// are reproducible bit-for-bit. We implement xoshiro256** (Blackman/Vigna)
// seeded through SplitMix64, rather than relying on std::mt19937 whose
// distributions are not guaranteed identical across standard libraries.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace tb {

/// SplitMix64 step: used for seeding and as a cheap stateless hash.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Mix two seeds into one (for deriving per-trial / per-component streams).
constexpr std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return splitmix64(s);
}

/// Three-way mix for per-(cell, trial) streams in experiment sweeps.
constexpr std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b,
                                 std::uint64_t c) noexcept {
  return mix_seed(mix_seed(a, b), c);
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x6d656173757265ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Uses Lemire-style rejection to avoid modulo bias.
  std::uint64_t next_u64(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Bernoulli trial with success probability p.
  bool next_bool(double p) noexcept { return next_double() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_u64(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// A random permutation of {0, ..., n-1}.
  std::vector<int> permutation(int n);

  /// Sample k distinct values from {0, ..., n-1} (k <= n), order random.
  std::vector<int> sample_without_replacement(int n, int k);

  /// Fork a statistically independent child stream (deterministic).
  Rng fork(std::uint64_t stream_id) noexcept {
    return Rng(mix_seed((*this)(), stream_id));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace tb
