// Single-point, strict environment-knob loaders. Configuration structs
// (exp::RunOptions, api::ServiceConfig) call these from their from_env()
// factories so every TOPOBENCH_* variable is parsed in exactly one place
// with one failure policy: unset means the documented default, and a set
// but malformed or out-of-range value throws std::invalid_argument naming
// the variable and the offending text. A fleet must fail loudly, not
// silently fall back to a default that changes which work gets done.
//
// (The legacy exp::env_eps/env_trials/env_int helpers keep their
// clamp-and-fallback semantics for the sweep-shape knobs — grid sizes are
// advisory, not identities. Knobs that select *behavior* — threads, shard,
// store, CSV mode — route through these strict loaders.)
#pragma once

#include <optional>
#include <string>

namespace tb::env {

/// Raw value of `name`, or nullopt when unset. Empty string counts as set.
std::optional<std::string> raw(const char* name);

/// Integer knob: unset -> `fallback`; otherwise the value must parse fully
/// as a base-10 integer in [lo, hi] or the call throws
/// std::invalid_argument naming the variable.
int int_knob(const char* name, int fallback, int lo, int hi);

/// Boolean knob: unset -> `fallback`; otherwise the value must be exactly
/// "0" or "1" (the only spellings the docs advertise) or the call throws
/// std::invalid_argument naming the variable.
bool flag_knob(const char* name, bool fallback);

}  // namespace tb::env
