// Minimal strict JSON for the topobench_server wire protocol: a tagged
// value type, a recursive-descent parser, and a deterministic serializer.
//
// Determinism: objects preserve insertion/document order in an ordered
// vector of (key, value) pairs — never a hash map — so serializing a value
// is a pure function of how it was built and replaying a request script
// yields byte-identical responses. Numbers serialize with %.17g (the CSV
// writers' discipline: every finite double round-trips exactly).
//
// Strictness: parse() accepts exactly one RFC-8259 text (objects, arrays,
// strings with \uXXXX escapes decoded to UTF-8, numbers, true/false/null)
// followed by optional whitespace, rejects everything else with
// std::invalid_argument naming the byte offset, and caps nesting depth so
// hostile input cannot blow the stack. No NaN/Infinity literals exist in
// JSON; absent metrics are published as null by the callers.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace tb::json {

enum class Kind { Null, Bool, Number, String, Array, Object };

/// One JSON value. Members are public and callers build values directly;
/// the static factories below just make call sites readable.
struct Value {
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> items;                                ///< Kind::Array
  std::vector<std::pair<std::string, Value>> members;      ///< Kind::Object

  static Value null();
  static Value boolean_v(bool b);
  static Value number_v(double v);
  static Value string_v(std::string s);
  static Value array();
  static Value object();

  /// Object member lookup (first match, document order); nullptr when this
  /// is not an object or the key is absent.
  const Value* find(const std::string& key) const;

  /// Append a member (objects) — no duplicate-key checking; the protocol
  /// layer controls its own keys.
  void set(std::string key, Value v);

  // Checked accessors for protocol decoding: throw std::invalid_argument
  // naming `what` when the value is not of the requested kind.
  const std::string& as_string(const char* what) const;
  double as_number(const char* what) const;
  bool as_bool(const char* what) const;
  /// as_number plus an integrality + range check.
  long as_int(const char* what, long lo, long hi) const;
};

/// Parse exactly one JSON text (plus trailing whitespace). Throws
/// std::invalid_argument with a byte offset on any violation.
Value parse(const std::string& text);

/// Serialize deterministically: object members in stored order, numbers
/// %.17g (integers render without exponent), strings escaped per escape().
std::string dump(const Value& v);

/// JSON string-literal escaping of `s` (no surrounding quotes): the two
/// mandatory escapes, \n \r \t, and \u00XX for remaining control bytes.
std::string escape(const std::string& s);

/// %.17g rendering of a finite double; non-finite values render as "null"
/// (JSON has no NaN/Infinity literals). Shared by dump() and the server's
/// hand-written emitters so every number is formatted by one function.
std::string number_to_string(double v);

}  // namespace tb::json
