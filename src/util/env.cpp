#include "util/env.h"

#include <cstdlib>
#include <stdexcept>

namespace tb::env {
namespace {

[[noreturn]] void reject(const char* name, const std::string& value,
                         const char* expected) {
  throw std::invalid_argument(std::string(name) + "=\"" + value +
                              "\" is malformed (expected " + expected + ")");
}

}  // namespace

std::optional<std::string> raw(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr) return std::nullopt;
  return std::string(v);
}

int int_knob(const char* name, int fallback, int lo, int hi) {
  const std::optional<std::string> v = raw(name);
  if (!v) return fallback;
  const std::string expected =
      "an integer in [" + std::to_string(lo) + ", " + std::to_string(hi) + "]";
  std::size_t pos = 0;
  long parsed = 0;
  try {
    parsed = std::stol(*v, &pos, 10);
  } catch (const std::exception&) {
    reject(name, *v, expected.c_str());
  }
  if (pos != v->size()) reject(name, *v, expected.c_str());
  if (parsed < lo || parsed > hi) reject(name, *v, expected.c_str());
  return static_cast<int>(parsed);
}

bool flag_knob(const char* name, bool fallback) {
  const std::optional<std::string> v = raw(name);
  if (!v) return fallback;
  if (*v == "1") return true;
  if (*v == "0") return false;
  reject(name, *v, "\"0\" or \"1\"");
}

}  // namespace tb::env
