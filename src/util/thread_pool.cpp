#include "util/thread_pool.h"

#include <algorithm>
#include <exception>
#include <map>
#include <memory>

#include "util/env.h"

namespace tb {

namespace {
thread_local bool t_in_worker = false;
}  // namespace

bool ThreadPool::in_worker() noexcept { return t_in_worker; }

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> fut = packaged.get_future();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body,
                              std::size_t grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t workers = size();
  if (workers <= 1 || n <= grain || in_worker()) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  const std::size_t chunks = std::min(workers * 4, (n + grain - 1) / grain);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futs;
  futs.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk;
    if (lo >= end) break;
    const std::size_t hi = std::min(end, lo + chunk);
    futs.push_back(submit([&body, lo, hi] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }));
  }
  // Drain every chunk before letting an exception escape: rethrowing while
  // chunks still run would unwind the caller's frame (and `body`'s captures)
  // under live workers. The first failure wins; later ones are dropped.
  std::exception_ptr first_error;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::shared() {
  // Strict single-point knob loading (util/env.h): TOPOBENCH_THREADS must
  // be an integer in [0, 512] (0 = hardware concurrency) or pool creation
  // throws — a fleet must fail loudly, not silently fall back to a default
  // worker count.
  static ThreadPool pool(static_cast<std::size_t>(
      env::int_knob("TOPOBENCH_THREADS", 0, 0, 512)));
  return pool;
}

ThreadPool& ThreadPool::dedicated(std::size_t threads) {
  static std::mutex mu;
  static std::map<std::size_t, std::unique_ptr<ThreadPool>> pools;
  const std::lock_guard<std::mutex> lock(mu);
  std::unique_ptr<ThreadPool>& slot = pools[threads];
  if (!slot) slot = std::make_unique<ThreadPool>(threads);
  return *slot;
}

void ThreadPool::worker_loop() {
  t_in_worker = true;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace tb
