#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace tb {

double t_critical_95(std::size_t dof) {
  // Two-sided 95% critical values of Student's t distribution. Entry [k]
  // is for dof = k+1; beyond the table we use the normal limit 1.96.
  static constexpr double kTable[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (dof == 0) return 0.0;
  if (dof <= std::size(kTable)) return kTable[dof - 1];
  return 1.96;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  s.min = xs[0];
  s.max = xs[0];
  double sum = 0.0;
  for (const double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(s.n);
  if (s.n >= 2) {
    double ss = 0.0;
    for (const double x : xs) {
      const double d = x - s.mean;
      ss += d * d;
    }
    s.stddev = std::sqrt(ss / static_cast<double>(s.n - 1));
    s.ci95 = t_critical_95(s.n - 1) * s.stddev /
             std::sqrt(static_cast<double>(s.n));
  } else {
    // One sample carries no dispersion information; 0 here used to make a
    // single-trial run look exact.
    s.stddev = std::numeric_limits<double>::quiet_NaN();
    s.ci95 = std::numeric_limits<double>::quiet_NaN();
  }
  return s;
}

double mean_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double rank =
      (p / 100.0) * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace tb
