// A small fixed-size thread pool with a blocking parallel_for.
//
// The solvers parallelize per-source shortest-path batches and the experiment
// runner parallelizes independent trials. We deliberately keep the model
// simple: submit closures, or run an index-range parallel_for that blocks
// until every index is processed. Workers never touch overlapping state;
// reductions are performed by the caller after the barrier, which keeps
// results deterministic for a fixed partitioning.
//
// Nested-submit safety: parallel_for called from a pool worker (e.g. the
// GK solver invoked from an experiment-runner cell) runs its whole range
// inline instead of submitting, so a worker never blocks on futures that
// only another worker could satisfy — the classic self-deadlock of
// fixed-size pools. The outer level already saturates the pool, so the
// inner level losing parallelism costs nothing. The guard is
// pool-AGNOSTIC (in_worker() is a process-wide thread_local): a worker of
// pool A re-entering parallel_for on a different pool B also inlines,
// which is what lets ScenarioFleet cells on the shared pool drive engines
// that own dedicated solver pools without cross-pool deadlock or
// reordering (pinned by the ThreadPool.NestedParallelForAcrossDistinctPools
// regression test).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace tb {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue an arbitrary task; the returned future reports completion and
  /// propagates exceptions.
  std::future<void> submit(std::function<void()> task);

  /// Run body(i) for every i in [begin, end), distributing contiguous chunks
  /// over the pool, and block until all complete. `grain` is the minimum
  /// chunk size. Runs inline when the range is small or the pool has a
  /// single worker.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body,
                    std::size_t grain = 1);

  /// Process-wide shared pool (size from TOPOBENCH_THREADS env or hardware).
  static ThreadPool& shared();

  /// True when the calling thread is a worker of *any* ThreadPool. Used to
  /// keep nested parallel_for calls inline (see header comment).
  static bool in_worker() noexcept;

  /// Process-shared dedicated pool of exactly `threads` workers, created on
  /// first request and alive for the process (like shared()). Callers that
  /// honor a `*_threads = N` knob (the MCF engines, the flow cut battery)
  /// resolve N > 1 here so repeated solves reuse one pool instead of
  /// spawning and joining N threads per solve. Distinct subsystems sharing
  /// a pool is safe — parallel_for only queues work — and cannot change
  /// results, by the determinism contracts.
  static ThreadPool& dedicated(std::size_t threads);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace tb
