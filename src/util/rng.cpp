#include "util/rng.h"

#include <cassert>
#include <numeric>

namespace tb {

std::uint64_t Rng::next_u64(std::uint64_t bound) noexcept {
  assert(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_u64(span));
}

std::vector<int> Rng::permutation(int n) {
  std::vector<int> p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), 0);
  shuffle(p);
  return p;
}

std::vector<int> Rng::sample_without_replacement(int n, int k) {
  assert(k >= 0 && k <= n);
  // Partial Fisher-Yates on an index array.
  std::vector<int> idx(static_cast<std::size_t>(n));
  std::iota(idx.begin(), idx.end(), 0);
  for (int i = 0; i < k; ++i) {
    const auto j =
        i + static_cast<int>(next_u64(static_cast<std::uint64_t>(n - i)));
    std::swap(idx[static_cast<std::size_t>(i)],
              idx[static_cast<std::size_t>(j)]);
  }
  idx.resize(static_cast<std::size_t>(k));
  return idx;
}

}  // namespace tb
